#!/bin/sh
# CI gate for the SCODED repo: formatting, static analysis, and the full
# test suite under the race detector. Run from the repo root (make ci).
set -eu

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet =="
go vet ./...

# The expanded lint gate: all eleven analyzers, including the flow-sensitive
# four (lockbalance, goroleak, errflow, deferloop — DESIGN.md section 13)
# and the hot-path allocation discipline (allochot — DESIGN.md section 15),
# run over the whole module before any test does. The tree must be clean:
# a load or type error exits 2, any unsuppressed finding exits 1.
echo "== scoded-lint (make lint) =="
make lint

# -shuffle=on randomizes test order within each package, so an accidental
# inter-test dependency (shared package state, leaked goroutines) fails
# loudly here instead of lurking until an unlucky local run.
echo "== go test -race -shuffle=on =="
go test -race -shuffle=on ./...

# Gating: the drill-down delta-argmax identity properties under the race
# detector. These are part of the suite above; the explicit run keeps the
# fast path's row-for-row contract visible even if the full suite is ever
# scoped down.
echo "== drill-down identity (-race) =="
go test -race -run 'Delta|MultiTopK|WorkloadIdentity' \
	./internal/drilldown/ ./internal/drillbench/

# Gating: the streaming incremental kernels' differential harness under
# the race detector — every insert/evict step of the fuzz seeds and the
# turnover test must agree with a from-scratch recompute (exact pair
# sums, 1e-12 on tau/G), and the ingest/backpressure/alert endpoints must
# be race-clean. Part of the full suite above; the explicit run keeps the
# step-for-step contract visible even if the full suite is ever scoped
# down.
echo "== streaming differential harness (-race) =="
go test -race -shuffle=on \
	-run 'Fuzz|Differential|Records|Alert|StreamMetrics|NaiveAndIncremental' \
	./internal/stream/ ./internal/streambench/ ./internal/server/

# Gating: restart durability against real processes. The smoke builds
# scoded-serve, accumulates durable state (upload + append + constraints +
# an observed monitor), SIGTERMs the process, restarts it on the same data
# directory, and asserts /v1/checkall and /v1/monitors answer
# byte-identically.
echo "== restart durability smoke =="
smokedir="$(mktemp -d)"
trap 'rm -rf "$smokedir"' EXIT
go build -o "$smokedir/scoded-serve" ./cmd/scoded-serve
go build -o "$smokedir/scoded-smoke" ./cmd/scoded-smoke
"$smokedir/scoded-smoke" -serve "$smokedir/scoded-serve"

# Gating: out-of-core detection against real processes (DESIGN.md section
# 16). Phase 1 captures /v1/checkall from an unconstrained server; phase 2
# restarts the same data directory under GOMEMLIMIT with -resident-bytes 1
# and asserts a byte-identical answer while /metrics proves the relation
# was never materialized (resident bytes and misses stay 0).
echo "== out-of-core detection smoke =="
"$smokedir/scoded-smoke" -serve "$smokedir/scoded-serve" -mode oocore

# Non-gating: refresh the benchmark trajectories. Timing noise on shared CI
# hardware must not fail the gate, so errors only warn.
echo "== bench (non-gating) =="
if go run ./cmd/scoded-bench -json -suite detect; then
	echo "BENCH_detect.json refreshed."
else
	echo "warning: detect bench run failed (non-gating)" >&2
fi
if go run ./cmd/scoded-bench -json -suite drilldown; then
	echo "BENCH_drilldown.json refreshed."
else
	echo "warning: drilldown bench run failed (non-gating)" >&2
fi
if go run ./cmd/scoded-bench -json -suite stream; then
	echo "BENCH_stream.json refreshed."
else
	echo "warning: stream bench run failed (non-gating)" >&2
fi
if go run ./cmd/scoded-bench -json -suite oocore; then
	echo "BENCH_oocore.json refreshed."
else
	echo "warning: oocore bench run failed (non-gating)" >&2
fi

# Non-gating: capture CPU + allocation profiles of the detect hot path so a
# perf regression investigation always has a current flamegraph to diff
# against DESIGN.md section 15's committed findings. Profiles land in
# profiles/ (gitignored); failures only warn.
echo "== profile capture (non-gating) =="
if make profile >/dev/null 2>&1; then
	echo "profiles/detect_{cpu,mem}.pprof refreshed."
else
	echo "warning: profile capture failed (non-gating)" >&2
fi

echo "CI gate passed."
