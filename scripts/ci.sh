#!/bin/sh
# CI gate for the SCODED repo: formatting, static analysis, and the full
# test suite under the race detector. Run from the repo root (make ci).
set -eu

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== scoded-lint =="
go run ./cmd/scoded-lint ./...

echo "== go test -race =="
go test -race ./...

# Non-gating: refresh the kernel-cache benchmark trajectory. Timing noise
# on shared CI hardware must not fail the gate, so errors only warn.
echo "== bench (non-gating) =="
if go run ./cmd/scoded-bench -json; then
	echo "BENCH_detect.json refreshed."
else
	echo "warning: bench run failed (non-gating)" >&2
fi

echo "CI gate passed."
