package scoded_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"scoded"
)

// figure2CSV is the paper's running example (Figure 2): the original car
// database plus the inserted records r9-r16.
const figure2CSV = `Model,Color
BMW X1,White
BMW X1,Black
BMW X1,White
BMW X1,Black
Toyota Prius,White
Toyota Prius,White
Toyota Prius,White
Toyota Prius,Black
BMW X1,White
BMW X1,White
BMW X1,White
BMW X1,Black
Toyota Prius,Black
Toyota Prius,Black
Toyota Prius,Black
Toyota Prius,Black
`

func TestPublicAPIEndToEnd(t *testing.T) {
	rel, err := scoded.ReadCSV(strings.NewReader(figure2CSV))
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 16 {
		t.Fatalf("rows = %d", rel.NumRows())
	}
	a, err := scoded.ParseApproximateSC("Model _||_ Color @ 0.35")
	if err != nil {
		t.Fatal(err)
	}
	res, err := scoded.Check(rel, a, scoded.CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Test.P <= 0 || res.Test.P >= 1 {
		t.Errorf("p = %v", res.Test.P)
	}
	top, err := scoded.TopK(rel, a.SC, 5, scoded.DrillOptions{Strategy: scoded.KcStrategy})
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Rows) != 5 {
		t.Errorf("top rows = %v", top.Rows)
	}
}

func TestPublicAPINumericWorkflow(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 300
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = 2*x[i] + 0.3*rng.NormFloat64()
	}
	for i := 0; i < 60; i++ {
		y[i] = 0 // mean imputation destroys the dependence
	}
	rel, err := scoded.NewRelation(
		scoded.NewNumericColumn("X", x),
		scoded.NewNumericColumn("Y", y),
	)
	if err != nil {
		t.Fatal(err)
	}
	dsc, err := scoded.ParseSC("X ~||~ Y")
	if err != nil {
		t.Fatal(err)
	}
	top, err := scoded.TopK(rel, dsc, 60, scoded.DrillOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if top.Strategy != scoded.KStrategy {
		t.Errorf("DSC should default to the K strategy, got %v", top.Strategy)
	}
	hits := 0
	for _, r := range top.Rows {
		if r < 60 {
			hits++
		}
	}
	if hits < 45 {
		t.Errorf("precision@60 = %d/60", hits)
	}

	part, err := scoded.Partition(rel,
		scoded.ApproximateSC{SC: scoded.MustParseSC("X ~||~ Y"), Alpha: 1e-12}, scoded.DrillOptions{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	// The dependence is strong, so the DSC at a tiny alpha already holds.
	if !part.Resolved {
		t.Errorf("partition unresolved: %+v", part)
	}
}

func TestPublicAPIConsistency(t *testing.T) {
	conflicts, err := scoded.CheckConsistency([]scoded.SC{
		scoded.MustParseSC("A _||_ B,C"),
		scoded.MustParseSC("A ~||~ B"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 1 {
		t.Errorf("conflicts = %v", conflicts)
	}
}

func TestPublicAPIDiscovery(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 500
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = x[i] + 0.3*rng.NormFloat64()
		z[i] = rng.NormFloat64()
	}
	rel, _ := scoded.NewRelation(
		scoded.NewNumericColumn("X", x),
		scoded.NewNumericColumn("Y", y),
		scoded.NewNumericColumn("Z", z),
	)
	m, err := scoded.Profile(rel, []string{"X", "Y", "Z"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	sugg := scoded.SuggestSCs(m, 0.1, 0.5)
	if len(sugg) == 0 {
		t.Fatal("no suggestions")
	}
	names := make([]string, 0, len(sugg))
	for _, s := range sugg {
		names = append(names, s.SC.String())
	}
	sort.Strings(names)
	joined := strings.Join(names, ";")
	if !strings.Contains(joined, "X ~||~ Y") {
		t.Errorf("missing dependence suggestion: %v", names)
	}

	g, err := scoded.NewBayesNet([]string{"A", "B", "C"})
	if err != nil {
		t.Fatal(err)
	}
	g.AddEdge("A", "B")
	g.AddEdge("B", "C")
	scs, err := scoded.ImpliedSCs(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range scs {
		if c.Equivalent(scoded.MustParseSC("A _||_ C | B")) {
			found = true
		}
	}
	if !found {
		t.Error("chain independence not implied")
	}
}

func TestPublicAPIEntailments(t *testing.T) {
	dsc := scoded.FDToDSC(scoded.FD{LHS: []string{"Zip"}, RHS: []string{"City"}})
	if !dsc.Dependence {
		t.Error("FD should translate to a DSC")
	}
	emvd, err := scoded.ISCToEMVD(scoded.MustParseSC("Y _||_ Z | X"))
	if err != nil {
		t.Fatal(err)
	}
	if emvd.String() != "X ->> Y | Z" {
		t.Errorf("EMVD = %s", emvd)
	}
}

// ExampleCheck demonstrates the core detection workflow on the paper's
// Figure 2 car database.
func ExampleCheck() {
	rel, _ := scoded.ReadCSV(strings.NewReader(figure2CSV))
	a, _ := scoded.ParseApproximateSC("Model _||_ Color @ 0.35")
	res, _ := scoded.Check(rel, a, scoded.CheckOptions{})
	fmt.Printf("violated: %v\n", res.Violated)
	// Output:
	// violated: true
}

// ExampleTopK demonstrates drill-down on a dependence constraint whose
// violation is caused by mean imputation.
func ExampleTopK() {
	x := make([]float64, 100)
	y := make([]float64, 100)
	rng := rand.New(rand.NewSource(1))
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = x[i]
	}
	y[7] = 0 // an imputed value
	rel, _ := scoded.NewRelation(
		scoded.NewNumericColumn("X", x),
		scoded.NewNumericColumn("Y", y),
	)
	top, _ := scoded.TopK(rel, scoded.MustParseSC("X ~||~ Y"), 1, scoded.DrillOptions{})
	fmt.Println(top.Rows)
	// Output:
	// [7]
}
