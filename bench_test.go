package scoded_test

import (
	"testing"

	"scoded/internal/drilldown"
	"scoded/internal/experiments"
	"scoded/internal/segtree"

	"scoded"
)

// One benchmark per paper artifact (DESIGN.md §3): each runs the same
// experiment code as cmd/scoded-bench and the experiment tests, so
// `go test -bench=.` regenerates every table and figure. The reported
// ns/op is the cost of one full experiment run.

func benchReport(b *testing.B, run func() (*experiments.Report, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if rep == nil || rep.ID == "" {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkFigure1Discovery(b *testing.B) {
	benchReport(b, func() (*experiments.Report, error) { return experiments.Figure1(1) })
}

func BenchmarkTable2Entailment(b *testing.B) {
	benchReport(b, func() (*experiments.Report, error) { return experiments.Table2() })
}

func BenchmarkFigure7Hockey(b *testing.B) {
	benchReport(b, func() (*experiments.Report, error) { return experiments.Figure7(1) })
}

func BenchmarkFigure8NebraskaWindSea(b *testing.B) {
	benchReport(b, func() (*experiments.Report, error) { return experiments.Figure8(1) })
}

func BenchmarkFigure9SensorBaselines(b *testing.B) {
	benchReport(b, func() (*experiments.Report, error) { return experiments.Figure9(1) })
}

func BenchmarkFigure10BostonDep(b *testing.B) {
	benchReport(b, func() (*experiments.Report, error) { return experiments.Figure10(1) })
}

func BenchmarkFigure11BostonIndep(b *testing.B) {
	benchReport(b, func() (*experiments.Report, error) { return experiments.Figure11(1) })
}

func BenchmarkFigureConditionalBoston(b *testing.B) {
	benchReport(b, func() (*experiments.Report, error) { return experiments.FigureConditional(1) })
}

func BenchmarkFigure12HospAFD(b *testing.B) {
	benchReport(b, func() (*experiments.Report, error) { return experiments.Figure12(1) })
}

func BenchmarkFigure13CarCategorical(b *testing.B) {
	benchReport(b, func() (*experiments.Report, error) { return experiments.Figure13(1) })
}

func BenchmarkFigure14Scalability(b *testing.B) {
	benchReport(b, func() (*experiments.Report, error) { return experiments.Figure14(1) })
}

// Ablation benchmarks for the design choices DESIGN.md §5 calls out.

// benchDrill measures one drill-down configuration on a fixed numeric
// instance.
func benchDrill(b *testing.B, rel *scoded.Relation, c scoded.SC, k int, opts scoded.DrillOptions) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scoded.TopK(rel, c, k, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func drillInstance(n int) *scoded.Relation {
	x := make([]float64, n)
	y := make([]float64, n)
	s := uint64(12345)
	next := func() float64 {
		// xorshift keeps the instance deterministic without math/rand.
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s%100000)/50000 - 1
	}
	for i := range x {
		x[i] = next()
		y[i] = x[i]*0.5 + next()
	}
	rel, err := scoded.NewRelation(
		scoded.NewNumericColumn("X", x),
		scoded.NewNumericColumn("Y", y),
	)
	if err != nil {
		panic(err)
	}
	return rel
}

func BenchmarkAblationTauKStrategy(b *testing.B) {
	rel := drillInstance(5000)
	benchDrill(b, rel, scoded.MustParseSC("X ~||~ Y"), 100, scoded.DrillOptions{Strategy: scoded.KStrategy})
}

func BenchmarkAblationTauKcStrategy(b *testing.B) {
	rel := drillInstance(5000)
	benchDrill(b, rel, scoded.MustParseSC("X _||_ Y"), 4900, scoded.DrillOptions{Strategy: scoded.KcStrategy})
}

func BenchmarkAblationGCellContribution(b *testing.B) {
	rel := drillInstance(5000)
	benchDrill(b, rel, scoded.MustParseSC("X ~||~ Y"), 100, scoded.DrillOptions{
		Strategy:   scoded.KStrategy,
		Method:     drilldown.GMethod,
		GObjective: drilldown.CellContribution,
	})
}

func BenchmarkAblationGExactDelta(b *testing.B) {
	rel := drillInstance(5000)
	benchDrill(b, rel, scoded.MustParseSC("X ~||~ Y"), 100, scoded.DrillOptions{
		Strategy:   scoded.KStrategy,
		Method:     drilldown.GMethod,
		GObjective: drilldown.ExactDelta,
	})
}

// The segment tree vs Fenwick tree choice behind Algorithm 2.

func BenchmarkAblationSegmentTree(b *testing.B) {
	const n = 1 << 16
	for i := 0; i < b.N; i++ {
		t := segtree.NewSegmentTree(n)
		for j := 0; j < n; j++ {
			pos := (j * 2654435761) % n
			t.Insert(pos, 1)
			_ = t.CountBelow(pos)
			_ = t.CountAbove(pos)
		}
	}
}

func BenchmarkAblationFenwickTree(b *testing.B) {
	const n = 1 << 16
	for i := 0; i < b.N; i++ {
		t := segtree.NewFenwick(n)
		for j := 0; j < n; j++ {
			pos := (j * 2654435761) % n
			t.Insert(pos, 1)
			_ = t.CountBelow(pos)
			_ = t.CountAbove(pos)
		}
	}
}
