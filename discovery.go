package scoded

import (
	"scoded/internal/bayes"
	"scoded/internal/discovery"
	"scoded/internal/ic"
)

// This file re-exports the SC Discovery and SC↔IC entailment components.

// CorrelationMatrix profiles a dataset as in the paper's Figure 1(a):
// numeric pairs use |Kendall tau-b|, pairs involving categorical columns
// use Cramér's V. Extreme cells suggest marginal SCs to a domain expert.
type CorrelationMatrix = discovery.Matrix

// SCSuggestion is a candidate SC produced by profiling.
type SCSuggestion = discovery.Suggestion

// Profile computes the correlation matrix of the named columns, quantile-
// discretizing numeric columns into bins where a categorical test is
// needed.
func Profile(d *Relation, cols []string, bins int) (*CorrelationMatrix, error) {
	return discovery.CorrelationMatrix(d, cols, bins)
}

// SuggestSCs proposes marginal SCs from a correlation matrix: associations
// at or above depThreshold become dependence SCs, at or below
// indepThreshold independence SCs.
func SuggestSCs(m *CorrelationMatrix, indepThreshold, depThreshold float64) []SCSuggestion {
	return discovery.SuggestFromMatrix(m, indepThreshold, depThreshold)
}

// FeatureRelevance reports a feature's tested relationship to a prediction
// target, with the SC a data scientist would pin down.
type FeatureRelevance = discovery.FeatureRelevance

// RankFeatures tests every candidate feature against the target (the
// paper's introductory model-construction scenario: RowID ⊥ Price, Model
// ⊥̸ Price) and returns the features most-relevant first, each with a
// suggested SC to enforce on future data.
func RankFeatures(d *Relation, target string, features []string, alpha float64) ([]FeatureRelevance, error) {
	return discovery.RankFeatures(d, target, features, alpha)
}

// BayesNet is a directed acyclic graph over variables with d-separation,
// the Figure 1(b) discovery device.
type BayesNet = bayes.DAG

// NewBayesNet creates an edgeless DAG over the named variables; add edges
// with AddEdge.
func NewBayesNet(names []string) (*BayesNet, error) { return bayes.NewDAG(names) }

// LearnBayesNet learns a DAG over categorical columns by BIC hill climbing.
func LearnBayesNet(d *Relation, cols []string) (*BayesNet, error) {
	return bayes.LearnStructure(d, cols, bayes.LearnOptions{})
}

// ImpliedSCs derives the SCs a Bayesian network implies by d-separation,
// for conditioning sets up to maxCond variables.
func ImpliedSCs(g *BayesNet, maxCond int) ([]SC, error) {
	return discovery.ImpliedSCs(g, maxCond)
}

// FD is a functional dependency LHS → RHS.
type FD = ic.FD

// FDToDSC translates an FD into the maximally-strong dependence SC it
// entails (Proposition 2), enabling SCODED drill-down on approximate FDs.
func FDToDSC(f FD) SC { return f.ToDSC() }

// EMVD is an embedded multi-valued dependency X ↠ Y | Z.
type EMVD = ic.EMVD

// ISCToEMVD translates a conditional independence SC Y ⊥ Z | X into the
// EMVD X ↠ Y | Z it entails (Proposition 1).
func ISCToEMVD(c SC) (EMVD, error) { return ic.ISCToEMVD(c) }

// DenialConstraint is a denial constraint over record pairs, the language
// of the DCDetect baseline.
type DenialConstraint = ic.DC
