package drillbench

import (
	"reflect"
	"testing"

	"scoded/internal/drilldown"
	"scoded/internal/kernel"
	"scoded/internal/sc"
)

// TestWorkloadIdentity runs the benchmark workload at a tractable size and
// checks that the measured contestants agree: the delta-argmax drill matches
// the seed-era linear greedy row for row on both constraint paths, and the
// parallel MultiTopK fan-out matches the sequential one. Without this, a
// speedup number in BENCH_drilldown.json could be comparing different
// answers.
func TestWorkloadIdentity(t *testing.T) {
	w := NewWorkloadSize(1, 600, 4)
	cache := kernel.New(w.Rel)
	for _, tc := range []struct {
		name string
		c    sc.SC
	}{
		{"tau", w.Numeric},
		{"g", w.Categorical},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fast, err := drilldown.TopK(w.Rel, tc.c, w.Keep, w.options(cache, 0))
			if err != nil {
				t.Fatal(err)
			}
			ref, err := drilldown.TopKLinear(w.Rel, tc.c, w.Keep, w.options(cache, 0))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fast, ref) {
				t.Errorf("delta drill diverged from linear greedy on the bench workload")
			}
		})
	}
	t.Run("multi", func(t *testing.T) {
		seq, err := drilldown.MultiTopK(w.Rel, w.Family, w.Keep, w.options(cache, 1))
		if err != nil {
			t.Fatal(err)
		}
		par, err := drilldown.MultiTopK(w.Rel, w.Family, w.Keep, w.options(cache, 4))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("parallel fan-out diverged from sequential on the bench workload")
		}
	})
}

// TestGKcDeltaAllocRegression pins the allocation budget of the G-path
// delta drill on the canonical warm-cache workload. The bound is the
// pre-flat-arena linear drill's measured 6004 allocs/op: the delta argmax
// regressed past it (8202) when cellsOf materialized per-cell row lists
// every round, and the flat counts/rowArena stratum holds it near 231.
// A failure here means a hot-path structure started allocating per round
// again.
func TestGKcDeltaAllocRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("canonical 20k-row workload")
	}
	w := NewWorkload(1)
	cache := kernel.New(w.Rel)
	mustDrill(drilldown.TopK(w.Rel, w.Categorical, w.Keep, w.options(cache, 0)))
	allocs := testing.AllocsPerRun(3, func() {
		mustDrill(drilldown.TopK(w.Rel, w.Categorical, w.Keep, w.options(cache, 0)))
	})
	if allocs > 6004 {
		t.Errorf("g_kc_delta allocates %.0f per drill, budget 6004", allocs)
	}
}

// TestWorkloadShape pins the canonical dimensions the committed
// BENCH_drilldown.json claims to measure.
func TestWorkloadShape(t *testing.T) {
	w := NewWorkload(42)
	if got := w.Rel.NumRows(); got != workloadRows {
		t.Errorf("rows = %d, want %d", got, workloadRows)
	}
	if w.Keep != workloadKeep {
		t.Errorf("keep = %d, want %d", w.Keep, workloadKeep)
	}
	if len(w.Family) != 4 {
		t.Errorf("family size = %d, want 4", len(w.Family))
	}
	// Distinct seeds must yield distinct data (the rng is actually used).
	w2 := NewWorkload(43)
	x1 := w.Rel.MustColumn("X").Floats()
	x2 := w2.Rel.MustColumn("X").Floats()
	if reflect.DeepEqual(x1, x2) {
		t.Error("seed does not vary the workload")
	}
}

// Benchmark entry points mirror the variants Bench() measures, so ad-hoc
// `go test -bench` runs and the committed report agree. They share one
// warmed workload; the canonical size makes these opt-in by nature.
var benchState struct {
	w     *Workload
	cache *kernel.Cache
}

func benchWorkload(b *testing.B) (*Workload, *kernel.Cache) {
	b.Helper()
	if benchState.w == nil {
		benchState.w = NewWorkload(1)
		benchState.cache = kernel.New(benchState.w.Rel)
		mustDrill(drilldown.TopK(benchState.w.Rel, benchState.w.Numeric, benchState.w.Keep,
			benchState.w.options(benchState.cache, 0)))
		mustDrill(drilldown.TopK(benchState.w.Rel, benchState.w.Categorical, benchState.w.Keep,
			benchState.w.options(benchState.cache, 0)))
	}
	return benchState.w, benchState.cache
}

func BenchmarkTauKcLinear(b *testing.B) {
	w, cache := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustDrill(drilldown.TopKLinear(w.Rel, w.Numeric, w.Keep, w.options(cache, 0)))
	}
}

func BenchmarkTauKcDelta(b *testing.B) {
	w, cache := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustDrill(drilldown.TopK(w.Rel, w.Numeric, w.Keep, w.options(cache, 0)))
	}
}

func BenchmarkGKcLinear(b *testing.B) {
	w, cache := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustDrill(drilldown.TopKLinear(w.Rel, w.Categorical, w.Keep, w.options(cache, 0)))
	}
}

func BenchmarkGKcDelta(b *testing.B) {
	w, cache := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustDrill(drilldown.TopK(w.Rel, w.Categorical, w.Keep, w.options(cache, 0)))
	}
}

func BenchmarkMultiSequential(b *testing.B) {
	w, cache := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := drilldown.MultiTopK(w.Rel, w.Family, w.Keep, w.options(cache, 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiParallel(b *testing.B) {
	w, cache := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := drilldown.MultiTopK(w.Rel, w.Family, w.Keep, w.options(cache, 0)); err != nil {
			b.Fatal(err)
		}
	}
}
