// Package drillbench defines the reproducible drill-down workload behind the
// delta-argmax performance trajectory: cmd/scoded-bench -json -suite drilldown
// and the benchmarks in this package both run exactly this workload, so the
// committed BENCH_drilldown.json numbers and `go test -bench` agree on what
// is being measured (the same contract internal/detectbench provides for
// detection).
//
// The workload is the shape the incremental greedy targets (ISSUE 4: a
// 20k-row multi-stratum K^c drill): one conditioning column splitting the
// rows into many strata, so the seed-era linear rescan pays O(n_total) per
// round while the delta argmax pays only the touched stratum. Three aspects
// are measured: the tau-path K^c drill (the acceptance headline), the G-path
// K^c drill, and the MultiTopK constraint fan-out (sequential vs parallel).
package drillbench

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"scoded/internal/drilldown"
	"scoded/internal/kernel"
	"scoded/internal/relation"
	"scoded/internal/sc"
)

// workload dimensions; see NewWorkload.
const (
	workloadRows   = 20000
	workloadStrata = 16 // conditioning strata; the delta argmax rescans one per round
	workloadLevels = 8  // categories per G-path column
	workloadKeep   = 512
)

// Workload is one reproducible drill-down input: a relation, the two
// single-constraint drills, and a constraint family for the fan-out.
type Workload struct {
	Rel *relation.Relation
	// Numeric is the tau-path headline constraint `X _||_ Y | Region`.
	Numeric sc.SC
	// Categorical is the G-path constraint `A _||_ B | Region`.
	Categorical sc.SC
	// Family is the MultiTopK fan-out family (numeric pairs sharing columns,
	// so the kernel cache gets real reuse across constraints).
	Family []sc.SC
	// Keep is the K^c survivor count: the drill removes Rows-Keep records.
	Keep int
}

// NewWorkload builds the canonical benchmark workload for a seed: 20000 rows
// over 16 conditioning strata, numeric pairs with a planted correlated block
// (so the ISC is genuinely violated), and 8-level categorical pairs with
// mild dependence.
func NewWorkload(seed int64) *Workload {
	return NewWorkloadSize(seed, workloadRows, workloadStrata)
}

// NewWorkloadSize is NewWorkload with explicit dimensions, for identity
// tests that want the same shape at a tractable size.
func NewWorkloadSize(seed int64, rows, strata int) *Workload {
	rng := rand.New(rand.NewSource(seed))
	region := make([]string, rows)
	for i := range region {
		region[i] = fmt.Sprintf("r%d", rng.Intn(strata))
	}
	// Numeric columns: X↔Y and X↔W carry a planted dependent block (10% of
	// rows), V is independent noise.
	x := make([]float64, rows)
	y := make([]float64, rows)
	w := make([]float64, rows)
	v := make([]float64, rows)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
		w[i] = rng.NormFloat64()
		v[i] = rng.NormFloat64()
		if i%10 == 0 { // planted errors: rank-aligned with X
			y[i] = x[i] + 0.1*rng.NormFloat64()
			w[i] = x[i] + 0.1*rng.NormFloat64()
		}
	}
	// Categorical columns: A and B share a latent value for a quarter of the
	// rows, the detectbench recipe for non-degenerate G tables.
	av := make([]string, rows)
	bv := make([]string, rows)
	for i := range av {
		a, b := rng.Intn(workloadLevels), rng.Intn(workloadLevels)
		if rng.Float64() < 0.25 {
			b = a
		}
		av[i] = fmt.Sprintf("a%d", a)
		bv[i] = fmt.Sprintf("b%d", b)
	}
	rel, err := relation.New(
		relation.NewCategoricalColumn("Region", region),
		relation.NewNumericColumn("X", x),
		relation.NewNumericColumn("Y", y),
		relation.NewNumericColumn("W", w),
		relation.NewNumericColumn("V", v),
		relation.NewCategoricalColumn("A", av),
		relation.NewCategoricalColumn("B", bv),
	)
	if err != nil {
		panic(err) // impossible: equal-length generated columns
	}
	keep := workloadKeep
	if keep > rows/4 {
		keep = rows / 4
	}
	return &Workload{
		Rel:         rel,
		Numeric:     sc.MustParse("X _||_ Y | Region"),
		Categorical: sc.MustParse("A _||_ B | Region"),
		Family: []sc.SC{
			sc.MustParse("X _||_ Y | Region"),
			sc.MustParse("X _||_ W | Region"),
			sc.MustParse("Y _||_ W | Region"),
			sc.MustParse("X _||_ V | Region"),
		},
		Keep: keep,
	}
}

// options is the shared drill configuration: the K^c strategy over a warm
// kernel cache, like a scoded-serve drill-down on a registered dataset.
func (w *Workload) options(cache *kernel.Cache, workers int) drilldown.Options {
	return drilldown.Options{Strategy: drilldown.Kc, Cache: cache, Workers: workers}
}

// mustDrill aborts on a drill error (impossible for the generated workload)
// so benchmarks cannot silently measure a failed run.
func mustDrill(res drilldown.Result, err error) drilldown.Result {
	if err != nil {
		panic(err)
	}
	return res
}

// BenchResult is one benchmark measurement in BENCH_drilldown.json.
type BenchResult struct {
	// Name identifies the variant: {tau,g}_kc_{linear,delta} for the
	// single-constraint K^c drills (linear = the seed-era full-rescan
	// greedy, delta = the incremental per-stratum argmax), and
	// multi_{sequential,parallel} for the MultiTopK constraint fan-out.
	Name string `json:"name"`
	// Iters is the iteration count testing.Benchmark settled on.
	Iters       int   `json:"iters"`
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Report is the machine-readable content of BENCH_drilldown.json.
type Report struct {
	Seed   int64 `json:"seed"`
	Rows   int   `json:"rows"`
	Strata int   `json:"strata"`
	// Keep is the K^c survivor count; every drill removes Rows-Keep records.
	Keep int `json:"keep"`
	// Constraints is the MultiTopK family size.
	Constraints int `json:"constraints"`
	// Workers is the MultiTopK pool size the parallel variant ran with.
	Workers int `json:"workers"`
	// GOMAXPROCS records the scheduler parallelism the run actually had.
	// SpeedupMulti can only exceed 1 when this exceeds 1: on a single-CPU
	// host the worker pool interleaves on one core and the sweep below is
	// expected to be flat (see DESIGN.md §15).
	GOMAXPROCS int           `json:"gomaxprocs"`
	Results    []BenchResult `json:"results"`
	// SpeedupTauKc is linear ns/op divided by delta ns/op on the tau-path
	// K^c drill: the acceptance headline (target ≥ 5).
	SpeedupTauKc float64 `json:"speedup_tau_kc"`
	// SpeedupGKc is the same ratio for the G-path K^c drill.
	SpeedupGKc float64 `json:"speedup_g_kc"`
	// SpeedupMulti is sequential ns/op divided by parallel ns/op for the
	// MultiTopK fan-out over the shared kernel cache.
	SpeedupMulti float64 `json:"speedup_multi"`
}

// multiSweepWorkers is the worker-count sweep recorded alongside the
// sequential/parallel pair, one multi_workers_N variant per entry. The sweep
// is the diagnosis artifact for the fan-out scaling question: with four
// constraints the pool saturates at 4, and on a single-CPU host every point
// is expected to land within noise of multi_workers_1.
var multiSweepWorkers = []int{1, 2, 4, 8}

// Bench measures the benchmark variants with testing.Benchmark and derives
// the speedups. Workers ≤ 0 means one worker per constraint (the canonical
// 4-worker / 4-constraint fan-out point).
func Bench(seed int64, workers int) Report {
	w := NewWorkload(seed)
	cache := kernel.New(w.Rel)
	// Warm the cache outside every timed region: the steady state being
	// measured is a scoded-serve drill on a registered dataset, where the
	// partitions and float projections already exist.
	mustDrill(drilldown.TopK(w.Rel, w.Numeric, w.Keep, w.options(cache, 0)))
	mustDrill(drilldown.TopK(w.Rel, w.Categorical, w.Keep, w.options(cache, 0)))
	if _, err := drilldown.MultiTopK(w.Rel, w.Family, w.Keep, w.options(cache, 0)); err != nil {
		panic(err)
	}

	if workers <= 0 {
		workers = len(w.Family)
	}
	rep := Report{
		Seed:        seed,
		Rows:        w.Rel.NumRows(),
		Strata:      workloadStrata,
		Keep:        w.Keep,
		Constraints: len(w.Family),
		Workers:     workers,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	variants := []struct {
		name string
		run  func(b *testing.B)
	}{
		{"tau_kc_linear", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustDrill(drilldown.TopKLinear(w.Rel, w.Numeric, w.Keep, w.options(cache, 0)))
			}
		}},
		{"tau_kc_delta", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustDrill(drilldown.TopK(w.Rel, w.Numeric, w.Keep, w.options(cache, 0)))
			}
		}},
		{"g_kc_linear", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustDrill(drilldown.TopKLinear(w.Rel, w.Categorical, w.Keep, w.options(cache, 0)))
			}
		}},
		{"g_kc_delta", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustDrill(drilldown.TopK(w.Rel, w.Categorical, w.Keep, w.options(cache, 0)))
			}
		}},
		{"multi_sequential", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := drilldown.MultiTopK(w.Rel, w.Family, w.Keep, w.options(cache, 1)); err != nil {
					panic(err)
				}
			}
		}},
		{"multi_parallel", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := drilldown.MultiTopK(w.Rel, w.Family, w.Keep, w.options(cache, workers)); err != nil {
					panic(err)
				}
			}
		}},
	}
	for _, n := range multiSweepWorkers {
		n := n
		variants = append(variants, struct {
			name string
			run  func(b *testing.B)
		}{fmt.Sprintf("multi_workers_%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := drilldown.MultiTopK(w.Rel, w.Family, w.Keep, w.options(cache, n)); err != nil {
					panic(err)
				}
			}
		}})
	}
	byName := make(map[string]BenchResult, len(variants))
	for _, v := range variants {
		r := testing.Benchmark(v.run)
		br := BenchResult{
			Name:        v.name,
			Iters:       r.N,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		rep.Results = append(rep.Results, br)
		byName[v.name] = br
	}
	ratio := func(num, den string) float64 {
		if d := byName[den].NsPerOp; d > 0 {
			return float64(byName[num].NsPerOp) / float64(d)
		}
		return 0
	}
	rep.SpeedupTauKc = ratio("tau_kc_linear", "tau_kc_delta")
	rep.SpeedupGKc = ratio("g_kc_linear", "g_kc_delta")
	rep.SpeedupMulti = ratio("multi_sequential", "multi_parallel")
	return rep
}
