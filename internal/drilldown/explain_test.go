package drilldown

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"scoded/internal/relation"
	"scoded/internal/sc"
)

func TestExplainRowsFigure2Pattern(t *testing.T) {
	// Drill into Figure 2 with the K strategy, then explain: the Section 3
	// observation — the flagged records share one (Model, Color) cell —
	// should surface as a joint pattern.
	d := figure2()
	res, err := TopK(d, sc.MustParse("Model _||_ Color"), 3, Options{Strategy: K})
	if err != nil {
		t.Fatal(err)
	}
	findings, err := ExplainRows(d, res.Rows, ExplainOptions{MaxP: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("no patterns found")
	}
	var sawPair bool
	for _, f := range findings {
		if f.Support < 2 || f.Flagged != 3 {
			t.Errorf("finding shape wrong: %+v", f)
		}
		if f.String() == "" {
			t.Error("finding should render")
		}
		if strings.Contains(f.Column, "Model ∧ Color") && f.Support == 3 {
			sawPair = true
		}
	}
	if !sawPair {
		t.Errorf("expected a joint Model ∧ Color pattern covering all flagged rows, got %v", findings)
	}
	// Findings sorted by ascending p.
	for i := 1; i < len(findings); i++ {
		if findings[i-1].P > findings[i].P {
			t.Error("findings not sorted by p")
		}
	}
}

func TestExplainRowsHockeyPattern(t *testing.T) {
	// Synthesize the Figure 7 situation: flagged rows all share GPM=0 and
	// early draft years; numeric GPM must surface via its bin label.
	rng := rand.New(rand.NewSource(61))
	n := 400
	years := make([]string, n)
	gpm := make([]float64, n)
	for i := 0; i < n; i++ {
		years[i] = strconv.Itoa(1998 + rng.Intn(10))
		gpm[i] = float64(rng.Intn(17) - 8)
	}
	var flagged []int
	for i := 0; i < 50; i++ {
		years[i] = []string{"1998", "1999"}[rng.Intn(2)]
		gpm[i] = 0
		flagged = append(flagged, i)
	}
	d := relation.MustNew(
		relation.NewCategoricalColumn("DraftYear", years),
		relation.NewNumericColumn("GPM", gpm),
	)
	findings, err := ExplainRows(d, flagged, ExplainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var sawYear, sawGPM bool
	for _, f := range findings {
		if f.Column == "DraftYear" && (f.Value == "1998" || f.Value == "1999") {
			sawYear = true
		}
		if f.Column == "GPM" {
			sawGPM = true
		}
	}
	if !sawYear {
		t.Errorf("early draft years not surfaced: %v", findings)
	}
	if !sawGPM {
		t.Errorf("GPM bin not surfaced: %v", findings)
	}
}

func TestExplainRowsNoFalsePatterns(t *testing.T) {
	// A uniformly random flagged subset should produce (almost) no
	// findings at a strict threshold.
	rng := rand.New(rand.NewSource(62))
	n := 500
	a := make([]string, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = []string{"p", "q", "r"}[rng.Intn(3)]
		b[i] = rng.NormFloat64()
	}
	d := relation.MustNew(
		relation.NewCategoricalColumn("A", a),
		relation.NewNumericColumn("B", b),
	)
	flagged := rng.Perm(n)[:40]
	findings, err := ExplainRows(d, flagged, ExplainOptions{MaxP: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) > 1 {
		t.Errorf("random subset produced %d findings: %v", len(findings), findings)
	}
}

func TestExplainRowsValidation(t *testing.T) {
	d := figure2()
	if _, err := ExplainRows(d, nil, ExplainOptions{}); err == nil {
		t.Error("want error for empty rows")
	}
	if _, err := ExplainRows(d, []int{99}, ExplainOptions{}); err == nil {
		t.Error("want error for out-of-range row")
	}
	if _, err := ExplainRows(d, []int{1, 1}, ExplainOptions{}); err == nil {
		t.Error("want error for duplicate row")
	}
}
