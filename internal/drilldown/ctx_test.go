package drilldown

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"scoded/internal/relation"
	"scoded/internal/sc"
)

// countdownCtx reports DeadlineExceeded after a fixed number of Err calls,
// letting the tests interrupt the greedy loop mid-run deterministically
// (a wall-clock deadline would race with machine speed).
type countdownCtx struct {
	context.Context
	mu   sync.Mutex
	left int
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left <= 0 {
		return context.DeadlineExceeded
	}
	c.left--
	return nil
}

// TestTopKContextDeadlineMidGreedy: a deadline that expires mid-search
// interrupts the tau greedy loop between rounds; the error reports how far
// it got and wraps context.DeadlineExceeded.
func TestTopKContextDeadlineMidGreedy(t *testing.T) {
	d, _ := numericWithSortedHead(200, 60, 17)
	ctx := &countdownCtx{Context: context.Background(), left: 25}
	_, err := TopKContext(ctx, d, sc.MustParse("X _||_ Y"), 60, Options{Strategy: K})
	if err == nil {
		t.Fatal("mid-greedy deadline ignored")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
	if !strings.Contains(err.Error(), "greedy rounds") {
		t.Fatalf("error %q does not report the interrupted round", err)
	}
}

// TestTopKContextDeadlineMidGreedyG: the same interruption through the
// categorical G path.
func TestTopKContextDeadlineMidGreedyG(t *testing.T) {
	d := figure2()
	ctx := &countdownCtx{Context: context.Background(), left: 3}
	_, err := TopKContext(ctx, d, sc.MustParse("Model _||_ Color"), 5, Options{Strategy: K, Method: GMethod})
	if err == nil {
		t.Fatal("mid-greedy deadline ignored")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
}

// TestTopKContextExpired: an already-expired real deadline fails promptly
// with a wrapped context.DeadlineExceeded.
func TestTopKContextExpired(t *testing.T) {
	d, _ := numericWithSortedHead(100, 30, 5)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	if _, err := TopKContext(ctx, d, sc.MustParse("X _||_ Y"), 10, Options{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want wrapped context.DeadlineExceeded", err)
	}
}

// TestTopKContextIdentity: with a background context the Context variant is
// the same computation as the wrapper — bit-identical rows and statistics.
func TestTopKContextIdentity(t *testing.T) {
	d, _ := numericWithSortedHead(200, 60, 23)
	c := sc.MustParse("X _||_ Y")
	plain, err := TopK(d, c, 40, Options{Strategy: Kc})
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := TopKContext(context.Background(), d, c, 40, Options{Strategy: Kc})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Rows) != len(ctxed.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(plain.Rows), len(ctxed.Rows))
	}
	for i := range plain.Rows {
		if plain.Rows[i] != ctxed.Rows[i] {
			t.Fatalf("row %d differs: %d vs %d", i, plain.Rows[i], ctxed.Rows[i])
		}
	}
	if plain.InitialStat != ctxed.InitialStat || plain.FinalStat != ctxed.FinalStat {
		t.Fatalf("statistics differ: %+v vs %+v", plain, ctxed)
	}
}

// TestMultiTopKContextCancelled: a dead context fails the family with the
// lowest-indexed constraint's wrapped cancellation error.
func TestMultiTopKContextCancelled(t *testing.T) {
	d := relation.MustNew(
		relation.NewCategoricalColumn("A", []string{"x", "x", "y", "y", "x", "y"}),
		relation.NewCategoricalColumn("B", []string{"u", "u", "v", "v", "u", "v"}),
	)
	cs := []sc.SC{sc.MustParse("A _||_ B"), sc.MustParse("B _||_ A")}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MultiTopKContext(ctx, d, cs, 3, Options{})
	if err == nil {
		t.Fatal("cancelled family returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "drilldown: constraint A _||_ B") {
		t.Fatalf("error %q does not name the lowest-indexed constraint", err)
	}
}
