package drilldown

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"scoded/internal/kernel"
	"scoded/internal/relation"
	"scoded/internal/sc"
)

// cacheRelation builds a randomized relation exercising both drill-down
// paths: categorical pairs (G) and tied numeric pairs (tau), with a
// conditioning column.
func cacheRelation(rng *rand.Rand, n int) *relation.Relation {
	av := make([]string, n)
	bv := make([]string, n)
	zv := make([]string, n)
	uv := make([]float64, n)
	vv := make([]float64, n)
	for i := 0; i < n; i++ {
		a := rng.Intn(3)
		av[i] = fmt.Sprintf("a%d", a)
		b := rng.Intn(3)
		if rng.Float64() < 0.5 {
			b = a
		}
		bv[i] = fmt.Sprintf("b%d", b)
		zv[i] = fmt.Sprintf("z%d", rng.Intn(3))
		uv[i] = math.Floor(rng.Float64() * 6)
		vv[i] = uv[i] + float64(rng.Intn(4))
	}
	d, err := relation.New(
		relation.NewCategoricalColumn("A", av),
		relation.NewCategoricalColumn("B", bv),
		relation.NewCategoricalColumn("Z", zv),
		relation.NewNumericColumn("U", uv),
		relation.NewNumericColumn("V", vv),
	)
	if err != nil {
		panic(err)
	}
	return d
}

// TestTopKCacheIdentity asserts TopK returns identical results with and
// without a kernel cache — including on a cache pre-warmed by other
// constraints — across strategies, methods and conditioning.
func TestTopKCacheIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := cacheRelation(rng, 240)
	cache := kernel.New(d)
	constraints := []sc.SC{
		sc.MustParse("A _||_ B"),
		sc.MustParse("A ~||~ B"),
		sc.MustParse("A _||_ B | Z"),
		sc.MustParse("U _||_ V"),
		sc.MustParse("U _||_ V | Z"),
		sc.MustParse("A _||_ U | Z"), // mixed pair → G with discretization
	}
	for _, c := range constraints {
		for _, strat := range []Strategy{K, Kc} {
			for _, obj := range []GObjective{CellContribution, ExactDelta} {
				opts := Options{Strategy: strat, GObjective: obj, Bins: 3}
				label := fmt.Sprintf("%s/%s/%s", c, strat, obj)
				base, baseErr := TopK(d, c, 12, opts)
				opts.Cache = cache
				cached, cachedErr := TopK(d, c, 12, opts)
				if (baseErr == nil) != (cachedErr == nil) {
					t.Fatalf("%s: err %v vs %v", label, baseErr, cachedErr)
				}
				if baseErr != nil {
					if baseErr.Error() != cachedErr.Error() {
						t.Errorf("%s: err %q vs %q", label, baseErr, cachedErr)
					}
					continue
				}
				if !reflect.DeepEqual(base, cached) {
					t.Errorf("%s: cached drill-down diverged:\n%+v\nvs\n%+v", label, cached, base)
				}
			}
		}
	}
	if s := cache.Stats(); s.Hits == 0 || s.Misses == 0 {
		t.Errorf("cache unused: %+v", s)
	}
}

// TestTopKCacheWrongRelation pins the binding check.
func TestTopKCacheWrongRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d1 := cacheRelation(rng, 60)
	d2 := cacheRelation(rng, 60)
	_, err := TopK(d1, sc.MustParse("A _||_ B"), 5, Options{Cache: kernel.New(d2)})
	if err == nil {
		t.Fatal("expected an error for a cache bound to another relation")
	}
}
