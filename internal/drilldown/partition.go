package drilldown

import (
	"fmt"

	"scoded/internal/detect"
	"scoded/internal/relation"
	"scoded/internal/sc"
)

// PartitionResult reports the dataset-partition outcome (Definition 6).
type PartitionResult struct {
	// Removed are the rows whose removal resolves the violation, in removal
	// order.
	Removed []int
	// FinalP is the p-value of the constraint on the surviving records.
	FinalP float64
	// Resolved is false when the budget was exhausted before the violation
	// was resolved.
	Resolved bool
}

// Partition solves the dataset-partition problem greedily: find a small set
// of records whose removal makes the constraint hold, i.e. brings the
// p-value above α for an ISC (below α for a DSC). Per Theorem 1 the
// partition problem reduces to top-k: the K-strategy removal order is
// nested in k, so growing k one record at a time and re-testing after each
// removal realizes the reduction. maxRemove bounds the search (0 means up to
// half the dataset).
func Partition(d *relation.Relation, a sc.Approximate, opts Options, maxRemove int) (PartitionResult, error) {
	if err := a.Validate(); err != nil {
		return PartitionResult{}, err
	}
	if !a.SC.IsSingle() {
		return PartitionResult{}, fmt.Errorf("drilldown: set-valued constraint %s; decompose first", a.SC)
	}
	if maxRemove <= 0 {
		maxRemove = d.NumRows() / 2
	}
	if maxRemove >= d.NumRows() {
		maxRemove = d.NumRows() - 1
	}

	res := PartitionResult{}
	check := func(rel *relation.Relation) (bool, float64, error) {
		cr, err := detect.Check(rel, a, detect.Options{Bins: opts.Bins, MinStratumSize: opts.MinStratumSize})
		if err != nil {
			return false, 0, err
		}
		return cr.Violated, cr.Test.P, nil
	}

	violated, p, err := check(d)
	if err != nil {
		return PartitionResult{}, err
	}
	res.FinalP = p
	if !violated {
		res.Resolved = true
		return res, nil
	}

	// The K-strategy order is nested in k, so the top-(i+1) set is the
	// top-i set plus one record: compute the maximal prefix once and
	// re-test cumulatively.
	top, err := TopK(d, a.SC, maxRemove, Options{Strategy: K, Bins: opts.Bins, MinStratumSize: opts.MinStratumSize})
	if err != nil {
		return PartitionResult{}, err
	}
	drop := make(map[int]bool, maxRemove)
	for _, row := range top.Rows {
		drop[row] = true
		res.Removed = append(res.Removed, row)
		violated, p, err = check(d.Drop(drop))
		if err != nil {
			return PartitionResult{}, err
		}
		res.FinalP = p
		if !violated {
			res.Resolved = true
			return res, nil
		}
	}
	return res, nil
}
