package drilldown

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"scoded/internal/relation"
	"scoded/internal/sc"
)

// multiStratumRelation builds a randomized relation with a conditioning
// column and planted per-stratum structure, exercising both drill-down
// paths under heavy ties: categorical pairs (G) and integer-valued numeric
// pairs (tau). Ties are the adversarial case for the delta argmax — they
// force the tie-breaking rules to carry the identity.
func multiStratumRelation(rng *rand.Rand, n, strata int) *relation.Relation {
	av := make([]string, n)
	bv := make([]string, n)
	zv := make([]string, n)
	uv := make([]float64, n)
	vv := make([]float64, n)
	for i := 0; i < n; i++ {
		a := rng.Intn(4)
		av[i] = fmt.Sprintf("a%d", a)
		b := rng.Intn(4)
		if rng.Float64() < 0.4 {
			b = a
		}
		bv[i] = fmt.Sprintf("b%d", b)
		zv[i] = fmt.Sprintf("z%d", rng.Intn(strata))
		uv[i] = float64(rng.Intn(8)) // heavy ties
		vv[i] = uv[i] + float64(rng.Intn(5))
		if rng.Float64() < 0.2 {
			vv[i] = float64(rng.Intn(12))
		}
	}
	return relation.MustNew(
		relation.NewCategoricalColumn("A", av),
		relation.NewCategoricalColumn("B", bv),
		relation.NewCategoricalColumn("Z", zv),
		relation.NewNumericColumn("U", uv),
		relation.NewNumericColumn("V", vv),
	)
}

// TestDeltaGreedyMatchesLinear is the identity property test of the
// delta-argmax fast path: across random multi-stratum relations, both
// strategies, both methods, both G objectives, and both constraint
// directions, TopK must return exactly the seed-era linear greedy's result —
// same rows in the same order, and bit-identical statistics.
func TestDeltaGreedyMatchesLinear(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := multiStratumRelation(rng, 160+rng.Intn(120), 1+rng.Intn(4))
		constraints := []sc.SC{
			sc.MustParse("A _||_ B"),
			sc.MustParse("A ~||~ B"),
			sc.MustParse("A _||_ B | Z"),
			sc.MustParse("U _||_ V"),
			sc.MustParse("U ~||~ V"),
			sc.MustParse("U _||_ V | Z"), // multi-stratum numeric: the K^c hot path
			sc.MustParse("A _||_ U | Z"), // mixed pair → G with discretization
		}
		for _, c := range constraints {
			for _, strat := range []Strategy{K, Kc} {
				for _, obj := range []GObjective{CellContribution, ExactDelta} {
					for _, k := range []int{1, 7, 40} {
						opts := Options{Strategy: strat, GObjective: obj, Bins: 3}
						label := fmt.Sprintf("seed%d/%s/%s/%s/k=%d", seed, c, strat, obj, k)
						fast, fastErr := TopK(d, c, k, opts)
						ref, refErr := TopKLinear(d, c, k, opts)
						if (fastErr == nil) != (refErr == nil) {
							t.Fatalf("%s: err %v vs %v", label, fastErr, refErr)
						}
						if fastErr != nil {
							if fastErr.Error() != refErr.Error() {
								t.Errorf("%s: err %q vs %q", label, fastErr, refErr)
							}
							continue
						}
						if !reflect.DeepEqual(fast, ref) {
							t.Errorf("%s: delta argmax diverged from linear greedy:\n%+v\nvs\n%+v",
								label, fast, ref)
						}
					}
				}
			}
		}
	}
}

// TestDeltaGreedyMatchesLinearLargeKc pins the exact hot path of the
// acceptance benchmark — a K^c drill over a multi-stratum numeric
// constraint where almost every record is removed — at a size big enough
// for thousands of rounds.
func TestDeltaGreedyMatchesLinearLargeKc(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	d := multiStratumRelation(rng, 1200, 6)
	for _, c := range []sc.SC{sc.MustParse("U _||_ V | Z"), sc.MustParse("A _||_ B | Z")} {
		fast, err := TopK(d, c, 25, Options{Strategy: Kc})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := TopKLinear(d, c, 25, Options{Strategy: Kc})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fast, ref) {
			t.Errorf("%s: large K^c drill diverged from linear greedy", c)
		}
	}
}

// TestDeltaMatchesBruteArgmax chains the identity to the brute-force
// oracle: for k=1 the greedy argmax is provably optimal (a single removal),
// so TopK, TopKLinear and BruteForceTopK must all select the same record.
// The tau objective is exact integer arithmetic; the G comparison uses the
// ExactDelta objective, which optimizes the same quantity brute force
// enumerates.
func TestDeltaMatchesBruteArgmax(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))

		// Numeric marginal pair, continuous values (no ties).
		n := 18 + rng.Intn(8)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = 0.7*x[i] + rng.NormFloat64()
		}
		num := relation.MustNew(
			relation.NewNumericColumn("X", x),
			relation.NewNumericColumn("Y", y),
		)
		checkBruteArgmax(t, seed, num, sc.MustParse("X _||_ Y"), Options{Strategy: K}, true)

		// Categorical marginal pair under the exact-delta objective.
		a := make([]string, n)
		b := make([]string, n)
		for i := range a {
			ai := rng.Intn(3)
			bi := rng.Intn(3)
			if rng.Float64() < 0.5 {
				bi = ai
			}
			a[i] = fmt.Sprintf("a%d", ai)
			b[i] = fmt.Sprintf("b%d", bi)
		}
		cat := relation.MustNew(
			relation.NewCategoricalColumn("A", a),
			relation.NewCategoricalColumn("B", b),
		)
		checkBruteArgmax(t, seed, cat, sc.MustParse("A _||_ B"),
			Options{Strategy: K, GObjective: ExactDelta}, false)
	}
}

// checkBruteArgmax asserts the k=1 identity chain delta == linear == brute.
// The tau path's pair counts are exact integer-valued floats, so its rows
// must match the oracle exactly (exactRows). The G path's incremental
// deltaG and brute force's full recompute round differently on analytically
// tied cells, so its identity is asserted on the achieved objective — the
// statistic after removing the greedy's pick must equal the brute optimum.
func checkBruteArgmax(t *testing.T, seed int64, d *relation.Relation, c sc.SC, opts Options, exactRows bool) {
	t.Helper()
	fast, err := TopK(d, c, 1, opts)
	if err != nil {
		t.Fatalf("seed %d %s: %v", seed, c, err)
	}
	ref, err := TopKLinear(d, c, 1, opts)
	if err != nil {
		t.Fatalf("seed %d %s: %v", seed, c, err)
	}
	brute, err := BruteForceTopK(d, c, 1, opts)
	if err != nil {
		t.Fatalf("seed %d %s: %v", seed, c, err)
	}
	if !reflect.DeepEqual(fast.Rows, ref.Rows) {
		t.Errorf("seed %d %s: delta %v vs linear %v", seed, c, fast.Rows, ref.Rows)
	}
	if exactRows {
		if !reflect.DeepEqual(fast.Rows, brute.Rows) {
			t.Errorf("seed %d %s: greedy argmax %v vs brute optimum %v", seed, c, fast.Rows, brute.Rows)
		}
		return
	}
	drop := map[int]bool{fast.Rows[0]: true}
	after, err := dependenceStat(d.Drop(drop), c, opts.withDefaults())
	if err != nil {
		t.Fatalf("seed %d %s: %v", seed, c, err)
	}
	if diff := math.Abs(math.Abs(after) - math.Abs(brute.FinalStat)); diff > 1e-9 {
		t.Errorf("seed %d %s: greedy pick %v achieves |stat|=%v, brute optimum %v (row %v)",
			seed, c, fast.Rows, math.Abs(after), math.Abs(brute.FinalStat), brute.Rows)
	}
}

// TestTopKLinearExposedSemantics pins that TopKLinear shares TopK's full
// contract (validation, strategies, conditioning) — it differs only in the
// selection bookkeeping.
func TestTopKLinearExposedSemantics(t *testing.T) {
	d := figure2()
	if _, err := TopKLinear(d, sc.MustParse("Model _||_ Color"), 0, Options{}); err == nil {
		t.Error("want error for k=0")
	}
	res, err := TopKLinear(d, sc.MustParse("Model _||_ Color"), 5, Options{Strategy: Kc})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 || res.Strategy != Kc {
		t.Errorf("unexpected result: %+v", res)
	}
}
