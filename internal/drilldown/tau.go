package drilldown

import (
	"context"
	"fmt"
	"math"
	"sort"

	"scoded/internal/relation"
	"scoded/internal/sc"
	"scoded/internal/segtree"
)

// tauStratum holds the drill-down state for one conditioning stratum of a
// numeric constraint.
type tauStratum struct {
	rows    []int     // original row indices
	x, y    []float64 // column values, parallel to rows
	contrib []float64 // per-record concordant-minus-discordant pair sum
	alive   []bool
	s       float64 // current nc - nd of the stratum
	nAlive  int

	// Delta-argmax cache (DESIGN.md §10): the stratum's current best
	// candidate under the active greedy direction. Valid between rounds —
	// removing a record only mutates its own stratum, so only the touched
	// stratum is rescanned.
	bestIdx   int
	bestScore float64
}

// rescanBest recomputes the stratum's best candidate exactly as one round of
// the seed linear scan would: lowest alive index among the maximal scores
// (strict > keeps the first). It reports whether any candidate remains.
func (st *tauStratum) rescanBest(dependence, best bool) bool {
	st.bestIdx = -1
	for i, ok := range st.alive {
		if !ok {
			continue
		}
		impr := improvement(st.s, st.contrib[i], dependence)
		score := impr
		if !best {
			score = -impr
		}
		if st.bestIdx == -1 || score > st.bestScore {
			st.bestIdx, st.bestScore = i, score
		}
	}
	return st.bestIdx != -1
}

// tauTopK runs the tau-statistic drill-down (Algorithm 2 plus the K / K^c
// greedy loops) on a numeric pair.
func tauTopK(ctx context.Context, d *relation.Relation, c sc.SC, k int, opts Options) (Result, error) {
	var strata []*tauStratum
	total := 0
	strataRows, strataKeys, err := strataFor(ctx, d, c, opts)
	if err != nil {
		return Result{}, err
	}
	for _, rows := range strataRows {
		total += len(rows)
	}
	if total < k {
		return Result{}, fmt.Errorf("drilldown: only %d records in testable strata, need k=%d", total, k)
	}
	// One arena per drill-down: the per-stratum contrib and alive slices are
	// carved out of two shared buffers, and the benefit-initialization
	// scratch (sort order, rank buffers, Fenwick trees) is reused across
	// strata, so the setup cost is a handful of allocations independent of
	// the stratum count.
	contribArena := make([]float64, total)
	aliveArena := make([]bool, total)
	var scratch tauScratch
	used := 0
	for si, rows := range strataRows {
		st := &tauStratum{rows: rows}
		// Cached column values are shared read-only: the greedy loop only
		// reads x and y, and mutates the stratum-private contrib slice.
		st.x, err = opts.Cache.FloatsContext(ctx, d, c.X[0], strataKeys[si], rows)
		if err != nil {
			return Result{}, fmt.Errorf("drilldown: %w", err)
		}
		st.y, err = opts.Cache.FloatsContext(ctx, d, c.Y[0], strataKeys[si], rows)
		if err != nil {
			return Result{}, fmt.Errorf("drilldown: %w", err)
		}
		st.contrib = contribArena[used : used+len(rows) : used+len(rows)]
		st.alive = aliveArena[used : used+len(rows) : used+len(rows)]
		used += len(rows)
		scratch.initBenefits(st.contrib, st.x, st.y)
		for i := range st.alive {
			st.alive[i] = true
		}
		st.nAlive = len(rows)
		for _, b := range st.contrib {
			st.s += b
		}
		st.s /= 2 // each pair counted from both endpoints
		strata = append(strata, st)
	}

	res := Result{Strategy: opts.resolve(c), InitialStat: sumStats(strata)}
	greedy := tauGreedyDelta
	if opts.linear {
		greedy = tauGreedyLinear
	}
	switch res.Strategy {
	case K:
		res.Rows, err = greedy(ctx, strata, k, c.Dependence, true)
	default:
		_, err = greedy(ctx, strata, total-k, c.Dependence, false)
		res.Rows = survivors(strata, k)
	}
	if err != nil {
		return Result{}, err
	}
	res.FinalStat = sumStats(strata)
	return res, nil
}

func sumStats(strata []*tauStratum) float64 {
	var s float64
	for _, st := range strata {
		s += st.s
	}
	return s
}

// tauGreedyLinear removes `rounds` records one at a time with the seed-era
// full rescan: every round scans every alive record of every stratum. When
// best is true each round removes the record whose removal most improves the
// objective (the K strategy); when false, the record whose removal most
// deteriorates it (the K^c strategy). Removed records are returned in
// removal order as original row indices.
//
// The objective is sum over strata of |nc - nd|, minimized for an ISC and
// maximized for a DSC. Removing record i from stratum z changes the
// stratum's statistic from s to s - contrib(i), so the improvement is
// computable in O(1) per candidate; each round scans the alive records and
// then updates the contributions of the removed record's stratum in O(n_z).
//
// This is the reference implementation behind TopKLinear: the delta-argmax
// fast path below must match it row for row (delta_identity_test.go), and
// internal/drillbench reports the speedup of the fast path against it.
func tauGreedyLinear(ctx context.Context, strata []*tauStratum, rounds int, dependence, best bool) ([]int, error) {
	removed := make([]int, 0, rounds)
	for round := 0; round < rounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("drilldown: interrupted after %d greedy rounds: %w", round, err)
		}
		selStratum, selIdx := -1, -1
		var selScore float64
		for si, st := range strata {
			if st.nAlive == 0 {
				continue
			}
			for i, ok := range st.alive {
				if !ok {
					continue
				}
				impr := improvement(st.s, st.contrib[i], dependence)
				score := impr
				if !best {
					score = -impr
				}
				if selIdx == -1 || score > selScore {
					selStratum, selIdx, selScore = si, i, score
				}
			}
		}
		if selIdx == -1 {
			break
		}
		strata[selStratum].removeRecord(selIdx)
		removed = append(removed, strata[selStratum].rows[selIdx])
	}
	return removed, nil
}

// tauGreedyDelta is the incremental argmax form of the greedy loop: each
// stratum caches its best candidate and an indexed max-heap over strata
// (segtree.MaxHeap, ids = stratum indices) yields the global argmax in
// O(log S). Removing a record only mutates its own stratum, so each round
// rescans and re-keys exactly one stratum: O(n_z + log S) per round instead
// of the linear scan's O(n_total).
//
// Selection is row-for-row identical to tauGreedyLinear: untouched strata
// keep bit-identical cached scores (their inputs are unchanged and the score
// function is deterministic), within-stratum ties keep the lowest record
// index (rescanBest's strict >), and cross-strata ties keep the lowest
// stratum index (the heap's deterministic id tie-break).
func tauGreedyDelta(ctx context.Context, strata []*tauStratum, rounds int, dependence, best bool) ([]int, error) {
	h := segtree.NewMaxHeap()
	for si, st := range strata {
		if st.rescanBest(dependence, best) {
			h.Push(si, st.bestScore)
		}
	}
	removed := make([]int, 0, rounds)
	for round := 0; round < rounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("drilldown: interrupted after %d greedy rounds: %w", round, err)
		}
		si, _, ok := h.Peek()
		if !ok {
			break
		}
		st := strata[si]
		selIdx := st.bestIdx
		st.removeRecord(selIdx)
		removed = append(removed, st.rows[selIdx])
		if st.rescanBest(dependence, best) {
			h.Update(si, st.bestScore)
		} else {
			h.Remove(si)
		}
	}
	return removed, nil
}

// removeRecord takes record i out of the stratum and updates the surviving
// contributions: pair weights with the removed record disappear.
func (st *tauStratum) removeRecord(i int) {
	st.alive[i] = false
	st.nAlive--
	st.s -= st.contrib[i]
	xi, yi := st.x[i], st.y[i]
	for j, ok := range st.alive {
		if !ok {
			continue
		}
		st.contrib[j] -= pairWeight(xi, yi, st.x[j], st.y[j])
	}
}

// improvement is the objective gain from removing a record with the given
// contribution from a stratum with statistic s: for an ISC (dependence
// false) the objective is to shrink |s|; for a DSC to grow it.
func improvement(s, contrib float64, dependence bool) float64 {
	delta := math.Abs(s) - math.Abs(s-contrib)
	if dependence {
		return -delta
	}
	return delta
}

// pairWeight is 1 for a concordant pair, -1 for discordant, 0 for tied.
func pairWeight(x1, y1, x2, y2 float64) float64 {
	dx, dy := x1-x2, y1-y2
	switch {
	//scoded:lint-ignore floatcmp Kendall ties are defined by exact value equality
	case dx == 0 || dy == 0:
		return 0
	case (dx > 0) == (dy > 0):
		return 1
	default:
		return -1
	}
}

// survivors returns the alive rows of all strata, in original order. k is
// the expected survivor count (a capacity hint).
func survivors(strata []*tauStratum, k int) []int {
	out := make([]int, 0, k)
	for _, st := range strata {
		for i, ok := range st.alive {
			if ok {
				out = append(out, st.rows[i])
			}
		}
	}
	sort.Ints(out)
	return out
}

// tauScratch holds the reusable buffers of the benefit initialization so a
// multi-stratum drill-down allocates the sort order, rank and Fenwick
// buffers once instead of once per stratum. The zero value is ready to use.
type tauScratch struct {
	order  []int
	ranks  []int
	sorted []float64
	t1, t2 *segtree.Fenwick
}

// initBenefits computes every record's concordant-minus-discordant pair sum
// into benefit (parallel to x and y) in O(n log n) with two Fenwick-tree
// passes over the rank-compressed Y axis, exactly as in Algorithm 2: the
// ascending pass accounts for pairs with smaller X, the descending pass for
// pairs with larger X. Records tied on X are processed as a block — queried
// before any of the block is inserted — so X-ties contribute zero weight.
func (ts *tauScratch) initBenefits(benefit []float64, x, y []float64) {
	n := len(x)
	for i := range benefit {
		benefit[i] = 0
	}
	if n == 0 {
		return
	}
	var distinct int
	ts.ranks, distinct, ts.sorted = segtree.CompressRanksInto(y, ts.ranks, ts.sorted)
	yRank := ts.ranks

	if cap(ts.order) < n {
		ts.order = make([]int, n)
	}
	order := ts.order[:n]
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return x[order[a]] < x[order[b]] })

	if ts.t1 == nil {
		ts.t1, ts.t2 = segtree.NewFenwick(distinct), segtree.NewFenwick(distinct)
	}
	// Ascending pass: tree T1 holds records with strictly smaller X.
	t1 := ts.t1
	t1.Reset(distinct)
	for i := 0; i < n; {
		j := i
		//scoded:lint-ignore floatcmp X-runs group exactly-equal sorted data values
		for j+1 < n && x[order[j+1]] == x[order[i]] {
			j++
		}
		for m := i; m <= j; m++ {
			id := order[m]
			nc := t1.CountBelow(yRank[id])
			nd := t1.CountAbove(yRank[id])
			benefit[id] += float64(nc - nd)
		}
		for m := i; m <= j; m++ {
			t1.Insert(yRank[order[m]], 1)
		}
		i = j + 1
	}

	// Descending pass: tree T2 holds records with strictly larger X.
	t2 := ts.t2
	t2.Reset(distinct)
	for i := n - 1; i >= 0; {
		j := i
		//scoded:lint-ignore floatcmp X-runs group exactly-equal sorted data values
		for j-1 >= 0 && x[order[j-1]] == x[order[i]] {
			j--
		}
		for m := j; m <= i; m++ {
			id := order[m]
			nc := t2.CountAbove(yRank[id])
			nd := t2.CountBelow(yRank[id])
			benefit[id] += float64(nc - nd)
		}
		for m := j; m <= i; m++ {
			t2.Insert(yRank[order[m]], 1)
		}
		i = j - 1
	}
}

// initBenefits computes every record's concordant-minus-discordant pair sum
// with a one-shot scratch; kept for the property tests that pin the fast
// initialization against the naive O(n²) pair count.
func initBenefits(x, y []float64) []float64 {
	benefit := make([]float64, len(x))
	var scratch tauScratch
	scratch.initBenefits(benefit, x, y)
	return benefit
}
