package drilldown

import (
	"fmt"
	"math"
	"sort"

	"scoded/internal/relation"
	"scoded/internal/sc"
	"scoded/internal/segtree"
)

// tauStratum holds the drill-down state for one conditioning stratum of a
// numeric constraint.
type tauStratum struct {
	rows    []int     // original row indices
	x, y    []float64 // column values, parallel to rows
	contrib []float64 // per-record concordant-minus-discordant pair sum
	alive   []bool
	s       float64 // current nc - nd of the stratum
	nAlive  int
}

// tauTopK runs the tau-statistic drill-down (Algorithm 2 plus the K / K^c
// greedy loops) on a numeric pair.
func tauTopK(d *relation.Relation, c sc.SC, k int, opts Options) (Result, error) {
	var strata []*tauStratum
	total := 0
	strataRows, strataKeys := strataFor(d, c, opts)
	for si, rows := range strataRows {
		st := &tauStratum{rows: rows}
		// Cached column values are shared read-only: the greedy loop only
		// reads x and y, and mutates the stratum-private contrib slice.
		st.x = opts.Cache.Floats(d, c.X[0], strataKeys[si], rows)
		st.y = opts.Cache.Floats(d, c.Y[0], strataKeys[si], rows)
		st.contrib = initBenefits(st.x, st.y)
		st.alive = make([]bool, len(rows))
		for i := range st.alive {
			st.alive[i] = true
		}
		st.nAlive = len(rows)
		for _, b := range st.contrib {
			st.s += b
		}
		st.s /= 2 // each pair counted from both endpoints
		strata = append(strata, st)
		total += len(rows)
	}
	if total < k {
		return Result{}, fmt.Errorf("drilldown: only %d records in testable strata, need k=%d", total, k)
	}

	res := Result{Strategy: opts.resolve(c), InitialStat: sumStats(strata)}
	switch res.Strategy {
	case K:
		res.Rows = tauGreedy(strata, k, c.Dependence, true)
	default:
		tauGreedy(strata, total-k, c.Dependence, false)
		res.Rows = survivors(strata)
	}
	res.FinalStat = sumStats(strata)
	return res, nil
}

func sumStats(strata []*tauStratum) float64 {
	var s float64
	for _, st := range strata {
		s += st.s
	}
	return s
}

// tauGreedy removes `rounds` records one at a time. When best is true each
// round removes the record whose removal most improves the objective (the K
// strategy); when false, the record whose removal most deteriorates it (the
// K^c strategy). Removed records are returned in removal order as original
// row indices.
//
// The objective is sum over strata of |nc - nd|, minimized for an ISC and
// maximized for a DSC. Removing record i from stratum z changes the
// stratum's statistic from s to s - contrib(i), so the improvement is
// computable in O(1) per candidate; each round scans the alive records and
// then updates the contributions of the removed record's stratum in O(n_z).
func tauGreedy(strata []*tauStratum, rounds int, dependence, best bool) []int {
	removed := make([]int, 0, rounds)
	for round := 0; round < rounds; round++ {
		selStratum, selIdx := -1, -1
		var selScore float64
		for si, st := range strata {
			if st.nAlive == 0 {
				continue
			}
			for i, ok := range st.alive {
				if !ok {
					continue
				}
				impr := improvement(st.s, st.contrib[i], dependence)
				score := impr
				if !best {
					score = -impr
				}
				if selIdx == -1 || score > selScore {
					selStratum, selIdx, selScore = si, i, score
				}
			}
		}
		if selIdx == -1 {
			break
		}
		st := strata[selStratum]
		st.alive[selIdx] = false
		st.nAlive--
		st.s -= st.contrib[selIdx]
		// Update surviving contributions: pair weights with the removed
		// record disappear.
		xi, yi := st.x[selIdx], st.y[selIdx]
		for j, ok := range st.alive {
			if !ok {
				continue
			}
			st.contrib[j] -= pairWeight(xi, yi, st.x[j], st.y[j])
		}
		removed = append(removed, st.rows[selIdx])
	}
	return removed
}

// improvement is the objective gain from removing a record with the given
// contribution from a stratum with statistic s: for an ISC (dependence
// false) the objective is to shrink |s|; for a DSC to grow it.
func improvement(s, contrib float64, dependence bool) float64 {
	delta := math.Abs(s) - math.Abs(s-contrib)
	if dependence {
		return -delta
	}
	return delta
}

// pairWeight is 1 for a concordant pair, -1 for discordant, 0 for tied.
func pairWeight(x1, y1, x2, y2 float64) float64 {
	dx, dy := x1-x2, y1-y2
	switch {
	//scoded:lint-ignore floatcmp Kendall ties are defined by exact value equality
	case dx == 0 || dy == 0:
		return 0
	case (dx > 0) == (dy > 0):
		return 1
	default:
		return -1
	}
}

// survivors returns the alive rows of all strata, in original order.
func survivors(strata []*tauStratum) []int {
	var out []int
	for _, st := range strata {
		for i, ok := range st.alive {
			if ok {
				out = append(out, st.rows[i])
			}
		}
	}
	sort.Ints(out)
	return out
}

// initBenefits computes every record's concordant-minus-discordant pair sum
// in O(n log n) with two Fenwick-tree passes over the rank-compressed Y
// axis, exactly as in Algorithm 2: the ascending pass accounts for pairs
// with smaller X, the descending pass for pairs with larger X. Records tied
// on X are processed as a block — queried before any of the block is
// inserted — so X-ties contribute zero weight.
func initBenefits(x, y []float64) []float64 {
	n := len(x)
	benefit := make([]float64, n)
	if n == 0 {
		return benefit
	}
	yRank, distinct := segtree.CompressRanks(y)

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return x[order[a]] < x[order[b]] })

	// Ascending pass: tree T1 holds records with strictly smaller X.
	t1 := segtree.NewFenwick(distinct)
	for i := 0; i < n; {
		j := i
		//scoded:lint-ignore floatcmp X-runs group exactly-equal sorted data values
		for j+1 < n && x[order[j+1]] == x[order[i]] {
			j++
		}
		for m := i; m <= j; m++ {
			id := order[m]
			nc := t1.CountBelow(yRank[id])
			nd := t1.CountAbove(yRank[id])
			benefit[id] += float64(nc - nd)
		}
		for m := i; m <= j; m++ {
			t1.Insert(yRank[order[m]], 1)
		}
		i = j + 1
	}

	// Descending pass: tree T2 holds records with strictly larger X.
	t2 := segtree.NewFenwick(distinct)
	for i := n - 1; i >= 0; {
		j := i
		//scoded:lint-ignore floatcmp X-runs group exactly-equal sorted data values
		for j-1 >= 0 && x[order[j-1]] == x[order[i]] {
			j--
		}
		for m := j; m <= i; m++ {
			id := order[m]
			nc := t2.CountAbove(yRank[id])
			nd := t2.CountBelow(yRank[id])
			benefit[id] += float64(nc - nd)
		}
		for m := j; m <= i; m++ {
			t2.Insert(yRank[order[m]], 1)
		}
		i = j - 1
	}
	return benefit
}
