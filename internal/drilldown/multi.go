package drilldown

import (
	"context"
	"fmt"

	"scoded/internal/engine"
	"scoded/internal/relation"
	"scoded/internal/sc"
)

// MultiTopK pools drill-downs with no deadline; see MultiTopKContext.
func MultiTopK(d *relation.Relation, cs []sc.SC, k int, opts Options) ([]int, error) {
	return MultiTopKContext(context.Background(), d, cs, k, opts)
}

// MultiTopKContext drills into several constraints at once and returns a
// single top-k record list: each constraint is drilled for up to k records
// and the per-constraint rankings are merged round-robin with
// deduplication, so a record incriminated by several constraints keeps its
// best (earliest) rank. This mirrors how the multi-constraint baselines
// pool evidence in the paper's Figure 9(b) experiment.
//
// Constraints are drilled concurrently over the engine's bounded worker
// pool (Options.Workers, GOMAXPROCS by default), sharing Options.Cache —
// the kernel cache is single-flight, so parallel drills compute each
// partition and float projection once. The merged ranking is identical to
// a sequential run: lists are pooled in constraint order and a failing
// constraint surfaces the lowest-indexed error. When ctx ends, drills that
// never started (and drills interrupted mid-greedy-loop) fail with an
// error wrapping the context's error, which surfaces the same way.
//
// A constraint whose testable strata hold fewer than k records contributes
// its full ranking instead of failing, so the pooled result can hold fewer
// than k rows when the constraints cannot incriminate enough distinct
// records between them.
func MultiTopKContext(ctx context.Context, d *relation.Relation, cs []sc.SC, k int, opts Options) ([]int, error) {
	if len(cs) == 0 {
		return nil, fmt.Errorf("drilldown: no constraints given")
	}
	lists := make([][]int, len(cs))
	errs := engine.Run(ctx, len(cs), engine.Options{Workers: opts.Workers, Hooks: opts.Hooks},
		func(ctx context.Context, i int) error {
			ki := k
			// Clamp to the constraint's drillable row count so one narrow
			// constraint (small testable strata) pools what it has instead of
			// failing the batch. Validation errors fall through to TopK, which
			// reports them properly.
			if total, err := drillableRows(ctx, d, cs[i], opts); err == nil && total > 0 && total < ki {
				ki = total
			}
			res, err := TopKContext(ctx, d, cs[i], ki, opts)
			if err != nil {
				return err
			}
			lists[i] = res.Rows
			return nil
		})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("drilldown: constraint %s: %w", cs[i], err)
		}
	}

	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for pos := 0; len(out) < k; pos++ {
		progressed := false
		for _, l := range lists {
			if pos >= len(l) {
				continue
			}
			progressed = true
			if !seen[l[pos]] {
				seen[l[pos]] = true
				out = append(out, l[pos])
				if len(out) == k {
					break
				}
			}
		}
		if !progressed {
			break
		}
	}
	return out, nil
}
