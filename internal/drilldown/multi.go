package drilldown

import (
	"fmt"
	"runtime"
	"sync"

	"scoded/internal/relation"
	"scoded/internal/sc"
)

// MultiTopK drills into several constraints at once and returns a single
// top-k record list: each constraint is drilled for up to k records and the
// per-constraint rankings are merged round-robin with deduplication, so a
// record incriminated by several constraints keeps its best (earliest)
// rank. This mirrors how the multi-constraint baselines pool evidence in
// the paper's Figure 9(b) experiment.
//
// Constraints are drilled concurrently over a bounded worker pool
// (Options.Workers, GOMAXPROCS by default), sharing Options.Cache — the
// kernel cache is single-flight, so parallel drills compute each partition
// and float projection once. The merged ranking is identical to a
// sequential run: lists are pooled in constraint order and a failing
// constraint surfaces the lowest-indexed error.
//
// A constraint whose testable strata hold fewer than k records contributes
// its full ranking instead of failing, so the pooled result can hold fewer
// than k rows when the constraints cannot incriminate enough distinct
// records between them.
func MultiTopK(d *relation.Relation, cs []sc.SC, k int, opts Options) ([]int, error) {
	if len(cs) == 0 {
		return nil, fmt.Errorf("drilldown: no constraints given")
	}
	lists := make([][]int, len(cs))
	errs := make([]error, len(cs))
	drillOne := func(i int) {
		ki := k
		// Clamp to the constraint's drillable row count so one narrow
		// constraint (small testable strata) pools what it has instead of
		// failing the batch. Validation errors fall through to TopK, which
		// reports them properly.
		if total, err := drillableRows(d, cs[i], opts); err == nil && total > 0 && total < ki {
			ki = total
		}
		res, err := TopK(d, cs[i], ki, opts)
		if err != nil {
			errs[i] = fmt.Errorf("drilldown: constraint %s: %w", cs[i], err)
			return
		}
		lists[i] = res.Rows
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cs) {
		workers = len(cs)
	}
	if workers <= 1 {
		for i := range cs {
			drillOne(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					drillOne(i)
				}
			}()
		}
		for i := range cs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for pos := 0; len(out) < k; pos++ {
		progressed := false
		for _, l := range lists {
			if pos >= len(l) {
				continue
			}
			progressed = true
			if !seen[l[pos]] {
				seen[l[pos]] = true
				out = append(out, l[pos])
				if len(out) == k {
					break
				}
			}
		}
		if !progressed {
			break
		}
	}
	return out, nil
}
