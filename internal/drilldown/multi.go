package drilldown

import (
	"fmt"

	"scoded/internal/relation"
	"scoded/internal/sc"
)

// MultiTopK drills into several constraints at once and returns a single
// top-k record list: each constraint is drilled for up to k records and the
// per-constraint rankings are merged round-robin with deduplication, so a
// record incriminated by several constraints keeps its best (earliest)
// rank. This mirrors how the multi-constraint baselines pool evidence in
// the paper's Figure 9(b) experiment.
func MultiTopK(d *relation.Relation, cs []sc.SC, k int, opts Options) ([]int, error) {
	if len(cs) == 0 {
		return nil, fmt.Errorf("drilldown: no constraints given")
	}
	if len(cs) == 1 {
		res, err := TopK(d, cs[0], k, opts)
		if err != nil {
			return nil, err
		}
		return res.Rows, nil
	}
	lists := make([][]int, len(cs))
	for i, c := range cs {
		res, err := TopK(d, c, k, opts)
		if err != nil {
			return nil, fmt.Errorf("drilldown: constraint %s: %w", c, err)
		}
		lists[i] = res.Rows
	}
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for pos := 0; len(out) < k; pos++ {
		progressed := false
		for _, l := range lists {
			if pos >= len(l) {
				continue
			}
			progressed = true
			if !seen[l[pos]] {
				seen[l[pos]] = true
				out = append(out, l[pos])
				if len(out) == k {
					break
				}
			}
		}
		if !progressed {
			break
		}
	}
	return out, nil
}
