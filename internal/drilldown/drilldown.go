// Package drilldown implements SCODED's error-drill-down component
// (Section 5 of the paper): given a dataset and an SC whose violation was
// detected, identify the top-k records that contribute most to the
// violation.
//
// Two greedy strategies are provided. The K strategy repeatedly removes the
// best-to-remove record — the one whose removal moves the test statistic
// furthest towards what the constraint requires — and returns the k removed
// records. The K^c strategy repeatedly removes the worst-to-remove record
// and returns the k records that survive; the paper finds it better at
// isolating mutually correlated records for independence SCs.
//
// The direction of "improvement" depends on the constraint: for an
// independence SC the dependence statistic should shrink towards 0; for a
// dependence SC (violated when the dependence is too weak) it should grow.
//
// For categorical data the G statistic is used with the group-based
// optimization of Section 5.3: records in the same (X, Y) cell are
// interchangeable, and the change in G from removing one record of a cell is
// computable in O(1) from the cell count, the two marginals and N. For
// numeric data the tau statistic's per-record benefits (concordant minus
// discordant pair counts) are initialized in O(n log n) with two
// Fenwick-tree passes over the rank-compressed Y axis — Algorithm 2 — and
// maintained exactly across removals in O(n) per round.
package drilldown

import (
	"context"
	"fmt"

	"scoded/internal/engine"
	"scoded/internal/kernel"
	"scoded/internal/relation"
	"scoded/internal/sc"
)

// Strategy selects the greedy search strategy of Section 5.2.
type Strategy int

const (
	// Best picks the paper's recommended strategy per constraint type: K for
	// dependence SCs, K^c for independence SCs.
	Best Strategy = iota
	// K repeatedly removes the best-to-remove record, k times.
	K
	// Kc repeatedly removes the worst-to-remove record, n-k times, and
	// returns the remaining k records.
	Kc
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Best:
		return "best"
	case K:
		return "K"
	case Kc:
		return "Kc"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Method selects the drill-down statistic.
type Method int

const (
	// AutoMethod picks the tau path for numeric pairs and the G path
	// otherwise.
	AutoMethod Method = iota
	// GMethod forces the group-based G path; numeric columns are
	// quantile-discretized. Use it for non-monotone dependencies (such as
	// the Hockey case study's imputed zeros) that rank correlation cannot
	// see.
	GMethod
	// TauMethod forces the tau path; both columns must be numeric.
	TauMethod
)

// Options configures drill-down.
type Options struct {
	// Strategy selects K or K^c; Best (per-constraint default) if unset.
	Strategy Strategy
	// Method selects the statistic path; AutoMethod by default.
	Method Method
	// Bins is the quantile bin count used when a numeric column meets the
	// G path (mixed pairs); defaults to 4.
	Bins int
	// MinStratumSize skips conditioning strata smaller than this;
	// defaults to 5.
	MinStratumSize int
	// GObjective selects the categorical ranking signal: the paper's
	// per-cell contribution heuristic (default) or the exact greedy G
	// delta. See the GObjective constants.
	GObjective GObjective
	// Cache optionally supplies a kernel cache bound to the same relation,
	// letting the drill-down reuse partitions, codings and float columns
	// already computed by detection. Results are bit-identical with and
	// without it; nil computes everything directly.
	Cache *kernel.Cache
	// Workers bounds the worker pool MultiTopK uses to drill constraints
	// concurrently, mirroring detect.BatchOptions.Workers. Zero or negative
	// means runtime.GOMAXPROCS(0). Single-constraint TopK ignores it.
	Workers int
	// Hooks observes per-constraint drills in MultiTopK (the server wires
	// these into /metrics). Optional; single-constraint TopK ignores it.
	Hooks engine.Hooks

	// linear forces the seed-era full-rescan greedy selection instead of the
	// delta-argmax fast path; set only via TopKLinear.
	linear bool
}

func (o Options) withDefaults() Options {
	if o.Bins <= 1 {
		o.Bins = 4
	}
	if o.MinStratumSize <= 0 {
		o.MinStratumSize = 5
	}
	return o
}

func (o Options) resolve(c sc.SC) Strategy {
	if o.Strategy != Best {
		return o.Strategy
	}
	if c.Dependence {
		return K
	}
	return Kc
}

// Result reports the drill-down outcome.
type Result struct {
	// Rows are the selected record indices (0-based, into the input
	// relation). For the K strategy they are in selection order: the first
	// row is the single most incriminated record.
	Rows []int
	// InitialStat and FinalStat are the dependence statistic before the
	// drill-down and after (hypothetically) removing the selected rows.
	// For the G path the statistic is G; for the tau path it is the signed
	// pair-count difference n_c - n_d summed over strata.
	InitialStat, FinalStat float64
	// Strategy is the strategy actually used.
	Strategy Strategy
}

// TopK solves the top-k contribution problem with no deadline; see
// TopKContext.
func TopK(d *relation.Relation, c sc.SC, k int, opts Options) (Result, error) {
	return TopKContext(context.Background(), d, c, k, opts)
}

// TopKContext solves the top-k contribution problem (Definition 7): it
// returns the k records contributing most to the violation of the
// constraint. Conditional constraints drill down within each conditioning
// stratum and rank records globally. Set-valued X or Y are not supported
// here; decompose first and drill into the leaf of interest.
//
// Cancellation is checked once per greedy round, so a deadline interrupts a
// long drill mid-loop; the returned error then wraps the context's error
// (context.DeadlineExceeded or context.Canceled).
func TopKContext(ctx context.Context, d *relation.Relation, c sc.SC, k int, opts Options) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if !c.IsSingle() {
		return Result{}, fmt.Errorf("drilldown: set-valued constraint %s; decompose first", c)
	}
	for _, col := range c.Columns() {
		if !d.HasColumn(col) {
			return Result{}, fmt.Errorf("drilldown: dataset lacks column %q required by %s", col, c)
		}
	}
	n := d.NumRows()
	if k <= 0 || k > n {
		return Result{}, fmt.Errorf("drilldown: k=%d out of range (1..%d)", k, n)
	}
	if opts.Cache != nil && opts.Cache.Relation() != d {
		return Result{}, fmt.Errorf("drilldown: kernel cache is bound to a different relation")
	}
	opts = opts.withDefaults()

	x := d.MustColumn(c.X[0])
	y := d.MustColumn(c.Y[0])
	bothNumeric := x.Kind == relation.Numeric && y.Kind == relation.Numeric
	switch opts.Method {
	case GMethod:
		return gTopK(ctx, d, c, k, opts)
	case TauMethod:
		if !bothNumeric {
			return Result{}, fmt.Errorf("drilldown: tau method requires numeric columns, got %s (%s) and %s (%s)",
				c.X[0], x.Kind, c.Y[0], y.Kind)
		}
		return tauTopK(ctx, d, c, k, opts)
	default:
		if bothNumeric {
			return tauTopK(ctx, d, c, k, opts)
		}
		return gTopK(ctx, d, c, k, opts)
	}
}

// TopKLinear is TopK with the seed-era linear-rescan greedy: every round
// scans every alive candidate of every stratum instead of re-deriving only
// the touched stratum's cached argmax. It is retained as the reference
// implementation — the identity tests assert TopK matches it row for row,
// and internal/drillbench reports the delta-argmax speedup against it.
func TopKLinear(d *relation.Relation, c sc.SC, k int, opts Options) (Result, error) {
	opts.linear = true
	return TopK(d, c, k, opts)
}

// drillableRows returns the number of records in testable strata for the
// constraint — the largest k TopK accepts — after running TopK's own
// validation. MultiTopK uses it to clamp per-constraint rankings.
func drillableRows(ctx context.Context, d *relation.Relation, c sc.SC, opts Options) (int, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if !c.IsSingle() {
		return 0, fmt.Errorf("drilldown: set-valued constraint %s; decompose first", c)
	}
	for _, col := range c.Columns() {
		if !d.HasColumn(col) {
			return 0, fmt.Errorf("drilldown: dataset lacks column %q required by %s", col, c)
		}
	}
	if opts.Cache != nil && opts.Cache.Relation() != d {
		return 0, fmt.Errorf("drilldown: kernel cache is bound to a different relation")
	}
	strataRows, _, err := strataFor(ctx, d, c, opts.withDefaults())
	if err != nil {
		return 0, err
	}
	total := 0
	for _, rows := range strataRows {
		total += len(rows)
	}
	return total, nil
}

// strataFor partitions the row indices by the conditioning set; a marginal
// constraint yields a single stratum with every row. Strata smaller than
// MinStratumSize are excluded (their records are never selected). Alongside
// each stratum it returns the canonical rowsKey identifying that row subset
// in the kernel cache (the version-scoped all-rows key for the whole
// relation).
func strataFor(ctx context.Context, d *relation.Relation, c sc.SC, opts Options) ([][]int, []string, error) {
	if c.IsMarginal() {
		rows := make([]int, d.NumRows())
		for i := range rows {
			rows[i] = i
		}
		return [][]int{rows}, []string{opts.Cache.AllRowsKey()}, nil
	}
	part, err := opts.Cache.PartitionContext(ctx, d, c.Z)
	if err != nil {
		return nil, nil, fmt.Errorf("drilldown: %w", err)
	}
	var out [][]int
	var keys []string
	for _, k := range part.Keys {
		if len(part.Groups[k]) >= opts.MinStratumSize {
			out = append(out, part.Groups[k])
			keys = append(keys, part.StratumRowsKey(k))
		}
	}
	return out, keys, nil
}
