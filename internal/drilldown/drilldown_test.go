package drilldown

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"scoded/internal/relation"
	"scoded/internal/sc"
	"scoded/internal/stats"
)

// figure2 is the full car database of Figure 2 (original r1-r8 plus inserted
// r9-r16). Rows are 0-based: r1 = row 0 ... r16 = row 15.
func figure2() *relation.Relation {
	return relation.MustNew(
		relation.NewCategoricalColumn("Model", []string{
			"BMW X1", "BMW X1", "BMW X1", "BMW X1",
			"Toyota Prius", "Toyota Prius", "Toyota Prius", "Toyota Prius",
			"BMW X1", "BMW X1", "BMW X1", "BMW X1",
			"Toyota Prius", "Toyota Prius", "Toyota Prius", "Toyota Prius",
		}),
		relation.NewCategoricalColumn("Color", []string{
			"White", "Black", "White", "Black",
			"White", "White", "White", "Black",
			"White", "White", "White", "Black",
			"Black", "Black", "Black", "Black",
		}),
	)
}

// isDiagonal reports whether a Figure 2 row is in one of the two
// over-represented cells (BMW X1, White) or (Toyota Prius, Black). The
// inserted errors made those cells dominant; since the final table is
// exactly symmetric (5/3/3/5), the two cells are statistically
// interchangeable and any correct drill-down flags records from them. The
// paper's example answer (r8, r13-r16) is the Prius-Black cell, one of the
// two tie-equivalent answers.
func isDiagonal(d *relation.Relation, r int) bool {
	m := d.MustColumn("Model").StringAt(r)
	c := d.MustColumn("Color").StringAt(r)
	return (m == "BMW X1" && c == "White") || (m == "Toyota Prius" && c == "Black")
}

func TestFigure2TopKFindsDominantCells(t *testing.T) {
	d := figure2()
	res, err := TopK(d, sc.MustParse("Model _||_ Color"), 5, Options{Strategy: K})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// The K strategy resolves the violation greedily: while dependence
	// remains, every pick must come from an over-represented cell. On this
	// tiny example G reaches ~0 after three removals, after which further
	// picks are unconstrained — so assert the leading picks only.
	for _, r := range res.Rows[:3] {
		if !isDiagonal(d, r) {
			t.Errorf("row %d = (%s, %s): outside the over-represented cells",
				r, d.MustColumn("Model").StringAt(r), d.MustColumn("Color").StringAt(r))
		}
	}
	if res.FinalStat >= res.InitialStat {
		t.Errorf("K strategy should reduce G: %v -> %v", res.InitialStat, res.FinalStat)
	}
	if res.FinalStat > 0.2 {
		t.Errorf("K strategy should drive G to ~0, got %v", res.FinalStat)
	}
}

func TestFigure2KcStrategy(t *testing.T) {
	// K^c keeps the k records that are most mutually correlated — for
	// Figure 2, records from the dominant diagonal cells.
	d := figure2()
	res, err := TopK(d, sc.MustParse("Model _||_ Color"), 5, Options{Strategy: Kc})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Strategy != Kc {
		t.Errorf("strategy = %v", res.Strategy)
	}
	for _, r := range res.Rows {
		if !isDiagonal(d, r) {
			t.Errorf("Kc kept row %d outside the over-represented cells", r)
		}
	}
	// Survivor rows must be sorted and unique.
	if !sort.IntsAreSorted(res.Rows) {
		t.Errorf("Kc rows not sorted: %v", res.Rows)
	}
}

func TestDefaultStrategySelection(t *testing.T) {
	d := figure2()
	isc, err := TopK(d, sc.MustParse("Model _||_ Color"), 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if isc.Strategy != Kc {
		t.Errorf("ISC default strategy = %v, want Kc", isc.Strategy)
	}
	dsc, err := TopK(d, sc.MustParse("Model ~||~ Color"), 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dsc.Strategy != K {
		t.Errorf("DSC default strategy = %v, want K", dsc.Strategy)
	}
}

// numericWithSortedHead builds a numeric dataset where the first `errs`
// records were corrupted by a sorting error: their (x, y) values are
// re-paired so the block is perfectly rank-aligned, inducing spurious
// concordance while preserving both marginals — the paper's
// "sorted based on column B" mechanism for violating an independence SC.
func numericWithSortedHead(n, errs int, seed int64) (*relation.Relation, map[int]bool) {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	xs := append([]float64(nil), x[:errs]...)
	ys := append([]float64(nil), y[:errs]...)
	sort.Float64s(xs)
	sort.Float64s(ys)
	for i := 0; i < errs; i++ {
		x[i], y[i] = xs[i], ys[i]
	}
	truth := make(map[int]bool, errs)
	for i := 0; i < errs; i++ {
		truth[i] = true
	}
	rel := relation.MustNew(
		relation.NewNumericColumn("X", x),
		relation.NewNumericColumn("Y", y),
	)
	return rel, truth
}

func TestTauTopKSortingErrorsKvsKc(t *testing.T) {
	// 30% error rate, within the paper's 20-45% regime. This test verifies
	// the Section 5.2 Remark: for an independence SC the K^c strategy
	// (keep the k most mutually correlated records) is the better error
	// detector, because the K strategy resolves the violation after few
	// removals and its remaining picks are unconstrained.
	d, truth := numericWithSortedHead(200, 60, 17)
	precision := func(rows []int) float64 {
		hits := 0
		for _, r := range rows {
			if truth[r] {
				hits++
			}
		}
		return float64(hits) / float64(len(rows))
	}

	kRes, err := TopK(d, sc.MustParse("X _||_ Y"), 60, Options{Strategy: K})
	if err != nil {
		t.Fatal(err)
	}
	kcRes, err := TopK(d, sc.MustParse("X _||_ Y"), 60, Options{Strategy: Kc})
	if err != nil {
		t.Fatal(err)
	}
	pK, pKc := precision(kRes.Rows), precision(kcRes.Rows)
	if pKc < 0.6 {
		t.Errorf("Kc precision@60 = %v, want >= 0.6", pKc)
	}
	if pKc < pK {
		t.Errorf("paper's Remark violated: Kc precision %v < K precision %v on an ISC", pKc, pK)
	}
	// K must still be better than random guessing (error rate 0.3) in its
	// leading picks and must neutralize the dependence statistic.
	if lead := precision(kRes.Rows[:20]); lead < 0.5 {
		t.Errorf("K leading-pick precision = %v, want >= 0.5", lead)
	}
	if math.Abs(kRes.FinalStat) >= math.Abs(kRes.InitialStat) {
		t.Errorf("ISC drill-down should shrink |nc-nd|: %v -> %v", kRes.InitialStat, kRes.FinalStat)
	}
}

func TestTauKcStrategyOnIndependenceSC(t *testing.T) {
	d, truth := numericWithSortedHead(200, 60, 19)
	res, err := TopK(d, sc.MustParse("X _||_ Y"), 60, Options{Strategy: Kc})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, r := range res.Rows {
		if truth[r] {
			hits++
		}
	}
	// K^c keeps the most mutually correlated subset, which is exactly the
	// sorted block.
	if prec := float64(hits) / 60; prec < 0.6 {
		t.Errorf("Kc precision@60 = %v, want >= 0.6", prec)
	}
}

func TestTauDSCDrilldownFindsImputedValues(t *testing.T) {
	// A dependence SC X ~||~ Y violated by imputation: corrupted rows have
	// y replaced by the column mean, destroying the dependence.
	rng := rand.New(rand.NewSource(23))
	n, errs := 300, 50
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = 2*x[i] + 0.2*rng.NormFloat64()
	}
	for i := 0; i < errs; i++ {
		y[i] = 0 // mean imputation
	}
	d := relation.MustNew(
		relation.NewNumericColumn("X", x),
		relation.NewNumericColumn("Y", y),
	)
	res, err := TopK(d, sc.MustParse("X ~||~ Y"), errs, Options{Strategy: K})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, r := range res.Rows {
		if r < errs {
			hits++
		}
	}
	if prec := float64(hits) / float64(errs); prec < 0.7 {
		t.Errorf("DSC precision@%d = %v, want >= 0.7", errs, prec)
	}
	// The meaningful DSC objective is the normalized tau, not the raw pair
	// sum: removing weak-contribution records shrinks nc-nd slightly but
	// shrinks the pair count C(n,2) much faster, so |tau| must grow.
	pairs := func(m int) float64 { return float64(m) * float64(m-1) / 2 }
	tauBefore := math.Abs(res.InitialStat) / pairs(n)
	tauAfter := math.Abs(res.FinalStat) / pairs(n-errs)
	if tauAfter <= tauBefore {
		t.Errorf("DSC drill-down should grow |tau|: %v -> %v", tauBefore, tauAfter)
	}
}

func TestInitBenefitsMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 2
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(rng.Intn(6)) // heavy ties
			y[i] = float64(rng.Intn(6))
		}
		fast := initBenefits(x, y)
		for i := 0; i < n; i++ {
			var want float64
			for j := 0; j < n; j++ {
				if i != j {
					want += pairWeight(x[i], y[i], x[j], y[j])
				}
			}
			if fast[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestInitBenefitsSumIsTwiceNcMinusNd(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	n := 200
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	b := initBenefits(x, y)
	var sum float64
	for _, v := range b {
		sum += v
	}
	k := stats.KendallNaive(x, y)
	if want := 2 * float64(k.Concordant-k.Discordant); sum != want {
		t.Errorf("sum(benefits) = %v, want %v", sum, want)
	}
}

func TestGreedyMatchesBruteForceSmall(t *testing.T) {
	// On small instances the greedy K strategy should achieve an objective
	// close to the brute-force optimum (greedy is not always optimal, so
	// compare objective values, not row sets).
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 12
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		d := relation.MustNew(
			relation.NewNumericColumn("X", x),
			relation.NewNumericColumn("Y", y),
		)
		c := sc.MustParse("X _||_ Y")
		greedy, err := TopK(d, c, 3, Options{Strategy: K})
		if err != nil {
			t.Fatal(err)
		}
		brute, err := BruteForceTopK(d, c, 3, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(greedy.FinalStat) > math.Abs(brute.FinalStat)+3 {
			t.Errorf("seed %d: greedy |stat|=%v far from optimal %v",
				seed, math.Abs(greedy.FinalStat), math.Abs(brute.FinalStat))
		}
	}
}

func TestBruteForceCategoricalOracle(t *testing.T) {
	d := figure2()
	c := sc.MustParse("Model _||_ Color")
	brute, err := BruteForceTopK(d, c, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := TopK(d, c, 2, Options{Strategy: K})
	if err != nil {
		t.Fatal(err)
	}
	// Greedy removal of 2 records should match the optimum on this tiny
	// instance (both remove from the dominant diagonal cells).
	if greedy.FinalStat > brute.FinalStat+1e-9 {
		t.Errorf("greedy G=%v worse than brute optimum %v", greedy.FinalStat, brute.FinalStat)
	}
}

func TestBruteForceGuards(t *testing.T) {
	d := figure2()
	if _, err := BruteForceTopK(d, sc.MustParse("Model _||_ Color | Model2"), 2, Options{}); err == nil {
		t.Error("want error for invalid constraint")
	}
	if _, err := BruteForceTopK(d, sc.MustParse("Model _||_ Color"), 0, Options{}); err == nil {
		t.Error("want error for k=0")
	}
	big := make([]float64, 200)
	for i := range big {
		big[i] = float64(i)
	}
	bigRel := relation.MustNew(
		relation.NewNumericColumn("X", big),
		relation.NewNumericColumn("Y", big),
	)
	if _, err := BruteForceTopK(bigRel, sc.MustParse("X _||_ Y"), 50, Options{}); err == nil {
		t.Error("want error for combinatorial explosion")
	}
}

func TestConditionalDrilldown(t *testing.T) {
	// Dependence planted only inside stratum z1; drill-down on the
	// conditional ISC should pick rows from that stratum.
	rng := rand.New(rand.NewSource(31))
	n := 400
	zs := make([]string, n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		if i < n/2 {
			zs[i] = "z0"
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		} else {
			zs[i] = "z1"
			xs[i] = rng.NormFloat64()
			ys[i] = xs[i] + 0.1*rng.NormFloat64()
		}
	}
	d := relation.MustNew(
		relation.NewCategoricalColumn("Z", zs),
		relation.NewNumericColumn("X", xs),
		relation.NewNumericColumn("Y", ys),
	)
	res, err := TopK(d, sc.MustParse("X _||_ Y | Z"), 30, Options{Strategy: K})
	if err != nil {
		t.Fatal(err)
	}
	fromZ1 := 0
	for _, r := range res.Rows {
		if r >= n/2 {
			fromZ1++
		}
	}
	if fromZ1 < 25 {
		t.Errorf("conditional drill-down picked %d/30 from the dependent stratum", fromZ1)
	}
}

func TestTopKValidation(t *testing.T) {
	d := figure2()
	if _, err := TopK(d, sc.MustParse("Model _||_ Color"), 0, Options{}); err == nil {
		t.Error("want error for k=0")
	}
	if _, err := TopK(d, sc.MustParse("Model _||_ Color"), 99, Options{}); err == nil {
		t.Error("want error for k>n")
	}
	if _, err := TopK(d, sc.MustParse("Model _||_ Missing"), 2, Options{}); err == nil {
		t.Error("want error for missing column")
	}
	if _, err := TopK(d, sc.MustParse("Model _||_ Color,Color2"), 2, Options{}); err == nil {
		t.Error("want error for set-valued constraint")
	}
	if _, err := TopK(d, sc.SC{X: []string{"A"}, Y: []string{"A"}}, 1, Options{}); err == nil {
		t.Error("want error for invalid SC")
	}
}

func TestTopKSmallStrataExcluded(t *testing.T) {
	// With a conditioning column making every stratum tiny, no rows are
	// testable and TopK must error rather than invent a ranking.
	zs := make([]string, 10)
	xs := make([]float64, 10)
	ys := make([]float64, 10)
	for i := range zs {
		zs[i] = string(rune('a' + i))
		xs[i] = float64(i)
		ys[i] = float64(i)
	}
	d := relation.MustNew(
		relation.NewCategoricalColumn("Z", zs),
		relation.NewNumericColumn("X", xs),
		relation.NewNumericColumn("Y", ys),
	)
	if _, err := TopK(d, sc.MustParse("X _||_ Y | Z"), 5, Options{}); err == nil {
		t.Error("want error when all strata are below MinStratumSize")
	}
}

func TestPartitionResolvesViolation(t *testing.T) {
	d, _ := numericWithSortedHead(150, 30, 37)
	a := sc.Approximate{SC: sc.MustParse("X _||_ Y"), Alpha: 0.05}
	res, err := Partition(d, a, Options{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved {
		t.Fatalf("partition failed to resolve; final p=%v after %d removals", res.FinalP, len(res.Removed))
	}
	if res.FinalP < 0.05 {
		t.Errorf("resolved but p=%v < alpha", res.FinalP)
	}
	if len(res.Removed) == 0 {
		t.Error("violated constraint should need at least one removal")
	}
	if len(res.Removed) > 60 {
		t.Errorf("removed %d records for 30 planted errors", len(res.Removed))
	}
}

func TestPartitionNoViolation(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := 200
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	d := relation.MustNew(
		relation.NewNumericColumn("X", x),
		relation.NewNumericColumn("Y", y),
	)
	res, err := Partition(d, sc.Approximate{SC: sc.MustParse("X _||_ Y"), Alpha: 0.05}, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved || len(res.Removed) != 0 {
		t.Errorf("clean data should resolve immediately: %+v", res)
	}
}

func TestPartitionBudgetExhausted(t *testing.T) {
	d, _ := numericWithSortedHead(150, 50, 43)
	res, err := Partition(d, sc.Approximate{SC: sc.MustParse("X _||_ Y"), Alpha: 0.05}, Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resolved {
		t.Skip("2 removals unexpectedly resolved; acceptable but rare")
	}
	if len(res.Removed) != 2 {
		t.Errorf("removed = %v, want exactly the budget", res.Removed)
	}
}

func TestPartitionValidation(t *testing.T) {
	d := figure2()
	if _, err := Partition(d, sc.Approximate{SC: sc.MustParse("Model _||_ Color"), Alpha: 9}, Options{}, 0); err == nil {
		t.Error("want error for bad alpha")
	}
	if _, err := Partition(d, sc.Approximate{SC: sc.MustParse("A,B _||_ C"), Alpha: 0.05}, Options{}, 0); err == nil {
		t.Error("want error for set-valued SC")
	}
}

func TestMultiTopK(t *testing.T) {
	// Two numeric pairs with disjoint planted errors: the merged top-k
	// should draw from both constraints' findings.
	rng := rand.New(rand.NewSource(51))
	n := 200
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = rng.NormFloat64()
		b[i] = a[i] + 0.2*rng.NormFloat64()
		c[i] = a[i] + 0.2*rng.NormFloat64()
	}
	for i := 0; i < 20; i++ {
		b[i] = 0 // errors visible to A ~||~ B
	}
	for i := 20; i < 40; i++ {
		c[i] = 0 // errors visible to A ~||~ C
	}
	d := relation.MustNew(
		relation.NewNumericColumn("A", a),
		relation.NewNumericColumn("B", b),
		relation.NewNumericColumn("C", c),
	)
	rows, err := MultiTopK(d, []sc.SC{sc.MustParse("A ~||~ B"), sc.MustParse("A ~||~ C")}, 40,
		Options{Strategy: K})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 40 {
		t.Fatalf("rows = %d", len(rows))
	}
	seen := make(map[int]bool)
	fromB, fromC := 0, 0
	for _, r := range rows {
		if seen[r] {
			t.Fatalf("duplicate row %d in merged ranking", r)
		}
		seen[r] = true
		if r < 20 {
			fromB++
		} else if r < 40 {
			fromC++
		}
	}
	if fromB < 12 || fromC < 12 {
		t.Errorf("merge unbalanced: %d from B-errors, %d from C-errors", fromB, fromC)
	}

	// Single constraint delegates to TopK.
	single, err := MultiTopK(d, []sc.SC{sc.MustParse("A ~||~ B")}, 5, Options{Strategy: K})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := TopK(d, sc.MustParse("A ~||~ B"), 5, Options{Strategy: K})
	if err != nil {
		t.Fatal(err)
	}
	for i := range single {
		if single[i] != direct.Rows[i] {
			t.Fatalf("single-constraint MultiTopK differs from TopK: %v vs %v", single, direct.Rows)
		}
	}
	if _, err := MultiTopK(d, nil, 5, Options{}); err == nil {
		t.Error("want error for no constraints")
	}
	if _, err := MultiTopK(d, []sc.SC{sc.MustParse("A ~||~ Missing")}, 5, Options{}); err == nil {
		t.Error("want error propagated from TopK")
	}
}

func TestStrategyString(t *testing.T) {
	if Best.String() != "best" || K.String() != "K" || Kc.String() != "Kc" {
		t.Error("strategy names wrong")
	}
	if Strategy(9).String() == "" {
		t.Error("unknown strategy should render")
	}
}

func TestForcedMethods(t *testing.T) {
	// GMethod on a numeric pair discretizes and runs the categorical path.
	rng := rand.New(rand.NewSource(53))
	n := 200
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = x[i] + 0.3*rng.NormFloat64()
	}
	d := relation.MustNew(
		relation.NewNumericColumn("X", x),
		relation.NewNumericColumn("Y", y),
	)
	res, err := TopK(d, sc.MustParse("X ~||~ Y"), 10, Options{Strategy: K, Method: GMethod})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Errorf("rows = %v", res.Rows)
	}
	// TauMethod on categorical columns must error.
	cat := figure2()
	if _, err := TopK(cat, sc.MustParse("Model _||_ Color"), 3, Options{Method: TauMethod}); err == nil {
		t.Error("TauMethod on categorical columns should error")
	}
	// TauMethod explicit on numeric matches the auto dispatch.
	a, err := TopK(d, sc.MustParse("X ~||~ Y"), 10, Options{Strategy: K, Method: TauMethod})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TopK(d, sc.MustParse("X ~||~ Y"), 10, Options{Strategy: K})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("TauMethod diverges from auto: %v vs %v", a.Rows, b.Rows)
		}
	}
}

func TestGObjectiveString(t *testing.T) {
	if CellContribution.String() != "cell-contribution" || ExactDelta.String() != "exact-delta" {
		t.Error("objective names wrong")
	}
	if GObjective(9).String() == "" {
		t.Error("unknown objective should render")
	}
}

func TestExactDeltaObjectiveReducesGFaster(t *testing.T) {
	// The exact greedy must reach an equal or lower G than the heuristic
	// for the same k on an ISC (it directly optimizes the statistic).
	d := figure2()
	heur, err := TopK(d, sc.MustParse("Model _||_ Color"), 4, Options{Strategy: K, GObjective: CellContribution})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := TopK(d, sc.MustParse("Model _||_ Color"), 4, Options{Strategy: K, GObjective: ExactDelta})
	if err != nil {
		t.Fatal(err)
	}
	if exact.FinalStat > heur.FinalStat+1e-9 {
		t.Errorf("exact greedy G=%v should be <= heuristic G=%v", exact.FinalStat, heur.FinalStat)
	}
}

func TestGTopKDeterministic(t *testing.T) {
	d := figure2()
	a, err := TopK(d, sc.MustParse("Model _||_ Color"), 5, Options{Strategy: K})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TopK(d, sc.MustParse("Model _||_ Color"), 5, Options{Strategy: K})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("non-deterministic result: %v vs %v", a.Rows, b.Rows)
		}
	}
}

func TestDeltaGMatchesRecompute(t *testing.T) {
	// The O(1) delta must agree with full recomputation after the removal.
	d := figure2()
	rows := make([]int, d.NumRows())
	for i := range rows {
		rows[i] = i
	}
	st, err := newGStratum(context.Background(), d, sc.MustParse("Model _||_ Color"), rows, "", Options{}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < st.kx; i++ {
		for j := 0; j < st.ky; j++ {
			if st.counts[st.cell(i, j)] == 0 {
				continue
			}
			want := st.g + st.deltaG(i, j)
			gBefore := st.g
			row := st.remove(i, j)
			if math.Abs(st.g-want) > 1e-9 {
				t.Fatalf("delta mismatch at (%d,%d): got %v want %v", i, j, st.g, want)
			}
			if math.Abs(st.computeG()-st.g) > 1e-9 {
				t.Fatalf("incremental G=%v diverged from recomputed %v", st.g, st.computeG())
			}
			_ = row
			_ = gBefore
		}
	}
}
