package drilldown

import (
	"fmt"
	"sort"

	"scoded/internal/detect"
	"scoded/internal/relation"
	"scoded/internal/stats"
)

// The paper's drill-down workflow ends with a manual step: "The user can
// check whether these records follow a pattern" — in Figure 2 the flagged
// records are all (Toyota Prius, Black); in Figure 7 they all have GPM = 0
// and DraftYear < 2000. ExplainRows automates that reading: for every
// column it finds the values (or numeric bins) significantly over-
// represented among the flagged rows relative to the whole relation, scored
// by the hypergeometric tail probability of drawing that many occurrences
// in a sample of the flagged size.

// PatternFinding is one enriched value: "Column = Value appears in
// Support of the flagged rows vs. an expected baseline share".
type PatternFinding struct {
	// Column and Value identify the enriched pattern; numeric columns
	// report a quantile-bin label with its range.
	Column, Value string
	// Support is the number of flagged rows carrying the value.
	Support int
	// Flagged is the number of flagged rows considered.
	Flagged int
	// BaseRate is the value's share in the whole relation.
	BaseRate float64
	// P is the hypergeometric upper-tail probability of observing at
	// least Support occurrences in a uniformly drawn sample of Flagged
	// rows.
	P float64
}

// String renders "Model = Toyota Prius: 5/5 flagged vs 50% overall (p=...)".
func (f PatternFinding) String() string {
	return fmt.Sprintf("%s = %s: %d/%d flagged vs %.0f%% overall (p=%.2g)",
		f.Column, f.Value, f.Support, f.Flagged, 100*f.BaseRate, f.P)
}

// ExplainOptions configures ExplainRows.
type ExplainOptions struct {
	// MaxP caps the enrichment p-value of reported findings; defaults to
	// 0.01.
	MaxP float64
	// Bins is the quantile bin count for numeric columns; defaults to 4.
	Bins int
	// MinSupport drops findings carried by fewer flagged rows; defaults
	// to 2.
	MinSupport int
	// NoPairs disables joint two-column patterns (e.g. "Model = Toyota
	// Prius ∧ Color = Black", the Figure 2 observation). Pairs are scanned
	// when the relation has at most MaxPairColumns columns.
	NoPairs bool
	// MaxPairColumns bounds the pairwise scan; defaults to 8.
	MaxPairColumns int
}

func (o ExplainOptions) withDefaults() ExplainOptions {
	if o.MaxP <= 0 {
		o.MaxP = 0.01
	}
	if o.Bins <= 1 {
		o.Bins = 4
	}
	if o.MinSupport <= 0 {
		o.MinSupport = 2
	}
	if o.MaxPairColumns <= 0 {
		o.MaxPairColumns = 8
	}
	return o
}

// ExplainRows summarizes what the flagged rows have in common: per column,
// the values significantly enriched among them. Findings are sorted by
// ascending p-value (strongest pattern first).
func ExplainRows(d *relation.Relation, rows []int, opts ExplainOptions) ([]PatternFinding, error) {
	opts = opts.withDefaults()
	n := d.NumRows()
	if len(rows) == 0 {
		return nil, fmt.Errorf("drilldown: no rows to explain")
	}
	flagged := make(map[int]bool, len(rows))
	for _, r := range rows {
		if r < 0 || r >= n {
			return nil, fmt.Errorf("drilldown: row %d out of range (n=%d)", r, n)
		}
		if flagged[r] {
			return nil, fmt.Errorf("drilldown: row %d flagged twice", r)
		}
		flagged[r] = true
	}

	// Precompute per-column codes and labels once.
	names := d.Columns()
	codes := make([][]int, len(names))
	labels := make([]map[int]string, len(names))
	for ci, name := range names {
		codes[ci], labels[ci] = columnValues(d, name, opts.Bins)
	}

	var out []PatternFinding
	scan := func(column string, values []int, label func(int) string) {
		total := make(map[int]int)
		hit := make(map[int]int)
		for i := 0; i < n; i++ {
			total[values[i]]++
			if flagged[i] {
				hit[values[i]]++
			}
		}
		for code, support := range hit {
			if support < opts.MinSupport {
				continue
			}
			k := total[code]
			// Upper tail: P(X >= support) drawing len(rows) without
			// replacement from n with k successes.
			dist := stats.Hypergeometric{N: n, K: k, Draws: len(rows)}
			p := 0.0
			for x := support; x <= len(rows) && x <= k; x++ {
				p += dist.PMF(x)
			}
			if p > opts.MaxP {
				continue
			}
			out = append(out, PatternFinding{
				Column:   column,
				Value:    label(code),
				Support:  support,
				Flagged:  len(rows),
				BaseRate: float64(k) / float64(n),
				P:        p,
			})
		}
	}

	for ci, name := range names {
		lab := labels[ci]
		scan(name, codes[ci], func(c int) string { return lab[c] })
	}

	// Joint two-column patterns, the Figure 2 style observation
	// ("all five records are Toyota Prius AND Black").
	if !opts.NoPairs && len(names) <= opts.MaxPairColumns {
		for a := 0; a < len(names); a++ {
			for b := a + 1; b < len(names); b++ {
				// Dense-encode the value pairs.
				pairCode := make(map[[2]int]int)
				joint := make([]int, n)
				for i := 0; i < n; i++ {
					key := [2]int{codes[a][i], codes[b][i]}
					c, ok := pairCode[key]
					if !ok {
						c = len(pairCode)
						pairCode[key] = c
					}
					joint[i] = c
				}
				back := make(map[int][2]int, len(pairCode))
				for key, c := range pairCode {
					back[c] = key
				}
				la, lb := labels[a], labels[b]
				scan(names[a]+" ∧ "+names[b], joint, func(c int) string {
					key := back[c]
					return la[key[0]] + " ∧ " + lb[key[1]]
				})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		//scoded:lint-ignore floatcmp comparator tie-break needs exact equality for a total order
		if out[i].P != out[j].P {
			return out[i].P < out[j].P
		}
		if out[i].Column != out[j].Column {
			return out[i].Column < out[j].Column
		}
		return out[i].Value < out[j].Value
	})
	return out, nil
}

// columnValues returns per-row dense codes and code display labels for any
// column; numeric columns are quantile-binned with range labels.
func columnValues(d *relation.Relation, name string, bins int) ([]int, map[int]string) {
	col := d.MustColumn(name)
	n := col.Len()
	if col.Kind == relation.Categorical {
		codes := make([]int, n)
		labels := make(map[int]string)
		for i := 0; i < n; i++ {
			codes[i] = col.Code(i)
			labels[codes[i]] = col.StringAt(i)
		}
		return codes, labels
	}
	vals := col.Floats()
	codes, _ := detect.DiscretizeQuantile(vals, bins)
	// Label each bin with its observed value range.
	type rng struct{ lo, hi float64 }
	ranges := make(map[int]*rng)
	for i, c := range codes {
		r, ok := ranges[c]
		if !ok {
			ranges[c] = &rng{lo: vals[i], hi: vals[i]}
			continue
		}
		if vals[i] < r.lo {
			r.lo = vals[i]
		}
		if vals[i] > r.hi {
			r.hi = vals[i]
		}
	}
	labels := make(map[int]string, len(ranges))
	for c, r := range ranges {
		//scoded:lint-ignore floatcmp lo and hi are copies of the same data value when the bin is a point
		if r.lo == r.hi {
			labels[c] = fmt.Sprintf("%g", r.lo)
		} else {
			labels[c] = fmt.Sprintf("[%g, %g]", r.lo, r.hi)
		}
	}
	return codes, labels
}
