package drilldown

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"scoded/internal/kernel"
	"scoded/internal/relation"
	"scoded/internal/sc"
)

// multiRelation builds three numeric columns where B and C each depend on A,
// with planted error blocks visible to different constraints.
func multiRelation(n int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = rng.NormFloat64()
		b[i] = a[i] + 0.2*rng.NormFloat64()
		c[i] = a[i] + 0.2*rng.NormFloat64()
	}
	return relation.MustNew(
		relation.NewNumericColumn("A", a),
		relation.NewNumericColumn("B", b),
		relation.NewNumericColumn("C", c),
	)
}

// TestMultiTopKFewerThanKUniqueRows: when k exceeds what the constraints can
// drill, each constraint contributes its full (clamped) ranking and the
// pooled result is shorter than k instead of an error.
func TestMultiTopKFewerThanKUniqueRows(t *testing.T) {
	d := multiRelation(30, 61)
	cs := []sc.SC{sc.MustParse("A ~||~ B"), sc.MustParse("A ~||~ C")}
	rows, err := MultiTopK(d, cs, 50, Options{Strategy: K})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || len(rows) > 30 {
		t.Fatalf("pooled %d rows from a 30-row relation with k=50", len(rows))
	}
	seen := make(map[int]bool)
	for _, r := range rows {
		if r < 0 || r >= 30 {
			t.Fatalf("row %d out of range", r)
		}
		if seen[r] {
			t.Fatalf("duplicate row %d", r)
		}
		seen[r] = true
	}
	// Both constraints drill all 30 rows, so the pool must exhaust them.
	if len(rows) != 30 {
		t.Errorf("pooled %d rows, want all 30", len(rows))
	}
}

// TestMultiTopKDuplicateRowsAcrossConstraints: two constraints incriminating
// the same planted block must not double-report; a record keeps its best
// (earliest) pooled rank.
func TestMultiTopKDuplicateRowsAcrossConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	n := 200
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = rng.NormFloat64()
		b[i] = a[i] + 0.2*rng.NormFloat64()
		c[i] = a[i] + 0.2*rng.NormFloat64()
	}
	for i := 0; i < 25; i++ {
		b[i] = 0 // the same block breaks both dependences
		c[i] = 0
	}
	d := relation.MustNew(
		relation.NewNumericColumn("A", a),
		relation.NewNumericColumn("B", b),
		relation.NewNumericColumn("C", c),
	)
	cs := []sc.SC{sc.MustParse("A ~||~ B"), sc.MustParse("A ~||~ C")}
	rows, err := MultiTopK(d, cs, 30, Options{Strategy: K})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 30 {
		t.Fatalf("pooled %d rows, want 30", len(rows))
	}
	seen := make(map[int]bool)
	for _, r := range rows {
		if seen[r] {
			t.Fatalf("duplicate row %d in pooled ranking", r)
		}
		seen[r] = true
	}
	// The first pooled row is the strongest pick of the first constraint.
	first, err := TopK(d, cs[0], 1, Options{Strategy: K})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0] != first.Rows[0] {
		t.Errorf("pooled rank 1 = %d, want constraint 1's top pick %d", rows[0], first.Rows[0])
	}
}

// TestMultiTopKSingleFailingConstraint: one bad constraint in the family
// fails the pool with a wrapped, constraint-attributed error — sequentially
// and in parallel, deterministically choosing the lowest-indexed failure.
func TestMultiTopKSingleFailingConstraint(t *testing.T) {
	d := multiRelation(100, 71)
	cs := []sc.SC{
		sc.MustParse("A ~||~ B"),
		sc.MustParse("A ~||~ Missing"),
		sc.MustParse("B ~||~ Nope"),
	}
	for _, workers := range []int{1, 4} {
		_, err := MultiTopK(d, cs, 10, Options{Strategy: K, Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: want error for missing column", workers)
		}
		msg := err.Error()
		if !strings.Contains(msg, "A ~||~ Missing") || !strings.Contains(msg, `"Missing"`) {
			t.Errorf("workers=%d: error %q should name the first failing constraint and column", workers, msg)
		}
		if strings.Contains(msg, "Nope") {
			t.Errorf("workers=%d: error %q should surface the lowest-indexed failure only", workers, msg)
		}
	}
}

// TestMultiTopKParallelMatchesSequential: the pooled ranking is independent
// of the worker count, including over a shared kernel cache.
func TestMultiTopKParallelMatchesSequential(t *testing.T) {
	d := multiRelation(300, 73)
	cache := kernel.New(d)
	cs := []sc.SC{
		sc.MustParse("A ~||~ B"),
		sc.MustParse("A ~||~ C"),
		sc.MustParse("B _||_ C"),
		sc.MustParse("A _||_ B"),
	}
	seq, err := MultiTopK(d, cs, 40, Options{Strategy: K, Workers: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := MultiTopK(d, cs, 40, Options{Strategy: K, Workers: workers, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: pooled ranking diverged:\n%v\nvs\n%v", workers, par, seq)
		}
	}
}
