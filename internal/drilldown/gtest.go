package drilldown

import (
	"context"
	"fmt"
	"math"
	"sort"

	"scoded/internal/kernel"
	"scoded/internal/relation"
	"scoded/internal/sc"
	"scoded/internal/segtree"
)

// GObjective selects how the categorical (G-statistic) drill-down ranks
// removal candidates.
type GObjective int

const (
	// CellContribution is the paper's Section 5.3 heuristic: each (X, Y)
	// cell contributes a term g = 2·O·ln(O/E) to the G statistic; the K
	// strategy removes records from the cell whose g is most extreme in
	// the violation direction (highest g for an ISC — the cell carrying
	// the most dependence; lowest g for a DSC — the cell diluting the
	// dependence most). Contributions are recomputed after every removal.
	CellContribution GObjective = iota
	// ExactDelta is the exact greedy alternative: remove the record whose
	// removal changes the full G statistic most in the desired direction,
	// using the O(1) delta of the marginal-decomposed form. It optimizes
	// the statistic faster but ranks low-count cells by their effect on G
	// rather than by their dependence contribution. The two objectives are
	// compared in the ablation benchmarks.
	ExactDelta
)

// String names the objective.
func (o GObjective) String() string {
	switch o {
	case CellContribution:
		return "cell-contribution"
	case ExactDelta:
		return "exact-delta"
	default:
		return fmt.Sprintf("GObjective(%d)", int(o))
	}
}

// gStratum holds the drill-down state for one conditioning stratum of a
// categorical (G-statistic) constraint. Records with the same (X, Y) cell
// are interchangeable (Section 5.3), so state is kept per cell: counts, the
// two marginals, and a FIFO of the original rows in each cell.
type gStratum struct {
	kx, ky  int
	counts  []float64 // kx-by-ky cell counts, row-major
	rowMarg []float64
	colMarg []float64
	n       float64
	// Cell membership lives in one arena instead of a per-cell slice: the
	// remaining rows of cell c are rowArena[cellStart[c]+cellHead[c] :
	// cellStart[c+1]] (remove consumes from the front, preserving the FIFO
	// order the per-cell append version had). Building it is two counted
	// passes — no per-cell append growth, which was most of the G drill's
	// allocation bill.
	rowArena  []int
	cellStart []int32
	cellHead  []int32
	g         float64 // current G statistic of the stratum
}

// cell returns the flat ordinal of cell (i, j).
func (st *gStratum) cell(i, j int) int { return i*st.ky + j }

// gTopK runs the group-based G-statistic drill-down.
func gTopK(ctx context.Context, d *relation.Relation, c sc.SC, k int, opts Options) (Result, error) {
	var strata []*gStratum
	total := 0
	strataRows, strataKeys, err := strataFor(ctx, d, c, opts)
	if err != nil {
		return Result{}, err
	}
	for si, rows := range strataRows {
		st, err := newGStratum(ctx, d, c, rows, strataKeys[si], opts)
		if err != nil {
			return Result{}, err
		}
		strata = append(strata, st)
		total += len(rows)
	}
	if total < k {
		return Result{}, fmt.Errorf("drilldown: only %d records in testable strata, need k=%d", total, k)
	}

	res := Result{Strategy: opts.resolve(c), InitialStat: sumG(strata)}
	greedy := gGreedyDelta
	if opts.linear {
		greedy = gGreedyLinear
	}
	switch res.Strategy {
	case K:
		res.Rows, err = greedy(ctx, strata, k, c.Dependence, true, opts.GObjective)
	default:
		_, err = greedy(ctx, strata, total-k, c.Dependence, false, opts.GObjective)
		res.Rows = gSurvivors(strata, k)
	}
	if err != nil {
		return Result{}, err
	}
	res.FinalStat = sumG(strata)
	return res, nil
}

func newGStratum(ctx context.Context, d *relation.Relation, c sc.SC, rows []int, rowsKey string, opts Options) (*gStratum, error) {
	// Cached codes are shared read-only; the stratum builds its own mutable
	// counts and marginals from them.
	xc, kx, err := opts.Cache.CodesContext(ctx, d, c.X[0], opts.Bins, rowsKey, rows)
	if err != nil {
		return nil, fmt.Errorf("drilldown: %w", err)
	}
	yc, ky, err := opts.Cache.CodesContext(ctx, d, c.Y[0], opts.Bins, rowsKey, rows)
	if err != nil {
		return nil, fmt.Errorf("drilldown: %w", err)
	}
	st := &gStratum{
		kx:        kx,
		ky:        ky,
		counts:    make([]float64, kx*ky),
		rowMarg:   make([]float64, kx),
		colMarg:   make([]float64, ky),
		rowArena:  make([]int, len(rows)),
		cellStart: make([]int32, kx*ky+1),
		cellHead:  make([]int32, kx*ky),
	}
	for idx := range rows {
		i, j := int(xc[idx]), int(yc[idx])
		st.counts[st.cell(i, j)]++
		st.rowMarg[i]++
		st.colMarg[j]++
		st.n++
	}
	for c, o := range st.counts {
		st.cellStart[c+1] = st.cellStart[c] + int32(o)
	}
	cursor := append([]int32(nil), st.cellStart[:kx*ky]...)
	for idx, r := range rows {
		c := st.cell(int(xc[idx]), int(yc[idx]))
		st.rowArena[cursor[c]] = r
		cursor[c]++
	}
	st.g = st.computeG()
	return st, nil
}

// computeG evaluates G = 2[Σ O lnO − Σ R lnR − Σ C lnC + N lnN], the
// marginal-decomposed form that makes single-record deltas O(1).
func (st *gStratum) computeG() float64 {
	var s float64
	for _, o := range st.counts {
		s += xlnx(o)
	}
	for _, r := range st.rowMarg {
		s -= xlnx(r)
	}
	for _, c := range st.colMarg {
		s -= xlnx(c)
	}
	s += xlnx(st.n)
	g := 2 * s
	if g < 0 { // rounding residue on exactly independent tables
		g = 0
	}
	return g
}

// deltaG returns G(after removing one record from cell (i,j)) − G(now),
// in O(1): only the O, R, C and N terms involving the cell change.
func (st *gStratum) deltaG(i, j int) float64 {
	o, r, c, n := st.counts[st.cell(i, j)], st.rowMarg[i], st.colMarg[j], st.n
	return 2 * ((xlnx(o-1) - xlnx(o)) -
		(xlnx(r-1) - xlnx(r)) -
		(xlnx(c-1) - xlnx(c)) +
		(xlnx(n-1) - xlnx(n)))
}

// cellG returns the cell's contribution term g = 2·O·ln(O/E) to the G
// statistic, the paper's ranking signal. Cells with positive g carry
// dependence; cells with negative g dilute it.
func (st *gStratum) cellG(i, j int) float64 {
	o := st.counts[st.cell(i, j)]
	if o <= 0 {
		return 0
	}
	e := st.rowMarg[i] * st.colMarg[j] / st.n
	return 2 * o * math.Log(o/e)
}

// remove takes one record out of cell (i, j) and returns its original row.
func (st *gStratum) remove(i, j int) int {
	st.g += st.deltaG(i, j)
	if st.g < 0 {
		st.g = 0
	}
	c := st.cell(i, j)
	st.counts[c]--
	st.rowMarg[i]--
	st.colMarg[j]--
	st.n--
	row := st.rowArena[st.cellStart[c]+st.cellHead[c]]
	st.cellHead[c]++
	return row
}

func xlnx(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return x * math.Log(x)
}

func sumG(strata []*gStratum) float64 {
	var s float64
	for _, st := range strata {
		s += st.g
	}
	return s
}

// gScore evaluates a cell's removal score under the configured objective and
// greedy direction — the shared scoring kernel of the linear and delta
// greedy loops (it must be one function so both compute bit-identical
// floats).
func gScore(st *gStratum, i, j int, dependence, best bool, objective GObjective) float64 {
	var impr float64
	if objective == ExactDelta {
		impr = -st.deltaG(i, j) // G decrease from removal
	} else {
		impr = st.cellG(i, j) // dependence carried by the cell
	}
	if dependence {
		impr = -impr
	}
	if !best {
		return -impr
	}
	return impr
}

// gGreedyLinear removes `rounds` records with the seed-era full rescan. Each
// round scans every non-empty cell of every stratum, scores the cell under
// the configured objective, and removes one record from the best cell (K
// strategy, best=true) or the worst (K^c, best=false). The improvement
// direction follows the constraint type: for an ISC the statistic (or
// contribution) should fall, for a DSC it should rise.
//
// Retained as the reference implementation behind TopKLinear; gGreedyDelta
// must match it row for row.
func gGreedyLinear(ctx context.Context, strata []*gStratum, rounds int, dependence, best bool, objective GObjective) ([]int, error) {
	removed := make([]int, 0, rounds)
	for round := 0; round < rounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("drilldown: interrupted after %d greedy rounds: %w", round, err)
		}
		selStratum, selI, selJ := -1, -1, -1
		var selScore float64
		for si, st := range strata {
			for i := 0; i < st.kx; i++ {
				for j := 0; j < st.ky; j++ {
					if st.counts[st.cell(i, j)] <= 0 {
						continue
					}
					score := gScore(st, i, j, dependence, best, objective)
					if selI == -1 || score > selScore {
						selStratum, selI, selJ, selScore = si, i, j, score
					}
				}
			}
		}
		if selI == -1 {
			break
		}
		removed = append(removed, strata[selStratum].remove(selI, selJ))
	}
	return removed, nil
}

// gGreedyDelta is the incremental argmax form of the categorical greedy:
// every (stratum, cell) candidate gets a global ordinal in (stratum, i, j)
// lexicographic order and lives in one indexed max-heap (segtree.MaxHeap).
// Removing a record re-scores only the touched stratum's cells — the other
// strata's counts, marginals and N are untouched, so their cached scores
// stay bit-identical — making each round O(c_z log C) in cell counts
// (cells ≪ rows; Section 5.3's group-based optimization) instead of the
// linear scan's O(C_total) over every stratum.
//
// Tie-breaking matches gGreedyLinear: the heap prefers the smallest ordinal
// among equal scores, which is exactly the seed scan's first-hit order.
func gGreedyDelta(ctx context.Context, strata []*gStratum, rounds int, dependence, best bool, objective GObjective) ([]int, error) {
	// Cells get global ordinals in (stratum, i, j) lexicographic order;
	// because ordinals are assigned contiguously per stratum, a stratum's
	// candidates are exactly the ordinal range [base[si], base[si+1]) — no
	// per-stratum ordinal lists to grow.
	type cellRef struct{ si, i, j int }
	base := make([]int, len(strata)+1)
	for si, st := range strata {
		base[si+1] = base[si] + st.kx*st.ky
	}
	refs := make([]cellRef, 0, base[len(strata)])
	h := segtree.NewMaxHeap()
	for si, st := range strata {
		for i := 0; i < st.kx; i++ {
			for j := 0; j < st.ky; j++ {
				ord := len(refs)
				refs = append(refs, cellRef{si, i, j})
				if st.counts[st.cell(i, j)] > 0 {
					h.Push(ord, gScore(st, i, j, dependence, best, objective))
				}
			}
		}
	}
	removed := make([]int, 0, rounds)
	for round := 0; round < rounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("drilldown: interrupted after %d greedy rounds: %w", round, err)
		}
		ord, _, ok := h.Peek()
		if !ok {
			break
		}
		sel := refs[ord]
		st := strata[sel.si]
		removed = append(removed, st.remove(sel.i, sel.j))
		// Re-key the touched stratum: N and two marginals changed, so every
		// live cell's score must be refreshed; a cell emptied by the removal
		// leaves the candidate set for good (counts never grow back).
		for o := base[sel.si]; o < base[sel.si+1]; o++ {
			ref := refs[o]
			if st.counts[st.cell(ref.i, ref.j)] <= 0 {
				h.Remove(o)
				continue
			}
			h.Push(o, gScore(st, ref.i, ref.j, dependence, best, objective))
		}
	}
	return removed, nil
}

// gSurvivors returns the remaining rows of all strata in original order. k
// is the expected survivor count (a capacity hint).
func gSurvivors(strata []*gStratum, k int) []int {
	out := make([]int, 0, k)
	for _, st := range strata {
		for c := 0; c < st.kx*st.ky; c++ {
			out = append(out, st.rowArena[st.cellStart[c]+st.cellHead[c]:st.cellStart[c+1]]...)
		}
	}
	sort.Ints(out)
	return out
}

// codesForDrill returns dense per-stratum category codes for a column,
// quantile-discretizing numeric columns.
func codesForDrill(d *relation.Relation, name string, bins int, rows []int) []int32 {
	codes, _ := kernel.CodesFor(d, name, bins, rows)
	return codes
}

func maxCode(codes []int32) int {
	m := int32(0)
	for _, c := range codes {
		if c > m {
			m = c
		}
	}
	return int(m)
}
