package drilldown

import (
	"fmt"
	"math"

	"scoded/internal/relation"
	"scoded/internal/sc"
	"scoded/internal/stats"
)

// BruteForceTopK solves the top-k contribution problem exactly by
// enumerating all C(n, k) removal sets and returning the one that optimizes
// the objective — the Section 5.2 brute-force baseline. It is exponentially
// expensive and exists as a correctness oracle for the greedy strategies in
// tests; it supports only marginal single-variable constraints and refuses
// instances with more than a few thousand candidate subsets.
func BruteForceTopK(d *relation.Relation, c sc.SC, k int, opts Options) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if !c.IsSingle() || !c.IsMarginal() {
		return Result{}, fmt.Errorf("drilldown: brute force supports only marginal single-variable constraints")
	}
	n := d.NumRows()
	if k <= 0 || k > n {
		return Result{}, fmt.Errorf("drilldown: k=%d out of range (1..%d)", k, n)
	}
	if binomialExceeds(n, k, 2_000_000) {
		return Result{}, fmt.Errorf("drilldown: C(%d,%d) too large for brute force", n, k)
	}
	opts = opts.withDefaults()

	objective := func(drop map[int]bool) (float64, error) {
		rest := d.Drop(drop)
		stat, err := dependenceStat(rest, c, opts)
		if err != nil {
			return 0, err
		}
		if c.Dependence {
			return -math.Abs(stat), nil // DSC: maximize dependence
		}
		return math.Abs(stat), nil // ISC: minimize dependence
	}

	full, err := dependenceStat(d, c, opts)
	if err != nil {
		return Result{}, err
	}
	res := Result{InitialStat: full, Strategy: K}

	subset := make([]int, k)
	bestScore := math.Inf(1)
	var bestRows []int
	var rec func(start, depth int) error
	rec = func(start, depth int) error {
		if depth == k {
			drop := make(map[int]bool, k)
			for _, r := range subset {
				drop[r] = true
			}
			score, err := objective(drop)
			if err != nil {
				return err
			}
			if score < bestScore {
				bestScore = score
				bestRows = append(bestRows[:0], subset...)
			}
			return nil
		}
		for i := start; i <= n-(k-depth); i++ {
			subset[depth] = i
			if err := rec(i+1, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, 0); err != nil {
		return Result{}, err
	}
	res.Rows = append([]int(nil), bestRows...)
	drop := make(map[int]bool, k)
	for _, r := range bestRows {
		drop[r] = true
	}
	res.FinalStat, err = dependenceStat(d.Drop(drop), c, opts)
	if err != nil {
		return Result{}, err
	}
	return res, nil
}

// dependenceStat evaluates the raw dependence statistic the drill-down
// optimizes: G for the categorical path, nc - nd for the numeric path.
func dependenceStat(d *relation.Relation, c sc.SC, opts Options) (float64, error) {
	x := d.MustColumn(c.X[0])
	y := d.MustColumn(c.Y[0])
	if x.Kind == relation.Numeric && y.Kind == relation.Numeric {
		kr := stats.KendallNaive(x.Floats(), y.Floats())
		return float64(kr.Concordant - kr.Discordant), nil
	}
	rows := make([]int, d.NumRows())
	for i := range rows {
		rows[i] = i
	}
	xc := codesForDrill(d, c.X[0], opts.Bins, rows)
	yc := codesForDrill(d, c.Y[0], opts.Bins, rows)
	return stats.GStatistic(stats.TableFromCodes(xc, yc, maxCode(xc)+1, maxCode(yc)+1)), nil
}

// binomialExceeds reports whether C(n, k) exceeds the limit, without
// overflow.
func binomialExceeds(n, k int, limit float64) bool {
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 1; i <= k; i++ {
		c = c * float64(n-k+i) / float64(i)
		if c > limit {
			return true
		}
	}
	return false
}
