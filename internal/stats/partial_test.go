package stats

import (
	"math"
	"math/rand"
	"testing"
)

// splitSlices cuts parallel x/y slices at the given boundaries (the segment
// layout under test). Boundaries may create empty and 1-row windows.
func splitPairs(x, y []float64, cuts []int) (xs, ys [][]float64) {
	prev := 0
	for _, c := range cuts {
		xs = append(xs, x[prev:c])
		ys = append(ys, y[prev:c])
		prev = c
	}
	xs = append(xs, x[prev:])
	ys = append(ys, y[prev:])
	return xs, ys
}

// adversarialCuts enumerates split layouts the issue calls out: everything
// in one window, 1-row windows, empty windows at both ends and in the
// middle, and a few random cuts.
func adversarialCuts(n int, rng *rand.Rand) [][]int {
	cuts := [][]int{
		nil,            // single window
		{0},            // leading empty window
		{n},            // trailing empty window
		{0, 0, n, n},   // doubled empties
		{n / 2, n / 2}, // empty middle window
	}
	onerow := make([]int, 0, n)
	for i := 1; i < n; i++ {
		onerow = append(onerow, i) // every window holds exactly one row
	}
	cuts = append(cuts, onerow)
	for trial := 0; trial < 4; trial++ {
		k := rng.Intn(5) + 1
		c := make([]int, k)
		for i := range c {
			c[i] = rng.Intn(n + 1)
		}
		// cuts must be non-decreasing
		for i := 1; i < len(c); i++ {
			if c[i] < c[i-1] {
				c[i] = c[i-1]
			}
		}
		cuts = append(cuts, c)
	}
	return cuts
}

// kendallDatasets are the adversarial samples: ties everywhere, all-tied
// columns, signed zeros, tiny samples, and random data.
func kendallDatasets(rng *rand.Rand) map[string][2][]float64 {
	mk := func(n int, gen func(i int) (float64, float64)) [2][]float64 {
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i], y[i] = gen(i)
		}
		return [2][]float64{x, y}
	}
	ds := map[string][2][]float64{
		"random": mk(200, func(i int) (float64, float64) {
			return rng.NormFloat64(), rng.NormFloat64()
		}),
		"heavy-ties": mk(150, func(i int) (float64, float64) {
			return float64(rng.Intn(4)), float64(rng.Intn(3))
		}),
		"all-ties": mk(80, func(i int) (float64, float64) {
			return 3.5, 3.5
		}),
		"constant-x": mk(64, func(i int) (float64, float64) {
			return 7, rng.NormFloat64()
		}),
		"signed-zero": mk(96, func(i int) (float64, float64) {
			vals := []float64{math.Copysign(0, -1), 0, 1, -1}
			return vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))]
		}),
		"infinities": mk(72, func(i int) (float64, float64) {
			vals := []float64{math.Inf(-1), -2, 0, 2, math.Inf(1)}
			return vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))]
		}),
		"monotone": mk(100, func(i int) (float64, float64) {
			return float64(i), float64(i) * 2
		}),
		"two-rows": mk(2, func(i int) (float64, float64) {
			return float64(i), float64(1 - i)
		}),
		"small": mk(7, func(i int) (float64, float64) {
			return float64(i % 3), float64(i % 2)
		}),
	}
	return ds
}

func kendallResultsEqual(t *testing.T, name string, got, want KendallResult) {
	t.Helper()
	// Bit-level comparison: the streamed partial must reproduce the exact
	// float bits of the single-shot computation, not just close values.
	if math.Float64bits(got.TauA) != math.Float64bits(want.TauA) ||
		math.Float64bits(got.TauB) != math.Float64bits(want.TauB) ||
		math.Float64bits(got.Z) != math.Float64bits(want.Z) ||
		math.Float64bits(got.P) != math.Float64bits(want.P) {
		t.Fatalf("%s: float fields differ: got %+v want %+v", name, got, want)
	}
	if got.Concordant != want.Concordant || got.Discordant != want.Discordant ||
		got.TiesX != want.TiesX || got.TiesY != want.TiesY || got.TiesXY != want.TiesXY ||
		got.N != want.N || got.Approximate != want.Approximate {
		t.Fatalf("%s: integer fields differ: got %+v want %+v", name, got, want)
	}
}

func TestKendallPartialMatchesSingleShot(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for name, d := range kendallDatasets(rng) {
		x, y := d[0], d[1]
		want, err := Kendall(x, y)
		if err != nil {
			t.Fatalf("%s: single-shot Kendall: %v", name, err)
		}
		for ci, cuts := range adversarialCuts(len(x), rng) {
			xs, ys := splitPairs(x, y, cuts)

			// Sequential Append, one window per segment.
			p := NewKendallPartial()
			for i := range xs {
				p.Append(xs[i], ys[i])
			}
			got, err := p.Result()
			if err != nil {
				t.Fatalf("%s cuts %d: partial Result: %v", name, ci, err)
			}
			kendallResultsEqual(t, name, got, want)

			// Pairwise Merge of per-window partials, folded left to right.
			acc := NewKendallPartial()
			for i := range xs {
				q := NewKendallPartial()
				q.Append(xs[i], ys[i])
				acc.Merge(q)
			}
			got, err = acc.Result()
			if err != nil {
				t.Fatalf("%s cuts %d: merged Result: %v", name, ci, err)
			}
			kendallResultsEqual(t, name, got, want)
		}
	}
}

func TestKendallPartialTestMatchesKendallTest(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, 120)
	y := make([]float64, 120)
	for i := range x {
		x[i] = float64(rng.Intn(9))
		y[i] = rng.NormFloat64()
	}
	want, err := KendallTest(x, y)
	if err != nil {
		t.Fatal(err)
	}
	p := NewKendallPartial()
	for i := 0; i < len(x); i += 17 {
		end := i + 17
		if end > len(x) {
			end = len(x)
		}
		p.Append(x[i:end], y[i:end])
	}
	got, err := p.Test()
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.Statistic) != math.Float64bits(want.Statistic) ||
		math.Float64bits(got.P) != math.Float64bits(want.P) ||
		got.N != want.N || got.Approximate != want.Approximate {
		t.Fatalf("Test mismatch: got %+v want %+v", got, want)
	}
}

func TestKendallPartialErrors(t *testing.T) {
	// Minimum-size error, and its precedence over NaN: a single NaN row
	// must still report the size error, exactly like PrepKendall.
	for _, tc := range []struct {
		name string
		x, y []float64
	}{
		{"empty", nil, nil},
		{"one-row", []float64{1}, []float64{2}},
		{"one-nan-row", []float64{math.NaN()}, []float64{2}},
	} {
		p := NewKendallPartial()
		p.Append(tc.x, tc.y)
		_, gotErr := p.Result()
		_, wantErr := Kendall(tc.x, tc.y)
		if gotErr == nil || wantErr == nil || gotErr.Error() != wantErr.Error() {
			t.Fatalf("%s: got %v want %v", tc.name, gotErr, wantErr)
		}
	}

	// NaN index is reported in concatenated row order regardless of which
	// window carried it, matching the single-shot scan.
	x := []float64{1, 2, 3, math.NaN(), 5, 6}
	y := []float64{6, 5, 4, 3, 2, math.NaN()}
	_, wantErr := Kendall(x, y)
	for _, cuts := range [][]int{nil, {3}, {4}, {1, 2, 3, 4, 5}} {
		xs, ys := splitPairs(x, y, cuts)
		p := NewKendallPartial()
		for i := range xs {
			p.Append(xs[i], ys[i])
		}
		if _, err := p.Result(); err == nil || err.Error() != wantErr.Error() {
			t.Fatalf("cuts %v: got %v want %v", cuts, err, wantErr)
		}
		// Merge path: NaN offsets shift by the receiver's row count.
		acc := NewKendallPartial()
		for i := range xs {
			q := NewKendallPartial()
			q.Append(xs[i], ys[i])
			acc.Merge(q)
		}
		if _, err := acc.Result(); err == nil || err.Error() != wantErr.Error() {
			t.Fatalf("cuts %v merged: got %v want %v", cuts, err, wantErr)
		}
	}
}

func TestTablePartialMatchesTableFromCodes(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(300) + 2
		kx := rng.Intn(6) + 1
		ky := rng.Intn(5) + 1
		x := make([]int32, n)
		y := make([]int32, n)
		for i := range x {
			x[i] = int32(rng.Intn(kx))
			y[i] = int32(rng.Intn(ky))
		}
		// Dims as a dense coder would report them: max observed code + 1.
		var mx, my int32
		for i := range x {
			if x[i] > mx {
				mx = x[i]
			}
			if y[i] > my {
				my = y[i]
			}
		}
		want := TableFromCodes(x, y, int(mx)+1, int(my)+1)

		for _, cuts := range adversarialCuts(n, rng) {
			var parts []*TablePartial
			prev := 0
			observe := func(lo, hi int) {
				p := &TablePartial{}
				for i := lo; i < hi; i++ {
					p.Observe(x[i], y[i])
				}
				parts = append(parts, p)
			}
			for _, c := range cuts {
				observe(prev, c)
				prev = c
			}
			observe(prev, n)

			acc := &TablePartial{}
			for _, p := range parts {
				acc.Merge(p)
			}
			got := acc.Table()
			if len(got) != len(want) {
				t.Fatalf("trial %d cuts %v: kx %d want %d", trial, cuts, len(got), len(want))
			}
			for i := range want {
				if len(got[i]) != len(want[i]) {
					t.Fatalf("trial %d: ky %d want %d", trial, len(got[i]), len(want[i]))
				}
				for j := range want[i] {
					if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
						t.Fatalf("trial %d: cell (%d,%d) = %v want %v", trial, i, j, got[i][j], want[i][j])
					}
				}
			}
			if acc.N() != int64(n) {
				t.Fatalf("trial %d: N %d want %d", trial, acc.N(), n)
			}

			// The merged table must drive GTest to bit-identical output.
			gotG, gotErr := GTest(got)
			wantG, wantErr := GTest(want)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("trial %d: GTest err %v want %v", trial, gotErr, wantErr)
			}
			if gotErr == nil {
				if math.Float64bits(gotG.Statistic) != math.Float64bits(wantG.Statistic) ||
					math.Float64bits(gotG.P) != math.Float64bits(wantG.P) {
					t.Fatalf("trial %d: GTest got %+v want %+v", trial, gotG, wantG)
				}
			}
		}
	}
}

func TestTablePartialGrowth(t *testing.T) {
	// Observations arriving in an order that forces both axes to regrow
	// repeatedly must land in the right cells.
	p := &TablePartial{}
	p.Observe(0, 0)
	p.Observe(5, 0)
	p.Observe(0, 7)
	p.Observe(5, 7)
	p.Observe(2, 3)
	kx, ky := p.Dims()
	if kx != 6 || ky != 8 {
		t.Fatalf("dims (%d,%d) want (6,8)", kx, ky)
	}
	tab := p.Table()
	for _, cell := range [][2]int{{0, 0}, {5, 0}, {0, 7}, {5, 7}, {2, 3}} {
		if tab[cell[0]][cell[1]] != 1 {
			t.Fatalf("cell %v = %v want 1", cell, tab[cell[0]][cell[1]])
		}
	}
	if p.N() != 5 {
		t.Fatalf("N %d want 5", p.N())
	}
}

func TestMomentPartialMatchesSinglePass(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := 500
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()*3 + 10
		y[i] = x[i]*0.5 + rng.NormFloat64()
	}
	wantR, _, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	const tol = 1e-12
	for _, cuts := range adversarialCuts(n, rng) {
		xs, ys := splitPairs(x, y, cuts)
		acc := &MomentPartial{}
		for w := range xs {
			p := &MomentPartial{}
			for i := range xs[w] {
				p.Observe(xs[w][i], ys[w][i])
			}
			acc.Merge(p)
		}
		if acc.Count != int64(n) {
			t.Fatalf("count %d want %d", acc.Count, n)
		}
		checks := []struct {
			name      string
			got, want float64
		}{
			{"meanX", acc.MeanX(), Mean(x)},
			{"meanY", acc.MeanY(), Mean(y)},
			{"varX", acc.VarianceX(), Variance(x)},
			{"varY", acc.VarianceY(), Variance(y)},
			{"corr", acc.Correlation(), wantR},
		}
		for _, c := range checks {
			scale := math.Abs(c.want)
			if scale < 1 {
				scale = 1
			}
			if math.Abs(c.got-c.want) > tol*scale {
				t.Fatalf("cuts %v: %s = %v want %v", cuts, c.name, c.got, c.want)
			}
		}
	}
}

func TestMomentPartialDegenerate(t *testing.T) {
	p := &MomentPartial{}
	if p.Correlation() != 0 || p.MeanX() != 0 || p.VarianceX() != 0 {
		t.Fatal("empty partial must report zeros")
	}
	for i := 0; i < 10; i++ {
		p.Observe(4, float64(i))
	}
	if got := p.Correlation(); got != 0 {
		t.Fatalf("constant x: correlation %v want 0", got)
	}
}
