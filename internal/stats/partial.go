package stats

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the mergeable sufficient statistics the out-of-core
// detection path is built on (DESIGN.md section 16). Each partial type
// accumulates evidence from one row window (a store segment, or a chunk of
// one), and Merge combines two partials into the partial of the
// concatenated windows. The merge algebra is exact:
//
//   - TablePartial: contingency cell counts are integers; merging sums them
//     cell-wise, and the resulting Table is bit-identical to TableFromCodes
//     over the concatenated code vectors.
//   - KendallPartial: concordance evidence reduces to integer pair counts
//     (discordant pairs, tie-run sizes) over the (x asc, y asc) sort order.
//     That order — and therefore every count — depends only on the multiset
//     of points, not on how the rows were split, so any merge tree yields
//     the same integers and the final float arithmetic (copied verbatim
//     from kendallFromPrep) yields the same bits as a single-shot Kendall.
//   - MomentPartial: raw power sums merge by addition. The sums are
//     algebraically exact but float-order-sensitive, so derived quantities
//     carry a 1e-12 contract rather than bit identity; the streaming
//     CheckAll path does not use them (Pearson/Spearman stay resident-only).

// TablePartial accumulates a contingency table of dense code pairs. The
// zero value is ready to use; dimensions grow to cover the largest codes
// observed. Counts are int64, so the float64 cells produced by Table are
// exact integers bit-identical to TableFromCodes' repeated increments.
type TablePartial struct {
	kx, ky int     // observed dimensions: max code + 1 per axis
	stride int     // allocated row width (>= ky)
	counts []int64 // row-major slab, len = allocated rows * stride
}

// Observe adds one (x, y) code pair. Codes must be non-negative dense codes
// from a coder shared by every partial that will be merged together.
func (p *TablePartial) Observe(x, y int32) {
	if x < 0 || y < 0 {
		panic("stats: TablePartial observed a negative code")
	}
	p.ensure(int(x)+1, int(y)+1)
	p.counts[int(x)*p.stride+int(y)]++
}

// add accumulates n occurrences of the (x, y) cell; it is the bulk form
// Merge uses.
func (p *TablePartial) add(x, y int, n int64) {
	if n == 0 {
		return
	}
	p.ensure(x+1, y+1)
	p.counts[x*p.stride+y] += n
}

// ensure grows the slab so codes up to (kx-1, ky-1) are addressable,
// regridding rows when the column count outgrows the stride.
func (p *TablePartial) ensure(kx, ky int) {
	if ky > p.stride {
		stride := p.stride * 2
		if stride < ky {
			stride = ky
		}
		rows := len(p.counts) / max(p.stride, 1)
		if rows < kx {
			rows = kx
		}
		grown := make([]int64, rows*stride)
		for r := 0; r < p.kx; r++ {
			copy(grown[r*stride:r*stride+p.ky], p.counts[r*p.stride:r*p.stride+p.ky])
		}
		p.counts, p.stride = grown, stride
	}
	if kx*p.stride > len(p.counts) {
		rows := len(p.counts) / p.stride * 2
		if rows < kx {
			rows = kx
		}
		grown := make([]int64, rows*p.stride)
		copy(grown, p.counts)
		p.counts = grown
	}
	if kx > p.kx {
		p.kx = kx
	}
	if ky > p.ky {
		p.ky = ky
	}
}

// Merge folds o into p. Cell counts add; the merged dimensions cover both
// operands. o is not modified.
func (p *TablePartial) Merge(o *TablePartial) {
	for x := 0; x < o.kx; x++ {
		row := o.counts[x*o.stride : x*o.stride+o.ky]
		for y, n := range row {
			p.add(x, y, n)
		}
	}
}

// N is the total observation count.
func (p *TablePartial) N() int64 {
	var n int64
	for x := 0; x < p.kx; x++ {
		for y := 0; y < p.ky; y++ {
			n += p.counts[x*p.stride+y]
		}
	}
	return n
}

// Dims reports the observed table dimensions.
func (p *TablePartial) Dims() (kx, ky int) { return p.kx, p.ky }

// Table materializes the accumulated counts as a Table. Given codes from a
// shared dense coder, the result is bit-identical to TableFromCodes over
// the concatenation of every observed window.
func (p *TablePartial) Table() Table {
	t := NewTable(p.kx, p.ky)
	for x := 0; x < p.kx; x++ {
		for y := 0; y < p.ky; y++ {
			t[x][y] = float64(p.counts[x*p.stride+y])
		}
	}
	return t
}

// kendallRun is one sorted batch of paired observations: x ascending with
// x-ties broken by y ascending (the PrepKendall joint order), plus the
// count of strict y-descents (discordant pairs) within the batch.
type kendallRun struct {
	x, y []float64
	disc int64
}

// KendallPartial accumulates Kendall rank-correlation evidence over row
// windows. Append adds one window of paired observations; Merge combines
// two partials; Result finalizes with exactly the arithmetic — and exactly
// the errors — of a single-shot Kendall over the concatenated rows.
//
// Internally the points live in sorted runs folded binary-counter style
// (merge when the run below is no larger), so S sequential Appends of n
// total rows cost O(n log S) rather than O(n*S). A window containing NaN
// poisons the partial: the point storage is dropped and Result reports the
// same "contains NaN" error Kendall would, at the same row index.
type KendallPartial struct {
	runs []kendallRun
	n    int // rows appended, NaN rows included
	nan  int // append-order index of the first NaN observation, -1 if none
}

// NewKendallPartial returns an empty partial.
func NewKendallPartial() *KendallPartial { return &KendallPartial{nan: -1} }

// N is the number of observations appended so far.
func (p *KendallPartial) N() int { return p.n }

// Append adds one window of paired observations in row order. It panics on
// mismatched lengths (caller bug, mirroring TableFromCodes).
func (p *KendallPartial) Append(x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: KendallPartial window length mismatch %d vs %d", len(x), len(y)))
	}
	if p.nan >= 0 {
		p.n += len(x)
		return
	}
	for i := range x {
		if math.IsNaN(x[i]) || math.IsNaN(y[i]) {
			p.poison(p.n + i)
			p.n += len(x)
			return
		}
	}
	if len(x) == 0 {
		return
	}
	run := kendallRun{x: append([]float64(nil), x...), y: append([]float64(nil), y...)}
	sort.Sort(kendallPointSorter{run})
	// The window's internal discordant pairs are the strict y-inversions in
	// its joint sort order, same as kendallFromPrep's full-sample count.
	ys := append([]float64(nil), run.y...)
	run.disc = countInversions(ys, make([]float64, len(ys)))
	p.n += len(x)
	p.push(run)
}

// Merge folds o into p, treating o's rows as following p's rows (this
// ordering only affects which NaN index is reported; the statistics are
// split-invariant). o is not modified.
func (p *KendallPartial) Merge(o *KendallPartial) {
	if o.nan >= 0 && p.nan < 0 {
		p.poison(p.n + o.nan)
	}
	p.n += o.n
	if p.nan >= 0 {
		p.runs = nil
		return
	}
	for _, r := range o.runs {
		p.push(kendallRun{
			x:    append([]float64(nil), r.x...),
			y:    append([]float64(nil), r.y...),
			disc: r.disc,
		})
	}
}

func (p *KendallPartial) poison(at int) {
	if p.nan < 0 || at < p.nan {
		p.nan = at
	}
	p.runs = nil
}

// push adds a run and folds the stack binary-counter style: merge while
// the run beneath the top is no larger than the top.
func (p *KendallPartial) push(r kendallRun) {
	p.runs = append(p.runs, r)
	for len(p.runs) >= 2 {
		a, b := p.runs[len(p.runs)-2], p.runs[len(p.runs)-1]
		if len(a.x) > len(b.x) {
			break
		}
		p.runs = p.runs[:len(p.runs)-2]
		p.runs = append(p.runs, mergeKendallRuns(a, b))
	}
}

// fold collapses every run into one. Safe to call on an empty partial.
func (p *KendallPartial) fold() kendallRun {
	for len(p.runs) >= 2 {
		a, b := p.runs[len(p.runs)-2], p.runs[len(p.runs)-1]
		p.runs = p.runs[:len(p.runs)-2]
		p.runs = append(p.runs, mergeKendallRuns(a, b))
	}
	if len(p.runs) == 0 {
		return kendallRun{}
	}
	return p.runs[0]
}

// Result finalizes the partial. Validation order (minimum size before NaN)
// and every arithmetic step match Kendall on the concatenated rows, so the
// result — or the error text — is bit-for-bit what the in-memory path
// produces.
func (p *KendallPartial) Result() (KendallResult, error) {
	if p.n < 2 {
		return KendallResult{}, fmt.Errorf("stats: Kendall needs at least 2 observations, got %d", p.n)
	}
	if p.nan >= 0 {
		return KendallResult{}, fmt.Errorf("stats: Kendall input contains NaN at %d", p.nan)
	}
	r := p.fold()
	n := p.n

	// Tie counts over the joint sort order, exactly kendallFromPrep's loop.
	var n2 int64
	var tx, txy tieAccumulator
	for i := 1; i < n; i++ {
		//scoded:lint-ignore floatcmp Kendall ties are defined by exact value equality
		sameX := r.x[i] == r.x[i-1]
		tx.step(sameX)
		//scoded:lint-ignore floatcmp Kendall ties are defined by exact value equality
		txy.step(sameX && r.y[i] == r.y[i-1])
	}
	n1 := tx.finish()
	n3 := txy.finish()

	xt := tieGroupSizes(r.x)
	yt := tieGroupSizes(r.y)
	for _, g := range yt {
		n2 += int64(g) * int64(g-1) / 2
	}

	n0 := int64(n) * int64(n-1) / 2
	nd := r.disc
	nc := n0 - n1 - n2 + n3 - nd

	res := KendallResult{
		Concordant: nc,
		Discordant: nd,
		TiesX:      n1,
		TiesY:      n2,
		TiesXY:     n3,
		N:          n,
	}
	num := float64(nc - nd)
	res.TauA = num / float64(n0)
	denom := math.Sqrt(float64(n0-n1) * float64(n0-n2))
	if denom <= 0 {
		// A constant column: tau-b undefined; report 0 correlation with p=1.
		res.TauB = 0
		res.Z = 0
		res.P = 1
		return res, nil
	}
	res.TauB = clampUnit(num / denom)

	res.Z, res.P = kendallZPFromTies(n, xt, yt, num)
	res.Approximate = n <= 60
	return res, nil
}

// Test adapts Result to the TestResult interface, mirroring KendallTest.
func (p *KendallPartial) Test() (TestResult, error) {
	k, err := p.Result()
	if err != nil {
		return TestResult{}, err
	}
	return kendallTestResult(k), nil
}

// kendallPointSorter orders a run by x ascending, x-ties by y ascending —
// PrepKendall's joint order. Equal (x, y) points are interchangeable, so
// an unstable sort is fine.
type kendallPointSorter struct{ r kendallRun }

func (s kendallPointSorter) Len() int { return len(s.r.x) }
func (s kendallPointSorter) Less(a, b int) bool {
	//scoded:lint-ignore floatcmp comparator tie-break needs exact equality for a total order
	if s.r.x[a] != s.r.x[b] {
		return s.r.x[a] < s.r.x[b]
	}
	return s.r.y[a] < s.r.y[b]
}
func (s kendallPointSorter) Swap(a, b int) {
	s.r.x[a], s.r.x[b] = s.r.x[b], s.r.x[a]
	s.r.y[a], s.r.y[b] = s.r.y[b], s.r.y[a]
}

// mergeKendallRuns merges two sorted runs into the sorted run of their
// union. Discordant pairs add: within-run inversions carry over, and the
// cross-run inversions (an earlier-sorted element of one run paired with a
// strictly smaller y from the other) are counted with a Fenwick tree over
// compressed y ranks. Cross pairs tied on x sort y-ascending, so the
// strict test skips them automatically — exactly how the single-shot
// inversion count treats x-tie blocks.
func mergeKendallRuns(a, b kendallRun) kendallRun {
	if len(a.x) == 0 {
		return b
	}
	if len(b.x) == 0 {
		return a
	}
	n := len(a.x) + len(b.x)
	ranks := make([]float64, 0, n)
	ranks = append(ranks, a.y...)
	ranks = append(ranks, b.y...)
	sort.Float64s(ranks)
	ranks = dedupFloats(ranks)

	m := kendallRun{
		x:    make([]float64, 0, n),
		y:    make([]float64, 0, n),
		disc: a.disc + b.disc,
	}
	bitA := newFenwick(len(ranks))
	bitB := newFenwick(len(ranks))
	var insA, insB int64
	i, j := 0, 0
	for i < len(a.x) || j < len(b.x) {
		takeA := j >= len(b.x)
		if !takeA && i < len(a.x) {
			//scoded:lint-ignore floatcmp comparator tie-break needs exact equality for a total order
			if a.x[i] != b.x[j] {
				takeA = a.x[i] < b.x[j]
			} else {
				takeA = a.y[i] <= b.y[j]
			}
		}
		if takeA {
			r := sort.SearchFloat64s(ranks, a.y[i]) + 1
			m.disc += insB - bitB.prefix(r)
			bitA.add(r)
			insA++
			m.x = append(m.x, a.x[i])
			m.y = append(m.y, a.y[i])
			i++
		} else {
			r := sort.SearchFloat64s(ranks, b.y[j]) + 1
			m.disc += insA - bitA.prefix(r)
			bitB.add(r)
			insB++
			m.x = append(m.x, b.x[j])
			m.y = append(m.y, b.y[j])
			j++
		}
	}
	return m
}

// dedupFloats removes adjacent duplicates from a sorted slice, in place.
func dedupFloats(s []float64) []float64 {
	out := s[:0]
	for i, v := range s {
		//scoded:lint-ignore floatcmp rank compression groups exactly-equal sorted values
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// fenwick is a Fenwick (binary indexed) tree over 1-based ranks counting
// inserted elements; prefix(r) is the count of inserts with rank <= r.
type fenwick struct{ tree []int64 }

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int64, n+1)} }

func (f *fenwick) add(r int) {
	for ; r < len(f.tree); r += r & -r {
		f.tree[r]++
	}
}

func (f *fenwick) prefix(r int) int64 {
	var s int64
	for ; r > 0; r -= r & -r {
		s += f.tree[r]
	}
	return s
}

// MomentPartial accumulates raw bivariate power sums. Merging adds the
// sums, which is algebraically exact; because float addition is not
// associative, derived quantities (means, variances, correlation) agree
// with the single-pass formulas to 1e-12 relative error, not bit-for-bit.
// The streaming CheckAll path therefore never substitutes moments for the
// resident Pearson/Spearman computations; the type serves monitors and
// benchmarks that tolerate the documented tolerance.
type MomentPartial struct {
	Count                           int64
	SumX, SumY, SumXX, SumYY, SumXY float64
}

// Observe adds one paired observation.
func (p *MomentPartial) Observe(x, y float64) {
	p.Count++
	p.SumX += x
	p.SumY += y
	p.SumXX += x * x
	p.SumYY += y * y
	p.SumXY += x * y
}

// Merge folds o into p by summing counts and power sums.
func (p *MomentPartial) Merge(o *MomentPartial) {
	p.Count += o.Count
	p.SumX += o.SumX
	p.SumY += o.SumY
	p.SumXX += o.SumXX
	p.SumYY += o.SumYY
	p.SumXY += o.SumXY
}

// MeanX and MeanY report the accumulated means; zero observations yield 0.
func (p *MomentPartial) MeanX() float64 {
	if p.Count == 0 {
		return 0
	}
	return p.SumX / float64(p.Count)
}

func (p *MomentPartial) MeanY() float64 {
	if p.Count == 0 {
		return 0
	}
	return p.SumY / float64(p.Count)
}

// VarianceX and VarianceY are the unbiased sample variances from the
// moment sums, clamped at zero against cancellation residue.
func (p *MomentPartial) VarianceX() float64 {
	return momentVariance(p.Count, p.SumX, p.SumXX)
}

func (p *MomentPartial) VarianceY() float64 {
	return momentVariance(p.Count, p.SumY, p.SumYY)
}

func momentVariance(n int64, sum, sumSq float64) float64 {
	if n < 2 {
		return 0
	}
	fn := float64(n)
	s := sumSq - sum*sum/fn
	if s < 0 {
		s = 0
	}
	return s / (fn - 1)
}

// Correlation is the Pearson correlation implied by the moments, clamped
// to [-1, 1]; degenerate (constant) columns report 0 like Pearson does.
func (p *MomentPartial) Correlation() float64 {
	if p.Count < 2 {
		return 0
	}
	fn := float64(p.Count)
	sxx := p.SumXX - p.SumX*p.SumX/fn
	syy := p.SumYY - p.SumY*p.SumY/fn
	sxy := p.SumXY - p.SumX*p.SumY/fn
	if sxx <= 0 || syy <= 0 {
		return 0
	}
	return clampUnit(sxy / math.Sqrt(sxx*syy))
}
