package stats

import (
	"math"
)

// ChiSquared is the chi-squared distribution with K degrees of freedom,
// the reference distribution for the G and Pearson chi-squared statistics.
type ChiSquared struct {
	// K is the degrees of freedom; must be positive.
	K float64
}

// CDF returns P(X <= x).
func (d ChiSquared) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return GammaIncP(d.K/2, x/2)
}

// Survival returns P(X > x), the upper-tail p-value of a chi-squared
// statistic.
func (d ChiSquared) Survival(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return GammaIncQ(d.K/2, x/2)
}

// Mean returns K.
func (d ChiSquared) Mean() float64 { return d.K }

// Variance returns 2K.
func (d ChiSquared) Variance() float64 { return 2 * d.K }

// Quantile returns the x with CDF(x) = p, by bisection. It is used only in
// tests and diagnostics, so simplicity is preferred over speed.
func (d ChiSquared) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	lo, hi := 0.0, d.K+10
	for d.CDF(hi) < p {
		hi *= 2
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if d.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Normal is the normal distribution with mean Mu and standard deviation
// Sigma.
type Normal struct {
	Mu    float64
	Sigma float64
}

// StdNormal is the standard normal distribution N(0, 1).
var StdNormal = Normal{Mu: 0, Sigma: 1}

// CDF returns P(X <= x).
func (d Normal) CDF(x float64) float64 {
	return 0.5 * math.Erfc(-(x-d.Mu)/(d.Sigma*math.Sqrt2))
}

// Survival returns P(X > x).
func (d Normal) Survival(x float64) float64 {
	return 0.5 * math.Erfc((x-d.Mu)/(d.Sigma*math.Sqrt2))
}

// TwoSidedP returns the two-sided tail probability of an observed z-score:
// P(|Z| >= |z|).
func (d Normal) TwoSidedP(z float64) float64 {
	return math.Erfc(math.Abs(z-d.Mu) / (d.Sigma * math.Sqrt2))
}

// PDF returns the density at x.
func (d Normal) PDF(x float64) float64 {
	z := (x - d.Mu) / d.Sigma
	return math.Exp(-z*z/2) / (d.Sigma * math.Sqrt(2*math.Pi))
}

// Quantile returns the x with CDF(x) = p, via the Acklam rational
// approximation refined by one Halley step; absolute error is far below any
// statistical tolerance used in this package.
func (d Normal) Quantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	z := stdNormalQuantile(p)
	// One Halley refinement against the exact CDF.
	e := StdNormal.CDF(z) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(z*z/2)
	z = z - u/(1+z*u/2)
	return d.Mu + d.Sigma*z
}

// stdNormalQuantile is Acklam's approximation to the standard-normal inverse
// CDF.
func stdNormalQuantile(p float64) float64 {
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	dd := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((dd[0]*q+dd[1])*q+dd[2])*q+dd[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((dd[0]*q+dd[1])*q+dd[2])*q+dd[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// StudentsT is Student's t distribution with Nu degrees of freedom; the
// reference distribution for the Pearson and Spearman correlation tests.
type StudentsT struct {
	Nu float64
}

// CDF returns P(T <= t).
func (d StudentsT) CDF(t float64) float64 {
	if math.IsNaN(t) {
		return math.NaN()
	}
	x := d.Nu / (d.Nu + t*t)
	half := 0.5 * BetaInc(d.Nu/2, 0.5, x)
	if t > 0 {
		return 1 - half
	}
	return half
}

// TwoSidedP returns P(|T| >= |t|).
func (d StudentsT) TwoSidedP(t float64) float64 {
	x := d.Nu / (d.Nu + t*t)
	return BetaInc(d.Nu/2, 0.5, x)
}
