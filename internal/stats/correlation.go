package stats

import (
	"fmt"
	"math"
	"sort"
)

// Pearson computes Pearson's product-moment correlation r between x and y,
// together with the two-sided p-value from the t reference distribution with
// n-2 degrees of freedom. The paper discusses Pearson's rho as the parametric
// alternative to Kendall's tau (Section 4.3).
func Pearson(x, y []float64) (r, p float64, err error) {
	n := len(x)
	if n != len(y) {
		return 0, 0, fmt.Errorf("stats: Pearson length mismatch %d vs %d", n, len(y))
	}
	if n < 3 {
		return 0, 0, fmt.Errorf("stats: Pearson needs at least 3 observations, got %d", n)
	}
	mx, my := mean(x), mean(y)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx <= 0 || syy <= 0 {
		// A constant column (zero sum of squares) is uncorrelated with
		// everything.
		return 0, 1, nil
	}
	r = sxy / math.Sqrt(sxx*syy)
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	if math.Abs(r) >= 1 {
		// Perfectly collinear after clamping: the t statistic diverges.
		return r, 0, nil
	}
	df := float64(n - 2)
	t := r * math.Sqrt(df/(1-r*r))
	p = StudentsT{Nu: df}.TwoSidedP(t)
	return r, p, nil
}

// Spearman computes Spearman's rank correlation rho_s: the Pearson
// correlation of the (mid-)ranks, with the same t-based p-value.
func Spearman(x, y []float64) (rho, p float64, err error) {
	if len(x) != len(y) {
		return 0, 0, fmt.Errorf("stats: Spearman length mismatch %d vs %d", len(x), len(y))
	}
	return Pearson(Ranks(x), Ranks(y))
}

// Ranks returns the 1-based mid-ranks of v (ties get the average of their
// rank range), the standard ranking used by Spearman's rho.
func Ranks(v []float64) []float64 {
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		//scoded:lint-ignore floatcmp mid-rank runs group exactly-equal data values
		for j+1 < n && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		// Rows i..j are tied; assign the mid-rank.
		mid := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = mid
		}
		i = j + 1
	}
	return out
}

// PearsonTest adapts Pearson to the TestResult interface: statistic |r|,
// two-sided p-value.
func PearsonTest(x, y []float64) (TestResult, error) {
	r, p, err := Pearson(x, y)
	if err != nil {
		return TestResult{}, err
	}
	return TestResult{Statistic: math.Abs(r), P: p, N: len(x)}, nil
}

// SpearmanTest adapts Spearman to the TestResult interface.
func SpearmanTest(x, y []float64) (TestResult, error) {
	r, p, err := Spearman(x, y)
	if err != nil {
		return TestResult{}, err
	}
	return TestResult{Statistic: math.Abs(r), P: p, N: len(x)}, nil
}

func mean(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Mean is the arithmetic mean of v; it panics on empty input.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		panic("stats: Mean of empty slice")
	}
	return mean(v)
}

// Variance is the unbiased sample variance of v.
func Variance(v []float64) float64 {
	n := len(v)
	if n < 2 {
		return 0
	}
	m := mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev is the unbiased sample standard deviation of v.
func StdDev(v []float64) float64 { return math.Sqrt(Variance(v)) }
