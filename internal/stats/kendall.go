//scoded:hotpath
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// kendallScratch pools the merge-sort working memory of kendallFromPrep
// (the permuted-y copy and the merge buffer). Both are consumed inside the
// call — only the inversion count survives — so pooling is invisible to
// callers and saves two O(n) allocations per tau evaluation on the
// detection hot path.
var kendallScratch = sync.Pool{New: func() any { return new(kendallBuffers) }}

type kendallBuffers struct {
	mem []float64
}

// KendallResult reports Kendall rank-correlation statistics for a sample of
// paired observations.
type KendallResult struct {
	// TauA is the paper's statistic: (nc - nd) / C(n,2).
	TauA float64
	// TauB is the tie-corrected coefficient (nc-nd)/sqrt((n0-n1)(n0-n2)).
	TauB float64
	// Concordant, Discordant are the pair counts n_c(D) and n_d(D).
	Concordant, Discordant int64
	// TiesX, TiesY, TiesXY count pairs tied on x, on y, and on both.
	TiesX, TiesY, TiesXY int64
	// Z is the tie-corrected normal z-score of (nc - nd) under independence.
	Z float64
	// P is the two-sided p-value from the Gaussian approximation.
	P float64
	// N is the sample size.
	N int
	// Approximate is true when n <= 60, where the Gaussian approximation to
	// the tau null distribution is considered unreliable (NIST rule cited by
	// the paper).
	Approximate bool
}

// KendallPrep holds the sample-dependent precomputation of Kendall's tau
// for one fixed (x, y) pair: the joint sort order and the per-column tie
// group sizes. It is what the kernel cache memoizes per column pair so
// repeated tests on the same data skip the O(n log n) sorts; a prep is
// read-only and safe for concurrent reuse.
type KendallPrep struct {
	// Order holds the indices sorted by x ascending, x-ties by y ascending.
	Order []int
	// XTies and YTies are the tie group sizes of each column, in sorted
	// value order (the tieGroupSizes form kendallZP consumes).
	XTies, YTies []int
}

// PrepKendall validates the sample and computes its KendallPrep. The
// validation (length, minimum size, NaN) is exactly Kendall's, so the
// cached-prep path fails with byte-identical errors.
func PrepKendall(x, y []float64) (*KendallPrep, error) {
	n := len(x)
	if n != len(y) {
		return nil, fmt.Errorf("stats: Kendall length mismatch %d vs %d", n, len(y))
	}
	if n < 2 {
		return nil, fmt.Errorf("stats: Kendall needs at least 2 observations, got %d", n)
	}
	for i := 0; i < n; i++ {
		if math.IsNaN(x[i]) || math.IsNaN(y[i]) {
			return nil, fmt.Errorf("stats: Kendall input contains NaN at %d", i)
		}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Sort by x ascending, breaking x-ties by y ascending.
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		//scoded:lint-ignore floatcmp comparator tie-break needs exact equality for a total order
		if x[ia] != x[ib] {
			return x[ia] < x[ib]
		}
		return y[ia] < y[ib]
	})
	return &KendallPrep{Order: idx, XTies: tieGroupSizes(x), YTies: tieGroupSizes(y)}, nil
}

// Kendall computes Kendall's rank correlation between x and y in
// O(n log n) time using Knight's algorithm (merge-sort inversion counting
// with tie corrections), the method referenced by the paper [36].
func Kendall(x, y []float64) (KendallResult, error) {
	p, err := PrepKendall(x, y)
	if err != nil {
		return KendallResult{}, err
	}
	return kendallFromPrep(x, y, p), nil
}

// KendallPrepped is Kendall with the sort/tie precomputation supplied by the
// caller (typically from the kernel cache). A nil prep falls back to the
// full computation. Results are bit-identical to Kendall on the same data.
func KendallPrepped(x, y []float64, p *KendallPrep) (KendallResult, error) {
	if p == nil {
		return Kendall(x, y)
	}
	if len(x) != len(y) || len(p.Order) != len(x) {
		return KendallResult{}, fmt.Errorf("stats: Kendall prep built for %d observations, got %d/%d",
			len(p.Order), len(x), len(y))
	}
	return kendallFromPrep(x, y, p), nil
}

// kendallFromPrep runs the tie-corrected tau computation proper. Both the
// prepped and unprepped entry points funnel here, so the two paths cannot
// diverge arithmetically.
func kendallFromPrep(x, y []float64, p *KendallPrep) KendallResult {
	n := len(x)
	idx := p.Order

	// Tie counts over the joint sort order: pairs tied on x and on both
	// (x, y) jointly.
	var n1, n2, n3 int64
	var tx, txy tieAccumulator
	for i := 1; i < n; i++ {
		ia, ib := idx[i], idx[i-1]
		//scoded:lint-ignore floatcmp Kendall ties are defined by exact value equality
		sameX := x[ia] == x[ib]
		tx.step(sameX)
		//scoded:lint-ignore floatcmp Kendall ties are defined by exact value equality
		txy.step(sameX && y[ia] == y[ib])
	}
	n1 = tx.finish()
	n3 = txy.finish()

	sc := kendallScratch.Get().(*kendallBuffers)
	if cap(sc.mem) < 2*n {
		sc.mem = make([]float64, 2*n)
	}
	mem := sc.mem[:2*n]
	ySorted, buf := mem[:n], mem[n:]
	for i, id := range idx {
		ySorted[i] = y[id]
	}
	// Discordant pairs = inversions of ySorted (strict descents across
	// different-x pairs; within an x-tie block y is ascending so contributes
	// no inversions).
	discordant := countInversions(ySorted, buf)
	kendallScratch.Put(sc)

	// Pairs tied on y, from the precomputed tie groups: a group of r equal
	// values contributes r(r-1)/2 tied pairs (exact integer arithmetic, the
	// same total the previous y-sorted pass accumulated).
	for _, r := range p.YTies {
		n2 += int64(r) * int64(r-1) / 2
	}

	n0 := int64(n) * int64(n-1) / 2
	nd := discordant
	nc := n0 - n1 - n2 + n3 - nd

	res := KendallResult{
		Concordant: nc,
		Discordant: nd,
		TiesX:      n1,
		TiesY:      n2,
		TiesXY:     n3,
		N:          n,
	}
	num := float64(nc - nd)
	res.TauA = num / float64(n0)
	denom := math.Sqrt(float64(n0-n1) * float64(n0-n2))
	if denom <= 0 {
		// A constant column: tau-b undefined; report 0 correlation with p=1.
		res.TauB = 0
		res.Z = 0
		res.P = 1
		return res
	}
	res.TauB = clampUnit(num / denom)

	res.Z, res.P = kendallZPFromTies(n, p.XTies, p.YTies, num)
	res.Approximate = n <= 60
	return res
}

// kendallZP computes the tie-corrected variance of (nc - nd) under the null
// of independence and the resulting two-sided Gaussian p-value. The variance
// formula is the standard one (Kendall 1970; also used by scipy.stats
// kendalltau):
//
//	var = (v0 - vt - vu)/18 + v1 + v2
//
// with v0, vt, vu the n(n-1)(2n+5) terms and v1, v2 the joint-tie
// corrections.
func kendallZP(n int, x, y []float64, num float64) (z, p float64) {
	return kendallZPFromTies(n, tieGroupSizes(x), tieGroupSizes(y), num)
}

// kendallZPFromTies is kendallZP with the tie group sizes precomputed (they
// are part of KendallPrep). The groups must be in tieGroupSizes order so the
// float accumulation order — and hence the result bits — match exactly.
func kendallZPFromTies(n int, xt, yt []int, num float64) (z, p float64) {
	fn := float64(n)
	v0 := fn * (fn - 1) * (2*fn + 5)
	var vt, vu, sx1, sx2, sy1, sy2 float64
	for _, t := range xt {
		ft := float64(t)
		vt += ft * (ft - 1) * (2*ft + 5)
		sx1 += ft * (ft - 1)
		sx2 += ft * (ft - 1) * (ft - 2)
	}
	for _, u := range yt {
		fu := float64(u)
		vu += fu * (fu - 1) * (2*fu + 5)
		sy1 += fu * (fu - 1)
		sy2 += fu * (fu - 1) * (fu - 2)
	}
	v := (v0-vt-vu)/18 +
		sx1*sy1/(2*fn*(fn-1))
	if n > 2 {
		v += sx2 * sy2 / (9 * fn * (fn - 1) * (fn - 2))
	}
	if v <= 0 {
		return 0, 1
	}
	z = num / math.Sqrt(v)
	p = StdNormal.TwoSidedP(z)
	return z, p
}

// clampUnit clips rounding residue so that a mathematically exact ±1
// correlation reports as exactly ±1.
func clampUnit(v float64) float64 {
	if v > 1 {
		return 1
	}
	if v < -1 {
		return -1
	}
	return v
}

// tieAccumulator counts tied pairs from a stream of "is this element equal
// to the previous one" observations over sorted data: a run of r equal
// elements contributes r(r-1)/2 tied pairs.
type tieAccumulator struct {
	run   int64
	total int64
}

func (t *tieAccumulator) step(same bool) {
	if same {
		t.run++
		t.total += t.run
	} else {
		t.run = 0
	}
}

func (t *tieAccumulator) finish() int64 { return t.total }

// tieGroupSizes returns the sizes of groups of equal values in v.
func tieGroupSizes(v []float64) []int {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	var out []int
	run := 1
	for i := 1; i < len(s); i++ {
		//scoded:lint-ignore floatcmp tie runs group exactly-equal sorted values
		if s[i] == s[i-1] {
			run++
			continue
		}
		if run > 1 {
			out = append(out, run)
		}
		run = 1
	}
	if run > 1 {
		out = append(out, run)
	}
	return out
}

// countInversions counts pairs (i, j), i < j, with v[i] > v[j], via
// bottom-up merge sort. It mutates v; buf must be the same length.
func countInversions(v, buf []float64) int64 {
	n := len(v)
	var inv int64
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n-width; lo += 2 * width {
			mid := lo + width
			hi := mid + width
			if hi > n {
				hi = n
			}
			inv += mergeCount(v, buf, lo, mid, hi)
		}
	}
	return inv
}

func mergeCount(v, buf []float64, lo, mid, hi int) int64 {
	copy(buf[lo:hi], v[lo:hi])
	i, j := lo, mid
	var inv int64
	for k := lo; k < hi; k++ {
		switch {
		case i >= mid:
			v[k] = buf[j]
			j++
		case j >= hi:
			v[k] = buf[i]
			i++
		case buf[j] < buf[i]:
			// Strict inequality: equal values are ties, not inversions.
			inv += int64(mid - i)
			v[k] = buf[j]
			j++
		default:
			v[k] = buf[i]
			i++
		}
	}
	return inv
}

// KendallNaive computes tau-a, tau-b and the pair counts by the O(n²)
// definition. It exists as a correctness oracle for tests and for the
// brute-force drill-down baseline.
func KendallNaive(x, y []float64) KendallResult {
	n := len(x)
	var nc, nd, tX, tY, tXY int64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := x[i] - x[j]
			dy := y[i] - y[j]
			switch {
			//scoded:lint-ignore floatcmp Kendall ties are defined by exact value equality
			case dx == 0 && dy == 0:
				tXY++
				tX++
				tY++
			//scoded:lint-ignore floatcmp Kendall ties are defined by exact value equality
			case dx == 0:
				tX++
			//scoded:lint-ignore floatcmp Kendall ties are defined by exact value equality
			case dy == 0:
				tY++
			case dx*dy > 0:
				nc++
			default:
				nd++
			}
		}
	}
	n0 := int64(n) * int64(n-1) / 2
	res := KendallResult{
		Concordant: nc, Discordant: nd,
		TiesX: tX, TiesY: tY, TiesXY: tXY, N: n,
	}
	if n0 > 0 {
		res.TauA = float64(nc-nd) / float64(n0)
		denom := math.Sqrt(float64(n0-tX) * float64(n0-tY))
		if denom > 0 {
			res.TauB = clampUnit(float64(nc-nd) / denom)
		}
	}
	res.Z, res.P = kendallZP(n, x, y, float64(nc-nd))
	return res
}

// KendallTest adapts Kendall to the TestResult interface used by the
// violation detector: the statistic is |tau-b| and the p-value is the
// two-sided Gaussian approximation.
func KendallTest(x, y []float64) (TestResult, error) {
	k, err := Kendall(x, y)
	if err != nil {
		return TestResult{}, err
	}
	return kendallTestResult(k), nil
}

// KendallTestPrepped is KendallTest with a caller-supplied (typically
// cached) KendallPrep; see KendallPrepped.
func KendallTestPrepped(x, y []float64, p *KendallPrep) (TestResult, error) {
	k, err := KendallPrepped(x, y, p)
	if err != nil {
		return TestResult{}, err
	}
	return kendallTestResult(k), nil
}

func kendallTestResult(k KendallResult) TestResult {
	return TestResult{
		Statistic:   math.Abs(k.TauB),
		P:           k.P,
		N:           k.N,
		Approximate: k.Approximate,
	}
}
