package stats

import (
	"fmt"
	"math"
	"sort"
)

// KendallResult reports Kendall rank-correlation statistics for a sample of
// paired observations.
type KendallResult struct {
	// TauA is the paper's statistic: (nc - nd) / C(n,2).
	TauA float64
	// TauB is the tie-corrected coefficient (nc-nd)/sqrt((n0-n1)(n0-n2)).
	TauB float64
	// Concordant, Discordant are the pair counts n_c(D) and n_d(D).
	Concordant, Discordant int64
	// TiesX, TiesY, TiesXY count pairs tied on x, on y, and on both.
	TiesX, TiesY, TiesXY int64
	// Z is the tie-corrected normal z-score of (nc - nd) under independence.
	Z float64
	// P is the two-sided p-value from the Gaussian approximation.
	P float64
	// N is the sample size.
	N int
	// Approximate is true when n <= 60, where the Gaussian approximation to
	// the tau null distribution is considered unreliable (NIST rule cited by
	// the paper).
	Approximate bool
}

// Kendall computes Kendall's rank correlation between x and y in
// O(n log n) time using Knight's algorithm (merge-sort inversion counting
// with tie corrections), the method referenced by the paper [36].
func Kendall(x, y []float64) (KendallResult, error) {
	n := len(x)
	if n != len(y) {
		return KendallResult{}, fmt.Errorf("stats: Kendall length mismatch %d vs %d", n, len(y))
	}
	if n < 2 {
		return KendallResult{}, fmt.Errorf("stats: Kendall needs at least 2 observations, got %d", n)
	}
	for i := 0; i < n; i++ {
		if math.IsNaN(x[i]) || math.IsNaN(y[i]) {
			return KendallResult{}, fmt.Errorf("stats: Kendall input contains NaN at %d", i)
		}
	}

	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Sort by x ascending, breaking x-ties by y ascending.
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		//scoded:lint-ignore floatcmp comparator tie-break needs exact equality for a total order
		if x[ia] != x[ib] {
			return x[ia] < x[ib]
		}
		return y[ia] < y[ib]
	})

	// Tie counts. Pairs tied on x, on both (x,y) jointly, and on y.
	var n1, n2, n3 int64
	var tx, txy tieAccumulator
	for i := 0; i < n; i++ {
		ia := idx[i]
		if i > 0 {
			ib := idx[i-1]
			//scoded:lint-ignore floatcmp Kendall ties are defined by exact value equality
			sameX := x[ia] == x[ib]
			tx.step(sameX)
			//scoded:lint-ignore floatcmp Kendall ties are defined by exact value equality
			txy.step(sameX && y[ia] == y[ib])
		}
	}
	n1 = tx.finish()
	n3 = txy.finish()

	ySorted := make([]float64, n)
	for i, id := range idx {
		ySorted[i] = y[id]
	}
	// Discordant pairs = inversions of ySorted (strict descents across
	// different-x pairs; within an x-tie block y is ascending so contributes
	// no inversions).
	buf := make([]float64, n)
	discordant := countInversions(ySorted, buf)

	// Ties on y require a y-sorted pass.
	ys := append([]float64(nil), y...)
	sort.Float64s(ys)
	var ty tieAccumulator
	for i := 1; i < n; i++ {
		//scoded:lint-ignore floatcmp Kendall ties are defined by exact value equality
		ty.step(ys[i] == ys[i-1])
	}
	n2 = ty.finish()

	n0 := int64(n) * int64(n-1) / 2
	nd := discordant
	nc := n0 - n1 - n2 + n3 - nd

	res := KendallResult{
		Concordant: nc,
		Discordant: nd,
		TiesX:      n1,
		TiesY:      n2,
		TiesXY:     n3,
		N:          n,
	}
	num := float64(nc - nd)
	res.TauA = num / float64(n0)
	denom := math.Sqrt(float64(n0-n1) * float64(n0-n2))
	if denom <= 0 {
		// A constant column: tau-b undefined; report 0 correlation with p=1.
		res.TauB = 0
		res.Z = 0
		res.P = 1
		return res, nil
	}
	res.TauB = clampUnit(num / denom)

	res.Z, res.P = kendallZP(n, x, y, num)
	res.Approximate = n <= 60
	return res, nil
}

// kendallZP computes the tie-corrected variance of (nc - nd) under the null
// of independence and the resulting two-sided Gaussian p-value. The variance
// formula is the standard one (Kendall 1970; also used by scipy.stats
// kendalltau):
//
//	var = (v0 - vt - vu)/18 + v1 + v2
//
// with v0, vt, vu the n(n-1)(2n+5) terms and v1, v2 the joint-tie
// corrections.
func kendallZP(n int, x, y []float64, num float64) (z, p float64) {
	xt := tieGroupSizes(x)
	yt := tieGroupSizes(y)
	fn := float64(n)
	v0 := fn * (fn - 1) * (2*fn + 5)
	var vt, vu, sx1, sx2, sy1, sy2 float64
	for _, t := range xt {
		ft := float64(t)
		vt += ft * (ft - 1) * (2*ft + 5)
		sx1 += ft * (ft - 1)
		sx2 += ft * (ft - 1) * (ft - 2)
	}
	for _, u := range yt {
		fu := float64(u)
		vu += fu * (fu - 1) * (2*fu + 5)
		sy1 += fu * (fu - 1)
		sy2 += fu * (fu - 1) * (fu - 2)
	}
	v := (v0-vt-vu)/18 +
		sx1*sy1/(2*fn*(fn-1))
	if n > 2 {
		v += sx2 * sy2 / (9 * fn * (fn - 1) * (fn - 2))
	}
	if v <= 0 {
		return 0, 1
	}
	z = num / math.Sqrt(v)
	p = StdNormal.TwoSidedP(z)
	return z, p
}

// clampUnit clips rounding residue so that a mathematically exact ±1
// correlation reports as exactly ±1.
func clampUnit(v float64) float64 {
	if v > 1 {
		return 1
	}
	if v < -1 {
		return -1
	}
	return v
}

// tieAccumulator counts tied pairs from a stream of "is this element equal
// to the previous one" observations over sorted data: a run of r equal
// elements contributes r(r-1)/2 tied pairs.
type tieAccumulator struct {
	run   int64
	total int64
}

func (t *tieAccumulator) step(same bool) {
	if same {
		t.run++
		t.total += t.run
	} else {
		t.run = 0
	}
}

func (t *tieAccumulator) finish() int64 { return t.total }

// tieGroupSizes returns the sizes of groups of equal values in v.
func tieGroupSizes(v []float64) []int {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	var out []int
	run := 1
	for i := 1; i < len(s); i++ {
		//scoded:lint-ignore floatcmp tie runs group exactly-equal sorted values
		if s[i] == s[i-1] {
			run++
			continue
		}
		if run > 1 {
			out = append(out, run)
		}
		run = 1
	}
	if run > 1 {
		out = append(out, run)
	}
	return out
}

// countInversions counts pairs (i, j), i < j, with v[i] > v[j], via
// bottom-up merge sort. It mutates v; buf must be the same length.
func countInversions(v, buf []float64) int64 {
	n := len(v)
	var inv int64
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n-width; lo += 2 * width {
			mid := lo + width
			hi := mid + width
			if hi > n {
				hi = n
			}
			inv += mergeCount(v, buf, lo, mid, hi)
		}
	}
	return inv
}

func mergeCount(v, buf []float64, lo, mid, hi int) int64 {
	copy(buf[lo:hi], v[lo:hi])
	i, j := lo, mid
	var inv int64
	for k := lo; k < hi; k++ {
		switch {
		case i >= mid:
			v[k] = buf[j]
			j++
		case j >= hi:
			v[k] = buf[i]
			i++
		case buf[j] < buf[i]:
			// Strict inequality: equal values are ties, not inversions.
			inv += int64(mid - i)
			v[k] = buf[j]
			j++
		default:
			v[k] = buf[i]
			i++
		}
	}
	return inv
}

// KendallNaive computes tau-a, tau-b and the pair counts by the O(n²)
// definition. It exists as a correctness oracle for tests and for the
// brute-force drill-down baseline.
func KendallNaive(x, y []float64) KendallResult {
	n := len(x)
	var nc, nd, tX, tY, tXY int64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := x[i] - x[j]
			dy := y[i] - y[j]
			switch {
			//scoded:lint-ignore floatcmp Kendall ties are defined by exact value equality
			case dx == 0 && dy == 0:
				tXY++
				tX++
				tY++
			//scoded:lint-ignore floatcmp Kendall ties are defined by exact value equality
			case dx == 0:
				tX++
			//scoded:lint-ignore floatcmp Kendall ties are defined by exact value equality
			case dy == 0:
				tY++
			case dx*dy > 0:
				nc++
			default:
				nd++
			}
		}
	}
	n0 := int64(n) * int64(n-1) / 2
	res := KendallResult{
		Concordant: nc, Discordant: nd,
		TiesX: tX, TiesY: tY, TiesXY: tXY, N: n,
	}
	if n0 > 0 {
		res.TauA = float64(nc-nd) / float64(n0)
		denom := math.Sqrt(float64(n0-tX) * float64(n0-tY))
		if denom > 0 {
			res.TauB = clampUnit(float64(nc-nd) / denom)
		}
	}
	res.Z, res.P = kendallZP(n, x, y, float64(nc-nd))
	return res
}

// KendallTest adapts Kendall to the TestResult interface used by the
// violation detector: the statistic is |tau-b| and the p-value is the
// two-sided Gaussian approximation.
func KendallTest(x, y []float64) (TestResult, error) {
	k, err := Kendall(x, y)
	if err != nil {
		return TestResult{}, err
	}
	return TestResult{
		Statistic:   math.Abs(k.TauB),
		P:           k.P,
		N:           k.N,
		Approximate: k.Approximate,
	}, nil
}
