//scoded:hotpath
package stats

import (
	"fmt"
	"math"
	"sync"
)

// Table is a two-way contingency table of observed counts. Counts[i][j] is
// the count for row level i and column level j; rows must be equal length.
type Table [][]float64

// N returns the total count of the table.
func (t Table) N() float64 {
	var n float64
	for _, row := range t {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Marginals returns the row and column marginal totals.
func (t Table) Marginals() (rows, cols []float64) {
	if len(t) == 0 {
		return nil, nil
	}
	rows = make([]float64, len(t))
	cols = make([]float64, len(t[0]))
	for i, row := range t {
		for j, v := range row {
			rows[i] += v
			cols[j] += v
		}
	}
	return rows, cols
}

// validate checks the table shape and non-negativity.
func (t Table) validate() error {
	if len(t) == 0 || len(t[0]) == 0 {
		return fmt.Errorf("stats: empty contingency table")
	}
	w := len(t[0])
	for i, row := range t {
		if len(row) != w {
			return fmt.Errorf("stats: ragged contingency table at row %d", i)
		}
		for j, v := range row {
			if v < 0 || math.IsNaN(v) {
				return fmt.Errorf("stats: invalid count %v at (%d,%d)", v, i, j)
			}
		}
	}
	return nil
}

// degreesOfFreedom counts (r-1)(c-1) over rows/columns with positive
// marginals.
func (t Table) degreesOfFreedom() int {
	rm, cm := t.Marginals()
	nr, nc := 0, 0
	for _, v := range rm {
		if v > 0 {
			nr++
		}
	}
	for _, v := range cm {
		if v > 0 {
			nc++
		}
	}
	if nr < 2 || nc < 2 {
		return 0
	}
	return (nr - 1) * (nc - 1)
}

// MutualInformation computes the empirical mutual information of the table
// in bits (base-2 logarithm), matching the paper's definition in Section 2.2.
// A value of 0 means the empirical distribution factorises exactly.
func MutualInformation(t Table) float64 {
	return mutualInformationBase(t, math.Log2)
}

// MutualInformationNats computes the mutual information in nats.
func MutualInformationNats(t Table) float64 {
	return mutualInformationBase(t, math.Log)
}

func mutualInformationBase(t Table, logf func(float64) float64) float64 {
	n := t.N()
	if n <= 0 {
		return 0
	}
	rm, cm := t.Marginals()
	mi := 0.0
	for i, row := range t {
		for j, o := range row {
			if o <= 0 {
				continue
			}
			p := o / n
			px := rm[i] / n
			py := cm[j] / n
			mi += p * logf(p/(px*py))
		}
	}
	if mi < 0 { // clamp tiny negative rounding residue
		mi = 0
	}
	return mi
}

// GStatistic computes the G statistic G = 2 Σ O ln(O/E) of the table. It is
// the paper's "rescaled mutual information" G = 2·N·I(X;Y) with I measured
// in nats.
func GStatistic(t Table) float64 {
	return 2 * t.N() * MutualInformationNats(t)
}

// TestResult is the outcome of a hypothesis test: the observed statistic, its
// degrees of freedom (0 if not applicable), the p-value under the null of
// independence, and the effective sample size.
type TestResult struct {
	// Statistic is the observed test statistic.
	Statistic float64
	// DF is the degrees of freedom of the reference distribution (0 when
	// the reference is not chi-squared).
	DF int
	// P is the p-value: the probability, under independence, of a statistic
	// at least as extreme as the observed one.
	P float64
	// N is the sample size the statistic was computed from.
	N int
	// Approximate reports whether the closed-form reference distribution was
	// outside its validity regime (e.g. expected cell counts below 5 for the
	// G-test, n <= 60 for the tau test), signalling that an exact test is
	// advisable.
	Approximate bool
}

// gtestScratch pools the marginal buffers of GTest. The test is called once
// per (constraint, stratum) on the detection hot path, and its total, the two
// marginals, the degrees of freedom and the min-expected check all need the
// same row/column sums — the pool lets one fused accumulation serve them all
// without a per-call allocation. Buffers never escape: TestResult carries
// only scalars.
var gtestScratch = sync.Pool{New: func() any { return new(gtestBuffers) }}

type gtestBuffers struct {
	rm, cm []float64
}

// grow returns b resized to n with every element zeroed.
func grow(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = 0
	}
	return b
}

// GTest performs the G-test of independence on a contingency table, using
// the chi-squared reference distribution with (r-1)(c-1) degrees of freedom.
//
// The implementation fuses what used to be four separate passes (N, the
// marginals for MI, the marginals for the degrees of freedom, and the
// marginals for the min-expected check) into one marginal accumulation in
// the exact row-major order of Table.N and Table.Marginals, so results stay
// bit-identical to composing those primitives.
func GTest(t Table) (TestResult, error) {
	if err := t.validate(); err != nil {
		return TestResult{}, err
	}
	sc := gtestScratch.Get().(*gtestBuffers)
	defer gtestScratch.Put(sc)
	rm := grow(sc.rm, len(t))
	cm := grow(sc.cm, len(t[0]))
	sc.rm, sc.cm = rm, cm
	var n float64
	for i, row := range t {
		for j, v := range row {
			n += v
			rm[i] += v
			cm[j] += v
		}
	}

	// G = 2·N·I(X;Y) in nats (mutualInformationBase with math.Log, using the
	// shared marginals).
	var g float64
	if n > 0 {
		mi := 0.0
		for i, row := range t {
			for j, o := range row {
				if o <= 0 {
					continue
				}
				p := o / n
				px := rm[i] / n
				py := cm[j] / n
				mi += p * math.Log(p/(px*py))
			}
		}
		if mi < 0 { // clamp tiny negative rounding residue
			mi = 0
		}
		g = 2 * n * mi
	}

	// Degrees of freedom over rows/columns with positive marginals.
	nr, nc := 0, 0
	for _, v := range rm {
		if v > 0 {
			nr++
		}
	}
	for _, v := range cm {
		if v > 0 {
			nc++
		}
	}
	df := 0
	if nr >= 2 && nc >= 2 {
		df = (nr - 1) * (nc - 1)
	}

	res := TestResult{Statistic: g, DF: df, N: int(n)}
	if df == 0 {
		// A degenerate table (a constant row or column) carries no evidence
		// against independence.
		res.P = 1
		return res, nil
	}
	res.P = ChiSquared{K: float64(df)}.Survival(g)
	// minExpected inline over the shared marginals: the smallest expected
	// count decides whether the chi-squared reference is trustworthy.
	minE := math.Inf(1)
	for i := range rm {
		if rm[i] <= 0 {
			continue
		}
		for j := range cm {
			if cm[j] <= 0 {
				continue
			}
			if e := rm[i] * cm[j] / n; e < minE {
				minE = e
			}
		}
	}
	if math.IsInf(minE, 1) {
		minE = 0
	}
	res.Approximate = minE < 5
	return res, nil
}

// ChiSquareTest performs the classical Pearson chi-squared test of
// independence, X² = Σ (O-E)²/E, on a contingency table.
func ChiSquareTest(t Table) (TestResult, error) {
	if err := t.validate(); err != nil {
		return TestResult{}, err
	}
	n := t.N()
	rm, cm := t.Marginals()
	x2 := 0.0
	for i, row := range t {
		for j, o := range row {
			if rm[i] <= 0 || cm[j] <= 0 {
				continue
			}
			e := rm[i] * cm[j] / n
			d := o - e
			x2 += d * d / e
		}
	}
	df := t.degreesOfFreedom()
	res := TestResult{Statistic: x2, DF: df, N: int(n)}
	if df == 0 {
		res.P = 1
		return res, nil
	}
	res.P = ChiSquared{K: float64(df)}.Survival(x2)
	res.Approximate = minExpected(t) < 5
	return res, nil
}

func minExpected(t Table) float64 {
	n := t.N()
	rm, cm := t.Marginals()
	min := math.Inf(1)
	for i := range rm {
		if rm[i] <= 0 {
			continue
		}
		for j := range cm {
			if cm[j] <= 0 {
				continue
			}
			if e := rm[i] * cm[j] / n; e < min {
				min = e
			}
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// TableFromCodes builds a contingency table from two parallel slices of
// category codes with the given cardinalities. It panics if a code is out of
// range; codes come from dictionary-encoded columns so this indicates a
// programming error.
//
// The rows are views into a single kx·ky cell slab, so building a table
// costs two allocations regardless of cardinality (the seed allocated one
// slice per row).
func TableFromCodes(x, y []int32, kx, ky int) Table {
	if len(x) != len(y) {
		panic("stats: TableFromCodes length mismatch")
	}
	t := NewTable(kx, ky)
	for i := range x {
		t[x[i]][y[i]]++
	}
	return t
}

// NewTable returns a zeroed kx-by-ky table whose rows alias one contiguous
// cell slab.
func NewTable(kx, ky int) Table {
	cells := make([]float64, kx*ky)
	t := make(Table, kx)
	for i := range t {
		t[i] = cells[i*ky : (i+1)*ky : (i+1)*ky]
	}
	return t
}
