package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestPermutationGTestAgreesWithAsymptotic(t *testing.T) {
	// On a medium-sized dependent sample the Monte-Carlo p-value should be
	// in the same regime as the chi-squared approximation.
	rng := rand.New(rand.NewSource(21))
	n := 200
	x := make([]int32, n)
	y := make([]int32, n)
	for i := range x {
		x[i] = int32(rng.Intn(3))
		if rng.Float64() < 0.4 {
			y[i] = x[i]
		} else {
			y[i] = int32(rng.Intn(3))
		}
	}
	exact, err := PermutationGTest(x, y, 3, 3, 999, rng)
	if err != nil {
		t.Fatal(err)
	}
	asym, err := GTest(TableFromCodes(x, y, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if exact.Statistic != asym.Statistic {
		t.Errorf("observed statistics differ: %v vs %v", exact.Statistic, asym.Statistic)
	}
	if asym.P < 0.001 && exact.P > 0.05 {
		t.Errorf("exact p=%v wildly disagrees with asymptotic p=%v", exact.P, asym.P)
	}
}

func TestPermutationGTestNull(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n := 60
	x := make([]int32, n)
	y := make([]int32, n)
	for i := range x {
		x[i] = int32(rng.Intn(2))
		y[i] = int32(rng.Intn(2))
	}
	res, err := PermutationGTest(x, y, 2, 2, 499, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.P <= 0 || res.P > 1 {
		t.Errorf("p out of range: %v", res.P)
	}
}

func TestPermutationGTestErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := PermutationGTest([]int32{0}, []int32{0, 1}, 1, 2, 10, rng); err == nil {
		t.Error("want error on length mismatch")
	}
	if _, err := PermutationGTest([]int32{0, 1}, []int32{0, 1}, 2, 2, 0, rng); err == nil {
		t.Error("want error on zero iterations")
	}
}

func TestPermutationKendallSmallSample(t *testing.T) {
	// The whole point of the exact test: a small sample where the Gaussian
	// approximation is flagged unreliable.
	rng := rand.New(rand.NewSource(23))
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	res, err := PermutationKendallTest(x, y, 999, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic != 1 {
		t.Errorf("|tau| = %v", res.Statistic)
	}
	// Perfect agreement on n=8: true exact p = 2/8! which is tiny; the MC
	// estimate is bounded below by 1/(iters+1).
	if res.P > 0.01 {
		t.Errorf("exact p = %v, want < 0.01", res.P)
	}
}

func TestPermutationKendallNullUniformish(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	x := make([]float64, 30)
	y := make([]float64, 30)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	res, err := PermutationKendallTest(x, y, 299, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 1.0/300 || res.P > 1 {
		t.Errorf("p out of range: %v", res.P)
	}
}

func TestPermutationKendallErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := PermutationKendallTest([]float64{1}, []float64{1, 2}, 10, rng); err == nil {
		t.Error("want error on length mismatch")
	}
	if _, err := PermutationKendallTest([]float64{1, 2}, []float64{1, 2}, 0, rng); err == nil {
		t.Error("want error on zero iterations")
	}
	if _, err := PermutationKendallTest([]float64{1}, []float64{1}, 10, rng); err == nil {
		t.Error("want error propagated from Kendall on n<2")
	}
}

func TestCombineGSumsStatAndDF(t *testing.T) {
	strata := []TestResult{
		{Statistic: 3, DF: 1, N: 100},
		{Statistic: 5, DF: 2, N: 150},
		{Statistic: 99, DF: 0, N: 10}, // degenerate stratum must be skipped
	}
	c := CombineG(strata)
	if c.Statistic != 8 || c.DF != 3 {
		t.Errorf("combined stat=%v df=%d", c.Statistic, c.DF)
	}
	if c.N != 250 {
		t.Errorf("combined N=%d", c.N)
	}
	want := ChiSquared{K: 3}.Survival(8)
	if !approxEq(c.P, want, 1e-12) {
		t.Errorf("combined p=%v want %v", c.P, want)
	}
}

func TestCombineGAllDegenerate(t *testing.T) {
	c := CombineG([]TestResult{{Statistic: 1, DF: 0, N: 5}})
	if c.P != 1 || c.DF != 0 {
		t.Errorf("all-degenerate combine: p=%v df=%d", c.P, c.DF)
	}
}

func TestStoufferZ(t *testing.T) {
	// Two strata with equal weight and equal z: combined z = z*sqrt(2).
	z, p, err := StoufferZ([]float64{2, 2}, []int{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(z, 2*math.Sqrt2, 1e-12) {
		t.Errorf("z = %v, want 2*sqrt(2)", z)
	}
	if !approxEq(p, StdNormal.TwoSidedP(2*math.Sqrt2), 1e-12) {
		t.Errorf("p = %v", p)
	}
	// Opposite evidence cancels.
	z, p, _ = StoufferZ([]float64{3, -3}, []int{50, 50})
	if !approxEq(z, 0, 1e-12) || !approxEq(p, 1, 1e-12) {
		t.Errorf("cancel: z=%v p=%v", z, p)
	}
	if _, _, err := StoufferZ([]float64{1}, []int{1, 2}); err == nil {
		t.Error("want error on length mismatch")
	}
	if z, p, _ := StoufferZ(nil, nil); z != 0 || p != 1 {
		t.Errorf("empty: z=%v p=%v", z, p)
	}
}

func TestBenjaminiHochberg(t *testing.T) {
	// Classic worked example: m=5, q=0.25.
	ps := []float64{0.01, 0.04, 0.03, 0.005, 0.8}
	rej, err := BenjaminiHochberg(ps, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// Sorted: 0.005, 0.01, 0.03, 0.04, 0.8 vs thresholds
	// 0.05, 0.10, 0.15, 0.20, 0.25: largest rank meeting p <= qk/m is
	// rank 4 (0.04 <= 0.20), so the four smallest are rejected.
	want := []bool{true, true, true, true, false}
	for i := range want {
		if rej[i] != want[i] {
			t.Errorf("reject[%d] = %v, want %v", i, rej[i], want[i])
		}
	}
}

func TestBenjaminiHochbergStepUp(t *testing.T) {
	// The step-up property: a middle p-value above its own threshold is
	// still rejected when a later rank qualifies.
	ps := []float64{0.01, 0.049, 0.05}
	rej, err := BenjaminiHochberg(ps, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Thresholds: 0.0167, 0.0333, 0.05. Rank 3 (0.05 <= 0.05) qualifies,
	// so all three are rejected even though 0.049 > 0.0333.
	for i, r := range rej {
		if !r {
			t.Errorf("reject[%d] = false, want true (step-up)", i)
		}
	}
}

func TestBenjaminiHochbergNoneRejected(t *testing.T) {
	rej, err := BenjaminiHochberg([]float64{0.5, 0.9, 0.7}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rej {
		if r {
			t.Errorf("reject[%d] = true on null p-values", i)
		}
	}
	empty, err := BenjaminiHochberg(nil, 0.05)
	if err != nil || len(empty) != 0 {
		t.Errorf("empty family: %v %v", empty, err)
	}
}

func TestBenjaminiHochbergErrors(t *testing.T) {
	if _, err := BenjaminiHochberg([]float64{0.5}, -1); err == nil {
		t.Error("want error for bad q")
	}
	if _, err := BenjaminiHochberg([]float64{1.5}, 0.05); err == nil {
		t.Error("want error for p out of range")
	}
	if _, err := BenjaminiHochberg([]float64{math.NaN()}, 0.05); err == nil {
		t.Error("want error for NaN p")
	}
}

func TestBenjaminiHochbergFDRSimulation(t *testing.T) {
	// Under a global null, the probability of any rejection is <= q; with
	// mixed true/false nulls the realized FDR stays near q.
	rng := rand.New(rand.NewSource(33))
	trials := 300
	totalFalse, totalRej := 0, 0
	for tr := 0; tr < trials; tr++ {
		m := 20
		ps := make([]float64, m)
		isNull := make([]bool, m)
		for i := range ps {
			if i < 10 {
				ps[i] = rng.Float64() * 1e-4 // strong signals
			} else {
				ps[i] = rng.Float64()
				isNull[i] = true
			}
		}
		rej, err := BenjaminiHochberg(ps, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range rej {
			if r {
				totalRej++
				if isNull[i] {
					totalFalse++
				}
			}
		}
	}
	if totalRej == 0 {
		t.Fatal("no rejections at all")
	}
	fdr := float64(totalFalse) / float64(totalRej)
	if fdr > 0.15 {
		t.Errorf("realized FDR %v exceeds q=0.1 margin", fdr)
	}
}

func TestFisherCombine(t *testing.T) {
	// -2 ln(0.05) twice = 11.98..., chi2 df=4.
	stat, p, err := FisherCombine([]float64{0.05, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	want := -4 * math.Log(0.05)
	if !approxEq(stat, want, 1e-12) {
		t.Errorf("stat = %v, want %v", stat, want)
	}
	if !approxEq(p, ChiSquared{K: 4}.Survival(want), 1e-12) {
		t.Errorf("p = %v", p)
	}
	if _, p, _ := FisherCombine(nil); p != 1 {
		t.Errorf("empty combine p=%v", p)
	}
	if _, _, err := FisherCombine([]float64{1.5}); err == nil {
		t.Error("want error for p > 1")
	}
	if _, p, err := FisherCombine([]float64{0}); err != nil || p >= 1e-100 {
		t.Errorf("zero p should clamp, got p=%v err=%v", p, err)
	}
}
