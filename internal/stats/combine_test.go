package stats

import (
	"math"
	"testing"
)

func TestStoufferZBasic(t *testing.T) {
	z, p, err := StoufferZ([]float64{2, 2}, []int{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	// Equal weights: combined z = (w·2 + w·2) / sqrt(2w²) = 2·sqrt(2).
	if math.Abs(z-2*math.Sqrt2) > 1e-12 {
		t.Errorf("z = %v, want %v", z, 2*math.Sqrt2)
	}
	if p <= 0 || p >= 1 {
		t.Errorf("p = %v out of (0,1)", p)
	}
}

func TestStoufferZRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		zs   []float64
		ns   []int
	}{
		{"length mismatch", []float64{1}, []int{10, 20}},
		{"NaN z", []float64{1, math.NaN()}, []int{10, 10}},
		{"+Inf z", []float64{math.Inf(1), 1}, []int{10, 10}},
		{"-Inf z", []float64{1, math.Inf(-1)}, []int{10, 10}},
		{"negative n", []float64{1, 1}, []int{10, -1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, _, err := StoufferZ(c.zs, c.ns); err == nil {
				t.Errorf("StoufferZ(%v, %v) should fail", c.zs, c.ns)
			}
		})
	}
}

func TestStoufferZDegenerate(t *testing.T) {
	// All-zero weights: no evidence, p = 1.
	z, p, err := StoufferZ([]float64{3, 3}, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if z != 0 || p != 1 {
		t.Errorf("zero-weight StoufferZ = (%v, %v), want (0, 1)", z, p)
	}
	z, p, err = StoufferZ(nil, nil)
	if err != nil || z != 0 || p != 1 {
		t.Errorf("empty StoufferZ = (%v, %v, %v), want (0, 1, nil)", z, p, err)
	}
}

func TestBenjaminiHochbergRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		ps   []float64
		q    float64
	}{
		{"NaN p", []float64{0.1, math.NaN()}, 0.05},
		{"negative p", []float64{-0.1}, 0.05},
		{"p above one", []float64{1.5}, 0.05},
		{"+Inf p", []float64{math.Inf(1)}, 0.05},
		{"NaN q", []float64{0.1}, math.NaN()},
		{"negative q", []float64{0.1}, -0.05},
		{"q above one", []float64{0.1}, 1.5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := BenjaminiHochberg(c.ps, c.q); err == nil {
				t.Errorf("BenjaminiHochberg(%v, %v) should fail", c.ps, c.q)
			}
		})
	}
}

func TestBenjaminiHochbergEmptyFamily(t *testing.T) {
	// Empty family is a no-op, not an error.
	if r, err := BenjaminiHochberg(nil, 0.05); err != nil || len(r) != 0 {
		t.Errorf("empty BH = (%v, %v)", r, err)
	}
	// Exact boundary levels are legal.
	for _, q := range []float64{0, 1} {
		if _, err := BenjaminiHochberg([]float64{0.5}, q); err != nil {
			t.Errorf("BenjaminiHochberg(q=%v) = %v", q, err)
		}
	}
}

func TestFisherCombineRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		ps   []float64
	}{
		{"NaN p", []float64{0.5, math.NaN()}},
		{"negative p", []float64{-0.01}},
		{"p above one", []float64{1.01}},
		{"+Inf p", []float64{math.Inf(1)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, _, err := FisherCombine(c.ps); err == nil {
				t.Errorf("FisherCombine(%v) should fail", c.ps)
			}
		})
	}
}

func TestFisherCombineEdgeValues(t *testing.T) {
	// Exact zero p-values are floored rather than producing -2·ln(0) = +Inf.
	stat, p, err := FisherCombine([]float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(stat, 0) || math.IsNaN(stat) {
		t.Errorf("stat = %v, want finite", stat)
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		t.Errorf("p = %v out of [0,1]", p)
	}
	// All-ones: no evidence at all, statistic 0, p = 1.
	stat, p, err = FisherCombine([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if stat != 0 || math.Abs(p-1) > 1e-12 {
		t.Errorf("all-ones Fisher = (%v, %v), want (0, 1)", stat, p)
	}
	// Empty family combines to p = 1 by convention.
	if stat, p, err := FisherCombine(nil); err != nil || stat != 0 || p != 1 {
		t.Errorf("empty Fisher = (%v, %v, %v), want (0, 1, nil)", stat, p, err)
	}
}

func TestCombineGDegenerateStrata(t *testing.T) {
	// Zero-df strata contribute nothing; an all-degenerate family is p = 1.
	out := CombineG([]TestResult{{DF: 0, N: 5}, {DF: 0, N: 7}})
	if out.P != 1 || out.DF != 0 {
		t.Errorf("all-degenerate CombineG = %+v, want P=1 DF=0", out)
	}
	// Degenerate strata are skipped entirely — their N does not count.
	out = CombineG([]TestResult{{Statistic: 4, DF: 1, N: 50}, {DF: 0, N: 5}})
	if out.DF != 1 || out.N != 50 {
		t.Errorf("CombineG mixed = %+v, want DF=1 N=50", out)
	}
	if out.P <= 0 || out.P >= 1 {
		t.Errorf("CombineG p = %v out of (0,1)", out.P)
	}
}
