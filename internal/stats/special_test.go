package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

// P(1, x) = 1 - e^{-x} analytically.
func TestGammaIncPShapeOne(t *testing.T) {
	for _, x := range []float64{0, 0.1, 0.5, 1, 2, 5, 10, 50} {
		want := 1 - math.Exp(-x)
		if got := GammaIncP(1, x); !approxEq(got, want, 1e-12) {
			t.Errorf("P(1,%v) = %v, want %v", x, got, want)
		}
	}
}

// P(1/2, x) = erf(sqrt(x)) analytically.
func TestGammaIncPShapeHalf(t *testing.T) {
	for _, x := range []float64{0.01, 0.25, 0.5, 1, 2, 4, 9} {
		want := math.Erf(math.Sqrt(x))
		if got := GammaIncP(0.5, x); !approxEq(got, want, 1e-12) {
			t.Errorf("P(0.5,%v) = %v, want %v", x, got, want)
		}
	}
}

// P(a+1, x) = P(a, x) - x^a e^{-x} / Gamma(a+1) (standard recurrence).
func TestGammaIncRecurrence(t *testing.T) {
	for _, a := range []float64{0.5, 1, 2.5, 5, 10} {
		for _, x := range []float64{0.3, 1, 3, 8, 20} {
			lg, _ := math.Lgamma(a + 1)
			want := GammaIncP(a, x) - math.Exp(a*math.Log(x)-x-lg)
			if got := GammaIncP(a+1, x); !approxEq(got, want, 1e-10) {
				t.Errorf("recurrence fails at a=%v x=%v: got %v want %v", a, x, got, want)
			}
		}
	}
}

func TestGammaIncComplement(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := rng.Float64()*20 + 0.05
		x := rng.Float64() * 40
		p, q := GammaIncP(a, x), GammaIncQ(a, x)
		if !approxEq(p+q, 1, 1e-10) {
			t.Fatalf("P+Q = %v at a=%v x=%v", p+q, a, x)
		}
		if p < 0 || p > 1 {
			t.Fatalf("P out of range: %v", p)
		}
	}
}

func TestGammaIncInvalidInputs(t *testing.T) {
	for _, c := range [][2]float64{{-1, 1}, {0, 1}, {1, -1}, {math.NaN(), 1}, {1, math.NaN()}} {
		if !math.IsNaN(GammaIncP(c[0], c[1])) {
			t.Errorf("P(%v,%v) should be NaN", c[0], c[1])
		}
		if !math.IsNaN(GammaIncQ(c[0], c[1])) {
			t.Errorf("Q(%v,%v) should be NaN", c[0], c[1])
		}
	}
}

// I_x(1, 1) = x; I_x(a, b) = 1 - I_{1-x}(b, a).
func TestBetaIncIdentities(t *testing.T) {
	for _, x := range []float64{0, 0.1, 0.37, 0.5, 0.82, 1} {
		if got := BetaInc(1, 1, x); !approxEq(got, x, 1e-12) {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		a := rng.Float64()*10 + 0.1
		b := rng.Float64()*10 + 0.1
		x := rng.Float64()
		lhs := BetaInc(a, b, x)
		rhs := 1 - BetaInc(b, a, 1-x)
		if !approxEq(lhs, rhs, 1e-10) {
			t.Fatalf("symmetry fails at a=%v b=%v x=%v: %v vs %v", a, b, x, lhs, rhs)
		}
	}
}

// CDF of Beta(2,3) is 6x^2 - 8x^3 + 3x^4 in closed form.
func TestBetaIncClosedForm(t *testing.T) {
	for _, x := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		want := 6*x*x - 8*x*x*x + 3*x*x*x*x
		if got := BetaInc(2, 3, x); !approxEq(got, want, 1e-12) {
			t.Errorf("I_%v(2,3) = %v, want %v", x, got, want)
		}
	}
}

func TestBetaIncMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := rng.Float64()*5 + 0.2
		b := rng.Float64()*5 + 0.2
		x1 := rng.Float64()
		x2 := rng.Float64()
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		return BetaInc(a, b, x1) <= BetaInc(a, b, x2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Known chi-squared critical values: the 0.05 and 0.01 upper-tail quantiles.
func TestChiSquaredCriticalValues(t *testing.T) {
	cases := []struct {
		df, x, p float64
	}{
		{1, 3.8414588206941254, 0.05},
		{2, 5.991464547107979, 0.05},
		{5, 11.070497693516351, 0.05},
		{1, 6.6348966010212145, 0.01},
		{10, 18.307038053275146, 0.05},
	}
	for _, c := range cases {
		if got := (ChiSquared{K: c.df}).Survival(c.x); !approxEq(got, c.p, 1e-9) {
			t.Errorf("chi2(df=%v).Survival(%v) = %v, want %v", c.df, c.x, got, c.p)
		}
	}
}

func TestChiSquaredQuantileRoundTrip(t *testing.T) {
	for _, df := range []float64{1, 2, 7, 30} {
		d := ChiSquared{K: df}
		for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
			x := d.Quantile(p)
			if got := d.CDF(x); !approxEq(got, p, 1e-8) {
				t.Errorf("df=%v: CDF(Quantile(%v)) = %v", df, p, got)
			}
		}
		if d.Quantile(0) != 0 || !math.IsInf(d.Quantile(1), 1) {
			t.Errorf("df=%v: quantile endpoints wrong", df)
		}
		if d.Mean() != df || d.Variance() != 2*df {
			t.Errorf("df=%v: moments wrong", df)
		}
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ z, p float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{1, 0.8413447460685429},
		{2.5758293035489004, 0.995},
	}
	for _, c := range cases {
		if got := StdNormal.CDF(c.z); !approxEq(got, c.p, 1e-12) {
			t.Errorf("Phi(%v) = %v, want %v", c.z, got, c.p)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		p := rng.Float64()*0.9998 + 0.0001
		z := StdNormal.Quantile(p)
		if got := StdNormal.CDF(z); !approxEq(got, p, 1e-10) {
			t.Fatalf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if !math.IsInf(StdNormal.Quantile(0), -1) || !math.IsInf(StdNormal.Quantile(1), 1) {
		t.Error("quantile endpoints wrong")
	}
}

func TestNormalShiftScale(t *testing.T) {
	d := Normal{Mu: 10, Sigma: 2}
	if got := d.CDF(10); !approxEq(got, 0.5, 1e-12) {
		t.Errorf("CDF at mean = %v", got)
	}
	if got := d.Survival(10 + 2*1.959963984540054); !approxEq(got, 0.025, 1e-12) {
		t.Errorf("Survival = %v", got)
	}
	if got := d.Quantile(0.975); !approxEq(got, 10+2*1.959963984540054, 1e-9) {
		t.Errorf("Quantile = %v", got)
	}
	if got := d.PDF(10); !approxEq(got, 1/(2*math.Sqrt(2*math.Pi)), 1e-12) {
		t.Errorf("PDF at mean = %v", got)
	}
}

func TestStudentsTKnownValues(t *testing.T) {
	// Standard two-sided 5% critical values of the t distribution.
	cases := []struct{ df, t, p float64 }{
		{10, 2.2281388519649385, 0.05},
		{5, 2.5705818366147395, 0.05},
		{30, 2.0422724563012373, 0.05},
		{1, 12.706204736432095, 0.05},
	}
	for _, c := range cases {
		if got := (StudentsT{Nu: c.df}).TwoSidedP(c.t); !approxEq(got, c.p, 1e-9) {
			t.Errorf("t(df=%v).TwoSidedP(%v) = %v, want %v", c.df, c.t, got, c.p)
		}
	}
	// CDF symmetry: F(-t) = 1 - F(t).
	d := StudentsT{Nu: 7}
	for _, tv := range []float64{0.3, 1, 2.5} {
		if got := d.CDF(-tv) + d.CDF(tv); !approxEq(got, 1, 1e-12) {
			t.Errorf("t CDF symmetry broken at %v: %v", tv, got)
		}
	}
	if got := d.CDF(0); !approxEq(got, 0.5, 1e-12) {
		t.Errorf("t CDF(0) = %v", got)
	}
}
