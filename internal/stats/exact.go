package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// The paper (Section 4.3, "Computing p-values") notes that when the sample is
// too small for the closed-form chi-squared / Gaussian approximations, exact
// tests must be used. We implement Monte-Carlo permutation tests: under the
// null of (conditional) independence, the pairing of X and Y values is
// exchangeable, so permuting one column yields a draw from the null
// distribution of the statistic.

// PermutationGTest estimates the exact p-value of the G statistic by Monte
// Carlo permutation: y codes are shuffled iters times and the fraction of
// permuted G statistics >= the observed one (with the +1 smoothing of
// Davison & Hinkley) is returned.
func PermutationGTest(x, y []int32, kx, ky, iters int, rng *rand.Rand) (TestResult, error) {
	if len(x) != len(y) {
		return TestResult{}, fmt.Errorf("stats: permutation G length mismatch %d vs %d", len(x), len(y))
	}
	if iters < 1 {
		return TestResult{}, fmt.Errorf("stats: permutation iters must be positive, got %d", iters)
	}
	obs := GStatistic(TableFromCodes(x, y, kx, ky))
	perm := append([]int32(nil), y...)
	ge := 0
	for it := 0; it < iters; it++ {
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		if GStatistic(TableFromCodes(x, perm, kx, ky)) >= obs-1e-12 {
			ge++
		}
	}
	return TestResult{
		Statistic: obs,
		P:         float64(ge+1) / float64(iters+1),
		N:         len(x),
	}, nil
}

// PermutationKendallTest estimates the exact two-sided p-value of Kendall's
// tau by Monte Carlo permutation of the y column.
func PermutationKendallTest(x, y []float64, iters int, rng *rand.Rand) (TestResult, error) {
	if len(x) != len(y) {
		return TestResult{}, fmt.Errorf("stats: permutation tau length mismatch %d vs %d", len(x), len(y))
	}
	if iters < 1 {
		return TestResult{}, fmt.Errorf("stats: permutation iters must be positive, got %d", iters)
	}
	k, err := Kendall(x, y)
	if err != nil {
		return TestResult{}, err
	}
	obs := math.Abs(k.TauB)
	perm := append([]float64(nil), y...)
	ge := 0
	for it := 0; it < iters; it++ {
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		pk, err := Kendall(x, perm)
		if err != nil {
			return TestResult{}, err
		}
		if math.Abs(pk.TauB) >= obs-1e-12 {
			ge++
		}
	}
	return TestResult{
		Statistic: obs,
		P:         float64(ge+1) / float64(iters+1),
		N:         len(x),
	}, nil
}
