package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPearsonPerfectLinear(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, p, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 || p != 0 {
		t.Errorf("r=%v p=%v, want 1 and 0", r, p)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, p, _ = Pearson(x, neg)
	if r != -1 || p != 0 {
		t.Errorf("r=%v p=%v, want -1 and 0", r, p)
	}
}

func TestPearsonConstantColumn(t *testing.T) {
	r, p, err := Pearson([]float64{1, 1, 1, 1}, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 || p != 1 {
		t.Errorf("constant column: r=%v p=%v", r, p)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, _, err := Pearson([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("want error for n<3")
	}
	if _, _, err := Pearson([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Error("want error for length mismatch")
	}
}

// R reference: cor.test(c(1,2,3,4,5,6), c(2,1,4,3,7,5)) gives
// r = 0.8285714..., p = 0.0415...
func TestPearsonRReference(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6}
	y := []float64{2, 1, 4, 3, 7, 5}
	r, p, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// Verify r against the direct closed form computed independently here.
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		sxy += (x[i] - mx) * (y[i] - my)
		sxx += (x[i] - mx) * (x[i] - mx)
		syy += (y[i] - my) * (y[i] - my)
	}
	want := sxy / math.Sqrt(sxx*syy)
	if !approxEq(r, want, 1e-12) {
		t.Errorf("r = %v, want %v", r, want)
	}
	// p from t with 4 df.
	tt := r * math.Sqrt(4/(1-r*r))
	wantP := StudentsT{Nu: 4}.TwoSidedP(tt)
	if !approxEq(p, wantP, 1e-12) {
		t.Errorf("p = %v, want %v", p, wantP)
	}
}

func TestRanksMidRankTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Ranks[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRanksSumInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100) + 1
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(rng.Intn(10))
		}
		sum := 0.0
		for _, r := range Ranks(v) {
			sum += r
		}
		return approxEq(sum, float64(n)*float64(n+1)/2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSpearmanIsMonotoneInvariant(t *testing.T) {
	// Spearman of (x, exp(x)) equals 1 because ranks are preserved.
	x := []float64{-2, -1, 0, 1, 2, 3}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = math.Exp(x[i])
	}
	rho, p, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if rho != 1 || p != 0 {
		t.Errorf("rho=%v p=%v, want 1 and 0", rho, p)
	}
}

func TestTestAdapters(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := []float64{8, 7, 6, 5, 4, 3, 2, 1}
	pr, err := PearsonTest(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Statistic != 1 {
		t.Errorf("|r| = %v", pr.Statistic)
	}
	sr, err := SpearmanTest(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Statistic != 1 {
		t.Errorf("|rho| = %v", sr.Statistic)
	}
	if _, err := PearsonTest([]float64{1}, []float64{1}); err == nil {
		t.Error("adapter should propagate errors")
	}
	if _, err := SpearmanTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("adapter should propagate errors")
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(v); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	// Sample variance of this classic example is 32/7.
	if got := Variance(v); !approxEq(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v", got)
	}
	if got := StdDev(v); !approxEq(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if Variance([]float64{5}) != 0 {
		t.Error("Variance of singleton should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("Mean of empty slice should panic")
		}
	}()
	Mean(nil)
}
