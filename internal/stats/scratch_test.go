package stats

import (
	"math/rand"
	"sync"
	"testing"
)

// The G and Kendall kernels borrow scratch from package-level sync.Pools.
// These tests pin the two properties that make that safe: the pooled path
// is bit-identical to itself across reuse (nothing leaks between calls),
// and the steady state allocates nothing.

func TestGTestPooledScratchDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 2000
	x := make([]int32, n)
	y := make([]int32, n)
	for i := range x {
		x[i] = int32(rng.Intn(5))
		y[i] = int32(rng.Intn(7))
	}
	tab := TableFromCodes(x, y, 5, 7)
	first, err := GTest(tab)
	if err != nil {
		t.Fatal(err)
	}
	// Re-running must reproduce the statistic bit for bit: the pooled
	// marginal buffers are re-zeroed, and the fused accumulation order is
	// fixed row-major regardless of which pool object is handed back.
	for i := 0; i < 50; i++ {
		got, err := GTest(tab)
		if err != nil {
			t.Fatal(err)
		}
		if got != first {
			t.Fatalf("run %d: GTest diverged under scratch reuse: %+v vs %+v", i, got, first)
		}
	}
}

func TestGTestSteadyStateAllocFree(t *testing.T) {
	x := []int32{0, 1, 2, 0, 1, 2, 0, 1, 2, 1}
	y := []int32{0, 0, 1, 1, 2, 2, 0, 1, 2, 0}
	tab := TableFromCodes(x, y, 3, 3)
	GTest(tab) // warm the pool
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := GTest(tab); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("GTest allocates %.1f per call on a prebuilt table, want 0", allocs)
	}
}

func TestKendallSteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 512
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	prep, err := PrepKendall(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := KendallPrepped(x, y, prep); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := KendallPrepped(x, y, prep); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("KendallPrepped allocates %.1f per call with a prep, want 0", allocs)
	}
}

// TestPooledKernelsConcurrent hammers both pooled kernels from many
// goroutines against per-goroutine expected values; with -race this fails
// loudly if scratch ever escapes a call or is shared between two borrowers.
func TestPooledKernelsConcurrent(t *testing.T) {
	const workers = 8
	type caseData struct {
		tab  Table
		x, y []float64
		g    TestResult
		k    KendallResult
		prep *KendallPrep
	}
	cases := make([]caseData, workers)
	for w := range cases {
		rng := rand.New(rand.NewSource(int64(100 + w)))
		n := 300 + 40*w
		xc := make([]int32, n)
		yc := make([]int32, n)
		xf := make([]float64, n)
		yf := make([]float64, n)
		for i := 0; i < n; i++ {
			xc[i] = int32(rng.Intn(4))
			yc[i] = int32(rng.Intn(6))
			xf[i] = rng.NormFloat64()
			yf[i] = rng.NormFloat64()
		}
		tab := TableFromCodes(xc, yc, 4, 6)
		g, err := GTest(tab)
		if err != nil {
			t.Fatal(err)
		}
		prep, err := PrepKendall(xf, yf)
		if err != nil {
			t.Fatal(err)
		}
		k, err := KendallPrepped(xf, yf, prep)
		if err != nil {
			t.Fatal(err)
		}
		cases[w] = caseData{tab: tab, x: xf, y: yf, g: g, k: k, prep: prep}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(c caseData) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g, err := GTest(c.tab)
				if err != nil || g != c.g {
					t.Errorf("concurrent GTest diverged: %+v vs %+v (err %v)", g, c.g, err)
					return
				}
				k, err := KendallPrepped(c.x, c.y, c.prep)
				if err != nil || k != c.k {
					t.Errorf("concurrent Kendall diverged: %+v vs %+v (err %v)", k, c.k, err)
					return
				}
			}
		}(cases[w])
	}
	wg.Wait()
}
