// Package stats implements the statistical machinery SCODED relies on:
// special functions (regularized incomplete gamma and beta), reference
// distributions (chi-squared, standard normal, Student's t), mutual
// information, the G-test and Pearson chi-squared test for categorical data,
// Kendall's tau (with Knight's O(n log n) algorithm and tie corrections),
// Pearson and Spearman correlations, permutation ("exact") tests, and p-value
// combination rules for conditional (stratified) tests.
//
// Everything is implemented from scratch on top of the Go standard library;
// numeric routines follow the classical series/continued-fraction
// formulations and are validated in tests against reference values computed
// with R and scipy.
package stats

import (
	"math"
)

const (
	gammaEps     = 1e-14
	gammaMaxIter = 500
	tiny         = 1e-300
)

// GammaIncP computes the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a) for a > 0, x >= 0.
func GammaIncP(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x < 0:
		return math.NaN()
	case x <= 0:
		return 0
	case x < a+1:
		return gammaPSeries(a, x)
	default:
		return 1 - gammaQContinuedFraction(a, x)
	}
}

// GammaIncQ computes the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaIncQ(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x < 0:
		return math.NaN()
	case x <= 0:
		return 1
	case x < a+1:
		return 1 - gammaPSeries(a, x)
	default:
		return gammaQContinuedFraction(a, x)
	}
}

// gammaPSeries evaluates P(a,x) by its power series, accurate for x < a+1.
func gammaPSeries(a, x float64) float64 {
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinuedFraction evaluates Q(a,x) by the Lentz continued fraction,
// accurate for x >= a+1.
func gammaQContinuedFraction(a, x float64) float64 {
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// BetaInc computes the regularized incomplete beta function I_x(a, b) for
// a, b > 0 and x in [0, 1], using the continued-fraction expansion.
func BetaInc(a, b, x float64) float64 {
	switch {
	case a <= 0 || b <= 0 || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lgab, _ := math.Lgamma(a + b)
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF is the continued fraction for the incomplete beta function
// (modified Lentz's method).
func betaCF(a, b, x float64) float64 {
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= gammaMaxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return h
}
