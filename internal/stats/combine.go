package stats

import (
	"fmt"
	"math"
	"sort"
)

// Combination rules for stratified (conditional) tests. A conditional SC
// X ⊥ Y | Z is tested by splitting the data on the value of Z and combining
// the per-stratum evidence (Section 4.3, "conditional tests").

// CombineG sums per-stratum G statistics and degrees of freedom: the sum of
// independent chi-squared variates is chi-squared with summed df, so the
// total G is referred to a chi-squared with the total df. Strata with zero
// df (degenerate tables) contribute nothing.
func CombineG(strata []TestResult) TestResult {
	var g float64
	var df, n int
	approx := false
	for _, s := range strata {
		if s.DF == 0 {
			continue
		}
		g += s.Statistic
		df += s.DF
		n += s.N
		approx = approx || s.Approximate
	}
	if df == 0 {
		return TestResult{P: 1, N: n}
	}
	return TestResult{
		Statistic:   g,
		DF:          df,
		P:           ChiSquared{K: float64(df)}.Survival(g),
		N:           n,
		Approximate: approx,
	}
}

// StoufferZ combines per-stratum z-scores with weights proportional to
// sqrt(stratum size): Z = Σ w_i z_i / sqrt(Σ w_i²). Used for combining
// per-stratum Kendall tau tests. Returns the combined z and its two-sided
// p-value. Non-finite z-scores and negative stratum sizes are rejected: a
// single NaN or ±Inf stratum would silently poison the combined statistic.
func StoufferZ(zs []float64, ns []int) (z, p float64, err error) {
	if len(zs) != len(ns) {
		return 0, 0, fmt.Errorf("stats: StoufferZ length mismatch %d vs %d", len(zs), len(ns))
	}
	var num, den float64
	for i, zi := range zs {
		if math.IsNaN(zi) || math.IsInf(zi, 0) {
			return 0, 0, fmt.Errorf("stats: StoufferZ z[%d]=%v is not finite", i, zi)
		}
		if ns[i] < 0 {
			return 0, 0, fmt.Errorf("stats: StoufferZ n[%d]=%d is negative", i, ns[i])
		}
		w := math.Sqrt(float64(ns[i]))
		num += w * zi
		den += w * w
	}
	if den <= 0 {
		return 0, 1, nil
	}
	z = num / math.Sqrt(den)
	return z, StdNormal.TwoSidedP(z), nil
}

// BenjaminiHochberg applies the Benjamini-Hochberg step-up procedure to a
// family of p-values at false discovery rate q, returning a parallel slice
// marking the rejected hypotheses. When a user enforces many SCs at once
// (e.g. one per year, as in the paper's Nebraska case study), controlling
// the FDR of the family keeps the expected fraction of falsely-flagged
// constraints below q.
func BenjaminiHochberg(ps []float64, q float64) ([]bool, error) {
	// Negated so a NaN q is rejected rather than slipping past both
	// comparisons.
	if !(q >= 0 && q <= 1) {
		return nil, fmt.Errorf("stats: FDR level %v out of [0,1]", q)
	}
	m := len(ps)
	reject := make([]bool, m)
	if m == 0 {
		return reject, nil
	}
	idx := make([]int, m)
	for i := range idx {
		if ps[i] < 0 || ps[i] > 1 || math.IsNaN(ps[i]) {
			return nil, fmt.Errorf("stats: p[%d]=%v out of [0,1]", i, ps[i])
		}
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return ps[idx[a]] < ps[idx[b]] })
	cut := -1
	for rank := m; rank >= 1; rank-- {
		if ps[idx[rank-1]] <= q*float64(rank)/float64(m) {
			cut = rank
			break
		}
	}
	for rank := 1; rank <= cut; rank++ {
		reject[idx[rank-1]] = true
	}
	return reject, nil
}

// FisherCombine combines independent p-values with Fisher's method:
// -2 Σ ln p_i ~ chi-squared with 2m degrees of freedom.
func FisherCombine(ps []float64) (stat, p float64, err error) {
	if len(ps) == 0 {
		return 0, 1, nil
	}
	for i, pi := range ps {
		if pi < 0 || pi > 1 || math.IsNaN(pi) {
			return 0, 0, fmt.Errorf("stats: FisherCombine p[%d]=%v out of [0,1]", i, pi)
		}
	}
	var s float64
	for _, pi := range ps {
		if pi < 1e-300 {
			pi = 1e-300
		}
		s += -2 * math.Log(pi)
	}
	return s, ChiSquared{K: float64(2 * len(ps))}.Survival(s), nil
}
