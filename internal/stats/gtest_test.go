package stats

import (
	"math"
	"math/rand"
	"testing"
)

// gSlow is an independent direct-formula implementation of the G statistic
// used as an oracle: G = 2 sum O ln(O/E).
func gSlow(t Table) float64 {
	n := t.N()
	rm, cm := t.Marginals()
	g := 0.0
	for i, row := range t {
		for j, o := range row {
			if o == 0 {
				continue
			}
			e := rm[i] * cm[j] / n
			g += o * math.Log(o/e)
		}
	}
	return 2 * g
}

func TestGStatisticMatchesDirectFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		r := rng.Intn(4) + 2
		c := rng.Intn(4) + 2
		tab := make(Table, r)
		for i := range tab {
			tab[i] = make([]float64, c)
			for j := range tab[i] {
				tab[i][j] = float64(rng.Intn(50))
			}
		}
		if tab.N() == 0 {
			continue
		}
		if got, want := GStatistic(tab), gSlow(tab); !approxEq(got, want, 1e-9*(1+want)) {
			t.Fatalf("G mismatch: %v vs %v on %v", got, want, tab)
		}
	}
}

func TestMutualInformationProperties(t *testing.T) {
	// Exact independence: counts proportional to the product of marginals.
	indep := Table{{10, 20, 30}, {20, 40, 60}}
	if mi := MutualInformation(indep); !approxEq(mi, 0, 1e-12) {
		t.Errorf("MI of product table = %v, want 0", mi)
	}
	// Perfect dependence on a k x k diagonal: MI = log2(k) bits.
	diag := Table{{7, 0, 0}, {0, 7, 0}, {0, 0, 7}}
	if mi := MutualInformation(diag); !approxEq(mi, math.Log2(3), 1e-12) {
		t.Errorf("MI of diagonal = %v, want log2(3)", mi)
	}
	// Nats and bits versions agree up to ln 2.
	tab := Table{{5, 9}, {14, 2}}
	if got, want := MutualInformationNats(tab), MutualInformation(tab)*math.Ln2; !approxEq(got, want, 1e-12) {
		t.Errorf("nats/bits mismatch: %v vs %v", got, want)
	}
	// G = 2 N I_nats (the paper's rescaling).
	if got, want := GStatistic(tab), 2*tab.N()*MutualInformationNats(tab); !approxEq(got, want, 1e-12) {
		t.Errorf("G != 2*N*MI: %v vs %v", got, want)
	}
}

func TestGTestIndependentData(t *testing.T) {
	// Large sample from an exactly independent distribution: p should be 1
	// (G == 0 exactly for a product table).
	res, err := GTest(Table{{100, 200}, {300, 600}})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(res.Statistic, 0, 1e-9) {
		t.Errorf("G = %v, want 0", res.Statistic)
	}
	if !approxEq(res.P, 1, 1e-9) {
		t.Errorf("p = %v, want 1", res.P)
	}
	if res.DF != 1 {
		t.Errorf("df = %d, want 1", res.DF)
	}
	if res.Approximate {
		t.Error("expected counts are large; should not flag Approximate")
	}
}

func TestGTestStrongDependence(t *testing.T) {
	res, err := GTest(Table{{50, 0}, {0, 50}})
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-10 {
		t.Errorf("p = %v for a perfectly dependent table", res.P)
	}
	// G for a 2x2 diagonal with 50/50 split is 2*100*ln2.
	if want := 200 * math.Ln2; !approxEq(res.Statistic, want, 1e-9) {
		t.Errorf("G = %v, want %v", res.Statistic, want)
	}
}

func TestGTestDegenerateTable(t *testing.T) {
	// Constant column: no evidence against independence.
	res, err := GTest(Table{{10}, {20}})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 || res.DF != 0 {
		t.Errorf("degenerate table: p=%v df=%d", res.P, res.DF)
	}
	res, err = GTest(Table{{10, 0}, {20, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 || res.DF != 0 {
		t.Errorf("zero-marginal column: p=%v df=%d", res.P, res.DF)
	}
}

func TestGTestSmallSampleFlagged(t *testing.T) {
	res, err := GTest(Table{{2, 3}, {3, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Approximate {
		t.Error("small expected counts should flag Approximate")
	}
}

func TestGTestErrors(t *testing.T) {
	if _, err := GTest(Table{}); err == nil {
		t.Error("want error for empty table")
	}
	if _, err := GTest(Table{{1, 2}, {3}}); err == nil {
		t.Error("want error for ragged table")
	}
	if _, err := GTest(Table{{1, -2}, {3, 4}}); err == nil {
		t.Error("want error for negative count")
	}
}

func TestChiSquareTestKnownTable(t *testing.T) {
	// 2x2 table with equal marginals: X2 = N (ad - bc)^2 / (r1 r2 c1 c2).
	tab := Table{{30, 20}, {20, 30}}
	res, err := ChiSquareTest(tab)
	if err != nil {
		t.Fatal(err)
	}
	want := 100 * math.Pow(30*30-20*20, 2) / (50 * 50 * 50 * 50)
	if !approxEq(res.Statistic, want, 1e-9) {
		t.Errorf("X2 = %v, want %v", res.Statistic, want)
	}
	if res.DF != 1 {
		t.Errorf("df = %d", res.DF)
	}
	// X2 = 4 at df 1 -> p = 0.0455...
	if !approxEq(res.P, 0.04550026389635842, 1e-9) {
		t.Errorf("p = %v", res.P)
	}
}

func TestGAndChiSquareAgreeAsymptotically(t *testing.T) {
	// For large samples with mild dependence, G and X2 should be close.
	tab := Table{{520, 480}, {480, 520}}
	g, _ := GTest(tab)
	x, _ := ChiSquareTest(tab)
	if math.Abs(g.Statistic-x.Statistic) > 0.05*x.Statistic {
		t.Errorf("G=%v and X2=%v diverge too much", g.Statistic, x.Statistic)
	}
}

func TestTableFromCodes(t *testing.T) {
	x := []int32{0, 0, 1, 1, 1}
	y := []int32{0, 1, 0, 1, 1}
	tab := TableFromCodes(x, y, 2, 2)
	want := Table{{1, 1}, {1, 2}}
	for i := range want {
		for j := range want[i] {
			if tab[i][j] != want[i][j] {
				t.Errorf("cell (%d,%d) = %v, want %v", i, j, tab[i][j], want[i][j])
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	TableFromCodes([]int32{0}, []int32{0, 1}, 1, 2)
}

func TestGTestNullDistributionCalibration(t *testing.T) {
	// Under true independence, the p-value should be roughly uniform: the
	// rejection rate at alpha=0.05 over many simulated tables should be near
	// 0.05. This validates the entire G + chi-squared pipeline end to end.
	rng := rand.New(rand.NewSource(42))
	trials, rejected := 400, 0
	for i := 0; i < trials; i++ {
		x := make([]int32, 500)
		y := make([]int32, 500)
		for j := range x {
			x[j] = int32(rng.Intn(3))
			y[j] = int32(rng.Intn(4))
		}
		res, err := GTest(TableFromCodes(x, y, 3, 4))
		if err != nil {
			t.Fatal(err)
		}
		if res.P < 0.05 {
			rejected++
		}
	}
	rate := float64(rejected) / float64(trials)
	if rate > 0.09 || rate < 0.01 {
		t.Errorf("null rejection rate = %v, want ~0.05", rate)
	}
}

func TestGTestPowerUnderDependence(t *testing.T) {
	// With a genuinely dependent generator the test should reject nearly
	// always at n=500.
	rng := rand.New(rand.NewSource(43))
	trials, rejected := 100, 0
	for i := 0; i < trials; i++ {
		x := make([]int32, 500)
		y := make([]int32, 500)
		for j := range x {
			x[j] = int32(rng.Intn(3))
			if rng.Float64() < 0.5 {
				y[j] = x[j] // dependence half the time
			} else {
				y[j] = int32(rng.Intn(3))
			}
		}
		res, _ := GTest(TableFromCodes(x, y, 3, 3))
		if res.P < 0.05 {
			rejected++
		}
	}
	if rejected < trials*9/10 {
		t.Errorf("power too low: rejected %d/%d", rejected, trials)
	}
}
