package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestKendallPreppedIdentity asserts the prep-split Kendall path is
// bit-identical to the direct one, across tie-heavy and tie-free data.
// This is the stats-layer half of the kernel cache's correctness contract:
// a memoized KendallPrep must change nothing about the numbers.
func TestKendallPreppedIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(120)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			if trial%2 == 0 { // heavy ties
				x[i] = float64(rng.Intn(5))
				y[i] = float64(rng.Intn(4)) + x[i]*float64(rng.Intn(2))
			} else {
				x[i] = rng.NormFloat64()
				y[i] = 0.5*x[i] + rng.NormFloat64()
			}
		}
		direct, errD := Kendall(x, y)
		prep, errP := PrepKendall(x, y)
		if (errD == nil) != (errP == nil) {
			t.Fatalf("trial %d: error mismatch %v vs %v", trial, errD, errP)
		}
		if errD != nil {
			continue
		}
		prepped, err := KendallPrepped(x, y, prep)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, c := range []struct {
			name string
			d, p float64
		}{
			{"TauB", direct.TauB, prepped.TauB},
			{"TauA", direct.TauA, prepped.TauA},
			{"Z", direct.Z, prepped.Z},
			{"P", direct.P, prepped.P},
		} {
			if math.Float64bits(c.d) != math.Float64bits(c.p) {
				t.Errorf("trial %d: %s %v (direct) vs %v (prepped)", trial, c.name, c.d, c.p)
			}
		}

		// The test wrappers must agree too (Approximate flag included).
		dt, errD := KendallTest(x, y)
		pt, errP := KendallTestPrepped(x, y, prep)
		if (errD == nil) != (errP == nil) {
			t.Fatalf("trial %d: test error mismatch %v vs %v", trial, errD, errP)
		}
		//scoded:lint-ignore floatcmp bit-identity is the property under test
		if errD == nil && dt != pt {
			t.Errorf("trial %d: KendallTest %+v vs prepped %+v", trial, dt, pt)
		}
	}

	// A nil prep falls back to the direct path.
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 1, 4, 3}
	direct, _ := Kendall(x, y)
	viaNil, err := KendallPrepped(x, y, nil)
	if err != nil || math.Float64bits(direct.TauB) != math.Float64bits(viaNil.TauB) {
		t.Errorf("nil prep: %v / %+v vs %+v", err, viaNil, direct)
	}

	// A prep for the wrong length is rejected.
	prep, _ := PrepKendall(x, y)
	if _, err := KendallPrepped(x[:3], y[:3], prep); err == nil {
		t.Error("expected a length-mismatch error")
	}
}
