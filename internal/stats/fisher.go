package stats

import (
	"fmt"
	"math"
)

// Hypergeometric is the distribution of the number of successes in Draws
// draws without replacement from a population of size N containing K
// successes.
type Hypergeometric struct {
	N, K, Draws int
}

// LogPMF returns ln P(X = k).
func (d Hypergeometric) LogPMF(k int) float64 {
	if k < 0 || k > d.Draws || k > d.K || d.Draws-k > d.N-d.K {
		return math.Inf(-1)
	}
	return logChoose(d.K, k) + logChoose(d.N-d.K, d.Draws-k) - logChoose(d.N, d.Draws)
}

// PMF returns P(X = k).
func (d Hypergeometric) PMF(k int) float64 { return math.Exp(d.LogPMF(k)) }

// logChoose returns ln C(n, k) via lgamma.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}

// FisherExact performs Fisher's exact test of independence on a 2x2 table
// [[a, b], [c, d]], returning the two-sided p-value: the total probability,
// under the hypergeometric null with the observed marginals, of all tables
// at most as probable as the observed one. This is the exact small-sample
// companion to the G-test that the paper's Section 4.3 calls for when
// expected counts fall below 5.
func FisherExact(a, b, c, d int) (TestResult, error) {
	if a < 0 || b < 0 || c < 0 || d < 0 {
		return TestResult{}, fmt.Errorf("stats: negative count in Fisher table [[%d,%d],[%d,%d]]", a, b, c, d)
	}
	n := a + b + c + d
	if n == 0 {
		return TestResult{}, fmt.Errorf("stats: empty Fisher table")
	}
	row1 := a + b
	col1 := a + c
	dist := Hypergeometric{N: n, K: col1, Draws: row1}
	obsLog := dist.LogPMF(a)

	lo := max(0, row1-(n-col1))
	hi := min(row1, col1)
	p := 0.0
	const slack = 1e-7 // tolerate rounding when comparing table probabilities
	for k := lo; k <= hi; k++ {
		if lp := dist.LogPMF(k); lp <= obsLog+slack {
			p += math.Exp(lp)
		}
	}
	if p > 1 {
		p = 1
	}
	// The conventional effect-size statistic for a 2x2 exact test is the
	// sample odds ratio.
	or := math.Inf(1)
	if b > 0 && c > 0 {
		or = float64(a) * float64(d) / (float64(b) * float64(c))
	}
	return TestResult{Statistic: or, P: p, N: n}, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// CramersV returns the bias-uncorrected Cramér's V of a contingency table:
// sqrt(X² / (N·(min(r,c)−1))), in [0, 1].
func CramersV(t Table) (float64, error) {
	res, err := ChiSquareTest(t)
	if err != nil {
		return 0, err
	}
	rm, cm := t.Marginals()
	nr, nc := 0, 0
	for _, v := range rm {
		if v > 0 {
			nr++
		}
	}
	for _, v := range cm {
		if v > 0 {
			nc++
		}
	}
	minDim := nr
	if nc < minDim {
		minDim = nc
	}
	if minDim < 2 || res.N == 0 {
		return 0, nil
	}
	v := math.Sqrt(res.Statistic / (float64(res.N) * float64(minDim-1)))
	if v > 1 {
		v = 1
	}
	return v, nil
}

// TheilsU returns the uncertainty coefficient U(Y|X) of a contingency table
// with X as rows and Y as columns: the fraction of Y's entropy explained by
// X, (H(Y) − H(Y|X)) / H(Y) = I(X;Y)/H(Y), in [0, 1]. Unlike Cramér's V it
// is asymmetric, which makes it useful for judging approximate functional
// dependencies X → Y.
func TheilsU(t Table) (float64, error) {
	if err := t.validate(); err != nil {
		return 0, err
	}
	n := t.N()
	if n <= 0 {
		return 0, fmt.Errorf("stats: empty table")
	}
	_, cm := t.Marginals()
	hy := 0.0
	for _, c := range cm {
		if c > 0 {
			p := c / n
			hy -= p * math.Log(p)
		}
	}
	if hy <= 0 {
		// Zero entropy: Y is constant, vacuously fully determined.
		return 1, nil
	}
	u := MutualInformationNats(t) / hy
	if u > 1 {
		u = 1
	}
	if u < 0 {
		u = 0
	}
	return u, nil
}

// ChiSquareGoodnessOfFit tests observed category counts against expected
// probabilities (which must sum to ~1): X² = Σ (O−E)²/E with k−1 degrees
// of freedom.
func ChiSquareGoodnessOfFit(observed []float64, expectedProb []float64) (TestResult, error) {
	if len(observed) != len(expectedProb) {
		return TestResult{}, fmt.Errorf("stats: goodness-of-fit length mismatch %d vs %d", len(observed), len(expectedProb))
	}
	if len(observed) < 2 {
		return TestResult{}, fmt.Errorf("stats: goodness-of-fit needs at least 2 categories")
	}
	var n, psum float64
	for i := range observed {
		if observed[i] < 0 || expectedProb[i] < 0 {
			return TestResult{}, fmt.Errorf("stats: negative entry at %d", i)
		}
		n += observed[i]
		psum += expectedProb[i]
	}
	if math.Abs(psum-1) > 1e-9 {
		return TestResult{}, fmt.Errorf("stats: expected probabilities sum to %v, want 1", psum)
	}
	if n <= 0 {
		return TestResult{}, fmt.Errorf("stats: no observations")
	}
	x2 := 0.0
	minE := math.Inf(1)
	for i := range observed {
		e := n * expectedProb[i]
		if e <= 0 {
			if observed[i] > 0 {
				return TestResult{}, fmt.Errorf("stats: observed count in zero-probability category %d", i)
			}
			continue
		}
		d := observed[i] - e
		x2 += d * d / e
		if e < minE {
			minE = e
		}
	}
	df := len(observed) - 1
	return TestResult{
		Statistic:   x2,
		DF:          df,
		P:           ChiSquared{K: float64(df)}.Survival(x2),
		N:           int(n),
		Approximate: minE < 5,
	}, nil
}
