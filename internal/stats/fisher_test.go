package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestHypergeometricPMFSumsToOne(t *testing.T) {
	d := Hypergeometric{N: 20, K: 7, Draws: 9}
	sum := 0.0
	for k := 0; k <= d.Draws; k++ {
		sum += d.PMF(k)
	}
	if !approxEq(sum, 1, 1e-12) {
		t.Errorf("PMF sums to %v", sum)
	}
	if d.PMF(-1) != 0 || d.PMF(10) != 0 || d.PMF(8) != 0 {
		// k=8 impossible: only 7 successes exist.
		t.Error("impossible outcomes must have probability 0")
	}
}

func TestHypergeometricKnownValue(t *testing.T) {
	// P(X=2) for N=10, K=4, n=5: C(4,2)C(6,3)/C(10,5) = 6*20/252.
	d := Hypergeometric{N: 10, K: 4, Draws: 5}
	want := 6.0 * 20.0 / 252.0
	if got := d.PMF(2); !approxEq(got, want, 1e-12) {
		t.Errorf("PMF(2) = %v, want %v", got, want)
	}
}

// R reference: fisher.test(matrix(c(3,1,1,3),2)) two-sided p = 0.4857143.
func TestFisherExactRReference(t *testing.T) {
	res, err := FisherExact(3, 1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(res.P, 0.4857142857142857, 1e-9) {
		t.Errorf("p = %v, want 0.4857143", res.P)
	}
	if !approxEq(res.Statistic, 9, 1e-12) { // odds ratio 3*3/(1*1)
		t.Errorf("odds ratio = %v", res.Statistic)
	}
}

func TestFisherExactStrongAssociation(t *testing.T) {
	// Table [[1,9],[11,3]]: marginals row1=10, col1=12, N=24. The tables
	// at most as probable as the observed one are k ∈ {0, 1, 9, 10} (the
	// distribution is symmetric here), so the exact two-sided p is
	// pmf(0)+pmf(1)+pmf(9)+pmf(10).
	res, err := FisherExact(1, 9, 11, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := Hypergeometric{N: 24, K: 12, Draws: 10}
	want := d.PMF(0) + d.PMF(1) + d.PMF(9) + d.PMF(10)
	if !approxEq(res.P, want, 1e-12) {
		t.Errorf("p = %v, want %v", res.P, want)
	}
	if res.P > 0.01 {
		t.Errorf("strong association should give small p, got %v", res.P)
	}
}

func TestFisherExactIndependentTable(t *testing.T) {
	// Balanced table: the observed table is the most probable one, so the
	// two-sided p is 1.
	res, err := FisherExact(5, 5, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(res.P, 1, 1e-9) {
		t.Errorf("p = %v, want 1", res.P)
	}
}

func TestFisherExactErrors(t *testing.T) {
	if _, err := FisherExact(-1, 0, 0, 0); err == nil {
		t.Error("want error for negative count")
	}
	if _, err := FisherExact(0, 0, 0, 0); err == nil {
		t.Error("want error for empty table")
	}
}

func TestFisherExactAgreesWithGAsymptotically(t *testing.T) {
	// On a large table with genuine association both tests should reject.
	fe, err := FisherExact(60, 40, 30, 70)
	if err != nil {
		t.Fatal(err)
	}
	g, err := GTest(Table{{60, 40}, {30, 70}})
	if err != nil {
		t.Fatal(err)
	}
	if fe.P > 0.01 || g.P > 0.01 {
		t.Errorf("both tests should strongly reject: fisher p=%v, G p=%v", fe.P, g.P)
	}
}

func TestCramersV(t *testing.T) {
	// Perfect association on a 2x2 diagonal: V = 1.
	v, err := CramersV(Table{{10, 0}, {0, 10}})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(v, 1, 1e-12) {
		t.Errorf("V = %v, want 1", v)
	}
	// Exact independence: V = 0.
	v, _ = CramersV(Table{{10, 20}, {20, 40}})
	if !approxEq(v, 0, 1e-9) {
		t.Errorf("V = %v, want 0", v)
	}
	// Degenerate (constant column): V = 0.
	v, _ = CramersV(Table{{10}, {20}})
	if v != 0 {
		t.Errorf("degenerate V = %v", v)
	}
	if _, err := CramersV(Table{}); err == nil {
		t.Error("want error for empty table")
	}
}

func TestTheilsUFunctionalDependence(t *testing.T) {
	// Y fully determined by X (diagonal): U(Y|X) = 1.
	u, err := TheilsU(Table{{10, 0}, {0, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(u, 1, 1e-12) {
		t.Errorf("U = %v, want 1", u)
	}
	// Independence: U = 0.
	u, _ = TheilsU(Table{{10, 20}, {20, 40}})
	if !approxEq(u, 0, 1e-9) {
		t.Errorf("U = %v, want 0", u)
	}
	// Asymmetry: X determined by Y but not conversely.
	// Table rows=X (3 levels), cols=Y (2 levels): Y -> X is not
	// functional; X -> Y is.
	tab := Table{{5, 0}, {3, 0}, {0, 4}}
	uyGivenX, _ := TheilsU(tab)
	// Transpose for U(X|Y).
	tr := Table{{5, 3, 0}, {0, 0, 4}}
	uxGivenY, _ := TheilsU(tr)
	if !approxEq(uyGivenX, 1, 1e-12) {
		t.Errorf("U(Y|X) = %v, want 1 (X determines Y)", uyGivenX)
	}
	if uxGivenY >= 1-1e-9 {
		t.Errorf("U(X|Y) = %v, want < 1 (Y does not determine X)", uxGivenY)
	}
	// Constant Y is vacuously determined.
	u, _ = TheilsU(Table{{5, 0}, {7, 0}})
	if u != 1 {
		t.Errorf("constant-Y U = %v, want 1", u)
	}
}

func TestChiSquareGoodnessOfFit(t *testing.T) {
	// A fair die observed 600 times with mild deviations.
	obs := []float64{95, 105, 99, 101, 98, 102}
	probs := []float64{1.0 / 6, 1.0 / 6, 1.0 / 6, 1.0 / 6, 1.0 / 6, 1.0 / 6}
	res, err := ChiSquareGoodnessOfFit(obs, probs)
	if err != nil {
		t.Fatal(err)
	}
	if res.DF != 5 {
		t.Errorf("df = %d", res.DF)
	}
	if res.P < 0.9 {
		t.Errorf("near-perfect fit should give high p, got %v", res.P)
	}
	// A loaded die should be rejected.
	obs = []float64{200, 80, 80, 80, 80, 80}
	res, _ = ChiSquareGoodnessOfFit(obs, probs)
	if res.P > 1e-6 {
		t.Errorf("loaded die p = %v", res.P)
	}
}

func TestChiSquareGoodnessOfFitErrors(t *testing.T) {
	if _, err := ChiSquareGoodnessOfFit([]float64{1}, []float64{1}); err == nil {
		t.Error("want error for single category")
	}
	if _, err := ChiSquareGoodnessOfFit([]float64{1, 2}, []float64{0.5}); err == nil {
		t.Error("want error for length mismatch")
	}
	if _, err := ChiSquareGoodnessOfFit([]float64{1, 2}, []float64{0.2, 0.2}); err == nil {
		t.Error("want error for probabilities not summing to 1")
	}
	if _, err := ChiSquareGoodnessOfFit([]float64{1, -2}, []float64{0.5, 0.5}); err == nil {
		t.Error("want error for negative count")
	}
	if _, err := ChiSquareGoodnessOfFit([]float64{0, 0}, []float64{0.5, 0.5}); err == nil {
		t.Error("want error for no observations")
	}
	if _, err := ChiSquareGoodnessOfFit([]float64{1, 2}, []float64{0, 1}); err == nil {
		t.Error("want error for mass in zero-probability category")
	}
}

func TestFisherExactCalibration(t *testing.T) {
	// Under independence with random marginals, the rejection rate at 0.05
	// must not exceed 0.05 by much (exact tests are conservative).
	rng := rand.New(rand.NewSource(9))
	trials, rejected := 500, 0
	for i := 0; i < trials; i++ {
		var a, b, c, d int
		for j := 0; j < 40; j++ {
			r := rng.Intn(2)
			col := rng.Intn(2)
			switch {
			case r == 0 && col == 0:
				a++
			case r == 0 && col == 1:
				b++
			case r == 1 && col == 0:
				c++
			default:
				d++
			}
		}
		res, err := FisherExact(a, b, c, d)
		if err != nil {
			t.Fatal(err)
		}
		if res.P < 0.05 {
			rejected++
		}
	}
	rate := float64(rejected) / float64(trials)
	if rate > 0.07 {
		t.Errorf("exact test rejection rate %v exceeds nominal 0.05", rate)
	}
	_ = math.Pi
}
