package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKendallPerfectAgreement(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{10, 20, 30, 40, 50}
	k, err := Kendall(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if k.TauA != 1 || k.TauB != 1 {
		t.Errorf("tau = %v/%v, want 1", k.TauA, k.TauB)
	}
	if k.Concordant != 10 || k.Discordant != 0 {
		t.Errorf("nc=%d nd=%d", k.Concordant, k.Discordant)
	}
}

func TestKendallPerfectDisagreement(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{4, 3, 2, 1}
	k, err := Kendall(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if k.TauA != -1 {
		t.Errorf("tauA = %v, want -1", k.TauA)
	}
	if k.Discordant != 6 {
		t.Errorf("nd = %d, want 6", k.Discordant)
	}
}

// scipy.stats.kendalltau reference: x=[12,2,1,12,2], y=[1,4,7,1,0]
// gives tau-b = -0.47140452079103173, p = 0.2827454599327748.
func TestKendallScipyReference(t *testing.T) {
	x := []float64{12, 2, 1, 12, 2}
	y := []float64{1, 4, 7, 1, 0}
	k, err := Kendall(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(k.TauB, -0.47140452079103173, 1e-12) {
		t.Errorf("tauB = %v", k.TauB)
	}
	if !approxEq(k.P, 0.2827454599327748, 1e-9) {
		t.Errorf("p = %v", k.P)
	}
	if !k.Approximate {
		t.Error("n=5 should be flagged Approximate")
	}
}

func TestKendallConstantColumn(t *testing.T) {
	x := []float64{1, 1, 1, 1}
	y := []float64{1, 2, 3, 4}
	k, err := Kendall(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if k.TauB != 0 || k.P != 1 {
		t.Errorf("constant column: tauB=%v p=%v, want 0 and 1", k.TauB, k.P)
	}
}

func TestKendallErrors(t *testing.T) {
	if _, err := Kendall([]float64{1}, []float64{1}); err == nil {
		t.Error("want error for n<2")
	}
	if _, err := Kendall([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("want error for length mismatch")
	}
	if _, err := Kendall([]float64{1, math.NaN()}, []float64{1, 2}); err == nil {
		t.Error("want error for NaN input")
	}
}

// Knight's algorithm must agree exactly with the O(n^2) definition,
// including all tie counts, on random data with many ties.
func TestKendallMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(120) + 2
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			// Coarse grid forces heavy ties.
			x[i] = float64(rng.Intn(8))
			y[i] = float64(rng.Intn(8))
		}
		fast, err := Kendall(x, y)
		if err != nil {
			return false
		}
		slow := KendallNaive(x, y)
		return fast.Concordant == slow.Concordant &&
			fast.Discordant == slow.Discordant &&
			fast.TiesX == slow.TiesX &&
			fast.TiesY == slow.TiesY &&
			fast.TiesXY == slow.TiesXY &&
			approxEq(fast.TauB, slow.TauB, 1e-12) &&
			approxEq(fast.P, slow.P, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestKendallMatchesNaiveContinuous(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(150) + 2
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = 0.5*x[i] + rng.NormFloat64()
		}
		fast, err := Kendall(x, y)
		if err != nil {
			return false
		}
		slow := KendallNaive(x, y)
		return fast.Concordant == slow.Concordant && fast.Discordant == slow.Discordant &&
			approxEq(fast.TauA, slow.TauA, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestKendallNullCalibration(t *testing.T) {
	// Under independence with n=200 the Gaussian approximation should give a
	// ~5% rejection rate at alpha=0.05.
	rng := rand.New(rand.NewSource(7))
	trials, rejected := 400, 0
	for i := 0; i < trials; i++ {
		n := 200
		x := make([]float64, n)
		y := make([]float64, n)
		for j := range x {
			x[j] = rng.NormFloat64()
			y[j] = rng.NormFloat64()
		}
		k, err := Kendall(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if k.P < 0.05 {
			rejected++
		}
	}
	rate := float64(rejected) / float64(trials)
	if rate > 0.09 || rate < 0.01 {
		t.Errorf("null rejection rate = %v, want ~0.05", rate)
	}
}

func TestKendallDetectsMonotoneDependence(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 300
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		// Non-linear but monotone: tau should catch what Pearson's
		// linearity assumption can distort.
		y[i] = math.Exp(x[i]) + 0.1*rng.NormFloat64()
	}
	k, err := Kendall(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if k.P > 1e-10 {
		t.Errorf("p = %v for strong monotone dependence", k.P)
	}
	if k.TauB < 0.8 {
		t.Errorf("tauB = %v, want near 1", k.TauB)
	}
	if k.Approximate {
		t.Error("n=300 should not be flagged Approximate")
	}
}

func TestKendallTestAdapter(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6}
	y := []float64{6, 5, 4, 3, 2, 1}
	res, err := KendallTest(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic != 1 {
		t.Errorf("|tauB| = %v, want 1", res.Statistic)
	}
	if res.N != 6 {
		t.Errorf("N = %d", res.N)
	}
	if _, err := KendallTest([]float64{1}, []float64{2, 3}); err == nil {
		t.Error("adapter should propagate errors")
	}
}

func TestCountInversions(t *testing.T) {
	cases := []struct {
		v    []float64
		want int64
	}{
		{[]float64{1, 2, 3}, 0},
		{[]float64{3, 2, 1}, 3},
		{[]float64{2, 1, 3}, 1},
		{[]float64{1, 1, 1}, 0}, // ties are not inversions
		{[]float64{2, 1, 1}, 2},
		{[]float64{}, 0},
		{[]float64{5}, 0},
	}
	for _, c := range cases {
		v := append([]float64(nil), c.v...)
		buf := make([]float64, len(v))
		if got := countInversions(v, buf); got != c.want {
			t.Errorf("inversions(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestTieGroupSizes(t *testing.T) {
	got := tieGroupSizes([]float64{3, 1, 3, 3, 2, 1})
	// sorted: 1 1 2 3 3 3 -> groups of size 2 and 3
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("tie groups = %v", got)
	}
	if g := tieGroupSizes([]float64{1, 2, 3}); len(g) != 0 {
		t.Errorf("no-tie input gave %v", g)
	}
}
