// Package errgen injects the paper's two simulated error types (Section
// 6.1) into relations, with ground-truth tracking: sorting errors (α% of a
// column's values re-assigned in ascending order, spuriously correlating
// the column with the selection order) and imputation errors (α% of a
// column's values replaced by the column mean / mode). Rows may be selected
// uniformly at random — which weakens dependencies, the setting the paper
// uses against dependence SCs — or based on another column B, which plants
// a dependence, the setting used against independence SCs. A combination
// error applies sorting to half of the selected rows and imputation to the
// other half.
package errgen

import (
	"fmt"
	"math/rand"
	"sort"

	"scoded/internal/relation"
	"scoded/internal/stats"
)

// Kind is the error type.
type Kind int

const (
	// Sorting re-assigns the selected cells' values in ascending order
	// along the selection order.
	Sorting Kind = iota
	// Imputation replaces the selected cells with the column mean
	// (numeric) or mode (categorical).
	Imputation
	// Combination applies Sorting to half the selection and Imputation to
	// the rest.
	Combination
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Sorting:
		return "sorting"
	case Imputation:
		return "imputation"
	case Combination:
		return "combination"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec describes one injection.
type Spec struct {
	// Kind is the error type.
	Kind Kind
	// Column is the column A whose values are corrupted.
	Column string
	// Rate is the fraction of rows selected, in (0, 1].
	Rate float64
	// BasedOn optionally names a column B driving the selection: the rows
	// with the largest B values (numeric) or the first rows in B's sort
	// order (categorical) are selected, and the sorting order follows B.
	// Empty means uniform random selection in row order.
	BasedOn string
}

// Inject returns a corrupted copy of the relation and a parallel truth
// slice marking the corrupted rows. The input relation is not modified.
func Inject(d *relation.Relation, spec Spec, rng *rand.Rand) (*relation.Relation, []bool, error) {
	n := d.NumRows()
	if spec.Rate <= 0 || spec.Rate > 1 {
		return nil, nil, fmt.Errorf("errgen: rate %v out of (0,1]", spec.Rate)
	}
	col, err := d.Column(spec.Column)
	if err != nil {
		return nil, nil, err
	}
	_ = col
	count := int(spec.Rate * float64(n))
	if count < 1 {
		count = 1
	}
	selected, err := selectRows(d, spec, count, rng)
	if err != nil {
		return nil, nil, err
	}

	out := d.Clone()
	truth := make([]bool, n)
	for _, r := range selected {
		truth[r] = true
	}

	switch spec.Kind {
	case Sorting:
		if err := applySorting(out, spec.Column, selected); err != nil {
			return nil, nil, err
		}
	case Imputation:
		if err := applyImputation(out, spec.Column, selected); err != nil {
			return nil, nil, err
		}
	case Combination:
		half := len(selected) / 2
		if err := applySorting(out, spec.Column, selected[:half]); err != nil {
			return nil, nil, err
		}
		if err := applyImputation(out, spec.Column, selected[half:]); err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, fmt.Errorf("errgen: unknown kind %d", int(spec.Kind))
	}
	return out, truth, nil
}

// selectRows picks the corrupted rows: uniformly at random (in ascending
// row order) or driven by the BasedOn column.
func selectRows(d *relation.Relation, spec Spec, count int, rng *rand.Rand) ([]int, error) {
	n := d.NumRows()
	if spec.BasedOn == "" {
		perm := rng.Perm(n)[:count]
		sort.Ints(perm)
		return perm, nil
	}
	b, err := d.Column(spec.BasedOn)
	if err != nil {
		return nil, err
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if b.Kind == relation.Numeric {
		// Rows with the largest B first; the selection order follows B
		// descending so the sorted A values align with B.
		sort.SliceStable(idx, func(i, j int) bool { return b.Value(idx[i]) > b.Value(idx[j]) })
	} else {
		sort.SliceStable(idx, func(i, j int) bool { return b.StringAt(idx[i]) < b.StringAt(idx[j]) })
	}
	return idx[:count], nil
}

// applySorting overwrites the selected cells of the column with the same
// multiset of values, re-assigned in ascending order along the selection
// order.
func applySorting(d *relation.Relation, column string, selected []int) error {
	c, err := d.Column(column)
	if err != nil {
		return err
	}
	if c.Kind == relation.Numeric {
		vals := make([]float64, len(selected))
		for i, r := range selected {
			vals[i] = c.Value(r)
		}
		sort.Float64s(vals)
		for i, r := range selected {
			c.SetValue(r, vals[i])
		}
		return nil
	}
	vals := make([]string, len(selected))
	for i, r := range selected {
		vals[i] = c.StringAt(r)
	}
	sort.Strings(vals)
	for i, r := range selected {
		c.SetString(r, vals[i])
	}
	return nil
}

// applyImputation overwrites the selected cells with the column's mean
// (numeric) or mode (categorical), computed over the whole column.
func applyImputation(d *relation.Relation, column string, selected []int) error {
	c, err := d.Column(column)
	if err != nil {
		return err
	}
	if c.Kind == relation.Numeric {
		mean := stats.Mean(c.Floats())
		for _, r := range selected {
			c.SetValue(r, mean)
		}
		return nil
	}
	mode := columnMode(c)
	for _, r := range selected {
		c.SetString(r, mode)
	}
	return nil
}

func columnMode(c *relation.Column) string {
	counts := make(map[string]int)
	for i := 0; i < c.Len(); i++ {
		counts[c.StringAt(i)]++
	}
	best, bestN := "", -1
	for v, n := range counts {
		if n > bestN || (n == bestN && v < best) {
			best, bestN = v, n
		}
	}
	return best
}
