package errgen

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"scoded/internal/relation"
	"scoded/internal/stats"
)

func numericRel(n int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	return relation.MustNew(
		relation.NewNumericColumn("A", a),
		relation.NewNumericColumn("B", b),
	)
}

func TestInjectDoesNotMutateInput(t *testing.T) {
	d := numericRel(100, 1)
	orig := d.MustColumn("A").Floats()
	_, _, err := Inject(d, Spec{Kind: Imputation, Column: "A", Rate: 0.5}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	after := d.MustColumn("A").Floats()
	for i := range orig {
		if orig[i] != after[i] {
			t.Fatal("Inject mutated its input")
		}
	}
}

func TestImputationNumeric(t *testing.T) {
	d := numericRel(200, 3)
	mean := stats.Mean(d.MustColumn("A").Floats())
	dirty, truth, err := Inject(d, Spec{Kind: Imputation, Column: "A", Rate: 0.3}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	nErr := 0
	for i, isErr := range truth {
		if isErr {
			nErr++
			if dirty.MustColumn("A").Value(i) != mean {
				t.Errorf("row %d not imputed to mean", i)
			}
		} else if dirty.MustColumn("A").Value(i) != d.MustColumn("A").Value(i) {
			t.Errorf("clean row %d changed", i)
		}
	}
	if nErr != 60 {
		t.Errorf("corrupted %d rows, want 60", nErr)
	}
}

func TestImputationCategoricalUsesMode(t *testing.T) {
	vals := []string{"a", "a", "a", "b", "b", "c"}
	d := relation.MustNew(relation.NewCategoricalColumn("C", vals))
	dirty, truth, err := Inject(d, Spec{Kind: Imputation, Column: "C", Rate: 0.5}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for i, isErr := range truth {
		if isErr && dirty.MustColumn("C").StringAt(i) != "a" {
			t.Errorf("row %d imputed to %q, want mode a", i, dirty.MustColumn("C").StringAt(i))
		}
	}
}

func TestSortingPreservesMultiset(t *testing.T) {
	d := numericRel(150, 6)
	dirty, truth, err := Inject(d, Spec{Kind: Sorting, Column: "A", Rate: 0.4}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	var before, after []float64
	for i, isErr := range truth {
		if isErr {
			before = append(before, d.MustColumn("A").Value(i))
			after = append(after, dirty.MustColumn("A").Value(i))
		}
	}
	sort.Float64s(before)
	got := append([]float64(nil), after...)
	sort.Float64s(got)
	for i := range before {
		if before[i] != got[i] {
			t.Fatal("sorting error changed the value multiset")
		}
	}
	// Selected cells must be ascending in row order (random selection).
	if !sort.Float64sAreSorted(after) {
		t.Error("selected cells not ascending after sorting error")
	}
}

func TestSortingBasedOnPlantsDependence(t *testing.T) {
	// Sorting A based on B must correlate A with B among corrupted rows.
	d := numericRel(400, 8)
	dirty, truth, err := Inject(d, Spec{Kind: Sorting, Column: "A", Rate: 0.5, BasedOn: "B"},
		rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	var av, bv []float64
	for i, isErr := range truth {
		if isErr {
			av = append(av, dirty.MustColumn("A").Value(i))
			bv = append(bv, dirty.MustColumn("B").Value(i))
		}
	}
	k, err := stats.Kendall(av, bv)
	if err != nil {
		t.Fatal(err)
	}
	// Selection order follows B descending with A ascending along it, so
	// the planted correlation is strongly negative.
	if k.TauB > -0.9 {
		t.Errorf("planted correlation tau = %v, want near -1", k.TauB)
	}
	// The B-based selection takes the rows with the largest B.
	minSelB, maxCleanB := 1e18, -1e18
	for i, isErr := range truth {
		b := d.MustColumn("B").Value(i)
		if isErr && b < minSelB {
			minSelB = b
		}
		if !isErr && b > maxCleanB {
			maxCleanB = b
		}
	}
	if minSelB < maxCleanB {
		t.Errorf("B-based selection not top-block: minSel %v < maxClean %v", minSelB, maxCleanB)
	}
}

func TestCombinationSplitsSelection(t *testing.T) {
	d := numericRel(200, 10)
	mean := stats.Mean(d.MustColumn("A").Floats())
	dirty, truth, err := Inject(d, Spec{Kind: Combination, Column: "A", Rate: 0.4},
		rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	imputed := 0
	for i, isErr := range truth {
		// The mean is recomputed after the sorting half reorders the
		// column, so compare with a tolerance for summation-order drift.
		if isErr && math.Abs(dirty.MustColumn("A").Value(i)-mean) < 1e-9 {
			imputed++
		}
	}
	// Half of the 80 selected rows should be imputed (allowing the odd
	// coincidental mean value among the sorted half).
	if imputed < 35 || imputed > 45 {
		t.Errorf("imputed half = %d, want ~40", imputed)
	}
}

func TestInjectValidation(t *testing.T) {
	d := numericRel(10, 12)
	rng := rand.New(rand.NewSource(13))
	if _, _, err := Inject(d, Spec{Kind: Sorting, Column: "A", Rate: 0}, rng); err == nil {
		t.Error("want error for rate 0")
	}
	if _, _, err := Inject(d, Spec{Kind: Sorting, Column: "A", Rate: 1.5}, rng); err == nil {
		t.Error("want error for rate > 1")
	}
	if _, _, err := Inject(d, Spec{Kind: Sorting, Column: "Z", Rate: 0.5}, rng); err == nil {
		t.Error("want error for missing column")
	}
	if _, _, err := Inject(d, Spec{Kind: Sorting, Column: "A", Rate: 0.5, BasedOn: "Z"}, rng); err == nil {
		t.Error("want error for missing BasedOn column")
	}
	if _, _, err := Inject(d, Spec{Kind: Kind(9), Column: "A", Rate: 0.5}, rng); err == nil {
		t.Error("want error for unknown kind")
	}
}

func TestKindString(t *testing.T) {
	if Sorting.String() != "sorting" || Imputation.String() != "imputation" || Combination.String() != "combination" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestCategoricalBasedOnSelection(t *testing.T) {
	d := relation.MustNew(
		relation.NewCategoricalColumn("A", []string{"p", "q", "r", "s"}),
		relation.NewCategoricalColumn("B", []string{"z", "a", "z", "a"}),
	)
	_, truth, err := Inject(d, Spec{Kind: Imputation, Column: "A", Rate: 0.5, BasedOn: "B"},
		rand.New(rand.NewSource(14)))
	if err != nil {
		t.Fatal(err)
	}
	// Categorical B sorts ascending: rows with B="a" (1 and 3) selected.
	if !truth[1] || !truth[3] || truth[0] || truth[2] {
		t.Errorf("truth = %v, want rows 1,3", truth)
	}
}
