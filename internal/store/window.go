package store

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Windowed segment reads (DESIGN.md section 16): a SegmentReader opens one
// segment file, verifies its CRC with a single sequential streaming pass,
// parses the header and per-column dictionaries into memory, and then
// serves arbitrary row windows [lo, hi) with ReadAt against the
// fixed-width code/float blocks. Only the dictionaries and one window are
// ever resident, so a single oversized segment no longer forces a full
// materialization.

// crcChunkSize is the buffer used for the streaming checksum pass.
const crcChunkSize = 256 << 10

// windowColumn is the in-memory header of one column block: everything
// except the fixed-width row data, plus where that data lives.
type windowColumn struct {
	name  string
	kind  string
	dict  []string // categorical only; shared read-only across windows
	off   int64    // file offset of the first row's fixed-width datum
	width int64    // bytes per row: 4 (codes) or 8 (floats)
}

// SegmentReader serves row windows of one immutable segment file.
// It is not safe for concurrent use; each scan owns its reader.
type SegmentReader struct {
	f    *os.File
	rows int
	cols []windowColumn
}

// OpenSegment opens path, verifies the whole-file checksum, and parses the
// header. The returned reader must be closed.
func OpenSegment(path string) (*SegmentReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := newSegmentReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func newSegmentReader(f *os.File) (*SegmentReader, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < int64(len(segmentMagic)+2+4+4+4) {
		return nil, fmt.Errorf("store: segment too short (%d bytes)", size)
	}
	if err := verifySegmentCRC(f, size); err != nil {
		return nil, err
	}

	cur := &fileCursor{f: f, limit: size - 4} // body excludes the CRC trailer
	magic, err := cur.bytes(4)
	if err != nil {
		return nil, err
	}
	if string(magic) != segmentMagic {
		return nil, fmt.Errorf("store: bad segment magic %q", magic)
	}
	format, err := cur.u16()
	if err != nil {
		return nil, err
	}
	if format != segmentFormat {
		return nil, fmt.Errorf("store: unsupported segment format %d", format)
	}
	ncols, err := cur.u32()
	if err != nil {
		return nil, err
	}
	nrows, err := cur.u32()
	if err != nil {
		return nil, err
	}
	if int64(ncols)*3 > cur.remaining() {
		return nil, fmt.Errorf("store: segment declares %d columns in %d bytes", ncols, cur.remaining())
	}
	sr := &SegmentReader{f: f, rows: int(nrows), cols: make([]windowColumn, 0, ncols)}
	for ci := uint32(0); ci < ncols; ci++ {
		nameLen, err := cur.u16()
		if err != nil {
			return nil, err
		}
		name, err := cur.bytes(int(nameLen))
		if err != nil {
			return nil, err
		}
		kind, err := cur.u8()
		if err != nil {
			return nil, err
		}
		col := windowColumn{name: string(name)}
		switch kind {
		case kindCategorical:
			col.kind = ColKindCategorical
			col.width = 4
			dictN, err := cur.u32()
			if err != nil {
				return nil, err
			}
			if int64(dictN)*4 > cur.remaining() {
				return nil, fmt.Errorf("store: column %q declares %d dictionary entries in %d bytes", col.name, dictN, cur.remaining())
			}
			col.dict = make([]string, 0, dictN)
			for di := uint32(0); di < dictN; di++ {
				vlen, err := cur.u32()
				if err != nil {
					return nil, err
				}
				v, err := cur.bytes(int(vlen))
				if err != nil {
					return nil, err
				}
				col.dict = append(col.dict, string(v))
			}
		case kindNumeric:
			col.kind = ColKindNumeric
			col.width = 8
		default:
			return nil, fmt.Errorf("store: column %q has unknown kind %d", col.name, kind)
		}
		if int64(nrows)*col.width > cur.remaining() {
			return nil, fmt.Errorf("store: column %q declares %d rows in %d bytes", col.name, nrows, cur.remaining())
		}
		col.off = cur.off
		cur.skip(int64(nrows) * col.width)
		sr.cols = append(sr.cols, col)
	}
	if cur.remaining() != 0 {
		return nil, fmt.Errorf("store: %d trailing bytes after segment body", cur.remaining())
	}
	return sr, nil
}

// verifySegmentCRC streams the file once through the IEEE CRC-32 and
// compares it against the 4-byte trailer. One sequential pass at open
// preserves decodeSegment's corruption guarantee without holding the file
// in memory.
func verifySegmentCRC(f *os.File, size int64) error {
	h := crc32.NewIEEE()
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := io.CopyBuffer(h, io.LimitReader(f, size-4), make([]byte, crcChunkSize)); err != nil {
		return err
	}
	var trailer [4]byte
	if _, err := f.ReadAt(trailer[:], size-4); err != nil {
		return err
	}
	if got, want := binary.LittleEndian.Uint32(trailer[:]), h.Sum32(); got != want {
		return fmt.Errorf("store: segment checksum mismatch (got %08x, want %08x)", got, want)
	}
	return nil
}

// Rows is the segment's record count.
func (r *SegmentReader) Rows() int { return r.rows }

// Close releases the underlying file.
func (r *SegmentReader) Close() error { return r.f.Close() }

// ReadWindow decodes rows [lo, hi) into a Segment. Dictionaries are shared
// (read-only) between windows of the same reader; code and float slices
// are freshly allocated per call, sized to the window.
func (r *SegmentReader) ReadWindow(lo, hi int) (*Segment, error) {
	if lo < 0 || hi > r.rows || lo > hi {
		return nil, fmt.Errorf("store: window [%d,%d) out of segment rows [0,%d)", lo, hi, r.rows)
	}
	n := hi - lo
	seg := &Segment{Rows: n, Cols: make([]SegmentColumn, 0, len(r.cols))}
	var buf []byte
	for _, c := range r.cols {
		need := int(int64(n) * c.width)
		if cap(buf) < need {
			buf = make([]byte, need)
		}
		b := buf[:need]
		if _, err := r.f.ReadAt(b, c.off+int64(lo)*c.width); err != nil {
			return nil, fmt.Errorf("store: column %q window read: %w", c.name, err)
		}
		col := SegmentColumn{Name: c.name, Kind: c.kind}
		if c.kind == ColKindCategorical {
			col.Dict = c.dict
			col.Codes = make([]uint32, n)
			for i := range col.Codes {
				code := binary.LittleEndian.Uint32(b[i*4:])
				if code >= uint32(len(c.dict)) {
					return nil, fmt.Errorf("store: column %q code %d out of dictionary range %d", c.name, code, len(c.dict))
				}
				col.Codes[i] = code
			}
		} else {
			col.Floats = make([]float64, n)
			for i := range col.Floats {
				col.Floats[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
			}
		}
		seg.Cols = append(seg.Cols, col)
	}
	return seg, nil
}

// fileCursor is a bounds-checked sequential reader over the body of a
// segment file (everything before the CRC trailer), the file-backed
// analogue of byteReader.
type fileCursor struct {
	f     *os.File
	off   int64
	limit int64
}

func (c *fileCursor) remaining() int64 { return c.limit - c.off }

func (c *fileCursor) bytes(n int) ([]byte, error) {
	if n < 0 || int64(n) > c.remaining() {
		return nil, fmt.Errorf("store: truncated segment (need %d bytes, have %d)", n, c.remaining())
	}
	b := make([]byte, n)
	if _, err := c.f.ReadAt(b, c.off); err != nil {
		return nil, err
	}
	c.off += int64(n)
	return b, nil
}

func (c *fileCursor) skip(n int64) { c.off += n }

func (c *fileCursor) u8() (byte, error) {
	b, err := c.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (c *fileCursor) u16() (uint16, error) {
	b, err := c.bytes(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (c *fileCursor) u32() (uint32, error) {
	b, err := c.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

// ScanChunks streams dataset name as row windows of at most maxRows rows
// each, in manifest segment order and row order within each segment. A
// window is delivered as a self-contained *Segment (per-segment dense
// dictionaries, same as Scan), so consumers built on Scan semantics work
// unchanged; unlike Scan, at most maxRows rows of column data are resident
// at a time even when one segment is oversized. maxRows <= 0 means one
// window per segment. The context is checked between windows.
func (s *Store) ScanChunks(ctx context.Context, name string, maxRows int, fn func(*Segment) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	dir := filepath.Join(s.dir, datasetDir(name))
	m, err := readManifest(dir)
	if err != nil {
		return err
	}
	for _, si := range m.Segments {
		if err := scanSegmentChunks(ctx, filepath.Join(dir, si.File), si, maxRows, fn); err != nil {
			return err
		}
	}
	return nil
}

// scanSegmentChunks opens one segment and feeds its windows to fn. Split
// out of ScanChunks so the reader's Close is a straight defer rather than
// a defer in a loop.
func scanSegmentChunks(ctx context.Context, path string, si SegmentInfo, maxRows int, fn func(*Segment) error) error {
	r, err := OpenSegment(path)
	if err != nil {
		return fmt.Errorf("store: segment %s: %w", si.File, err)
	}
	defer r.Close()
	if r.Rows() != si.Rows {
		return fmt.Errorf("store: segment %s holds %d rows, manifest says %d", si.File, r.Rows(), si.Rows)
	}
	step := maxRows
	if step <= 0 {
		step = r.Rows()
	}
	for lo := 0; lo < r.Rows(); lo += step {
		if err := ctx.Err(); err != nil {
			return err
		}
		hi := lo + step
		if hi > r.Rows() {
			hi = r.Rows()
		}
		seg, err := r.ReadWindow(lo, hi)
		if err != nil {
			return fmt.Errorf("store: segment %s: %w", si.File, err)
		}
		if err := fn(seg); err != nil {
			return err
		}
	}
	// An empty segment still yields nothing — mirror Scan, which calls fn
	// once with the decoded (zero-row) segment. Deliver it so row-count
	// accounting downstream matches Scan exactly.
	if r.Rows() == 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		seg, err := r.ReadWindow(0, 0)
		if err != nil {
			return fmt.Errorf("store: segment %s: %w", si.File, err)
		}
		return fn(seg)
	}
	return nil
}
