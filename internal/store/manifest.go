package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Column kinds as persisted in manifests and segments.
const (
	ColKindCategorical = "categorical"
	ColKindNumeric     = "numeric"
)

const manifestFormat = 1

// SchemaCol describes one column of a stored dataset.
type SchemaCol struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// SegmentInfo references one immutable segment file from a manifest.
type SegmentInfo struct {
	// File is the segment's file name within the dataset directory (never
	// a path).
	File string `json:"file"`
	// Rows is the segment's record count.
	Rows int `json:"rows"`
	// Bytes is the segment file's size, CRC trailer included.
	Bytes int64 `json:"bytes"`
}

// MonitorDef is a streaming monitor's durable definition: everything
// needed to re-arm it on restart. Its observations live in a separate
// observation log replayed after re-arming.
type MonitorDef struct {
	ID         int     `json:"id"`
	Kind       string  `json:"kind"`
	Alpha      float64 `json:"alpha"`
	Dependence bool    `json:"dependence,omitempty"`
	Window     int     `json:"window,omitempty"`
	// Dataset is the optional dataset binding; bound defs live in that
	// dataset's manifest, unbound ones in the root registry.
	Dataset string `json:"dataset,omitempty"`
	// Webhook is the optional per-monitor alert sink URL, POSTed to when
	// the monitor's verdict flips to violated.
	Webhook string `json:"webhook,omitempty"`
	// Observed is the total record count ever fed to the monitor — it can
	// exceed the replayed log when a windowed log has been compacted.
	Observed int64 `json:"observed,omitempty"`
}

// Manifest is the JSON index of one dataset directory. It is the unit of
// atomicity: every mutation writes the new segments first, then swaps in a
// manifest referencing them (write temp + fsync + rename + dir fsync), so
// a crash at any point leaves either the old or the new state, never a mix.
type Manifest struct {
	Format int    `json:"format"`
	Name   string `json:"name"`
	// Version increases monotonically with every data mutation (append or
	// replace). The kernel cache keys entries by it, which is what makes an
	// append invalidate only the entries whose rows actually changed.
	Version uint64 `json:"version"`
	// Rows is the total record count across all segments.
	Rows     int           `json:"rows"`
	Schema   []SchemaCol   `json:"schema"`
	Segments []SegmentInfo `json:"segments"`
	// Monitors holds the durable definitions of monitors bound to this
	// dataset.
	Monitors []MonitorDef `json:"monitors,omitempty"`
}

// ConstraintDef is a registered constraint's durable form — its canonical
// text rendering, re-parsed on boot.
type ConstraintDef struct {
	ID         int    `json:"id"`
	Constraint string `json:"constraint"`
}

// Registry is the store-wide JSON state that does not belong to any one
// dataset: the constraint registry, unbound monitors, and the id counters
// (persisted so restarts never reuse an id).
type Registry struct {
	Format         int             `json:"format"`
	NextConstraint int             `json:"next_constraint"`
	NextMonitor    int             `json:"next_monitor"`
	Constraints    []ConstraintDef `json:"constraints,omitempty"`
	Monitors       []MonitorDef    `json:"monitors,omitempty"`
}

// encodeManifest renders a manifest deterministically (stable field order,
// trailing newline) so goldens and byte-level comparisons are meaningful.
func encodeManifest(m *Manifest) ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("store: encoding manifest: %w", err)
	}
	return append(data, '\n'), nil
}

// decodeManifest parses and validates a manifest. Like decodeSegment it
// must never panic on arbitrary bytes (FuzzManifest pins that): every
// structural invariant is checked and reported as an error.
func decodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: decoding manifest: %w", err)
	}
	if m.Format != manifestFormat {
		return nil, fmt.Errorf("store: unsupported manifest format %d", m.Format)
	}
	if len(m.Schema) == 0 {
		return nil, fmt.Errorf("store: manifest %q has no schema", m.Name)
	}
	seen := make(map[string]bool, len(m.Schema))
	for _, c := range m.Schema {
		if c.Kind != ColKindCategorical && c.Kind != ColKindNumeric {
			return nil, fmt.Errorf("store: column %q has unknown kind %q", c.Name, c.Kind)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("store: duplicate schema column %q", c.Name)
		}
		seen[c.Name] = true
	}
	rows := 0
	for _, seg := range m.Segments {
		if seg.File == "" || seg.File != filepath.Base(seg.File) || strings.HasPrefix(seg.File, ".") {
			return nil, fmt.Errorf("store: manifest references invalid segment file %q", seg.File)
		}
		if seg.Rows < 0 {
			return nil, fmt.Errorf("store: segment %q has negative row count %d", seg.File, seg.Rows)
		}
		rows += seg.Rows
	}
	if rows != m.Rows {
		return nil, fmt.Errorf("store: manifest rows %d != segment total %d", m.Rows, rows)
	}
	return &m, nil
}

// writeFileAtomic durably replaces dir/name: write to a temp file in the
// same directory, fsync it, close it (checking the error — a close failure
// on a written file is data loss), rename over the target, and fsync the
// directory so the rename itself is durable. A crash at any point leaves
// either the old file or the new one, plus at worst a *.tmp orphan that
// recovery deletes.
func writeFileAtomic(dir, name string, data []byte) (err error) {
	f, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			os.Remove(tmp)
		}
	}()
	if _, err = f.Write(data); err != nil {
		_ = f.Close() // best-effort: the write error is the one that matters
		return err
	}
	if err = f.Sync(); err != nil {
		_ = f.Close() // best-effort: the sync error is the one that matters
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a preceding rename in it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
