package store

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"scoded/internal/relation"
)

var update = flag.Bool("update", false, "rewrite golden files")

func testRel(t *testing.T) *relation.Relation {
	t.Helper()
	return relation.MustNew(
		relation.NewCategoricalColumn("City", []string{"Oslo", "Lima", "Oslo", "Pune", "Lima", "Oslo"}),
		relation.NewNumericColumn("Temp", []float64{3.5, 18, -1.25, 31, 17.5, 0}),
	)
}

func testBatch(t *testing.T) *relation.Relation {
	t.Helper()
	return relation.MustNew(
		relation.NewCategoricalColumn("City", []string{"Pune", "Kyiv"}),
		relation.NewNumericColumn("Temp", []float64{29, -4}),
	)
}

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func TestReplaceLoadRoundTrip(t *testing.T) {
	s := openStore(t, t.TempDir())
	rel := testRel(t)
	m, err := s.Replace("weather", rel)
	if err != nil {
		t.Fatalf("Replace: %v", err)
	}
	if m.Version != 1 || m.Rows != rel.NumRows() || len(m.Segments) != 1 {
		t.Fatalf("manifest = version %d, %d rows, %d segments; want 1, %d, 1",
			m.Version, m.Rows, len(m.Segments), rel.NumRows())
	}
	got, gm, err := s.Load("weather")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if gm.Version != 1 {
		t.Fatalf("loaded version = %d, want 1", gm.Version)
	}
	if !got.Equal(rel) {
		t.Fatal("materialized relation differs from the stored one")
	}
}

func TestAppendGrowsVersionAndSegments(t *testing.T) {
	s := openStore(t, t.TempDir())
	rel, batch := testRel(t), testBatch(t)
	if _, err := s.Replace("weather", rel); err != nil {
		t.Fatal(err)
	}
	m, err := s.Append("weather", batch)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if m.Version != 2 || len(m.Segments) != 2 || m.Rows != rel.NumRows()+batch.NumRows() {
		t.Fatalf("after append: version %d, %d segments, %d rows", m.Version, len(m.Segments), m.Rows)
	}
	want, err := rel.AppendRows(batch)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Load("weather")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("appended store content differs from in-memory AppendRows")
	}
}

func TestAppendRejectsSchemaMismatch(t *testing.T) {
	s := openStore(t, t.TempDir())
	if _, err := s.Replace("weather", testRel(t)); err != nil {
		t.Fatal(err)
	}
	bad := relation.MustNew(relation.NewNumericColumn("Temp", []float64{1}))
	if _, err := s.Append("weather", bad); err == nil {
		t.Fatal("Append with a mismatched schema succeeded")
	}
}

func TestReplaceBumpsVersionAndClearsMonitors(t *testing.T) {
	s := openStore(t, t.TempDir())
	if _, err := s.Replace("weather", testRel(t)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetMonitors("weather", []MonitorDef{{ID: 1, Kind: "numeric", Alpha: 0.05, Window: 8, Dataset: "weather"}}); err != nil {
		t.Fatal(err)
	}
	m, err := s.Replace("weather", testBatch(t))
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 2 {
		t.Fatalf("re-upload version = %d, want 2", m.Version)
	}
	if len(m.Monitors) != 0 {
		t.Fatalf("re-upload kept %d monitor defs; replacement must drop them", len(m.Monitors))
	}
	segs, err := filepath.Glob(filepath.Join(s.Dir(), datasetDir("weather"), "seg-*.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("re-upload left %d segment files on disk, want 1: %v", len(segs), segs)
	}
}

func TestSetMonitorsPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if _, err := s.Replace("weather", testRel(t)); err != nil {
		t.Fatal(err)
	}
	defs := []MonitorDef{{ID: 3, Kind: "categorical", Alpha: 0.01, Dependence: true, Window: 16, Dataset: "weather", Observed: 42}}
	if err := s.SetMonitors("weather", defs); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir)
	m, err := s2.Manifest("weather")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Monitors) != 1 || m.Monitors[0] != defs[0] {
		t.Fatalf("reopened monitors = %+v, want %+v", m.Monitors, defs)
	}
}

func TestCompactMergesSegmentsKeepsVersion(t *testing.T) {
	s := openStore(t, t.TempDir())
	rel := testRel(t)
	if _, err := s.Replace("weather", rel); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append("weather", testBatch(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append("weather", testBatch(t)); err != nil {
		t.Fatal(err)
	}
	before, err := s.Manifest("weather")
	if err != nil {
		t.Fatal(err)
	}
	wantRel, _, err := s.Load("weather")
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Compact("weather")
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if len(m.Segments) != 1 {
		t.Fatalf("compacted to %d segments, want 1", len(m.Segments))
	}
	// The data is unchanged, so the version must be too: version-keyed
	// cache entries stay warm across compaction.
	if m.Version != before.Version {
		t.Fatalf("Compact changed version %d -> %d", before.Version, m.Version)
	}
	got, _, err := s.Load("weather")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(wantRel) {
		t.Fatal("compaction changed the materialized relation")
	}
}

func TestRecoveryCleansOrphans(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if _, err := s.Replace("weather", testRel(t)); err != nil {
		t.Fatal(err)
	}
	dsDir := filepath.Join(dir, datasetDir("weather"))
	// A crash can leave: a dataset dir without a manifest, a segment no
	// manifest references, and half-written temp files.
	if err := os.MkdirAll(filepath.Join(dir, datasetDir("halfborn")), 0o755); err != nil {
		t.Fatal(err)
	}
	for _, stray := range []string{
		filepath.Join(dsDir, "seg-deadbeefdeadbeef.bin"),
		filepath.Join(dsDir, "manifest.json.tmp123"),
		filepath.Join(dir, "registry.json.tmp9"),
	} {
		if err := os.WriteFile(stray, []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2 := openStore(t, dir)
	names, err := s2.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "weather" {
		t.Fatalf("datasets after recovery = %v, want [weather]", names)
	}
	for _, gone := range []string{
		filepath.Join(dir, datasetDir("halfborn")),
		filepath.Join(dsDir, "seg-deadbeefdeadbeef.bin"),
		filepath.Join(dsDir, "manifest.json.tmp123"),
		filepath.Join(dir, "registry.json.tmp9"),
	} {
		if _, err := os.Stat(gone); !os.IsNotExist(err) {
			t.Errorf("recovery left %s behind (stat err: %v)", gone, err)
		}
	}
	if got, _, err := s2.Load("weather"); err != nil || !got.Equal(testRel(t)) {
		t.Fatalf("dataset damaged by recovery: %v", err)
	}
}

func TestTruncatedSegmentDetected(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	m, err := s.Replace("weather", testRel(t))
	if err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(dir, datasetDir("weather"), m.Segments[0].File)
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: the segment loses its tail (including
	// the CRC trailer).
	if err := os.WriteFile(segPath, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load("weather"); err == nil {
		t.Fatal("Load succeeded on a truncated segment")
	}
	checks, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) != 1 || checks[0].Err == nil {
		t.Fatalf("Verify = %+v, want one corrupt dataset", checks)
	}
}

func TestDropRemovesDataset(t *testing.T) {
	s := openStore(t, t.TempDir())
	if _, err := s.Replace("weather", testRel(t)); err != nil {
		t.Fatal(err)
	}
	if err := s.Drop("weather"); err != nil {
		t.Fatal(err)
	}
	if s.HasDataset("weather") {
		t.Fatal("dataset still present after Drop")
	}
}

func TestDatasetNameEscaping(t *testing.T) {
	s := openStore(t, t.TempDir())
	name := "north/south temps & more"
	if _, err := s.Replace(name, testRel(t)); err != nil {
		t.Fatal(err)
	}
	names, err := s.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != name {
		t.Fatalf("Datasets() = %v, want [%q]", names, name)
	}
	if got, _, err := s.Load(name); err != nil || !got.Equal(testRel(t)) {
		t.Fatalf("load of escaped-name dataset: %v", err)
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	r, err := s.Registry()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Constraints) != 0 || len(r.Monitors) != 0 {
		t.Fatalf("fresh registry not empty: %+v", r)
	}
	r.NextConstraint = 4
	r.NextMonitor = 2
	r.Constraints = []ConstraintDef{{ID: 4, Constraint: "A _||_ B @ 0.05"}}
	r.Monitors = []MonitorDef{{ID: 2, Kind: "numeric", Alpha: 0.1, Window: 32}}
	if err := s.SaveRegistry(r); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir)
	back, err := s2.Registry()
	if err != nil {
		t.Fatal(err)
	}
	if back.NextConstraint != 4 || back.NextMonitor != 2 ||
		len(back.Constraints) != 1 || back.Constraints[0] != r.Constraints[0] ||
		len(back.Monitors) != 1 || back.Monitors[0] != r.Monitors[0] {
		t.Fatalf("registry round-trip = %+v, want %+v", back, r)
	}
}

func TestObservationLogRoundTripAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	const window = 4
	// 3 batches of 4 push the log over 2*window and trigger compaction to
	// the last `window` rows.
	var wantX, wantY []float64
	for b := 0; b < 3; b++ {
		xs := make([]float64, 4)
		ys := make([]float64, 4)
		for i := range xs {
			xs[i] = float64(b*4 + i)
			ys[i] = float64(b*4+i) * 2
		}
		wantX = append(wantX, xs...)
		wantY = append(wantY, ys...)
		if err := s.AppendLog(7, "numeric", nil, nil, xs, ys, window); err != nil {
			t.Fatalf("AppendLog batch %d: %v", b, err)
		}
	}
	rel, err := s.LoadLog(7)
	if err != nil {
		t.Fatal(err)
	}
	n := rel.NumRows()
	if n > 2*window {
		t.Fatalf("log holds %d rows after compaction, want <= %d", n, 2*window)
	}
	gotX := rel.MustColumn("x").Floats()
	gotY := rel.MustColumn("y").Floats()
	// Whatever the resident count, the suffix must match the most recent
	// observations in order.
	for i := 0; i < n; i++ {
		wx := wantX[len(wantX)-n+i]
		wy := wantY[len(wantY)-n+i]
		if gotX[i] != wx || gotY[i] != wy {
			t.Fatalf("log row %d = (%g, %g), want (%g, %g)", i, gotX[i], gotY[i], wx, wy)
		}
	}
	if n < window {
		t.Fatalf("log holds %d rows, want at least the window (%d)", n, window)
	}
	if err := s.DropLog(7); err != nil {
		t.Fatal(err)
	}
	if rel, err := s.LoadLog(7); err != nil || rel != nil {
		t.Fatalf("LoadLog after drop = %v, %v; want nil, nil", rel, err)
	}
}

func TestCategoricalLogRoundTrip(t *testing.T) {
	s := openStore(t, t.TempDir())
	xs := []string{"a", "b", "a"}
	ys := []string{"u", "u", "v"}
	if err := s.AppendLog(1, "categorical", xs, ys, nil, nil, 0); err != nil {
		t.Fatal(err)
	}
	rel, err := s.LoadLog(1)
	if err != nil {
		t.Fatal(err)
	}
	x, y := rel.MustColumn("x"), rel.MustColumn("y")
	for i, want := range xs {
		if got := x.StringAt(i); got != want {
			t.Fatalf("x[%d] = %q, want %q", i, got, want)
		}
	}
	for i, want := range ys {
		if got := y.StringAt(i); got != want {
			t.Fatalf("y[%d] = %q, want %q", i, got, want)
		}
	}
}

func TestStats(t *testing.T) {
	s := openStore(t, t.TempDir())
	if _, err := s.Replace("weather", testRel(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append("weather", testBatch(t)); err != nil {
		t.Fatal(err)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Datasets != 1 || st.Segments != 2 || st.Bytes <= 0 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.LastFlush <= 0 {
		t.Fatalf("LastFlush = %v, want > 0 after writes", st.LastFlush)
	}
}

// TestManifestGolden pins the on-disk manifest encoding: a byte-level
// change to the format must be a conscious decision (bump manifestFormat),
// not an accident of refactoring.
func TestManifestGolden(t *testing.T) {
	m := &Manifest{
		Format:  manifestFormat,
		Name:    "weather",
		Version: 3,
		Rows:    8,
		Schema: []SchemaCol{
			{Name: "City", Kind: ColKindCategorical},
			{Name: "Temp", Kind: ColKindNumeric},
		},
		Segments: []SegmentInfo{
			{File: "seg-0000000000000001.bin", Rows: 6, Bytes: 123},
			{File: "seg-0000000000000003.bin", Rows: 2, Bytes: 77},
		},
		Monitors: []MonitorDef{
			{ID: 2, Kind: "numeric", Alpha: 0.05, Dependence: true, Window: 64, Dataset: "weather", Observed: 48},
		},
	}
	data, err := encodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "manifest-v1.golden.json")
	if *update {
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run `go test -run Golden -update` to create): %v", err)
	}
	if string(data) != string(want) {
		t.Errorf("manifest encoding drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", data, want)
	}
	back, err := decodeManifest(want)
	if err != nil {
		t.Fatalf("decoding golden: %v", err)
	}
	if back.Version != m.Version || back.Rows != m.Rows || len(back.Segments) != 2 ||
		back.Segments[1] != m.Segments[1] || len(back.Monitors) != 1 || back.Monitors[0] != m.Monitors[0] {
		t.Fatalf("golden round-trip = %+v, want %+v", back, m)
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	rel := testRel(t)
	data, err := encodeSegment(rel, 0, rel.NumRows())
	if err != nil {
		t.Fatal(err)
	}
	seg, err := decodeSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Rows != rel.NumRows() || len(seg.Cols) != rel.NumCols() {
		t.Fatalf("decoded %d rows, %d cols", seg.Rows, len(seg.Cols))
	}
	city := seg.Cols[0]
	if city.Name != "City" || city.Kind != ColKindCategorical {
		t.Fatalf("col 0 = %+v", city)
	}
	cityCol := rel.MustColumn("City")
	for i, code := range city.Codes {
		if city.Dict[code] != cityCol.StringAt(i) {
			t.Fatalf("row %d: city %q, want %q", i, city.Dict[code], cityCol.StringAt(i))
		}
	}
	temp := seg.Cols[1]
	wantTemp := rel.MustColumn("Temp").Floats()
	for i, f := range temp.Floats {
		if f != wantTemp[i] {
			t.Fatalf("row %d: temp %g, want %g", i, f, wantTemp[i])
		}
	}
}

func TestSegmentRejectsBitFlip(t *testing.T) {
	rel := testRel(t)
	data, err := encodeSegment(rel, 0, rel.NumRows())
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, len(data) / 2, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x40
		if _, err := decodeSegment(bad); err == nil {
			t.Errorf("decodeSegment accepted a bit flip at offset %d", i)
		}
	}
}
