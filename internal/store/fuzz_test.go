package store

import (
	"testing"

	"scoded/internal/relation"
)

// FuzzSegment pins the decoder's no-panic contract: arbitrary bytes must
// produce either a valid Segment or an error — never a panic or a
// length-driven absurd allocation. Decoded segments must satisfy the
// structural invariants the materializer relies on.
func FuzzSegment(f *testing.F) {
	rel := relation.MustNew(
		relation.NewCategoricalColumn("City", []string{"Oslo", "Lima", "Oslo"}),
		relation.NewNumericColumn("Temp", []float64{3.5, 18, -1.25}),
	)
	if seed, err := encodeSegment(rel, 0, rel.NumRows()); err == nil {
		f.Add(seed)
		// A truncated and a bit-flipped variant steer the fuzzer toward the
		// interesting prefixes.
		f.Add(seed[:len(seed)/2])
		flipped := append([]byte(nil), seed...)
		flipped[8] ^= 0xff
		f.Add(flipped)
	}
	f.Add([]byte(segmentMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := decodeSegment(data)
		if err != nil {
			return
		}
		for _, col := range seg.Cols {
			switch col.Kind {
			case ColKindCategorical:
				if len(col.Codes) != seg.Rows {
					t.Fatalf("column %q: %d codes for %d rows", col.Name, len(col.Codes), seg.Rows)
				}
				for i, code := range col.Codes {
					if int(code) >= len(col.Dict) {
						t.Fatalf("column %q: code[%d]=%d outside dict of %d", col.Name, i, code, len(col.Dict))
					}
				}
			case ColKindNumeric:
				if len(col.Floats) != seg.Rows {
					t.Fatalf("column %q: %d floats for %d rows", col.Name, len(col.Floats), seg.Rows)
				}
			default:
				t.Fatalf("column %q: unknown kind %q", col.Name, col.Kind)
			}
		}
	})
}

// FuzzManifest pins the same contract for the JSON manifest: arbitrary
// bytes never panic, and anything that decodes re-encodes and decodes to
// an equally valid manifest.
func FuzzManifest(f *testing.F) {
	m := &Manifest{
		Format:  manifestFormat,
		Name:    "weather",
		Version: 2,
		Rows:    3,
		Schema:  []SchemaCol{{Name: "City", Kind: ColKindCategorical}},
		Segments: []SegmentInfo{
			{File: "seg-0000000000000002.bin", Rows: 3, Bytes: 64},
		},
	}
	if seed, err := encodeManifest(m); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{"format": 1}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"format": 1, "schema": [{"name": "a", "kind": "categorical"}], "segments": [{"file": "../../etc/passwd", "rows": 0}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			return
		}
		out, err := encodeManifest(m)
		if err != nil {
			t.Fatalf("re-encoding a decoded manifest: %v", err)
		}
		if _, err := decodeManifest(out); err != nil {
			t.Fatalf("re-decoding a re-encoded manifest: %v", err)
		}
	})
}
