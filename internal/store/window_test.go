package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// flattenSegment renders a segment's rows as strings so differently
// chunked reads can be compared value-for-value.
func flattenSegment(seg *Segment) []string {
	rows := make([]string, seg.Rows)
	for i := 0; i < seg.Rows; i++ {
		var sb strings.Builder
		for ci, c := range seg.Cols {
			if ci > 0 {
				sb.WriteByte('|')
			}
			if c.Kind == ColKindCategorical {
				sb.WriteString(c.Dict[c.Codes[i]])
			} else {
				fmt.Fprintf(&sb, "%x", c.Floats[i])
			}
		}
		rows[i] = sb.String()
	}
	return rows
}

func TestScanChunksMatchesScan(t *testing.T) {
	s := openStore(t, t.TempDir())
	if _, err := s.Replace("weather", testRel(t)); err != nil {
		t.Fatalf("Replace: %v", err)
	}
	if _, err := s.Append("weather", testBatch(t)); err != nil {
		t.Fatalf("Append: %v", err)
	}

	var want []string
	if err := s.Scan("weather", func(seg *Segment) error {
		want = append(want, flattenSegment(seg)...)
		return nil
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(want) != 8 {
		t.Fatalf("Scan yielded %d rows, want 8", len(want))
	}

	for _, maxRows := range []int{0, 1, 3, 100} {
		var got []string
		windows := 0
		err := s.ScanChunks(context.Background(), "weather", maxRows, func(seg *Segment) error {
			windows++
			got = append(got, flattenSegment(seg)...)
			return nil
		})
		if err != nil {
			t.Fatalf("ScanChunks(maxRows=%d): %v", maxRows, err)
		}
		if len(got) != len(want) {
			t.Fatalf("maxRows=%d: %d rows, want %d", maxRows, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("maxRows=%d row %d: %q want %q", maxRows, i, got[i], want[i])
			}
		}
		if maxRows == 3 && windows != 3 {
			// 6-row segment in windows of 3, plus the 2-row append segment.
			t.Fatalf("maxRows=3: %d windows, want 3", windows)
		}
		if maxRows == 1 && windows != 8 {
			t.Fatalf("maxRows=1: %d windows, want 8", windows)
		}
	}
}

func TestScanChunksContextCancel(t *testing.T) {
	s := openStore(t, t.TempDir())
	if _, err := s.Replace("weather", testRel(t)); err != nil {
		t.Fatalf("Replace: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.ScanChunks(ctx, "weather", 2, func(seg *Segment) error {
		t.Fatal("fn must not run after cancellation")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// segmentPaths returns the dataset's segment files in manifest order.
func segmentPaths(t *testing.T, s *Store, name string) []string {
	t.Helper()
	m, err := s.Manifest(name)
	if err != nil {
		t.Fatalf("Manifest: %v", err)
	}
	dir := filepath.Join(s.Dir(), datasetDir(name))
	paths := make([]string, len(m.Segments))
	for i, si := range m.Segments {
		paths[i] = filepath.Join(dir, si.File)
	}
	return paths
}

func TestScanChunksDetectsCorruption(t *testing.T) {
	s := openStore(t, t.TempDir())
	if _, err := s.Replace("weather", testRel(t)); err != nil {
		t.Fatalf("Replace: %v", err)
	}
	path := segmentPaths(t, s, "weather")[0]
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	err = s.ScanChunks(context.Background(), "weather", 2, func(seg *Segment) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("got %v, want checksum mismatch", err)
	}
}

func TestReadWindowBounds(t *testing.T) {
	s := openStore(t, t.TempDir())
	rel := testRel(t)
	if _, err := s.Replace("weather", rel); err != nil {
		t.Fatalf("Replace: %v", err)
	}
	r, err := OpenSegment(segmentPaths(t, s, "weather")[0])
	if err != nil {
		t.Fatalf("OpenSegment: %v", err)
	}
	defer r.Close()
	if r.Rows() != rel.NumRows() {
		t.Fatalf("Rows %d want %d", r.Rows(), rel.NumRows())
	}
	for _, bad := range [][2]int{{-1, 2}, {0, r.Rows() + 1}, {3, 2}} {
		if _, err := r.ReadWindow(bad[0], bad[1]); err == nil {
			t.Fatalf("ReadWindow%v: want error", bad)
		}
	}
	// A mid-segment window must equal the same rows of a full decode.
	full, err := r.ReadWindow(0, r.Rows())
	if err != nil {
		t.Fatal(err)
	}
	mid, err := r.ReadWindow(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := flattenSegment(full)[2:5]
	gotRows := flattenSegment(mid)
	for i := range wantRows {
		if gotRows[i] != wantRows[i] {
			t.Fatalf("row %d: %q want %q", i, gotRows[i], wantRows[i])
		}
	}
}
