package store

import (
	"fmt"
	"os"
	"path/filepath"

	"scoded/internal/relation"
)

// Monitor observation logs reuse the dataset machinery: a log is a
// two-column segment collection (columns "x" and "y", both categorical or
// both numeric) under mlog-<id>/. On boot the server re-arms each monitor
// from its durable definition and replays the log through InsertBatch,
// reconstructing the exact window state.
//
// For a windowed monitor only the last `window` observations matter, so
// AppendLog opportunistically rewrites the log down to that suffix once it
// grows past twice the window — the replayed state is identical (FIFO
// eviction would have discarded the prefix anyway) and the log stays O(w)
// on disk. The monitor's lifetime `observed` counter is persisted in its
// MonitorDef, not derived from log length, so compaction never skews it.

// logRelation builds the 2-column relation for a log batch.
func logRelation(kind string, xs, ys []string, xf, yf []float64) (*relation.Relation, error) {
	if kind == ColKindCategorical {
		return relation.New(
			relation.NewCategoricalColumn("x", xs),
			relation.NewCategoricalColumn("y", ys),
		)
	}
	return relation.New(
		relation.NewNumericColumn("x", xf),
		relation.NewNumericColumn("y", yf),
	)
}

// AppendLog durably appends a batch of observations to monitor id's log,
// creating the log on first use. kind is ColKindCategorical (xs/ys used)
// or ColKindNumeric (xf/yf used). window > 0 enables suffix compaction.
func (s *Store) AppendLog(id int, kind string, xs, ys []string, xf, yf []float64, window int) error {
	batch, err := logRelation(kind, xs, ys, xf, yf)
	if err != nil {
		return err
	}
	if batch.NumRows() == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := filepath.Join(s.dir, logDir(id))
	m, err := readManifest(dir)
	if os.IsNotExist(err) {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		m = &Manifest{
			Format: manifestFormat,
			Name:   fmt.Sprintf("monitor-%d", id),
			Schema: schemaOf(batch),
		}
	} else if err != nil {
		return err
	}
	if err := matchesSchema(m, batch); err != nil {
		return err
	}
	if window > 0 && m.Rows+batch.NumRows() > 2*window {
		return s.compactLogLocked(dir, m, batch, window)
	}
	m.Version++
	info, err := writeSegment(dir, segmentFile(m.Version), batch, 0, batch.NumRows())
	if err != nil {
		return err
	}
	m.Rows += batch.NumRows()
	m.Segments = append(m.Segments, info)
	//scoded:lint-ignore lockbalance durable-before-visible: the fsync barrier must complete under s.mu so no contender observes unpublished state
	return s.swapManifest(dir, m)
}

// compactLogLocked rewrites the log as a single segment holding only the
// last `window` observations of (existing log + batch). Callers hold s.mu.
func (s *Store) compactLogLocked(dir string, m *Manifest, batch *relation.Relation, window int) error {
	full := batch
	if m.Rows > 0 {
		existing, err := materialize(dir, m)
		if err != nil {
			return err
		}
		full, err = existing.AppendRows(batch)
		if err != nil {
			return err
		}
	}
	lo := full.NumRows() - window
	if lo < 0 {
		lo = 0
	}
	m.Version++
	file := fmt.Sprintf("%s%016x-compact%s", segmentPrefix, m.Version, segmentSuffix)
	info, err := writeSegment(dir, file, full, lo, full.NumRows())
	if err != nil {
		return err
	}
	old := m.Segments
	m.Rows = full.NumRows() - lo
	m.Segments = []SegmentInfo{info}
	if err := s.swapManifest(dir, m); err != nil {
		return err
	}
	for _, seg := range old {
		if seg.File != file {
			os.Remove(filepath.Join(dir, seg.File))
		}
	}
	return nil
}

// LoadLog materializes monitor id's observation log, returning (nil, nil)
// when the monitor has no log yet.
func (s *Store) LoadLog(id int) (*relation.Relation, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	dir := filepath.Join(s.dir, logDir(id))
	m, err := readManifest(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return materialize(dir, m)
}

// DropLog removes monitor id's observation log, if any.
func (s *Store) DropLog(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := filepath.Join(s.dir, logDir(id))
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		return nil
	}
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	//scoded:lint-ignore lockbalance durable-before-visible: the fsync barrier must complete under s.mu so no contender observes unpublished state
	return syncDir(s.dir)
}
