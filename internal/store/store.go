// Package store is scoded's durability layer: an append-only columnar
// store where each dataset is a directory of immutable column-major
// segment files plus a JSON manifest (schema, segment list, row counts,
// and a monotonically increasing version).
//
// Layout under the root directory:
//
//	registry.json          constraints, unbound monitors, id counters
//	ds-<escaped-name>/     one directory per dataset
//	  manifest.json        the atomic index (see Manifest)
//	  seg-<nnn>.bin        immutable segments (see segment.go)
//	mlog-<id>/             a monitor's observation log, same layout
//
// Mutations follow write-new-segments-then-swap-manifest: segment files
// are written and fsynced first, then the manifest is atomically replaced
// (temp + fsync + rename + directory fsync). Recovery therefore only has
// to delete *.tmp files and orphaned segments no manifest references —
// a partially written mutation is invisible.
//
// The manifest version is the store's contract with the kernel cache:
// every append or replace bumps it, cache keys embed it, and because an
// append never reorders or recodes existing rows, entries for untouched
// row subsets stay valid (and warm) across appends.
package store

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"scoded/internal/relation"
)

const (
	manifestFile  = "manifest.json"
	registryFile  = "registry.json"
	datasetPrefix = "ds-"
	logPrefix     = "mlog-"
	segmentPrefix = "seg-"
	segmentSuffix = ".bin"
)

// Store manages one root data directory. Methods are safe for concurrent
// use: mutations serialize on a write lock, loads share a read lock (a
// segment file is only deleted by a mutation that already unlinked it from
// the manifest, so readers never observe a half-swapped dataset).
type Store struct {
	dir string

	mu sync.RWMutex
	// lastFlush is the wall-clock duration of the most recent durable
	// mutation (segment write + manifest swap), exported as a gauge.
	lastFlush time.Duration
}

// Open opens (creating if needed) a store rooted at dir and runs crash
// recovery: *.tmp files are deleted, dataset directories without a
// manifest are removed, and segment files no manifest references are
// deleted. It returns the recovered store.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	s := &Store{dir: dir}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) recover() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: reading %s: %w", s.dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() {
			if strings.Contains(name, ".tmp") {
				if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
					return err
				}
			}
			continue
		}
		if !strings.HasPrefix(name, datasetPrefix) && !strings.HasPrefix(name, logPrefix) {
			continue
		}
		if err := s.recoverDataset(filepath.Join(s.dir, name)); err != nil {
			return err
		}
	}
	return nil
}

// recoverDataset cleans one dataset directory: temp files go, a directory
// whose manifest never landed is removed wholesale, and orphaned segments
// (written by a mutation that crashed before its manifest swap) are
// deleted. Referenced segments are never touched.
func (s *Store) recoverDataset(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return err
			}
		}
	}
	m, err := readManifest(dir)
	if os.IsNotExist(err) {
		// Crash before the first manifest write: the directory holds only
		// unreachable segments.
		return os.RemoveAll(dir)
	}
	if err != nil {
		return fmt.Errorf("store: recovering %s: %w", dir, err)
	}
	referenced := make(map[string]bool, len(m.Segments))
	for _, seg := range m.Segments {
		referenced[seg.File] = true
	}
	entries, err = os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, segmentPrefix) && strings.HasSuffix(name, segmentSuffix) && !referenced[name] {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// datasetDir maps a dataset name to its directory name. QueryEscape is
// injective and produces only path-safe characters, so arbitrary dataset
// names (slashes, dots, unicode) cannot escape the root or collide.
func datasetDir(name string) string { return datasetPrefix + url.QueryEscape(name) }

// datasetName inverts datasetDir.
func datasetName(dir string) (string, error) {
	return url.QueryUnescape(strings.TrimPrefix(dir, datasetPrefix))
}

func logDir(id int) string { return fmt.Sprintf("%s%d", logPrefix, id) }

// Datasets lists stored dataset names, sorted.
func (s *Store) Datasets() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), datasetPrefix) {
			continue
		}
		name, err := datasetName(e.Name())
		if err != nil {
			return nil, fmt.Errorf("store: undecodable dataset directory %q: %w", e.Name(), err)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// HasDataset reports whether a dataset exists in the store.
func (s *Store) HasDataset(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, err := os.Stat(filepath.Join(s.dir, datasetDir(name), manifestFile))
	return err == nil
}

// Manifest reads a dataset's current manifest.
func (s *Store) Manifest(name string) (*Manifest, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return readManifest(filepath.Join(s.dir, datasetDir(name)))
}

func readManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, err
	}
	return decodeManifest(data)
}

// schemaOf renders a relation's schema for a manifest.
func schemaOf(rel *relation.Relation) []SchemaCol {
	schema := make([]SchemaCol, 0, rel.NumCols())
	for _, name := range rel.Columns() {
		kind := ColKindNumeric
		if rel.MustColumn(name).Kind == relation.Categorical {
			kind = ColKindCategorical
		}
		schema = append(schema, SchemaCol{Name: name, Kind: kind})
	}
	return schema
}

// matchesSchema checks a batch against a manifest's schema (same names,
// order, kinds).
func matchesSchema(m *Manifest, rel *relation.Relation) error {
	got := schemaOf(rel)
	if len(got) != len(m.Schema) {
		return fmt.Errorf("store: batch has %d columns, dataset %q has %d", len(got), m.Name, len(m.Schema))
	}
	for i, c := range m.Schema {
		if got[i] != c {
			return fmt.Errorf("store: batch column %d is %s %q, dataset %q has %s %q",
				i, got[i].Kind, got[i].Name, m.Name, c.Kind, c.Name)
		}
	}
	return nil
}

func segmentFile(version uint64) string {
	return fmt.Sprintf("%s%016x%s", segmentPrefix, version, segmentSuffix)
}

// writeSegment durably writes one segment file for rows [lo, hi) of rel.
func writeSegment(dir, file string, rel *relation.Relation, lo, hi int) (SegmentInfo, error) {
	data, err := encodeSegment(rel, lo, hi)
	if err != nil {
		return SegmentInfo{}, err
	}
	if err := writeFileAtomic(dir, file, data); err != nil {
		return SegmentInfo{}, err
	}
	return SegmentInfo{File: file, Rows: hi - lo, Bytes: int64(len(data))}, nil
}

// Replace durably (re)creates a dataset from a full relation. If the
// dataset already exists its version is bumped — never reset — so kernel
// caches keyed by version can never confuse the old content with the new;
// bound monitor definitions in the old manifest are dropped, matching the
// server's semantics that replacing a dataset invalidates its monitors.
// It returns the new manifest.
func (s *Store) Replace(name string, rel *relation.Relation) (*Manifest, error) {
	if name == "" {
		return nil, fmt.Errorf("store: empty dataset name")
	}
	if rel.NumCols() == 0 {
		return nil, fmt.Errorf("store: dataset %q has no columns", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	dir := filepath.Join(s.dir, datasetDir(name))
	version := uint64(1)
	var old *Manifest
	if m, err := readManifest(dir); err == nil {
		old = m
		version = m.Version + 1
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	file := segmentFile(version)
	info, err := writeSegment(dir, file, rel, 0, rel.NumRows())
	if err != nil {
		return nil, err
	}
	m := &Manifest{
		Format:   manifestFormat,
		Name:     name,
		Version:  version,
		Rows:     rel.NumRows(),
		Schema:   schemaOf(rel),
		Segments: []SegmentInfo{info},
	}
	//scoded:lint-ignore lockbalance durable-before-visible: the fsync barrier must complete under s.mu so no contender observes unpublished state
	if err := s.swapManifest(dir, m); err != nil {
		return nil, err
	}
	// The swap is the commit point; stale segments are now unreachable and
	// their deletion is best-effort (recovery would also collect them).
	if old != nil {
		for _, seg := range old.Segments {
			if seg.File != file {
				os.Remove(filepath.Join(dir, seg.File))
			}
		}
	}
	s.lastFlush = time.Since(start)
	return m, nil
}

// Append durably appends a batch to an existing dataset: one new segment,
// then a manifest swap that bumps the version. Existing segments are
// untouched, so row indices and categorical first-occurrence order are
// stable — the invariant the versioned kernel cache relies on. It returns
// the new manifest.
func (s *Store) Append(name string, batch *relation.Relation) (*Manifest, error) {
	if batch.NumRows() == 0 {
		return nil, fmt.Errorf("store: empty append batch")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	dir := filepath.Join(s.dir, datasetDir(name))
	m, err := readManifest(dir)
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("store: no dataset %q", name)
	}
	if err != nil {
		return nil, err
	}
	if err := matchesSchema(m, batch); err != nil {
		return nil, err
	}
	m.Version++
	info, err := writeSegment(dir, segmentFile(m.Version), batch, 0, batch.NumRows())
	if err != nil {
		return nil, err
	}
	m.Rows += batch.NumRows()
	m.Segments = append(m.Segments, info)
	//scoded:lint-ignore lockbalance durable-before-visible: the fsync barrier must complete under s.mu so no contender observes unpublished state
	if err := s.swapManifest(dir, m); err != nil {
		return nil, err
	}
	s.lastFlush = time.Since(start)
	return m, nil
}

// SetMonitors rewrites a dataset's bound monitor definitions. The data
// version is unchanged — monitor metadata is not row data.
func (s *Store) SetMonitors(name string, defs []MonitorDef) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := filepath.Join(s.dir, datasetDir(name))
	m, err := readManifest(dir)
	if err != nil {
		return err
	}
	m.Monitors = defs
	//scoded:lint-ignore lockbalance durable-before-visible: the fsync barrier must complete under s.mu so no contender observes unpublished state
	return s.swapManifest(dir, m)
}

func (s *Store) swapManifest(dir string, m *Manifest) error {
	data, err := encodeManifest(m)
	if err != nil {
		return err
	}
	return writeFileAtomic(dir, manifestFile, data)
}

// Drop removes a dataset and everything under it.
func (s *Store) Drop(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := filepath.Join(s.dir, datasetDir(name))
	if _, err := os.Stat(filepath.Join(dir, manifestFile)); err != nil {
		return err
	}
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	//scoded:lint-ignore lockbalance durable-before-visible: the fsync barrier must complete under s.mu so no contender observes unpublished state
	return syncDir(s.dir)
}

// Scan streams a dataset's segments in manifest order, invoking fn once
// per decoded segment. Only one segment is resident at a time, which is
// what lets materialization (and future shard-local processing) handle
// datasets larger than any single allocation comfortably.
func (s *Store) Scan(name string, fn func(*Segment) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	dir := filepath.Join(s.dir, datasetDir(name))
	m, err := readManifest(dir)
	if err != nil {
		return err
	}
	return scanSegments(dir, m, fn)
}

func scanSegments(dir string, m *Manifest, fn func(*Segment) error) error {
	for _, si := range m.Segments {
		data, err := os.ReadFile(filepath.Join(dir, si.File))
		if err != nil {
			return err
		}
		seg, err := decodeSegment(data)
		if err != nil {
			return fmt.Errorf("store: segment %s: %w", si.File, err)
		}
		if seg.Rows != si.Rows {
			return fmt.Errorf("store: segment %s holds %d rows, manifest says %d", si.File, seg.Rows, si.Rows)
		}
		if err := fn(seg); err != nil {
			return err
		}
	}
	return nil
}

// Load materializes a dataset into a relation by streaming its segments
// through a relation.Builder, and returns it with the manifest it was
// built from. The result is bit-identical to building the relation from
// the original full-column data: the builder re-interns categorical
// chunks, preserving global first-occurrence code order.
func (s *Store) Load(name string) (*relation.Relation, *Manifest, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	dir := filepath.Join(s.dir, datasetDir(name))
	m, err := readManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	rel, err := materialize(dir, m)
	if err != nil {
		return nil, nil, err
	}
	return rel, m, nil
}

func materialize(dir string, m *Manifest) (*relation.Relation, error) {
	names := make([]string, len(m.Schema))
	kinds := make([]relation.Kind, len(m.Schema))
	for i, c := range m.Schema {
		names[i] = c.Name
		kinds[i] = relation.Numeric
		if c.Kind == ColKindCategorical {
			kinds[i] = relation.Categorical
		}
	}
	b, err := relation.NewBuilder(names, kinds)
	if err != nil {
		return nil, err
	}
	err = scanSegments(dir, m, func(seg *Segment) error {
		if len(seg.Cols) != len(m.Schema) {
			return fmt.Errorf("store: segment has %d columns, schema has %d", len(seg.Cols), len(m.Schema))
		}
		for i, col := range seg.Cols {
			want := m.Schema[i]
			if col.Name != want.Name || col.Kind != want.Kind {
				return fmt.Errorf("store: segment column %d is %s %q, schema has %s %q",
					i, col.Kind, col.Name, want.Kind, want.Name)
			}
			var err error
			if col.Kind == ColKindCategorical {
				err = b.AppendCoded(col.Name, col.Dict, col.Codes)
			} else {
				err = b.AppendFloats(col.Name, col.Floats)
			}
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rel, err := b.Build()
	if err != nil {
		return nil, err
	}
	if rel.NumRows() != m.Rows {
		return nil, fmt.Errorf("store: materialized %d rows, manifest says %d", rel.NumRows(), m.Rows)
	}
	return rel, nil
}

// Compact rewrites a dataset's segments into a single segment. The data —
// row order, values, categorical code order — is unchanged, and so is the
// version: compaction is invisible to version-keyed caches, whose entries
// stay warm across it. It returns the new manifest.
func (s *Store) Compact(name string) (*Manifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	dir := filepath.Join(s.dir, datasetDir(name))
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if len(m.Segments) <= 1 {
		return m, nil
	}
	rel, err := materialize(dir, m)
	if err != nil {
		return nil, err
	}
	// The compacted file must not collide with any live segment name, so it
	// is suffixed distinctly from the version-named appends.
	file := fmt.Sprintf("%s%016x-compact%s", segmentPrefix, m.Version, segmentSuffix)
	info, err := writeSegment(dir, file, rel, 0, rel.NumRows())
	if err != nil {
		return nil, err
	}
	old := m.Segments
	m.Segments = []SegmentInfo{info}
	//scoded:lint-ignore lockbalance durable-before-visible: the fsync barrier must complete under s.mu so no contender observes unpublished state
	if err := s.swapManifest(dir, m); err != nil {
		return nil, err
	}
	for _, seg := range old {
		if seg.File != file {
			os.Remove(filepath.Join(dir, seg.File))
		}
	}
	s.lastFlush = time.Since(start)
	return m, nil
}

// DatasetCheck is Verify's per-dataset result.
type DatasetCheck struct {
	Name     string
	Version  uint64
	Segments int
	Rows     int
	Bytes    int64
	// Err holds the first integrity problem found, nil when clean.
	Err error
}

// Verify decodes every segment of every dataset (CRC, bounds, schema and
// row-count agreement with the manifest) and reports per-dataset results.
func (s *Store) Verify() ([]DatasetCheck, error) {
	names, err := s.Datasets()
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	checks := make([]DatasetCheck, 0, len(names))
	for _, name := range names {
		dir := filepath.Join(s.dir, datasetDir(name))
		c := DatasetCheck{Name: name}
		m, err := readManifest(dir)
		if err != nil {
			c.Err = err
			checks = append(checks, c)
			continue
		}
		c.Version, c.Segments, c.Rows = m.Version, len(m.Segments), m.Rows
		for _, seg := range m.Segments {
			c.Bytes += seg.Bytes
		}
		if _, err := materialize(dir, m); err != nil {
			c.Err = err
		}
		checks = append(checks, c)
	}
	return checks, nil
}

// Stats summarizes the store for the /metrics endpoint.
type Stats struct {
	// Datasets counts dataset directories (monitor logs excluded).
	Datasets int
	// Segments and Bytes total over all datasets and monitor logs.
	Segments int
	Bytes    int64
	// LastFlush is the duration of the most recent durable mutation; zero
	// when the store has not been written to since opening.
	LastFlush time.Duration
}

// Stats walks the store and returns aggregate gauges.
func (s *Store) Stats() (Stats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var st Stats
	st.LastFlush = s.lastFlush
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return st, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		isDS := strings.HasPrefix(e.Name(), datasetPrefix)
		if !isDS && !strings.HasPrefix(e.Name(), logPrefix) {
			continue
		}
		m, err := readManifest(filepath.Join(s.dir, e.Name()))
		if err != nil {
			return st, fmt.Errorf("store: stats: %s: %w", e.Name(), err)
		}
		if isDS {
			st.Datasets++
		}
		st.Segments += len(m.Segments)
		for _, seg := range m.Segments {
			st.Bytes += seg.Bytes
		}
	}
	return st, nil
}

// Registry reads the root registry, returning an empty one when the file
// does not exist yet.
func (s *Store) Registry() (*Registry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, err := os.ReadFile(filepath.Join(s.dir, registryFile))
	if os.IsNotExist(err) {
		return &Registry{Format: manifestFormat}, nil
	}
	if err != nil {
		return nil, err
	}
	var r Registry
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("store: decoding registry: %w", err)
	}
	if r.Format != manifestFormat {
		return nil, fmt.Errorf("store: unsupported registry format %d", r.Format)
	}
	return &r, nil
}

// SaveRegistry durably replaces the root registry.
func (s *Store) SaveRegistry(r *Registry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.Format = manifestFormat
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	//scoded:lint-ignore lockbalance durable-before-visible: the fsync barrier must complete under s.mu so no contender observes unpublished state
	return writeFileAtomic(s.dir, registryFile, append(data, '\n'))
}
