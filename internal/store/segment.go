package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"scoded/internal/relation"
)

// Segment binary format (all integers little-endian):
//
//	magic    [4]byte  "SCSG"
//	format   uint16   currently 1
//	ncols    uint32
//	nrows    uint32
//	ncols ×:
//	  nameLen uint16, name bytes
//	  kind    uint8   0 = categorical, 1 = numeric
//	  categorical: dictN uint32, dictN × (len uint32, bytes),
//	               nrows × uint32 codes
//	  numeric:     nrows × uint64 float64 bits
//	crc      uint32   IEEE CRC-32 of every preceding byte
//
// Segments are immutable once written: a crashed writer leaves either a
// temp file (never referenced) or a fully renamed file whose CRC seals it.
// The decoder validates every length against the remaining input before
// allocating, so corrupt or adversarial bytes fail with an error instead
// of a panic or an absurd allocation (FuzzSegment pins that contract).

const (
	segmentMagic  = "SCSG"
	segmentFormat = 1

	kindCategorical = 0
	kindNumeric     = 1
)

// Segment is one decoded columnar segment: a batch of rows for every
// column of a dataset, in schema order.
type Segment struct {
	// Rows is the record count of the batch.
	Rows int
	// Cols holds the column blocks in schema order.
	Cols []SegmentColumn
}

// SegmentColumn is one column's slice of a segment.
type SegmentColumn struct {
	Name string
	// Kind is "categorical" or "numeric".
	Kind string
	// Dict and Codes hold categorical data (Codes index into Dict).
	Dict  []string
	Codes []uint32
	// Floats holds numeric data.
	Floats []float64
}

// encodeSegment serializes the given row range [lo, hi) of a relation.
func encodeSegment(rel *relation.Relation, lo, hi int) ([]byte, error) {
	if lo < 0 || hi > rel.NumRows() || lo > hi {
		return nil, fmt.Errorf("store: segment row range [%d,%d) out of [0,%d)", lo, hi, rel.NumRows())
	}
	nrows := hi - lo
	var buf bytes.Buffer
	buf.WriteString(segmentMagic)
	writeU16(&buf, segmentFormat)
	writeU32(&buf, uint32(rel.NumCols()))
	writeU32(&buf, uint32(nrows))
	for _, name := range rel.Columns() {
		if len(name) > math.MaxUint16 {
			return nil, fmt.Errorf("store: column name %.20q... exceeds %d bytes", name, math.MaxUint16)
		}
		writeU16(&buf, uint16(len(name)))
		buf.WriteString(name)
		c := rel.MustColumn(name)
		if c.Kind == relation.Categorical {
			buf.WriteByte(kindCategorical)
			// Persist only the dictionary entries the range uses, remapped
			// densely in first-occurrence order, so a segment is
			// self-contained and reads identically whether materialized
			// alone or after earlier segments.
			remap := make(map[int]uint32)
			var dict []string
			codes := make([]uint32, nrows)
			for i := 0; i < nrows; i++ {
				code := c.Code(lo + i)
				dense, ok := remap[code]
				if !ok {
					dense = uint32(len(dict))
					remap[code] = dense
					dict = append(dict, c.StringAt(lo+i))
				}
				codes[i] = dense
			}
			writeU32(&buf, uint32(len(dict)))
			for _, v := range dict {
				writeU32(&buf, uint32(len(v)))
				buf.WriteString(v)
			}
			for _, code := range codes {
				writeU32(&buf, code)
			}
		} else {
			buf.WriteByte(kindNumeric)
			for i := lo; i < hi; i++ {
				writeU64(&buf, math.Float64bits(c.Value(i)))
			}
		}
	}
	sum := crc32.ChecksumIEEE(buf.Bytes())
	writeU32(&buf, sum)
	return buf.Bytes(), nil
}

// decodeSegment parses and validates a segment. It never panics: every
// length is checked against the remaining input before use.
func decodeSegment(data []byte) (*Segment, error) {
	if len(data) < len(segmentMagic)+2+4+4+4 {
		return nil, fmt.Errorf("store: segment too short (%d bytes)", len(data))
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("store: segment checksum mismatch (got %08x, want %08x)", got, want)
	}
	r := &byteReader{data: body}
	magic, err := r.bytes(4)
	if err != nil || string(magic) != segmentMagic {
		return nil, fmt.Errorf("store: bad segment magic %q", magic)
	}
	format, err := r.u16()
	if err != nil {
		return nil, err
	}
	if format != segmentFormat {
		return nil, fmt.Errorf("store: unsupported segment format %d", format)
	}
	ncols, err := r.u32()
	if err != nil {
		return nil, err
	}
	nrows, err := r.u32()
	if err != nil {
		return nil, err
	}
	// A column block is at least 3 bytes (empty name + kind); a categorical
	// column needs 4 bytes of dict count plus 4 per row; a numeric one 8
	// per row. Bound the declared counts by what the input could hold.
	if int64(ncols)*3 > int64(r.remaining()) {
		return nil, fmt.Errorf("store: segment declares %d columns in %d bytes", ncols, r.remaining())
	}
	seg := &Segment{Rows: int(nrows), Cols: make([]SegmentColumn, 0, ncols)}
	for ci := uint32(0); ci < ncols; ci++ {
		nameLen, err := r.u16()
		if err != nil {
			return nil, err
		}
		name, err := r.bytes(int(nameLen))
		if err != nil {
			return nil, err
		}
		kind, err := r.u8()
		if err != nil {
			return nil, err
		}
		col := SegmentColumn{Name: string(name)}
		switch kind {
		case kindCategorical:
			col.Kind = ColKindCategorical
			dictN, err := r.u32()
			if err != nil {
				return nil, err
			}
			if int64(dictN)*4 > int64(r.remaining()) {
				return nil, fmt.Errorf("store: column %q declares %d dictionary entries in %d bytes", col.Name, dictN, r.remaining())
			}
			col.Dict = make([]string, 0, dictN)
			for di := uint32(0); di < dictN; di++ {
				vlen, err := r.u32()
				if err != nil {
					return nil, err
				}
				v, err := r.bytes(int(vlen))
				if err != nil {
					return nil, err
				}
				col.Dict = append(col.Dict, string(v))
			}
			if int64(nrows)*4 > int64(r.remaining()) {
				return nil, fmt.Errorf("store: column %q declares %d rows in %d bytes", col.Name, nrows, r.remaining())
			}
			col.Codes = make([]uint32, nrows)
			for i := range col.Codes {
				code, err := r.u32()
				if err != nil {
					return nil, err
				}
				if code >= dictN {
					return nil, fmt.Errorf("store: column %q code %d out of dictionary range %d", col.Name, code, dictN)
				}
				col.Codes[i] = code
			}
		case kindNumeric:
			col.Kind = ColKindNumeric
			if int64(nrows)*8 > int64(r.remaining()) {
				return nil, fmt.Errorf("store: column %q declares %d rows in %d bytes", col.Name, nrows, r.remaining())
			}
			col.Floats = make([]float64, nrows)
			for i := range col.Floats {
				bits, err := r.u64()
				if err != nil {
					return nil, err
				}
				col.Floats[i] = math.Float64frombits(bits)
			}
		default:
			return nil, fmt.Errorf("store: column %q has unknown kind %d", col.Name, kind)
		}
		seg.Cols = append(seg.Cols, col)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("store: %d trailing bytes after segment body", r.remaining())
	}
	return seg, nil
}

// byteReader is a bounds-checked cursor over a byte slice.
type byteReader struct {
	data []byte
	off  int
}

func (r *byteReader) remaining() int { return len(r.data) - r.off }

func (r *byteReader) bytes(n int) ([]byte, error) {
	if n < 0 || n > r.remaining() {
		return nil, fmt.Errorf("store: truncated segment (need %d bytes, have %d)", n, r.remaining())
	}
	out := r.data[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *byteReader) u8() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *byteReader) u16() (uint16, error) {
	b, err := r.bytes(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *byteReader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *byteReader) u64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func writeU16(buf *bytes.Buffer, v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	buf.Write(b[:])
}

func writeU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func writeU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}
