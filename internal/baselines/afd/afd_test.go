package afd

import (
	"testing"

	"scoded/internal/ic"
	"scoded/internal/relation"
)

func hospLike() *relation.Relation {
	// Zip -> City holds except for row 4 (RHS typo). Row 6 has a LHS typo
	// (a mistyped zip that forms a singleton group) — invisible to the AFD
	// ranking.
	return relation.MustNew(
		relation.NewCategoricalColumn("Zip", []string{
			"97201", "97201", "97201", "97202", "97202", "97202", "9720X",
		}),
		relation.NewCategoricalColumn("City", []string{
			"Portland", "Portland", "Portland", "Salem", "Salme", "Salem", "Salem",
		}),
	)
}

func TestAFDRanksRHSTypos(t *testing.T) {
	d := hospLike()
	dt := &Detector{FDs: []ic.FD{{LHS: []string{"Zip"}, RHS: []string{"City"}}}}
	top, err := dt.TopK(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if top[0] != 4 {
		t.Errorf("top = %v, want the Salme typo row 4", top)
	}
}

func TestAFDBlindToLHSTypos(t *testing.T) {
	// The paper's Figure 12 point: a mistyped Zip lands in its own group
	// and scores zero violations.
	d := hospLike()
	dt := &Detector{FDs: []ic.FD{{LHS: []string{"Zip"}, RHS: []string{"City"}}}}
	scores, err := dt.Scores(d)
	if err != nil {
		t.Fatal(err)
	}
	if scores[6] != 0 {
		t.Errorf("LHS typo row scored %v; AFD should be blind to it", scores[6])
	}
}

func TestAFDMultipleFDs(t *testing.T) {
	d := relation.MustNew(
		relation.NewCategoricalColumn("Zip", []string{"1", "1", "2", "2"}),
		relation.NewCategoricalColumn("City", []string{"A", "B", "C", "C"}),
		relation.NewCategoricalColumn("State", []string{"S", "S", "T", "U"}),
	)
	dt := &Detector{FDs: []ic.FD{
		{LHS: []string{"Zip"}, RHS: []string{"City"}},
		{LHS: []string{"Zip"}, RHS: []string{"State"}},
	}}
	scores, err := dt.Scores(d)
	if err != nil {
		t.Fatal(err)
	}
	// Rows 0,1 violate the City FD; rows 2,3 violate the State FD.
	for i, s := range scores {
		if s == 0 {
			t.Errorf("row %d should have violations: %v", i, scores)
		}
	}
}

func TestAFDValidation(t *testing.T) {
	d := hospLike()
	empty := &Detector{}
	if _, err := empty.TopK(d, 1); err == nil {
		t.Error("want error for no FDs")
	}
	dt := &Detector{FDs: []ic.FD{{LHS: []string{"Zip"}, RHS: []string{"City"}}}}
	if _, err := dt.TopK(d, 0); err == nil {
		t.Error("want error for k=0")
	}
	if _, err := dt.TopK(d, 100); err == nil {
		t.Error("want error for k>n")
	}
	bad := &Detector{FDs: []ic.FD{{LHS: []string{"Zip"}, RHS: []string{"Nope"}}}}
	if _, err := bad.Scores(d); err == nil {
		t.Error("want error for missing column")
	}
}
