// Package afd implements the Approximate Functional Dependency baseline of
// Section 6.1 (Mandros et al. style): given an FD expected to hold
// approximately, rank each record by the number of FD violations it
// participates in — its "approximation-ratio benefit" — and return the
// top-k. As the paper's Figure 12 analysis notes, this ranking only reacts
// to right-hand-side disagreements within a left-hand-side group, so errors
// in the LHS column itself (a mistyped Zip that lands in its own singleton
// group) are invisible to it; the FD→DSC translation of Proposition 2 does
// not share this blind spot.
package afd

import (
	"fmt"

	"scoded/internal/baselines/dcdetect"
	"scoded/internal/ic"
	"scoded/internal/relation"
)

// Detector ranks records by approximate-FD violation benefit.
type Detector struct {
	FDs []ic.FD
}

// Scores returns each record's total FD-violation count over all FDs.
func (dt *Detector) Scores(d *relation.Relation) ([]float64, error) {
	if len(dt.FDs) == 0 {
		return nil, fmt.Errorf("afd: no functional dependencies configured")
	}
	scores := make([]float64, d.NumRows())
	for _, fd := range dt.FDs {
		counts, err := fd.ViolationCounts(d)
		if err != nil {
			return nil, err
		}
		for i, c := range counts {
			scores[i] += float64(c)
		}
	}
	return scores, nil
}

// TopK returns the k records with the highest FD-violation benefit.
func (dt *Detector) TopK(d *relation.Relation, k int) ([]int, error) {
	if k <= 0 || k > d.NumRows() {
		return nil, fmt.Errorf("afd: k=%d out of range (1..%d)", k, d.NumRows())
	}
	scores, err := dt.Scores(d)
	if err != nil {
		return nil, err
	}
	return dcdetect.TopKByScore(scores, k), nil
}
