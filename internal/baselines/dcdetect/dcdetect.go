// Package dcdetect implements the DCDetect baseline of Section 6.1: given
// one or more denial constraints, count for each record the number of other
// records it conflicts with, and return the top-k records by violation
// count. This is the paper's extension of the classical DC approach (which
// marks every record in any violation as dirty) to a ranked top-k detector.
package dcdetect

import (
	"fmt"
	"sort"

	"scoded/internal/ic"
	"scoded/internal/relation"
)

// Detector ranks records by denial-constraint violations.
type Detector struct {
	DCs []ic.DC
}

// Scores returns each record's total violation count summed over all
// constraints.
func (dt *Detector) Scores(d *relation.Relation) ([]float64, error) {
	if len(dt.DCs) == 0 {
		return nil, fmt.Errorf("dcdetect: no denial constraints configured")
	}
	scores := make([]float64, d.NumRows())
	for _, dc := range dt.DCs {
		counts, err := dc.Violations(d)
		if err != nil {
			return nil, err
		}
		for i, c := range counts {
			scores[i] += float64(c)
		}
	}
	return scores, nil
}

// TopK returns the k records with the highest violation counts, ties broken
// by record index for determinism.
func (dt *Detector) TopK(d *relation.Relation, k int) ([]int, error) {
	if k <= 0 || k > d.NumRows() {
		return nil, fmt.Errorf("dcdetect: k=%d out of range (1..%d)", k, d.NumRows())
	}
	scores, err := dt.Scores(d)
	if err != nil {
		return nil, err
	}
	return TopKByScore(scores, k), nil
}

// TopKByScore returns the indices of the k largest scores, ties broken by
// index. Shared by the baseline detectors.
func TopKByScore(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		//scoded:lint-ignore floatcmp comparator tie-break needs exact equality for a total order
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:k]
}
