package dcdetect

import (
	"testing"

	"scoded/internal/ic"
	"scoded/internal/relation"
)

func sensorPair() *relation.Relation {
	return relation.MustNew(
		relation.NewNumericColumn("T8", []float64{20, 21, 22, 23, 24}),
		relation.NewNumericColumn("T9", []float64{20.2, 21.1, 22.3, 10.0, 24.1}),
	)
}

func TestDetectorRanksOutlier(t *testing.T) {
	d := sensorPair()
	dt := &Detector{DCs: []ic.DC{ic.MonotoneDC("T8", "T9")}}
	top, err := dt.TopK(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if top[0] != 3 {
		t.Errorf("top record = %d, want the broken row 3", top[0])
	}
}

func TestDetectorMultipleConstraints(t *testing.T) {
	d := relation.MustNew(
		relation.NewNumericColumn("A", []float64{1, 2, 3, 4}),
		relation.NewNumericColumn("B", []float64{1, 2, 0, 4}),
		relation.NewNumericColumn("C", []float64{1, 2, 0, 4}),
	)
	dt := &Detector{DCs: []ic.DC{ic.MonotoneDC("A", "B"), ic.MonotoneDC("A", "C")}}
	scores, err := dt.Scores(d)
	if err != nil {
		t.Fatal(err)
	}
	if scores[2] <= scores[0] {
		t.Errorf("row 2 breaks both constraints, scores = %v", scores)
	}
}

func TestDetectorValidation(t *testing.T) {
	d := sensorPair()
	empty := &Detector{}
	if _, err := empty.TopK(d, 1); err == nil {
		t.Error("want error for no constraints")
	}
	dt := &Detector{DCs: []ic.DC{ic.MonotoneDC("T8", "T9")}}
	if _, err := dt.TopK(d, 0); err == nil {
		t.Error("want error for k=0")
	}
	if _, err := dt.TopK(d, 99); err == nil {
		t.Error("want error for k>n")
	}
	bad := &Detector{DCs: []ic.DC{ic.MonotoneDC("T8", "Missing")}}
	if _, err := bad.TopK(d, 1); err == nil {
		t.Error("want error for missing column")
	}
}

func TestTopKByScore(t *testing.T) {
	scores := []float64{1, 5, 5, 0, 3}
	got := TopKByScore(scores, 3)
	want := []int{1, 2, 4} // ties by index
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("TopKByScore = %v, want %v", got, want)
			break
		}
	}
}
