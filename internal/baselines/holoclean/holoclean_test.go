package holoclean

import (
	"testing"

	"scoded/internal/baselines/dcdetect"
	"scoded/internal/ic"
	"scoded/internal/relation"
)

func threeColumns() *relation.Relation {
	// Row 2 breaks the monotone pattern against both B and C; row 4 breaks
	// it only against B, but harder.
	return relation.MustNew(
		relation.NewNumericColumn("A", []float64{1, 2, 3, 4, 5, 6}),
		relation.NewNumericColumn("B", []float64{1, 2, 0, 4, 0.5, 6}),
		relation.NewNumericColumn("C", []float64{1, 2, 0, 4, 5, 6}),
	)
}

func TestSingleConstraintMatchesDCDetect(t *testing.T) {
	// The Figure 9(a) observation: with one constraint, DCDetect+HC and
	// DCDetect produce the same ranking.
	d := threeColumns()
	dcs := []ic.DC{ic.MonotoneDC("A", "B")}
	hc := &Detector{DCs: dcs}
	plain := &dcdetect.Detector{DCs: dcs}
	for k := 1; k <= 6; k++ {
		a, err := hc.TopK(d, k)
		if err != nil {
			t.Fatal(err)
		}
		b, err := plain.TopK(d, k)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("k=%d: rankings differ: %v vs %v", k, a, b)
			}
		}
	}
}

func TestMultiConstraintEvidencePooling(t *testing.T) {
	d := threeColumns()
	hc := &Detector{DCs: []ic.DC{ic.MonotoneDC("A", "B"), ic.MonotoneDC("A", "C")}}
	scores, err := hc.Scores(d)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range scores {
		// The record holding the per-constraint maximum scores exactly 1.
		if s < 0 || s > 1 {
			t.Errorf("score[%d] = %v out of [0,1]", i, s)
		}
	}
	// Row 2 is incriminated by both constraints and must outrank the
	// clean rows.
	if scores[2] <= scores[0] || scores[2] <= scores[5] {
		t.Errorf("doubly-incriminated row under-scored: %v", scores)
	}
}

func TestValidation(t *testing.T) {
	d := threeColumns()
	empty := &Detector{}
	if _, err := empty.TopK(d, 1); err == nil {
		t.Error("want error for no constraints")
	}
	dt := &Detector{DCs: []ic.DC{ic.MonotoneDC("A", "B")}}
	if _, err := dt.TopK(d, 0); err == nil {
		t.Error("want error for k=0")
	}
	if _, err := dt.TopK(d, 100); err == nil {
		t.Error("want error for k>n")
	}
}

func TestNoEvidenceConstraintSkipped(t *testing.T) {
	d := relation.MustNew(
		relation.NewNumericColumn("A", []float64{1, 2, 3}),
		relation.NewNumericColumn("B", []float64{1, 2, 3}),
	)
	dt := &Detector{DCs: []ic.DC{ic.MonotoneDC("A", "B")}}
	scores, err := dt.Scores(d)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range scores {
		if s != 0 {
			t.Errorf("clean data score[%d] = %v", i, s)
		}
	}
}
