// Package holoclean implements the DCDetect+HC baseline of Section 6.1: a
// HoloClean-style holistic refinement over DCDetect. Where DCDetect ranks
// records by raw violation counts per constraint, DCDetect+HC pools the
// evidence of multiple denial constraints probabilistically: each
// constraint's violation counts are converted to a per-record "probability
// of being dirty", and the per-constraint probabilities are combined with a
// noisy-or, so records incriminated by several constraints rank above
// records incriminated heavily by a single one. With a single constraint
// the noisy-or is monotone in the violation count, so the ranking degrades
// to DCDetect exactly — the behaviour Figure 9(a) observes.
package holoclean

import (
	"fmt"

	"scoded/internal/baselines/dcdetect"
	"scoded/internal/ic"
	"scoded/internal/relation"
)

// Detector pools denial-constraint evidence holistically.
type Detector struct {
	DCs []ic.DC
}

// Scores returns each record's noisy-or dirtiness score in [0, 1].
func (dt *Detector) Scores(d *relation.Relation) ([]float64, error) {
	if len(dt.DCs) == 0 {
		return nil, fmt.Errorf("holoclean: no denial constraints configured")
	}
	n := d.NumRows()
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = 1
	}
	for _, dc := range dt.DCs {
		counts, err := dc.Violations(d)
		if err != nil {
			return nil, err
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		if max == 0 {
			continue // constraint carries no evidence
		}
		for i, c := range counts {
			p := float64(c) / float64(max) // per-constraint P(dirty | c)
			scores[i] *= 1 - p
		}
	}
	for i := range scores {
		scores[i] = 1 - scores[i]
	}
	return scores, nil
}

// TopK returns the k records with the highest pooled dirtiness scores.
func (dt *Detector) TopK(d *relation.Relation, k int) ([]int, error) {
	if k <= 0 || k > d.NumRows() {
		return nil, fmt.Errorf("holoclean: k=%d out of range (1..%d)", k, d.NumRows())
	}
	scores, err := dt.Scores(d)
	if err != nil {
		return nil, err
	}
	return dcdetect.TopKByScore(scores, k), nil
}
