package dboost

import (
	"math"
	"math/rand"
	"testing"

	"scoded/internal/relation"
)

func TestGaussianModelFindsOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	n := 200
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	v[7] = 15 // gross outlier
	v[42] = -12
	d := relation.MustNew(relation.NewNumericColumn("X", v))
	dt := &Detector{Opts: Options{Model: Gaussian}}
	top, err := dt.TopK(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	found := map[int]bool{top[0]: true, top[1]: true}
	if !found[7] || !found[42] {
		t.Errorf("top2 = %v, want rows 7 and 42", top)
	}
}

func TestGMMModelBimodalData(t *testing.T) {
	// Two clusters at -5 and +5; a point at 0 is an outlier for a GMM but
	// looks perfectly normal to a single Gaussian.
	rng := rand.New(rand.NewSource(82))
	n := 300
	v := make([]float64, n)
	for i := range v {
		if i%2 == 0 {
			v[i] = -5 + 0.3*rng.NormFloat64()
		} else {
			v[i] = 5 + 0.3*rng.NormFloat64()
		}
	}
	v[10] = 0
	d := relation.MustNew(relation.NewNumericColumn("X", v))

	gmmTop, err := (&Detector{Opts: Options{Model: GMM, Components: 2}}).TopK(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gmmTop[0] != 10 {
		t.Errorf("GMM top = %v, want row 10", gmmTop)
	}
	gaussTop, err := (&Detector{Opts: Options{Model: Gaussian}}).TopK(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gaussTop[0] == 10 {
		t.Error("single Gaussian should NOT flag the between-modes point: it sits at the mean")
	}
}

func TestHistogramModelCategorical(t *testing.T) {
	vals := make([]string, 100)
	for i := range vals {
		vals[i] = "common"
	}
	vals[3] = "rare"
	d := relation.MustNew(relation.NewCategoricalColumn("C", vals))
	dt := &Detector{Opts: Options{Model: Histogram}}
	top, err := dt.TopK(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if top[0] != 3 {
		t.Errorf("top = %v, want row 3", top)
	}
}

func TestHistogramModelNumeric(t *testing.T) {
	v := make([]float64, 100)
	rng := rand.New(rand.NewSource(83))
	for i := range v {
		v[i] = rng.Float64() // uniform [0,1)
	}
	v[50] = 9.5 // isolated bin
	d := relation.MustNew(relation.NewNumericColumn("X", v))
	dt := &Detector{Opts: Options{Model: Histogram, Bins: 20}}
	top, err := dt.TopK(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if top[0] != 50 {
		t.Errorf("top = %v, want row 50", top)
	}
}

func TestMultiColumnScoresSum(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	n := 100
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	a[5] = 20
	b[5] = -20 // outlier in both columns
	a[9] = 20  // outlier in one column
	d := relation.MustNew(
		relation.NewNumericColumn("A", a),
		relation.NewNumericColumn("B", b),
	)
	dt := &Detector{Opts: Options{Model: Gaussian}}
	scores, err := dt.Scores(d)
	if err != nil {
		t.Fatal(err)
	}
	if scores[5] <= scores[9] {
		t.Errorf("double outlier should out-score single: %v vs %v", scores[5], scores[9])
	}
}

func TestColumnRestriction(t *testing.T) {
	d := relation.MustNew(
		relation.NewNumericColumn("A", []float64{0, 0, 0, 100}),
		relation.NewNumericColumn("B", []float64{100, 0, 0, 0}),
	)
	dt := &Detector{Opts: Options{Model: Gaussian, Columns: []string{"A"}}}
	top, err := dt.TopK(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if top[0] != 3 {
		t.Errorf("restricted detector should only see column A: %v", top)
	}
}

func TestDetectorValidation(t *testing.T) {
	d := relation.MustNew(relation.NewNumericColumn("A", []float64{1, 2}))
	dt := &Detector{}
	if _, err := dt.TopK(d, 0); err == nil {
		t.Error("want error for k=0")
	}
	if _, err := dt.TopK(d, 5); err == nil {
		t.Error("want error for k>n")
	}
	bad := &Detector{Opts: Options{Columns: []string{"Z"}}}
	if _, err := bad.TopK(d, 1); err == nil {
		t.Error("want error for missing column")
	}
	empty := relation.MustNew()
	if _, err := dt.Scores(empty); err == nil {
		t.Error("want error for empty relation")
	}
}

func TestConstantColumnScoresZero(t *testing.T) {
	d := relation.MustNew(relation.NewNumericColumn("A", []float64{5, 5, 5}))
	dt := &Detector{Opts: Options{Model: Gaussian}}
	scores, err := dt.Scores(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scores {
		if s != 0 {
			t.Errorf("constant column scores = %v", scores)
		}
	}
}

func TestFitGMMRecoversComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	n := 2000
	v := make([]float64, n)
	for i := range v {
		if rng.Float64() < 0.3 {
			v[i] = -4 + 0.5*rng.NormFloat64()
		} else {
			v[i] = 3 + 1.0*rng.NormFloat64()
		}
	}
	g := fitGMM(v, 2, rng)
	// One component near -4 with weight ~0.3, one near 3 with weight ~0.7.
	lo, hi := 0, 1
	if g.mean[lo] > g.mean[hi] {
		lo, hi = hi, lo
	}
	if math.Abs(g.mean[lo]+4) > 0.5 || math.Abs(g.mean[hi]-3) > 0.5 {
		t.Errorf("means = %v, want ~[-4, 3]", g.mean)
	}
	if math.Abs(g.weight[lo]-0.3) > 0.08 {
		t.Errorf("weights = %v, want ~[0.3, 0.7]", g.weight)
	}
}

func TestFitGMMDegenerateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	// Constant data must not produce NaNs.
	g := fitGMM([]float64{2, 2, 2, 2}, 3, rng)
	for i := range g.mean {
		if math.IsNaN(g.mean[i]) || math.IsNaN(g.sd[i]) || g.sd[i] <= 0 {
			t.Errorf("degenerate fit: %+v", g)
		}
	}
	// k > n clamps.
	g = fitGMM([]float64{1, 2}, 5, rng)
	if len(g.mean) > 2 {
		t.Errorf("k should clamp to n: %d components", len(g.mean))
	}
	// Density at a data point must be positive and finite; with n=2 the
	// components lock tightly onto the points, so probe there.
	if d := g.density(1); math.IsNaN(d) || d <= 0 {
		t.Errorf("density at data point = %v", d)
	}
}

func TestModelString(t *testing.T) {
	if Gaussian.String() != "gaussian" || GMM.String() != "gmm" || Histogram.String() != "histogram" {
		t.Error("model names wrong")
	}
	if Model(7).String() == "" {
		t.Error("unknown model should render")
	}
}
