// Package dboost implements the DBoost baseline of Section 6.1 (Mariet et
// al.): tuple-expansion outlier detection with three per-column models —
// Gaussian, 1-D Gaussian mixture (fit with EM), and histogram — whose
// per-column outlier scores are summed into a per-record score. Unlike
// SCODED it is driven entirely by the data: it derives its models from the
// (possibly dirty) input and flags low-likelihood tuples, with no way for a
// user to assert cross-column (in)dependence.
package dboost

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"scoded/internal/baselines/dcdetect"
	"scoded/internal/relation"
	"scoded/internal/stats"
)

// Model selects the per-column outlier model.
type Model int

const (
	// Gaussian scores values by their squared z-score.
	Gaussian Model = iota
	// GMM fits a univariate Gaussian mixture by EM and scores values by
	// negative log-likelihood.
	GMM
	// Histogram scores values by the negative log frequency of their bin
	// (categorical columns use their category, numeric columns fixed-width
	// bins).
	Histogram
	// Correlated is dBoost's tuple-expansion idea: for every pair of
	// numeric columns in scope it fits a least-squares line and scores
	// each record by its squared standardized residual, flagging records
	// that break the cross-column correlation the (dirty) data implies.
	// Categorical columns still use the histogram model.
	Correlated
)

// String names the model.
func (m Model) String() string {
	switch m {
	case Gaussian:
		return "gaussian"
	case GMM:
		return "gmm"
	case Histogram:
		return "histogram"
	case Correlated:
		return "correlated"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Options configures the detector.
type Options struct {
	// Model is the per-column model; Gaussian by default.
	Model Model
	// Columns restricts scoring to the named columns (all by default).
	Columns []string
	// Components is the GMM mixture size; defaults to 3 (the paper's
	// n_subpops setting).
	Components int
	// Bins is the histogram bin count for numeric columns; defaults to 10.
	Bins int
	// Rng seeds the GMM initialisation; a fixed default keeps runs
	// reproducible.
	Rng *rand.Rand
}

func (o Options) withDefaults() Options {
	if o.Components <= 0 {
		o.Components = 3
	}
	if o.Bins <= 1 {
		o.Bins = 10
	}
	if o.Rng == nil {
		o.Rng = rand.New(rand.NewSource(1))
	}
	return o
}

// Detector is a DBoost-style outlier detector.
type Detector struct {
	Opts Options
}

// Scores returns each record's outlier score: the sum over scored columns
// of the column model's per-value surprise.
func (dt *Detector) Scores(d *relation.Relation) ([]float64, error) {
	opts := dt.Opts.withDefaults()
	cols := opts.Columns
	if len(cols) == 0 {
		cols = d.Columns()
	}
	n := d.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("dboost: empty relation")
	}
	scores := make([]float64, n)
	var numericCols []*relation.Column
	for _, name := range cols {
		col, err := d.Column(name)
		if err != nil {
			return nil, err
		}
		if col.Kind == relation.Numeric {
			numericCols = append(numericCols, col)
		}
		var colScores []float64
		switch {
		case col.Kind == relation.Categorical:
			colScores = histogramScoresCategorical(col)
		case opts.Model == Gaussian:
			colScores = gaussianScores(col.Floats())
		case opts.Model == GMM:
			colScores = gmmScores(col.Floats(), opts.Components, opts.Rng)
		case opts.Model == Correlated:
			continue // handled pairwise below
		default:
			colScores = histogramScoresNumeric(col.Floats(), opts.Bins)
		}
		for i, s := range colScores {
			scores[i] += s
		}
	}
	if opts.Model == Correlated {
		for i := 0; i < len(numericCols); i++ {
			for j := i + 1; j < len(numericCols); j++ {
				for r, s := range residualScores(numericCols[i].Floats(), numericCols[j].Floats()) {
					scores[r] += s
				}
			}
		}
	}
	return scores, nil
}

// residualScores fits y = a + b·x by least squares and returns each
// record's squared standardized residual. A constant x column scores zero.
func residualScores(x, y []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	mx, my := stats.Mean(x), stats.Mean(y)
	var sxx, sxy float64
	for i := 0; i < n; i++ {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx <= 0 {
		return out
	}
	b := sxy / sxx
	a := my - b*mx
	res := make([]float64, n)
	for i := 0; i < n; i++ {
		res[i] = y[i] - (a + b*x[i])
	}
	sd := stats.StdDev(res)
	if sd <= 0 {
		return out
	}
	for i := 0; i < n; i++ {
		z := res[i] / sd
		out[i] = z * z
	}
	return out
}

// TopK returns the k records with the highest outlier scores.
func (dt *Detector) TopK(d *relation.Relation, k int) ([]int, error) {
	if k <= 0 || k > d.NumRows() {
		return nil, fmt.Errorf("dboost: k=%d out of range (1..%d)", k, d.NumRows())
	}
	scores, err := dt.Scores(d)
	if err != nil {
		return nil, err
	}
	return dcdetect.TopKByScore(scores, k), nil
}

func gaussianScores(v []float64) []float64 {
	mu := stats.Mean(v)
	sd := stats.StdDev(v)
	out := make([]float64, len(v))
	if sd <= 0 {
		return out
	}
	for i, x := range v {
		z := (x - mu) / sd
		out[i] = z * z
	}
	return out
}

func histogramScoresCategorical(c *relation.Column) []float64 {
	counts := make(map[int]int)
	for i := 0; i < c.Len(); i++ {
		counts[c.Code(i)]++
	}
	n := float64(c.Len())
	out := make([]float64, c.Len())
	for i := 0; i < c.Len(); i++ {
		out[i] = -math.Log(float64(counts[c.Code(i)]) / n)
	}
	return out
}

func histogramScoresNumeric(v []float64, bins int) []float64 {
	min, max := v[0], v[0]
	for _, x := range v {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	width := (max - min) / float64(bins)
	binOf := func(x float64) int {
		if width <= 0 {
			return 0
		}
		b := int((x - min) / width)
		if b >= bins {
			b = bins - 1
		}
		return b
	}
	counts := make([]int, bins)
	for _, x := range v {
		counts[binOf(x)]++
	}
	n := float64(len(v))
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = -math.Log(float64(counts[binOf(x)]) / n)
	}
	return out
}

// gmmScores fits a univariate Gaussian mixture with EM and returns each
// value's negative log-likelihood.
func gmmScores(v []float64, k int, rng *rand.Rand) []float64 {
	g := fitGMM(v, k, rng)
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = -math.Log(math.Max(g.density(x), 1e-300))
	}
	return out
}

// gmm is a univariate Gaussian mixture model.
type gmm struct {
	weight, mean, sd []float64
}

func (g *gmm) density(x float64) float64 {
	var p float64
	for i := range g.weight {
		p += g.weight[i] * stats.Normal{Mu: g.mean[i], Sigma: g.sd[i]}.PDF(x)
	}
	return p
}

// fitGMM runs EM from a quantile-spread initialisation. Components whose
// variance collapses are re-inflated to a floor tied to the data scale, the
// standard EM degeneracy guard.
func fitGMM(v []float64, k int, rng *rand.Rand) *gmm {
	n := len(v)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	sorted := append([]float64(nil), v...)
	sort.Float64s(sorted)
	scale := stats.StdDev(v)
	if scale <= 0 {
		scale = 1
	}
	floor := 1e-3 * scale

	g := &gmm{
		weight: make([]float64, k),
		mean:   make([]float64, k),
		sd:     make([]float64, k),
	}
	for i := 0; i < k; i++ {
		g.weight[i] = 1 / float64(k)
		// Quantile init with a tiny jitter to break exact ties.
		g.mean[i] = sorted[(2*i+1)*n/(2*k)] + 1e-9*scale*rng.Float64()
		g.sd[i] = scale
	}

	resp := make([][]float64, n)
	for i := range resp {
		resp[i] = make([]float64, k)
	}
	prevLL := math.Inf(-1)
	for iter := 0; iter < 200; iter++ {
		// E step.
		var ll float64
		for i, x := range v {
			var total float64
			for j := 0; j < k; j++ {
				p := g.weight[j] * stats.Normal{Mu: g.mean[j], Sigma: g.sd[j]}.PDF(x)
				resp[i][j] = p
				total += p
			}
			if total < 1e-300 {
				total = 1e-300
			}
			for j := 0; j < k; j++ {
				resp[i][j] /= total
			}
			ll += math.Log(total)
		}
		if ll-prevLL < 1e-8*math.Abs(prevLL)+1e-12 && iter > 0 {
			break
		}
		prevLL = ll
		// M step.
		for j := 0; j < k; j++ {
			var nj, mu float64
			for i, x := range v {
				nj += resp[i][j]
				mu += resp[i][j] * x
			}
			if nj < 1e-10 {
				// Dead component: re-seed at a random data point.
				g.mean[j] = v[rng.Intn(n)]
				g.sd[j] = scale
				g.weight[j] = 1e-3
				continue
			}
			mu /= nj
			var va float64
			for i, x := range v {
				va += resp[i][j] * (x - mu) * (x - mu)
			}
			va /= nj
			sd := math.Sqrt(va)
			if sd < floor {
				sd = floor
			}
			g.weight[j] = nj / float64(n)
			g.mean[j] = mu
			g.sd[j] = sd
		}
		// Renormalise weights (guards the dead-component branch).
		var wsum float64
		for _, w := range g.weight {
			wsum += w
		}
		for j := range g.weight {
			g.weight[j] /= wsum
		}
	}
	return g
}
