package oocorebench

import "testing"

// TestStreamedMatchesResident pins the benchmark's own correctness gate
// without paying for testing.Benchmark's timing loops: the stored workload
// is built, checked resident, and both streamed granularities must agree
// bit for bit (assertIdentical panics otherwise).
func TestStreamedMatchesResident(t *testing.T) {
	dir := t.TempDir()
	sw, m, err := newStoredWorkload(42, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) != 3 {
		t.Fatalf("got %d segments, want 3", len(m.Segments))
	}
	resident, err := sw.w.Run(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, window := range []int{0, windowRows, 613} {
		str, err := sw.streamer(m, window)
		if err != nil {
			t.Fatalf("window %d: %v", window, err)
		}
		assertIdentical(resident, sw.checkStream(str))
	}
}
