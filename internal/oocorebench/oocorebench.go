// Package oocorebench measures the out-of-core detection path (DESIGN.md
// section 16) against the resident one: cmd/scoded-bench -json -suite
// oocore runs exactly this workload and writes BENCH_oocore.json.
//
// The workload is detectbench's canonical 20000-row, 21-constraint family
// persisted to a throwaway store as three segments. Four variants are
// measured: the steady-state resident CheckAll (relation and kernel cache
// already in memory), the cold materialize-then-check path (what a lazy
// first touch pays), and the streamed CheckAllStream at whole-segment and
// sub-segment window granularity (what a dataset over the resident budget
// pays instead of materializing). Every streamed run is asserted
// bit-identical to the resident results before timing begins.
package oocorebench

import (
	"context"
	"fmt"
	"math"
	"os"
	"testing"

	"scoded/internal/detect"
	"scoded/internal/detectbench"
	"scoded/internal/kernel"
	"scoded/internal/relation"
	"scoded/internal/store"
)

// windowRows is the sub-segment window granularity of the fourth variant:
// small enough that every segment splits into many windows, large enough
// to amortize the per-window decode.
const windowRows = 2048

// BenchResult is one measurement in BENCH_oocore.json.
type BenchResult struct {
	// Name identifies the variant: checkall_resident (relation and cache
	// in memory), checkall_materialize (store load + uncached CheckAll per
	// iteration — the lazy cold-miss cost), checkall_stream_segment
	// (CheckAllStream over whole segments), or checkall_stream_window
	// (CheckAllStream over 2048-row windows).
	Name        string `json:"name"`
	Iters       int    `json:"iters"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

// Report is the machine-readable content of BENCH_oocore.json.
type Report struct {
	Seed        int64 `json:"seed"`
	Rows        int   `json:"rows"`
	Columns     int   `json:"columns"`
	Constraints int   `json:"constraints"`
	// Workers is the resident CheckAll pool size; the streamed path is
	// sequential by construction (one scan pass per constraint).
	Workers int `json:"workers"`
	// DiskBytes is the stored dataset's on-disk segment size.
	DiskBytes int64         `json:"disk_bytes"`
	Segments  int           `json:"segments"`
	Results   []BenchResult `json:"results"`
	// StreamOverheadVsResident is streamed (whole-segment) ns/op divided
	// by resident ns/op: the wall-clock price of never materializing.
	StreamOverheadVsResident float64 `json:"stream_overhead_vs_resident"`
	// MaterializeBytesVsStreamScan is materialize bytes/op divided by one
	// streamed scan's bytes (whole-segment bytes/op over the constraint
	// count). The streamed path re-scans per constraint, so its total churn
	// exceeds one materialization; what stays bounded — and what this ratio
	// sizes — is the transient footprint of a single pass versus decoding
	// the whole relation at once.
	MaterializeBytesVsStreamScan float64 `json:"materialize_bytes_vs_stream_scan"`
}

// storedWorkload is the benchmark input: the in-memory workload plus its
// three-segment persisted form.
type storedWorkload struct {
	w  *detectbench.Workload
	st *store.Store
}

// newStoredWorkload persists the canonical workload into a fresh store
// under dir as three segments (replace + two appends).
func newStoredWorkload(seed int64, dir string) (*storedWorkload, *store.Manifest, error) {
	w := detectbench.NewWorkload(seed)
	st, err := store.Open(dir)
	if err != nil {
		return nil, nil, err
	}
	n := w.Rel.NumRows()
	cut1, cut2 := n/2, 3*n/4
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	if _, err := st.Replace("bench", w.Rel.Subset(rows[:cut1])); err != nil {
		return nil, nil, err
	}
	if _, err := st.Append("bench", w.Rel.Subset(rows[cut1:cut2])); err != nil {
		return nil, nil, err
	}
	m, err := st.Append("bench", w.Rel.Subset(rows[cut2:]))
	if err != nil {
		return nil, nil, err
	}
	return &storedWorkload{w: w, st: st}, m, nil
}

// streamer builds a kernel.Streamer over the stored dataset at the given
// window granularity (0 = whole segments).
func (sw *storedWorkload) streamer(m *store.Manifest, window int) (*kernel.Streamer, error) {
	cols := make([]kernel.StreamColumn, len(m.Schema))
	for i, c := range m.Schema {
		kind := relation.Numeric
		if c.Kind == store.ColKindCategorical {
			kind = relation.Categorical
		}
		cols[i] = kernel.StreamColumn{Name: c.Name, Kind: kind}
	}
	return kernel.NewStreamer(kernel.StreamSource{
		Columns: cols,
		Rows:    m.Rows,
		Scan: func(ctx context.Context, fn func(*store.Segment) error) error {
			return sw.st.ScanChunks(ctx, "bench", window, fn)
		},
	})
}

// checkStream runs the family through CheckAllStream, panicking on any
// per-constraint error so a broken run cannot be timed.
func (sw *storedWorkload) checkStream(str *kernel.Streamer) []detect.Result {
	results, err := detect.CheckAllStream(context.Background(), str, sw.w.Family, detect.BatchOptions{})
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		if r.Err != nil {
			panic(r.Err)
		}
	}
	return results
}

// assertIdentical panics unless the streamed results match the resident
// ones bit for bit — the correctness contract the benchmark rides on.
func assertIdentical(resident, streamed []detect.Result) {
	if len(resident) != len(streamed) {
		panic(fmt.Sprintf("oocorebench: %d streamed results, want %d", len(streamed), len(resident)))
	}
	for i := range resident {
		a, b := resident[i].Test, streamed[i].Test
		if math.Float64bits(a.Statistic) != math.Float64bits(b.Statistic) ||
			math.Float64bits(a.P) != math.Float64bits(b.P) ||
			a.DF != b.DF || a.N != b.N ||
			resident[i].Violated != streamed[i].Violated {
			panic(fmt.Sprintf("oocorebench: constraint %d diverged: resident %+v, streamed %+v",
				i, a, b))
		}
	}
}

// Bench measures the four variants and derives the headline ratios.
// Workers ≤ 0 means GOMAXPROCS for the resident pool.
func Bench(seed int64, workers int) (Report, error) {
	dir, err := os.MkdirTemp("", "scoded-oocore-*")
	if err != nil {
		return Report{}, err
	}
	defer os.RemoveAll(dir)
	sw, m, err := newStoredWorkload(seed, dir)
	if err != nil {
		return Report{}, err
	}
	rep := Report{
		Seed:        seed,
		Rows:        sw.w.Rel.NumRows(),
		Columns:     len(sw.w.Rel.Columns()),
		Constraints: len(sw.w.Family),
		Workers:     workers,
		Segments:    len(m.Segments),
	}
	for _, seg := range m.Segments {
		rep.DiskBytes += seg.Bytes
	}

	// Correctness first: both streamed granularities must reproduce the
	// resident results exactly.
	cache := kernel.New(sw.w.Rel)
	resident, err := sw.w.Run(cache, workers)
	if err != nil {
		return Report{}, err
	}
	segStreamer, err := sw.streamer(m, 0)
	if err != nil {
		return Report{}, err
	}
	winStreamer, err := sw.streamer(m, windowRows)
	if err != nil {
		return Report{}, err
	}
	assertIdentical(resident, sw.checkStream(segStreamer))
	assertIdentical(resident, sw.checkStream(winStreamer))

	variants := []struct {
		name string
		run  func(b *testing.B)
	}{
		{"checkall_resident", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sw.w.Run(cache, workers); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"checkall_materialize", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rel, _, err := sw.st.Load("bench")
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sw.w.RunOn(rel, nil, workers); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"checkall_stream_segment", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sw.checkStream(segStreamer)
			}
		}},
		{"checkall_stream_window", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sw.checkStream(winStreamer)
			}
		}},
	}
	byName := make(map[string]BenchResult, len(variants))
	for _, v := range variants {
		r := testing.Benchmark(v.run)
		br := BenchResult{
			Name:        v.name,
			Iters:       r.N,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		rep.Results = append(rep.Results, br)
		byName[v.name] = br
	}
	if res := byName["checkall_resident"]; res.NsPerOp > 0 {
		rep.StreamOverheadVsResident = float64(byName["checkall_stream_segment"].NsPerOp) / float64(res.NsPerOp)
	}
	if str := byName["checkall_stream_segment"]; str.BytesPerOp > 0 && rep.Constraints > 0 {
		perScan := float64(str.BytesPerOp) / float64(rep.Constraints)
		rep.MaterializeBytesVsStreamScan = float64(byName["checkall_materialize"].BytesPerOp) / perScan
	}
	return rep, nil
}
