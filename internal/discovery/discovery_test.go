package discovery

import (
	"math/rand"
	"testing"

	"scoded/internal/bayes"
	"scoded/internal/relation"
	"scoded/internal/sc"
)

func testRelation(seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	n := 800
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	cat := make([]string, n)
	for i := 0; i < n; i++ {
		x[i] = rng.NormFloat64()
		y[i] = x[i] + 0.2*rng.NormFloat64() // strong dependence with X
		z[i] = rng.NormFloat64()            // independent of everything
		if x[i] > 0 {
			cat[i] = "hi"
		} else {
			cat[i] = "lo"
		}
	}
	return relation.MustNew(
		relation.NewNumericColumn("X", x),
		relation.NewNumericColumn("Y", y),
		relation.NewNumericColumn("Z", z),
		relation.NewCategoricalColumn("C", cat),
	)
}

func TestCorrelationMatrixShape(t *testing.T) {
	d := testRelation(71)
	m, err := CorrelationMatrix(d, []string{"X", "Y", "Z", "C"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Values {
		if m.Values[i][i] != 1 {
			t.Errorf("diagonal[%d] = %v", i, m.Values[i][i])
		}
		for j := range m.Values[i] {
			if m.Values[i][j] != m.Values[j][i] {
				t.Errorf("matrix not symmetric at (%d,%d)", i, j)
			}
			if m.Values[i][j] < 0 || m.Values[i][j] > 1 {
				t.Errorf("value out of [0,1]: %v", m.Values[i][j])
			}
		}
	}
	xy, _ := m.At("X", "Y")
	xz, _ := m.At("X", "Z")
	if xy < 0.7 {
		t.Errorf("X-Y association = %v, want strong", xy)
	}
	if xz > 0.1 {
		t.Errorf("X-Z association = %v, want near zero", xz)
	}
	// Mixed numeric/categorical pair: C is a threshold of X, so should be
	// strongly associated.
	xc, _ := m.At("X", "C")
	if xc < 0.5 {
		t.Errorf("X-C association = %v, want strong", xc)
	}
	if _, err := m.At("X", "Nope"); err == nil {
		t.Error("want error for unknown column")
	}
}

func TestCorrelationMatrixErrors(t *testing.T) {
	d := testRelation(72)
	if _, err := CorrelationMatrix(d, []string{"Missing"}, 4); err == nil {
		t.Error("want error for missing column")
	}
}

func TestSuggestFromMatrix(t *testing.T) {
	d := testRelation(73)
	m, err := CorrelationMatrix(d, []string{"X", "Y", "Z"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	sugg := SuggestFromMatrix(m, 0.1, 0.5)
	var foundDep, foundIndep bool
	for _, s := range sugg {
		if s.SC.Equivalent(sc.MustParse("X ~||~ Y")) {
			foundDep = true
			if s.Strength < 0.5 {
				t.Errorf("dep suggestion strength = %v", s.Strength)
			}
		}
		if s.SC.Equivalent(sc.MustParse("X _||_ Z")) {
			foundIndep = true
		}
	}
	if !foundDep {
		t.Error("missing DSC suggestion X ~||~ Y")
	}
	if !foundIndep {
		t.Error("missing ISC suggestion X _||_ Z")
	}
}

func TestImpliedSCsFigure1(t *testing.T) {
	// The Figure 1(b) network: Model -> Color, Model -> Price,
	// Price -> Fuel.
	g := bayes.MustNewDAG([]string{"Model", "Color", "Price", "Fuel"})
	g.AddEdge("Model", "Color")
	g.AddEdge("Model", "Price")
	g.AddEdge("Price", "Fuel")

	scs, err := ImpliedSCs(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"Color _||_ Price | Model": true, // the paper's example
		"Color ~||~ Model":         true,
		"Model ~||~ Price":         true,
		"Color _||_ Fuel | Model":  true,
		"Fuel ~||~ Price":          true,
	}
	found := make(map[string]bool)
	for _, c := range scs {
		for w := range want {
			if c.Equivalent(sc.MustParse(w)) {
				found[w] = true
			}
		}
	}
	for w := range want {
		if !found[w] {
			t.Errorf("implied SCs missing %s", w)
		}
	}
}

func TestImpliedSCsMarginalOnly(t *testing.T) {
	g := bayes.MustNewDAG([]string{"A", "B", "C"})
	g.AddEdge("A", "B")
	scs, err := ImpliedSCs(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 3 pairs, one statement each.
	if len(scs) != 3 {
		t.Fatalf("got %d SCs: %v", len(scs), scs)
	}
	for _, c := range scs {
		if !c.IsMarginal() {
			t.Errorf("maxCond=0 produced conditional SC %v", c)
		}
	}
}

func TestRankFeatures(t *testing.T) {
	// The intro scenario: a RowID-like column is independent of the
	// target, a real feature is not.
	rng := rand.New(rand.NewSource(74))
	n := 600
	rowID := make([]float64, n)
	model := make([]string, n)
	price := make([]float64, n)
	for i := 0; i < n; i++ {
		rowID[i] = float64(i)
		m := rng.Intn(3)
		model[i] = []string{"bmw", "prius", "civic"}[m]
		price[i] = float64(m)*10 + rng.NormFloat64()
	}
	d := relation.MustNew(
		relation.NewNumericColumn("RowID", rowID),
		relation.NewCategoricalColumn("Model", model),
		relation.NewNumericColumn("Price", price),
	)
	ranked, err := RankFeatures(d, "Price", []string{"RowID", "Model"}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 2 {
		t.Fatalf("ranked = %v", ranked)
	}
	if ranked[0].Feature != "Model" || !ranked[0].Relevant {
		t.Errorf("Model should rank first and relevant: %+v", ranked[0])
	}
	if !ranked[0].SC.Equivalent(sc.MustParse("Model ~||~ Price")) {
		t.Errorf("Model suggestion = %v", ranked[0].SC)
	}
	if ranked[1].Feature != "RowID" || ranked[1].Relevant {
		t.Errorf("RowID should rank last and irrelevant: %+v", ranked[1])
	}
	if !ranked[1].SC.Equivalent(sc.MustParse("RowID _||_ Price")) {
		t.Errorf("RowID suggestion = %v", ranked[1].SC)
	}
}

func TestRankFeaturesErrors(t *testing.T) {
	d := testRelation(75)
	if _, err := RankFeatures(d, "Nope", []string{"X"}, 0.05); err == nil {
		t.Error("want error for missing target")
	}
	if _, err := RankFeatures(d, "X", []string{"X"}, 0.05); err == nil {
		t.Error("want error for target listed as feature")
	}
	if _, err := RankFeatures(d, "X", []string{"Y"}, 2); err == nil {
		t.Error("want error for bad alpha")
	}
	if _, err := RankFeatures(d, "X", []string{"Missing"}, 0.05); err == nil {
		t.Error("want error for missing feature")
	}
}

func TestSubsetsUpTo(t *testing.T) {
	got := subsetsUpTo([]string{"a", "b", "c"}, 2)
	// C(3,0)+C(3,1)+C(3,2) = 1+3+3 = 7
	if len(got) != 7 {
		t.Fatalf("subsets = %v", got)
	}
	seen := make(map[string]bool)
	for _, s := range got {
		key := ""
		for _, v := range s {
			key += v + ","
		}
		if seen[key] {
			t.Errorf("duplicate subset %v", s)
		}
		seen[key] = true
		if len(s) > 2 {
			t.Errorf("oversized subset %v", s)
		}
	}
}
