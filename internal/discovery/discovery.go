// Package discovery implements SCODED's SC Discovery component (Section 3,
// Figure 1): statistical data profiling via a correlation matrix, and
// deriving candidate SCs from a Bayesian network with d-separation.
//
// The paper does not propose new discovery machinery — it reuses standard
// statistical tooling — so this package provides the two workflows the
// paper's Figure 1 illustrates: (a) a Kendall-tau / Cramér's-V correlation
// matrix whose extreme cells suggest marginal SCs, and (b) conditional SCs
// read off a (learned or hand-built) Bayesian network by d-separation.
package discovery

import (
	"fmt"
	"math"
	"sort"

	"scoded/internal/bayes"
	"scoded/internal/detect"
	"scoded/internal/relation"
	"scoded/internal/sc"
	"scoded/internal/stats"
)

// Matrix is a symmetric association matrix over a column list, with values
// in [0, 1]: 0 means no detectable association, 1 maximal.
type Matrix struct {
	Cols   []string
	Values [][]float64
}

// At returns the association between two columns by name.
func (m *Matrix) At(a, b string) (float64, error) {
	ia, ib := -1, -1
	for i, c := range m.Cols {
		if c == a {
			ia = i
		}
		if c == b {
			ib = i
		}
	}
	if ia < 0 || ib < 0 {
		return 0, fmt.Errorf("discovery: matrix lacks column %q or %q", a, b)
	}
	return m.Values[ia][ib], nil
}

// CorrelationMatrix profiles the dataset as in Figure 1(a): numeric pairs
// use |Kendall tau-b| (the paper's choice); pairs involving a categorical
// column use Cramér's V computed from the Pearson chi-squared statistic
// (numeric columns are quantile-discretized into `bins` bins first).
func CorrelationMatrix(d *relation.Relation, cols []string, bins int) (*Matrix, error) {
	if bins <= 1 {
		bins = 4
	}
	for _, c := range cols {
		if !d.HasColumn(c) {
			return nil, fmt.Errorf("discovery: no column %q", c)
		}
	}
	m := &Matrix{Cols: append([]string(nil), cols...)}
	m.Values = make([][]float64, len(cols))
	for i := range m.Values {
		m.Values[i] = make([]float64, len(cols))
		m.Values[i][i] = 1
	}
	for i := 0; i < len(cols); i++ {
		for j := i + 1; j < len(cols); j++ {
			v, err := pairAssociation(d, cols[i], cols[j], bins)
			if err != nil {
				return nil, err
			}
			m.Values[i][j] = v
			m.Values[j][i] = v
		}
	}
	return m, nil
}

func pairAssociation(d *relation.Relation, a, b string, bins int) (float64, error) {
	ca := d.MustColumn(a)
	cb := d.MustColumn(b)
	if ca.Kind == relation.Numeric && cb.Kind == relation.Numeric {
		k, err := stats.Kendall(ca.Floats(), cb.Floats())
		if err != nil {
			return 0, err
		}
		return math.Abs(k.TauB), nil
	}
	xc, kx := codesOf(d, a, bins)
	yc, ky := codesOf(d, b, bins)
	return stats.CramersV(stats.TableFromCodes(xc, yc, kx, ky))
}

func codesOf(d *relation.Relation, name string, bins int) ([]int32, int) {
	c := d.MustColumn(name)
	if c.Kind == relation.Categorical {
		codes := make([]int32, c.Len())
		for i := range codes {
			codes[i] = int32(c.Code(i))
		}
		return codes, c.Cardinality()
	}
	return quantileCodes(c.Floats(), bins)
}

// quantileCodes is a local copy of quantile binning to avoid a dependency
// cycle with the detect package.
func quantileCodes(vals []float64, bins int) ([]int32, int) {
	n := len(vals)
	if n == 0 {
		return nil, 0
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	var edges []float64
	for b := 1; b < bins; b++ {
		e := sorted[b*n/bins]
		if len(edges) == 0 || e > edges[len(edges)-1] {
			edges = append(edges, e)
		}
	}
	codes := make([]int32, n)
	for i, v := range vals {
		c := sort.SearchFloat64s(edges, v)
		//scoded:lint-ignore floatcmp bin edges are copied data values, so edge membership is exact
		if c < len(edges) && v == edges[c] {
			c++
		}
		codes[i] = int32(c)
	}
	remap := make(map[int32]int32)
	for i, c := range codes {
		dense, ok := remap[c]
		if !ok {
			dense = int32(len(remap))
			remap[c] = dense
		}
		codes[i] = dense
	}
	return codes, len(remap)
}

// Suggestion is a candidate SC produced by profiling, with the association
// strength that motivated it.
type Suggestion struct {
	SC       sc.SC
	Strength float64
}

// SuggestFromMatrix proposes marginal SCs from a correlation matrix: pairs
// with association at or above depThreshold become DSC candidates, pairs at
// or below indepThreshold become ISC candidates. The caller (a data
// scientist, per the paper) vets them against domain knowledge.
func SuggestFromMatrix(m *Matrix, indepThreshold, depThreshold float64) []Suggestion {
	var out []Suggestion
	for i := 0; i < len(m.Cols); i++ {
		for j := i + 1; j < len(m.Cols); j++ {
			v := m.Values[i][j]
			x, y := []string{m.Cols[i]}, []string{m.Cols[j]}
			switch {
			case v >= depThreshold:
				out = append(out, Suggestion{SC: sc.Dependence(x, y, nil), Strength: v})
			case v <= indepThreshold:
				out = append(out, Suggestion{SC: sc.Independence(x, y, nil), Strength: v})
			}
		}
	}
	return out
}

// FeatureRelevance is one feature's relationship to the prediction target,
// the paper's introductory scenario ("she needs to first understand the
// (in)dependence relationship between each feature and the target
// variable": RowID ⊥ Price says RowID cannot predict Price; Model ⊥̸ Price
// says Model is a good feature).
type FeatureRelevance struct {
	// Feature is the candidate column.
	Feature string
	// Test is the independence-test result against the target.
	Test stats.TestResult
	// Relevant is true when the test rejects independence at the given
	// alpha — the feature carries signal about the target.
	Relevant bool
	// SC is the suggested constraint to enforce going forward: a DSC for
	// relevant features, an ISC for irrelevant ones.
	SC sc.SC
}

// RankFeatures tests every candidate feature against the target and
// returns the features sorted by ascending p-value (most relevant first),
// each with the SC a data scientist would pin down as domain knowledge.
// Numeric pairs use Kendall's tau; other pairs the G-test with quantile
// binning.
func RankFeatures(d *relation.Relation, target string, features []string, alpha float64) ([]FeatureRelevance, error) {
	if !d.HasColumn(target) {
		return nil, fmt.Errorf("discovery: no target column %q", target)
	}
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("discovery: alpha %v out of (0,1)", alpha)
	}
	out := make([]FeatureRelevance, 0, len(features))
	for _, f := range features {
		if f == target {
			return nil, fmt.Errorf("discovery: target %q listed as a feature", target)
		}
		res, err := detect.Check(d, sc.Approximate{
			SC:    sc.Independence([]string{f}, []string{target}, nil),
			Alpha: alpha,
		}, detect.Options{})
		if err != nil {
			return nil, err
		}
		fr := FeatureRelevance{Feature: f, Test: res.Test, Relevant: res.Violated}
		if fr.Relevant {
			fr.SC = sc.Dependence([]string{f}, []string{target}, nil)
		} else {
			fr.SC = sc.Independence([]string{f}, []string{target}, nil)
		}
		out = append(out, fr)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Test.P < out[j].Test.P })
	return out, nil
}

// ImpliedSCs derives the SCs a Bayesian network implies, as in Figure 1(b):
// for every ordered-insensitive pair (X, Y) and every conditioning set Z of
// size at most maxCond over the remaining nodes, d-separation yields an ISC
// and d-connection a DSC. The output grows combinatorially in maxCond; 0
// gives marginal constraints only.
func ImpliedSCs(g *bayes.DAG, maxCond int) ([]sc.SC, error) {
	nodes := g.Nodes()
	var out []sc.SC
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			x, y := nodes[i], nodes[j]
			rest := make([]string, 0, len(nodes)-2)
			for _, n := range nodes {
				if n != x && n != y {
					rest = append(rest, n)
				}
			}
			for _, z := range subsetsUpTo(rest, maxCond) {
				sep, err := g.DSeparated([]string{x}, []string{y}, z)
				if err != nil {
					return nil, err
				}
				if sep {
					out = append(out, sc.Independence([]string{x}, []string{y}, z))
				} else {
					out = append(out, sc.Dependence([]string{x}, []string{y}, z))
				}
			}
		}
	}
	return out, nil
}

// subsetsUpTo enumerates subsets of v with size <= k, in deterministic
// order (by size, then lexicographic index order).
func subsetsUpTo(v []string, k int) [][]string {
	out := [][]string{nil}
	var cur []string
	var rec func(start, remaining int)
	rec = func(start, remaining int) {
		if remaining == 0 {
			return
		}
		for i := start; i < len(v); i++ {
			cur = append(cur, v[i])
			out = append(out, append([]string(nil), cur...))
			rec(i+1, remaining-1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0, k)
	return out
}
