package stream

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"scoded/internal/stats"
)

func TestCategoricalMonitorMatchesBatchG(t *testing.T) {
	// The incrementally maintained G must equal the batch G at every step.
	rng := rand.New(rand.NewSource(1))
	m, err := NewCategoricalMonitor(0.05, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	var xs, ys []int32
	levels := []string{"a", "b", "c"}
	for step := 0; step < 300; step++ {
		xi, yi := rng.Intn(3), rng.Intn(3)
		m.Insert(levels[xi], levels[yi])
		xs = append(xs, int32(xi))
		ys = append(ys, int32(yi))
		want := stats.GStatistic(stats.TableFromCodes(xs, ys, 3, 3))
		if math.Abs(m.G()-want) > 1e-8*(1+want) {
			t.Fatalf("step %d: incremental G=%v, batch G=%v", step, m.G(), want)
		}
	}
	v := m.Verdict()
	batch, err := stats.GTest(stats.TableFromCodes(xs, ys, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.P-batch.P) > 1e-9 {
		t.Errorf("p mismatch: %v vs %v", v.P, batch.P)
	}
	if v.DF != batch.DF {
		t.Errorf("df mismatch: %d vs %d", v.DF, batch.DF)
	}
}

func TestCategoricalMonitorRemove(t *testing.T) {
	m, _ := NewCategoricalMonitor(0.05, false, 0)
	m.Insert("a", "p")
	m.Insert("a", "q")
	m.Insert("b", "p")
	if err := m.Remove("a", "q"); err != nil {
		t.Fatal(err)
	}
	if m.N() != 2 {
		t.Errorf("N = %d", m.N())
	}
	if err := m.Remove("a", "q"); err == nil {
		t.Error("removing an absent record should error")
	}
	// Removing everything returns to the empty state.
	m.Remove("a", "p")
	m.Remove("b", "p")
	if m.N() != 0 || m.G() != 0 {
		t.Errorf("empty monitor: n=%d g=%v", m.N(), m.G())
	}
	v := m.Verdict()
	if v.P != 1 || v.Violated {
		t.Errorf("empty verdict: %+v", v)
	}
}

func TestCategoricalMonitorWindowEviction(t *testing.T) {
	m, _ := NewCategoricalMonitor(0.05, false, 10)
	// First 10 records are perfectly dependent, next 10 independent-ish;
	// after the window slides the early dependence must be forgotten.
	for i := 0; i < 10; i++ {
		m.Insert("a", "p")
	}
	if m.N() != 10 {
		t.Fatalf("N = %d", m.N())
	}
	for i := 0; i < 10; i++ {
		m.Insert([]string{"a", "b"}[i%2], []string{"p", "q"}[(i/2)%2])
	}
	if m.N() != 10 {
		t.Errorf("window should cap N at 10, got %d", m.N())
	}
	// The monitor now contains only the second batch.
	if m.rowMarg["a"]+m.rowMarg["b"] != 10 {
		t.Errorf("marginals out of sync: %v", m.rowMarg)
	}
	if err := m.Remove("a", "p"); err == nil {
		t.Error("Remove must be rejected on a windowed monitor")
	}
}

func TestCategoricalMonitorDetectsDriftingDependence(t *testing.T) {
	// ML-deployment scenario: training-time independence holds, then the
	// stream drifts into dependence; the monitor should flip to violated.
	rng := rand.New(rand.NewSource(2))
	m, _ := NewCategoricalMonitor(0.01, false, 500)
	for i := 0; i < 500; i++ {
		m.Insert([]string{"a", "b"}[rng.Intn(2)], []string{"p", "q"}[rng.Intn(2)])
	}
	if m.Verdict().Violated {
		t.Fatalf("independent phase flagged (p=%v)", m.Verdict().P)
	}
	for i := 0; i < 500; i++ {
		x := []string{"a", "b"}[rng.Intn(2)]
		y := "p"
		if x == "b" {
			y = "q"
		}
		m.Insert(x, y)
	}
	if !m.Verdict().Violated {
		t.Errorf("dependent phase not flagged (p=%v)", m.Verdict().P)
	}
}

func TestNumericMonitorMatchesBatchKendall(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := NewNumericMonitor(0.05, false, 0)
		if err != nil {
			return false
		}
		var xs, ys []float64
		for step := 0; step < 60; step++ {
			x := float64(rng.Intn(6)) // heavy ties
			y := float64(rng.Intn(6))
			m.Insert(x, y)
			xs = append(xs, x)
			ys = append(ys, y)
		}
		batch, err := stats.Kendall(xs, ys)
		if err != nil {
			return false
		}
		if m.PairSum() != float64(batch.Concordant-batch.Discordant) {
			return false
		}
		if math.Abs(m.TauB()-batch.TauB) > 1e-12 {
			return false
		}
		v := m.Verdict()
		return math.Abs(v.P-batch.P) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNumericMonitorWindowMatchesBatchOnSuffix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const window = 40
	m, _ := NewNumericMonitor(0.05, true, window)
	var xs, ys []float64
	for step := 0; step < 150; step++ {
		x := rng.NormFloat64()
		y := x + rng.NormFloat64()
		m.Insert(x, y)
		xs = append(xs, x)
		ys = append(ys, y)
	}
	sx := xs[len(xs)-window:]
	sy := ys[len(ys)-window:]
	batch, err := stats.Kendall(sx, sy)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != window {
		t.Fatalf("N = %d", m.N())
	}
	if m.PairSum() != float64(batch.Concordant-batch.Discordant) {
		t.Errorf("windowed pair sum %v, batch %v", m.PairSum(), batch.Concordant-batch.Discordant)
	}
	if math.Abs(m.Verdict().P-batch.P) > 1e-12 {
		t.Errorf("windowed p %v, batch %v", m.Verdict().P, batch.P)
	}
}

func TestNumericMonitorDSCSemantics(t *testing.T) {
	// A DSC monitor over a dependent stream stays satisfied, then a run of
	// constant (imputed) values severs the dependence and violates it.
	rng := rand.New(rand.NewSource(4))
	m, _ := NewNumericMonitor(0.3, true, 100)
	for i := 0; i < 100; i++ {
		x := rng.NormFloat64()
		m.Insert(x, 2*x+0.2*rng.NormFloat64())
	}
	if m.Verdict().Violated {
		t.Fatalf("dependent stream flagged (p=%v)", m.Verdict().P)
	}
	for i := 0; i < 100; i++ {
		m.Insert(rng.NormFloat64(), 0) // constant imputation
	}
	if !m.Verdict().Violated {
		t.Errorf("imputed stream not flagged (p=%v, tau=%v)", m.Verdict().P, m.TauB())
	}
}

func TestNumericMonitorEdgeCases(t *testing.T) {
	m, _ := NewNumericMonitor(0.05, false, 0)
	v := m.Verdict()
	if v.P != 1 {
		t.Errorf("empty monitor p = %v", v.P)
	}
	m.Insert(1, 1)
	if v := m.Verdict(); v.P != 1 {
		t.Errorf("single point p = %v", v.P)
	}
	// All-tied data has zero variance.
	m.Insert(1, 1)
	m.Insert(1, 1)
	if v := m.Verdict(); v.P != 1 {
		t.Errorf("degenerate p = %v", v.P)
	}
}

func TestMonitorConstructorValidation(t *testing.T) {
	if _, err := NewCategoricalMonitor(-1, false, 0); err == nil {
		t.Error("want error for bad alpha")
	}
	if _, err := NewCategoricalMonitor(0.05, false, -1); err == nil {
		t.Error("want error for negative window")
	}
	if _, err := NewNumericMonitor(2, false, 0); err == nil {
		t.Error("want error for bad alpha")
	}
	if _, err := NewNumericMonitor(0.05, false, -1); err == nil {
		t.Error("want error for negative window")
	}
	if _, err := NewConditionalMonitor(7, false, 0, 0); err == nil {
		t.Error("want error for bad alpha")
	}
}

func TestConditionalMonitorStrata(t *testing.T) {
	// Dependence inside each stratum; the combined verdict should satisfy
	// the DSC, and a drifted stratum alone should not mask it.
	rng := rand.New(rand.NewSource(5))
	m, err := NewConditionalMonitor(0.3, true, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		z := []string{"s1", "s2"}[rng.Intn(2)]
		x := []string{"a", "b"}[rng.Intn(2)]
		y := "p"
		if x == "b" {
			y = "q"
		}
		if rng.Float64() < 0.2 {
			y = []string{"p", "q"}[rng.Intn(2)]
		}
		m.Insert(z, x, y)
	}
	v := m.Verdict()
	if v.Violated {
		t.Errorf("dependent strata flagged (p=%v)", v.P)
	}
	if v.N != 600 {
		t.Errorf("N = %d", v.N)
	}

	// An all-independent monitor violates the DSC.
	m2, _ := NewConditionalMonitor(0.3, true, 0, 5)
	for i := 0; i < 600; i++ {
		m2.Insert("s1", []string{"a", "b"}[rng.Intn(2)], []string{"p", "q"}[rng.Intn(2)])
	}
	if !m2.Verdict().Violated {
		t.Errorf("independent stream should violate the DSC (p=%v)", m2.Verdict().P)
	}
}

func TestConditionalNumericMonitor(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m, err := NewConditionalNumericMonitor(0.3, true, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Dependence within each of two strata (with opposite slopes: the
	// |z| combination must not cancel — each stratum's statistic enters
	// with its own sign, so verify same-sign strata here).
	for i := 0; i < 400; i++ {
		z := []string{"s1", "s2"}[rng.Intn(2)]
		x := rng.NormFloat64()
		m.Insert(z, x, x+0.5*rng.NormFloat64())
	}
	v := m.Verdict()
	if v.Violated {
		t.Errorf("dependent strata flagged (p=%v)", v.P)
	}
	if v.N != 400 {
		t.Errorf("N = %d", v.N)
	}

	// Independent strata violate the DSC.
	m2, _ := NewConditionalNumericMonitor(0.3, true, 0, 5)
	for i := 0; i < 400; i++ {
		m2.Insert("s1", rng.NormFloat64(), rng.NormFloat64())
	}
	if !m2.Verdict().Violated {
		t.Errorf("independent stream should violate the DSC (p=%v)", m2.Verdict().P)
	}

	// Too-small strata are excluded.
	m3, _ := NewConditionalNumericMonitor(0.05, false, 0, 10)
	for i := 0; i < 5; i++ {
		m3.Insert("tiny", float64(i), float64(i))
	}
	if v := m3.Verdict(); v.P != 1 || v.Violated {
		t.Errorf("small stratum should be excluded: %+v", v)
	}
	if _, err := NewConditionalNumericMonitor(-1, false, 0, 0); err == nil {
		t.Error("want error for bad alpha")
	}
}

func TestConditionalNumericMonitorMatchesBatchStouffer(t *testing.T) {
	// The combined z must equal the batch detector's Stouffer combination
	// on identical per-stratum data.
	rng := rand.New(rand.NewSource(9))
	m, _ := NewConditionalNumericMonitor(0.05, false, 0, 5)
	strata := map[string][][2]float64{}
	for i := 0; i < 300; i++ {
		z := []string{"a", "b", "c"}[rng.Intn(3)]
		x := rng.NormFloat64()
		y := 0.3*x + rng.NormFloat64()
		m.Insert(z, x, y)
		strata[z] = append(strata[z], [2]float64{x, y})
	}
	var zs []float64
	var ns []int
	for _, key := range []string{"a", "b", "c"} {
		pts := strata[key]
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, p := range pts {
			xs[i], ys[i] = p[0], p[1]
		}
		k, err := stats.Kendall(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		zs = append(zs, k.Z)
		ns = append(ns, len(pts))
	}
	wantZ, wantP, err := stats.StoufferZ(zs, ns)
	if err != nil {
		t.Fatal(err)
	}
	v := m.Verdict()
	if math.Abs(v.Statistic-wantZ) > 1e-9 || math.Abs(v.P-wantP) > 1e-9 {
		t.Errorf("monitor z=%v p=%v, batch z=%v p=%v", v.Statistic, v.P, wantZ, wantP)
	}
}

func TestConditionalMonitorSmallStrataExcluded(t *testing.T) {
	m, _ := NewConditionalMonitor(0.05, false, 0, 5)
	// Three tiny strata, each below the minimum: the verdict must be
	// evidence-free.
	for i := 0; i < 4; i++ {
		m.Insert("s1", "a", "p")
		m.Insert("s2", "b", "q")
	}
	v := m.Verdict()
	if v.P != 1 || v.DF != 0 {
		t.Errorf("small strata should be excluded: %+v", v)
	}
}

func TestTieTrackerAggregates(t *testing.T) {
	tr := newTieTracker()
	for _, v := range []float64{1, 1, 1, 2, 2, 3} {
		tr.add(v)
	}
	// Groups: 3 and 2. pairs = 3 + 1 = 4; s1 = 6 + 2 = 8;
	// s2 = 6 + 0 = 6; vT = 3·2·11 + 2·1·9 = 84.
	if tr.pairs != 4 || tr.s1 != 8 || tr.s2 != 6 || tr.vT != 84 {
		t.Errorf("aggregates = %+v", tr)
	}
	tr.remove(1)
	// Groups now 2 and 2: pairs 2, s1 4, s2 0, vT 36.
	if tr.pairs != 2 || tr.s1 != 4 || tr.s2 != 0 || tr.vT != 36 {
		t.Errorf("after remove: %+v", tr)
	}
	tr.remove(3) // removing a singleton leaves aggregates unchanged
	if tr.pairs != 2 {
		t.Errorf("singleton removal changed pairs: %+v", tr)
	}
}

func TestCategoricalMonitorFullWindowTurnover(t *testing.T) {
	// Slide the window through three complete turnovers of its content.
	// After each one the incrementally maintained G — now the survivor of
	// dozens of add/remove deltas — must agree with a from-scratch
	// recomputation over exactly the resident records, and the verdict
	// must match a fresh monitor fed only those records.
	const w = 32
	rng := rand.New(rand.NewSource(11))
	m, _ := NewCategoricalMonitor(0.05, false, w)
	levels := []string{"a", "b", "c", "d"}
	var hx, hy []string // full history
	for step := 0; step < 3*w; step++ {
		x := levels[rng.Intn(4)]
		y := levels[rng.Intn(4)]
		if step >= w && step < 2*w {
			y = x // a dependent middle phase, fully evicted by the end
		}
		m.Insert(x, y)
		hx = append(hx, x)
		hy = append(hy, y)

		if m.N() > w {
			t.Fatalf("step %d: window overflow N=%d", step, m.N())
		}
		// From-scratch recomputation over the resident suffix.
		lo := 0
		if len(hx) > w {
			lo = len(hx) - w
		}
		fresh, _ := NewCategoricalMonitor(0.05, false, 0)
		for i := lo; i < len(hx); i++ {
			fresh.Insert(hx[i], hy[i])
		}
		if math.Abs(m.G()-fresh.G()) > 1e-8*(1+fresh.G()) {
			t.Fatalf("step %d: incremental G=%v, from-scratch G=%v", step, m.G(), fresh.G())
		}
		mv, fv := m.Verdict(), fresh.Verdict()
		if math.Abs(mv.P-fv.P) > 1e-9 || mv.DF != fv.DF || mv.Violated != fv.Violated {
			t.Fatalf("step %d: verdict %+v, from-scratch %+v", step, mv, fv)
		}
	}
	// The dependent middle phase is long gone: the final window holds only
	// independent draws.
	if v := m.Verdict(); v.Violated {
		t.Errorf("evicted dependence still visible: %+v", v)
	}
}

func TestCategoricalMonitorEvictToDegenerateWindow(t *testing.T) {
	// Evict the entire varied content and replace it with a single
	// repeated pair: df collapses to 0 and the verdict must be the
	// no-evidence p=1, not a stale statistic.
	const w = 8
	m, _ := NewCategoricalMonitor(0.05, false, w)
	for i := 0; i < w; i++ {
		m.Insert([]string{"a", "b"}[i%2], []string{"p", "q"}[(i/2)%2])
	}
	for i := 0; i < w; i++ {
		m.Insert("only", "one")
	}
	if m.N() != w {
		t.Fatalf("N=%d", m.N())
	}
	v := m.Verdict()
	if v.DF != 0 || v.P != 1 || v.Violated {
		t.Errorf("degenerate window verdict: %+v", v)
	}
	if g := m.G(); math.Abs(g) > 1e-9 {
		t.Errorf("G should collapse to 0 after turnover, got %v", g)
	}
	// Marginals must contain only the surviving value.
	if len(m.rowMarg) != 1 || len(m.colMarg) != 1 || m.rowMarg["only"] != w {
		t.Errorf("stale marginals after full eviction: %v / %v", m.rowMarg, m.colMarg)
	}
}

func TestNumericMonitorFullWindowTurnover(t *testing.T) {
	// Same discipline for the numeric monitor: after the window content
	// has fully turned over (twice), the pair sum, tau-b, and verdict must
	// equal a from-scratch monitor over the resident suffix.
	const w = 24
	rng := rand.New(rand.NewSource(12))
	m, _ := NewNumericMonitor(0.05, false, w)
	var hx, hy []float64
	for step := 0; step < 3*w; step++ {
		x := rng.NormFloat64()
		y := rng.NormFloat64()
		if step >= w && step < 2*w {
			y = x // dependent middle phase, fully evicted by the end
		}
		if step%5 == 0 && step > 0 {
			x = hx[step-1] // inject ties so the tie trackers are exercised
		}
		m.Insert(x, y)
		hx = append(hx, x)
		hy = append(hy, y)

		lo := 0
		if len(hx) > w {
			lo = len(hx) - w
		}
		fresh, _ := NewNumericMonitor(0.05, false, 0)
		for i := lo; i < len(hx); i++ {
			fresh.Insert(hx[i], hy[i])
		}
		if math.Abs(m.PairSum()-fresh.PairSum()) > 1e-9 {
			t.Fatalf("step %d: pair sum %v, from-scratch %v", step, m.PairSum(), fresh.PairSum())
		}
		if math.Abs(m.TauB()-fresh.TauB()) > 1e-9 {
			t.Fatalf("step %d: tau-b %v, from-scratch %v", step, m.TauB(), fresh.TauB())
		}
		mv, fv := m.Verdict(), fresh.Verdict()
		if math.Abs(mv.Statistic-fv.Statistic) > 1e-9 || math.Abs(mv.P-fv.P) > 1e-9 {
			t.Fatalf("step %d: verdict %+v, from-scratch %+v", step, mv, fv)
		}
	}
	if v := m.Verdict(); v.Violated {
		t.Errorf("evicted dependence still visible: %+v", v)
	}
}

func TestNumericMonitorEvictToConstantWindow(t *testing.T) {
	// Turn the whole window over to constant values: every pair ties, the
	// Kendall variance degenerates, and the verdict must fall back to the
	// no-evidence p=1 rather than dividing by zero.
	const w = 12
	m, _ := NewNumericMonitor(0.05, false, w)
	for i := 0; i < w; i++ {
		m.Insert(float64(i), float64(i)) // perfectly dependent
	}
	if v := m.Verdict(); !v.Violated {
		t.Fatalf("monotone window should violate, got %+v", v)
	}
	for i := 0; i < w; i++ {
		m.Insert(1, 1)
	}
	if m.N() != w {
		t.Fatalf("N=%d", m.N())
	}
	if m.PairSum() != 0 {
		t.Errorf("all-tied pair sum = %v", m.PairSum())
	}
	v := m.Verdict()
	if v.P != 1 || v.Violated || v.Statistic != 0 {
		t.Errorf("constant window verdict: %+v", v)
	}
}
