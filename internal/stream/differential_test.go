package stream

import (
	"context"
	"math"
	"testing"

	"scoded/internal/stats"
)

// This file is the differential test harness for the incremental kernels:
// random insert/evict sequences — full window turnover, heavy ties,
// duplicate keys — where the incremental monitor must agree with a
// from-scratch recompute of the same window at every single step. Two
// oracles are used: a fresh monitor fed only the current window contents
// (exercising the eviction path against the insert-only path, which the
// batch-agreement tests already pin), and the independent batch statistics
// in internal/stats.

// numericOracle rebuilds a monitor from scratch over the window contents.
func numericOracle(t *testing.T, alpha float64, xs, ys []float64) *NumericMonitor {
	t.Helper()
	m, err := NewNumericMonitor(alpha, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		m.Insert(xs[i], ys[i])
	}
	return m
}

// checkNumericStep compares the incremental monitor against both oracles
// on the current window.
func checkNumericStep(t *testing.T, step int, m *NumericMonitor, xs, ys []float64) {
	t.Helper()
	fresh := numericOracle(t, 0.05, xs, ys)
	if got, want := m.PairSum(), fresh.PairSum(); got != want {
		t.Fatalf("step %d: incremental pair sum %v, fresh recompute %v (n=%d)", step, got, want, len(xs))
	}
	if diff := math.Abs(m.TauB() - fresh.TauB()); diff > 1e-12 {
		t.Fatalf("step %d: TauB differs from fresh recompute by %g", step, diff)
	}
	mv, fv := m.Verdict(), fresh.Verdict()
	if diff := math.Abs(mv.Statistic - fv.Statistic); diff > 1e-12 {
		t.Fatalf("step %d: z differs from fresh recompute by %g", step, diff)
	}
	if diff := math.Abs(mv.P - fv.P); diff > 1e-12 {
		t.Fatalf("step %d: p differs from fresh recompute by %g", step, diff)
	}
	if mv.N != fv.N || mv.Violated != fv.Violated {
		t.Fatalf("step %d: verdict (n=%d violated=%v) vs fresh (n=%d violated=%v)",
			step, mv.N, mv.Violated, fv.N, fv.Violated)
	}
	if len(xs) >= 2 {
		batch, err := stats.Kendall(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := m.PairSum(), float64(batch.Concordant-batch.Discordant); got != want {
			t.Fatalf("step %d: incremental pair sum %v, batch Kendall %v", step, got, want)
		}
		if diff := math.Abs(m.TauB() - batch.TauB); diff > 1e-12 {
			t.Fatalf("step %d: TauB differs from batch Kendall by %g", step, diff)
		}
	}
}

// categoricalG recomputes G directly from the window contents with the
// same marginal decomposition the monitor maintains, summed fresh.
func categoricalOracle(t *testing.T, alpha float64, xs, ys []string) *CategoricalMonitor {
	t.Helper()
	m, err := NewCategoricalMonitor(alpha, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		m.Insert(xs[i], ys[i])
	}
	return m
}

func checkCategoricalStep(t *testing.T, step int, m *CategoricalMonitor, xs, ys []string) {
	t.Helper()
	fresh := categoricalOracle(t, 0.05, xs, ys)
	if m.N() != fresh.N() {
		t.Fatalf("step %d: n=%d, fresh %d", step, m.N(), fresh.N())
	}
	g, fg := m.G(), fresh.G()
	if diff := math.Abs(g - fg); diff > 1e-12*(1+math.Abs(fg)) {
		t.Fatalf("step %d: G %v differs from fresh recompute %v by %g", step, g, fg, math.Abs(g-fg))
	}
	mv, fv := m.Verdict(), fresh.Verdict()
	if mv.DF != fv.DF {
		t.Fatalf("step %d: df %d, fresh %d", step, mv.DF, fv.DF)
	}
	if diff := math.Abs(mv.P - fv.P); diff > 1e-12 {
		t.Fatalf("step %d: p differs from fresh recompute by %g", step, diff)
	}
	// Violated is a threshold decision; only compare when p is clearly on
	// one side of alpha.
	if math.Abs(mv.P-0.05) > 1e-9 && mv.Violated != fv.Violated {
		t.Fatalf("step %d: violated=%v, fresh %v (p=%v)", step, mv.Violated, fv.Violated, mv.P)
	}
}

// maxFuzzOps caps fuzz sequence length: every step runs an O(n log n)
// batch recompute, so longer inputs add cost, not coverage.
const maxFuzzOps = 300

// numericFromBytes decodes fuzz bytes into a value stream over a small
// alphabet, forcing ties and duplicate (x, y) keys.
func numericFromBytes(data []byte) (xs, ys []float64) {
	n := len(data) / 2
	if n > maxFuzzOps {
		n = maxFuzzOps
	}
	for i := 0; i < n; i++ {
		bx, by := data[2*i], data[2*i+1]
		// 16 distinct x values, 8 distinct y values; the top bit of by
		// couples y to x so the statistic is non-null on some windows.
		x := float64(bx % 16)
		y := float64(by % 8)
		if by >= 128 {
			y = x + float64(by%4)
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	return xs, ys
}

// FuzzNumericMonitorIncremental drives a windowed monitor through an
// arbitrary byte-derived stream and pins every step to the from-scratch
// oracles. The seeds replay the deterministic cases of stream_test.go:
// rank-correlated pairs, heavy ties, full window turnover.
func FuzzNumericMonitorIncremental(f *testing.F) {
	f.Add(uint8(8), []byte("seed-correlated-pairs-with-ties-0123456789"))
	f.Add(uint8(3), []byte{0, 0, 1, 1, 2, 2, 3, 3, 0, 0, 1, 1}) // duplicate keys, tiny window
	f.Add(uint8(5), []byte{255, 255, 254, 200, 130, 7, 129, 6, 128, 5, 1, 1, 0, 0})
	f.Add(uint8(60), []byte("full-turnover full-turnover full-turnover full-turnover"))
	f.Fuzz(func(t *testing.T, window uint8, data []byte) {
		w := int(window%60) + 2
		m, err := NewNumericMonitor(0.05, false, w)
		if err != nil {
			t.Fatal(err)
		}
		xs, ys := numericFromBytes(data)
		var winX, winY []float64
		for i := range xs {
			m.Insert(xs[i], ys[i])
			winX = append(winX, xs[i])
			winY = append(winY, ys[i])
			if len(winX) > w {
				winX, winY = winX[1:], winY[1:]
			}
			checkNumericStep(t, i, m, winX, winY)
		}
	})
}

// FuzzCategoricalMonitorIncremental is the categorical twin, including the
// Kahan re-anchor boundary (sequences longer than anchorEvery mutations).
func FuzzCategoricalMonitorIncremental(f *testing.F) {
	f.Add(uint8(6), []byte("abcabcabcabcabc-mixed-levels-abcabc"))
	f.Add(uint8(2), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add(uint8(40), []byte("anchor-boundary anchor-boundary anchor-boundary anchor!"))
	f.Fuzz(func(t *testing.T, window uint8, data []byte) {
		w := int(window%40) + 2
		m, err := NewCategoricalMonitor(0.05, false, w)
		if err != nil {
			t.Fatal(err)
		}
		levels := []string{"a", "b", "c", "d", "e"}
		n := len(data) / 2
		if n > maxFuzzOps {
			n = maxFuzzOps
		}
		var winX, winY []string
		for i := 0; i < n; i++ {
			x := levels[int(data[2*i])%len(levels)]
			y := levels[int(data[2*i+1])%len(levels)]
			m.Insert(x, y)
			winX = append(winX, x)
			winY = append(winY, y)
			if len(winX) > w {
				winX, winY = winX[1:], winY[1:]
			}
			checkCategoricalStep(t, i, m, winX, winY)
		}
	})
}

// TestNumericMonitorFullTurnoverDifferential drives many complete window
// turnovers (the rebuild-heavy regime) and checks every step.
func TestNumericMonitorFullTurnoverDifferential(t *testing.T) {
	const w = 24
	m, err := NewNumericMonitor(0.05, false, w)
	if err != nil {
		t.Fatal(err)
	}
	var winX, winY []float64
	// Deterministic stream with ties, duplicates and sign flips; 40 full
	// turnovers of a 24-wide window.
	for i := 0; i < 40*w; i++ {
		x := float64((i * 7) % 13)
		y := float64((i*5)%11) - float64(i%3)
		if i%4 == 0 {
			y = x // duplicate-key runs
		}
		m.Insert(x, y)
		winX = append(winX, x)
		winY = append(winY, y)
		if len(winX) > w {
			winX, winY = winX[1:], winY[1:]
		}
		checkNumericStep(t, i, m, winX, winY)
	}
}

// TestNumericInsertBatchRejectsNonFinite pins the all-or-nothing contract:
// a batch containing NaN or ±Inf is refused before any record lands, so
// the window's rank statistics are never poisoned.
func TestNumericInsertBatchRejectsNonFinite(t *testing.T) {
	m, err := NewNumericMonitor(0.05, false, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.InsertBatch(context.Background(), []float64{1, 2}, []float64{3, 4}); err != nil {
		t.Fatal(err)
	}
	before := m.PairSum()
	for _, bad := range [][2][]float64{
		{{5, math.NaN()}, {6, 7}},
		{{5, 6}, {7, math.Inf(1)}},
		{{math.Inf(-1), 6}, {7, 8}},
	} {
		n, err := m.InsertBatch(context.Background(), bad[0], bad[1])
		if err == nil {
			t.Fatalf("InsertBatch(%v, %v) accepted non-finite input", bad[0], bad[1])
		}
		if n != 0 {
			t.Fatalf("non-finite batch inserted %d records; want 0 (all-or-nothing)", n)
		}
	}
	if m.N() != 2 || m.PairSum() != before {
		t.Fatalf("monitor state changed by rejected batches: n=%d", m.N())
	}
}
