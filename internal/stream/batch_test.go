package stream

import (
	"context"
	"errors"
	"testing"
)

// TestInsertBatchMatchesSequential: a batch insert leaves the monitor in
// the same state as the equivalent Insert loop.
func TestInsertBatchMatchesSequential(t *testing.T) {
	xs := []string{"a", "b", "a", "c", "b", "a"}
	ys := []string{"u", "v", "u", "u", "v", "v"}
	batch, _ := NewCategoricalMonitor(0.05, false, 0)
	loop, _ := NewCategoricalMonitor(0.05, false, 0)
	n, err := batch.InsertBatch(context.Background(), xs, ys)
	if err != nil || n != len(xs) {
		t.Fatalf("InsertBatch = (%d, %v), want (%d, nil)", n, err, len(xs))
	}
	for i := range xs {
		loop.Insert(xs[i], ys[i])
	}
	if bv, lv := batch.Verdict(), loop.Verdict(); bv != lv {
		t.Fatalf("batch verdict %+v != loop verdict %+v", bv, lv)
	}

	nxs := []float64{1, 2, 3, 4, 5, 6}
	nys := []float64{2, 1, 4, 3, 6, 5}
	nb, _ := NewNumericMonitor(0.05, false, 0)
	nl, _ := NewNumericMonitor(0.05, false, 0)
	if n, err := nb.InsertBatch(context.Background(), nxs, nys); err != nil || n != len(nxs) {
		t.Fatalf("numeric InsertBatch = (%d, %v)", n, err)
	}
	for i := range nxs {
		nl.Insert(nxs[i], nys[i])
	}
	if bv, lv := nb.Verdict(), nl.Verdict(); bv != lv {
		t.Fatalf("numeric batch verdict %+v != loop verdict %+v", bv, lv)
	}
}

// TestInsertBatchCancelled: a pre-cancelled context inserts nothing and the
// error wraps context.Canceled; mismatched lengths fail before any insert.
func TestInsertBatchCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, _ := NewCategoricalMonitor(0.05, false, 0)
	n, err := m.InsertBatch(ctx, []string{"a", "b"}, []string{"u", "v"})
	if n != 0 || !errors.Is(err, context.Canceled) {
		t.Fatalf("got (%d, %v), want (0, wrapped context.Canceled)", n, err)
	}
	if m.N() != 0 {
		t.Fatalf("monitor holds %d records after a cancelled batch", m.N())
	}

	if _, err := m.InsertBatch(context.Background(), []string{"a"}, nil); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}
