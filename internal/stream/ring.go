package stream

// pointRing is a FIFO ring buffer of (x, y) observations. Eviction is O(1)
// — the fix for the seed-era removeAt slice shift, whose memmove made
// eviction cost grow linearly with the window — and steady-state push/pop
// on a full window allocates nothing.
type pointRing struct {
	xs, ys []float64
	head   int
	count  int
}

func (r *pointRing) len() int { return r.count }

// push appends an observation, growing the backing arrays (doubling) only
// while the window is still filling.
func (r *pointRing) push(x, y float64) {
	if r.count == len(r.xs) {
		r.grow()
	}
	i := r.head + r.count
	if i >= len(r.xs) {
		i -= len(r.xs)
	}
	r.xs[i], r.ys[i] = x, y
	r.count++
}

// popFront removes and returns the oldest observation.
func (r *pointRing) popFront() (x, y float64) {
	x, y = r.xs[r.head], r.ys[r.head]
	r.head++
	if r.head == len(r.xs) {
		r.head = 0
	}
	r.count--
	return x, y
}

// at returns the i-th oldest resident observation.
func (r *pointRing) at(i int) (x, y float64) {
	j := r.head + i
	if j >= len(r.xs) {
		j -= len(r.xs)
	}
	return r.xs[j], r.ys[j]
}

// appendTo appends the resident observations in arrival order.
func (r *pointRing) appendTo(xs, ys []float64) ([]float64, []float64) {
	for i := 0; i < r.count; i++ {
		x, y := r.at(i)
		xs = append(xs, x)
		ys = append(ys, y)
	}
	return xs, ys
}

func (r *pointRing) grow() {
	n := 2 * len(r.xs)
	if n < 8 {
		n = 8
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < r.count; i++ {
		xs[i], ys[i] = r.at(i)
	}
	r.xs, r.ys, r.head = xs, ys, 0
}

// pairRing is the categorical twin: a FIFO ring of (x, y) string pairs
// backing the windowed CategoricalMonitor, replacing the seed-era
// `fifo = fifo[1:]` slice walk that leaked the backing array and
// reallocated on every window turnover.
type pairRing struct {
	buf   [][2]string
	head  int
	count int
}

func (r *pairRing) len() int { return r.count }

func (r *pairRing) push(p [2]string) {
	if r.count == len(r.buf) {
		r.grow()
	}
	i := r.head + r.count
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = p
	r.count++
}

func (r *pairRing) popFront() [2]string {
	p := r.buf[r.head]
	// Clear the slot so evicted strings are not pinned by the ring.
	r.buf[r.head] = [2]string{}
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.count--
	return p
}

func (r *pairRing) grow() {
	n := 2 * len(r.buf)
	if n < 8 {
		n = 8
	}
	buf := make([][2]string, n)
	for i := 0; i < r.count; i++ {
		j := r.head + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		buf[i] = r.buf[j]
	}
	r.buf, r.head = buf, 0
}
