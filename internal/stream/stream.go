// Package stream implements the paper's Section 8 "incremental on-line
// SCODED" future-work direction: monitors that maintain an approximate SC
// over a stream of record insertions (and optional sliding-window
// evictions) without re-running detection from scratch.
//
// The categorical monitor maintains the G statistic exactly in O(1) per
// update, using the marginal-decomposed form
// G = 2(Σ O lnO − Σ R lnR − Σ C lnC + N lnN): an insertion touches one
// cell, one row marginal, one column marginal and N. The numeric monitor
// maintains the Kendall pair sum n_c − n_d and all tie aggregates needed
// for the tie-corrected z-score; each update costs O(w) over the window
// (the newcomer is compared against every resident point), which beats the
// O(w log w) full recomputation and supports windows in the tens of
// thousands comfortably.
package stream

import (
	"fmt"
	"math"

	"scoded/internal/stats"
)

// Verdict is a monitor's current judgement of its constraint.
type Verdict struct {
	// Statistic is the current test statistic (G, or the tie-corrected
	// Kendall z-score).
	Statistic float64
	// P is the current p-value.
	P float64
	// DF is the chi-squared degrees of freedom (categorical only).
	DF int
	// N is the number of records currently in the window.
	N int
	// Violated applies Algorithm 1's rule with the monitor's constraint
	// direction and alpha: an ISC is violated when p < α, a DSC when
	// p >= α.
	Violated bool
}

// decide applies the violation rule.
func decide(p, alpha float64, dependence bool) bool {
	if dependence {
		return p >= alpha
	}
	return p < alpha
}

// CategoricalMonitor tracks an SC between two categorical variables.
type CategoricalMonitor struct {
	alpha      float64
	dependence bool
	window     int

	joint   map[[2]string]int
	rowMarg map[string]int
	colMarg map[string]int
	n       int

	// Incrementally maintained Σ x lnx aggregates.
	sumOlnO, sumRlnR, sumClnC float64

	fifo [][2]string
}

// NewCategoricalMonitor creates a monitor for X ⊥ Y (dependence=false) or
// X ⊥̸ Y (dependence=true) at significance alpha. window > 0 bounds the
// number of retained records (FIFO eviction); 0 means unbounded.
func NewCategoricalMonitor(alpha float64, dependence bool, window int) (*CategoricalMonitor, error) {
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("stream: alpha %v out of [0,1]", alpha)
	}
	if window < 0 {
		return nil, fmt.Errorf("stream: negative window %d", window)
	}
	return &CategoricalMonitor{
		alpha:      alpha,
		dependence: dependence,
		window:     window,
		joint:      make(map[[2]string]int),
		rowMarg:    make(map[string]int),
		colMarg:    make(map[string]int),
	}, nil
}

func deltaXlnX(oldV int, d int) float64 {
	return xlnx(float64(oldV+d)) - xlnx(float64(oldV))
}

func xlnx(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return x * math.Log(x)
}

// Insert adds one record, evicting the oldest when the window is full.
func (m *CategoricalMonitor) Insert(x, y string) {
	if m.window > 0 && m.n >= m.window {
		old := m.fifo[0]
		m.fifo = m.fifo[1:]
		m.remove(old[0], old[1])
	}
	m.add(x, y)
	if m.window > 0 {
		m.fifo = append(m.fifo, [2]string{x, y})
	}
}

// Remove deletes one occurrence of (x, y); it errors if none is present.
// It is intended for callers managing their own retention policy (window
// must be 0).
func (m *CategoricalMonitor) Remove(x, y string) error {
	if m.window > 0 {
		return fmt.Errorf("stream: Remove on a windowed monitor; the window evicts automatically")
	}
	if m.joint[[2]string{x, y}] == 0 {
		return fmt.Errorf("stream: no record (%q, %q) to remove", x, y)
	}
	m.remove(x, y)
	return nil
}

func (m *CategoricalMonitor) add(x, y string) {
	key := [2]string{x, y}
	m.sumOlnO += deltaXlnX(m.joint[key], 1)
	m.sumRlnR += deltaXlnX(m.rowMarg[x], 1)
	m.sumClnC += deltaXlnX(m.colMarg[y], 1)
	m.joint[key]++
	m.rowMarg[x]++
	m.colMarg[y]++
	m.n++
}

func (m *CategoricalMonitor) remove(x, y string) {
	key := [2]string{x, y}
	m.sumOlnO += deltaXlnX(m.joint[key], -1)
	m.sumRlnR += deltaXlnX(m.rowMarg[x], -1)
	m.sumClnC += deltaXlnX(m.colMarg[y], -1)
	m.joint[key]--
	if m.joint[key] == 0 {
		delete(m.joint, key)
	}
	m.rowMarg[x]--
	if m.rowMarg[x] == 0 {
		delete(m.rowMarg, x)
	}
	m.colMarg[y]--
	if m.colMarg[y] == 0 {
		delete(m.colMarg, y)
	}
	m.n--
}

// N returns the current record count.
func (m *CategoricalMonitor) N() int { return m.n }

// G returns the current G statistic.
func (m *CategoricalMonitor) G() float64 {
	g := 2 * (m.sumOlnO - m.sumRlnR - m.sumClnC + xlnx(float64(m.n)))
	if g < 0 {
		return 0
	}
	return g
}

// Verdict evaluates the constraint on the current window.
func (m *CategoricalMonitor) Verdict() Verdict {
	df := (len(m.rowMarg) - 1) * (len(m.colMarg) - 1)
	v := Verdict{Statistic: m.G(), DF: df, N: m.n}
	if df <= 0 {
		v.P = 1
	} else {
		v.P = stats.ChiSquared{K: float64(df)}.Survival(v.Statistic)
	}
	v.Violated = decide(v.P, m.alpha, m.dependence)
	return v
}

// NumericMonitor tracks an SC between two numeric variables via the
// Kendall pair sum with tie-corrected Gaussian p-values.
type NumericMonitor struct {
	alpha      float64
	dependence bool
	window     int

	xs, ys []float64 // resident points, in arrival order
	s      float64   // current nc - nd

	xTies *tieTracker
	yTies *tieTracker
}

// NewNumericMonitor creates a numeric monitor; see NewCategoricalMonitor
// for the parameters.
func NewNumericMonitor(alpha float64, dependence bool, window int) (*NumericMonitor, error) {
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("stream: alpha %v out of [0,1]", alpha)
	}
	if window < 0 {
		return nil, fmt.Errorf("stream: negative window %d", window)
	}
	return &NumericMonitor{
		alpha:      alpha,
		dependence: dependence,
		window:     window,
		xTies:      newTieTracker(),
		yTies:      newTieTracker(),
	}, nil
}

// Insert adds one observation, evicting the oldest when the window is
// full. Cost is O(w) in the window size.
func (m *NumericMonitor) Insert(x, y float64) {
	if m.window > 0 && len(m.xs) >= m.window {
		m.removeAt(0)
	}
	for i := range m.xs {
		m.s += pairWeight(x, y, m.xs[i], m.ys[i])
	}
	m.xs = append(m.xs, x)
	m.ys = append(m.ys, y)
	m.xTies.add(x)
	m.yTies.add(y)
}

func (m *NumericMonitor) removeAt(i int) {
	x, y := m.xs[i], m.ys[i]
	for j := range m.xs {
		if j != i {
			m.s -= pairWeight(x, y, m.xs[j], m.ys[j])
		}
	}
	m.xs = append(m.xs[:i], m.xs[i+1:]...)
	m.ys = append(m.ys[:i], m.ys[i+1:]...)
	m.xTies.remove(x)
	m.yTies.remove(y)
}

func pairWeight(x1, y1, x2, y2 float64) float64 {
	dx, dy := x1-x2, y1-y2
	switch {
	//scoded:lint-ignore floatcmp Kendall ties are defined by exact value equality
	case dx == 0 || dy == 0:
		return 0
	case (dx > 0) == (dy > 0):
		return 1
	default:
		return -1
	}
}

// N returns the current observation count.
func (m *NumericMonitor) N() int { return len(m.xs) }

// PairSum returns the current nc - nd.
func (m *NumericMonitor) PairSum() float64 { return m.s }

// TauB returns the current tie-corrected Kendall coefficient.
func (m *NumericMonitor) TauB() float64 {
	n := int64(len(m.xs))
	n0 := n * (n - 1) / 2
	den := math.Sqrt(float64(n0-m.xTies.pairs) * float64(n0-m.yTies.pairs))
	if den <= 0 {
		return 0
	}
	t := m.s / den
	if t > 1 {
		t = 1
	} else if t < -1 {
		t = -1
	}
	return t
}

// Verdict evaluates the constraint on the current window using the
// tie-corrected normal approximation.
func (m *NumericMonitor) Verdict() Verdict {
	n := float64(len(m.xs))
	v := Verdict{N: len(m.xs)}
	if n < 2 {
		v.P = 1
		v.Violated = decide(v.P, m.alpha, m.dependence)
		return v
	}
	variance := (n*(n-1)*(2*n+5)-m.xTies.vT-m.yTies.vT)/18 +
		m.xTies.s1*m.yTies.s1/(2*n*(n-1))
	if n > 2 {
		variance += m.xTies.s2 * m.yTies.s2 / (9 * n * (n - 1) * (n - 2))
	}
	if variance <= 0 {
		v.P = 1
		v.Violated = decide(v.P, m.alpha, m.dependence)
		return v
	}
	v.Statistic = m.s / math.Sqrt(variance)
	v.P = stats.StdNormal.TwoSidedP(v.Statistic)
	v.Violated = decide(v.P, m.alpha, m.dependence)
	return v
}

// tieTracker maintains tie-group aggregates under add/remove:
// pairs = Σ t(t−1)/2, s1 = Σ t(t−1), s2 = Σ t(t−1)(t−2),
// vT = Σ t(t−1)(2t+5) — the terms of the Kendall variance formula.
type tieTracker struct {
	count map[float64]int64
	pairs int64
	s1    float64
	s2    float64
	vT    float64
}

func newTieTracker() *tieTracker {
	return &tieTracker{count: make(map[float64]int64)}
}

func (t *tieTracker) add(v float64) {
	old := t.count[v]
	t.apply(old, -1)
	t.count[v] = old + 1
	t.apply(old+1, 1)
}

func (t *tieTracker) remove(v float64) {
	old := t.count[v]
	t.apply(old, -1)
	if old <= 1 {
		delete(t.count, v)
	} else {
		t.count[v] = old - 1
	}
	t.apply(old-1, 1)
}

// apply adds sign times the group-size terms for a group of size g.
func (t *tieTracker) apply(g int64, sign float64) {
	if g < 2 {
		return
	}
	fg := float64(g)
	t.pairs += int64(sign) * g * (g - 1) / 2
	t.s1 += sign * fg * (fg - 1)
	t.s2 += sign * fg * (fg - 1) * (fg - 2)
	t.vT += sign * fg * (fg - 1) * (2*fg + 5)
}

// ConditionalNumericMonitor stratifies a numeric monitor on a conditioning
// key, combining per-stratum Kendall z-scores with the weighted Stouffer
// rule, as the batch detector does for conditional numeric constraints.
type ConditionalNumericMonitor struct {
	alpha      float64
	dependence bool
	window     int
	minStratum int
	strata     map[string]*NumericMonitor
}

// NewConditionalNumericMonitor creates a per-stratum numeric monitor for
// X ⊥ Y | Z (or ⊥̸). window bounds each stratum independently; strata with
// fewer than minStratum records are excluded from the combined verdict
// (default 5 when zero).
func NewConditionalNumericMonitor(alpha float64, dependence bool, window, minStratum int) (*ConditionalNumericMonitor, error) {
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("stream: alpha %v out of [0,1]", alpha)
	}
	if minStratum <= 0 {
		minStratum = 5
	}
	return &ConditionalNumericMonitor{
		alpha:      alpha,
		dependence: dependence,
		window:     window,
		minStratum: minStratum,
		strata:     make(map[string]*NumericMonitor),
	}, nil
}

// Insert routes an observation to its stratum.
func (m *ConditionalNumericMonitor) Insert(z string, x, y float64) {
	sm, ok := m.strata[z]
	if !ok {
		sm, _ = NewNumericMonitor(m.alpha, m.dependence, m.window)
		m.strata[z] = sm
	}
	sm.Insert(x, y)
}

// Verdict combines the per-stratum z-scores by the sqrt(n)-weighted
// Stouffer rule over the eligible strata.
func (m *ConditionalNumericMonitor) Verdict() Verdict {
	var num, den float64
	n := 0
	eligible := 0
	for _, sm := range m.strata {
		n += sm.N()
		if sm.N() < m.minStratum {
			continue
		}
		sv := sm.Verdict()
		w := math.Sqrt(float64(sm.N()))
		num += w * sv.Statistic
		den += w * w
		eligible++
	}
	v := Verdict{N: n}
	if eligible == 0 || den <= 0 {
		v.P = 1
		v.Violated = decide(v.P, m.alpha, m.dependence)
		return v
	}
	v.Statistic = num / math.Sqrt(den)
	v.P = stats.StdNormal.TwoSidedP(v.Statistic)
	v.Violated = decide(v.P, m.alpha, m.dependence)
	return v
}

// ConditionalMonitor stratifies a categorical monitor on a conditioning
// key, combining per-stratum G statistics as in the batch detector.
type ConditionalMonitor struct {
	alpha      float64
	dependence bool
	window     int
	minStratum int
	strata     map[string]*CategoricalMonitor
}

// NewConditionalMonitor creates a per-stratum monitor for
// X ⊥ Y | Z (or ⊥̸). window bounds each stratum independently; strata with
// fewer than minStratum records are excluded from the combined verdict
// (default 5 when zero).
func NewConditionalMonitor(alpha float64, dependence bool, window, minStratum int) (*ConditionalMonitor, error) {
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("stream: alpha %v out of [0,1]", alpha)
	}
	if minStratum <= 0 {
		minStratum = 5
	}
	return &ConditionalMonitor{
		alpha:      alpha,
		dependence: dependence,
		window:     window,
		minStratum: minStratum,
		strata:     make(map[string]*CategoricalMonitor),
	}, nil
}

// Insert routes a record to its stratum.
func (m *ConditionalMonitor) Insert(z, x, y string) {
	sm, ok := m.strata[z]
	if !ok {
		sm, _ = NewCategoricalMonitor(m.alpha, m.dependence, m.window)
		m.strata[z] = sm
	}
	sm.Insert(x, y)
}

// Verdict combines the per-stratum G statistics (summed G and degrees of
// freedom, referred to the chi-squared with the summed df).
func (m *ConditionalMonitor) Verdict() Verdict {
	var g float64
	var df, n int
	for _, sm := range m.strata {
		n += sm.n
		if sm.n < m.minStratum {
			continue
		}
		sdf := (len(sm.rowMarg) - 1) * (len(sm.colMarg) - 1)
		if sdf <= 0 {
			continue
		}
		g += sm.G()
		df += sdf
	}
	v := Verdict{Statistic: g, DF: df, N: n}
	if df <= 0 {
		v.P = 1
	} else {
		v.P = stats.ChiSquared{K: float64(df)}.Survival(g)
	}
	v.Violated = decide(v.P, m.alpha, m.dependence)
	return v
}
