// Package stream implements the paper's Section 8 "incremental on-line
// SCODED" future-work direction: monitors that maintain an approximate SC
// over a stream of record insertions (and optional sliding-window
// evictions) without re-running detection from scratch.
//
// The categorical monitor maintains the G statistic in O(1) amortized per
// update, using the marginal-decomposed form
// G = 2(Σ O lnO − Σ R lnR − Σ C lnC + N lnN): an insertion touches one
// cell, one row marginal, one column marginal and N. The three running
// sums are Kahan-compensated and periodically re-anchored by an exact
// recomputation from the integer cell counts, so the incremental G agrees
// with a from-scratch batch recompute to ~1e-12 even after arbitrarily
// long windows of turnover. The delta path allocates nothing in steady
// state: the FIFO window is a ring buffer and every map key it touches
// already exists.
//
// The numeric monitor maintains the Kendall pair sum n_c − n_d exactly as
// an integer through a Fenwick-tree concordance index over compressed
// ranks (internal/segtree): each insert or evict costs amortized
// O(√(w log w)) — polylogarithmic queries against a rank-compressed
// snapshot plus a bounded delta-buffer scan — instead of the seed-era O(w)
// walk over every resident point. Tie aggregates for the tie-corrected
// z-score are maintained in O(1) per update. Both conditional monitors
// inherit the incremental kernels through their per-stratum sub-monitors.
package stream

import (
	"fmt"
	"math"

	"scoded/internal/stats"
)

// Verdict is a monitor's current judgement of its constraint.
type Verdict struct {
	// Statistic is the current test statistic (G, or the tie-corrected
	// Kendall z-score).
	Statistic float64
	// P is the current p-value.
	P float64
	// DF is the chi-squared degrees of freedom (categorical only).
	DF int
	// N is the number of records currently in the window.
	N int
	// Violated applies Algorithm 1's rule with the monitor's constraint
	// direction and alpha: an ISC is violated when p < α, a DSC when
	// p >= α.
	Violated bool
}

// decide applies the violation rule.
func decide(p, alpha float64, dependence bool) bool {
	if dependence {
		return p >= alpha
	}
	return p < alpha
}

// anchorEvery bounds how many cell-delta mutations the categorical sums
// accumulate before an exact re-anchor from the integer counts. 256 keeps
// the compensated drift well under the 1e-12 differential budget while
// amortizing the O(cells) recompute to a fraction of a map update.
const anchorEvery = 256

// CategoricalMonitor tracks an SC between two categorical variables.
type CategoricalMonitor struct {
	alpha      float64
	dependence bool
	window     int

	joint   map[[2]string]int
	rowMarg map[string]int
	colMarg map[string]int
	n       int

	// Incrementally maintained Σ x lnx aggregates (Kahan-compensated,
	// re-anchored every anchorEvery mutations).
	sumOlnO, sumRlnR, sumClnC ksum
	mutations                 int

	fifo pairRing
}

// NewCategoricalMonitor creates a monitor for X ⊥ Y (dependence=false) or
// X ⊥̸ Y (dependence=true) at significance alpha. window > 0 bounds the
// number of retained records (FIFO eviction); 0 means unbounded.
func NewCategoricalMonitor(alpha float64, dependence bool, window int) (*CategoricalMonitor, error) {
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("stream: alpha %v out of [0,1]", alpha)
	}
	if window < 0 {
		return nil, fmt.Errorf("stream: negative window %d", window)
	}
	return &CategoricalMonitor{
		alpha:      alpha,
		dependence: dependence,
		window:     window,
		joint:      make(map[[2]string]int),
		rowMarg:    make(map[string]int),
		colMarg:    make(map[string]int),
	}, nil
}

func deltaXlnX(oldV int, d int) float64 {
	return xlnx(float64(oldV+d)) - xlnx(float64(oldV))
}

func xlnx(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return x * math.Log(x)
}

// ksum is a Kahan-compensated running sum: add/subtract drift stays at a
// few ulps regardless of how many deltas pass through between anchors.
type ksum struct{ v, c float64 }

func (k *ksum) add(x float64) {
	y := x - k.c
	t := k.v + y
	k.c = (t - k.v) - y
	k.v = t
}

func (k *ksum) value() float64 { return k.v }

// Insert adds one record, evicting the oldest when the window is full.
func (m *CategoricalMonitor) Insert(x, y string) {
	if m.window > 0 && m.n >= m.window {
		old := m.fifo.popFront()
		m.remove(old[0], old[1])
	}
	m.add(x, y)
	if m.window > 0 {
		m.fifo.push([2]string{x, y})
	}
}

// Remove deletes one occurrence of (x, y); it errors if none is present.
// It is intended for callers managing their own retention policy (window
// must be 0).
func (m *CategoricalMonitor) Remove(x, y string) error {
	if m.window > 0 {
		return fmt.Errorf("stream: Remove on a windowed monitor; the window evicts automatically")
	}
	if m.joint[[2]string{x, y}] == 0 {
		return fmt.Errorf("stream: no record (%q, %q) to remove", x, y)
	}
	m.remove(x, y)
	return nil
}

func (m *CategoricalMonitor) add(x, y string) {
	key := [2]string{x, y}
	m.sumOlnO.add(deltaXlnX(m.joint[key], 1))
	m.sumRlnR.add(deltaXlnX(m.rowMarg[x], 1))
	m.sumClnC.add(deltaXlnX(m.colMarg[y], 1))
	m.joint[key]++
	m.rowMarg[x]++
	m.colMarg[y]++
	m.n++
	m.bumpAnchor()
}

func (m *CategoricalMonitor) remove(x, y string) {
	key := [2]string{x, y}
	m.sumOlnO.add(deltaXlnX(m.joint[key], -1))
	m.sumRlnR.add(deltaXlnX(m.rowMarg[x], -1))
	m.sumClnC.add(deltaXlnX(m.colMarg[y], -1))
	m.joint[key]--
	if m.joint[key] == 0 {
		delete(m.joint, key)
	}
	m.rowMarg[x]--
	if m.rowMarg[x] == 0 {
		delete(m.rowMarg, x)
	}
	m.colMarg[y]--
	if m.colMarg[y] == 0 {
		delete(m.colMarg, y)
	}
	m.n--
	m.bumpAnchor()
}

func (m *CategoricalMonitor) bumpAnchor() {
	m.mutations++
	if m.mutations >= anchorEvery {
		m.anchor()
	}
}

// anchor recomputes the three running sums exactly from the integer
// counts, discarding any accumulated floating drift. Cost is O(cells),
// amortized over anchorEvery mutations; it allocates nothing.
func (m *CategoricalMonitor) anchor() {
	m.mutations = 0
	var o, r, c ksum
	for _, v := range m.joint {
		o.add(xlnx(float64(v)))
	}
	for _, v := range m.rowMarg {
		r.add(xlnx(float64(v)))
	}
	for _, v := range m.colMarg {
		c.add(xlnx(float64(v)))
	}
	m.sumOlnO, m.sumRlnR, m.sumClnC = o, r, c
}

// N returns the current record count.
func (m *CategoricalMonitor) N() int { return m.n }

// G returns the current G statistic.
func (m *CategoricalMonitor) G() float64 {
	g := 2 * (m.sumOlnO.value() - m.sumRlnR.value() - m.sumClnC.value() + xlnx(float64(m.n)))
	if g < 0 {
		return 0
	}
	return g
}

// Verdict evaluates the constraint on the current window.
func (m *CategoricalMonitor) Verdict() Verdict {
	df := (len(m.rowMarg) - 1) * (len(m.colMarg) - 1)
	v := Verdict{Statistic: m.G(), DF: df, N: m.n}
	if df <= 0 {
		v.P = 1
	} else {
		v.P = stats.ChiSquared{K: float64(df)}.Survival(v.Statistic)
	}
	v.Violated = decide(v.P, m.alpha, m.dependence)
	return v
}

// NumericMonitor tracks an SC between two numeric variables via the
// Kendall pair sum with tie-corrected Gaussian p-values. Inserts and
// window evictions cost amortized O(√(w log w)) through the concordance
// index; the pair sum is maintained exactly as an integer.
//
// Observations must be finite: feed data through InsertBatch (which
// rejects NaN/±Inf) or validate before calling Insert, whose statistics
// are undefined under non-finite inputs.
type NumericMonitor struct {
	alpha      float64
	dependence bool
	window     int

	win pointRing // resident observations, in arrival order
	s   int64     // current nc - nd, exact
	idx concordanceIndex

	xTies *tieTracker
	yTies *tieTracker

	// rebuild scratch, reused
	rx, ry []float64
}

// NewNumericMonitor creates a numeric monitor; see NewCategoricalMonitor
// for the parameters.
func NewNumericMonitor(alpha float64, dependence bool, window int) (*NumericMonitor, error) {
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("stream: alpha %v out of [0,1]", alpha)
	}
	if window < 0 {
		return nil, fmt.Errorf("stream: negative window %d", window)
	}
	m := &NumericMonitor{
		alpha:      alpha,
		dependence: dependence,
		window:     window,
		xTies:      newTieTracker(),
		yTies:      newTieTracker(),
	}
	m.idx.limit = 64
	return m, nil
}

// Insert adds one observation, evicting the oldest when the window is
// full.
func (m *NumericMonitor) Insert(x, y float64) {
	if m.window > 0 && m.win.len() >= m.window {
		m.evictOldest()
	}
	m.s += m.idx.signedSum(x, y)
	m.idx.add(x, y)
	m.win.push(x, y)
	m.xTies.add(x)
	m.yTies.add(y)
	m.maybeRebuild()
}

// evictOldest removes the oldest observation. The signed sum is queried
// while the point is still resident: its self-term is zero, so the result
// is exactly its concordance against every other resident.
func (m *NumericMonitor) evictOldest() {
	x, y := m.win.popFront()
	m.s -= m.idx.signedSum(x, y)
	m.idx.drop(x, y)
	m.xTies.remove(x)
	m.yTies.remove(y)
	m.maybeRebuild()
}

func (m *NumericMonitor) maybeRebuild() {
	if m.idx.pending() <= m.idx.limit {
		return
	}
	m.rx, m.ry = m.win.appendTo(m.rx[:0], m.ry[:0])
	m.idx.rebuild(m.rx, m.ry)
}

// N returns the current observation count.
func (m *NumericMonitor) N() int { return m.win.len() }

// PairSum returns the current nc - nd.
func (m *NumericMonitor) PairSum() float64 { return float64(m.s) }

// TauB returns the current tie-corrected Kendall coefficient.
func (m *NumericMonitor) TauB() float64 {
	n := int64(m.win.len())
	n0 := n * (n - 1) / 2
	den := math.Sqrt(float64(n0-m.xTies.pairs) * float64(n0-m.yTies.pairs))
	if den <= 0 {
		return 0
	}
	t := float64(m.s) / den
	if t > 1 {
		t = 1
	} else if t < -1 {
		t = -1
	}
	return t
}

// Verdict evaluates the constraint on the current window using the
// tie-corrected normal approximation.
func (m *NumericMonitor) Verdict() Verdict {
	n := float64(m.win.len())
	v := Verdict{N: m.win.len()}
	if n < 2 {
		v.P = 1
		v.Violated = decide(v.P, m.alpha, m.dependence)
		return v
	}
	variance := (n*(n-1)*(2*n+5)-m.xTies.vT-m.yTies.vT)/18 +
		m.xTies.s1*m.yTies.s1/(2*n*(n-1))
	if n > 2 {
		variance += m.xTies.s2 * m.yTies.s2 / (9 * n * (n - 1) * (n - 2))
	}
	if variance <= 0 {
		v.P = 1
		v.Violated = decide(v.P, m.alpha, m.dependence)
		return v
	}
	v.Statistic = float64(m.s) / math.Sqrt(variance)
	v.P = stats.StdNormal.TwoSidedP(v.Statistic)
	v.Violated = decide(v.P, m.alpha, m.dependence)
	return v
}

// tieTracker maintains tie-group aggregates under add/remove:
// pairs = Σ t(t−1)/2, s1 = Σ t(t−1), s2 = Σ t(t−1)(t−2),
// vT = Σ t(t−1)(2t+5) — the terms of the Kendall variance formula. Every
// aggregate is a sum of integers, so the float64 fields are exact for any
// realistic window.
type tieTracker struct {
	count map[float64]int64
	pairs int64
	s1    float64
	s2    float64
	vT    float64
}

func newTieTracker() *tieTracker {
	return &tieTracker{count: make(map[float64]int64)}
}

func (t *tieTracker) add(v float64) {
	old := t.count[v]
	t.apply(old, -1)
	t.count[v] = old + 1
	t.apply(old+1, 1)
}

func (t *tieTracker) remove(v float64) {
	old := t.count[v]
	t.apply(old, -1)
	if old <= 1 {
		delete(t.count, v)
	} else {
		t.count[v] = old - 1
	}
	t.apply(old-1, 1)
}

// apply adds sign times the group-size terms for a group of size g.
func (t *tieTracker) apply(g int64, sign float64) {
	if g < 2 {
		return
	}
	fg := float64(g)
	t.pairs += int64(sign) * g * (g - 1) / 2
	t.s1 += sign * fg * (fg - 1)
	t.s2 += sign * fg * (fg - 1) * (fg - 2)
	t.vT += sign * fg * (fg - 1) * (2*fg + 5)
}

// ConditionalNumericMonitor stratifies a numeric monitor on a conditioning
// key, combining per-stratum Kendall z-scores with the weighted Stouffer
// rule, as the batch detector does for conditional numeric constraints.
type ConditionalNumericMonitor struct {
	alpha      float64
	dependence bool
	window     int
	minStratum int
	strata     map[string]*NumericMonitor
}

// NewConditionalNumericMonitor creates a per-stratum numeric monitor for
// X ⊥ Y | Z (or ⊥̸). window bounds each stratum independently; strata with
// fewer than minStratum records are excluded from the combined verdict
// (default 5 when zero).
func NewConditionalNumericMonitor(alpha float64, dependence bool, window, minStratum int) (*ConditionalNumericMonitor, error) {
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("stream: alpha %v out of [0,1]", alpha)
	}
	if minStratum <= 0 {
		minStratum = 5
	}
	return &ConditionalNumericMonitor{
		alpha:      alpha,
		dependence: dependence,
		window:     window,
		minStratum: minStratum,
		strata:     make(map[string]*NumericMonitor),
	}, nil
}

// Insert routes an observation to its stratum.
func (m *ConditionalNumericMonitor) Insert(z string, x, y float64) {
	sm, ok := m.strata[z]
	if !ok {
		sm, _ = NewNumericMonitor(m.alpha, m.dependence, m.window)
		m.strata[z] = sm
	}
	sm.Insert(x, y)
}

// Verdict combines the per-stratum z-scores by the sqrt(n)-weighted
// Stouffer rule over the eligible strata.
func (m *ConditionalNumericMonitor) Verdict() Verdict {
	var num, den float64
	n := 0
	eligible := 0
	for _, sm := range m.strata {
		n += sm.N()
		if sm.N() < m.minStratum {
			continue
		}
		sv := sm.Verdict()
		w := math.Sqrt(float64(sm.N()))
		num += w * sv.Statistic
		den += w * w
		eligible++
	}
	v := Verdict{N: n}
	if eligible == 0 || den <= 0 {
		v.P = 1
		v.Violated = decide(v.P, m.alpha, m.dependence)
		return v
	}
	v.Statistic = num / math.Sqrt(den)
	v.P = stats.StdNormal.TwoSidedP(v.Statistic)
	v.Violated = decide(v.P, m.alpha, m.dependence)
	return v
}

// ConditionalMonitor stratifies a categorical monitor on a conditioning
// key, combining per-stratum G statistics as in the batch detector.
type ConditionalMonitor struct {
	alpha      float64
	dependence bool
	window     int
	minStratum int
	strata     map[string]*CategoricalMonitor
}

// NewConditionalMonitor creates a per-stratum monitor for
// X ⊥ Y | Z (or ⊥̸). window bounds each stratum independently; strata with
// fewer than minStratum records are excluded from the combined verdict
// (default 5 when zero).
func NewConditionalMonitor(alpha float64, dependence bool, window, minStratum int) (*ConditionalMonitor, error) {
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("stream: alpha %v out of [0,1]", alpha)
	}
	if minStratum <= 0 {
		minStratum = 5
	}
	return &ConditionalMonitor{
		alpha:      alpha,
		dependence: dependence,
		window:     window,
		minStratum: minStratum,
		strata:     make(map[string]*CategoricalMonitor),
	}, nil
}

// Insert routes a record to its stratum.
func (m *ConditionalMonitor) Insert(z, x, y string) {
	sm, ok := m.strata[z]
	if !ok {
		sm, _ = NewCategoricalMonitor(m.alpha, m.dependence, m.window)
		m.strata[z] = sm
	}
	sm.Insert(x, y)
}

// Verdict combines the per-stratum G statistics (summed G and degrees of
// freedom, referred to the chi-squared with the summed df).
func (m *ConditionalMonitor) Verdict() Verdict {
	var g float64
	var df, n int
	for _, sm := range m.strata {
		n += sm.n
		if sm.n < m.minStratum {
			continue
		}
		sdf := (len(sm.rowMarg) - 1) * (len(sm.colMarg) - 1)
		if sdf <= 0 {
			continue
		}
		g += sm.G()
		df += sdf
	}
	v := Verdict{Statistic: g, DF: df, N: n}
	if df <= 0 {
		v.P = 1
	} else {
		v.P = stats.ChiSquared{K: float64(df)}.Survival(g)
	}
	v.Violated = decide(v.P, m.alpha, m.dependence)
	return v
}
