package stream

import (
	"context"
	"fmt"
	"math"
)

// InsertBatch feeds a batch of records into the monitor, checking ctx
// between records so a disconnected client stops a large observation batch
// mid-way. It returns how many records were inserted; on early exit the
// error wraps the context's error, and the monitor retains exactly the
// inserted prefix (each single Insert is atomic, so the window stays
// consistent).
func (m *CategoricalMonitor) InsertBatch(ctx context.Context, xs, ys []string) (int, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stream: x has %d values, y has %d", len(xs), len(ys))
	}
	for i := range xs {
		if err := ctx.Err(); err != nil {
			return i, fmt.Errorf("stream: batch interrupted after %d of %d records: %w", i, len(xs), err)
		}
		m.Insert(xs[i], ys[i])
	}
	return len(xs), nil
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// InsertBatch feeds a batch of observations into the monitor; see the
// CategoricalMonitor variant for the cancellation contract. Non-finite
// observations (NaN, ±Inf) are rejected up front — the whole batch is
// refused before any record is inserted, so a bad batch never corrupts
// the window's rank statistics.
func (m *NumericMonitor) InsertBatch(ctx context.Context, xs, ys []float64) (int, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stream: x has %d values, y has %d", len(xs), len(ys))
	}
	for i := range xs {
		if !isFinite(xs[i]) || !isFinite(ys[i]) {
			return 0, fmt.Errorf("stream: non-finite observation (%v, %v) at record %d", xs[i], ys[i], i)
		}
	}
	for i := range xs {
		if err := ctx.Err(); err != nil {
			return i, fmt.Errorf("stream: batch interrupted after %d of %d records: %w", i, len(xs), err)
		}
		m.Insert(xs[i], ys[i])
	}
	return len(xs), nil
}
