package stream

import (
	"math"
	"sort"

	"scoded/internal/segtree"
)

// concordanceIndex answers the numeric monitor's per-update question — the
// signed concordance sum
//
//	Σ_residents sign(qx − x_j) · sign(qy − y_j)
//
// in amortized polylogarithmic time instead of the seed-era O(window) scan.
// It is the Fenwick-tree concordance-delta structure of DESIGN.md §14:
//
//   - a static snapshot of the residents, rank-compressed in both
//     coordinates (segtree.CompressRanksUniqInto) and indexed by a
//     segtree.FenwickMerge, answers dominance prefix counts in
//     O(log² n); four such counts plus 1D rank prefixes recover the
//     signed sum over the snapshot exactly (integer arithmetic, no
//     floating drift);
//   - two small delta buffers absorb mutations between rebuilds: points
//     inserted since the snapshot (ins) and snapshot points evicted since
//     (del). Queries scan them directly, so the current window's sum is
//     snapshot − del + ins;
//   - when the buffers outgrow ~√(n log n), the index rebuilds from the
//     live window, amortizing the O(n log n) rebuild to O(√(n log n)) per
//     update. FIFO eviction order makes membership bookkeeping trivial:
//     the first snapN evictions after a rebuild are snapshot points, every
//     later one is the oldest surviving ins entry.
//
// All counts are integers, so the pair sum maintained through this index
// is exact — the differential fuzz suite pins it bit-identical to a batch
// recompute.
type concordanceIndex struct {
	// Snapshot state.
	snapX, snapY []float64 // ascending distinct values (rank universes)
	xcnt, ycnt   []int64   // points with xrank <= r / yrank <= r
	fm           segtree.FenwickMerge
	snapN        int

	// Delta buffers.
	del     []cpoint // evicted snapshot points
	ins     []cpoint // points inserted since the snapshot
	insHead int      // ins entries before insHead have been evicted

	limit int // pending() threshold that triggers a rebuild

	// Scratch reused across rebuilds.
	xranks, yranks []int
}

type cpoint struct{ x, y float64 }

// pending returns the total delta-buffer occupancy.
func (c *concordanceIndex) pending() int {
	return len(c.del) + len(c.ins) - c.insHead
}

// signedSum returns Σ sign(qx−x)·sign(qy−y) over the current residents.
// A resident equal to (qx, qy) contributes 0, so callers may query a point
// that is itself resident (eviction) or not yet resident (insertion) with
// the same semantics.
func (c *concordanceIndex) signedSum(qx, qy float64) int64 {
	var s int64
	if c.snapN > 0 {
		ux, uy := len(c.snapX), len(c.snapY)
		loX := sort.SearchFloat64s(c.snapX, qx) // distinct x values < qx
		hiX := loX
		//scoded:lint-ignore floatcmp rank-universe membership is exact value equality
		if loX < ux && c.snapX[loX] == qx {
			hiX++
		}
		loY := sort.SearchFloat64s(c.snapY, qy)
		hiY := loY
		//scoded:lint-ignore floatcmp rank-universe membership is exact value equality
		if loY < uy && c.snapY[loY] == qy {
			hiY++
		}
		// Quadrant counts from four 2D prefix queries plus 1D prefixes:
		//   a = (<,<)   d = (>,>)   b = (<,>)   cc = (>,<)
		a := c.fm.CountLE(loX-1, loY-1)
		le := c.fm.CountLE(hiX-1, hiY-1)
		ltLe := c.fm.CountLE(loX-1, hiY-1)
		leLt := c.fm.CountLE(hiX-1, loY-1)
		xLess, xLE := prefixCount(c.xcnt, loX-1), prefixCount(c.xcnt, hiX-1)
		yLess, yLE := prefixCount(c.ycnt, loY-1), prefixCount(c.ycnt, hiY-1)
		b := xLess - ltLe
		cc := yLess - leLt
		d := int64(c.snapN) - xLE - yLE + le
		s += (a + d) - (b + cc)
	}
	for _, p := range c.del {
		s -= signProduct(qx, qy, p.x, p.y)
	}
	for _, p := range c.ins[c.insHead:] {
		s += signProduct(qx, qy, p.x, p.y)
	}
	return s
}

// add records a newly inserted resident.
func (c *concordanceIndex) add(x, y float64) {
	c.ins = append(c.ins, cpoint{x, y})
}

// drop records the eviction of the oldest resident. FIFO order guarantees
// the first snapN drops after a rebuild are snapshot points; later drops
// consume ins from the front.
func (c *concordanceIndex) drop(x, y float64) {
	if len(c.del) < c.snapN {
		c.del = append(c.del, cpoint{x, y})
		return
	}
	c.insHead++
}

// rebuild snapshots the current residents (any order) and clears the delta
// buffers. The threshold for the next rebuild scales as √(n log n), which
// balances buffer-scan cost against amortized rebuild cost.
func (c *concordanceIndex) rebuild(xs, ys []float64) {
	n := len(xs)
	c.snapN = n
	c.del = c.del[:0]
	c.ins = c.ins[:0]
	c.insHead = 0

	var uniqX, uniqY []float64
	c.xranks, uniqX = segtree.CompressRanksUniqInto(xs, c.xranks, c.snapX)
	c.yranks, uniqY = segtree.CompressRanksUniqInto(ys, c.yranks, c.snapY)
	c.snapX, c.snapY = uniqX, uniqY
	ux, uy := len(uniqX), len(uniqY)

	c.xcnt = growI64(c.xcnt, ux)
	c.ycnt = growI64(c.ycnt, uy)
	for i := range c.xcnt {
		c.xcnt[i] = 0
	}
	for i := range c.ycnt {
		c.ycnt[i] = 0
	}
	for i := 0; i < n; i++ {
		c.xcnt[c.xranks[i]]++
		c.ycnt[c.yranks[i]]++
	}
	for i := 1; i < ux; i++ {
		c.xcnt[i] += c.xcnt[i-1]
	}
	for i := 1; i < uy; i++ {
		c.ycnt[i] += c.ycnt[i-1]
	}
	c.fm.Rebuild(c.xranks[:n], c.yranks[:n], ux, uy)

	bits := 1
	for v := n; v > 1; v >>= 1 {
		bits++
	}
	c.limit = int(math.Sqrt(float64(n * bits)))
	if c.limit < 64 {
		c.limit = 64
	}
}

// prefixCount returns cnt[r], clipping r to the array bounds (r < 0 → 0).
func prefixCount(cnt []int64, r int) int64 {
	if r < 0 || len(cnt) == 0 {
		return 0
	}
	if r >= len(cnt) {
		r = len(cnt) - 1
	}
	return cnt[r]
}

// signProduct is sign(qx−px)·sign(qy−py) computed by direct comparison —
// no subtraction, so it is well defined for any ordered float64 inputs.
func signProduct(qx, qy, px, py float64) int64 {
	var sx, sy int64
	if qx > px {
		sx = 1
	} else if qx < px {
		sx = -1
	}
	if qy > py {
		sy = 1
	} else if qy < py {
		sy = -1
	}
	return sx * sy
}

func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}
