package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// Seed-robustness: the headline shape claims must not be artifacts of the
// default seed. Each check here re-runs a (fast) experiment at two extra
// seeds and asserts only the ordering claims, not magnitudes.

func TestFigure7RobustAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{2, 3} {
		rep, err := Figure7(seed)
		if err != nil {
			t.Fatal(err)
		}
		if zero := noteNumber(t, rep, "records have GPM=0 while Games>0"); zero < 40 {
			t.Errorf("seed %d: GPM=0 signature %d/50", seed, zero)
		}
	}
}

func TestFigure8RobustAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{2, 3} {
		rep, err := Figure8(seed)
		if err != nil {
			t.Fatal(err)
		}
		assertNote(t, rep, "Wind DSC violations at years [1978 1989]")
		assertNote(t, rep, "Sea DSC violations at years [1972]")
	}
}

func TestFigure9RobustAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{2, 3} {
		rep, err := Figure9(seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, tag := range []string{"single", "multi"} {
			sco := meanOf(t, rep, tag+"/SCODED")
			for _, rival := range []string{"DCDetect", "DCDetect+HC", "DBoost"} {
				if r := meanOf(t, rep, tag+"/"+rival); sco <= r {
					t.Errorf("seed %d %s: SCODED (%.3f) <= %s (%.3f)", seed, tag, sco, rival, r)
				}
			}
		}
	}
}

func TestFigure12RobustAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{2, 3} {
		rep, err := Figure12(seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, tag := range []string{"a:Zip->City", "b:Zip->State"} {
			sco, _ := rep.FindSeries(tag + "/SCODED")
			afdS, _ := rep.FindSeries(tag + "/AFD")
			last := len(sco.Y) - 1
			if sco.Y[last] <= afdS.Y[last] {
				t.Errorf("seed %d %s: final F SCODED %.3f <= AFD %.3f", seed, tag, sco.Y[last], afdS.Y[last])
			}
		}
	}
}

func TestFigure10Rates(t *testing.T) {
	rep, err := Figure10Rates(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Notes) != 3 {
		t.Fatalf("notes = %v", rep.Notes)
	}
	// SCODED must win at every rate in the paper's band.
	for _, n := range rep.Notes {
		var rate, sco, dc, boost float64
		if _, err := fmt.Sscanf(n, "rate %f%%: SCODED=%f DCDetect=%f DBoost=%f", &rate, &sco, &dc, &boost); err != nil {
			t.Fatalf("unparsable note %q: %v", n, err)
		}
		if sco <= dc || sco <= boost {
			t.Errorf("rate %.0f%%: SCODED (%.3f) should beat DCDetect (%.3f) and DBoost (%.3f)", rate, sco, dc, boost)
		}
	}
}

func TestAblation(t *testing.T) {
	rep, err := Ablation(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("tables = %d", len(rep.Tables))
	}
	// Section 5.2 Remark: K^c wins on the ISC; K wins on the DSC.
	assertNote(t, rep, "ISC R _||_ B / sorting")
	for _, n := range rep.Notes {
		if strings.Contains(n, "ISC") && !strings.Contains(n, "winner K^c") {
			t.Errorf("ISC row should favor K^c: %s", n)
		}
		if strings.Contains(n, "DSC") && !strings.Contains(n, "winner K") {
			t.Errorf("DSC row should favor K: %s", n)
		}
	}
	// The paper's cell-contribution heuristic must not lose to exact-ΔG on
	// the HOSP workload (it is what produces the Figure 12 crossover).
	var cc, ed float64
	for _, n := range rep.Notes {
		if strings.Contains(n, "cell-contribution") {
			fmtSscan(n, &cc)
		}
		if strings.Contains(n, "exact-delta") {
			fmtSscan(n, &ed)
		}
	}
	if cc < ed {
		t.Errorf("cell-contribution F=%.3f should be >= exact-delta F=%.3f", cc, ed)
	}
}

// fmtSscan extracts the trailing "mean F=x" float of a note.
func fmtSscan(n string, out *float64) {
	if i := strings.LastIndex(n, "F="); i >= 0 {
		var v float64
		if _, err := fmt.Sscanf(n[i:], "F=%f", &v); err == nil {
			*out = v
		}
	}
}

func TestFigure13RobustAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{2, 3} {
		rep, err := Figure13(seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, tag := range []string{"BP~||~CL", "SA_||_DR"} {
			if meanOf(t, rep, tag+"/SCODED") <= meanOf(t, rep, tag+"/DBoost") {
				t.Errorf("seed %d %s: SCODED should beat DBoost", seed, tag)
			}
		}
	}
}
