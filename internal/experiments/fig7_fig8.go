package experiments

import (
	"fmt"
	"strconv"

	"scoded/internal/datasets"
	"scoded/internal/detect"
	"scoded/internal/drilldown"
	"scoded/internal/sc"
)

// Figure7 reproduces the Hockey model-construction case study: detect the
// counter-intuitive dependence Games ⊥̸ GPM | DraftYear planted by the
// provider's imputation, drill down to the top-50 records, and tabulate
// them as in Figure 7 — expecting the two signature observations (≈45/50
// records with GPM = 0 and Games > 0, all from draft years before 2000).
func Figure7(seed int64) (*Report, error) {
	data := datasets.Hockey(datasets.HockeyOptions{Seed: seed})
	rep := &Report{ID: "F7", Title: "Figure 7: Hockey top-50 drill-down"}

	// The data scientist believes Games ⊥ GPM | DraftYear; SCODED first
	// confirms the dataset violates it. The dependence is non-monotone
	// (imputed zeros sit mid-range), so the G statistic is used.
	a := sc.Approximate{SC: sc.MustParse("Games _||_ GPM | DraftYear"), Alpha: 0.05}
	res, err := detect.Check(data.Rel, a, detect.Options{Method: detect.G})
	if err != nil {
		return nil, err
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("violation detected: %v (p=%.3g)", res.Violated, res.Test.P))

	// The G method matches the detection: GPM = 0 sits mid-range, so the
	// tau path cannot see the imputation pattern.
	top, err := drilldown.TopK(data.Rel, a.SC, 50, drilldown.Options{
		Strategy: drilldown.K, Method: drilldown.GMethod,
	})
	if err != nil {
		return nil, err
	}

	t := Table{Title: "Top-50 records", Header: []string{"DraftYear", "GP>0", "GPM"}}
	year := data.Rel.MustColumn("DraftYear")
	games := data.Rel.MustColumn("Games")
	gpm := data.Rel.MustColumn("GPM")
	zeroGPM, pre2000, trueHits := 0, 0, 0
	for _, r := range top.Rows {
		gp := "No"
		if games.Value(r) > 0 {
			gp = "Yes"
		}
		t.Rows = append(t.Rows, []string{year.StringAt(r), gp, fmtF(gpm.Value(r))})
		//scoded:lint-ignore floatcmp imputed-zero GPM cells hold the exact value 0
		if gpm.Value(r) == 0 && games.Value(r) > 0 {
			zeroGPM++
		}
		if y, _ := strconv.Atoi(year.StringAt(r)); y < 2000 {
			pre2000++
		}
		if data.Truth[r] {
			trueHits++
		}
	}
	rep.Tables = append(rep.Tables, t)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("%d/50 records have GPM=0 while Games>0 (paper: 45/50)", zeroGPM),
		fmt.Sprintf("%d/50 records from draft years before 2000 (paper: all 45 imputed ones)", pre2000),
		fmt.Sprintf("%d/50 are ground-truth imputation errors", trueHits))
	return rep, nil
}

// Figure8 reproduces the Nebraska model-testing case study: the per-year
// p-values of the two dependence SCs ⟨Wind ⊥̸ Weather | Year, 0.3⟩ and
// ⟨Sea ⊥̸ Weather | Year, 0.3⟩ over the 1970-1999 test window — Figure 8(a)
// should spike above α = 0.3 at 1978 and 1989, Figure 8(b) at 1972 — plus
// the drill-down check that most of the 1972 outliers are recovered.
func Figure8(seed int64) (*Report, error) {
	const alpha = 0.3
	nd := datasets.Nebraska(datasets.NebraskaOptions{Seed: seed})
	rep := &Report{ID: "F8", Title: "Figure 8: Nebraska per-year p-values (alpha=0.3)"}

	groups := nd.Rel.GroupBy([]string{"Year"})
	wind := Series{Name: "wind-p"}
	sea := Series{Name: "sea-p"}
	var windViolations, seaViolations []string
	for year := 1970; year <= 1999; year++ {
		rows := groups[strconv.Itoa(year)]
		sub := nd.Rel.Subset(rows)
		w, err := detect.Check(sub, sc.Approximate{SC: sc.MustParse("Wind ~||~ Weather"), Alpha: alpha}, detect.Options{})
		if err != nil {
			return nil, err
		}
		s, err := detect.Check(sub, sc.Approximate{SC: sc.MustParse("Sea ~||~ Weather"), Alpha: alpha}, detect.Options{})
		if err != nil {
			return nil, err
		}
		wind.X = append(wind.X, float64(year))
		wind.Y = append(wind.Y, w.Test.P)
		sea.X = append(sea.X, float64(year))
		sea.Y = append(sea.Y, s.Test.P)
		if w.Violated {
			windViolations = append(windViolations, strconv.Itoa(year))
		}
		if s.Violated {
			seaViolations = append(seaViolations, strconv.Itoa(year))
		}
	}
	rep.Series = append(rep.Series, wind, sea)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("Wind DSC violations at years %v (paper: 1978, 1989)", windViolations),
		fmt.Sprintf("Sea DSC violations at years %v (paper: 1972)", seaViolations))

	// Drill-down inside 1972: the paper found that the returned records
	// carry the anomalous Sea values (about 64% of the outliers were in
	// the top-k). Our stuck-constant substitute makes every 1972 record an
	// outlier, so we check the analogue of the 1989 wind observation: all
	// top-50 records carry the stuck value.
	rows := groups["1972"]
	sub := nd.Rel.Subset(rows)
	top, err := drilldown.TopK(sub, sc.MustParse("Sea ~||~ Weather"), 50, drilldown.Options{Strategy: drilldown.K})
	if err != nil {
		return nil, err
	}
	seaCol := sub.MustColumn("Sea")
	stuck, hits := 0, 0
	for _, localRow := range top.Rows {
		//scoded:lint-ignore floatcmp the stuck-sensor cells hold the exact constant 1093
		if seaCol.Value(localRow) == 1093 {
			stuck++
		}
		if nd.Truth[rows[localRow]] {
			hits++
		}
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"1972 drill-down: %d/50 returned records carry the stuck Sea value; %d/50 are ground-truth outliers (paper: ~64%% of outliers returned)",
		stuck, hits))
	return rep, nil
}
