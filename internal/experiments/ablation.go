package experiments

import (
	"fmt"
	"math/rand"

	"scoded/internal/datasets"
	"scoded/internal/drilldown"
	"scoded/internal/errgen"
	"scoded/internal/eval"
	"scoded/internal/sc"
)

// Ablation quantifies the two drill-down design choices DESIGN.md §5 calls
// out, on quality rather than runtime (the runtime view lives in
// bench_test.go):
//
//   - K vs K^c per constraint type (the paper's §5.2 Remark): K^c should
//     win on independence SCs, K on dependence SCs;
//   - the §5.3 cell-contribution heuristic vs the exact greedy ΔG
//     objective for the categorical path, on the HOSP workload where the
//     heuristic's treatment of singleton cells drives the Figure 12
//     crossover.
func Ablation(seed int64) (*Report, error) {
	rep := &Report{ID: "ABL", Title: "Ablation: drill-down strategy and categorical objective"}

	// Part 1: K vs K^c on Boston, one error regime per constraint type.
	clean := datasets.Boston(datasets.BostonOptions{Seed: seed})
	type cfg struct {
		tag     string
		sc      sc.SC
		column  string
		basedOn string
		kind    errgen.Kind
	}
	cases := []cfg{
		{"ISC R _||_ B / sorting", sc.MustParse("R _||_ B"), "R", "B", errgen.Sorting},
		{"DSC N ~||~ D / imputation", sc.MustParse("N ~||~ D"), "N", "", errgen.Imputation},
	}
	strat := Table{
		Title:  "K vs K^c mean F-score (Boston, rate 30%)",
		Header: []string{"constraint / error", "K", "K^c"},
	}
	for _, c := range cases {
		rng := rand.New(rand.NewSource(seed + 11))
		dirty, truth, err := errgen.Inject(clean, errgen.Spec{
			Kind: c.kind, Column: c.column, Rate: 0.3, BasedOn: c.basedOn,
		}, rng)
		if err != nil {
			return nil, err
		}
		nErr := eval.TruthCount(truth)
		ks := eval.Ks(nErr/4, nErr*2, nErr/4)
		var means [2]float64
		for si, strategy := range []drilldown.Strategy{drilldown.K, drilldown.Kc} {
			curve, err := eval.Curve(func(k int) ([]int, error) {
				res, err := drilldown.TopK(dirty, c.sc, k, drilldown.Options{Strategy: strategy})
				if err != nil {
					return nil, err
				}
				return res.Rows, nil
			}, truth, ks)
			if err != nil {
				return nil, err
			}
			means[si] = eval.MeanF(curve)
		}
		strat.Rows = append(strat.Rows, []string{c.tag, fmtF(means[0]), fmtF(means[1])})
		winner := "K"
		if means[1] > means[0] {
			winner = "K^c"
		}
		rep.Notes = append(rep.Notes, fmt.Sprintf("%s: K=%.3f K^c=%.3f (winner %s)", c.tag, means[0], means[1], winner))
	}
	rep.Tables = append(rep.Tables, strat)

	// Part 2: cell-contribution vs exact-ΔG on the HOSP FD→DSC workload.
	hosp := datasets.Hosp(datasets.HospOptions{Seed: seed})
	nErr := eval.TruthCount(hosp.Truth)
	ks := eval.Ks(nErr/2, nErr*2, nErr/2)
	dsc := sc.MustParse("Zip ~||~ City")
	obj := Table{
		Title:  "Categorical objective mean F-score (HOSP, Zip ~||~ City)",
		Header: []string{"objective", "mean F"},
	}
	for _, o := range []struct {
		name string
		v    drilldown.GObjective
	}{
		{"cell-contribution (paper §5.3)", drilldown.CellContribution},
		{"exact-delta greedy", drilldown.ExactDelta},
	} {
		curve, err := eval.Curve(func(k int) ([]int, error) {
			res, err := drilldown.TopK(hosp.Rel, dsc, k, drilldown.Options{
				Strategy: drilldown.K, GObjective: o.v,
			})
			if err != nil {
				return nil, err
			}
			return res.Rows, nil
		}, hosp.Truth, ks)
		if err != nil {
			return nil, err
		}
		obj.Rows = append(obj.Rows, []string{o.name, fmtF(eval.MeanF(curve))})
		rep.Notes = append(rep.Notes, fmt.Sprintf("objective %s: mean F=%.3f", o.name, eval.MeanF(curve)))
	}
	rep.Tables = append(rep.Tables, obj)
	return rep, nil
}
