// Package experiments implements one self-contained, deterministic runner
// per experiment of the paper's Section 6 (and the Section 2 theory
// artifacts). The same runners back the root benchmark suite
// (bench_test.go), the cmd/scoded-bench driver, and the paper-vs-measured
// records in EXPERIMENTS.md, so every surface executes identical code.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Series is one named line of a figure: parallel X and Y values.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Table is a printable table artifact.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Report is the output of one experiment runner.
type Report struct {
	// ID is the experiment identifier from DESIGN.md §3 (e.g. "F12a").
	ID string
	// Title describes the paper artifact reproduced.
	Title string
	// Tables holds table-form results.
	Tables []Table
	// Series holds figure-form results (one per plotted line).
	Series []Series
	// Notes records observations to compare against the paper's claims.
	Notes []string
}

// String renders the report as indented text for the bench driver.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		fmt.Fprintf(&b, "\n-- %s --\n", t.Title)
		writeTable(&b, t)
	}
	for _, s := range r.Series {
		fmt.Fprintf(&b, "\nseries %s:\n", s.Name)
		for i := range s.X {
			fmt.Fprintf(&b, "  x=%-10.4g y=%.4f\n", s.X[i], s.Y[i])
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\nnote: %s\n", n)
	}
	return b.String()
}

func writeTable(b *strings.Builder, t Table) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
}

// seriesMaxY returns the maximum Y of a series; used in assertions.
func seriesMaxY(s Series) float64 {
	best := 0.0
	for _, y := range s.Y {
		if y > best {
			best = y
		}
	}
	return best
}

// seriesMeanY returns the mean Y of a series.
func seriesMeanY(s Series) float64 {
	if len(s.Y) == 0 {
		return 0
	}
	var sum float64
	for _, y := range s.Y {
		sum += y
	}
	return sum / float64(len(s.Y))
}

// FindSeries returns the named series of a report.
func (r *Report) FindSeries(name string) (Series, bool) {
	for _, s := range r.Series {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}

// fmtF formats a float for table cells.
func fmtF(v float64) string { return fmt.Sprintf("%.4f", v) }

// sortedKeys returns the sorted keys of a string-keyed map of float64.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
