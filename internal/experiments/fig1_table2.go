package experiments

import (
	"fmt"
	"math/rand"

	"scoded/internal/bayes"
	"scoded/internal/discovery"
	"scoded/internal/ic"
	"scoded/internal/relation"
	"scoded/internal/sc"
)

// Figure1 reproduces the SC Discovery workflow of Figure 1: build a
// car-like dataset from a ground-truth Bayesian network (Model → Color
// planted as the counter-intuitive edge, Model → Price, Price → Fuel),
// profile it with a correlation matrix (Figure 1a), learn a network back
// from the data and derive SCs by d-separation (Figure 1b).
func Figure1(seed int64) (*Report, error) {
	rng := rand.New(rand.NewSource(seed))
	truth := bayes.MustNewDAG([]string{"Model", "Color", "Price", "Fuel"})
	for _, e := range [][2]string{{"Model", "Color"}, {"Model", "Price"}, {"Price", "Fuel"}} {
		if err := truth.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	net := &bayes.Network{
		Graph: truth,
		Levels: map[string][]string{
			"Model": {"bmw", "prius", "civic"},
			"Color": {"white", "black"},
			"Price": {"low", "mid", "high"},
			"Fuel":  {"gas", "hybrid"},
		},
		CPTs: map[string]map[string][]float64{
			"Model": {"": {0.4, 0.35, 0.25}},
			// The planted data error: Color strongly follows Model.
			"Color": {"bmw": {0.8, 0.2}, "prius": {0.25, 0.75}, "civic": {0.5, 0.5}},
			"Price": {"bmw": {0.1, 0.3, 0.6}, "prius": {0.3, 0.5, 0.2}, "civic": {0.6, 0.3, 0.1}},
			"Fuel":  {"low": {0.9, 0.1}, "mid": {0.6, 0.4}, "high": {0.3, 0.7}},
		},
	}
	data, err := net.Sample(4000, rng)
	if err != nil {
		return nil, err
	}

	rep := &Report{ID: "F1", Title: "Figure 1: SC discovery via correlation matrix and Bayesian network"}

	cols := []string{"Model", "Color", "Price", "Fuel"}
	matrix, err := discovery.CorrelationMatrix(data, cols, 4)
	if err != nil {
		return nil, err
	}
	mt := Table{Title: "Correlation matrix (Cramer's V)", Header: append([]string{""}, cols...)}
	for i, c := range cols {
		row := []string{c}
		for j := range cols {
			row = append(row, fmtF(matrix.Values[i][j]))
		}
		mt.Rows = append(mt.Rows, row)
	}
	rep.Tables = append(rep.Tables, mt)

	mc, err := matrix.At("Model", "Color")
	if err != nil {
		return nil, err
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"counter-intuitive cell Model-Color association = %.3f (dark cell of Figure 1a)", mc))

	learned, err := bayes.LearnStructure(data, cols, bayes.LearnOptions{})
	if err != nil {
		return nil, err
	}
	et := Table{Title: "Learned Bayesian network edges", Header: []string{"from", "to"}}
	for _, e := range learned.Edges() {
		et.Rows = append(et.Rows, []string{e[0], e[1]})
	}
	rep.Tables = append(rep.Tables, et)

	implied, err := discovery.ImpliedSCs(learned, 1)
	if err != nil {
		return nil, err
	}
	st := Table{Title: "SCs implied by d-separation (|Z| <= 1)", Header: []string{"constraint"}}
	for _, c := range implied {
		st.Rows = append(st.Rows, []string{c.String()})
	}
	rep.Tables = append(rep.Tables, st)

	// The paper's two Figure 1 derivations.
	sep, err := learned.DSeparated([]string{"Color"}, []string{"Price"}, []string{"Model"})
	if err != nil {
		return nil, err
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("Color ⊥ Price | Model derived from learned network: %v", sep))
	adjacent := learned.HasEdge("Model", "Color") || learned.HasEdge("Color", "Model")
	rep.Notes = append(rep.Notes, fmt.Sprintf("Model-Color dependence recovered by structure learning: %v", adjacent))
	return rep, nil
}

// Table2 reproduces the Section 2.2 counterexample: the 6-row relation of
// Table 2 satisfies the EMVD Z ↠ X | Y while violating the ISC X ⊥ Y | Z,
// witnessing that the converse of Proposition 1 fails.
func Table2() (*Report, error) {
	d := relation.MustNew(
		relation.NewCategoricalColumn("Z", []string{"z1", "z1", "z1", "z1", "z1", "z1"}),
		relation.NewCategoricalColumn("X", []string{"x1", "x2", "x1", "x1", "x1", "x2"}),
		relation.NewCategoricalColumn("Y", []string{"y1", "y2", "y2", "y2", "y2", "y1"}),
		relation.NewCategoricalColumn("M", []string{"m1", "m1", "m1", "m2", "m3", "m1"}),
	)
	rep := &Report{ID: "T2", Title: "Table 2: EMVD holds but ISC fails (Proposition 1 converse)"}
	t := Table{Title: "Relation", Header: []string{"Z", "X", "Y", "M"}}
	for i := 0; i < d.NumRows(); i++ {
		t.Rows = append(t.Rows, d.Row(i))
	}
	rep.Tables = append(rep.Tables, t)

	emvd := ic.EMVD{X: []string{"Z"}, Y: []string{"X"}, Z: []string{"Y"}}
	holds, err := emvd.Holds(d)
	if err != nil {
		return nil, err
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("EMVD %s holds: %v", emvd, holds))

	sat, err := ic.SatisfiesISCExactly(d, sc.MustParse("X _||_ Y | Z"), 1e-9)
	if err != nil {
		return nil, err
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("ISC X _||_ Y | Z satisfied: %v (paper: violated, P(x1,y1|z1)=1/6 != 2/9)", sat))
	if !holds || sat {
		return nil, fmt.Errorf("experiments: Table 2 counterexample failed: emvd=%v isc=%v", holds, sat)
	}
	return rep, nil
}
