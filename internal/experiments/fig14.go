package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"scoded/internal/datasets"
	"scoded/internal/drilldown"
	"scoded/internal/errgen"
	"scoded/internal/relation"
	"scoded/internal/sc"
)

// Figure14 reproduces the scalability study: drill-down runtime on the
// replicated Boston dataset with the dependence SC N ⊥̸ D, varying k at
// fixed n — Figure 14(a) — and varying n at fixed k — Figure 14(b). The
// paper's complexity analysis is O(n log n) initialization plus O(k n)
// selection, so both curves should grow near-linearly.
func Figure14(seed int64) (*Report, error) {
	rep := &Report{ID: "F14", Title: "Figure 14: scalability of SCODED drill-down (N ~||~ D)"}
	constraint := sc.MustParse("N ~||~ D")

	makeData := func(copies int) (*relation.Relation, error) {
		base := datasets.Boston(datasets.BostonOptions{Seed: seed})
		rel := datasets.Replicate(base, copies)
		rng := rand.New(rand.NewSource(seed + 1))
		dirty, _, err := errgen.Inject(rel, errgen.Spec{
			Kind: errgen.Imputation, Column: "N", Rate: 0.2,
		}, rng)
		return dirty, err
	}

	// (a) vary k at fixed n.
	const fixedCopies = 20 // ~10k records
	data, err := makeData(fixedCopies)
	if err != nil {
		return nil, err
	}
	varyK := Series{Name: "time-vs-k(ms)"}
	for _, k := range []int{100, 200, 400, 800, 1600} {
		elapsed, err := timeTopK(data, constraint, k)
		if err != nil {
			return nil, err
		}
		varyK.X = append(varyK.X, float64(k))
		varyK.Y = append(varyK.Y, elapsed)
	}
	rep.Series = append(rep.Series, varyK)

	// (b) vary n at fixed k.
	varyN := Series{Name: "time-vs-n(ms)"}
	for _, copies := range []int{5, 10, 20, 40, 80} {
		data, err := makeData(copies)
		if err != nil {
			return nil, err
		}
		elapsed, err := timeTopK(data, constraint, 200)
		if err != nil {
			return nil, err
		}
		varyN.X = append(varyN.X, float64(data.NumRows()))
		varyN.Y = append(varyN.Y, elapsed)
	}
	rep.Series = append(rep.Series, varyN)

	rep.Notes = append(rep.Notes,
		fmt.Sprintf("time at k=1600, n=%d: %.1f ms", 506*fixedCopies, varyK.Y[len(varyK.Y)-1]),
		fmt.Sprintf("time at n=%d, k=200: %.1f ms", 506*80, varyN.Y[len(varyN.Y)-1]),
		"expected shape: near-linear growth in both k and n (O(n log n) init + O(k n) selection)")
	return rep, nil
}

func timeTopK(data *relation.Relation, c sc.SC, k int) (ms float64, err error) {
	start := time.Now()
	_, err = drilldown.TopK(data, c, k, drilldown.Options{Strategy: drilldown.K})
	if err != nil {
		return 0, err
	}
	return float64(time.Since(start).Microseconds()) / 1000, nil
}
