package experiments

import (
	"fmt"
	"math/rand"

	"scoded/internal/baselines/afd"
	"scoded/internal/baselines/dboost"
	"scoded/internal/datasets"
	"scoded/internal/drilldown"
	"scoded/internal/errgen"
	"scoded/internal/eval"
	"scoded/internal/ic"
	"scoded/internal/sc"
)

// Figure12 reproduces the HOSP comparison of approximate functional
// dependencies against the FD→DSC translation (Proposition 2): F-score@K
// of AFD violation-ranking versus SCODED drill-down on Zip ⊥̸ City —
// Figure 12(a) — and Zip ⊥̸ State — Figure 12(b). Expected shape: the two
// curves coincide while the right-hand-side errors last (both at 100%
// precision), then AFD's F-score stalls and decays — it ranks the
// zero-violation left-hand-side typos dead last — while SCODED's keeps
// growing as it reaches the LHS errors.
func Figure12(seed int64) (*Report, error) {
	data := datasets.Hosp(datasets.HospOptions{Seed: seed})
	d := data.Rel
	truth := data.Truth
	nErr := eval.TruthCount(truth)
	ks := eval.Ks(nErr/5, nErr*2, nErr/5)

	rep := &Report{ID: "F12", Title: "Figure 12: HOSP — SCODED (FD→DSC) vs AFD"}

	for _, cfg := range []struct {
		tag string
		fd  ic.FD
	}{
		{"a:Zip->City", ic.FD{LHS: []string{"Zip"}, RHS: []string{"City"}}},
		{"b:Zip->State", ic.FD{LHS: []string{"Zip"}, RHS: []string{"State"}}},
	} {
		ratio, err := cfg.fd.ApproximationRatio(d)
		if err != nil {
			return nil, err
		}
		rep.Notes = append(rep.Notes, fmt.Sprintf("%s approximation ratio = %.3f (paper used 25%%)", cfg.tag, ratio))

		dsc := cfg.fd.ToDSC()
		rankers := map[string]eval.Ranker{
			"SCODED": scodedRanker(d, []sc.SC{dsc}, drilldown.Options{Strategy: drilldown.K}),
			"AFD": baselineRanker(func(k int) ([]int, error) {
				return (&afd.Detector{FDs: []ic.FD{cfg.fd}}).TopK(d, k)
			}),
		}
		var fAtCross [2]float64
		for i, name := range []string{"SCODED", "AFD"} {
			curve, err := eval.Curve(rankers[name], truth, ks)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", cfg.tag, name, err)
			}
			s := Series{Name: cfg.tag + "/" + name}
			for _, m := range curve {
				s.X = append(s.X, float64(m.K))
				s.Y = append(s.Y, m.F)
			}
			rep.Series = append(rep.Series, s)
			fAtCross[i] = curve[len(curve)-1].F
		}
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%s F at K=%d: SCODED=%.3f AFD=%.3f (paper: SCODED keeps growing past the AFD plateau)",
			cfg.tag, ks[len(ks)-1], fAtCross[0], fAtCross[1]))
	}
	return rep, nil
}

// Figure13 reproduces the categorical-data experiment on CAR: the G-test
// SCs BP ⊥̸ CL (dependence, K strategy) and SA ⊥ DR (independence, K^c
// strategy) under imputation errors at a moderate rate, against DBoost with
// histogram models. Expected shape: SCODED's average F-score roughly
// doubles DBoost's (paper: 0.49 vs 0.25).
func Figure13(seed int64) (*Report, error) {
	clean := datasets.Car(datasets.CarOptions{Seed: seed})
	rep := &Report{ID: "F13", Title: "Figure 13: CAR categorical SCs vs DBoost (imputation errors)"}

	var all []float64
	var allBoost []float64
	for _, cfg := range []struct {
		tag     string
		sc      sc.SC
		column  string
		basedOn string
	}{
		// Random imputation on the class label weakens BP ⊥̸ CL.
		{"BP~||~CL", sc.MustParse("BP ~||~ CL"), "CL", ""},
		// DR-driven imputation on SA plants a dependence violating SA ⊥ DR.
		{"SA_||_DR", sc.MustParse("SA _||_ DR"), "SA", "DR"},
	} {
		rng := rand.New(rand.NewSource(seed + 7))
		dirty, truth, err := errgen.Inject(clean, errgen.Spec{
			Kind: errgen.Imputation, Column: cfg.column, Rate: 0.25, BasedOn: cfg.basedOn,
		}, rng)
		if err != nil {
			return nil, err
		}
		nErr := eval.TruthCount(truth)
		ks := eval.Ks(nErr/4, nErr*2, nErr/4)

		strategy := drilldown.K
		if !cfg.sc.Dependence {
			strategy = drilldown.Kc
		}
		scodedCurve, err := eval.Curve(scodedRanker(dirty, []sc.SC{cfg.sc},
			drilldown.Options{Strategy: strategy}), truth, ks)
		if err != nil {
			return nil, err
		}
		boostCurve, err := eval.Curve(baselineRanker(func(k int) ([]int, error) {
			return (&dboost.Detector{Opts: dboost.Options{
				Model: dboost.Histogram, Columns: cfg.sc.Columns(),
			}}).TopK(dirty, k)
		}), truth, ks)
		if err != nil {
			return nil, err
		}
		for _, curve := range []struct {
			name string
			c    []eval.Metrics
		}{{"SCODED", scodedCurve}, {"DBoost", boostCurve}} {
			s := Series{Name: cfg.tag + "/" + curve.name}
			for _, m := range curve.c {
				s.X = append(s.X, float64(m.K))
				s.Y = append(s.Y, m.F)
			}
			rep.Series = append(rep.Series, s)
		}
		all = append(all, eval.MeanF(scodedCurve))
		allBoost = append(allBoost, eval.MeanF(boostCurve))
		rep.Notes = append(rep.Notes, fmt.Sprintf("%s: SCODED mean F=%.3f, DBoost mean F=%.3f",
			cfg.tag, eval.MeanF(scodedCurve), eval.MeanF(boostCurve)))
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"overall mean F: SCODED=%.3f DBoost=%.3f (paper: 0.49 vs 0.25)",
		mean(all), mean(allBoost)))
	return rep, nil
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
