package experiments

import (
	"fmt"

	"scoded/internal/baselines/dboost"
	"scoded/internal/baselines/dcdetect"
	"scoded/internal/baselines/holoclean"
	"scoded/internal/datasets"
	"scoded/internal/drilldown"
	"scoded/internal/eval"
	"scoded/internal/ic"
	"scoded/internal/relation"
	"scoded/internal/sc"
)

// scodedRanker adapts the (multi-constraint) drill-down to an eval.Ranker.
func scodedRanker(d *relation.Relation, cs []sc.SC, opts drilldown.Options) eval.Ranker {
	return func(k int) ([]int, error) {
		return drilldown.MultiTopK(d, cs, k, opts)
	}
}

// baselineRanker adapts a TopK detector to an eval.Ranker.
func baselineRanker(topK func(k int) ([]int, error)) eval.Ranker {
	return func(k int) ([]int, error) { return topK(k) }
}

// Figure9 reproduces the Sensor comparison: F-score@K of SCODED, DCDetect,
// DCDetect+HC and DBoost under a single constraint (T8 ⊥̸ T9 vs the
// corresponding monotonicity DC) — Figure 9(a) — and under three
// constraints over sensors 7, 8, 9 — Figure 9(b). Expected shape: SCODED
// highest, DBoost middle, DCDetect ≈ DCDetect+HC lowest with one
// constraint, DCDetect+HC pulling ahead of DCDetect with three.
func Figure9(seed int64) (*Report, error) {
	data := datasets.Sensor(datasets.SensorOptions{Seed: seed})
	d := data.Rel
	truth := data.Truth
	nErr := eval.TruthCount(truth)
	ks := eval.Ks(nErr/4, nErr*2, nErr/4)

	rep := &Report{ID: "F9", Title: "Figure 9: Sensor — SCODED vs DCDetect vs DCDetect+HC vs DBoost"}

	// Table 3's sensor ICs use the cross-column form
	// ¬(r1[Ta] > r2[Tb] ∧ r1[Tb] <= r2[Tb]).
	single := struct {
		scs []sc.SC
		dcs []ic.DC
	}{
		scs: []sc.SC{sc.MustParse("T8 ~||~ T9")},
		dcs: []ic.DC{ic.CrossMonotoneDC("T8", "T9")},
	}
	multi := struct {
		scs []sc.SC
		dcs []ic.DC
	}{
		scs: []sc.SC{sc.MustParse("T7 ~||~ T8"), sc.MustParse("T8 ~||~ T9"), sc.MustParse("T7 ~||~ T9")},
		dcs: []ic.DC{ic.CrossMonotoneDC("T7", "T8"), ic.CrossMonotoneDC("T8", "T9"), ic.CrossMonotoneDC("T7", "T9")},
	}

	for _, cfg := range []struct {
		tag  string
		scs  []sc.SC
		dcs  []ic.DC
		cols []string
	}{
		{"single", single.scs, single.dcs, []string{"T8", "T9"}},
		{"multi", multi.scs, multi.dcs, []string{"T7", "T8", "T9"}},
	} {
		rankers := map[string]eval.Ranker{
			"SCODED": scodedRanker(d, cfg.scs, drilldown.Options{Strategy: drilldown.K}),
			"DCDetect": baselineRanker(func(k int) ([]int, error) {
				return (&dcdetect.Detector{DCs: cfg.dcs}).TopK(d, k)
			}),
			"DCDetect+HC": baselineRanker(func(k int) ([]int, error) {
				return (&holoclean.Detector{DCs: cfg.dcs}).TopK(d, k)
			}),
			// DBoost sees the same columns the constraints cover, the fair
			// comparison the paper's per-configuration setup implies.
			"DBoost": baselineRanker(func(k int) ([]int, error) {
				return (&dboost.Detector{Opts: dboost.Options{Model: dboost.Correlated, Columns: cfg.cols}}).TopK(d, k)
			}),
		}
		meanF := make(map[string]float64)
		for _, name := range []string{"SCODED", "DCDetect", "DCDetect+HC", "DBoost"} {
			curve, err := eval.Curve(rankers[name], truth, ks)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", cfg.tag, name, err)
			}
			s := Series{Name: cfg.tag + "/" + name}
			for _, m := range curve {
				s.X = append(s.X, float64(m.K))
				s.Y = append(s.Y, m.F)
			}
			rep.Series = append(rep.Series, s)
			meanF[name] = eval.MeanF(curve)
		}
		t := Table{Title: "Mean F-score (" + cfg.tag + " constraint)", Header: []string{"approach", "mean F"}}
		for _, name := range sortedKeys(meanF) {
			t.Rows = append(t.Rows, []string{name, fmtF(meanF[name])})
		}
		rep.Tables = append(rep.Tables, t)
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%s: SCODED=%.3f DBoost=%.3f DCDetect=%.3f DCDetect+HC=%.3f",
			cfg.tag, meanF["SCODED"], meanF["DBoost"], meanF["DCDetect"], meanF["DCDetect+HC"]))
	}
	return rep, nil
}
