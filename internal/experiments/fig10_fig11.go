package experiments

import (
	"fmt"
	"math/rand"

	"scoded/internal/baselines/dboost"
	"scoded/internal/baselines/dcdetect"
	"scoded/internal/datasets"
	"scoded/internal/detect"
	"scoded/internal/drilldown"
	"scoded/internal/errgen"
	"scoded/internal/eval"
	"scoded/internal/ic"
	"scoded/internal/relation"
	"scoded/internal/sc"
)

// Figure10 reproduces the Boston dependence-SC experiment: the DSC N ⊥̸ D
// with the three error types (sorting, imputation, combination) injected
// into N at a moderate rate, F-score@K curves for SCODED (K strategy),
// DCDetect (the Table 3 monotone DC) and DBoost. Expected shape: SCODED
// far above both baselines, with sorting errors easier than imputation.
func Figure10(seed int64) (*Report, error) {
	return bostonExperiment(bostonConfig{
		id:        "F10",
		title:     "Figure 10: Boston dependence SC N ~||~ D by error type",
		sc:        sc.MustParse("N ~||~ D"),
		column:    "N",
		basedOn:   "", // random selection weakens the dependence
		rate:      0.3,
		strategy:  drilldown.K,
		withDC:    true,
		dc:        ic.MonotoneDC("D", "N"),
		seed:      seed,
		errorKind: []errgen.Kind{errgen.Sorting, errgen.Imputation, errgen.Combination},
	})
}

// Figure11 reproduces the Boston independence-SC experiment: the ISC R ⊥ B
// with errors injected into R based on column B (planting a dependence),
// F-score@K for SCODED (K^c strategy) and DBoost. DCDetect cannot express
// an independence constraint (Section 2.2) and is omitted, as in the paper.
func Figure11(seed int64) (*Report, error) {
	return bostonExperiment(bostonConfig{
		id:        "F11",
		title:     "Figure 11: Boston independence SC R _||_ B by error type",
		sc:        sc.MustParse("R _||_ B"),
		column:    "R",
		basedOn:   "B", // B-driven selection plants the dependence
		rate:      0.3,
		strategy:  drilldown.Kc,
		withDC:    false,
		seed:      seed,
		errorKind: []errgen.Kind{errgen.Sorting, errgen.Imputation, errgen.Combination},
	})
}

// Figure10Rates sweeps the error rate over the paper's 20-45% band for the
// Figure 10 dependence setting (sorting errors on N), reporting SCODED's
// mean F per rate — the "average error rate for the N column is moderate
// (20%-45%)" dimension of the paper's setup.
func Figure10Rates(seed int64) (*Report, error) {
	rep := &Report{ID: "F10r", Title: "Figure 10 rate sweep: N ~||~ D, sorting errors at 20-45%"}
	table := Table{Title: "SCODED mean F by error rate", Header: []string{"rate", "SCODED", "DCDetect", "DBoost"}}
	for _, rate := range []float64{0.20, 0.30, 0.45} {
		sub, err := bostonExperiment(bostonConfig{
			id:        "F10r",
			title:     "rate sweep",
			sc:        sc.MustParse("N ~||~ D"),
			column:    "N",
			rate:      rate,
			strategy:  drilldown.K,
			withDC:    true,
			dc:        ic.MonotoneDC("D", "N"),
			seed:      seed,
			errorKind: []errgen.Kind{errgen.Sorting},
		})
		if err != nil {
			return nil, err
		}
		var sco, dc, boost float64
		for _, s := range sub.Series {
			switch s.Name {
			case "sorting/SCODED":
				sco = seriesMeanY(s)
			case "sorting/DCDetect":
				dc = seriesMeanY(s)
			case "sorting/DBoost":
				boost = seriesMeanY(s)
			}
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%.0f%%", 100*rate), fmtF(sco), fmtF(dc), fmtF(boost),
		})
		rep.Notes = append(rep.Notes, fmt.Sprintf("rate %.0f%%: SCODED=%.3f DCDetect=%.3f DBoost=%.3f",
			100*rate, sco, dc, boost))
	}
	rep.Tables = append(rep.Tables, table)
	return rep, nil
}

// FigureConditional covers the Section 6.3 "Conditional SCs" paragraph: the
// conditional constraints TX ⊥̸ B | C and N ⊥ B | TX on Boston, which the
// paper reports behave like their marginal counterparts (no figure given).
func FigureConditional(seed int64) (*Report, error) {
	rep := &Report{ID: "F10c", Title: "Conditional SCs on Boston (Section 6.3)"}

	// Dependence: TX ~||~ B | C with random imputation on TX.
	depRep, err := bostonExperiment(bostonConfig{
		id:        "F10c-dep",
		title:     "TX ~||~ B | C",
		sc:        sc.MustParse("TX ~||~ B | C"),
		column:    "TX",
		basedOn:   "",
		rate:      0.3,
		strategy:  drilldown.K,
		withDC:    true,
		dc:        ic.ConditionalMonotoneDC("C", "TX", "B"),
		seed:      seed,
		errorKind: []errgen.Kind{errgen.Imputation},
		bins:      3,
	})
	if err != nil {
		return nil, err
	}
	// Independence: N _||_ B | TX with B-driven sorting on N.
	indRep, err := bostonExperiment(bostonConfig{
		id:        "F10c-ind",
		title:     "N _||_ B | TX",
		sc:        sc.MustParse("N _||_ B | TX"),
		column:    "N",
		basedOn:   "B",
		rate:      0.3,
		strategy:  drilldown.Kc,
		withDC:    false,
		seed:      seed,
		errorKind: []errgen.Kind{errgen.Sorting},
		bins:      3,
	})
	if err != nil {
		return nil, err
	}
	rep.Series = append(rep.Series, depRep.Series...)
	rep.Series = append(rep.Series, indRep.Series...)
	rep.Tables = append(rep.Tables, depRep.Tables...)
	rep.Tables = append(rep.Tables, indRep.Tables...)
	rep.Notes = append(rep.Notes, depRep.Notes...)
	rep.Notes = append(rep.Notes, indRep.Notes...)
	return rep, nil
}

type bostonConfig struct {
	id, title string
	sc        sc.SC
	column    string
	basedOn   string
	rate      float64
	strategy  drilldown.Strategy
	withDC    bool
	dc        ic.DC
	seed      int64
	errorKind []errgen.Kind
	bins      int
}

func bostonExperiment(cfg bostonConfig) (*Report, error) {
	rep := &Report{ID: cfg.id, Title: cfg.title}
	clean := datasets.Boston(datasets.BostonOptions{Seed: cfg.seed})
	ddOpts := drilldown.Options{Strategy: cfg.strategy}

	for _, kind := range cfg.errorKind {
		rng := rand.New(rand.NewSource(cfg.seed + int64(kind) + 1))
		dirty, truth, err := errgen.Inject(clean, errgen.Spec{
			Kind: kind, Column: cfg.column, Rate: cfg.rate, BasedOn: cfg.basedOn,
		}, rng)
		if err != nil {
			return nil, err
		}
		work := dirty
		workSC := cfg.sc
		if len(cfg.sc.Z) > 0 {
			bins := cfg.bins
			if bins <= 1 {
				bins = 3
			}
			work, workSC, err = discretizeConditioning(dirty, cfg.sc, bins)
			if err != nil {
				return nil, err
			}
		}

		nErr := eval.TruthCount(truth)
		ks := eval.Ks(nErr/4, nErr*2, nErr/4)

		rankers := map[string]eval.Ranker{
			"SCODED": scodedRanker(work, []sc.SC{workSC}, ddOpts),
			"DBoost": baselineRanker(func(k int) ([]int, error) {
				return (&dboost.Detector{Opts: dboost.Options{
					Model: dboost.GMM, Columns: cfg.sc.Columns(),
				}}).TopK(dirty, k)
			}),
		}
		if cfg.withDC {
			rankers["DCDetect"] = baselineRanker(func(k int) ([]int, error) {
				return (&dcdetect.Detector{DCs: []ic.DC{cfg.dc}}).TopK(dirty, k)
			})
		}
		meanF := make(map[string]float64)
		maxF := make(map[string]float64)
		for name, r := range rankers {
			curve, err := eval.Curve(r, truth, ks)
			if err != nil {
				return nil, fmt.Errorf("%s/%s/%s: %w", cfg.id, kind, name, err)
			}
			s := Series{Name: kind.String() + "/" + name}
			for _, m := range curve {
				s.X = append(s.X, float64(m.K))
				s.Y = append(s.Y, m.F)
			}
			rep.Series = append(rep.Series, s)
			meanF[name] = eval.MeanF(curve)
			maxF[name] = eval.MaxF(curve)
		}
		t := Table{
			Title:  fmt.Sprintf("%s errors (rate %.0f%%)", kind, 100*cfg.rate),
			Header: []string{"approach", "mean F", "max F"},
		}
		for _, name := range sortedKeys(meanF) {
			t.Rows = append(t.Rows, []string{name, fmtF(meanF[name]), fmtF(maxF[name])})
		}
		rep.Tables = append(rep.Tables, t)
		rep.Notes = append(rep.Notes, fmt.Sprintf("%s: SCODED mean F=%.3f max F=%.3f",
			kind, meanF["SCODED"], maxF["SCODED"]))
	}
	return rep, nil
}

// discretizeConditioning replaces numeric conditioning columns of the SC by
// quantile-binned categorical copies so that stratification is meaningful,
// returning the rewritten relation and constraint.
func discretizeConditioning(d *relation.Relation, c sc.SC, bins int) (*relation.Relation, sc.SC, error) {
	out := d.Clone()
	newZ := make([]string, len(c.Z))
	for i, z := range c.Z {
		col, err := out.Column(z)
		if err != nil {
			return nil, sc.SC{}, err
		}
		if col.Kind != relation.Numeric {
			newZ[i] = z
			continue
		}
		codes, _ := detect.DiscretizeQuantile(col.Floats(), bins)
		labels := make([]string, len(codes))
		for j, code := range codes {
			labels[j] = fmt.Sprintf("bin%d", code)
		}
		name := z + "_bin"
		if err := out.AddColumn(relation.NewCategoricalColumn(name, labels)); err != nil {
			return nil, sc.SC{}, err
		}
		newZ[i] = name
	}
	c2 := c
	c2.Z = newZ
	return out, c2, nil
}
