package experiments

import (
	"strings"
	"testing"
)

// The experiment runners are the reproduction's deliverable: these tests
// assert the *shape* claims of the paper's evaluation (who wins, by roughly
// what factor, where crossovers fall) on the seeded synthetic datasets.

func TestFigure1(t *testing.T) {
	rep, err := Figure1(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 3 {
		t.Fatalf("tables = %d", len(rep.Tables))
	}
	assertNote(t, rep, "Model-Color dependence recovered by structure learning: true")
	assertNote(t, rep, "Color ⊥ Price | Model derived from learned network: true")
	if rep.String() == "" {
		t.Error("report should render")
	}
}

func TestTable2(t *testing.T) {
	rep, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	assertNote(t, rep, "EMVD Z ->> X | Y holds: true")
	assertNote(t, rep, "ISC X _||_ Y | Z satisfied: false")
}

func TestFigure7(t *testing.T) {
	rep, err := Figure7(1)
	if err != nil {
		t.Fatal(err)
	}
	assertNote(t, rep, "violation detected: true")
	// The paper observed 45/50; require at least 40/50 of the signature
	// pattern and all-but-a-few pre-2000 records.
	zero := noteNumber(t, rep, "records have GPM=0 while Games>0")
	if zero < 40 {
		t.Errorf("GPM=0 ∧ Games>0 records = %d/50, want >= 40 (paper: 45)", zero)
	}
	pre := noteNumber(t, rep, "records from draft years before 2000")
	if pre < 40 {
		t.Errorf("pre-2000 records = %d/50, want >= 40", pre)
	}
	hits := noteNumber(t, rep, "are ground-truth imputation errors")
	if hits < 40 {
		t.Errorf("true errors in top-50 = %d, want >= 40", hits)
	}
}

func TestFigure8(t *testing.T) {
	rep, err := Figure8(1)
	if err != nil {
		t.Fatal(err)
	}
	assertNote(t, rep, "Wind DSC violations at years [1978 1989]")
	assertNote(t, rep, "Sea DSC violations at years [1972]")
	wind, ok := rep.FindSeries("wind-p")
	if !ok || len(wind.X) != 30 {
		t.Fatalf("wind series missing or wrong length")
	}
	// Every record the 1972 drill-down returns must be a ground-truth
	// outlier carrying the stuck value.
	if hits := noteNumber(t, rep, "/50 returned records carry the stuck Sea value"); hits < 50 {
		t.Errorf("stuck-value records in top-50 = %d, want 50", hits)
	}
}

func TestFigure9(t *testing.T) {
	rep, err := Figure9(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tag := range []string{"single", "multi"} {
		sco := meanOf(t, rep, tag+"/SCODED")
		dc := meanOf(t, rep, tag+"/DCDetect")
		hc := meanOf(t, rep, tag+"/DCDetect+HC")
		boost := meanOf(t, rep, tag+"/DBoost")
		if sco <= dc || sco <= boost || sco <= hc {
			t.Errorf("%s: SCODED (%.3f) should beat DCDetect (%.3f), DCDetect+HC (%.3f) and DBoost (%.3f)",
				tag, sco, dc, hc, boost)
		}
		if tag == "single" && abs(dc-hc) > 1e-9 {
			t.Errorf("single constraint: DCDetect (%.3f) and DCDetect+HC (%.3f) should coincide", dc, hc)
		}
		if tag == "multi" && hc < dc-1e-9 {
			t.Errorf("multi constraint: DCDetect+HC (%.3f) should be >= DCDetect (%.3f)", hc, dc)
		}
	}
	// More constraints help every approach (paper observation i).
	if meanOf(t, rep, "multi/SCODED") < meanOf(t, rep, "single/SCODED")-0.05 {
		t.Errorf("multi-constraint SCODED should not be materially worse than single")
	}
}

func TestFigure10(t *testing.T) {
	rep, err := Figure10(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"sorting", "imputation", "combination"} {
		sco := meanOf(t, rep, kind+"/SCODED")
		dc := meanOf(t, rep, kind+"/DCDetect")
		boost := meanOf(t, rep, kind+"/DBoost")
		if sco <= dc || sco <= boost {
			t.Errorf("%s: SCODED (%.3f) should beat DCDetect (%.3f) and DBoost (%.3f)", kind, sco, dc, boost)
		}
	}
	// Sorting errors have a bigger impact on SCs than imputation (paper).
	if meanOf(t, rep, "sorting/SCODED") <= meanOf(t, rep, "imputation/SCODED") {
		t.Errorf("sorting F (%.3f) should exceed imputation F (%.3f)",
			meanOf(t, rep, "sorting/SCODED"), meanOf(t, rep, "imputation/SCODED"))
	}
}

func TestFigure11(t *testing.T) {
	rep, err := Figure11(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"sorting", "imputation", "combination"} {
		sco := meanOf(t, rep, kind+"/SCODED")
		boost := meanOf(t, rep, kind+"/DBoost")
		if sco <= boost {
			t.Errorf("%s: SCODED (%.3f) should beat DBoost (%.3f)", kind, sco, boost)
		}
		if _, found := rep.FindSeries(kind + "/DCDetect"); found {
			t.Errorf("%s: DCDetect cannot express an ISC and must be absent", kind)
		}
	}
}

func TestFigureConditional(t *testing.T) {
	rep, err := FigureConditional(1)
	if err != nil {
		t.Fatal(err)
	}
	// "Results are similar to unconditional SCs": SCODED beats the
	// baselines on both conditional constraints.
	if meanOf(t, rep, "imputation/SCODED") <= meanOf(t, rep, "imputation/DBoost") {
		t.Errorf("conditional DSC: SCODED should beat DBoost")
	}
	if meanOf(t, rep, "sorting/SCODED") <= meanOf(t, rep, "sorting/DBoost") {
		t.Errorf("conditional ISC: SCODED should beat DBoost")
	}
}

func TestFigure12(t *testing.T) {
	rep, err := Figure12(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tag := range []string{"a:Zip->City", "b:Zip->State"} {
		sco, ok := rep.FindSeries(tag + "/SCODED")
		if !ok {
			t.Fatalf("missing series %s/SCODED", tag)
		}
		afdS, ok := rep.FindSeries(tag + "/AFD")
		if !ok {
			t.Fatalf("missing series %s/AFD", tag)
		}
		// Early K: both at comparable F (paper: identical while RHS errors
		// last).
		if abs(sco.Y[0]-afdS.Y[0]) > 0.15 {
			t.Errorf("%s: early F diverges: SCODED %.3f vs AFD %.3f", tag, sco.Y[0], afdS.Y[0])
		}
		// Large K: SCODED clearly ahead (it reaches the LHS typos).
		last := len(sco.Y) - 1
		if sco.Y[last] <= afdS.Y[last] {
			t.Errorf("%s: final F: SCODED %.3f should exceed AFD %.3f", tag, sco.Y[last], afdS.Y[last])
		}
		// SCODED's final F should also beat AFD's best (the crossover is
		// real, not an endpoint artifact).
		if seriesMaxY(sco) <= seriesMaxY(afdS) {
			t.Errorf("%s: max F: SCODED %.3f should exceed AFD %.3f", tag, seriesMaxY(sco), seriesMaxY(afdS))
		}
	}
}

func TestFigure13(t *testing.T) {
	rep, err := Figure13(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tag := range []string{"BP~||~CL", "SA_||_DR"} {
		sco := meanOf(t, rep, tag+"/SCODED")
		boost := meanOf(t, rep, tag+"/DBoost")
		if sco <= boost {
			t.Errorf("%s: SCODED (%.3f) should beat DBoost (%.3f)", tag, sco, boost)
		}
	}
}

func TestFigure14(t *testing.T) {
	rep, err := Figure14(1)
	if err != nil {
		t.Fatal(err)
	}
	vk, ok := rep.FindSeries("time-vs-k(ms)")
	if !ok || len(vk.Y) != 5 {
		t.Fatal("missing time-vs-k series")
	}
	vn, ok := rep.FindSeries("time-vs-n(ms)")
	if !ok || len(vn.Y) != 5 {
		t.Fatal("missing time-vs-n series")
	}
	// Shape assertions, robust to machine noise: the largest setting must
	// cost more than the smallest, and growth must be sub-quadratic-ish
	// (16x k should cost well under 300x).
	if vk.Y[4] <= vk.Y[0] {
		t.Errorf("time should grow with k: %v", vk.Y)
	}
	if vn.Y[4] <= vn.Y[0] {
		t.Errorf("time should grow with n: %v", vn.Y)
	}
	if vk.Y[0] > 0 && vk.Y[4]/vk.Y[0] > 300 {
		t.Errorf("k-scaling looks super-linear beyond tolerance: %v", vk.Y)
	}
}

func assertNote(t *testing.T, rep *Report, substr string) {
	t.Helper()
	for _, n := range rep.Notes {
		if strings.Contains(n, substr) {
			return
		}
	}
	t.Errorf("missing note containing %q in %v", substr, rep.Notes)
}

// noteNumber extracts the leading integer of the note containing substr,
// e.g. "43/50 records have ..." -> 43.
func noteNumber(t *testing.T, rep *Report, substr string) int {
	t.Helper()
	for _, n := range rep.Notes {
		if i := strings.Index(n, substr); i >= 0 {
			v := 0
			found := false
			for _, r := range n[:i] {
				if r >= '0' && r <= '9' {
					v = v*10 + int(r-'0')
					found = true
				} else if found {
					break
				}
			}
			if found {
				return v
			}
		}
	}
	t.Fatalf("no numeric note containing %q", substr)
	return 0
}

func meanOf(t *testing.T, rep *Report, series string) float64 {
	t.Helper()
	s, ok := rep.FindSeries(series)
	if !ok {
		t.Fatalf("missing series %q", series)
	}
	return seriesMeanY(s)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
