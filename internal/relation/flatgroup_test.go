package relation

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// assertFlatMatchesGroupBy drills the equivalence contract: when GroupByFlat
// reports ok it must return the identical map — same key strings, same member
// rows, same row order — as the string-keyed reference.
func assertFlatMatchesGroupBy(t *testing.T, r *Relation, names []string) {
	t.Helper()
	want := r.GroupBy(names)
	got, ok := r.GroupByFlat(names)
	if !ok {
		t.Fatalf("GroupByFlat(%v) bailed on a workload it should handle", names)
	}
	if len(got) != len(want) {
		t.Fatalf("GroupByFlat(%v): %d groups, GroupBy: %d", names, len(got), len(want))
	}
	for key, rows := range want {
		frows, present := got[key]
		if !present {
			t.Fatalf("GroupByFlat(%v): missing key %q", names, key)
		}
		if !reflect.DeepEqual(frows, rows) {
			t.Fatalf("GroupByFlat(%v) key %q: rows %v, want %v", names, key, frows, rows)
		}
	}
}

func TestGroupByFlatMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(200)
		cat := make([]string, n)
		catWide := make([]string, n)
		num := make([]float64, n)
		for i := 0; i < n; i++ {
			cat[i] = fmt.Sprintf("c%d", rng.Intn(1+rng.Intn(6)))
			catWide[i] = fmt.Sprintf("w%d", rng.Intn(50))
			// Quantized floats so duplicates occur; occasional negatives and
			// integer-valued floats exercise both formatFloat branches.
			num[i] = math.Floor(rng.NormFloat64()*4) / 2
		}
		r, err := New(
			NewCategoricalColumn("C", cat),
			NewCategoricalColumn("W", catWide),
			NewNumericColumn("F", num),
		)
		if err != nil {
			t.Fatal(err)
		}
		for _, names := range [][]string{
			{"C"}, {"F"}, {"C", "F"}, {"F", "C"}, {"C", "W", "F"}, {"W", "W"},
		} {
			assertFlatMatchesGroupBy(t, r, names)
		}
	}
}

func TestGroupByFlatAdversarial(t *testing.T) {
	t.Run("single stratum / all ties", func(t *testing.T) {
		n := 64
		same := make([]string, n)
		ties := make([]float64, n)
		for i := range same {
			same[i] = "only"
			ties[i] = 1.5
		}
		r, err := New(NewCategoricalColumn("C", same), NewNumericColumn("F", ties))
		if err != nil {
			t.Fatal(err)
		}
		assertFlatMatchesGroupBy(t, r, []string{"C"})
		assertFlatMatchesGroupBy(t, r, []string{"C", "F"})
	})

	t.Run("NaN and signed zero", func(t *testing.T) {
		nan := math.NaN()
		vals := []float64{1, nan, math.Copysign(0, -1), 0, nan, 1, nan}
		labels := []string{"a", "b", "a", "b", "a", "a", "b"}
		r, err := New(NewNumericColumn("F", vals), NewCategoricalColumn("C", labels))
		if err != nil {
			t.Fatal(err)
		}
		// All NaNs must land in ONE group (formatFloat renders each as
		// "NaN"), and -0/+0 must share a group (they compare equal and both
		// render "0").
		groups, ok := r.GroupByFlat([]string{"F"})
		if !ok {
			t.Fatal("GroupByFlat bailed on NaN workload")
		}
		if got := groups["NaN"]; !reflect.DeepEqual(got, []int{1, 4, 6}) {
			t.Fatalf("NaN group = %v, want [1 4 6]", got)
		}
		if got := groups["0"]; !reflect.DeepEqual(got, []int{2, 3}) {
			t.Fatalf("zero group = %v, want [2 3]", got)
		}
		assertFlatMatchesGroupBy(t, r, []string{"F"})
		assertFlatMatchesGroupBy(t, r, []string{"F", "C"})
	})

	t.Run("empty relation", func(t *testing.T) {
		r, err := New(NewCategoricalColumn("C", nil), NewNumericColumn("F", nil))
		if err != nil {
			t.Fatal(err)
		}
		groups, ok := r.GroupByFlat([]string{"C", "F"})
		if !ok || len(groups) != 0 {
			t.Fatalf("empty relation: got (%v, %v), want (empty map, true)", groups, ok)
		}
	})

	t.Run("single row", func(t *testing.T) {
		r, err := New(NewCategoricalColumn("C", []string{"x"}), NewNumericColumn("F", []float64{-3.25}))
		if err != nil {
			t.Fatal(err)
		}
		assertFlatMatchesGroupBy(t, r, []string{"C", "F"})
	})

	t.Run("every row distinct", func(t *testing.T) {
		n := 100
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(i) + 0.5
		}
		r, err := New(NewNumericColumn("F", vals))
		if err != nil {
			t.Fatal(err)
		}
		assertFlatMatchesGroupBy(t, r, []string{"F"})
	})
}

func TestGroupByFlatFallbacks(t *testing.T) {
	r, err := New(NewCategoricalColumn("C", []string{"a", "b"}))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.GroupByFlat(nil); ok {
		t.Fatal("GroupByFlat(nil) must bail: GroupBy defines the empty-list contract")
	}

	// A composite space past maxFlatRadix must bail rather than overflow:
	// many high-cardinality numeric columns multiply past 2^31.
	n := 300
	cols := make([]*Column, 0, 6)
	for c := 0; c < 6; c++ {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(i) + float64(c)/8
		}
		cols = append(cols, NewNumericColumn(fmt.Sprintf("F%d", c), vals))
	}
	wide, err := New(cols...)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"F0", "F1", "F2", "F3", "F4", "F5"}
	if _, ok := wide.GroupByFlat(names); ok {
		t.Fatal("GroupByFlat must bail when the mixed-radix space exceeds maxFlatRadix")
	}
	// And the caller-side fallback (kernel.PartitionOf mirrors this) still
	// produces the reference grouping.
	if got := wide.GroupBy(names); len(got) != n {
		t.Fatalf("fallback GroupBy: %d groups, want %d", len(got), n)
	}
}

// TestGroupByFlatLargeSparseRemap pushes the composite space past the dense
// remap cutoff so the map-based gid remap path is exercised too.
func TestGroupByFlatLargeSparseRemap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 500
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = float64(rng.Intn(400))
		b[i] = float64(rng.Intn(400))
	}
	r, err := New(NewNumericColumn("A", a), NewNumericColumn("B", b))
	if err != nil {
		t.Fatal(err)
	}
	// Cardinalities are data-dependent but ~400 each: the composite space is
	// ~160k < 2^20, so force the sparse path with a third column.
	c := make([]float64, n)
	for i := range c {
		c[i] = float64(rng.Intn(100))
	}
	r2, err := New(NewNumericColumn("A", a), NewNumericColumn("B", b), NewNumericColumn("C", c))
	if err != nil {
		t.Fatal(err)
	}
	assertFlatMatchesGroupBy(t, r, []string{"A", "B"})
	assertFlatMatchesGroupBy(t, r2, []string{"A", "B", "C"})
}
