package relation

import (
	"fmt"
	"sort"
)

// NaturalJoin computes the natural join of two relations on their shared
// column names: the result contains one row for every pair of rows that agree
// on all shared columns, with the union of the two schemas. It is used to
// check embedded multi-valued dependencies, where D satisfies X ↠ Y | Z iff
// Π_XYZ(D) = Π_XY(D) ⋈ Π_XZ(D) (Definition 3 of the paper).
//
// Join semantics here are set-based: duplicate rows in the inputs do not
// multiply; the result is the join of the distinct projections. This matches
// the relational (set) semantics of the EMVD definition.
func NaturalJoin(a, b *Relation) (*Relation, error) {
	shared := sharedColumns(a, b)
	if len(shared) == 0 {
		return nil, fmt.Errorf("relation: natural join with no shared columns")
	}
	aOnly := exceptColumns(a, shared)
	bOnly := exceptColumns(b, shared)

	// Deduplicate both sides over their full schemas.
	aRows := distinctRowIndices(a)
	bRows := distinctRowIndices(b)

	// Hash b's rows by shared-column key.
	bIndex := make(map[string][]int)
	for _, i := range bRows {
		bIndex[b.RowKey(i, shared)] = append(bIndex[b.RowKey(i, shared)], i)
	}

	outNames := append(append(append([]string(nil), shared...), aOnly...), bOnly...)
	outRows := make([][]string, 0)
	seen := make(map[string]bool)
	for _, i := range aRows {
		key := a.RowKey(i, shared)
		for _, j := range bIndex[key] {
			row := make([]string, 0, len(outNames))
			for _, n := range shared {
				row = append(row, a.MustColumn(n).StringAt(i))
			}
			for _, n := range aOnly {
				row = append(row, a.MustColumn(n).StringAt(i))
			}
			for _, n := range bOnly {
				row = append(row, b.MustColumn(n).StringAt(j))
			}
			k := joinKey(row)
			if !seen[k] {
				seen[k] = true
				outRows = append(outRows, row)
			}
		}
	}

	return fromStringRows(outNames, outRows)
}

// EqualAsSets reports whether two relations contain the same set of distinct
// rows over the same (order-insensitive) schema.
func EqualAsSets(a, b *Relation) bool {
	an := append([]string(nil), a.Columns()...)
	bn := append([]string(nil), b.Columns()...)
	sort.Strings(an)
	sort.Strings(bn)
	if len(an) != len(bn) {
		return false
	}
	for i := range an {
		if an[i] != bn[i] {
			return false
		}
	}
	aSet := make(map[string]bool)
	for i := 0; i < a.NumRows(); i++ {
		aSet[a.RowKey(i, an)] = true
	}
	bSet := make(map[string]bool)
	for i := 0; i < b.NumRows(); i++ {
		bSet[b.RowKey(i, an)] = true
	}
	if len(aSet) != len(bSet) {
		return false
	}
	for k := range aSet {
		if !bSet[k] {
			return false
		}
	}
	return true
}

func sharedColumns(a, b *Relation) []string {
	var out []string
	for _, n := range a.Columns() {
		if b.HasColumn(n) {
			out = append(out, n)
		}
	}
	return out
}

func exceptColumns(r *Relation, except []string) []string {
	ex := make(map[string]bool, len(except))
	for _, n := range except {
		ex[n] = true
	}
	var out []string
	for _, n := range r.Columns() {
		if !ex[n] {
			out = append(out, n)
		}
	}
	return out
}

func distinctRowIndices(r *Relation) []int {
	names := r.Columns()
	seen := make(map[string]bool)
	var out []int
	for i := 0; i < r.NumRows(); i++ {
		k := r.RowKey(i, names)
		if !seen[k] {
			seen[k] = true
			out = append(out, i)
		}
	}
	return out
}

// fromStringRows builds an all-categorical relation from row-major string
// data. Used by join and CSV loading before type inference.
func fromStringRows(names []string, rows [][]string) (*Relation, error) {
	cols := make([]*Column, len(names))
	for j, n := range names {
		vals := make([]string, len(rows))
		for i, row := range rows {
			vals[i] = row[j]
		}
		cols[j] = NewCategoricalColumn(n, vals)
	}
	return New(cols...)
}
