package relation

import (
	"strings"
	"testing"
)

func TestJoinKey(t *testing.T) {
	cases := []struct {
		parts []string
		want  string
	}{
		{nil, ""},
		{[]string{}, ""},
		{[]string{"a"}, "a"},
		{[]string{"a", "b"}, "a\x1fb"},
		{[]string{"", "", ""}, "\x1f\x1f"},
		{[]string{"Toyota", "Prius", "Black"}, "Toyota\x1fPrius\x1fBlack"},
	}
	for _, tc := range cases {
		if got := joinKey(tc.parts); got != tc.want {
			t.Errorf("joinKey(%q) = %q, want %q", tc.parts, got, tc.want)
		}
	}
}

// BenchmarkJoinKey pins the hot-path property of joinKey: one allocation
// per key regardless of tuple width (run with -benchmem; the naive
// string-concatenation version allocated once per part).
func BenchmarkJoinKey(b *testing.B) {
	parts := []string{"Toyota", "Prius", "Black", "2004", "hatchback", "CA"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s := joinKey(parts); len(s) == 0 {
			b.Fatal("empty key")
		}
	}
}

// BenchmarkRowKey measures the end-to-end key construction the partition
// and empirical-distribution paths pay per record.
func BenchmarkRowKey(b *testing.B) {
	n := 4096
	model := make([]string, n)
	color := make([]string, n)
	year := make([]string, n)
	for i := range model {
		model[i] = "model-" + strings.Repeat("x", i%7)
		color[i] = "color-" + strings.Repeat("y", i%5)
		year[i] = "year-" + strings.Repeat("z", i%3)
	}
	rel, err := New(
		NewCategoricalColumn("Model", model),
		NewCategoricalColumn("Color", color),
		NewCategoricalColumn("Year", year),
	)
	if err != nil {
		b.Fatal(err)
	}
	names := []string{"Model", "Color", "Year"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := rel.RowKey(i%n, names); len(s) == 0 {
			b.Fatal("empty key")
		}
	}
}
