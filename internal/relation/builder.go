package relation

import (
	"fmt"
	"math"
)

// Builder assembles a Relation column-major from appended chunks, without
// requiring any column's full data to be resident at once. It is the
// materialization path of the durable store (internal/store): each on-disk
// segment is decoded and fed to the builder one segment at a time, so only
// one segment beyond the accumulating relation is ever held in memory.
//
// Chunks are appended per column; Build validates that every column ended
// at the same length. Categorical chunks may arrive either as raw strings
// or as dictionary-coded (dict, codes) pairs — the builder re-interns
// through the column's dictionary, so first-occurrence code order over the
// concatenated rows is identical to building the column from the full
// string slice. That invariant is what makes store-materialized relations
// bit-identical to CSV-loaded ones.
type Builder struct {
	cols   []*Column
	byName map[string]int
}

// NewBuilder creates a builder for the given schema. Names must be
// distinct; kinds must parallel names.
func NewBuilder(names []string, kinds []Kind) (*Builder, error) {
	if len(names) != len(kinds) {
		return nil, fmt.Errorf("relation: %d column names but %d kinds", len(names), len(kinds))
	}
	b := &Builder{byName: make(map[string]int, len(names))}
	for i, name := range names {
		if _, dup := b.byName[name]; dup {
			return nil, fmt.Errorf("relation: duplicate column %q", name)
		}
		c := &Column{Name: name, Kind: kinds[i]}
		if kinds[i] == Categorical {
			c.index = make(map[string]int)
		}
		b.byName[name] = len(b.cols)
		b.cols = append(b.cols, c)
	}
	return b, nil
}

func (b *Builder) column(name string, kind Kind) (*Column, error) {
	i, ok := b.byName[name]
	if !ok {
		return nil, fmt.Errorf("relation: builder has no column %q", name)
	}
	c := b.cols[i]
	if c.Kind != kind {
		return nil, fmt.Errorf("relation: column %q is %s, not %s", name, c.Kind, kind)
	}
	return c, nil
}

// AppendFloats appends a chunk of values to a numeric column.
func (b *Builder) AppendFloats(name string, vals []float64) error {
	c, err := b.column(name, Numeric)
	if err != nil {
		return err
	}
	c.values = append(c.values, vals...)
	return nil
}

// AppendStrings appends a chunk of raw values to a categorical column,
// interning through the column's dictionary.
func (b *Builder) AppendStrings(name string, vals []string) error {
	c, err := b.column(name, Categorical)
	if err != nil {
		return err
	}
	for _, v := range vals {
		c.codes = append(c.codes, c.intern(v))
	}
	return nil
}

// AppendCoded appends a dictionary-coded chunk to a categorical column:
// codes index into dict, and the chunk's dictionary is translated into the
// column's own (growing it as needed). This is the zero-copy-ish path for
// store segments, which persist categorical columns dictionary-coded.
func (b *Builder) AppendCoded(name string, dict []string, codes []uint32) error {
	c, err := b.column(name, Categorical)
	if err != nil {
		return err
	}
	// Translate the chunk dictionary once, then map codes through it.
	trans := make([]int, len(dict))
	for i, v := range dict {
		trans[i] = c.intern(v)
	}
	for _, code := range codes {
		if int(code) >= len(trans) {
			return fmt.Errorf("relation: column %q chunk code %d out of dictionary range %d", name, code, len(trans))
		}
		c.codes = append(c.codes, trans[code])
	}
	return nil
}

// Len returns the number of rows appended to the named column so far, or
// -1 when the column does not exist.
func (b *Builder) Len(name string) int {
	i, ok := b.byName[name]
	if !ok {
		return -1
	}
	return b.cols[i].Len()
}

// Build validates that every column reached the same length and returns
// the assembled relation. The builder must not be reused afterwards.
func (b *Builder) Build() (*Relation, error) {
	return New(b.cols...)
}

// AppendRows returns a new relation holding this relation's rows followed
// by other's rows. Schemas must match exactly (same column names, order
// and kinds). The receiver is not mutated — in-flight readers holding it
// stay consistent — and existing rows keep their indices and categorical
// codes, which is the append-only invariant the versioned kernel cache
// relies on for incremental invalidation.
func (r *Relation) AppendRows(other *Relation) (*Relation, error) {
	if err := r.SameSchema(other); err != nil {
		return nil, err
	}
	out := &Relation{byName: make(map[string]int, len(r.byName))}
	for i, c := range r.cols {
		grown := c.clone()
		oc := other.cols[i]
		if c.Kind == Categorical {
			for j := 0; j < oc.Len(); j++ {
				grown.codes = append(grown.codes, grown.intern(oc.dict[oc.codes[j]]))
			}
		} else {
			grown.values = append(grown.values, oc.values...)
		}
		if err := out.addColumn(grown); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SameSchema reports (as an error) the first schema difference between the
// two relations: column count, name, order, or kind.
func (r *Relation) SameSchema(other *Relation) error {
	if len(r.cols) != len(other.cols) {
		return fmt.Errorf("relation: schema mismatch: %d columns vs %d", len(r.cols), len(other.cols))
	}
	for i, c := range r.cols {
		oc := other.cols[i]
		if c.Name != oc.Name {
			return fmt.Errorf("relation: schema mismatch at column %d: %q vs %q", i, c.Name, oc.Name)
		}
		if c.Kind != oc.Kind {
			return fmt.Errorf("relation: column %q kind mismatch: %s vs %s", c.Name, c.Kind, oc.Kind)
		}
	}
	return nil
}

// Equal reports whether two relations hold identical schemas and cell
// values. Categorical cells compare by string value; numeric cells compare
// by exact float64 bit pattern (so NaNs compare equal to themselves and
// -0 differs from +0 — "bit-identical", not "approximately equal").
func (r *Relation) Equal(other *Relation) bool {
	if r.SameSchema(other) != nil || r.NumRows() != other.NumRows() {
		return false
	}
	for i, c := range r.cols {
		oc := other.cols[i]
		if c.Kind == Categorical {
			for j := range c.codes {
				if c.dict[c.codes[j]] != oc.dict[oc.codes[j]] {
					return false
				}
			}
		} else {
			for j := range c.values {
				if math.Float64bits(c.values[j]) != math.Float64bits(oc.values[j]) {
					return false
				}
			}
		}
	}
	return true
}
