package relation

import "math"

// maxFlatRadix bounds the mixed-radix composite id space of GroupByFlat.
// Beyond it the composite could overflow, and the caller falls back to the
// string-keyed reference.
const maxFlatRadix = int64(1) << 31

// denseRemapCutoff is the largest composite-id space for which the gid
// remap uses a flat array instead of an int64-keyed map.
const denseRemapCutoff = int64(1) << 20

// GroupByFlat computes the same partition as GroupBy(names) — the identical
// map, key strings and row order — without building a per-row key string.
// Rows are first encoded as flat []int32 code vectors per column
// (categorical columns reuse their dictionary codes; numeric columns are
// densified by exact float equality with all NaNs collapsing to one code,
// matching formatFloat which renders every NaN as "NaN"), the vectors are
// combined into one mixed-radix composite id per row, and only the first
// row of each distinct group renders its key string. On the 20k-row
// benchmark workload this replaces 20 000 per-row string builds and
// string-map inserts per conditioning set with one per group.
//
// ok is false when the fast path cannot run — an empty column list, a
// composite space too large for int64 mixed radix, or (defensively) two
// distinct code vectors rendering the same key string — and the caller must
// use GroupBy. Group member slices are views into one shared arena; callers
// must treat them as read-only, which the Partition sharing contract
// already requires.
func (r *Relation) GroupByFlat(names []string) (map[string][]int, bool) {
	if len(names) == 0 {
		return nil, false
	}
	n := r.NumRows()
	if n == 0 {
		return map[string][]int{}, true
	}

	// Per-column dense codes and the composite radix.
	codes := make([][]int32, len(names))
	rads := make([]int64, len(names))
	radix := int64(1)
	for ci, name := range names {
		col, k := r.MustColumn(name).denseCodes()
		if k == 0 || radix > maxFlatRadix/int64(k) {
			return nil, false
		}
		radix *= int64(k)
		codes[ci] = col
		rads[ci] = int64(k)
	}

	// Mixed-radix composite id per row, remapped to first-occurrence dense
	// group ids. Small composite spaces remap through a flat array; larger
	// ones through an int64-keyed map (one entry per distinct group, not per
	// row).
	gids := make([]int32, n)
	var remapDense []int32
	var remapMap map[int64]int32
	if radix <= denseRemapCutoff {
		remapDense = make([]int32, radix)
		for i := range remapDense {
			remapDense[i] = -1
		}
	} else {
		remapMap = make(map[int64]int32)
	}
	next := int32(0)
	var first []int // first row of each group, by gid
	for i := 0; i < n; i++ {
		id := int64(0)
		for ci := range codes {
			id = id*rads[ci] + int64(codes[ci][i])
		}
		var g int32
		if remapDense != nil {
			g = remapDense[id]
			if g < 0 {
				g = next
				next++
				remapDense[id] = g
				first = append(first, i)
			}
		} else {
			var ok bool
			g, ok = remapMap[id]
			if !ok {
				g = next
				next++
				remapMap[id] = g
				first = append(first, i)
			}
		}
		gids[i] = g
	}

	// Group sizes, then one arena filled in row order so every group's
	// member list preserves row order exactly as GroupBy's appends do.
	starts := make([]int32, next+1)
	for _, g := range gids {
		starts[g+1]++
	}
	for g := int32(0); g < next; g++ {
		starts[g+1] += starts[g]
	}
	cursor := make([]int32, next)
	copy(cursor, starts[:next])
	arena := make([]int, n)
	for i, g := range gids {
		arena[cursor[g]] = i
		cursor[g]++
	}

	out := make(map[string][]int, next)
	for g := int32(0); g < next; g++ {
		key := r.RowKey(first[g], names)
		if _, dup := out[key]; dup {
			// Two distinct code vectors rendered the same key string. By the
			// formatFloat injectivity argument this cannot happen, but the
			// reference path is the contract — fall back to it.
			return nil, false
		}
		out[key] = arena[starts[g]:starts[g+1]:starts[g+1]]
	}
	return out, true
}

// denseCodes returns a per-row dense int32 coding of the column and its
// cardinality. Categorical columns reuse their dictionary codes (the
// dictionary is dense by construction). Numeric columns assign codes by
// exact float equality in first-occurrence order, with every NaN mapped to
// one shared code — the same equivalence classes formatFloat induces on the
// string side (distinct non-NaN floats render distinct strings; -0 and +0
// compare equal and both render "0").
func (c *Column) denseCodes() ([]int32, int) {
	if c.Kind == Categorical {
		out := make([]int32, len(c.codes))
		for i, v := range c.codes {
			out[i] = int32(v)
		}
		return out, len(c.dict)
	}
	out := make([]int32, len(c.values))
	remap := make(map[float64]int32, 16)
	nanCode := int32(-1)
	next := int32(0)
	for i, v := range c.values {
		if math.IsNaN(v) {
			if nanCode < 0 {
				nanCode = next
				next++
			}
			out[i] = nanCode
			continue
		}
		g, ok := remap[v]
		if !ok {
			g = next
			next++
			remap[v] = g
		}
		out[i] = g
	}
	return out, int(next)
}
