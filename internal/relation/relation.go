// Package relation implements a small in-memory relational engine used as the
// data substrate for SCODED. It provides typed columnar tables, projection,
// natural join, grouping, and the empirical distribution P_D of Section 2.1
// of the paper, together with CSV input/output.
//
// A Relation stores its data column-major. Each column is either categorical
// (string-valued) or numeric (float64-valued). Categorical columns are
// dictionary-encoded: cell values are small integer codes into a per-column
// dictionary, which makes group-by and contingency-table construction cheap.
package relation

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind describes the type of a column.
type Kind int

const (
	// Categorical columns hold discrete string values.
	Categorical Kind = iota
	// Numeric columns hold float64 values.
	Numeric
)

// String returns "categorical" or "numeric".
func (k Kind) String() string {
	switch k {
	case Categorical:
		return "categorical"
	case Numeric:
		return "numeric"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Column is a single typed column of a relation. Exactly one of the code or
// value slices is populated, depending on Kind.
type Column struct {
	Name string
	Kind Kind

	// codes holds dictionary codes for categorical columns.
	codes []int
	// dict maps a code to its string value; inverse of index.
	dict []string
	// index maps a string value to its code.
	index map[string]int

	// values holds the data for numeric columns.
	values []float64
}

// NewCategoricalColumn builds a categorical column from raw string values.
func NewCategoricalColumn(name string, vals []string) *Column {
	c := &Column{Name: name, Kind: Categorical, index: make(map[string]int)}
	c.codes = make([]int, len(vals))
	for i, v := range vals {
		c.codes[i] = c.intern(v)
	}
	return c
}

// NewNumericColumn builds a numeric column from raw float values.
func NewNumericColumn(name string, vals []float64) *Column {
	v := make([]float64, len(vals))
	copy(v, vals)
	return &Column{Name: name, Kind: Numeric, values: v}
}

func (c *Column) intern(v string) int {
	if code, ok := c.index[v]; ok {
		return code
	}
	code := len(c.dict)
	c.dict = append(c.dict, v)
	c.index[v] = code
	return code
}

// Len returns the number of cells in the column.
func (c *Column) Len() int {
	if c.Kind == Categorical {
		return len(c.codes)
	}
	return len(c.values)
}

// Cardinality returns the number of distinct values in a categorical column.
// For numeric columns it returns the number of distinct float values.
func (c *Column) Cardinality() int {
	if c.Kind == Categorical {
		return len(c.dict)
	}
	seen := make(map[float64]struct{}, len(c.values))
	for _, v := range c.values {
		seen[v] = struct{}{}
	}
	return len(seen)
}

// Code returns the dictionary code of row i. Panics on numeric columns.
func (c *Column) Code(i int) int {
	if c.Kind != Categorical {
		panic("relation: Code on numeric column " + c.Name)
	}
	return c.codes[i]
}

// Value returns the numeric value of row i. Panics on categorical columns.
func (c *Column) Value(i int) float64 {
	if c.Kind != Numeric {
		panic("relation: Value on categorical column " + c.Name)
	}
	return c.values[i]
}

// String returns the string form of cell i for either kind.
func (c *Column) StringAt(i int) string {
	if c.Kind == Categorical {
		return c.dict[c.codes[i]]
	}
	return formatFloat(c.values[i])
}

// Levels returns the dictionary of a categorical column (code order).
func (c *Column) Levels() []string {
	out := make([]string, len(c.dict))
	copy(out, c.dict)
	return out
}

// Floats returns a copy of the numeric data. Panics on categorical columns.
func (c *Column) Floats() []float64 {
	if c.Kind != Numeric {
		panic("relation: Floats on categorical column " + c.Name)
	}
	out := make([]float64, len(c.values))
	copy(out, c.values)
	return out
}

// SetValue overwrites the numeric value at row i.
func (c *Column) SetValue(i int, v float64) {
	if c.Kind != Numeric {
		panic("relation: SetValue on categorical column " + c.Name)
	}
	c.values[i] = v
}

// SetString overwrites the categorical value at row i, interning as needed.
func (c *Column) SetString(i int, v string) {
	if c.Kind != Categorical {
		panic("relation: SetString on numeric column " + c.Name)
	}
	c.codes[i] = c.intern(v)
}

func (c *Column) clone() *Column {
	out := &Column{Name: c.Name, Kind: c.Kind}
	if c.Kind == Categorical {
		out.codes = append([]int(nil), c.codes...)
		out.dict = append([]string(nil), c.dict...)
		out.index = make(map[string]int, len(c.index))
		for k, v := range c.index {
			out.index[k] = v
		}
	} else {
		out.values = append([]float64(nil), c.values...)
	}
	return out
}

// subset returns a column restricted to the given row indices.
func (c *Column) subset(rows []int) *Column {
	out := &Column{Name: c.Name, Kind: c.Kind}
	if c.Kind == Categorical {
		out.index = make(map[string]int)
		out.codes = make([]int, len(rows))
		for i, r := range rows {
			out.codes[i] = out.intern(c.dict[c.codes[r]])
		}
	} else {
		out.values = make([]float64, len(rows))
		for i, r := range rows {
			out.values[i] = c.values[r]
		}
	}
	return out
}

func formatFloat(v float64) string {
	//scoded:lint-ignore floatcmp integer-valued test against Trunc is exact by definition
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// FormatFloat renders a numeric value exactly as StringAt and RowKey do,
// so group keys built outside a materialized relation (the streaming
// kernel reads segments directly) are byte-identical to partition keys
// built from a resident relation.
func FormatFloat(v float64) string { return formatFloat(v) }

// Relation is an in-memory table: an ordered set of named, typed columns of
// equal length.
type Relation struct {
	cols   []*Column
	byName map[string]int
}

// New creates a relation from columns. All columns must have equal length and
// distinct names.
func New(cols ...*Column) (*Relation, error) {
	r := &Relation{byName: make(map[string]int, len(cols))}
	for _, c := range cols {
		if err := r.addColumn(c); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// MustNew is New but panics on error; intended for tests and generators with
// statically known shapes.
func MustNew(cols ...*Column) *Relation {
	r, err := New(cols...)
	if err != nil {
		panic(err)
	}
	return r
}

func (r *Relation) addColumn(c *Column) error {
	if _, dup := r.byName[c.Name]; dup {
		return fmt.Errorf("relation: duplicate column %q", c.Name)
	}
	if len(r.cols) > 0 && c.Len() != r.cols[0].Len() {
		return fmt.Errorf("relation: column %q has %d rows, want %d", c.Name, c.Len(), r.cols[0].Len())
	}
	r.byName[c.Name] = len(r.cols)
	r.cols = append(r.cols, c)
	return nil
}

// AddColumn appends a column to the relation.
func (r *Relation) AddColumn(c *Column) error { return r.addColumn(c) }

// NumRows returns the number of records.
func (r *Relation) NumRows() int {
	if len(r.cols) == 0 {
		return 0
	}
	return r.cols[0].Len()
}

// NumCols returns the number of columns.
func (r *Relation) NumCols() int { return len(r.cols) }

// ApproxBytes estimates the relation's resident heap footprint: the column
// slices plus categorical dictionary strings. The server's resident-relation
// LRU weighs datasets that have no on-disk size by it.
func (r *Relation) ApproxBytes() int64 {
	var total int64
	for _, c := range r.cols {
		if c.Kind == Categorical {
			total += int64(len(c.codes)) * 8
			for _, v := range c.dict {
				total += int64(len(v)) + 16 // string header
			}
		} else {
			total += int64(len(c.values)) * 8
		}
	}
	return total
}

// Columns returns the column names in order.
func (r *Relation) Columns() []string {
	out := make([]string, len(r.cols))
	for i, c := range r.cols {
		out[i] = c.Name
	}
	return out
}

// Column returns the named column, or an error if absent.
func (r *Relation) Column(name string) (*Column, error) {
	i, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("relation: no column %q (have %s)", name, strings.Join(r.Columns(), ", "))
	}
	return r.cols[i], nil
}

// MustColumn is Column but panics on error.
func (r *Relation) MustColumn(name string) *Column {
	c, err := r.Column(name)
	if err != nil {
		panic(err)
	}
	return c
}

// HasColumn reports whether the relation has the named column.
func (r *Relation) HasColumn(name string) bool {
	_, ok := r.byName[name]
	return ok
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	out := &Relation{byName: make(map[string]int, len(r.byName))}
	for _, c := range r.cols {
		out.addColumn(c.clone())
	}
	return out
}

// Subset returns a new relation containing only the given rows, in order.
func (r *Relation) Subset(rows []int) *Relation {
	out := &Relation{byName: make(map[string]int, len(r.byName))}
	for _, c := range r.cols {
		out.addColumn(c.subset(rows))
	}
	return out
}

// Drop returns a new relation with the given row set removed. The drop set is
// given as a map for O(1) membership tests.
func (r *Relation) Drop(drop map[int]bool) *Relation {
	keep := make([]int, 0, r.NumRows())
	for i := 0; i < r.NumRows(); i++ {
		if !drop[i] {
			keep = append(keep, i)
		}
	}
	return r.Subset(keep)
}

// Project returns a new relation with only the named columns (deep-copied).
func (r *Relation) Project(names ...string) (*Relation, error) {
	out := &Relation{byName: make(map[string]int, len(names))}
	for _, n := range names {
		c, err := r.Column(n)
		if err != nil {
			return nil, err
		}
		if err := out.addColumn(c.clone()); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Row returns the string form of every cell in row i, in column order.
func (r *Relation) Row(i int) []string {
	out := make([]string, len(r.cols))
	for j, c := range r.cols {
		out[j] = c.StringAt(i)
	}
	return out
}

// RowKey returns a canonical string key of row i restricted to the named
// columns, suitable for map keys. Distinct value tuples yield distinct keys.
func (r *Relation) RowKey(i int, names []string) string {
	var b strings.Builder
	for j, n := range names {
		if j > 0 {
			b.WriteByte('\x1f') // unit separator: cannot occur in CSV fields we parse
		}
		b.WriteString(r.MustColumn(n).StringAt(i))
	}
	return b.String()
}

// DistinctRows returns the set of distinct value tuples over the named
// columns, as row keys, together with their multiplicities.
func (r *Relation) DistinctRows(names []string) map[string]int {
	out := make(map[string]int)
	for i := 0; i < r.NumRows(); i++ {
		out[r.RowKey(i, names)]++
	}
	return out
}

// GroupBy partitions the row indices by the value tuple over the named
// columns. The returned map is keyed by RowKey. Group member lists preserve
// row order.
func (r *Relation) GroupBy(names []string) map[string][]int {
	out := make(map[string][]int)
	for i := 0; i < r.NumRows(); i++ {
		k := r.RowKey(i, names)
		out[k] = append(out[k], i)
	}
	return out
}

// SortedGroupKeys returns the group keys of GroupBy(names) in sorted order,
// for deterministic iteration.
func SortedGroupKeys(groups map[string][]int) []string {
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
