package relation

import (
	"strings"
	"testing"
)

func carRelation() *Relation {
	// The original car database of Figure 2(a).
	return MustNew(
		NewCategoricalColumn("Model", []string{
			"BMW X1", "BMW X1", "BMW X1", "BMW X1",
			"Toyota Prius", "Toyota Prius", "Toyota Prius", "Toyota Prius",
		}),
		NewCategoricalColumn("Color", []string{
			"White", "Black", "White", "Black",
			"White", "White", "White", "Black",
		}),
	)
}

func TestNewRejectsDuplicateColumns(t *testing.T) {
	_, err := New(
		NewCategoricalColumn("A", []string{"x"}),
		NewCategoricalColumn("A", []string{"y"}),
	)
	if err == nil {
		t.Fatal("want error for duplicate column names")
	}
}

func TestNewRejectsRaggedColumns(t *testing.T) {
	_, err := New(
		NewCategoricalColumn("A", []string{"x", "y"}),
		NewCategoricalColumn("B", []string{"z"}),
	)
	if err == nil {
		t.Fatal("want error for mismatched column lengths")
	}
}

func TestBasicAccessors(t *testing.T) {
	r := carRelation()
	if got := r.NumRows(); got != 8 {
		t.Errorf("NumRows = %d, want 8", got)
	}
	if got := r.NumCols(); got != 2 {
		t.Errorf("NumCols = %d, want 2", got)
	}
	c := r.MustColumn("Model")
	if c.Cardinality() != 2 {
		t.Errorf("Model cardinality = %d, want 2", c.Cardinality())
	}
	if c.StringAt(0) != "BMW X1" || c.StringAt(7) != "Toyota Prius" {
		t.Errorf("unexpected Model values: %q, %q", c.StringAt(0), c.StringAt(7))
	}
	if _, err := r.Column("Nope"); err == nil {
		t.Error("want error for missing column")
	}
}

func TestNumericColumn(t *testing.T) {
	c := NewNumericColumn("X", []float64{1.5, 2, 3})
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.Value(0) != 1.5 {
		t.Errorf("Value(0) = %v", c.Value(0))
	}
	if c.StringAt(1) != "2" {
		t.Errorf("StringAt(1) = %q, want 2", c.StringAt(1))
	}
	if c.StringAt(0) != "1.5" {
		t.Errorf("StringAt(0) = %q, want 1.5", c.StringAt(0))
	}
	c.SetValue(2, 9)
	if c.Value(2) != 9 {
		t.Errorf("SetValue did not stick")
	}
	f := c.Floats()
	f[0] = 100
	if c.Value(0) == 100 {
		t.Error("Floats must return a copy")
	}
}

func TestKindPanics(t *testing.T) {
	num := NewNumericColumn("N", []float64{1})
	cat := NewCategoricalColumn("C", []string{"a"})
	assertPanics(t, "Code on numeric", func() { num.Code(0) })
	assertPanics(t, "Value on categorical", func() { cat.Value(0) })
	assertPanics(t, "Floats on categorical", func() { cat.Floats() })
	assertPanics(t, "SetValue on categorical", func() { cat.SetValue(0, 1) })
	assertPanics(t, "SetString on numeric", func() { num.SetString(0, "x") })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestCloneIsDeep(t *testing.T) {
	r := carRelation()
	cp := r.Clone()
	cp.MustColumn("Color").SetString(0, "Blue")
	if r.MustColumn("Color").StringAt(0) != "White" {
		t.Error("Clone is not deep")
	}
}

func TestSubsetAndDrop(t *testing.T) {
	r := carRelation()
	s := r.Subset([]int{4, 5, 6, 7})
	if s.NumRows() != 4 {
		t.Fatalf("Subset rows = %d", s.NumRows())
	}
	if s.MustColumn("Model").Cardinality() != 1 {
		t.Errorf("subset should re-intern dictionary; cardinality = %d", s.MustColumn("Model").Cardinality())
	}
	d := r.Drop(map[int]bool{0: true, 1: true})
	if d.NumRows() != 6 {
		t.Errorf("Drop rows = %d, want 6", d.NumRows())
	}
	if d.MustColumn("Model").StringAt(0) != "BMW X1" {
		t.Errorf("Drop should keep remaining rows in order")
	}
}

func TestProject(t *testing.T) {
	r := carRelation()
	p, err := r.Project("Color")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCols() != 1 || p.NumRows() != 8 {
		t.Errorf("Project shape = %dx%d", p.NumRows(), p.NumCols())
	}
	if _, err := r.Project("Missing"); err == nil {
		t.Error("want error for missing projection column")
	}
}

func TestGroupBy(t *testing.T) {
	r := carRelation()
	groups := r.GroupBy([]string{"Model", "Color"})
	if len(groups) != 4 {
		t.Fatalf("groups = %d, want 4", len(groups))
	}
	total := 0
	for _, rows := range groups {
		total += len(rows)
	}
	if total != 8 {
		t.Errorf("group members = %d, want 8", total)
	}
	keys := SortedGroupKeys(groups)
	if len(keys) != 4 {
		t.Errorf("sorted keys = %d", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Errorf("keys not sorted at %d", i)
		}
	}
}

func TestEmpiricalCountsAndFreqs(t *testing.T) {
	r := carRelation()
	if got := r.Count(Assignment{"Model": "BMW X1"}); got != 4 {
		t.Errorf("Count(Model=BMW X1) = %d, want 4", got)
	}
	if got := r.Count(Assignment{"Model": "Toyota Prius", "Color": "White"}); got != 3 {
		t.Errorf("Count(Prius,White) = %d, want 3", got)
	}
	if got := r.Freq(Assignment{"Color": "Black"}); got != 3.0/8.0 {
		t.Errorf("Freq(Black) = %v, want 0.375", got)
	}
}

func TestEmpiricalDist(t *testing.T) {
	r := carRelation()
	d := r.Empirical("Model", "Color")
	if d.N != 8 {
		t.Fatalf("N = %d", d.N)
	}
	if got := d.Prob("Toyota Prius", "White"); got != 3.0/8.0 {
		t.Errorf("Prob(Prius,White) = %v", got)
	}
	sum := 0.0
	for _, p := range d.Probs {
		sum += p
	}
	if diff := sum - 1.0; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestContingencyTable(t *testing.T) {
	r := carRelation()
	ct, err := r.Contingency("Model", "Color")
	if err != nil {
		t.Fatal(err)
	}
	if ct.N != 8 {
		t.Errorf("N = %v", ct.N)
	}
	// Model order of first appearance: BMW X1, Toyota Prius.
	// Color order: White, Black.
	if ct.Counts[0][0] != 2 || ct.Counts[0][1] != 2 || ct.Counts[1][0] != 3 || ct.Counts[1][1] != 1 {
		t.Errorf("counts = %v", ct.Counts)
	}
	rm := ct.RowMarginals()
	if rm[0] != 4 || rm[1] != 4 {
		t.Errorf("row marginals = %v", rm)
	}
	cm := ct.ColMarginals()
	if cm[0] != 5 || cm[1] != 3 {
		t.Errorf("col marginals = %v", cm)
	}
	e := ct.Expected()
	if e[0][0] != 4*5.0/8.0 {
		t.Errorf("expected[0][0] = %v", e[0][0])
	}
	if df := ct.DegreesOfFreedom(); df != 1 {
		t.Errorf("df = %d, want 1", df)
	}
	if me := ct.MinExpected(); me != 4*3.0/8.0 {
		t.Errorf("min expected = %v", me)
	}
}

func TestContingencyRejectsNumeric(t *testing.T) {
	r := MustNew(
		NewNumericColumn("X", []float64{1, 2}),
		NewCategoricalColumn("Y", []string{"a", "b"}),
	)
	if _, err := r.Contingency("X", "Y"); err == nil {
		t.Error("want error for numeric column in contingency table")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := MustNew(
		NewCategoricalColumn("City", []string{"Portland", "Seattle", "Portland"}),
		NewNumericColumn("Temp", []float64{21.5, 18, 23}),
	)
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 3 || back.NumCols() != 2 {
		t.Fatalf("round trip shape = %dx%d", back.NumRows(), back.NumCols())
	}
	if back.MustColumn("Temp").Kind != Numeric {
		t.Error("Temp should be inferred numeric")
	}
	if back.MustColumn("City").Kind != Categorical {
		t.Error("City should be inferred categorical")
	}
	if back.MustColumn("Temp").Value(0) != 21.5 {
		t.Errorf("Temp[0] = %v", back.MustColumn("Temp").Value(0))
	}
}

func TestCSVTypedOverride(t *testing.T) {
	csv := "Zip,Pop\n97201,100\n97202,200\n"
	r, err := ReadCSVTyped(strings.NewReader(csv), map[string]Kind{"Zip": Categorical})
	if err != nil {
		t.Fatal(err)
	}
	if r.MustColumn("Zip").Kind != Categorical {
		t.Error("Zip should be categorical per override")
	}
	if r.MustColumn("Pop").Kind != Numeric {
		t.Error("Pop should be inferred numeric")
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("want error for empty csv")
	}
	if _, err := ReadCSV(strings.NewReader("A,B\n1\n")); err == nil {
		t.Error("want error for ragged csv")
	}
	if _, err := ReadCSVTyped(strings.NewReader("A\nx\n"), map[string]Kind{"A": Numeric}); err == nil {
		t.Error("want error forcing non-numeric data to Numeric")
	}
}

func TestNaturalJoinEMVDExample(t *testing.T) {
	// Table 2 of the paper: satisfies Z ->> X | Y.
	d := table2()
	xy, _ := d.Project("Z", "X")
	xz, _ := d.Project("Z", "Y")
	j, err := NaturalJoin(xy, xz)
	if err != nil {
		t.Fatal(err)
	}
	xyz, _ := d.Project("Z", "X", "Y")
	if !EqualAsSets(j, xyz) {
		t.Error("Table 2 should satisfy EMVD Z->>X|Y: projections join back to Pi_ZXY")
	}
}

func table2() *Relation {
	return MustNew(
		NewCategoricalColumn("Z", []string{"z1", "z1", "z1", "z1", "z1", "z1"}),
		NewCategoricalColumn("X", []string{"x1", "x2", "x1", "x1", "x1", "x2"}),
		NewCategoricalColumn("Y", []string{"y1", "y2", "y2", "y2", "y2", "y1"}),
		NewCategoricalColumn("M", []string{"m1", "m1", "m1", "m2", "m3", "m1"}),
	)
}

func TestNaturalJoinNoSharedColumns(t *testing.T) {
	a := MustNew(NewCategoricalColumn("A", []string{"x"}))
	b := MustNew(NewCategoricalColumn("B", []string{"y"}))
	if _, err := NaturalJoin(a, b); err == nil {
		t.Error("want error for join with no shared columns")
	}
}

func TestEqualAsSetsIgnoresOrderAndDuplicates(t *testing.T) {
	a := MustNew(
		NewCategoricalColumn("A", []string{"1", "2", "1"}),
		NewCategoricalColumn("B", []string{"x", "y", "x"}),
	)
	b := MustNew(
		NewCategoricalColumn("B", []string{"y", "x"}),
		NewCategoricalColumn("A", []string{"2", "1"}),
	)
	if !EqualAsSets(a, b) {
		t.Error("relations equal as sets should compare equal")
	}
	c := MustNew(
		NewCategoricalColumn("A", []string{"1"}),
		NewCategoricalColumn("B", []string{"z"}),
	)
	if EqualAsSets(a, c) {
		t.Error("different row sets should not compare equal")
	}
	d := MustNew(NewCategoricalColumn("A", []string{"1"}))
	if EqualAsSets(a, d) {
		t.Error("different schemas should not compare equal")
	}
}

func TestRowKeyDistinguishesTuples(t *testing.T) {
	r := MustNew(
		NewCategoricalColumn("A", []string{"a", "ab"}),
		NewCategoricalColumn("B", []string{"bc", "c"}),
	)
	k0 := r.RowKey(0, []string{"A", "B"})
	k1 := r.RowKey(1, []string{"A", "B"})
	if k0 == k1 {
		t.Error("RowKey must not collide across (a,bc) and (ab,c)")
	}
}

func TestDistinctRows(t *testing.T) {
	r := carRelation()
	d := r.DistinctRows([]string{"Model"})
	if len(d) != 2 {
		t.Fatalf("distinct models = %d", len(d))
	}
	for _, n := range d {
		if n != 4 {
			t.Errorf("multiplicity = %d, want 4", n)
		}
	}
}
