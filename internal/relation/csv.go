package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// ReadCSV loads a relation from CSV data with a header row. Column types are
// inferred: a column becomes Numeric when every value is non-empty and
// parses as a float, otherwise Categorical. Empty cells are never stored as
// NaN — a single empty cell forces its whole column to Categorical — so
// callers that expect numeric data should pre-clean the file or pin the
// column's kind with ReadCSVTyped.
func ReadCSV(r io.Reader) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("relation: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("relation: empty csv")
	}
	header := records[0]
	rows := records[1:]
	for i, row := range rows {
		if len(row) != len(header) {
			return nil, fmt.Errorf("relation: csv row %d has %d fields, want %d", i+2, len(row), len(header))
		}
	}
	kinds := make([]Kind, len(header))
	for j := range header {
		kinds[j] = inferKind(rows, j)
	}
	return buildTyped(header, kinds, rows)
}

// ReadCSVTyped loads a relation from CSV with explicit column kinds, given as
// a map from column name to Kind. Columns absent from the map are inferred.
func ReadCSVTyped(r io.Reader, kinds map[string]Kind) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("relation: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("relation: empty csv")
	}
	header := records[0]
	rows := records[1:]
	ks := make([]Kind, len(header))
	for j, name := range header {
		if k, ok := kinds[name]; ok {
			ks[j] = k
		} else {
			ks[j] = inferKind(rows, j)
		}
	}
	return buildTyped(header, ks, rows)
}

// ReadCSVFile is ReadCSV over a file path.
func ReadCSVFile(path string) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}

func inferKind(rows [][]string, j int) Kind {
	any := false
	for _, row := range rows {
		v := row[j]
		if v == "" {
			return Categorical
		}
		if _, err := strconv.ParseFloat(v, 64); err != nil {
			return Categorical
		}
		any = true
	}
	if !any {
		return Categorical
	}
	return Numeric
}

func buildTyped(header []string, kinds []Kind, rows [][]string) (*Relation, error) {
	cols := make([]*Column, len(header))
	for j, name := range header {
		if kinds[j] == Numeric {
			vals := make([]float64, len(rows))
			for i, row := range rows {
				v, err := strconv.ParseFloat(row[j], 64)
				if err != nil {
					return nil, fmt.Errorf("relation: column %q row %d: %q is not numeric", name, i+2, row[j])
				}
				vals[i] = v
			}
			cols[j] = NewNumericColumn(name, vals)
		} else {
			vals := make([]string, len(rows))
			for i, row := range rows {
				vals[i] = row[j]
			}
			cols[j] = NewCategoricalColumn(name, vals)
		}
	}
	return New(cols...)
}

// WriteCSV writes the relation as CSV with a header row.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Columns()); err != nil {
		return err
	}
	for i := 0; i < r.NumRows(); i++ {
		if err := cw.Write(r.Row(i)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the relation to a file path. The file's Close error
// is propagated: on many filesystems a write failure only surfaces at
// close, and swallowing it would report success for a truncated file.
func (r *Relation) WriteCSVFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return r.WriteCSV(f)
}
