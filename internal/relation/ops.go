package relation

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"strings"
)

// Filter returns the relation restricted to rows where keep reports true.
func (r *Relation) Filter(keep func(row int) bool) *Relation {
	var rows []int
	for i := 0; i < r.NumRows(); i++ {
		if keep(i) {
			rows = append(rows, i)
		}
	}
	return r.Subset(rows)
}

// SortBy returns a copy of the relation sorted by the named columns in
// order (numeric columns by value, categorical by string), stably.
func (r *Relation) SortBy(names ...string) (*Relation, error) {
	cols := make([]*Column, len(names))
	for i, n := range names {
		c, err := r.Column(n)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	idx := make([]int, r.NumRows())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for _, c := range cols {
			if c.Kind == Numeric {
				va, vb := c.Value(idx[a]), c.Value(idx[b])
				//scoded:lint-ignore floatcmp comparator tie-break needs exact equality for a total order
				if va != vb {
					return va < vb
				}
				continue
			}
			sa, sb := c.StringAt(idx[a]), c.StringAt(idx[b])
			if sa != sb {
				return sa < sb
			}
		}
		return false
	})
	return r.Subset(idx), nil
}

// Sample returns n rows drawn without replacement, in original row order.
func (r *Relation) Sample(n int, rng *rand.Rand) (*Relation, error) {
	if n < 0 || n > r.NumRows() {
		return nil, fmt.Errorf("relation: sample size %d out of range (0..%d)", n, r.NumRows())
	}
	rows := rng.Perm(r.NumRows())[:n]
	sort.Ints(rows)
	return r.Subset(rows), nil
}

// Concat appends another relation with an identical schema (same column
// names and kinds, in order).
func (r *Relation) Concat(o *Relation) (*Relation, error) {
	if r.NumCols() != o.NumCols() {
		return nil, fmt.Errorf("relation: concat schema mismatch: %d vs %d columns", r.NumCols(), o.NumCols())
	}
	out := r.Clone()
	for i, name := range r.Columns() {
		oc, err := o.Column(name)
		if err != nil {
			return nil, fmt.Errorf("relation: concat: %w", err)
		}
		c := out.cols[i]
		if c.Kind != oc.Kind {
			return nil, fmt.Errorf("relation: concat kind mismatch on %q: %s vs %s", name, c.Kind, oc.Kind)
		}
		for j := 0; j < oc.Len(); j++ {
			if c.Kind == Numeric {
				c.values = append(c.values, oc.Value(j))
			} else {
				c.codes = append(c.codes, c.intern(oc.StringAt(j)))
			}
		}
	}
	return out, nil
}

// ColumnSummary describes one column for profiling output.
type ColumnSummary struct {
	Name        string
	Kind        Kind
	Cardinality int
	// Numeric summaries (zero for categorical columns).
	Min, Max, Mean, StdDev float64
	// TopValue is the most frequent value with its count (categorical
	// columns only).
	TopValue string
	TopCount int
}

// Describe summarizes every column: numeric columns get min/max/mean/sd,
// categorical columns their cardinality and mode.
func (r *Relation) Describe() []ColumnSummary {
	out := make([]ColumnSummary, 0, r.NumCols())
	for _, name := range r.Columns() {
		c := r.MustColumn(name)
		s := ColumnSummary{Name: name, Kind: c.Kind, Cardinality: c.Cardinality()}
		if c.Kind == Numeric {
			if c.Len() > 0 {
				min, max, sum := math.Inf(1), math.Inf(-1), 0.0
				for i := 0; i < c.Len(); i++ {
					v := c.Value(i)
					if v < min {
						min = v
					}
					if v > max {
						max = v
					}
					sum += v
				}
				mean := sum / float64(c.Len())
				var ss float64
				for i := 0; i < c.Len(); i++ {
					d := c.Value(i) - mean
					ss += d * d
				}
				s.Min, s.Max, s.Mean = min, max, mean
				if c.Len() > 1 {
					s.StdDev = math.Sqrt(ss / float64(c.Len()-1))
				}
			}
		} else {
			counts := make(map[string]int)
			for i := 0; i < c.Len(); i++ {
				counts[c.StringAt(i)]++
			}
			for v, n := range counts {
				if n > s.TopCount || (n == s.TopCount && v < s.TopValue) {
					s.TopValue, s.TopCount = v, n
				}
			}
		}
		out = append(out, s)
	}
	return out
}

// String renders a short preview of the relation (schema plus the first
// few rows) for debugging.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Relation(%d rows)\n", r.NumRows())
	b.WriteString(strings.Join(r.Columns(), "\t"))
	b.WriteByte('\n')
	limit := r.NumRows()
	if limit > 5 {
		limit = 5
	}
	for i := 0; i < limit; i++ {
		b.WriteString(strings.Join(r.Row(i), "\t"))
		b.WriteByte('\n')
	}
	if r.NumRows() > limit {
		fmt.Fprintf(&b, "... %d more rows\n", r.NumRows()-limit)
	}
	return b.String()
}
