package relation

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func opsRelation() *Relation {
	return MustNew(
		NewCategoricalColumn("City", []string{"B", "A", "B", "C", "A"}),
		NewNumericColumn("Pop", []float64{5, 3, 9, 1, 3}),
	)
}

func TestFilter(t *testing.T) {
	r := opsRelation()
	f := r.Filter(func(i int) bool { return r.MustColumn("Pop").Value(i) >= 3 })
	if f.NumRows() != 4 {
		t.Fatalf("rows = %d", f.NumRows())
	}
	for i := 0; i < f.NumRows(); i++ {
		if f.MustColumn("Pop").Value(i) < 3 {
			t.Errorf("filter kept %v", f.MustColumn("Pop").Value(i))
		}
	}
	empty := r.Filter(func(int) bool { return false })
	if empty.NumRows() != 0 {
		t.Error("empty filter should drop everything")
	}
}

func TestSortBy(t *testing.T) {
	r := opsRelation()
	s, err := r.SortBy("City", "Pop")
	if err != nil {
		t.Fatal(err)
	}
	cities := make([]string, s.NumRows())
	for i := range cities {
		cities[i] = s.MustColumn("City").StringAt(i)
	}
	want := []string{"A", "A", "B", "B", "C"}
	for i := range want {
		if cities[i] != want[i] {
			t.Fatalf("sorted cities = %v", cities)
		}
	}
	// Within City=B, Pop ascending: 5 then 9.
	if s.MustColumn("Pop").Value(2) != 5 || s.MustColumn("Pop").Value(3) != 9 {
		t.Errorf("secondary sort wrong: %v, %v", s.MustColumn("Pop").Value(2), s.MustColumn("Pop").Value(3))
	}
	if _, err := r.SortBy("Nope"); err == nil {
		t.Error("want error for missing column")
	}
	// Original untouched.
	if r.MustColumn("City").StringAt(0) != "B" {
		t.Error("SortBy mutated the input")
	}
}

func TestSample(t *testing.T) {
	r := opsRelation()
	rng := rand.New(rand.NewSource(1))
	s, err := r.Sample(3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRows() != 3 {
		t.Fatalf("rows = %d", s.NumRows())
	}
	if _, err := r.Sample(9, rng); err == nil {
		t.Error("want error for oversized sample")
	}
	if _, err := r.Sample(-1, rng); err == nil {
		t.Error("want error for negative sample")
	}
	zero, err := r.Sample(0, rng)
	if err != nil || zero.NumRows() != 0 {
		t.Error("zero sample should be empty")
	}
}

func TestConcat(t *testing.T) {
	a := opsRelation()
	b := MustNew(
		NewCategoricalColumn("City", []string{"D"}),
		NewNumericColumn("Pop", []float64{7}),
	)
	out, err := a.Concat(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 6 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	if out.MustColumn("City").StringAt(5) != "D" || out.MustColumn("Pop").Value(5) != 7 {
		t.Error("appended row wrong")
	}
	if a.NumRows() != 5 {
		t.Error("Concat mutated the receiver")
	}
	// Schema mismatches.
	if _, err := a.Concat(MustNew(NewCategoricalColumn("City", []string{"x"}))); err == nil {
		t.Error("want error for column-count mismatch")
	}
	mism := MustNew(
		NewCategoricalColumn("City", []string{"x"}),
		NewCategoricalColumn("Pop", []string{"y"}),
	)
	if _, err := a.Concat(mism); err == nil {
		t.Error("want error for kind mismatch")
	}
	renamed := MustNew(
		NewCategoricalColumn("Town", []string{"x"}),
		NewNumericColumn("Pop", []float64{1}),
	)
	if _, err := a.Concat(renamed); err == nil {
		t.Error("want error for name mismatch")
	}
}

func TestDescribe(t *testing.T) {
	r := opsRelation()
	ds := r.Describe()
	if len(ds) != 2 {
		t.Fatalf("summaries = %d", len(ds))
	}
	city := ds[0]
	if city.Name != "City" || city.Kind != Categorical || city.Cardinality != 3 {
		t.Errorf("city summary = %+v", city)
	}
	// A and B both appear twice; ties break to the lexicographically
	// smaller value.
	if city.TopValue != "A" || city.TopCount != 2 {
		t.Errorf("city mode = %q x%d", city.TopValue, city.TopCount)
	}
	pop := ds[1]
	if pop.Min != 1 || pop.Max != 9 {
		t.Errorf("pop range = [%v, %v]", pop.Min, pop.Max)
	}
	if math.Abs(pop.Mean-4.2) > 1e-12 {
		t.Errorf("pop mean = %v", pop.Mean)
	}
	if pop.StdDev <= 0 {
		t.Errorf("pop sd = %v", pop.StdDev)
	}
}

func TestRelationString(t *testing.T) {
	r := opsRelation()
	s := r.String()
	if !strings.Contains(s, "Relation(5 rows)") || !strings.Contains(s, "City") {
		t.Errorf("String = %q", s)
	}
	big := r.Filter(func(int) bool { return true })
	big, _ = big.Concat(r)
	if !strings.Contains(big.String(), "more rows") {
		t.Error("long relations should be truncated in String")
	}
}
