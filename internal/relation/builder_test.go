package relation

import (
	"math"
	"strings"
	"testing"
)

func buildRel(t *testing.T) *Relation {
	t.Helper()
	r, err := New(
		NewCategoricalColumn("Model", []string{"a", "b", "a", "c"}),
		NewNumericColumn("Price", []float64{1, 2, 3, 4}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBuilderChunkedEqualsWhole(t *testing.T) {
	names := []string{"Model", "Price"}
	kinds := []Kind{Categorical, Numeric}
	whole, err := New(
		NewCategoricalColumn("Model", []string{"x", "y", "x", "z", "y", "w"}),
		NewNumericColumn("Price", []float64{1, 2, 3, 4, 5, 6}),
	)
	if err != nil {
		t.Fatal(err)
	}

	b, err := NewBuilder(names, kinds)
	if err != nil {
		t.Fatal(err)
	}
	// Two chunks, the second arriving dictionary-coded with a chunk-local
	// dictionary whose code order differs from the global one.
	if err := b.AppendStrings("Model", []string{"x", "y", "x"}); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendCoded("Model", []string{"z", "w", "y"}, []uint32{0, 2, 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendFloats("Price", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendFloats("Price", []float64{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	got, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(whole) {
		t.Fatalf("chunked build diverged from whole build:\ngot  %v\nwant %v", got.Columns(), whole.Columns())
	}
	// Dictionary code order must match first-occurrence order too, so the
	// dense codings the kernel computes agree bit for bit.
	gm, wm := got.MustColumn("Model"), whole.MustColumn("Model")
	for i := 0; i < got.NumRows(); i++ {
		if gm.Code(i) != wm.Code(i) {
			t.Fatalf("row %d: code %d != %d", i, gm.Code(i), wm.Code(i))
		}
	}
}

func TestBuilderLengthMismatch(t *testing.T) {
	b, err := NewBuilder([]string{"A", "B"}, []Kind{Categorical, Numeric})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AppendStrings("A", []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendFloats("B", []float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted unequal column lengths")
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder([]string{"A", "A"}, []Kind{Categorical, Categorical}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if _, err := NewBuilder([]string{"A"}, nil); err == nil {
		t.Fatal("mismatched kinds accepted")
	}
	b, err := NewBuilder([]string{"A", "B"}, []Kind{Categorical, Numeric})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AppendFloats("A", []float64{1}); err == nil {
		t.Fatal("numeric append on categorical column accepted")
	}
	if err := b.AppendStrings("missing", []string{"x"}); err == nil {
		t.Fatal("append on unknown column accepted")
	}
	if err := b.AppendCoded("A", []string{"x"}, []uint32{3}); err == nil {
		t.Fatal("out-of-range chunk code accepted")
	}
	if b.Len("A") != 0 || b.Len("missing") != -1 {
		t.Fatalf("Len: got %d / %d", b.Len("A"), b.Len("missing"))
	}
}

func TestAppendRows(t *testing.T) {
	base := buildRel(t)
	batch, err := New(
		NewCategoricalColumn("Model", []string{"c", "d"}),
		NewNumericColumn("Price", []float64{5, 6}),
	)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := base.AppendRows(batch)
	if err != nil {
		t.Fatal(err)
	}
	if base.NumRows() != 4 {
		t.Fatalf("receiver mutated: %d rows", base.NumRows())
	}
	if grown.NumRows() != 6 {
		t.Fatalf("grown has %d rows, want 6", grown.NumRows())
	}
	// Existing rows keep their codes (append-only invariant).
	gm := grown.MustColumn("Model")
	bm := base.MustColumn("Model")
	for i := 0; i < base.NumRows(); i++ {
		if gm.Code(i) != bm.Code(i) {
			t.Fatalf("row %d code changed: %d != %d", i, gm.Code(i), bm.Code(i))
		}
	}
	if got := gm.StringAt(5); got != "d" {
		t.Fatalf("appended row value %q", got)
	}
	if got := grown.MustColumn("Price").Value(4); got != 5 {
		t.Fatalf("appended price %v", got)
	}

	// Schema mismatches are rejected.
	wrong, err := New(NewCategoricalColumn("Model", []string{"c"}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.AppendRows(wrong); err == nil {
		t.Fatal("column-count mismatch accepted")
	}
	wrongKind, err := New(
		NewNumericColumn("Model", []float64{1}),
		NewNumericColumn("Price", []float64{1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.AppendRows(wrongKind); err == nil {
		t.Fatal("kind mismatch accepted")
	}
}

func TestRelationEqual(t *testing.T) {
	a := buildRel(t)
	if !a.Equal(buildRel(t)) {
		t.Fatal("identical relations compare unequal")
	}
	b := buildRel(t)
	b.MustColumn("Price").SetValue(2, 3.0000001)
	if a.Equal(b) {
		t.Fatal("differing float compares equal")
	}
	c := buildRel(t)
	c.MustColumn("Model").SetString(0, "zz")
	if a.Equal(c) {
		t.Fatal("differing category compares equal")
	}
	// NaN compares equal to itself bitwise.
	d1, d2 := buildRel(t), buildRel(t)
	d1.MustColumn("Price").SetValue(0, math.NaN())
	d2.MustColumn("Price").SetValue(0, math.NaN())
	if !d1.Equal(d2) {
		t.Fatal("same-bits NaN compares unequal")
	}
}

func TestSameSchemaMessages(t *testing.T) {
	a := buildRel(t)
	b, err := New(
		NewCategoricalColumn("Other", []string{"a"}),
		NewNumericColumn("Price", []float64{1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SameSchema(b); err == nil || !strings.Contains(err.Error(), "Other") {
		t.Fatalf("want name mismatch error, got %v", err)
	}
}
