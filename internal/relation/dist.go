package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Assignment is a joint assignment of values to a set of columns, X = x in
// the paper's notation. Values are in their string form.
type Assignment map[string]string

// Key renders the assignment as a canonical string over the given column
// order.
func (a Assignment) Key(names []string) string {
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = a[n]
	}
	return joinKey(parts)
}

// joinKey renders a value tuple as one \x1f-separated string. Keys are
// built once per row on the detection hot path, so the builder is sized
// up front and fills in a single allocation.
func joinKey(parts []string) string {
	if len(parts) == 0 {
		return ""
	}
	if len(parts) == 1 {
		return parts[0]
	}
	size := len(parts) - 1
	for _, p := range parts {
		size += len(p)
	}
	var b strings.Builder
	b.Grow(size)
	b.WriteString(parts[0])
	for _, p := range parts[1:] {
		b.WriteByte('\x1f')
		b.WriteString(p)
	}
	return b.String()
}

// Count returns the empirical count N_D(X = x): the number of records whose
// values on the assignment's columns match the assignment.
func (r *Relation) Count(a Assignment) int {
	names := make([]string, 0, len(a))
	for n := range a {
		names = append(names, n)
	}
	sort.Strings(names)
	want := a.Key(names)
	n := 0
	for i := 0; i < r.NumRows(); i++ {
		if r.RowKey(i, names) == want {
			n++
		}
	}
	return n
}

// Freq returns the empirical frequency P_D(X = x) = N_D(X = x) / N_D.
func (r *Relation) Freq(a Assignment) float64 {
	if r.NumRows() == 0 {
		return 0
	}
	return float64(r.Count(a)) / float64(r.NumRows())
}

// EmpiricalDist is the empirical joint distribution P_D over a set of
// columns: each distinct value tuple with its frequency.
type EmpiricalDist struct {
	Names []string
	// Probs maps a RowKey over Names to its empirical frequency.
	Probs map[string]float64
	// N is the number of records the distribution was computed from.
	N int
}

// Empirical computes the empirical distribution over the named columns.
func (r *Relation) Empirical(names ...string) *EmpiricalDist {
	d := &EmpiricalDist{Names: append([]string(nil), names...), Probs: make(map[string]float64), N: r.NumRows()}
	if d.N == 0 {
		return d
	}
	inv := 1.0 / float64(d.N)
	for i := 0; i < d.N; i++ {
		d.Probs[r.RowKey(i, names)] += inv
	}
	return d
}

// Prob returns the probability of a value tuple (given in Names order).
func (d *EmpiricalDist) Prob(vals ...string) float64 {
	if len(vals) != len(d.Names) {
		panic(fmt.Sprintf("relation: Prob got %d values for %d columns", len(vals), len(d.Names)))
	}
	return d.Probs[joinKey(vals)]
}

// ContingencyTable is the 2-way table of empirical counts over a pair of
// categorical columns, the input to the G and chi-square tests.
type ContingencyTable struct {
	RowLevels []string
	ColLevels []string
	// Counts[i][j] is the number of records with row level i and col level j.
	Counts [][]float64
	// N is the total count.
	N float64
}

// Contingency builds the contingency table of two categorical columns. Both
// columns must be categorical; numeric columns should be discretised first.
func (r *Relation) Contingency(rowCol, colCol string) (*ContingencyTable, error) {
	rc, err := r.Column(rowCol)
	if err != nil {
		return nil, err
	}
	cc, err := r.Column(colCol)
	if err != nil {
		return nil, err
	}
	if rc.Kind != Categorical || cc.Kind != Categorical {
		return nil, fmt.Errorf("relation: contingency table needs categorical columns, got %s (%s) and %s (%s)",
			rowCol, rc.Kind, colCol, cc.Kind)
	}
	t := &ContingencyTable{RowLevels: rc.Levels(), ColLevels: cc.Levels()}
	t.Counts = make([][]float64, len(t.RowLevels))
	for i := range t.Counts {
		t.Counts[i] = make([]float64, len(t.ColLevels))
	}
	for i := 0; i < r.NumRows(); i++ {
		t.Counts[rc.Code(i)][cc.Code(i)]++
		t.N++
	}
	return t, nil
}

// RowMarginals returns the row sums of the table.
func (t *ContingencyTable) RowMarginals() []float64 {
	out := make([]float64, len(t.Counts))
	for i, row := range t.Counts {
		for _, v := range row {
			out[i] += v
		}
	}
	return out
}

// ColMarginals returns the column sums of the table.
func (t *ContingencyTable) ColMarginals() []float64 {
	if len(t.Counts) == 0 {
		return nil
	}
	out := make([]float64, len(t.Counts[0]))
	for _, row := range t.Counts {
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// Expected returns the table of expected counts under independence:
// E[i][j] = rowSum_i * colSum_j / N.
func (t *ContingencyTable) Expected() [][]float64 {
	rm, cm := t.RowMarginals(), t.ColMarginals()
	out := make([][]float64, len(rm))
	for i := range out {
		out[i] = make([]float64, len(cm))
		for j := range out[i] {
			if t.N > 0 {
				out[i][j] = rm[i] * cm[j] / t.N
			}
		}
	}
	return out
}

// MinExpected returns the smallest expected cell count over cells whose row
// and column marginals are both positive; used for the chi-square
// approximation validity rule (expected >= 5).
func (t *ContingencyTable) MinExpected() float64 {
	rm, cm := t.RowMarginals(), t.ColMarginals()
	min := -1.0
	for i := range rm {
		if rm[i] <= 0 {
			continue
		}
		for j := range cm {
			if cm[j] <= 0 {
				continue
			}
			e := rm[i] * cm[j] / t.N
			if min < 0 || e < min {
				min = e
			}
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// DegreesOfFreedom returns (r-1)(c-1) counting only levels with nonzero
// marginals.
func (t *ContingencyTable) DegreesOfFreedom() int {
	rm, cm := t.RowMarginals(), t.ColMarginals()
	nr, nc := 0, 0
	for _, v := range rm {
		if v > 0 {
			nr++
		}
	}
	for _, v := range cm {
		if v > 0 {
			nc++
		}
	}
	if nr < 2 || nc < 2 {
		return 0
	}
	return (nr - 1) * (nc - 1)
}
