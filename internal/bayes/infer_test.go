package bayes

import (
	"math"
	"math/rand"
	"testing"
)

// chainNetwork builds A -> B -> C with known CPTs.
func chainNetwork() *Network {
	g := MustNewDAG([]string{"A", "B", "C"})
	g.AddEdge("A", "B")
	g.AddEdge("B", "C")
	return &Network{
		Graph: g,
		Levels: map[string][]string{
			"A": {"a0", "a1"},
			"B": {"b0", "b1"},
			"C": {"c0", "c1"},
		},
		CPTs: map[string]map[string][]float64{
			"A": {"": {0.6, 0.4}},
			"B": {"a0": {0.9, 0.1}, "a1": {0.2, 0.8}},
			"C": {"b0": {0.7, 0.3}, "b1": {0.1, 0.9}},
		},
	}
}

func TestQueryPrior(t *testing.T) {
	n := chainNetwork()
	// P(B=b0) = 0.6*0.9 + 0.4*0.2 = 0.62.
	p, err := n.Query("B", nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p["b0"]-0.62) > 1e-12 {
		t.Errorf("P(b0) = %v, want 0.62", p["b0"])
	}
	// P(C=c0) = P(b0)*0.7 + P(b1)*0.1 = 0.62*0.7 + 0.38*0.1 = 0.472.
	p, _ = n.Query("C", nil)
	if math.Abs(p["c0"]-0.472) > 1e-12 {
		t.Errorf("P(c0) = %v, want 0.472", p["c0"])
	}
}

func TestQueryConditional(t *testing.T) {
	n := chainNetwork()
	// P(A=a1 | B=b1) = P(b1|a1)P(a1)/P(b1) = 0.8*0.4/0.38.
	p, err := n.Query("A", map[string]string{"B": "b1"})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.8 * 0.4 / 0.38
	if math.Abs(p["a1"]-want) > 1e-12 {
		t.Errorf("P(a1|b1) = %v, want %v", p["a1"], want)
	}
	// Markov chain: conditioning on B screens A off from C.
	pc, _ := n.Query("C", map[string]string{"B": "b0", "A": "a0"})
	pc2, _ := n.Query("C", map[string]string{"B": "b0", "A": "a1"})
	if math.Abs(pc["c0"]-pc2["c0"]) > 1e-12 {
		t.Errorf("C should be independent of A given B: %v vs %v", pc["c0"], pc2["c0"])
	}
	if math.Abs(pc["c0"]-0.7) > 1e-12 {
		t.Errorf("P(c0|b0) = %v, want 0.7", pc["c0"])
	}
}

func TestQueryCollider(t *testing.T) {
	// A -> C <- B: explaining away.
	g := MustNewDAG([]string{"A", "B", "C"})
	g.AddEdge("A", "C")
	g.AddEdge("B", "C")
	n := &Network{
		Graph: g,
		Levels: map[string][]string{
			"A": {"0", "1"},
			"B": {"0", "1"},
			"C": {"0", "1"},
		},
		CPTs: map[string]map[string][]float64{
			"A": {"": {0.5, 0.5}},
			"B": {"": {0.5, 0.5}},
			// C=1 when A or B is 1 (noisy OR-ish). Parent key order is
			// sorted: A then B.
			"C": {
				"0\x1f0": {0.95, 0.05},
				"0\x1f1": {0.2, 0.8},
				"1\x1f0": {0.2, 0.8},
				"1\x1f1": {0.05, 0.95},
			},
		},
	}
	// Marginally A ⊥ B.
	pa, err := n.Query("A", map[string]string{"B": "1"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pa["1"]-0.5) > 1e-12 {
		t.Errorf("marginal independence broken: P(a1|b1)=%v", pa["1"])
	}
	// Given C=1, learning B=1 explains away A.
	paC, _ := n.Query("A", map[string]string{"C": "1"})
	paCB, _ := n.Query("A", map[string]string{"C": "1", "B": "1"})
	if !(paCB["1"] < paC["1"]) {
		t.Errorf("explaining away violated: P(a1|c1)=%v, P(a1|c1,b1)=%v", paC["1"], paCB["1"])
	}
}

func TestQueryMatchesSamplingEstimate(t *testing.T) {
	n := chainNetwork()
	rng := rand.New(rand.NewSource(42))
	d, err := n.Sample(60000, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Empirical P(C=c1 | A=a1) vs exact query.
	exact, err := n.Query("C", map[string]string{"A": "a1"})
	if err != nil {
		t.Fatal(err)
	}
	a := d.MustColumn("A")
	c := d.MustColumn("C")
	num, den := 0, 0
	for i := 0; i < d.NumRows(); i++ {
		if a.StringAt(i) == "a1" {
			den++
			if c.StringAt(i) == "c1" {
				num++
			}
		}
	}
	emp := float64(num) / float64(den)
	if math.Abs(emp-exact["c1"]) > 0.01 {
		t.Errorf("empirical %v vs exact %v", emp, exact["c1"])
	}
}

func TestQueryErrors(t *testing.T) {
	n := chainNetwork()
	if _, err := n.Query("Z", nil); err == nil {
		t.Error("want error for unknown target")
	}
	if _, err := n.Query("A", map[string]string{"Z": "x"}); err == nil {
		t.Error("want error for unknown evidence variable")
	}
	if _, err := n.Query("A", map[string]string{"B": "zzz"}); err == nil {
		t.Error("want error for unknown evidence level")
	}
	if _, err := n.Query("A", map[string]string{"A": "a0"}); err == nil {
		t.Error("want error for target in evidence")
	}
}

func TestQueryDistributionNormalized(t *testing.T) {
	n := chainNetwork()
	p, err := n.Query("B", map[string]string{"C": "c1"})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Errorf("probability out of range: %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("posterior sums to %v", sum)
	}
}
