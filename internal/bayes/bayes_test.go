package bayes

import (
	"math/rand"
	"testing"

	"scoded/internal/relation"
)

// carDAG is the paper's Figure 1(b) network: Model -> Color,
// Model -> Price, Price -> Fuel.
func carDAG() *DAG {
	g := MustNewDAG([]string{"Model", "Color", "Price", "Fuel"})
	mustEdge := func(a, b string) {
		if err := g.AddEdge(a, b); err != nil {
			panic(err)
		}
	}
	mustEdge("Model", "Color")
	mustEdge("Model", "Price")
	mustEdge("Price", "Fuel")
	return g
}

func TestDAGConstruction(t *testing.T) {
	if _, err := NewDAG([]string{"A", "A"}); err == nil {
		t.Error("want error for duplicate node")
	}
	if _, err := NewDAG([]string{""}); err == nil {
		t.Error("want error for empty name")
	}
	g := MustNewDAG([]string{"A", "B", "C"})
	if err := g.AddEdge("A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("A", "B"); err == nil {
		t.Error("want error for duplicate edge")
	}
	if err := g.AddEdge("A", "A"); err == nil {
		t.Error("want error for self loop")
	}
	if err := g.AddEdge("B", "C"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("C", "A"); err == nil {
		t.Error("want error for cycle")
	}
	if err := g.AddEdge("X", "A"); err == nil {
		t.Error("want error for unknown node")
	}
	if !g.HasEdge("A", "B") || g.HasEdge("B", "A") {
		t.Error("HasEdge wrong")
	}
	if err := g.RemoveEdge("A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveEdge("A", "B"); err == nil {
		t.Error("want error removing absent edge")
	}
}

func TestDAGTopoOrder(t *testing.T) {
	g := carDAG()
	order := g.TopoOrder()
	if len(order) != 4 {
		t.Fatalf("topo order = %v", order)
	}
	pos := make(map[string]int)
	for i, n := range order {
		pos[n] = i
	}
	for _, e := range g.Edges() {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("edge %v violates topo order %v", e, order)
		}
	}
}

func TestDAGCloneIndependent(t *testing.T) {
	g := carDAG()
	c := g.Clone()
	c.RemoveEdge("Model", "Color")
	if !g.HasEdge("Model", "Color") {
		t.Error("Clone shares edge state")
	}
}

func TestDSeparationChain(t *testing.T) {
	// A -> B -> C: A and C are dependent marginally, independent given B.
	g := MustNewDAG([]string{"A", "B", "C"})
	g.AddEdge("A", "B")
	g.AddEdge("B", "C")
	sep, err := g.DSeparated([]string{"A"}, []string{"C"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sep {
		t.Error("chain: A and C should be d-connected marginally")
	}
	sep, _ = g.DSeparated([]string{"A"}, []string{"C"}, []string{"B"})
	if !sep {
		t.Error("chain: A ⊥ C | B should hold")
	}
}

func TestDSeparationFork(t *testing.T) {
	// A <- B -> C: same pattern as the chain.
	g := MustNewDAG([]string{"A", "B", "C"})
	g.AddEdge("B", "A")
	g.AddEdge("B", "C")
	if sep, _ := g.DSeparated([]string{"A"}, []string{"C"}, nil); sep {
		t.Error("fork: marginal dependence expected")
	}
	if sep, _ := g.DSeparated([]string{"A"}, []string{"C"}, []string{"B"}); !sep {
		t.Error("fork: A ⊥ C | B expected")
	}
}

func TestDSeparationCollider(t *testing.T) {
	// A -> B <- C: A ⊥ C marginally, but conditioning on B (or its
	// descendant) connects them.
	g := MustNewDAG([]string{"A", "B", "C", "D"})
	g.AddEdge("A", "B")
	g.AddEdge("C", "B")
	g.AddEdge("B", "D")
	if sep, _ := g.DSeparated([]string{"A"}, []string{"C"}, nil); !sep {
		t.Error("collider: A ⊥ C marginally expected")
	}
	if sep, _ := g.DSeparated([]string{"A"}, []string{"C"}, []string{"B"}); sep {
		t.Error("collider: conditioning on B should connect A and C")
	}
	if sep, _ := g.DSeparated([]string{"A"}, []string{"C"}, []string{"D"}); sep {
		t.Error("collider: conditioning on descendant D should connect A and C")
	}
}

func TestDSeparationFigure1(t *testing.T) {
	// The paper's example: Color ⊥ Price | Model and Color ⊥ Fuel | Model,
	// but Color ⊥̸ Price marginally (through Model).
	g := carDAG()
	if sep, _ := g.DSeparated([]string{"Color"}, []string{"Price"}, []string{"Model"}); !sep {
		t.Error("Color ⊥ Price | Model should hold in Figure 1(b)")
	}
	if sep, _ := g.DSeparated([]string{"Color"}, []string{"Price"}, nil); sep {
		t.Error("Color and Price should be marginally d-connected")
	}
	if sep, _ := g.DSeparated([]string{"Color"}, []string{"Fuel"}, []string{"Model"}); !sep {
		t.Error("Color ⊥ Fuel | Model should hold")
	}
	if sep, _ := g.DSeparated([]string{"Model"}, []string{"Fuel"}, []string{"Price"}); !sep {
		t.Error("Model ⊥ Fuel | Price should hold")
	}
	if _, err := g.DSeparated([]string{"Nope"}, []string{"Fuel"}, nil); err == nil {
		t.Error("want error for unknown node")
	}
}

func TestFitAndSampleRoundTrip(t *testing.T) {
	// Build a ground-truth network, sample from it, refit, and check the
	// refitted CPTs recover the generating probabilities.
	g := MustNewDAG([]string{"A", "B"})
	g.AddEdge("A", "B")
	truth := &Network{
		Graph:  g,
		Levels: map[string][]string{"A": {"a0", "a1"}, "B": {"b0", "b1"}},
		CPTs: map[string]map[string][]float64{
			"A": {"": {0.3, 0.7}},
			"B": {"a0": {0.9, 0.1}, "a1": {0.2, 0.8}},
		},
	}
	rng := rand.New(rand.NewSource(61))
	d, err := truth.Sample(20000, rng)
	if err != nil {
		t.Fatal(err)
	}
	refit, err := Fit(g, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := refit.Prob("B", "b0", map[string]string{"A": "a0"})
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.87 || p > 0.93 {
		t.Errorf("P(b0|a0) = %v, want ~0.9", p)
	}
	p, _ = refit.Prob("A", "a1", nil)
	if p < 0.67 || p > 0.73 {
		t.Errorf("P(a1) = %v, want ~0.7", p)
	}
}

func TestFitValidation(t *testing.T) {
	g := MustNewDAG([]string{"A"})
	d := relation.MustNew(relation.NewNumericColumn("A", []float64{1, 2}))
	if _, err := Fit(g, d, 0); err == nil {
		t.Error("want error for numeric column")
	}
	d2 := relation.MustNew(relation.NewCategoricalColumn("B", []string{"x"}))
	if _, err := Fit(g, d2, 0); err == nil {
		t.Error("want error for missing column")
	}
	d3 := relation.MustNew(relation.NewCategoricalColumn("A", []string{"x"}))
	if _, err := Fit(g, d3, -1); err == nil {
		t.Error("want error for negative smoothing")
	}
}

func TestProbErrors(t *testing.T) {
	g := MustNewDAG([]string{"A"})
	d := relation.MustNew(relation.NewCategoricalColumn("A", []string{"x", "y"}))
	net, err := Fit(g, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Prob("Z", "x", nil); err == nil {
		t.Error("want error for unknown node")
	}
	if _, err := net.Prob("A", "zzz", nil); err == nil {
		t.Error("want error for unknown level")
	}
}

func TestLogLikelihoodPrefersTrueStructure(t *testing.T) {
	// Data from A -> B should score higher under the true graph than under
	// the empty graph.
	g := MustNewDAG([]string{"A", "B"})
	g.AddEdge("A", "B")
	truth := &Network{
		Graph:  g,
		Levels: map[string][]string{"A": {"a0", "a1"}, "B": {"b0", "b1"}},
		CPTs: map[string]map[string][]float64{
			"A": {"": {0.5, 0.5}},
			"B": {"a0": {0.95, 0.05}, "a1": {0.05, 0.95}},
		},
	}
	rng := rand.New(rand.NewSource(62))
	d, _ := truth.Sample(3000, rng)

	fitTrue, _ := Fit(g, d, 1)
	llTrue, err := fitTrue.LogLikelihood(d)
	if err != nil {
		t.Fatal(err)
	}
	empty := MustNewDAG([]string{"A", "B"})
	fitEmpty, _ := Fit(empty, d, 1)
	llEmpty, _ := fitEmpty.LogLikelihood(d)
	if llTrue <= llEmpty {
		t.Errorf("true structure LL %v should beat empty %v", llTrue, llEmpty)
	}
}

func TestLearnStructureRecoversDependence(t *testing.T) {
	// Sample from A -> B -> C and learn; the learned DAG must connect A-B
	// and B-C (direction may be reversed — same Markov equivalence class)
	// and must keep A and C d-separated given B.
	g := MustNewDAG([]string{"A", "B", "C"})
	g.AddEdge("A", "B")
	g.AddEdge("B", "C")
	truth := &Network{
		Graph:  g,
		Levels: map[string][]string{"A": {"0", "1"}, "B": {"0", "1"}, "C": {"0", "1"}},
		CPTs: map[string]map[string][]float64{
			"A": {"": {0.5, 0.5}},
			"B": {"0": {0.9, 0.1}, "1": {0.1, 0.9}},
			"C": {"0": {0.85, 0.15}, "1": {0.15, 0.85}},
		},
	}
	rng := rand.New(rand.NewSource(63))
	d, _ := truth.Sample(5000, rng)

	learned, err := LearnStructure(d, []string{"A", "B", "C"}, LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	adjacent := func(a, b string) bool { return learned.HasEdge(a, b) || learned.HasEdge(b, a) }
	if !adjacent("A", "B") {
		t.Errorf("learned graph misses A-B: %v", learned.Edges())
	}
	if !adjacent("B", "C") {
		t.Errorf("learned graph misses B-C: %v", learned.Edges())
	}
	if adjacent("A", "C") {
		t.Errorf("learned graph has spurious A-C: %v", learned.Edges())
	}
}

func TestLearnStructureValidation(t *testing.T) {
	d := relation.MustNew(relation.NewNumericColumn("A", []float64{1}))
	if _, err := LearnStructure(d, []string{"A"}, LearnOptions{}); err == nil {
		t.Error("want error for numeric column")
	}
	if _, err := LearnStructure(d, []string{"Z"}, LearnOptions{}); err == nil {
		t.Error("want error for missing column")
	}
}
