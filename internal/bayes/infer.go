package bayes

import (
	"fmt"
	"sort"
	"strings"
)

// Inference by variable elimination. The SC Discovery workflow reads
// qualitative structure off the DAG with d-separation; inference closes the
// loop quantitatively, letting a user verify a suspected (in)dependence by
// comparing P(X | Y=y, Z=z) across y values on the fitted network.

// factor is a table over a set of variables (sorted by name), mapping each
// joint assignment (RowKey-style string over vars order) to a value.
type factor struct {
	vars []string
	vals map[string]float64
}

// Query computes the posterior distribution P(target | evidence) by
// variable elimination over the fitted network. Evidence maps variable
// names to observed values. Hidden variables are eliminated in a
// min-degree-style deterministic order.
func (n *Network) Query(target string, evidence map[string]string) (map[string]float64, error) {
	if _, ok := n.Levels[target]; !ok {
		return nil, fmt.Errorf("bayes: unknown query variable %q", target)
	}
	for v, val := range evidence {
		levels, ok := n.Levels[v]
		if !ok {
			return nil, fmt.Errorf("bayes: unknown evidence variable %q", v)
		}
		if !contains(levels, val) {
			return nil, fmt.Errorf("bayes: evidence %s=%q is not a known level", v, val)
		}
		if v == target {
			return nil, fmt.Errorf("bayes: target %q cannot also be evidence", target)
		}
	}

	// Build one factor per node: P(node | parents), with evidence rows
	// filtered out immediately.
	var factors []*factor
	for _, node := range n.Graph.Nodes() {
		f, err := n.nodeFactor(node)
		if err != nil {
			return nil, err
		}
		f = f.reduce(evidence)
		factors = append(factors, f)
	}

	// Eliminate every variable that is neither the target nor evidence.
	hidden := make([]string, 0)
	for _, v := range n.Graph.Nodes() {
		if v == target {
			continue
		}
		if _, isEv := evidence[v]; isEv {
			continue
		}
		hidden = append(hidden, v)
	}
	sort.Strings(hidden) // deterministic elimination order

	for _, h := range hidden {
		var involved []*factor
		var rest []*factor
		for _, f := range factors {
			if contains(f.vars, h) {
				involved = append(involved, f)
			} else {
				rest = append(rest, f)
			}
		}
		if len(involved) == 0 {
			continue
		}
		prod := involved[0]
		for _, f := range involved[1:] {
			prod = prod.multiply(f, n.Levels)
		}
		rest = append(rest, prod.sumOut(h, n.Levels))
		factors = rest
	}

	// Multiply the survivors and normalize over the target.
	result := factors[0]
	for _, f := range factors[1:] {
		result = result.multiply(f, n.Levels)
	}
	out := make(map[string]float64, len(n.Levels[target]))
	var z float64
	for _, lv := range n.Levels[target] {
		p := result.at(map[string]string{target: lv})
		out[lv] = p
		z += p
	}
	if z <= 0 {
		return nil, fmt.Errorf("bayes: evidence %v has zero probability", evidence)
	}
	for lv := range out {
		out[lv] /= z
	}
	return out, nil
}

// nodeFactor materializes P(node | parents) as a factor over
// {node} ∪ parents.
func (n *Network) nodeFactor(node string) (*factor, error) {
	parents, err := n.Graph.Parents(node)
	if err != nil {
		return nil, err
	}
	vars := append(append([]string(nil), parents...), node)
	sort.Strings(vars)
	f := &factor{vars: vars, vals: make(map[string]float64)}
	assign := make(map[string]string, len(vars))
	var rec func(depth int) error
	rec = func(depth int) error {
		if depth == len(parents) {
			for _, lv := range n.Levels[node] {
				assign[node] = lv
				p, err := n.Prob(node, lv, assign)
				if err != nil {
					return err
				}
				f.vals[keyOf(assign, f.vars)] = p
			}
			return nil
		}
		for _, lv := range n.Levels[parents[depth]] {
			assign[parents[depth]] = lv
			if err := rec(depth + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return f, nil
}

func keyOf(assign map[string]string, vars []string) string {
	parts := make([]string, len(vars))
	for i, v := range vars {
		parts[i] = assign[v]
	}
	return strings.Join(parts, "\x1f")
}

// at evaluates the factor at a (super)assignment; the factor's variables
// must all be bound.
func (f *factor) at(assign map[string]string) float64 {
	return f.vals[keyOf(assign, f.vars)]
}

// reduce drops rows inconsistent with the evidence and removes the
// evidence variables from the factor's scope.
func (f *factor) reduce(evidence map[string]string) *factor {
	var keepVars []string
	var evIdx []int
	for i, v := range f.vars {
		if _, ok := evidence[v]; ok {
			evIdx = append(evIdx, i)
		} else {
			keepVars = append(keepVars, v)
		}
	}
	if len(evIdx) == 0 {
		return f
	}
	out := &factor{vars: keepVars, vals: make(map[string]float64)}
	for key, p := range f.vals {
		parts := strings.Split(key, "\x1f")
		match := true
		for _, i := range evIdx {
			if parts[i] != evidence[f.vars[i]] {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		var keep []string
		for i, part := range parts {
			if !intsContain(evIdx, i) {
				keep = append(keep, part)
			}
		}
		out.vals[strings.Join(keep, "\x1f")] = p
	}
	return out
}

// multiply computes the factor product over the union scope.
func (f *factor) multiply(g *factor, levels map[string][]string) *factor {
	union := mergeVars(f.vars, g.vars)
	out := &factor{vars: union, vals: make(map[string]float64)}
	assign := make(map[string]string, len(union))
	var rec func(depth int)
	rec = func(depth int) {
		if depth == len(union) {
			out.vals[keyOf(assign, union)] = f.at(assign) * g.at(assign)
			return
		}
		for _, lv := range levels[union[depth]] {
			assign[union[depth]] = lv
			rec(depth + 1)
		}
	}
	rec(0)
	return out
}

// sumOut marginalizes one variable away.
func (f *factor) sumOut(v string, levels map[string][]string) *factor {
	var keepVars []string
	vi := -1
	for i, fv := range f.vars {
		if fv == v {
			vi = i
		} else {
			keepVars = append(keepVars, fv)
		}
	}
	if vi < 0 {
		return f
	}
	out := &factor{vars: keepVars, vals: make(map[string]float64)}
	for key, p := range f.vals {
		parts := strings.Split(key, "\x1f")
		var keep []string
		for i, part := range parts {
			if i != vi {
				keep = append(keep, part)
			}
		}
		out.vals[strings.Join(keep, "\x1f")] += p
	}
	return out
}

func mergeVars(a, b []string) []string {
	set := make(map[string]bool, len(a)+len(b))
	for _, v := range a {
		set[v] = true
	}
	for _, v := range b {
		set[v] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func contains(v []string, s string) bool {
	for _, x := range v {
		if x == s {
			return true
		}
	}
	return false
}

func intsContain(v []int, x int) bool {
	for _, i := range v {
		if i == x {
			return true
		}
	}
	return false
}
