package bayes

import (
	"fmt"
	"math"

	"scoded/internal/relation"
)

// LearnOptions configures BIC hill-climbing structure learning.
type LearnOptions struct {
	// MaxParents caps the in-degree of any node; defaults to 3.
	MaxParents int
	// MaxIters caps the number of greedy moves; defaults to 100.
	MaxIters int
}

func (o LearnOptions) withDefaults() LearnOptions {
	if o.MaxParents <= 0 {
		o.MaxParents = 3
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 100
	}
	return o
}

// LearnStructure learns a DAG over the given categorical columns by greedy
// hill climbing on the BIC score, considering edge additions, deletions and
// reversals — the data-driven SC Discovery path of Figure 1(b). The search
// is deterministic: moves are scanned in column order and the first
// strictly-improving best move is applied.
func LearnStructure(d *relation.Relation, cols []string, opts LearnOptions) (*DAG, error) {
	opts = opts.withDefaults()
	for _, c := range cols {
		col, err := d.Column(c)
		if err != nil {
			return nil, err
		}
		if col.Kind != relation.Categorical {
			return nil, fmt.Errorf("bayes: structure learning needs categorical columns; %q is %s", c, col.Kind)
		}
	}
	g, err := NewDAG(cols)
	if err != nil {
		return nil, err
	}
	sc := newScorer(d, cols)

	// Cache per-node family scores; total BIC = sum of family scores.
	score := make(map[string]float64, len(cols))
	for _, c := range cols {
		parents, _ := g.Parents(c)
		score[c] = sc.family(c, parents)
	}

	for iter := 0; iter < opts.MaxIters; iter++ {
		type move struct {
			kind     string // "add", "del", "rev"
			from, to string
			gain     float64
		}
		var best *move
		consider := func(m move) {
			if best == nil || m.gain > best.gain {
				mm := m
				best = &mm
			}
		}
		for _, from := range cols {
			for _, to := range cols {
				if from == to {
					continue
				}
				switch {
				case !g.HasEdge(from, to):
					// Try add.
					if parents, _ := g.Parents(to); len(parents) >= opts.MaxParents {
						continue
					}
					if err := g.AddEdge(from, to); err != nil {
						continue // cycle
					}
					parents, _ := g.Parents(to)
					gain := sc.family(to, parents) - score[to]
					g.RemoveEdge(from, to)
					consider(move{"add", from, to, gain})
				default:
					// Try delete.
					g.RemoveEdge(from, to)
					parents, _ := g.Parents(to)
					gain := sc.family(to, parents) - score[to]
					g.AddEdge(from, to)
					consider(move{"del", from, to, gain})
					// Try reverse.
					g.RemoveEdge(from, to)
					if parents, _ := g.Parents(from); len(parents) < opts.MaxParents {
						if err := g.AddEdge(to, from); err == nil {
							pTo, _ := g.Parents(to)
							pFrom, _ := g.Parents(from)
							gain := sc.family(to, pTo) - score[to] +
								sc.family(from, pFrom) - score[from]
							g.RemoveEdge(to, from)
							consider(move{"rev", from, to, gain})
						}
					}
					g.AddEdge(from, to)
				}
			}
		}
		if best == nil || best.gain <= 1e-9 {
			break
		}
		switch best.kind {
		case "add":
			g.AddEdge(best.from, best.to)
		case "del":
			g.RemoveEdge(best.from, best.to)
		case "rev":
			g.RemoveEdge(best.from, best.to)
			g.AddEdge(best.to, best.from)
			pFrom, _ := g.Parents(best.from)
			score[best.from] = sc.family(best.from, pFrom)
		}
		pTo, _ := g.Parents(best.to)
		score[best.to] = sc.family(best.to, pTo)
	}
	return g, nil
}

// scorer computes BIC family scores with caching.
type scorer struct {
	d     *relation.Relation
	n     float64
	card  map[string]int
	cache map[string]float64
}

func newScorer(d *relation.Relation, cols []string) *scorer {
	card := make(map[string]int, len(cols))
	for _, c := range cols {
		card[c] = d.MustColumn(c).Cardinality()
	}
	return &scorer{d: d, n: float64(d.NumRows()), card: card, cache: make(map[string]float64)}
}

// family returns the BIC score of one node given its parent set:
// log-likelihood of the node's column under the MLE CPT minus the
// (ln N / 2) · #params complexity penalty.
func (s *scorer) family(node string, parents []string) float64 {
	key := node + "|"
	for _, p := range parents {
		key += p + ","
	}
	if v, ok := s.cache[key]; ok {
		return v
	}
	// Counts N(parents=pa, node=v) and N(parents=pa).
	joint := make(map[string]float64)
	marg := make(map[string]float64)
	col := s.d.MustColumn(node)
	for i := 0; i < s.d.NumRows(); i++ {
		pk := parentKey(s.d, i, parents)
		joint[pk+"\x1e"+col.StringAt(i)]++
		marg[pk]++
	}
	var ll float64
	for k, njk := range joint {
		pk := k[:indexByte(k)]
		ll += njk * math.Log(njk/marg[pk])
	}
	paConfigs := float64(len(marg))
	params := paConfigs * float64(s.card[node]-1)
	v := ll - 0.5*math.Log(s.n)*params
	s.cache[key] = v
	return v
}

func indexByte(s string) int {
	for i := 0; i < len(s); i++ {
		if s[i] == '\x1e' {
			return i
		}
	}
	return len(s)
}
