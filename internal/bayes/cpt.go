package bayes

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"scoded/internal/relation"
)

// Network is a Bayesian network: a DAG plus a conditional probability table
// (CPT) for every node over categorical levels.
type Network struct {
	Graph *DAG
	// Levels maps each node to its value dictionary.
	Levels map[string][]string
	// CPTs maps each node to its table: rows keyed by the parent
	// assignment (RowKey over sorted parent names), each row a probability
	// vector over the node's levels.
	CPTs map[string]map[string][]float64
}

// Fit estimates maximum-likelihood CPTs (with Laplace smoothing `alpha`)
// for the given DAG from categorical data. All graph nodes must exist as
// categorical columns of the relation.
func Fit(g *DAG, d *relation.Relation, alpha float64) (*Network, error) {
	if alpha < 0 {
		return nil, fmt.Errorf("bayes: negative smoothing %v", alpha)
	}
	net := &Network{
		Graph:  g.Clone(),
		Levels: make(map[string][]string),
		CPTs:   make(map[string]map[string][]float64),
	}
	for _, node := range g.Nodes() {
		col, err := d.Column(node)
		if err != nil {
			return nil, err
		}
		if col.Kind != relation.Categorical {
			return nil, fmt.Errorf("bayes: node %q must be a categorical column", node)
		}
		levels := col.Levels()
		sort.Strings(levels)
		net.Levels[node] = levels
		levelIdx := make(map[string]int, len(levels))
		for i, l := range levels {
			levelIdx[l] = i
		}
		parents, err := g.Parents(node)
		if err != nil {
			return nil, err
		}
		counts := make(map[string][]float64)
		for i := 0; i < d.NumRows(); i++ {
			pk := parentKey(d, i, parents)
			row, ok := counts[pk]
			if !ok {
				row = make([]float64, len(levels))
				counts[pk] = row
			}
			row[levelIdx[col.StringAt(i)]]++
		}
		for _, row := range counts {
			var total float64
			for i := range row {
				row[i] += alpha
				total += row[i]
			}
			for i := range row {
				row[i] /= total
			}
		}
		net.CPTs[node] = counts
	}
	return net, nil
}

func parentKey(d *relation.Relation, row int, parents []string) string {
	if len(parents) == 0 {
		return ""
	}
	return d.RowKey(row, parents)
}

// Prob returns P(node = value | parents = assignment). Unseen parent
// assignments fall back to the uniform distribution.
func (n *Network) Prob(node, value string, parentAssign map[string]string) (float64, error) {
	levels, ok := n.Levels[node]
	if !ok {
		return 0, fmt.Errorf("bayes: no node %q", node)
	}
	vi := -1
	for i, l := range levels {
		if l == value {
			vi = i
			break
		}
	}
	if vi < 0 {
		return 0, fmt.Errorf("bayes: node %q has no level %q", node, value)
	}
	parents, err := n.Graph.Parents(node)
	if err != nil {
		return 0, err
	}
	key := assignKey(parentAssign, parents)
	row, ok := n.CPTs[node][key]
	if !ok {
		return 1 / float64(len(levels)), nil
	}
	return row[vi], nil
}

func assignKey(assign map[string]string, parents []string) string {
	if len(parents) == 0 {
		return ""
	}
	parts := make([]string, len(parents))
	for i, p := range parents {
		parts[i] = assign[p]
	}
	return strings.Join(parts, "\x1f")
}

// Sample draws n records from the network by forward sampling in
// topological order, returning them as a relation whose columns follow the
// graph's node declaration order.
func (n *Network) Sample(count int, rng *rand.Rand) (*relation.Relation, error) {
	order := n.Graph.TopoOrder()
	if len(order) != n.Graph.NumNodes() {
		return nil, fmt.Errorf("bayes: graph is not acyclic")
	}
	data := make(map[string][]string, len(order))
	for _, node := range order {
		data[node] = make([]string, count)
	}
	assign := make(map[string]string, len(order))
	for i := 0; i < count; i++ {
		for k := range assign {
			delete(assign, k)
		}
		for _, node := range order {
			parents, err := n.Graph.Parents(node)
			if err != nil {
				return nil, err
			}
			levels := n.Levels[node]
			row, ok := n.CPTs[node][assignKey(assign, parents)]
			var v string
			if !ok {
				v = levels[rng.Intn(len(levels))]
			} else {
				u := rng.Float64()
				acc := 0.0
				v = levels[len(levels)-1]
				for li, p := range row {
					acc += p
					if u < acc {
						v = levels[li]
						break
					}
				}
			}
			assign[node] = v
			data[node][i] = v
		}
	}
	cols := make([]*relation.Column, 0, len(order))
	for _, node := range n.Graph.Nodes() {
		cols = append(cols, relation.NewCategoricalColumn(node, data[node]))
	}
	return relation.New(cols...)
}

// LogLikelihood returns the total log-likelihood of the data under the
// network. Unseen parent assignments score with the uniform fallback.
func (n *Network) LogLikelihood(d *relation.Relation) (float64, error) {
	var ll float64
	for _, node := range n.Graph.Nodes() {
		col, err := d.Column(node)
		if err != nil {
			return 0, err
		}
		parents, err := n.Graph.Parents(node)
		if err != nil {
			return 0, err
		}
		levels := n.Levels[node]
		levelIdx := make(map[string]int, len(levels))
		for i, l := range levels {
			levelIdx[l] = i
		}
		for i := 0; i < d.NumRows(); i++ {
			li, ok := levelIdx[col.StringAt(i)]
			var p float64
			if !ok {
				p = 1e-12 // unseen level
			} else if row, ok := n.CPTs[node][parentKey(d, i, parents)]; ok {
				p = row[li]
			} else {
				p = 1 / float64(len(levels))
			}
			if p < 1e-300 {
				p = 1e-300
			}
			ll += math.Log(p)
		}
	}
	return ll, nil
}
