// Package bayes implements the Bayesian-network substrate that SCODED's SC
// Discovery component builds on (Section 3, Figure 1(b)): directed acyclic
// graphs over variables, the d-separation criterion for reading conditional
// independencies off the graph, maximum-likelihood conditional probability
// tables, forward sampling, and BIC hill-climbing structure learning from
// data.
package bayes

import (
	"fmt"
	"sort"
)

// DAG is a directed acyclic graph over named variables.
type DAG struct {
	nodes   []string
	index   map[string]int
	parents [][]int
	childs  [][]int
}

// NewDAG creates an edgeless DAG over the given variable names.
func NewDAG(names []string) (*DAG, error) {
	g := &DAG{index: make(map[string]int, len(names))}
	for _, n := range names {
		if n == "" {
			return nil, fmt.Errorf("bayes: empty node name")
		}
		if _, dup := g.index[n]; dup {
			return nil, fmt.Errorf("bayes: duplicate node %q", n)
		}
		g.index[n] = len(g.nodes)
		g.nodes = append(g.nodes, n)
	}
	g.parents = make([][]int, len(g.nodes))
	g.childs = make([][]int, len(g.nodes))
	return g, nil
}

// MustNewDAG is NewDAG but panics on error.
func MustNewDAG(names []string) *DAG {
	g, err := NewDAG(names)
	if err != nil {
		panic(err)
	}
	return g
}

// Nodes returns the variable names in declaration order.
func (g *DAG) Nodes() []string {
	return append([]string(nil), g.nodes...)
}

// NumNodes returns the node count.
func (g *DAG) NumNodes() int { return len(g.nodes) }

func (g *DAG) id(name string) (int, error) {
	i, ok := g.index[name]
	if !ok {
		return 0, fmt.Errorf("bayes: no node %q", name)
	}
	return i, nil
}

// AddEdge inserts the directed edge from → to, refusing duplicates,
// self-loops and edges that would create a cycle.
func (g *DAG) AddEdge(from, to string) error {
	f, err := g.id(from)
	if err != nil {
		return err
	}
	t, err := g.id(to)
	if err != nil {
		return err
	}
	if f == t {
		return fmt.Errorf("bayes: self-loop on %q", from)
	}
	for _, c := range g.childs[f] {
		if c == t {
			return fmt.Errorf("bayes: duplicate edge %s -> %s", from, to)
		}
	}
	if g.reaches(t, f) {
		return fmt.Errorf("bayes: edge %s -> %s would create a cycle", from, to)
	}
	g.childs[f] = append(g.childs[f], t)
	g.parents[t] = append(g.parents[t], f)
	return nil
}

// RemoveEdge deletes the directed edge from → to.
func (g *DAG) RemoveEdge(from, to string) error {
	f, err := g.id(from)
	if err != nil {
		return err
	}
	t, err := g.id(to)
	if err != nil {
		return err
	}
	if !removeInt(&g.childs[f], t) || !removeInt(&g.parents[t], f) {
		return fmt.Errorf("bayes: no edge %s -> %s", from, to)
	}
	return nil
}

// HasEdge reports whether the edge from → to exists.
func (g *DAG) HasEdge(from, to string) bool {
	f, err1 := g.id(from)
	t, err2 := g.id(to)
	if err1 != nil || err2 != nil {
		return false
	}
	for _, c := range g.childs[f] {
		if c == t {
			return true
		}
	}
	return false
}

// Parents returns the parent names of a node, sorted.
func (g *DAG) Parents(name string) ([]string, error) {
	i, err := g.id(name)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(g.parents[i]))
	for _, p := range g.parents[i] {
		out = append(out, g.nodes[p])
	}
	sort.Strings(out)
	return out, nil
}

// Edges returns all edges as [from, to] pairs in deterministic order.
func (g *DAG) Edges() [][2]string {
	var out [][2]string
	for f, cs := range g.childs {
		for _, t := range cs {
			out = append(out, [2]string{g.nodes[f], g.nodes[t]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Clone deep-copies the DAG.
func (g *DAG) Clone() *DAG {
	out := MustNewDAG(g.nodes)
	for i := range g.childs {
		out.childs[i] = append([]int(nil), g.childs[i]...)
		out.parents[i] = append([]int(nil), g.parents[i]...)
	}
	return out
}

// reaches reports whether `to` is reachable from `from` along directed
// edges.
func (g *DAG) reaches(from, to int) bool {
	if from == to {
		return true
	}
	seen := make([]bool, len(g.nodes))
	stack := []int{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, g.childs[n]...)
	}
	return false
}

// TopoOrder returns the nodes in a topological order.
func (g *DAG) TopoOrder() []string {
	inDeg := make([]int, len(g.nodes))
	for _, ps := range g.parents {
		_ = ps
	}
	for i := range g.nodes {
		inDeg[i] = len(g.parents[i])
	}
	var queue []int
	for i, d := range inDeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	sort.Ints(queue)
	var out []string
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, g.nodes[n])
		for _, c := range g.childs[n] {
			inDeg[c]--
			if inDeg[c] == 0 {
				queue = append(queue, c)
			}
		}
		sort.Ints(queue)
	}
	return out
}

func removeInt(s *[]int, v int) bool {
	for i, x := range *s {
		if x == v {
			*s = append((*s)[:i], (*s)[i+1:]...)
			return true
		}
	}
	return false
}

// DSeparated reports whether the sets X and Y are d-separated given Z in
// the DAG — i.e. whether the graph asserts X ⊥ Y | Z. It implements the
// standard reachability ("Bayes ball") formulation: X and Y are d-separated
// iff no active trail connects them.
func (g *DAG) DSeparated(x, y, z []string) (bool, error) {
	xi, err := g.ids(x)
	if err != nil {
		return false, err
	}
	yi, err := g.ids(y)
	if err != nil {
		return false, err
	}
	zi, err := g.ids(z)
	if err != nil {
		return false, err
	}
	inZ := make([]bool, len(g.nodes))
	for _, i := range zi {
		inZ[i] = true
	}
	// Ancestors of Z (including Z).
	anZ := make([]bool, len(g.nodes))
	stack := append([]int(nil), zi...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if anZ[n] {
			continue
		}
		anZ[n] = true
		stack = append(stack, g.parents[n]...)
	}

	// Reachability over (node, direction) states. Direction "up" means the
	// trail arrives at the node from one of its children (moving against
	// edge direction); "down" means it arrives from a parent.
	const up, down = 0, 1
	visited := make([][2]bool, len(g.nodes))
	reachable := make([]bool, len(g.nodes))
	type state struct{ n, d int }
	var queue []state
	for _, i := range xi {
		queue = append(queue, state{i, up})
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if visited[s.n][s.d] {
			continue
		}
		visited[s.n][s.d] = true
		if !inZ[s.n] {
			reachable[s.n] = true
		}
		if s.d == up {
			if !inZ[s.n] {
				for _, p := range g.parents[s.n] {
					queue = append(queue, state{p, up})
				}
				for _, c := range g.childs[s.n] {
					queue = append(queue, state{c, down})
				}
			}
		} else { // down
			if !inZ[s.n] {
				for _, c := range g.childs[s.n] {
					queue = append(queue, state{c, down})
				}
			}
			if anZ[s.n] {
				// v-structure (collider) activated by Z or its descendants'
				// conditioning.
				for _, p := range g.parents[s.n] {
					queue = append(queue, state{p, up})
				}
			}
		}
	}
	for _, i := range yi {
		if reachable[i] {
			return false, nil
		}
	}
	return true, nil
}

func (g *DAG) ids(names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		id, err := g.id(n)
		if err != nil {
			return nil, err
		}
		out[i] = id
	}
	return out, nil
}
