package kernel

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"scoded/internal/relation"
	"scoded/internal/stats"
)

func testRelation(tb testing.TB) *relation.Relation {
	tb.Helper()
	rng := rand.New(rand.NewSource(1))
	n := 200
	av := make([]string, n)
	zv := make([]string, n)
	uv := make([]float64, n)
	vv := make([]float64, n)
	for i := 0; i < n; i++ {
		av[i] = fmt.Sprintf("a%d", rng.Intn(4))
		zv[i] = fmt.Sprintf("z%d", rng.Intn(3))
		uv[i] = float64(rng.Intn(10))
		vv[i] = rng.NormFloat64()
	}
	d, err := relation.New(
		relation.NewCategoricalColumn("A", av),
		relation.NewCategoricalColumn("Z", zv),
		relation.NewNumericColumn("U", uv),
		relation.NewNumericColumn("V", vv),
	)
	if err != nil {
		tb.Fatal(err)
	}
	return d
}

// TestSingleFlight pins the concurrency contract: many goroutines asking
// for one key run the compute exactly once and all observe its value.
func TestSingleFlight(t *testing.T) {
	d := testRelation(t)
	c := New(d)
	var computes atomic.Int64
	const goroutines = 32
	vals := make([]any, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vals[g], _ = c.do(context.Background(), "k", func() any {
				computes.Add(1)
				return []int{1, 2, 3}
			})
		}(g)
	}
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	for g := 1; g < goroutines; g++ {
		if !reflect.DeepEqual(vals[g], vals[0]) {
			t.Fatalf("goroutine %d saw %v, others saw %v", g, vals[g], vals[0])
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != goroutines-1 || s.Entries != 1 {
		t.Fatalf("stats %+v, want 1 miss / %d hits / 1 entry", s, goroutines-1)
	}
}

// TestNilCache asserts a nil *Cache computes directly everywhere.
func TestNilCache(t *testing.T) {
	d := testRelation(t)
	var c *Cache
	if c.Relation() != nil {
		t.Error("nil cache should have a nil relation")
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Errorf("nil cache stats %+v, want zeros", s)
	}
	codes, k := c.Codes(d, "A", 4, "", nil)
	wantCodes, wantK := CodesFor(d, "A", 4, nil)
	if k != wantK || !reflect.DeepEqual(codes, wantCodes) {
		t.Errorf("nil-cache Codes diverged from CodesFor")
	}
	if got, _ := c.do(context.Background(), "x", func() any { return 7 }); got != 7 {
		t.Errorf("nil-cache do returned %v", got)
	}
	// Each call recomputes: no memoization without a cache.
	n := 0
	c.do(context.Background(), "x", func() any { n++; return nil })
	c.do(context.Background(), "x", func() any { n++; return nil })
	if n != 2 {
		t.Errorf("nil cache memoized (%d computes, want 2)", n)
	}
}

// TestCachedArtifactsMatchDirect asserts every cached artifact equals its
// direct computation, for all rows and for a stratum subset.
func TestCachedArtifactsMatchDirect(t *testing.T) {
	d := testRelation(t)
	c := New(d)

	part := c.Partition(d, []string{"Z"})
	direct := PartitionOf(d, []string{"Z"})
	// The cached partition additionally carries version stamps; the
	// structural content must match the direct computation exactly.
	if !reflect.DeepEqual(part.Cols, direct.Cols) || part.CacheKey != direct.CacheKey ||
		!reflect.DeepEqual(part.Groups, direct.Groups) || !reflect.DeepEqual(part.Keys, direct.Keys) {
		t.Fatalf("cached partition diverged")
	}
	if len(part.Keys) == 0 {
		t.Fatal("empty partition")
	}
	groupKey := part.Keys[0]
	rows := part.Groups[groupKey]
	rowsKey := part.StratumRowsKey(groupKey)

	for _, tc := range []struct {
		col     string
		rowsKey string
		rows    []int
	}{
		{"A", "", nil}, {"U", "", nil}, {"A", rowsKey, rows}, {"U", rowsKey, rows},
	} {
		codes, k := c.Codes(d, tc.col, 4, tc.rowsKey, tc.rows)
		wantCodes, wantK := CodesFor(d, tc.col, 4, tc.rows)
		// Categorical codings must normalize bins away; ask again with a
		// different bin count and expect the same shared entry.
		if k != wantK || !reflect.DeepEqual(codes, wantCodes) {
			t.Errorf("Codes(%s, %q) diverged", tc.col, tc.rowsKey)
		}
	}
	table, kx, ky := c.Table(d, "A", "Z", 4, "", nil)
	ac, akx := CodesFor(d, "A", 4, nil)
	zc, zky := CodesFor(d, "Z", 4, nil)
	wantTable := stats.TableFromCodes(ac, zc, akx, zky)
	if kx != akx || ky != zky || !reflect.DeepEqual(table, wantTable) {
		t.Errorf("Table diverged from TableFromCodes")
	}

	floats := c.Floats(d, "V", rowsKey, rows)
	want := FloatsFor(d, "V", rows)
	if !reflect.DeepEqual(floats, want) {
		t.Errorf("Floats diverged")
	}

	prep, err := c.KendallPrep(d, "U", "V", "", nil)
	if err != nil || prep == nil {
		t.Fatalf("KendallPrep: %v", err)
	}
	wantPrep, err := stats.PrepKendall(FloatsFor(d, "U", nil), FloatsFor(d, "V", nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(prep, wantPrep) {
		t.Errorf("KendallPrep diverged")
	}
}

// TestCategoricalBinsShareEntry asserts the bins key normalization: a
// categorical coding is bin-independent and must be memoized once.
func TestCategoricalBinsShareEntry(t *testing.T) {
	d := testRelation(t)
	c := New(d)
	c.Codes(d, "A", 4, "", nil)
	before := c.Stats()
	c.Codes(d, "A", 9, "", nil)
	after := c.Stats()
	if after.Entries != before.Entries || after.Hits != before.Hits+1 {
		t.Errorf("bin counts split the categorical entry: %+v then %+v", before, after)
	}
	// A numeric column genuinely depends on bins and must not share.
	c.Codes(d, "U", 4, "", nil)
	mid := c.Stats()
	c.Codes(d, "U", 9, "", nil)
	final := c.Stats()
	if final.Entries == mid.Entries {
		t.Errorf("numeric codings with different bins shared an entry")
	}
}

// TestKendallPrepCachesErrors asserts deterministic validation errors are
// memoized with the entry rather than recomputed or lost.
func TestKendallPrepCachesErrors(t *testing.T) {
	d := testRelation(t)
	c := New(d)
	rows := []int{0} // one observation: too small for tau
	_, err1 := c.KendallPrep(d, "U", "V", "part\x00#tiny", rows)
	if err1 == nil {
		t.Fatal("expected an error for a single observation")
	}
	_, err2 := c.KendallPrep(d, "U", "V", "part\x00#tiny", rows)
	if err2 == nil || err2.Error() != err1.Error() {
		t.Fatalf("cached error diverged: %v vs %v", err2, err1)
	}
	s := c.Stats()
	if s.Hits == 0 {
		t.Errorf("second lookup should hit, stats %+v", s)
	}
}
