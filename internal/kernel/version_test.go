package kernel

import (
	"strings"
	"testing"

	"scoded/internal/relation"
)

func versionedRel(t *testing.T) *relation.Relation {
	t.Helper()
	return relation.MustNew(
		relation.NewCategoricalColumn("Z", []string{"a", "a", "b", "b", "b", "c"}),
		relation.NewCategoricalColumn("X", []string{"p", "q", "p", "q", "p", "q"}),
		relation.NewNumericColumn("V", []float64{1, 2, 3, 4, 5, 6}),
	)
}

// appendTo grows the relation by rows that fall only into the given Z
// group, mirroring what a dataset append does.
func appendTo(t *testing.T, rel *relation.Relation, group string, n int) *relation.Relation {
	t.Helper()
	zs := make([]string, n)
	xs := make([]string, n)
	vs := make([]float64, n)
	for i := range zs {
		zs[i] = group
		xs[i] = "p"
		vs[i] = float64(100 + i)
	}
	batch := relation.MustNew(
		relation.NewCategoricalColumn("Z", zs),
		relation.NewCategoricalColumn("X", xs),
		relation.NewNumericColumn("V", vs),
	)
	grown, err := rel.AppendRows(batch)
	if err != nil {
		t.Fatal(err)
	}
	return grown
}

func TestAllRowsKeyTracksVersion(t *testing.T) {
	rel := versionedRel(t)
	var nilCache *Cache
	if got := nilCache.AllRowsKey(); got != "" {
		t.Fatalf("nil cache AllRowsKey = %q, want empty", got)
	}
	c := NewAt(rel, 5)
	if c.Version() != 5 {
		t.Fatalf("Version = %d, want 5", c.Version())
	}
	k5 := c.AllRowsKey()
	c2 := c.Advance(appendTo(t, rel, "c", 1), 6)
	k6 := c2.AllRowsKey()
	if k5 == k6 {
		t.Fatalf("AllRowsKey did not change across Advance: %q", k5)
	}
	// The old view keeps answering with its own key: in-flight checks stay
	// internally consistent.
	if c.AllRowsKey() != k5 {
		t.Fatal("Advance mutated the receiver's key")
	}
}

// TestStratumVersionInheritance is the heart of incremental invalidation:
// after an append that only grows one stratum, the untouched strata keep
// their old row keys (cache entries stay warm) while the grown stratum and
// the all-rows key roll forward.
func TestStratumVersionInheritance(t *testing.T) {
	rel := versionedRel(t)
	c1 := NewAt(rel, 1)
	p1 := c1.Partition(rel, []string{"Z"})
	for g, v := range p1.GroupVersions {
		if v != 1 {
			t.Fatalf("initial group %q stamped version %d, want 1", g, v)
		}
	}

	grown := appendTo(t, rel, "b", 2)
	c2 := c1.Advance(grown, 2)
	p2 := c2.Partition(grown, []string{"Z"})
	for _, g := range []string{"a", "c"} {
		if p2.GroupVersions[g] != 1 {
			t.Errorf("untouched group %q re-stamped to %d; its cache entries went cold", g, p2.GroupVersions[g])
		}
		if p1.StratumRowsKey(g) != p2.StratumRowsKey(g) {
			t.Errorf("untouched group %q changed row key %q -> %q", g, p1.StratumRowsKey(g), p2.StratumRowsKey(g))
		}
	}
	if p2.GroupVersions["b"] != 2 {
		t.Errorf("grown group stamped %d, want 2", p2.GroupVersions["b"])
	}
	if p1.StratumRowsKey("b") == p2.StratumRowsKey("b") {
		t.Error("grown group kept its row key; stale statistics would be served")
	}

	// A third append to another group: "a" inherits its version-1 stamp
	// transitively through the version-2 partition.
	grown3 := appendTo(t, grown, "c", 1)
	c3 := c2.Advance(grown3, 3)
	p3 := c3.Partition(grown3, []string{"Z"})
	if p3.GroupVersions["a"] != 1 {
		t.Errorf("group a after two unrelated appends = version %d, want 1", p3.GroupVersions["a"])
	}
	if p3.GroupVersions["b"] != 2 {
		t.Errorf("group b after one unrelated append = version %d, want 2", p3.GroupVersions["b"])
	}
	if p3.GroupVersions["c"] != 3 {
		t.Errorf("group c grown at version 3 = version %d", p3.GroupVersions["c"])
	}
}

// TestWarmEntriesSurviveAppend drives the full path a server append takes:
// per-stratum table entries computed before the append must be cache hits
// afterwards for untouched strata.
func TestWarmEntriesSurviveAppend(t *testing.T) {
	rel := versionedRel(t)
	c1 := NewAt(rel, 1)
	p1 := c1.Partition(rel, []string{"Z"})
	for i, g := range p1.Keys {
		c1.Table(rel, "X", "V", 4, p1.StratumRowsKey(g), p1.Groups[g])
		_ = i
	}
	base := c1.Stats()

	grown := appendTo(t, rel, "b", 2)
	c2 := c1.Advance(grown, 2)
	p2 := c2.Partition(grown, []string{"Z"})
	for _, g := range []string{"a", "c"} {
		c2.Table(grown, "X", "V", 4, p2.StratumRowsKey(g), p2.Groups[g])
	}
	after := c2.Stats()
	if hits := after.Hits - base.Hits; hits < 2 {
		t.Errorf("untouched strata recomputed after append: %d hits, want >= 2", hits)
	}
	// The grown stratum must NOT hit the old entry.
	pre := c2.Stats()
	c2.Table(grown, "X", "V", 4, p2.StratumRowsKey("b"), p2.Groups["b"])
	post := c2.Stats()
	if post.Misses-pre.Misses < 1 {
		t.Error("grown stratum was served from the stale pre-append entry")
	}
}

// TestAdvancePrunesIdleEntries bounds memory: an entry no view has touched
// for a full generation disappears on the next Advance.
func TestAdvancePrunesIdleEntries(t *testing.T) {
	rel := versionedRel(t)
	c1 := NewAt(rel, 1)
	c1.Floats(rel, "V", c1.AllRowsKey(), nil)
	if n := c1.Stats().Entries; n == 0 {
		t.Fatal("no entry created")
	}
	grown := appendTo(t, rel, "b", 1)
	c2 := c1.Advance(grown, 2)
	// One generation idle: still resident (a check against v1 may be in
	// flight).
	if n := c2.Stats().Entries; n == 0 {
		t.Fatal("entry pruned after a single Advance; grace generation lost")
	}
	grown3 := appendTo(t, grown, "b", 1)
	c3 := c2.Advance(grown3, 3)
	if n := c3.Stats().Entries; n != 0 {
		t.Fatalf("%d entries survived two idle generations", n)
	}
}

// TestStratumRowsKeyShape documents that the stratum key embeds both the
// group identity and its inherited version, so two strata (or two versions
// of one stratum) can never collide.
func TestStratumRowsKeyShape(t *testing.T) {
	rel := versionedRel(t)
	c := NewAt(rel, 7)
	p := c.Partition(rel, []string{"Z"})
	seen := map[string]bool{}
	for _, g := range p.Keys {
		key := p.StratumRowsKey(g)
		if seen[key] {
			t.Fatalf("duplicate stratum key %q", key)
		}
		seen[key] = true
		if !strings.Contains(key, "@7") {
			t.Errorf("stratum key %q does not embed version 7", key)
		}
	}
}
