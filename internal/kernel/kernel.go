// Package kernel implements the shared-statistic computation cache behind
// SCODED's detection hot path (DESIGN.md §9). Checking a family of
// statistical constraints against one dataset keeps recomputing the same
// intermediate artifacts — dense column codings, group-by partitions on
// conditioning sets Z, contingency tables, and the sort/tie precomputation
// of Kendall's tau — once per constraint, even when many constraints share
// attributes or conditioning sets (the paper's §4.2–4.3 cost structure). A
// Cache memoizes those artifacts per dataset so they are computed once and
// shared.
//
// Correctness contract: every cached artifact is produced by exactly the
// same function the uncached path runs, so detection results are
// bit-identical with and without a cache (enforced by the identity property
// tests in internal/detect). Cached values are shared across goroutines and
// must be treated as read-only by consumers; every consumer in this module
// either only reads them or copies before mutating.
//
// Concurrency: lookups are single-flight. When several CheckAll workers ask
// for the same key at once, one computes while the rest wait on the entry's
// done channel, so parallel workers share one computation instead of racing
// to duplicate it. Lookups are context-aware: a waiter whose context ends
// returns its context's error instead of blocking on the leader, and a
// leader that is cancelled (or panics) before producing a value hands the
// key off — the entry is withdrawn and the next waiter retries as the new
// leader — so one doomed request can never wedge a cache slot for everyone
// else.
//
// A nil *Cache is valid everywhere and simply computes without memoizing:
// the uncached path and the cached path run literally the same code.
//
//scoded:hotpath
package kernel

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"scoded/internal/relation"
	"scoded/internal/stats"
)

// Cache memoizes per-dataset detection artifacts. Create one with New (or
// NewAt to bind a store version); the zero value is not usable, but a nil
// *Cache is (it computes everything directly). A Cache is safe for
// concurrent use and is an immutable view: it is bound to one relation
// snapshot at one version. Appending rows derives the next view with
// Advance — the memoized entries are shared, and because every key embeds
// the version of the row subset it describes, entries for subsets an
// append did not touch stay warm while stale ones simply stop being
// addressed. Replacing a dataset wholesale still creates a fresh Cache.
type Cache struct {
	rel     *relation.Relation
	version uint64
	state   *cacheState
}

// cacheState is the storage shared by every Advance-derived view of one
// dataset's cache lineage.
type cacheState struct {
	hits   atomic.Int64
	misses atomic.Int64

	mu      sync.Mutex
	entries map[string]*flight
	// gen records, per key, the cache version that most recently created or
	// hit the entry; Advance prunes entries idle for a full generation.
	gen map[string]uint64

	// pmu guards latest: the most recent stamped partition per conditioning
	// set, which is what lets the next version's partition inherit stratum
	// versions for groups an append did not touch.
	pmu    sync.Mutex
	latest map[string]*Partition
}

// flight is one single-flight cache entry: the first goroutine to claim the
// key computes val and closes done; later goroutines wait on done. When the
// leader abandons the key (cancelled before computing, or its compute
// panicked), handoff is set before done closes and the entry is withdrawn
// from the map: waiters loop back to the lookup and one of them becomes the
// new leader.
type flight struct {
	done    chan struct{}
	val     any
	handoff bool
}

// New creates a cache bound to the given relation at version 0. The
// relation must not be mutated afterwards (registered relations in
// scoded-serve are immutable by construction; growth goes through
// Advance with a freshly built relation).
func New(rel *relation.Relation) *Cache {
	return NewAt(rel, 0)
}

// NewAt creates a cache bound to the given relation at a specific version
// — the store's manifest version when the relation was materialized — so
// that a server restart resumes the same key space the durable store
// advanced to.
func NewAt(rel *relation.Relation, version uint64) *Cache {
	return &Cache{
		rel:     rel,
		version: version,
		state: &cacheState{
			entries: make(map[string]*flight),    //scoded:lint-ignore allochot cache interning tables: one entry per memoized artifact, not per row
			gen:     make(map[string]uint64),     //scoded:lint-ignore allochot cache interning tables: one entry per memoized artifact, not per row
			latest:  make(map[string]*Partition), //scoded:lint-ignore allochot cache interning tables: one entry per memoized artifact, not per row
		},
	}
}

// Advance derives the cache view for an appended-to relation at a newer
// version. The receiver stays valid — in-flight checks holding the old
// (relation, cache) pair keep reading internally consistent keys — while
// new requests use the returned view. Entries are shared: keys for row
// subsets the append did not change (per-stratum keys inherit their
// version through partition diffing) are the same strings in both views,
// so they stay warm. Entries that no view has touched for a full
// generation are pruned here, bounding memory across many appends.
func (c *Cache) Advance(rel *relation.Relation, version uint64) *Cache {
	st := c.state
	st.mu.Lock()
	for key, g := range st.gen {
		if g+1 >= version {
			continue
		}
		f, ok := st.entries[key]
		if !ok {
			delete(st.gen, key)
			continue
		}
		select {
		case <-f.done:
			delete(st.entries, key)
			delete(st.gen, key)
		default:
			// In flight: the leader's cleanup owns this entry.
		}
	}
	st.mu.Unlock()
	return &Cache{rel: rel, version: version, state: st}
}

// Version returns the store version this cache view is bound to (0 for a
// nil cache).
func (c *Cache) Version() uint64 {
	if c == nil {
		return 0
	}
	return c.version
}

// AllRowsKey returns the canonical rowsKey for the whole relation at this
// view's version. Passing it (with nil rows) to Codes / Floats / Table /
// KendallPrep scopes the entry to this version, so an append — which does
// change the all-rows subset — naturally misses onto fresh entries. A nil
// cache returns "" (the key is never used on the uncached path).
func (c *Cache) AllRowsKey() string {
	if c == nil {
		return ""
	}
	return "@" + strconv.FormatUint(c.version, 16) //scoded:lint-ignore allochot built once per CheckAll, not per row
}

// Relation returns the relation the cache is bound to (nil for a nil cache).
func (c *Cache) Relation() *relation.Relation {
	if c == nil {
		return nil
	}
	return c.rel
}

// Stats is a snapshot of the cache's counters.
type Stats struct {
	// Hits counts lookups that found (or waited on) an existing entry.
	Hits int64
	// Misses counts lookups that had to compute the entry.
	Misses int64
	// Entries is the number of memoized artifacts.
	Entries int64
}

// Stats returns the current counters; a nil cache reports zeros. Counters
// are shared across Advance-derived views — they describe the dataset's
// cache lineage, not one version window.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := c.state
	st.mu.Lock()
	n := int64(len(st.entries))
	st.mu.Unlock()
	return Stats{Hits: st.hits.Load(), Misses: st.misses.Load(), Entries: n}
}

// do returns the memoized value for key, computing it at most once across
// uncancelled goroutines. A nil cache computes directly without memoizing
// (after the same context check, so cancellation semantics are identical
// cached and uncached). Waiters whose context ends return ctx.Err() instead
// of blocking on the leader; a leader cancelled before computing — or whose
// compute panics — hands the key off so another caller can claim it.
func (c *Cache) do(ctx context.Context, key string, compute func() any) (any, error) {
	if c == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return compute(), nil
	}
	st := c.state
	for {
		st.mu.Lock()
		if f, ok := st.entries[key]; ok {
			if st.gen[key] < c.version {
				st.gen[key] = c.version
			}
			st.mu.Unlock()
			st.hits.Add(1)
			select {
			case <-f.done:
				if f.handoff {
					continue // leader abandoned the key; retry the lookup
				}
				return f.val, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		// Claim leadership — unless this caller is already doomed, in which
		// case registering an entry would strand any waiter that piles on.
		if err := ctx.Err(); err != nil {
			st.mu.Unlock()
			return nil, err
		}
		f := &flight{done: make(chan struct{})}
		st.entries[key] = f
		st.gen[key] = c.version
		st.mu.Unlock()
		st.misses.Add(1)
		c.lead(f, key, compute)
		return f.val, nil
	}
}

// lead runs one leadership term: compute the value, or — if compute panics
// — withdraw the entry, mark it handed off, release the waiters, and let
// the panic continue to unwind (the engine's per-item recovery turns it
// into that item's error; waiters meanwhile retry cleanly instead of
// consuming a poisoned nil value).
func (c *Cache) lead(f *flight, key string, compute func() any) {
	completed := false
	defer func() {
		if !completed {
			st := c.state
			st.mu.Lock()
			delete(st.entries, key)
			delete(st.gen, key)
			st.mu.Unlock()
			f.handoff = true
		}
		close(f.done)
	}()
	f.val = compute()
	completed = true
}

// Cache keys are kind-prefixed strings with NUL field separators. Column
// names come from CSV headers or Go string literals and cannot contain NUL;
// group keys use the relation package's 0x1f unit separator, which NUL also
// cannot collide with.
const keySep = "\x00"

func codesKey(col string, bins int, rowsKey string) string {
	return "codes" + keySep + col + keySep + strconv.Itoa(bins) + keySep + rowsKey //scoded:lint-ignore allochot cache keys are built once per memoized artifact, not per row
}

func floatsKey(col, rowsKey string) string {
	return "floats" + keySep + col + keySep + rowsKey //scoded:lint-ignore allochot cache keys are built once per memoized artifact, not per row
}

func tableKey(x, y string, bins int, rowsKey string) string {
	return "table" + keySep + x + keySep + y + keySep + strconv.Itoa(bins) + keySep + rowsKey //scoded:lint-ignore allochot cache keys are built once per memoized artifact, not per row
}

func tauKey(x, y, rowsKey string) string {
	return "tau" + keySep + x + keySep + y + keySep + rowsKey //scoded:lint-ignore allochot cache keys are built once per memoized artifact, not per row
}

func partitionCacheKey(z []string) string {
	return "part" + keySep + strings.Join(z, keySep) //scoded:lint-ignore allochot cache keys are built once per memoized artifact, not per row
}

type codesVal struct {
	codes []int32
	k     int
}

type tableVal struct {
	t      stats.Table
	kx, ky int
}

type prepVal struct {
	p   *stats.KendallPrep
	err error
}

// CodesContext returns the dense category codes of column col over the
// given row subset, quantile-discretizing numeric columns into bins (see
// CodesFor). rowsKey must canonically identify the row subset: "" means all
// rows (rows may then be nil), and conditioning strata use
// Partition.StratumRowsKey. The returned slice is shared — callers must not
// mutate it. The only error is the context's, when ctx ends before the
// value is available.
func (c *Cache) CodesContext(ctx context.Context, d *relation.Relation, col string, bins int, rowsKey string, rows []int) ([]int32, int, error) {
	// Categorical codings do not depend on the bin count; normalize the key
	// so every bin setting shares one entry.
	if d.MustColumn(col).Kind == relation.Categorical {
		bins = 0
	}
	v, err := c.do(ctx, codesKey(col, bins, rowsKey), func() any {
		codes, k := CodesFor(d, col, bins, rows)
		return codesVal{codes: codes, k: k}
	})
	if err != nil {
		return nil, 0, err
	}
	cv := v.(codesVal)
	return cv.codes, cv.k, nil
}

// Codes is CodesContext without cancellation (context.Background() never
// ends, so the context error is impossible). Kept as the historical API for
// call sites with no deadline to honor.
func (c *Cache) Codes(d *relation.Relation, col string, bins int, rowsKey string, rows []int) ([]int32, int) {
	codes, k, _ := c.CodesContext(context.Background(), d, col, bins, rowsKey, rows)
	return codes, k
}

// FloatsContext returns the float values of a numeric column over the given
// row subset. The returned slice is shared — callers must not mutate it
// (every stats consumer copies before sorting or shuffling).
func (c *Cache) FloatsContext(ctx context.Context, d *relation.Relation, col, rowsKey string, rows []int) ([]float64, error) {
	v, err := c.do(ctx, floatsKey(col, rowsKey), func() any {
		return FloatsFor(d, col, rows)
	})
	if err != nil {
		return nil, err
	}
	return v.([]float64), nil
}

// Floats is FloatsContext without cancellation.
func (c *Cache) Floats(d *relation.Relation, col, rowsKey string, rows []int) []float64 {
	vals, _ := c.FloatsContext(context.Background(), d, col, rowsKey, rows)
	return vals
}

// PartitionContext returns the group-by partition of the relation on the
// conditioning columns z, with group keys pre-sorted for deterministic
// iteration. The partition is shared — callers must not mutate its groups.
//
// The partition entry is keyed by the cache version (an append grows at
// least one group, so the partition itself must be recomputed), but each
// group inherits the version of the last partition that saw it change:
// under append-only growth, a group whose row-list length is unchanged has
// the identical row list, so its strata keys — and every codes / table /
// Kendall entry hanging off them — remain valid and warm.
func (c *Cache) PartitionContext(ctx context.Context, d *relation.Relation, z []string) (*Partition, error) {
	v, err := c.do(ctx, partitionCacheKey(z)+keySep+"@"+strconv.FormatUint(c.Version(), 16), func() any { //scoded:lint-ignore allochot one key per partition lookup, not per row
		p := PartitionOf(d, z)
		c.stampPartition(p)
		return p
	})
	if err != nil {
		return nil, err
	}
	return v.(*Partition), nil
}

// stampPartition assigns per-group versions to a freshly computed
// partition by diffing it against the previous partition on the same
// conditioning set: unchanged groups (same row count ⇒ same rows, by the
// append-only invariant) inherit their old version, changed or new groups
// are stamped with the current one. A nil cache leaves the zero stamps
// PartitionOf produced.
func (c *Cache) stampPartition(p *Partition) {
	if c == nil {
		return
	}
	p.Version = c.version
	p.GroupVersions = make(map[string]uint64, len(p.Groups)) //scoded:lint-ignore allochot one map per partition stamp, sized to the group count
	st := c.state
	st.pmu.Lock()
	defer st.pmu.Unlock()
	prev := st.latest[p.CacheKey]
	for key, rows := range p.Groups {
		if prev != nil {
			if old, ok := prev.Groups[key]; ok && len(old) == len(rows) {
				p.GroupVersions[key] = prev.GroupVersions[key]
				continue
			}
		}
		p.GroupVersions[key] = c.version
	}
	if prev == nil || prev.Version <= p.Version {
		st.latest[p.CacheKey] = p
	}
}

// Partition is PartitionContext without cancellation.
func (c *Cache) Partition(d *relation.Relation, z []string) *Partition {
	p, _ := c.PartitionContext(context.Background(), d, z)
	return p
}

// TableContext returns the contingency table of the (x, y) column pair over
// the given row subset, together with the two cardinalities. The table is
// shared — callers must not mutate it (copy first to run a drill-down).
// The key is order-sensitive: a transposed table is a different float
// summation order, and the cache never substitutes one for the other.
func (c *Cache) TableContext(ctx context.Context, d *relation.Relation, x, y string, bins int, rowsKey string, rows []int) (stats.Table, int, int, error) {
	v, err := c.do(ctx, tableKey(x, y, bins, rowsKey), func() any {
		xc, kx := c.Codes(d, x, bins, rowsKey, rows)
		yc, ky := c.Codes(d, y, bins, rowsKey, rows)
		return tableVal{t: stats.TableFromCodes(xc, yc, kx, ky), kx: kx, ky: ky}
	})
	if err != nil {
		return stats.Table{}, 0, 0, err
	}
	tv := v.(tableVal)
	return tv.t, tv.kx, tv.ky, nil
}

// Table is TableContext without cancellation.
func (c *Cache) Table(d *relation.Relation, x, y string, bins int, rowsKey string, rows []int) (stats.Table, int, int) {
	t, kx, ky, _ := c.TableContext(context.Background(), d, x, y, bins, rowsKey, rows)
	return t, kx, ky
}

// KendallPrepContext returns the reusable sort/tie precomputation of
// Kendall's tau for the (x, y) column pair over the given row subset.
// Validation errors (NaN values, too-small samples) are deterministic and
// cached alongside; a context error is returned as-is and caches nothing.
func (c *Cache) KendallPrepContext(ctx context.Context, d *relation.Relation, x, y, rowsKey string, rows []int) (*stats.KendallPrep, error) {
	v, err := c.do(ctx, tauKey(x, y, rowsKey), func() any {
		xv := c.Floats(d, x, rowsKey, rows)
		yv := c.Floats(d, y, rowsKey, rows)
		p, err := stats.PrepKendall(xv, yv)
		return prepVal{p: p, err: err}
	})
	if err != nil {
		return nil, err
	}
	pv := v.(prepVal)
	return pv.p, pv.err
}

// KendallPrep is KendallPrepContext without cancellation.
func (c *Cache) KendallPrep(d *relation.Relation, x, y, rowsKey string, rows []int) (*stats.KendallPrep, error) {
	return c.KendallPrepContext(context.Background(), d, x, y, rowsKey, rows)
}
