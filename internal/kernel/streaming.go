package kernel

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"scoded/internal/relation"
	"scoded/internal/stats"
	"scoded/internal/store"
)

// The streaming build path (DESIGN.md section 16): instead of requiring a
// materialized relation.Relation, a Streamer consumes a dataset as a
// sequence of store segments (or sub-segment windows) and accumulates
// per-stratum sufficient statistics — contingency-table partials for
// G-tests, Kendall concordance partials for tau — merging them across
// chunks. Coding mirrors CodesFor exactly: categorical values get dense
// codes in first-occurrence order over the stratum's rows (chunks arrive
// in row order, so the order is the same), and numeric columns destined
// for a contingency table are buffered per stratum so quantile bin edges
// are computed over the full stratum, just like the resident path. Group
// keys concatenate column values with the relation.RowKey separator, so
// stratum keys are byte-identical to PartitionOf's.

// StreamColumn describes one column of a streamed dataset.
type StreamColumn struct {
	Name string
	Kind relation.Kind
}

// StreamSource describes a dataset that can be scanned as segment chunks.
// Scan must deliver every row exactly once, in row order, as
// self-contained segments (store.Scan or store.ScanChunks semantics).
type StreamSource struct {
	Columns []StreamColumn
	Rows    int
	Scan    func(ctx context.Context, fn func(*store.Segment) error) error
}

// Streamer runs per-constraint statistic passes over a StreamSource. It
// is stateless between runs and safe for sequential reuse.
type Streamer struct {
	src  StreamSource
	kind map[string]relation.Kind
}

// NewStreamer validates the source and returns a Streamer.
func NewStreamer(src StreamSource) (*Streamer, error) {
	if src.Scan == nil {
		return nil, fmt.Errorf("kernel: stream source has no scan function")
	}
	kind := make(map[string]relation.Kind, len(src.Columns))
	for _, c := range src.Columns {
		if _, dup := kind[c.Name]; dup {
			return nil, fmt.Errorf("kernel: stream source repeats column %q", c.Name)
		}
		kind[c.Name] = c.Kind
	}
	return &Streamer{src: src, kind: kind}, nil
}

// Rows is the dataset's total row count.
func (s *Streamer) Rows() int { return s.src.Rows }

// ColumnKind reports a column's kind and whether the column exists.
func (s *Streamer) ColumnKind(name string) (relation.Kind, bool) {
	k, ok := s.kind[name]
	return k, ok
}

// StreamStratum holds one stratum's finalized statistics: its row count
// and either a contingency table (table runs) or a Kendall partial
// (kendall runs).
type StreamStratum struct {
	Size    int
	Table   stats.Table
	Kendall *stats.KendallPartial
}

// StreamResult maps sorted stratum keys (relation.RowKey form, same bytes
// as Partition keys) to their statistics. A marginal run (no conditioning
// columns) has the single key "".
type StreamResult struct {
	Keys   []string
	Strata map[string]*StreamStratum
}

// streamPair is the per-run accumulator state shared by chunk processing.
type streamPair struct {
	z       []string
	x, y    string
	bins    int
	kendall bool

	strata map[string]*streamStratum
	order  []string // insertion order, sorted at finalize
	seen   int      // rows consumed, checked against src.Rows
}

// streamStratum accumulates one stratum. Exactly one representation is
// active per column, chosen by the run kind and column kinds.
type streamStratum struct {
	size int

	// G-test path: categorical columns code through a first-occurrence
	// coder; when both are categorical the table partial updates online,
	// otherwise dense codes / raw floats are buffered so numeric columns
	// can be quantile-binned over the whole stratum at finalize.
	coderX, coderY *streamCoder
	table          *stats.TablePartial
	codesX, codesY []int32
	bufX, bufY     []float64

	// Kendall path: the mergeable concordance partial, fed one chunk at a
	// time through the scratch slices below.
	kendall            *stats.KendallPartial
	scratchX, scratchY []float64
}

// streamCoder assigns dense int32 codes to categorical values in
// first-occurrence order — the same codes CodesFor computes over the
// stratum's row subset of a materialized relation.
type streamCoder struct {
	codes map[string]int32
	next  int32
}

func newStreamCoder() *streamCoder { return &streamCoder{codes: make(map[string]int32)} }

func (c *streamCoder) code(v string) int32 {
	if code, ok := c.codes[v]; ok {
		return code
	}
	code := c.next
	c.next++
	c.codes[v] = code
	return code
}

// RunTable streams one pass and accumulates per-stratum contingency
// tables of x versus y (numeric columns quantile-binned with `bins`),
// conditioned on z (empty z = one marginal stratum). The tables are
// bit-identical to TableFromCodes over CodesFor of a resident relation.
func (s *Streamer) RunTable(ctx context.Context, z []string, x, y string, bins int) (*StreamResult, error) {
	return s.run(ctx, &streamPair{z: z, x: x, y: y, bins: bins})
}

// RunKendall streams one pass and accumulates per-stratum Kendall
// concordance partials of numeric columns x and y conditioned on z.
func (s *Streamer) RunKendall(ctx context.Context, z []string, x, y string) (*StreamResult, error) {
	return s.run(ctx, &streamPair{z: z, x: x, y: y, kendall: true})
}

func (s *Streamer) run(ctx context.Context, p *streamPair) (*StreamResult, error) {
	for _, name := range append(append([]string(nil), p.z...), p.x, p.y) {
		if _, ok := s.kind[name]; !ok {
			return nil, fmt.Errorf("kernel: stream source has no column %q", name)
		}
	}
	if p.kendall {
		if s.kind[p.x] != relation.Numeric || s.kind[p.y] != relation.Numeric {
			return nil, fmt.Errorf("kernel: Kendall stream needs numeric columns, got %s %s", s.kind[p.x], s.kind[p.y])
		}
	}
	p.strata = make(map[string]*streamStratum)
	err := s.src.Scan(ctx, func(seg *store.Segment) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return s.consumeChunk(p, seg)
	})
	if err != nil {
		return nil, err
	}
	if p.seen != s.src.Rows {
		return nil, fmt.Errorf("kernel: stream delivered %d rows, source declares %d", p.seen, s.src.Rows)
	}
	return s.finalize(p)
}

// chunkAccessor reads one column of one chunk as group-key strings,
// categorical strings, or floats.
type chunkAccessor struct {
	col *store.SegmentColumn
}

func (s *Streamer) chunkColumn(seg *store.Segment, name string) (*store.SegmentColumn, error) {
	for i := range seg.Cols {
		if seg.Cols[i].Name != name {
			continue
		}
		c := &seg.Cols[i]
		wantCat := s.kind[name] == relation.Categorical
		if gotCat := c.Kind == store.ColKindCategorical; gotCat != wantCat {
			return nil, fmt.Errorf("kernel: stream chunk column %q is %s, schema says %s", name, c.Kind, s.kind[name])
		}
		return c, nil
	}
	return nil, fmt.Errorf("kernel: stream chunk lacks column %q", name)
}

// keyString renders row i of the column exactly as relation StringAt
// does, so streamed group keys match partition keys byte for byte.
func (a chunkAccessor) keyString(i int) string {
	if a.col.Kind == store.ColKindCategorical {
		return a.col.Dict[a.col.Codes[i]]
	}
	return relation.FormatFloat(a.col.Floats[i])
}

func (s *Streamer) consumeChunk(p *streamPair, seg *store.Segment) error {
	zCols := make([]chunkAccessor, len(p.z))
	for i, name := range p.z {
		c, err := s.chunkColumn(seg, name)
		if err != nil {
			return err
		}
		zCols[i] = chunkAccessor{col: c}
	}
	xCol, err := s.chunkColumn(seg, p.x)
	if err != nil {
		return err
	}
	yCol, err := s.chunkColumn(seg, p.y)
	if err != nil {
		return err
	}
	xCat := xCol.Kind == store.ColKindCategorical
	yCat := yCol.Kind == store.ColKindCategorical

	var touched []*streamStratum
	var keyBuf strings.Builder
	for i := 0; i < seg.Rows; i++ {
		keyBuf.Reset()
		for j := range zCols {
			if j > 0 {
				keyBuf.WriteByte('\x1f')
			}
			keyBuf.WriteString(zCols[j].keyString(i))
		}
		key := keyBuf.String()
		st, ok := p.strata[key]
		if !ok {
			st = s.newStratum(p, xCat, yCat)
			p.strata[key] = st
			p.order = append(p.order, key)
		}
		st.size++
		if p.kendall {
			if len(st.scratchX) == 0 {
				touched = append(touched, st)
			}
			st.scratchX = append(st.scratchX, xCol.Floats[i])
			st.scratchY = append(st.scratchY, yCol.Floats[i])
			continue
		}
		switch {
		case xCat && yCat:
			st.table.Observe(st.coderX.code(xCol.Dict[xCol.Codes[i]]), st.coderY.code(yCol.Dict[yCol.Codes[i]]))
		default:
			if xCat {
				st.codesX = append(st.codesX, st.coderX.code(xCol.Dict[xCol.Codes[i]]))
			} else {
				st.bufX = append(st.bufX, xCol.Floats[i])
			}
			if yCat {
				st.codesY = append(st.codesY, st.coderY.code(yCol.Dict[yCol.Codes[i]]))
			} else {
				st.bufY = append(st.bufY, yCol.Floats[i])
			}
		}
	}
	p.seen += seg.Rows

	// Fold this chunk's Kendall points into each touched stratum's partial
	// (one Append per stratum per chunk keeps the merge tree shallow).
	for _, st := range touched {
		st.kendall.Append(st.scratchX, st.scratchY)
		st.scratchX = st.scratchX[:0]
		st.scratchY = st.scratchY[:0]
	}
	return nil
}

func (s *Streamer) newStratum(p *streamPair, xCat, yCat bool) *streamStratum {
	st := &streamStratum{}
	if p.kendall {
		st.kendall = stats.NewKendallPartial()
		return st
	}
	if xCat {
		st.coderX = newStreamCoder()
	}
	if yCat {
		st.coderY = newStreamCoder()
	}
	if xCat && yCat {
		st.table = &stats.TablePartial{}
	}
	return st
}

// finalize sorts the stratum keys and materializes each stratum's
// statistic, quantile-binning any buffered numeric columns over the full
// stratum exactly as the resident CodesFor path does.
func (s *Streamer) finalize(p *streamPair) (*StreamResult, error) {
	res := &StreamResult{
		Keys:   append([]string(nil), p.order...),
		Strata: make(map[string]*StreamStratum, len(p.order)),
	}
	sort.Strings(res.Keys)
	for key, st := range p.strata {
		out := &StreamStratum{Size: st.size}
		if p.kendall {
			out.Kendall = st.kendall
			res.Strata[key] = out
			continue
		}
		if st.table != nil {
			out.Table = st.table.Table()
			res.Strata[key] = out
			continue
		}
		xCodes, kx := st.codesX, 0
		if st.coderX != nil {
			kx = int(st.coderX.next)
		} else {
			xCodes, kx = discretizeQuantile32(st.bufX, p.bins)
		}
		yCodes, ky := st.codesY, 0
		if st.coderY != nil {
			ky = int(st.coderY.next)
		} else {
			yCodes, ky = discretizeQuantile32(st.bufY, p.bins)
		}
		out.Table = stats.TableFromCodes(xCodes, yCodes, kx, ky)
		res.Strata[key] = out
	}
	return res, nil
}
