//scoded:hotpath
package kernel

import (
	"sort"
	"strconv"

	"scoded/internal/relation"
)

// CodesFor returns dense category codes for a column over the given row
// subset, together with the number of distinct codes. Categorical columns
// are re-mapped densely in first-occurrence order over the subset; numeric
// columns are discretized into quantile bins. rows nil means all rows.
//
// This is the single coding function behind both the cached and uncached
// detection paths: detect and drilldown used to carry private copies of it,
// which the kernel cache unified so memoized codes are exactly the codes
// the uncached path computes. The remap runs over a flat slice indexed by
// dictionary code rather than a map — the map's hashing was the single
// largest CPU item on the cold CheckAll profile.
func CodesFor(d *relation.Relation, name string, bins int, rows []int) ([]int32, int) {
	c := d.MustColumn(name)
	n := len(rows)
	if rows == nil {
		n = d.NumRows()
	}
	if c.Kind == relation.Categorical {
		remap := make([]int32, c.Cardinality())
		for i := range remap {
			remap[i] = -1
		}
		out := make([]int32, n)
		next := int32(0)
		for i := 0; i < n; i++ {
			r := i
			if rows != nil {
				r = rows[i]
			}
			code := c.Code(r)
			dense := remap[code]
			if dense < 0 {
				dense = next
				next++
				remap[code] = dense
			}
			out[i] = dense
		}
		return out, int(next)
	}
	return discretizeQuantile32(FloatsFor(d, name, rows), bins)
}

// FloatsFor returns the values of a numeric column over the given row
// subset (nil means all rows).
func FloatsFor(d *relation.Relation, name string, rows []int) []float64 {
	c := d.MustColumn(name)
	if rows == nil {
		return c.Floats()
	}
	out := make([]float64, len(rows))
	for i, r := range rows {
		out[i] = c.Value(r)
	}
	return out
}

// DiscretizeQuantile bins values into at most `bins` quantile bins, returning
// dense bin codes and the number of bins actually used. Ties at bin
// boundaries collapse bins rather than splitting equal values. This is the
// historical []int API kept for the discovery, repair and experiment code;
// the detection hot path uses the []int32 form directly.
func DiscretizeQuantile(vals []float64, bins int) ([]int, int) {
	codes, k := discretizeQuantile32(vals, bins)
	if codes == nil {
		return nil, k
	}
	out := make([]int, len(codes))
	for i, c := range codes {
		out[i] = int(c)
	}
	return out, k
}

// discretizeQuantile32 is DiscretizeQuantile producing the flat []int32
// coding the kernels consume. The bin codes are bounded by `bins`, so the
// density remap runs over a small flat slice instead of a map.
func discretizeQuantile32(vals []float64, bins int) ([]int32, int) {
	n := len(vals)
	if n == 0 {
		return nil, 0
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	// Bin edges at the interior quantiles; deduplicate equal edges.
	var edges []float64
	for b := 1; b < bins; b++ {
		e := sorted[b*n/bins]
		if len(edges) == 0 || e > edges[len(edges)-1] {
			edges = append(edges, e)
		}
	}
	codes := make([]int32, n)
	for i, v := range vals {
		c := sort.SearchFloat64s(edges, v)
		// SearchFloat64s returns the first edge >= v; values equal to an
		// edge belong to the next bin so equal values never split.
		//scoded:lint-ignore floatcmp bin edges are copied data values, so edge membership is exact
		if c < len(edges) && v == edges[c] {
			c++
		}
		codes[i] = int32(c)
	}
	// Re-map to dense codes: some bins may be empty (e.g. a constant
	// column where every value lands past the deduplicated edge).
	remap := make([]int32, len(edges)+1)
	for i := range remap {
		remap[i] = -1
	}
	next := int32(0)
	for i, c := range codes {
		dense := remap[c]
		if dense < 0 {
			dense = next
			next++
			remap[c] = dense
		}
		codes[i] = dense
	}
	return codes, int(next)
}

// Partition is a group-by partition of a relation on a conditioning column
// list, with the group keys pre-sorted for deterministic iteration. It is
// built once per distinct (ordered) column list and shared read-only.
type Partition struct {
	// Cols is the conditioning column list, in constraint order. The cache
	// key is order-sensitive on purpose: group keys concatenate values in
	// column order, and stratum keys are surfaced verbatim in results.
	Cols []string
	// CacheKey canonically identifies this partition's conditioning set
	// inside a Cache; it is version-free (the cache appends the version
	// when keying the partition entry itself).
	CacheKey string
	// Groups maps each group key (relation.RowKey form) to its member rows
	// in row order.
	Groups map[string][]int
	// Keys holds the group keys in sorted order.
	Keys []string
	// Version is the cache version this partition was computed at, and
	// GroupVersions holds, per group, the version at which that group's row
	// list last changed — inherited from the previous partition on the
	// same conditioning set when the group is untouched. Both are zero on
	// the uncached path (PartitionOf alone).
	Version       uint64
	GroupVersions map[string]uint64
}

// PartitionOf computes the partition directly (the uncached path). The
// groups come from the flat mixed-radix encoder when it applies — identical
// map, keys and row order to GroupBy without the per-row key strings — and
// from the string-keyed reference otherwise (GroupByFlat's documented
// fallback cases; equivalence is pinned by the property tests in
// internal/relation).
func PartitionOf(d *relation.Relation, z []string) *Partition {
	groups, ok := d.GroupByFlat(z)
	if !ok {
		groups = d.GroupBy(z)
	}
	return &Partition{
		Cols:     append([]string(nil), z...),
		CacheKey: partitionCacheKey(z),
		Groups:   groups,
		Keys:     relation.SortedGroupKeys(groups),
	}
}

// StratumRowsKey returns the canonical rows-subset identifier of one group
// of the partition, for use as the rowsKey of Codes / Floats / Table /
// KendallPrep calls scoped to that stratum. The key embeds the group's
// inherited version, so after an append only the strata whose rows grew
// address new cache entries; everything else stays warm.
func (p *Partition) StratumRowsKey(groupKey string) string {
	//scoded:lint-ignore allochot one key per stratum, not per row
	return p.CacheKey + keySep + "=" + groupKey + "@" + strconv.FormatUint(p.GroupVersions[groupKey], 16)
}
