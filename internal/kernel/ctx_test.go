package kernel

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// TestDoCancelledWaiter: a waiter whose context ends while the leader is
// still computing returns the context error instead of blocking.
func TestDoCancelledWaiter(t *testing.T) {
	d := testRelation(t)
	c := New(d)
	leaderIn := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.do(context.Background(), "k", func() any {
			close(leaderIn)
			<-release
			return 42
		})
	}()
	<-leaderIn

	ctx, cancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, err := c.do(ctx, "k", func() any { return 0 })
		waiterErr <- err
	}()
	cancel()
	if err := <-waiterErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
	}

	close(release)
	wg.Wait()
	// The leader was never disturbed: the value is cached and readable.
	v, err := c.do(context.Background(), "k", func() any { t.Error("recomputed"); return 0 })
	if err != nil || v != 42 {
		t.Fatalf("got (%v, %v), want (42, nil)", v, err)
	}
}

// TestDoPreCancelled: a context that is already done never runs compute,
// cached or not.
func TestDoPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, c := range []*Cache{nil, New(testRelation(t))} {
		_, err := c.do(ctx, "k", func() any { t.Error("compute ran"); return 0 })
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cache=%v: err %v, want context.Canceled", c != nil, err)
		}
	}
}

// TestDoPanicHandsOff: a leader whose compute panics withdraws the entry; a
// waiter retries as the new leader instead of consuming a poisoned value,
// and the panic still propagates to the original caller.
func TestDoPanicHandsOff(t *testing.T) {
	d := testRelation(t)
	c := New(d)
	leaderIn := make(chan struct{})
	boom := make(chan struct{})

	waiterVal := make(chan any, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-leaderIn
		v, err := c.do(context.Background(), "k", func() any { return "recovered" })
		if err != nil {
			t.Errorf("retrying waiter failed: %v", err)
		}
		waiterVal <- v
	}()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("leader's panic did not propagate")
			}
			close(boom)
		}()
		c.do(context.Background(), "k", func() any {
			close(leaderIn)
			panic("compute exploded")
		})
	}()

	<-boom
	wg.Wait()
	if v := <-waiterVal; v != "recovered" {
		t.Fatalf("waiter saw %v, want the recomputed value", v)
	}
}
