package segtree

import (
	"math/rand"
	"testing"
)

// TestFenwickMergeMatchesBruteForce pins CountLE against a direct scan on
// random rank sets, including heavy ties and degenerate universes.
func TestFenwickMergeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(200)
		ux := 1 + rng.Intn(12)
		uy := 1 + rng.Intn(12)
		xr := make([]int, n)
		yr := make([]int, n)
		for i := range xr {
			xr[i] = rng.Intn(ux)
			yr[i] = rng.Intn(uy)
		}
		f := NewFenwickMerge(xr, yr, ux, uy)
		for q := 0; q < 50; q++ {
			qx := rng.Intn(ux+2) - 1
			qy := rng.Intn(uy+2) - 1
			var want int64
			for i := range xr {
				if xr[i] <= qx && yr[i] <= qy {
					want++
				}
			}
			if got := f.CountLE(qx, qy); got != want {
				t.Fatalf("trial %d: CountLE(%d,%d) = %d, want %d (n=%d ux=%d uy=%d)",
					trial, qx, qy, got, want, n, ux, uy)
			}
		}
	}
}

// TestFenwickMergeRebuildReuse pins that Rebuild leaves no stale state
// behind when the new point set is smaller than the old one.
func TestFenwickMergeRebuildReuse(t *testing.T) {
	f := NewFenwickMerge([]int{0, 1, 2, 3}, []int{3, 2, 1, 0}, 4, 4)
	if got := f.CountLE(3, 3); got != 4 {
		t.Fatalf("initial total = %d", got)
	}
	f.Rebuild([]int{0, 0}, []int{1, 1}, 1, 2)
	if got := f.CountLE(0, 1); got != 2 {
		t.Errorf("after rebuild total = %d", got)
	}
	if got := f.CountLE(0, 0); got != 0 {
		t.Errorf("after rebuild CountLE(0,0) = %d", got)
	}
	f.Rebuild(nil, nil, 0, 0)
	if got := f.CountLE(5, 5); got != 0 {
		t.Errorf("empty rebuild CountLE = %d", got)
	}
}

// TestCompressRanksUniqInto pins the uniq contract: ranks index into the
// ascending distinct values.
func TestCompressRanksUniqInto(t *testing.T) {
	v := []float64{3, 1, 1, 5, 6, 5, -2}
	ranks, uniq := CompressRanksUniqInto(v, nil, nil)
	wantUniq := []float64{-2, 1, 3, 5, 6}
	if len(uniq) != len(wantUniq) {
		t.Fatalf("uniq = %v", uniq)
	}
	for i := range uniq {
		//scoded:lint-ignore floatcmp exact values round-trip through sorting unchanged
		if uniq[i] != wantUniq[i] {
			t.Fatalf("uniq = %v, want %v", uniq, wantUniq)
		}
	}
	for i, r := range ranks {
		//scoded:lint-ignore floatcmp rank lookup is defined by exact equality
		if uniq[r] != v[i] {
			t.Errorf("ranks[%d] = %d does not map back to %v", i, r, v[i])
		}
	}
	// Buffer reuse keeps results correct.
	ranks2, uniq2 := CompressRanksUniqInto([]float64{2, 2, 2}, ranks, uniq)
	if len(uniq2) != 1 || len(ranks2) != 3 || ranks2[0] != 0 {
		t.Errorf("reuse: ranks=%v uniq=%v", ranks2, uniq2)
	}
}
