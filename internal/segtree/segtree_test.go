package segtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// counter is the obvious O(n) oracle.
type counter []int64

func (c counter) query(l, r int) int64 {
	if l < 0 {
		l = 0
	}
	if r >= len(c) {
		r = len(c) - 1
	}
	var s int64
	for i := l; i <= r; i++ {
		s += c[i]
	}
	return s
}

func TestSegmentTreeAgainstOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 1
		st := NewSegmentTree(n)
		fw := NewFenwick(n)
		oracle := make(counter, n)
		for op := 0; op < 200; op++ {
			if rng.Intn(2) == 0 {
				pos := rng.Intn(n)
				st.Insert(pos, 1)
				fw.Insert(pos, 1)
				oracle[pos]++
			} else {
				l := rng.Intn(n+2) - 1
				r := rng.Intn(n+2) - 1
				want := oracle.query(l, r)
				if st.Query(l, r) != want || fw.Query(l, r) != want {
					return false
				}
			}
		}
		total := oracle.query(0, n-1)
		return st.Total() == total && fw.Total() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCountBelowAbove(t *testing.T) {
	for _, mk := range []func(int) interface {
		Insert(int, int64)
		CountBelow(int) int64
		CountAbove(int) int64
		Total() int64
	}{
		func(n int) interface {
			Insert(int, int64)
			CountBelow(int) int64
			CountAbove(int) int64
			Total() int64
		} {
			return NewSegmentTree(n)
		},
		func(n int) interface {
			Insert(int, int64)
			CountBelow(int) int64
			CountAbove(int) int64
			Total() int64
		} {
			return NewFenwick(n)
		},
	} {
		tr := mk(10)
		for _, p := range []int{2, 5, 5, 9} {
			tr.Insert(p, 1)
		}
		if got := tr.CountBelow(5); got != 1 {
			t.Errorf("CountBelow(5) = %d, want 1", got)
		}
		if got := tr.CountAbove(5); got != 1 {
			t.Errorf("CountAbove(5) = %d, want 1", got)
		}
		if got := tr.CountBelow(0); got != 0 {
			t.Errorf("CountBelow(0) = %d", got)
		}
		if got := tr.CountAbove(9); got != 0 {
			t.Errorf("CountAbove(9) = %d", got)
		}
		if got := tr.Total(); got != 4 {
			t.Errorf("Total = %d", got)
		}
	}
}

func TestInsertOutOfRangePanics(t *testing.T) {
	st := NewSegmentTree(4)
	fw := NewFenwick(4)
	for _, f := range []func(){
		func() { st.Insert(-1, 1) },
		func() { st.Insert(4, 1) },
		func() { fw.Insert(-1, 1) },
		func() { fw.Insert(4, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range insert")
				}
			}()
			f()
		}()
	}
}

func TestZeroSizeTreesClampToOne(t *testing.T) {
	st := NewSegmentTree(0)
	fw := NewFenwick(-3)
	st.Insert(0, 1)
	fw.Insert(0, 1)
	if st.Total() != 1 || fw.Total() != 1 {
		t.Error("clamped trees should still work at size 1")
	}
}

func TestCompressRanks(t *testing.T) {
	v := []float64{3.5, -1, 3.5, 10, -1}
	ranks, k := CompressRanks(v)
	if k != 3 {
		t.Fatalf("distinct = %d, want 3", k)
	}
	want := []int{1, 0, 1, 2, 0}
	for i := range want {
		if ranks[i] != want[i] {
			t.Errorf("rank[%d] = %d, want %d", i, ranks[i], want[i])
		}
	}
}

func TestCompressRanksOrderPreserving(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(80) + 1
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(rng.Intn(10))
		}
		ranks, k := CompressRanks(v)
		if k < 1 || k > n {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if (v[i] < v[j]) != (ranks[i] < ranks[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMaxHeapBasicOrdering(t *testing.T) {
	h := NewMaxHeap()
	h.Push(1, 5)
	h.Push(2, 9)
	h.Push(3, 1)
	if id, p, ok := h.Peek(); !ok || id != 2 || p != 9 {
		t.Errorf("Peek = %d/%v/%v", id, p, ok)
	}
	var got []int
	for h.Len() > 0 {
		id, _, _ := h.Pop()
		got = append(got, id)
	}
	want := []int{2, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pop order = %v, want %v", got, want)
			break
		}
	}
	if _, _, ok := h.Pop(); ok {
		t.Error("Pop on empty should report !ok")
	}
	if _, _, ok := h.Peek(); ok {
		t.Error("Peek on empty should report !ok")
	}
}

func TestMaxHeapUpdate(t *testing.T) {
	h := NewMaxHeap()
	for i := 0; i < 5; i++ {
		h.Push(i, float64(i))
	}
	h.Update(0, 100) // promote the minimum
	h.Update(4, -1)  // demote the maximum
	h.Update(99, 5)  // no-op on unknown id
	h.Push(2, 50)    // push of existing id acts as update
	if p, _ := h.Priority(2); p != 50 {
		t.Errorf("Priority(2) = %v", p)
	}
	id, p, _ := h.Pop()
	if id != 0 || p != 100 {
		t.Errorf("first pop = %d/%v", id, p)
	}
	id, _, _ = h.Pop()
	if id != 2 {
		t.Errorf("second pop = %d, want 2", id)
	}
}

func TestMaxHeapRemoveAndContains(t *testing.T) {
	h := NewMaxHeap()
	for i := 0; i < 4; i++ {
		h.Push(i, float64(i))
	}
	h.Remove(3)
	h.Remove(99) // no-op
	if h.Contains(3) {
		t.Error("removed id still present")
	}
	if !h.Contains(2) {
		t.Error("id 2 should be present")
	}
	if h.Len() != 3 {
		t.Errorf("Len = %d", h.Len())
	}
	if _, ok := h.Priority(3); ok {
		t.Error("Priority of removed id should report !ok")
	}
}

func TestMaxHeapDeterministicTieBreak(t *testing.T) {
	h := NewMaxHeap()
	h.Push(7, 1)
	h.Push(3, 1)
	h.Push(5, 1)
	var got []int
	for h.Len() > 0 {
		id, _, _ := h.Pop()
		got = append(got, id)
	}
	if !sort.IntsAreSorted(got) {
		t.Errorf("equal priorities should pop in id order, got %v", got)
	}
}

func TestMaxHeapRandomAgainstSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 1
		h := NewMaxHeap()
		pri := make(map[int]float64, n)
		for i := 0; i < n; i++ {
			p := float64(rng.Intn(20))
			h.Push(i, p)
			pri[i] = p
		}
		// random updates
		for u := 0; u < n/2; u++ {
			id := rng.Intn(n)
			p := float64(rng.Intn(20))
			h.Update(id, p)
			pri[id] = p
		}
		prevP := float64(1 << 30)
		prevID := -1
		for h.Len() > 0 {
			id, p, _ := h.Pop()
			if pri[id] != p {
				return false
			}
			if p > prevP || (p == prevP && id < prevID) {
				return false
			}
			prevP, prevID = p, id
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
