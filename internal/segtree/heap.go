package segtree

import "container/heap"

// MaxHeap is an indexed max-priority-queue over items 0..n-1 with float64
// priorities. It supports Update (change an item's priority) in O(log n),
// which Algorithm 2 needs to refresh record benefits between selection
// rounds. Items can be removed; removed items are no longer tracked.
type MaxHeap struct {
	h indexedHeap
}

type heapItem struct {
	id       int
	priority float64
}

type indexedHeap struct {
	items []heapItem
	pos   map[int]int // item id -> index in items
}

func (h indexedHeap) Len() int { return len(h.items) }
func (h indexedHeap) Less(i, j int) bool {
	//scoded:lint-ignore floatcmp comparator tie-break needs exact equality for a total order
	if h.items[i].priority != h.items[j].priority {
		return h.items[i].priority > h.items[j].priority
	}
	// Deterministic tie-break by id keeps experiment output reproducible.
	return h.items[i].id < h.items[j].id
}
func (h indexedHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i].id] = i
	h.pos[h.items[j].id] = j
}
func (h *indexedHeap) Push(x any) {
	it := x.(heapItem)
	h.pos[it.id] = len(h.items)
	h.items = append(h.items, it)
}
func (h *indexedHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	delete(h.pos, it.id)
	return it
}

// NewMaxHeap creates an empty indexed max-heap.
func NewMaxHeap() *MaxHeap {
	return &MaxHeap{h: indexedHeap{pos: make(map[int]int)}}
}

// Len returns the number of items in the heap.
func (m *MaxHeap) Len() int { return m.h.Len() }

// Push inserts an item with the given priority. Pushing an id already in the
// heap updates it instead.
func (m *MaxHeap) Push(id int, priority float64) {
	if _, ok := m.h.pos[id]; ok {
		m.Update(id, priority)
		return
	}
	heap.Push(&m.h, heapItem{id: id, priority: priority})
}

// Update changes the priority of an existing item. It is a no-op for ids not
// in the heap.
func (m *MaxHeap) Update(id int, priority float64) {
	i, ok := m.h.pos[id]
	if !ok {
		return
	}
	m.h.items[i].priority = priority
	heap.Fix(&m.h, i)
}

// Peek returns the id and priority of the maximum item without removing it.
// ok is false when the heap is empty.
func (m *MaxHeap) Peek() (id int, priority float64, ok bool) {
	if m.h.Len() == 0 {
		return 0, 0, false
	}
	it := m.h.items[0]
	return it.id, it.priority, true
}

// Pop removes and returns the maximum item. ok is false when the heap is
// empty.
func (m *MaxHeap) Pop() (id int, priority float64, ok bool) {
	if m.h.Len() == 0 {
		return 0, 0, false
	}
	it := heap.Pop(&m.h).(heapItem)
	return it.id, it.priority, true
}

// Remove deletes an arbitrary item by id. It is a no-op for ids not in the
// heap.
func (m *MaxHeap) Remove(id int) {
	i, ok := m.h.pos[id]
	if !ok {
		return
	}
	heap.Remove(&m.h, i)
}

// Contains reports whether the id is in the heap.
func (m *MaxHeap) Contains(id int) bool {
	_, ok := m.h.pos[id]
	return ok
}

// Priority returns the current priority of an item.
func (m *MaxHeap) Priority(id int) (float64, bool) {
	i, ok := m.h.pos[id]
	if !ok {
		return 0, false
	}
	return m.h.items[i].priority, true
}
