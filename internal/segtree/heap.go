package segtree

// MaxHeap is an indexed max-priority-queue over dense non-negative item ids
// with float64 priorities. It supports Update (change an item's priority) in
// O(log n), which Algorithm 2 needs to refresh record benefits between
// selection rounds. Items can be removed; removed items are no longer
// tracked.
//
// The implementation is allocation-free in steady state: it hand-rolls
// sift-up/sift-down over two flat slices instead of going through
// container/heap, whose any-typed Push/Pop box one item per call, and tracks
// positions in a dense []int32 instead of a map — the drill-down greedy
// loops re-key tens of thousands of cells per run, and on the 20k-row
// benchmark the boxing alone accounted for ~2k allocations per drill.
type MaxHeap struct {
	ids  []int32   // heap order: ids[0] is the max item
	prio []float64 // parallel to ids
	pos  []int32   // item id -> index in ids, -1 when absent
}

// NewMaxHeap creates an empty indexed max-heap.
func NewMaxHeap() *MaxHeap {
	return &MaxHeap{}
}

// Len returns the number of items in the heap.
func (m *MaxHeap) Len() int { return len(m.ids) }

// index returns the heap position of id, or -1.
func (m *MaxHeap) index(id int) int {
	if id < 0 || id >= len(m.pos) {
		return -1
	}
	return int(m.pos[id])
}

// less reports whether heap slot i ranks strictly above slot j: higher
// priority first, equal priorities broken by the smaller id so experiment
// output stays reproducible.
func (m *MaxHeap) less(i, j int) bool {
	//scoded:lint-ignore floatcmp comparator tie-break needs exact equality for a total order
	if m.prio[i] != m.prio[j] {
		return m.prio[i] > m.prio[j]
	}
	return m.ids[i] < m.ids[j]
}

func (m *MaxHeap) swap(i, j int) {
	m.ids[i], m.ids[j] = m.ids[j], m.ids[i]
	m.prio[i], m.prio[j] = m.prio[j], m.prio[i]
	m.pos[m.ids[i]] = int32(i)
	m.pos[m.ids[j]] = int32(j)
}

func (m *MaxHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !m.less(i, parent) {
			return
		}
		m.swap(i, parent)
		i = parent
	}
}

func (m *MaxHeap) siftDown(i int) {
	n := len(m.ids)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		best := left
		if right := left + 1; right < n && m.less(right, left) {
			best = right
		}
		if !m.less(best, i) {
			return
		}
		m.swap(i, best)
		i = best
	}
}

// Push inserts an item with the given priority. Pushing an id already in the
// heap updates it instead. Ids must be non-negative; the position index is
// dense, so ids should be small ordinals (cell or stratum indices).
func (m *MaxHeap) Push(id int, priority float64) {
	if id < 0 {
		panic("segtree: MaxHeap ids must be non-negative")
	}
	if i := m.index(id); i >= 0 {
		m.updateAt(i, priority)
		return
	}
	if id >= len(m.pos) {
		grown := make([]int32, id+1+len(m.pos))
		for i := copy(grown, m.pos); i < len(grown); i++ {
			grown[i] = -1
		}
		m.pos = grown
	}
	m.ids = append(m.ids, int32(id))
	m.prio = append(m.prio, priority)
	m.pos[id] = int32(len(m.ids) - 1)
	m.siftUp(len(m.ids) - 1)
}

// updateAt re-prioritizes the item at heap slot i and restores heap order.
func (m *MaxHeap) updateAt(i int, priority float64) {
	m.prio[i] = priority
	m.siftUp(i)
	m.siftDown(i)
}

// Update changes the priority of an existing item. It is a no-op for ids not
// in the heap.
func (m *MaxHeap) Update(id int, priority float64) {
	if i := m.index(id); i >= 0 {
		m.updateAt(i, priority)
	}
}

// Peek returns the id and priority of the maximum item without removing it.
// ok is false when the heap is empty.
func (m *MaxHeap) Peek() (id int, priority float64, ok bool) {
	if len(m.ids) == 0 {
		return 0, 0, false
	}
	return int(m.ids[0]), m.prio[0], true
}

// Pop removes and returns the maximum item. ok is false when the heap is
// empty.
func (m *MaxHeap) Pop() (id int, priority float64, ok bool) {
	if len(m.ids) == 0 {
		return 0, 0, false
	}
	id, priority = int(m.ids[0]), m.prio[0]
	m.removeAt(0)
	return id, priority, true
}

// removeAt deletes the item at heap slot i.
func (m *MaxHeap) removeAt(i int) {
	last := len(m.ids) - 1
	m.pos[m.ids[i]] = -1
	if i != last {
		m.ids[i] = m.ids[last]
		m.prio[i] = m.prio[last]
		m.pos[m.ids[i]] = int32(i)
	}
	m.ids = m.ids[:last]
	m.prio = m.prio[:last]
	if i != last {
		m.siftUp(i)
		m.siftDown(i)
	}
}

// Remove deletes an arbitrary item by id. It is a no-op for ids not in the
// heap.
func (m *MaxHeap) Remove(id int) {
	if i := m.index(id); i >= 0 {
		m.removeAt(i)
	}
}

// Contains reports whether the id is in the heap.
func (m *MaxHeap) Contains(id int) bool {
	return m.index(id) >= 0
}

// Priority returns the current priority of an item.
func (m *MaxHeap) Priority(id int) (float64, bool) {
	if i := m.index(id); i >= 0 {
		return m.prio[i], true
	}
	return 0, false
}
