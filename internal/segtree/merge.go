package segtree

// FenwickMerge is a Fenwick tree over compressed x-ranks whose node
// payloads are the y-ranks of the covered points, each list kept in sorted
// order — the static half of the streaming monitors' concordance index
// (DESIGN.md §14). It answers 2D dominance-style prefix counts
//
//	|{ p : xrank(p) <= xr  AND  yrank(p) <= yr }|
//
// in O(log ux · log n) with two flat backing arrays and no per-query
// allocation. The structure is immutable after Rebuild; dynamic callers
// layer small insert/evict delta buffers on top and rebuild periodically,
// which keeps amortized update cost polylogarithmic without needing a
// dynamic 2D tree.
type FenwickMerge struct {
	ux     int
	starts []int32 // node i's payload is ys[starts[i]:starts[i+1]], i in [1, ux]
	ys     []int32 // concatenated sorted y-rank lists
	fill   []int32 // scratch write cursors, reused across rebuilds
	order  []int32 // scratch point ordering by y-rank, reused across rebuilds
	ycnt   []int32 // scratch counting-sort histogram, reused across rebuilds
}

// NewFenwickMerge builds the structure over n points given by parallel
// rank slices: point p has x-rank xr[p] in [0, ux) and y-rank yr[p] in
// [0, uy). Ranks are dense compressed ranks (CompressRanks order).
func NewFenwickMerge(xr, yr []int, ux, uy int) *FenwickMerge {
	f := &FenwickMerge{}
	f.Rebuild(xr, yr, ux, uy)
	return f
}

// Rebuild re-points the structure at a new point set, reusing the backing
// arrays when they are large enough. Cost is O(n log ux + uy).
func (f *FenwickMerge) Rebuild(xr, yr []int, ux, uy int) {
	if ux < 1 {
		ux = 1
	}
	if uy < 1 {
		uy = 1
	}
	n := len(xr)
	f.ux = ux
	f.starts = growI32(f.starts, ux+2)
	for i := range f.starts {
		f.starts[i] = 0
	}
	// Pass 1: per-node element counts (each point lands on its Fenwick
	// update path), accumulated into starts shifted by one for the prefix
	// scan below.
	for p := 0; p < n; p++ {
		for i := xr[p] + 1; i <= ux; i += i & (-i) {
			f.starts[i+1]++
		}
	}
	for i := 1; i < len(f.starts); i++ {
		f.starts[i] += f.starts[i-1]
	}
	total := int(f.starts[ux+1])
	f.ys = growI32(f.ys, total)

	// Pass 2: visit points in ascending y-rank (counting sort), appending
	// each to its path nodes; every node list comes out sorted without any
	// per-node sort.
	f.ycnt = growI32(f.ycnt, uy+1)
	for i := range f.ycnt {
		f.ycnt[i] = 0
	}
	for p := 0; p < n; p++ {
		f.ycnt[yr[p]+1]++
	}
	for i := 1; i <= uy; i++ {
		f.ycnt[i] += f.ycnt[i-1]
	}
	f.order = growI32(f.order, n)
	for p := 0; p < n; p++ {
		f.order[f.ycnt[yr[p]]] = int32(p)
		f.ycnt[yr[p]]++
	}
	f.fill = growI32(f.fill, ux+1)
	copy(f.fill, f.starts[:ux+1])
	for _, p32 := range f.order[:n] {
		p := int(p32)
		for i := xr[p] + 1; i <= ux; i += i & (-i) {
			f.ys[f.fill[i]] = int32(yr[p])
			f.fill[i]++
		}
	}
}

// CountLE returns the number of points with xrank <= xr and yrank <= yr.
// Negative bounds return 0; bounds beyond the universe are clipped.
func (f *FenwickMerge) CountLE(xr, yr int) int64 {
	if xr < 0 || yr < 0 {
		return 0
	}
	if xr >= f.ux {
		xr = f.ux - 1
	}
	y32 := int32(yr)
	var count int64
	for i := xr + 1; i > 0; i -= i & (-i) {
		node := f.ys[f.starts[i]:f.starts[i+1]]
		// Upper bound: first index with node[idx] > yr.
		lo, hi := 0, len(node)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if node[mid] <= y32 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		count += int64(lo)
	}
	return count
}

// growI32 returns a slice of exactly n elements, reusing s's backing array
// when possible. Contents are unspecified.
func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// CompressRanksUniqInto is CompressRanksInto returning the sorted distinct
// values as well: ranks[i] is v[i]'s dense rank and uniq the ascending
// distinct values, so rank r corresponds to value uniq[r]. Both output
// slices reuse the provided buffers when large enough. Callers that must
// rank *query* values against the same universe later (the streaming
// concordance index) keep uniq and binary-search it.
func CompressRanksUniqInto(v []float64, ranks []int, uniq []float64) ([]int, []float64) {
	ranks, distinct, scratch := CompressRanksInto(v, ranks, uniq)
	// CompressRanksInto guarantees scratch[:distinct] holds the ascending
	// distinct values (it dedups the sorted scratch in place).
	return ranks, scratch[:distinct]
}
