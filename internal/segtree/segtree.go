// Package segtree provides the order-statistic data structures behind the
// paper's Algorithm 2: a segment tree and a Fenwick (binary indexed) tree
// over coordinate-compressed value ranks, plus an indexed priority queue with
// key updates. The trees support "insert a value" and "how many inserted
// values are below / above y" in O(log n), which is what the two benefit
// initialization passes of Algorithm 2 need.
package segtree

import (
	"fmt"
	"sort"
)

// SegmentTree is a fixed-universe point-update / range-sum segment tree over
// positions 0..n-1. It matches the structure described in Section 5.3 and
// Figure 6 of the paper: each node covers a segment of the (rank-compressed)
// value axis and stores the count of inserted points in that segment.
type SegmentTree struct {
	n    int
	tree []int64
}

// NewSegmentTree creates a segment tree over the universe {0, ..., n-1}.
func NewSegmentTree(n int) *SegmentTree {
	if n < 1 {
		n = 1
	}
	return &SegmentTree{n: n, tree: make([]int64, 4*n)}
}

// Insert adds delta (usually +1) at position pos.
func (s *SegmentTree) Insert(pos int, delta int64) {
	if pos < 0 || pos >= s.n {
		panic(fmt.Sprintf("segtree: Insert position %d out of [0,%d)", pos, s.n))
	}
	s.update(1, 0, s.n-1, pos, delta)
}

func (s *SegmentTree) update(node, lo, hi, pos int, delta int64) {
	if lo == hi {
		s.tree[node] += delta
		return
	}
	mid := (lo + hi) / 2
	if pos <= mid {
		s.update(2*node, lo, mid, pos, delta)
	} else {
		s.update(2*node+1, mid+1, hi, pos, delta)
	}
	s.tree[node] = s.tree[2*node] + s.tree[2*node+1]
}

// Query returns the number of inserted points in positions [l, r]
// (inclusive). Out-of-range bounds are clipped.
func (s *SegmentTree) Query(l, r int) int64 {
	if l < 0 {
		l = 0
	}
	if r >= s.n {
		r = s.n - 1
	}
	if l > r {
		return 0
	}
	return s.query(1, 0, s.n-1, l, r)
}

func (s *SegmentTree) query(node, lo, hi, l, r int) int64 {
	if r < lo || hi < l {
		return 0
	}
	if l <= lo && hi <= r {
		return s.tree[node]
	}
	mid := (lo + hi) / 2
	return s.query(2*node, lo, mid, l, r) + s.query(2*node+1, mid+1, hi, l, r)
}

// CountBelow returns the number of inserted points at positions < pos.
func (s *SegmentTree) CountBelow(pos int) int64 { return s.Query(0, pos-1) }

// CountAbove returns the number of inserted points at positions > pos.
func (s *SegmentTree) CountAbove(pos int) int64 { return s.Query(pos+1, s.n-1) }

// Total returns the number of inserted points.
func (s *SegmentTree) Total() int64 { return s.tree[1] }

// Fenwick is a binary indexed tree with the same interface as SegmentTree.
// It is ~2x faster with 8x less memory and is used by the production
// drill-down path; the SegmentTree form exists to match the paper's
// presentation and serves as a cross-check in tests.
type Fenwick struct {
	n    int
	tree []int64
}

// NewFenwick creates a Fenwick tree over the universe {0, ..., n-1}.
func NewFenwick(n int) *Fenwick {
	if n < 1 {
		n = 1
	}
	return &Fenwick{n: n, tree: make([]int64, n+1)}
}

// Reset re-dimensions the tree to the universe {0, ..., n-1} and clears every
// count, reusing the backing array when it is large enough. It lets callers
// that build one tree per stratum (the drill-down benefit initialization)
// amortize the allocation across strata.
func (f *Fenwick) Reset(n int) {
	if n < 1 {
		n = 1
	}
	if cap(f.tree) < n+1 {
		f.tree = make([]int64, n+1)
	} else {
		f.tree = f.tree[:n+1]
		for i := range f.tree {
			f.tree[i] = 0
		}
	}
	f.n = n
}

// Insert adds delta at position pos.
func (f *Fenwick) Insert(pos int, delta int64) {
	if pos < 0 || pos >= f.n {
		panic(fmt.Sprintf("segtree: Fenwick Insert position %d out of [0,%d)", pos, f.n))
	}
	for i := pos + 1; i <= f.n; i += i & (-i) {
		f.tree[i] += delta
	}
}

// prefix returns the sum of positions [0, pos].
func (f *Fenwick) prefix(pos int) int64 {
	if pos < 0 {
		return 0
	}
	if pos >= f.n {
		pos = f.n - 1
	}
	var s int64
	for i := pos + 1; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// Query returns the number of inserted points in positions [l, r].
func (f *Fenwick) Query(l, r int) int64 {
	if l < 0 {
		l = 0
	}
	if r >= f.n {
		r = f.n - 1
	}
	if l > r {
		return 0
	}
	return f.prefix(r) - f.prefix(l-1)
}

// CountBelow returns the number of inserted points at positions < pos.
func (f *Fenwick) CountBelow(pos int) int64 { return f.prefix(pos - 1) }

// CountAbove returns the number of inserted points at positions > pos.
func (f *Fenwick) CountAbove(pos int) int64 { return f.prefix(f.n-1) - f.prefix(pos) }

// Total returns the number of inserted points.
func (f *Fenwick) Total() int64 { return f.prefix(f.n - 1) }

// CompressRanks maps each value to its dense rank (0-based) among the
// distinct values of v, returning the ranks and the number of distinct
// values. Equal values share a rank, so tree counts of "below"/"above"
// exclude ties, matching the concordant/discordant pair definitions.
func CompressRanks(v []float64) (ranks []int, distinct int) {
	ranks, distinct, _ = CompressRanksInto(v, nil, nil)
	return ranks, distinct
}

// CompressRanksInto is CompressRanks with caller-provided buffers: ranks
// receives the per-value ranks (grown if too small) and scratch is used for
// the sort pass. It returns the ranks, the distinct count, and the (possibly
// grown) scratch buffer so repeated calls can amortize both allocations.
//
// Contract: on return, scratch[:distinct] holds the ascending distinct
// values of v (rank r corresponds to scratch[r]). CompressRanksUniqInto
// and the streaming concordance index rely on this to rank later query
// values against the same universe.
func CompressRanksInto(v []float64, ranks []int, scratch []float64) ([]int, int, []float64) {
	scratch = append(scratch[:0], v...)
	sort.Float64s(scratch)
	uniq := scratch[:0]
	for i, x := range scratch {
		//scoded:lint-ignore floatcmp deduplicating sorted values requires exact equality
		if i == 0 || x != uniq[len(uniq)-1] {
			uniq = append(uniq, x)
		}
	}
	if cap(ranks) < len(v) {
		ranks = make([]int, len(v))
	} else {
		ranks = ranks[:len(v)]
	}
	for i, x := range v {
		ranks[i] = sort.SearchFloat64s(uniq, x)
	}
	return ranks, len(uniq), scratch
}
