// Package detectbench defines the reproducible CheckAll workload behind the
// kernel-cache performance trajectory: cmd/scoded-bench -json and the
// benchmarks in internal/detect both run exactly this workload, so the
// committed BENCH_detect.json numbers and `go test -bench` agree on what is
// being measured.
//
// The workload is the shape the kernel cache targets (ISSUE: ≥20 constraints
// sharing attributes): every pair of a handful of categorical columns,
// conditioned on one shared stratification column, so partitions, codings
// and tables are recomputed per constraint without a cache and computed once
// with one.
package detectbench

import (
	"fmt"
	"math/rand"
	"testing"

	"scoded/internal/detect"
	"scoded/internal/kernel"
	"scoded/internal/relation"
	"scoded/internal/sc"
)

// Workload is one reproducible CheckAll input: a relation plus a constraint
// family over it.
type Workload struct {
	Rel    *relation.Relation
	Family []sc.Approximate
}

// workload dimensions; see NewWorkload.
const (
	workloadRows   = 20000
	workloadCols   = 7  // pairwise → C(7,2) = 21 constraints, ≥ the 20 target
	workloadLevels = 8  // categories per tested column
	workloadStrata = 12 // categories of the shared conditioning column
)

// NewWorkload builds the canonical benchmark workload for a seed: 20000
// rows, seven 8-level categorical columns with mild pairwise dependence,
// one 12-level conditioning column, and the 21 constraints
// "Ci _||_ Cj | Region" over every column pair.
func NewWorkload(seed int64) *Workload {
	rng := rand.New(rand.NewSource(seed))
	region := make([]string, workloadRows)
	for i := range region {
		region[i] = fmt.Sprintf("r%d", rng.Intn(workloadStrata))
	}
	cols := make([]*relation.Column, 0, workloadCols+1)
	cols = append(cols, relation.NewCategoricalColumn("Region", region))
	// Each column depends weakly on a shared latent value so the G tests do
	// real work (non-degenerate tables) while staying deterministic.
	latent := make([]int, workloadRows)
	for i := range latent {
		latent[i] = rng.Intn(workloadLevels)
	}
	for c := 0; c < workloadCols; c++ {
		vals := make([]string, workloadRows)
		for i := range vals {
			v := rng.Intn(workloadLevels)
			if rng.Float64() < 0.25 {
				v = latent[i]
			}
			vals[i] = fmt.Sprintf("v%d", v)
		}
		cols = append(cols, relation.NewCategoricalColumn(fmt.Sprintf("C%d", c), vals))
	}
	rel, err := relation.New(cols...)
	if err != nil {
		panic(err) // impossible: equal-length generated columns
	}

	var family []sc.Approximate
	for a := 0; a < workloadCols; a++ {
		for b := a + 1; b < workloadCols; b++ {
			family = append(family, sc.Approximate{
				SC:    sc.MustParse(fmt.Sprintf("C%d _||_ C%d | Region", a, b)),
				Alpha: 0.05,
			})
		}
	}
	return &Workload{Rel: rel, Family: family}
}

// Run checks the whole family once with the given cache (nil = uncached)
// and worker count, returning the results.
func (w *Workload) Run(cache *kernel.Cache, workers int) ([]detect.Result, error) {
	return detect.CheckAll(w.Rel, w.Family, detect.BatchOptions{
		Options: detect.Options{Cache: cache},
		Workers: workers,
	})
}

// BenchResult is one benchmark measurement in BENCH_detect.json.
type BenchResult struct {
	// Name identifies the variant: checkall_cold (no cache),
	// checkall_fresh_cache (a new cache built during the measured run), or
	// checkall_warm_cache (a pre-populated cache).
	Name string `json:"name"`
	// Iters is the iteration count testing.Benchmark settled on.
	Iters       int   `json:"iters"`
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Report is the machine-readable content of BENCH_detect.json.
type Report struct {
	Seed        int64 `json:"seed"`
	Rows        int   `json:"rows"`
	Columns     int   `json:"columns"`
	Constraints int   `json:"constraints"`
	// Workers is the CheckAll pool size the benchmarks ran with.
	Workers int           `json:"workers"`
	Results []BenchResult `json:"results"`
	// SpeedupFreshVsCold is cold ns/op divided by fresh-cache ns/op: the
	// one-shot speedup a caller gets from threading a new cache through a
	// single CheckAll. This is the acceptance headline (target ≥ 2).
	SpeedupFreshVsCold float64 `json:"speedup_fresh_vs_cold"`
	// SpeedupWarmVsCold is cold ns/op divided by warm-cache ns/op: the
	// steady-state speedup of scoded-serve re-checking a registered dataset.
	SpeedupWarmVsCold float64 `json:"speedup_warm_vs_cold"`
}

// mustRun aborts on a family-level CheckAll error (impossible for the
// generated workload) so benchmarks cannot silently measure a failed run.
func (w *Workload) mustRun(cache *kernel.Cache, workers int) []detect.Result {
	results, err := w.Run(cache, workers)
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		if r.Err != nil {
			panic(r.Err)
		}
	}
	return results
}

// Bench measures the three variants with testing.Benchmark and derives the
// speedups. Workers ≤ 0 means GOMAXPROCS.
func Bench(seed int64, workers int) Report {
	w := NewWorkload(seed)
	rep := Report{
		Seed:        seed,
		Rows:        w.Rel.NumRows(),
		Columns:     len(w.Rel.Columns()),
		Constraints: len(w.Family),
		Workers:     workers,
	}
	variants := []struct {
		name string
		run  func(b *testing.B)
	}{
		{"checkall_cold", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w.mustRun(nil, workers)
			}
		}},
		{"checkall_fresh_cache", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w.mustRun(kernel.New(w.Rel), workers)
			}
		}},
		{"checkall_warm_cache", func(b *testing.B) {
			cache := kernel.New(w.Rel)
			w.mustRun(cache, workers) // populate outside the timed loop
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.mustRun(cache, workers)
			}
		}},
	}
	byName := make(map[string]BenchResult, len(variants))
	for _, v := range variants {
		r := testing.Benchmark(v.run)
		br := BenchResult{
			Name:        v.name,
			Iters:       r.N,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		rep.Results = append(rep.Results, br)
		byName[v.name] = br
	}
	cold := float64(byName["checkall_cold"].NsPerOp)
	if fresh := byName["checkall_fresh_cache"].NsPerOp; fresh > 0 {
		rep.SpeedupFreshVsCold = cold / float64(fresh)
	}
	if warm := byName["checkall_warm_cache"].NsPerOp; warm > 0 {
		rep.SpeedupWarmVsCold = cold / float64(warm)
	}
	return rep
}
