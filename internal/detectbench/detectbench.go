// Package detectbench defines the reproducible CheckAll workload behind the
// kernel-cache performance trajectory: cmd/scoded-bench -json and the
// benchmarks in internal/detect both run exactly this workload, so the
// committed BENCH_detect.json numbers and `go test -bench` agree on what is
// being measured.
//
// The workload is the shape the kernel cache targets (ISSUE: ≥20 constraints
// sharing attributes): every pair of a handful of categorical columns,
// conditioned on one shared stratification column, so partitions, codings
// and tables are recomputed per constraint without a cache and computed once
// with one.
package detectbench

import (
	"fmt"
	"math/rand"
	"testing"

	"scoded/internal/detect"
	"scoded/internal/kernel"
	"scoded/internal/relation"
	"scoded/internal/sc"
)

// Workload is one reproducible CheckAll input: a relation plus a constraint
// family over it.
type Workload struct {
	Rel    *relation.Relation
	Family []sc.Approximate
}

// workload dimensions; see NewWorkload.
const (
	workloadRows   = 20000
	workloadCols   = 7  // pairwise → C(7,2) = 21 constraints, ≥ the 20 target
	workloadLevels = 8  // categories per tested column
	workloadStrata = 12 // categories of the shared conditioning column
)

// NewWorkload builds the canonical benchmark workload for a seed: 20000
// rows, seven 8-level categorical columns with mild pairwise dependence,
// one 12-level conditioning column, and the 21 constraints
// "Ci _||_ Cj | Region" over every column pair.
func NewWorkload(seed int64) *Workload {
	rng := rand.New(rand.NewSource(seed))
	region := make([]string, workloadRows)
	for i := range region {
		region[i] = fmt.Sprintf("r%d", rng.Intn(workloadStrata))
	}
	cols := make([]*relation.Column, 0, workloadCols+1)
	cols = append(cols, relation.NewCategoricalColumn("Region", region))
	// Each column depends weakly on a shared latent value so the G tests do
	// real work (non-degenerate tables) while staying deterministic.
	latent := make([]int, workloadRows)
	for i := range latent {
		latent[i] = rng.Intn(workloadLevels)
	}
	for c := 0; c < workloadCols; c++ {
		vals := make([]string, workloadRows)
		for i := range vals {
			v := rng.Intn(workloadLevels)
			if rng.Float64() < 0.25 {
				v = latent[i]
			}
			vals[i] = fmt.Sprintf("v%d", v)
		}
		cols = append(cols, relation.NewCategoricalColumn(fmt.Sprintf("C%d", c), vals))
	}
	rel, err := relation.New(cols...)
	if err != nil {
		panic(err) // impossible: equal-length generated columns
	}

	var family []sc.Approximate
	for a := 0; a < workloadCols; a++ {
		for b := a + 1; b < workloadCols; b++ {
			family = append(family, sc.Approximate{
				SC:    sc.MustParse(fmt.Sprintf("C%d _||_ C%d | Region", a, b)),
				Alpha: 0.05,
			})
		}
	}
	return &Workload{Rel: rel, Family: family}
}

// Run checks the whole family once with the given cache (nil = uncached)
// and worker count, returning the results.
func (w *Workload) Run(cache *kernel.Cache, workers int) ([]detect.Result, error) {
	return w.RunOn(w.Rel, cache, workers)
}

// RunOn checks the family against an arbitrary relation snapshot — the
// base workload or an appended-to version of it.
func (w *Workload) RunOn(rel *relation.Relation, cache *kernel.Cache, workers int) ([]detect.Result, error) {
	return detect.CheckAll(rel, w.Family, detect.BatchOptions{
		Options: detect.Options{Cache: cache},
		Workers: workers,
	})
}

// appendRows is the batch size of the checkall_after_append variant: small
// against workloadRows, the shape of a streaming ingest tick.
const appendRows = 200

// AppendBatch generates an append batch confined to a single stratum
// ("r0"): the incremental-invalidation best case, where every other
// stratum's cache entries stay warm across the append.
func (w *Workload) AppendBatch(seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	cols := make([]*relation.Column, 0, workloadCols+1)
	region := make([]string, appendRows)
	for i := range region {
		region[i] = "r0"
	}
	cols = append(cols, relation.NewCategoricalColumn("Region", region))
	for c := 0; c < workloadCols; c++ {
		vals := make([]string, appendRows)
		for i := range vals {
			vals[i] = fmt.Sprintf("v%d", rng.Intn(workloadLevels))
		}
		cols = append(cols, relation.NewCategoricalColumn(fmt.Sprintf("C%d", c), vals))
	}
	batch, err := relation.New(cols...)
	if err != nil {
		panic(err) // impossible: equal-length generated columns
	}
	return batch
}

// BenchResult is one benchmark measurement in BENCH_detect.json.
type BenchResult struct {
	// Name identifies the variant: checkall_cold (no cache),
	// checkall_fresh_cache (a new cache built during the measured run),
	// checkall_warm_cache (a pre-populated cache), or
	// checkall_after_append (a pre-populated cache advanced across a
	// single-stratum append — segment-versioned invalidation keeps the
	// untouched strata warm).
	Name string `json:"name"`
	// Iters is the iteration count testing.Benchmark settled on.
	Iters       int   `json:"iters"`
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Report is the machine-readable content of BENCH_detect.json.
type Report struct {
	Seed        int64 `json:"seed"`
	Rows        int   `json:"rows"`
	Columns     int   `json:"columns"`
	Constraints int   `json:"constraints"`
	// Workers is the CheckAll pool size the benchmarks ran with.
	Workers int           `json:"workers"`
	Results []BenchResult `json:"results"`
	// SpeedupFreshVsCold is cold ns/op divided by fresh-cache ns/op: the
	// one-shot speedup a caller gets from threading a new cache through a
	// single CheckAll. This is the acceptance headline (target ≥ 2).
	SpeedupFreshVsCold float64 `json:"speedup_fresh_vs_cold"`
	// SpeedupWarmVsCold is cold ns/op divided by warm-cache ns/op: the
	// steady-state speedup of scoded-serve re-checking a registered dataset.
	SpeedupWarmVsCold float64 `json:"speedup_warm_vs_cold"`
	// SpeedupAppendVsCold is cold ns/op divided by after-append ns/op: the
	// first checkall after an append to one stratum, where per-stratum
	// version inheritance keeps every other stratum's entries warm. Without
	// incremental invalidation this would equal the fresh-cache number;
	// with it, it approaches the warm number.
	SpeedupAppendVsCold float64 `json:"speedup_append_vs_cold"`
}

// mustRun aborts on a family-level CheckAll error (impossible for the
// generated workload) so benchmarks cannot silently measure a failed run.
func (w *Workload) mustRun(cache *kernel.Cache, workers int) []detect.Result {
	results, err := w.Run(cache, workers)
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		if r.Err != nil {
			panic(r.Err)
		}
	}
	return results
}

// Bench measures the three variants with testing.Benchmark and derives the
// speedups. Workers ≤ 0 means GOMAXPROCS.
func Bench(seed int64, workers int) Report {
	w := NewWorkload(seed)
	rep := Report{
		Seed:        seed,
		Rows:        w.Rel.NumRows(),
		Columns:     len(w.Rel.Columns()),
		Constraints: len(w.Family),
		Workers:     workers,
	}
	variants := []struct {
		name string
		run  func(b *testing.B)
	}{
		{"checkall_cold", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w.mustRun(nil, workers)
			}
		}},
		{"checkall_fresh_cache", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w.mustRun(kernel.New(w.Rel), workers)
			}
		}},
		{"checkall_warm_cache", func(b *testing.B) {
			cache := kernel.New(w.Rel)
			w.mustRun(cache, workers) // populate outside the timed loop
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.mustRun(cache, workers)
			}
		}},
		{"checkall_after_append", func(b *testing.B) {
			batch := w.AppendBatch(seed + 1)
			grown, err := w.Rel.AppendRows(batch)
			if err != nil {
				panic(err)
			}
			// Each iteration measures the FIRST checkall after an append:
			// warm the cache at version 1 off the clock, advance it across
			// the append, then time the run against the grown relation.
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cache := kernel.NewAt(w.Rel, 1)
				w.mustRun(cache, workers)
				advanced := cache.Advance(grown, 2)
				b.StartTimer()
				results, err := w.RunOn(grown, advanced, workers)
				if err != nil {
					panic(err)
				}
				for _, r := range results {
					if r.Err != nil {
						panic(r.Err)
					}
				}
			}
		}},
	}
	byName := make(map[string]BenchResult, len(variants))
	for _, v := range variants {
		r := testing.Benchmark(v.run)
		br := BenchResult{
			Name:        v.name,
			Iters:       r.N,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		rep.Results = append(rep.Results, br)
		byName[v.name] = br
	}
	cold := float64(byName["checkall_cold"].NsPerOp)
	if fresh := byName["checkall_fresh_cache"].NsPerOp; fresh > 0 {
		rep.SpeedupFreshVsCold = cold / float64(fresh)
	}
	if warm := byName["checkall_warm_cache"].NsPerOp; warm > 0 {
		rep.SpeedupWarmVsCold = cold / float64(warm)
	}
	if app := byName["checkall_after_append"].NsPerOp; app > 0 {
		rep.SpeedupAppendVsCold = cold / float64(app)
	}
	return rep
}
