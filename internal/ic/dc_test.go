package ic

import (
	"testing"

	"scoded/internal/relation"
)

func sensorRelation() *relation.Relation {
	return relation.MustNew(
		relation.NewNumericColumn("T8", []float64{20, 21, 22, 23}),
		relation.NewNumericColumn("T9", []float64{20.5, 21.5, 19.0, 23.5}),
	)
}

func TestMonotoneDCViolations(t *testing.T) {
	d := sensorRelation()
	dc := MonotoneDC("T8", "T9")
	// Row 2 (T8=22, T9=19) breaks the co-monotone pattern: pairs (2,0),
	// (2,1) have r1.T8 > r2.T8 but r1.T9 <= r2.T9.
	counts, err := dc.Violations(d)
	if err != nil {
		t.Fatal(err)
	}
	if counts[2] == 0 {
		t.Errorf("the outlier row should participate in violations: %v", counts)
	}
	if counts[2] <= counts[3] {
		t.Errorf("outlier should out-violate the clean row: %v", counts)
	}
	holds, err := dc.Holds(d)
	if err != nil {
		t.Fatal(err)
	}
	if holds {
		t.Error("DC should be violated")
	}
}

func TestMonotoneDCCleanData(t *testing.T) {
	d := relation.MustNew(
		relation.NewNumericColumn("A", []float64{1, 2, 3}),
		relation.NewNumericColumn("B", []float64{10, 20, 30}),
	)
	dc := MonotoneDC("A", "B")
	holds, err := dc.Holds(d)
	if err != nil {
		t.Fatal(err)
	}
	if !holds {
		t.Error("perfectly co-monotone data should satisfy the DC")
	}
	counts, _ := dc.Violations(d)
	for i, c := range counts {
		if c != 0 {
			t.Errorf("counts[%d] = %d", i, c)
		}
	}
}

func TestConditionalMonotoneDC(t *testing.T) {
	d := relation.MustNew(
		relation.NewNumericColumn("C", []float64{1, 1, 2, 2}),
		relation.NewNumericColumn("A", []float64{1, 2, 1, 2}),
		relation.NewNumericColumn("B", []float64{10, 20, 20, 10}),
	)
	dc := ConditionalMonotoneDC("C", "A", "B")
	counts, err := dc.Violations(d)
	if err != nil {
		t.Fatal(err)
	}
	// Group C=1 is monotone; group C=2 has the violation (3,2).
	if counts[0] != 0 || counts[1] != 0 {
		t.Errorf("clean group rows should have 0 violations: %v", counts)
	}
	if counts[2] == 0 || counts[3] == 0 {
		t.Errorf("violating pair rows should be counted: %v", counts)
	}
}

func TestDCValidation(t *testing.T) {
	d := relation.MustNew(
		relation.NewCategoricalColumn("City", []string{"A", "B"}),
		relation.NewNumericColumn("Pop", []float64{1, 2}),
	)
	if err := (DC{}).Validate(d); err == nil {
		t.Error("want error for empty DC")
	}
	bad := DC{Preds: []Pred{{Left: "City", Op: Gt, Right: "City"}}}
	if err := bad.Validate(d); err == nil {
		t.Error("want error for ordered op on categorical column")
	}
	missing := DC{Preds: []Pred{{Left: "Nope", Op: Eq, Right: "City"}}}
	if err := missing.Validate(d); err == nil {
		t.Error("want error for missing column")
	}
	ok := DC{Preds: []Pred{{Left: "City", Op: Eq, Right: "City"}, {Left: "Pop", Op: Neq, Right: "Pop"}}}
	if err := ok.Validate(d); err != nil {
		t.Errorf("valid DC rejected: %v", err)
	}
}

func TestFDToDC(t *testing.T) {
	d := relation.MustNew(
		relation.NewCategoricalColumn("Zip", []string{"1", "1", "2"}),
		relation.NewCategoricalColumn("City", []string{"A", "B", "C"}),
	)
	dc, err := FDToDC(FD{LHS: []string{"Zip"}, RHS: []string{"City"}})
	if err != nil {
		t.Fatal(err)
	}
	counts, err := dc.Violations(d)
	if err != nil {
		t.Fatal(err)
	}
	// Rows 0 and 1 share Zip but differ in City: each in 2 ordered
	// violations (both orders), row 2 in none.
	if counts[0] == 0 || counts[1] == 0 || counts[2] != 0 {
		t.Errorf("counts = %v", counts)
	}
	if _, err := FDToDC(FD{LHS: []string{"A", "B"}, RHS: []string{"C"}}); err == nil {
		t.Error("want error for multi-column FD")
	}
}

func TestDCStringForms(t *testing.T) {
	dc := MonotoneDC("A", "B")
	if dc.String() == "" {
		t.Error("empty String")
	}
	for _, op := range []Op{Eq, Neq, Lt, Le, Gt, Ge} {
		if op.String() == "" {
			t.Errorf("op %d renders empty", int(op))
		}
	}
	if Op(42).String() == "" {
		t.Error("unknown op should render")
	}
}

func TestDCMixedKindEquality(t *testing.T) {
	// Eq/Neq across kinds compares the string forms.
	d := relation.MustNew(
		relation.NewCategoricalColumn("A", []string{"1", "2"}),
		relation.NewNumericColumn("B", []float64{1, 3}),
	)
	dc := DC{Preds: []Pred{{Left: "A", Op: Eq, Right: "B"}}}
	counts, err := dc.Violations(d)
	if err != nil {
		t.Fatal(err)
	}
	// Pair (0 as r1, ? as r2): r1.A="1", r2.B="1" matches for j=0? No:
	// pairs need i != j. r1=row1 ("2") vs r2 row0 (B=1): no. r1=row0 ("1")
	// vs r2=row1 (B=3): no. So zero violations... build a matching pair:
	d2 := relation.MustNew(
		relation.NewCategoricalColumn("A", []string{"1", "3"}),
		relation.NewNumericColumn("B", []float64{3, 1}),
	)
	counts, err = dc.Violations(d2)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Errorf("cross-kind equality should match string forms: %v", counts)
	}
}
