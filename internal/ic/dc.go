package ic

import (
	"fmt"
	"strings"

	"scoded/internal/relation"
)

// Op is a comparison operator in a denial-constraint predicate.
type Op int

const (
	Eq Op = iota
	Neq
	Lt
	Le
	Gt
	Ge
)

// String renders the operator symbol.
func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Neq:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Pred is a predicate comparing a column of the first record against a
// column of the second: r1[Left] op r2[Right].
type Pred struct {
	Left  string
	Op    Op
	Right string
}

// String renders "r1.A > r2.B".
func (p Pred) String() string {
	return fmt.Sprintf("r1.%s %s r2.%s", p.Left, p.Op, p.Right)
}

// DC is a denial constraint ∀ r1, r2 ∈ D, r1 ≠ r2: ¬(p1 ∧ … ∧ pm) — the
// constraint language of the DCDetect baseline (Chu et al.). A record pair
// that satisfies every predicate is a violation.
type DC struct {
	Preds []Pred
}

// String renders the constraint in the paper's Table 3 style.
func (dc DC) String() string {
	parts := make([]string, len(dc.Preds))
	for i, p := range dc.Preds {
		parts[i] = p.String()
	}
	return "forall r1,r2: not(" + strings.Join(parts, " and ") + ")"
}

// Validate checks the constraint shape against a relation: predicates must
// reference existing columns, and ordered operators require numeric columns.
func (dc DC) Validate(d *relation.Relation) error {
	if len(dc.Preds) == 0 {
		return fmt.Errorf("ic: DC needs at least one predicate")
	}
	for _, p := range dc.Preds {
		for _, col := range []string{p.Left, p.Right} {
			c, err := d.Column(col)
			if err != nil {
				return fmt.Errorf("ic: DC %s: %w", dc, err)
			}
			if p.Op != Eq && p.Op != Neq && c.Kind != relation.Numeric {
				return fmt.Errorf("ic: DC %s: ordered comparison on categorical column %q", dc, col)
			}
		}
	}
	return nil
}

// holdsPair reports whether the ordered record pair (i, j) satisfies all
// predicates — i.e. constitutes a violation.
func (dc DC) holdsPair(d *relation.Relation, i, j int) bool {
	for _, p := range dc.Preds {
		if !evalPred(d, p, i, j) {
			return false
		}
	}
	return true
}

func evalPred(d *relation.Relation, p Pred, i, j int) bool {
	lc := d.MustColumn(p.Left)
	rc := d.MustColumn(p.Right)
	if lc.Kind == relation.Numeric && rc.Kind == relation.Numeric {
		l, r := lc.Value(i), rc.Value(j)
		switch p.Op {
		case Eq:
			//scoded:lint-ignore floatcmp denial-constraint Eq is defined as exact cell equality
			return l == r
		case Neq:
			//scoded:lint-ignore floatcmp denial-constraint Neq is defined as exact cell inequality
			return l != r
		case Lt:
			return l < r
		case Le:
			return l <= r
		case Gt:
			return l > r
		default:
			return l >= r
		}
	}
	l, r := lc.StringAt(i), rc.StringAt(j)
	switch p.Op {
	case Eq:
		return l == r
	case Neq:
		return l != r
	default:
		// Validate rejects ordered ops on categorical columns.
		return false
	}
}

// Holds reports whether the relation satisfies the constraint (no violating
// pair).
func (dc DC) Holds(d *relation.Relation) (bool, error) {
	if err := dc.Validate(d); err != nil {
		return false, err
	}
	n := d.NumRows()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && dc.holdsPair(d, i, j) {
				return false, nil
			}
		}
	}
	return true, nil
}

// FDToDC translates an FD X → Y into the equivalent denial constraint
// ∀r1,r2: ¬(r1[X]=r2[X] ∧ r1[Y]≠r2[Y]), for single-column X and Y.
func FDToDC(f FD) (DC, error) {
	if len(f.LHS) != 1 || len(f.RHS) != 1 {
		return DC{}, fmt.Errorf("ic: FDToDC supports single-column FDs, got %s", f)
	}
	return DC{Preds: []Pred{
		{Left: f.LHS[0], Op: Eq, Right: f.LHS[0]},
		{Left: f.RHS[0], Op: Neq, Right: f.RHS[0]},
	}}, nil
}

// MonotoneDC builds the Table 3 style monotonicity constraint for a
// dependence between numeric columns A and B:
// ∀r1,r2: ¬(r1[A] > r2[A] ∧ r1[B] <= r2[B]).
func MonotoneDC(a, b string) DC {
	return DC{Preds: []Pred{
		{Left: a, Op: Gt, Right: a},
		{Left: b, Op: Le, Right: b},
	}}
}

// CrossMonotoneDC builds the exact sensor constraint of the paper's Table 3
// for a dependence between neighbouring sensor readings A and B:
// ∀r1,r2: ¬(r1[A] > r2[B] ∧ r1[B] <= r2[B]). Note the deliberate
// cross-column comparison r1[A] > r2[B]: with per-sensor calibration
// offsets this premise fires on many clean record pairs, which is why the
// paper finds the IC "did not always hold, which led to many false
// positives" for DCDetect.
func CrossMonotoneDC(a, b string) DC {
	return DC{Preds: []Pred{
		{Left: a, Op: Gt, Right: b},
		{Left: b, Op: Le, Right: b},
	}}
}

// ConditionalMonotoneDC builds the conditional variant of Table 3:
// ∀r1,r2: ¬(r1[C]=r2[C] ∧ r1[A] > r2[A] ∧ r1[B] <= r2[B]).
func ConditionalMonotoneDC(c, a, b string) DC {
	return DC{Preds: []Pred{
		{Left: c, Op: Eq, Right: c},
		{Left: a, Op: Gt, Right: a},
		{Left: b, Op: Le, Right: b},
	}}
}
