package ic

import (
	"sort"

	"scoded/internal/relation"
	"scoded/internal/segtree"
)

// Fast violation counting for denial constraints whose predicates are
// (a) equality self-joins (r1[C] = r2[C]) — handled by grouping — plus
// (b) at most two ordered comparisons. All three Table 3 constraint shapes
// (MonotoneDC, CrossMonotoneDC, ConditionalMonotoneDC) fit this form, so
// DCDetect's counting drops from O(n²) to O(n log n): per record, the set
// of partners satisfying two ordered predicates is a 2-D dominance query,
// answered offline with a plane sweep over one dimension and a Fenwick
// tree over the other.

// fastEligible reports whether the fast path applies.
func (dc DC) fastEligible() bool {
	ordered := 0
	for _, p := range dc.Preds {
		switch p.Op {
		case Eq:
			if p.Left != p.Right {
				return false
			}
		case Neq:
			return false
		default:
			ordered++
		}
	}
	return ordered >= 1 && ordered <= 2
}

// Violations counts, for each record, the number of ordered pairs it
// participates in that violate the constraint, dispatching to the
// O(n log n) dominance-counting path when the constraint shape allows and
// falling back to the exhaustive scan otherwise.
func (dc DC) Violations(d *relation.Relation) ([]int, error) {
	if err := dc.Validate(d); err != nil {
		return nil, err
	}
	if dc.fastEligible() {
		return dc.violationsFast(d)
	}
	return dc.violationsNaive(d)
}

// violationsNaive is the exhaustive O(n²) reference implementation.
func (dc DC) violationsNaive(d *relation.Relation) ([]int, error) {
	n := d.NumRows()
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if dc.holdsPair(d, i, j) {
				counts[i]++
				counts[j]++
			}
		}
	}
	return counts, nil
}

// violationsFast groups rows on the equality predicates and runs the
// dominance counting within each group.
func (dc DC) violationsFast(d *relation.Relation) ([]int, error) {
	var eqCols []string
	var ordered []Pred
	for _, p := range dc.Preds {
		if p.Op == Eq {
			eqCols = append(eqCols, p.Left)
		} else {
			ordered = append(ordered, p)
		}
	}
	counts := make([]int, d.NumRows())
	groups := [][]int{}
	if len(eqCols) == 0 {
		rows := make([]int, d.NumRows())
		for i := range rows {
			rows[i] = i
		}
		groups = append(groups, rows)
	} else {
		byKey := d.GroupBy(eqCols)
		for _, k := range relation.SortedGroupKeys(byKey) {
			groups = append(groups, byKey[k])
		}
	}
	for _, rows := range groups {
		if err := countOrderedViolations(d, ordered, rows, counts); err != nil {
			return nil, err
		}
	}
	return counts, nil
}

// countOrderedViolations adds, for every row in the group, the number of
// group partners j such that the ordered predicates hold for the pair
// (r1=row, r2=j) — counted from both endpoints' perspectives.
func countOrderedViolations(d *relation.Relation, preds []Pred, rows []int, counts []int) error {
	m := len(rows)
	if m < 2 {
		return nil
	}
	// Each ordered predicate l_p(r1) op r_p(r2) is normalized so that it
	// reads "point ⋖ threshold", where the point is the partner's value
	// and the threshold the fixed record's:
	//
	//   role r1 = i (partner j supplies r_p):
	//     l > r  ⇔ r < l           l >= r ⇔ r <= l
	//     l < r  ⇔ -r < -l         l <= r ⇔ -r <= -l
	//   role r2 = i (partner j supplies l_p):
	//     l > r  ⇔ -l < -r         l >= r ⇔ -l <= -r
	//     l < r  ⇔ l < r           l <= r ⇔ l <= r
	//
	// Negation preserves strictness, so the sweep only needs a strict
	// flag per dimension.
	buildDims := func(asR1 bool) ([]dim, error) {
		dims := make([]dim, len(preds))
		for pi, p := range preds {
			lc, err := d.Column(p.Left)
			if err != nil {
				return nil, err
			}
			rc, err := d.Column(p.Right)
			if err != nil {
				return nil, err
			}
			var points, thresholds []float64
			for _, r := range rows {
				if asR1 {
					points = append(points, rc.Value(r))
					thresholds = append(thresholds, lc.Value(r))
				} else {
					points = append(points, lc.Value(r))
					thresholds = append(thresholds, rc.Value(r))
				}
			}
			dd := dim{point: points, threshold: thresholds}
			var flip bool
			switch p.Op {
			case Gt:
				dd.strict, flip = true, !asR1
			case Ge:
				dd.strict, flip = false, !asR1
			case Lt:
				dd.strict, flip = true, asR1
			case Le:
				dd.strict, flip = false, asR1
			}
			if flip {
				for i := range dd.point {
					dd.point[i] = -dd.point[i]
					dd.threshold[i] = -dd.threshold[i]
				}
			}
			dims[pi] = dd
		}
		return dims, nil
	}

	for _, asR1 := range []bool{true, false} {
		dims, err := buildDims(asR1)
		if err != nil {
			return err
		}
		var per []int64
		if len(dims) == 1 {
			per = count1D(dims[0])
		} else {
			per = count2D(dims[0], dims[1])
		}
		for gi, r := range rows {
			c := per[gi]
			// Exclude the self-pair when (i, i) satisfies every predicate.
			self := true
			for _, dd := range dims {
				if dd.strict {
					if !(dd.point[gi] < dd.threshold[gi]) {
						self = false
					}
				} else if !(dd.point[gi] <= dd.threshold[gi]) {
					self = false
				}
			}
			if self {
				c--
			}
			counts[r] += int(c)
		}
	}
	return nil
}

// dim is one normalized constraint dimension: per group row, the value it
// contributes as a partner (point) and the value it queries with
// (threshold), under a strict or non-strict "less than".
type dim struct {
	point     []float64
	threshold []float64
	strict    bool
}

// count1D returns, per group index, the number of points satisfying the
// single normalized constraint point ⋖ threshold[i].
func count1D(dd dim) []int64 {
	sorted := append([]float64(nil), dd.point...)
	sort.Float64s(sorted)
	out := make([]int64, len(dd.point))
	for i, t := range dd.threshold {
		var idx int
		if dd.strict {
			idx = sort.SearchFloat64s(sorted, t) // first >= t ⇒ count of < t
		} else {
			idx = sort.Search(len(sorted), func(k int) bool { return sorted[k] > t })
		}
		out[i] = int64(idx)
	}
	return out
}

// count2D answers the dominance queries offline: sweep group entries in
// ascending dim-a threshold order, inserting points whose dim-a value has
// become eligible into a Fenwick tree keyed by dim-b rank, then range-count
// the dim-b constraint.
func count2D(a, b dim) []int64 {
	m := len(a.point)
	// Rank-compress dim-b points.
	bSorted := append([]float64(nil), b.point...)
	sort.Float64s(bSorted)
	uniq := bSorted[:0]
	for i, v := range bSorted {
		//scoded:lint-ignore floatcmp deduplicating sorted values requires exact equality
		if i == 0 || v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	rankOf := func(v float64) int { return sort.SearchFloat64s(uniq, v) }

	// Points sorted by dim-a value; queries by dim-a threshold.
	pIdx := make([]int, m)
	qIdx := make([]int, m)
	for i := range pIdx {
		pIdx[i] = i
		qIdx[i] = i
	}
	sort.Slice(pIdx, func(x, y int) bool { return a.point[pIdx[x]] < a.point[pIdx[y]] })
	sort.Slice(qIdx, func(x, y int) bool { return a.threshold[qIdx[x]] < a.threshold[qIdx[y]] })

	tree := segtree.NewFenwick(len(uniq))
	out := make([]int64, m)
	pi := 0
	for _, q := range qIdx {
		t := a.threshold[q]
		for pi < m {
			v := a.point[pIdx[pi]]
			if (a.strict && v < t) || (!a.strict && v <= t) {
				tree.Insert(rankOf(b.point[pIdx[pi]]), 1)
				pi++
			} else {
				break
			}
		}
		// Count inserted points meeting the dim-b constraint.
		bt := b.threshold[q]
		var hi int
		if b.strict {
			hi = sort.SearchFloat64s(uniq, bt) - 1 // last value < bt
		} else {
			hi = sort.Search(len(uniq), func(k int) bool { return uniq[k] > bt }) - 1
		}
		if hi >= 0 {
			out[q] = tree.Query(0, hi)
		}
	}
	return out
}
