// Package ic implements the integrity constraints the paper relates to
// statistical constraints in Section 2.2 — functional dependencies (FDs),
// multi-valued dependencies (MVDs), embedded multi-valued dependencies
// (EMVDs), and denial constraints (DCs) — together with exact checkers over
// relations and the entailment translations of Table 1:
//
//	FD  X → Y        ⇒  MVD X ↠ Y  ⇔  saturated ISC  Y ⊥ (X∪Y)^C | X
//	ISC Y ⊥ Z | X    ⇒  EMVD X ↠ Y | Z              (Proposition 1)
//	FD  X → Y        ⇒  MI-maximal DSC X ⊥̸ Y        (Proposition 2)
package ic

import (
	"fmt"
	"sort"
	"strings"

	"scoded/internal/relation"
	"scoded/internal/sc"
)

// FD is a functional dependency LHS → RHS (Definition 2).
type FD struct {
	LHS, RHS []string
}

// String renders "A,B -> C".
func (f FD) String() string {
	return strings.Join(f.LHS, ",") + " -> " + strings.Join(f.RHS, ",")
}

// Validate checks the FD shape.
func (f FD) Validate() error {
	if len(f.LHS) == 0 || len(f.RHS) == 0 {
		return fmt.Errorf("ic: FD needs non-empty LHS and RHS: %s", f)
	}
	return nil
}

// validateAgainst checks the FD shape and that the relation has every
// referenced column.
func (f FD) validateAgainst(d *relation.Relation) error {
	if err := f.Validate(); err != nil {
		return err
	}
	for _, c := range append(append([]string(nil), f.LHS...), f.RHS...) {
		if !d.HasColumn(c) {
			return fmt.Errorf("ic: relation lacks column %q for FD %s", c, f)
		}
	}
	return nil
}

// Holds reports whether the relation satisfies the FD exactly: any two
// records agreeing on LHS agree on RHS.
func (f FD) Holds(d *relation.Relation) (bool, error) {
	if err := f.validateAgainst(d); err != nil {
		return false, err
	}
	seen := make(map[string]string)
	for i := 0; i < d.NumRows(); i++ {
		l := d.RowKey(i, f.LHS)
		r := d.RowKey(i, f.RHS)
		if prev, ok := seen[l]; ok {
			if prev != r {
				return false, nil
			}
		} else {
			seen[l] = r
		}
	}
	return true, nil
}

// ViolationCounts returns, for each record, the number of other records it
// disagrees with under the FD (same LHS, different RHS). This is the ranking
// signal the AFD baseline and DCDetect use.
func (f FD) ViolationCounts(d *relation.Relation) ([]int, error) {
	if err := f.validateAgainst(d); err != nil {
		return nil, err
	}
	n := d.NumRows()
	counts := make([]int, n)
	// Group by LHS; within a group, a record with RHS value v conflicts
	// with every group member holding a different RHS value.
	groups := d.GroupBy(f.LHS)
	for _, rows := range groups {
		rhsCount := make(map[string]int)
		for _, r := range rows {
			rhsCount[d.RowKey(r, f.RHS)]++
		}
		total := len(rows)
		for _, r := range rows {
			counts[r] = total - rhsCount[d.RowKey(r, f.RHS)]
		}
	}
	return counts, nil
}

// ApproximationRatio returns the g3-style approximation ratio of the FD: the
// minimum fraction of records that must be removed for the FD to hold
// exactly. Within each LHS group the records outside the majority RHS class
// must go.
func (f FD) ApproximationRatio(d *relation.Relation) (float64, error) {
	if err := f.validateAgainst(d); err != nil {
		return 0, err
	}
	n := d.NumRows()
	if n == 0 {
		return 0, nil
	}
	remove := 0
	for _, rows := range d.GroupBy(f.LHS) {
		rhsCount := make(map[string]int)
		for _, r := range rows {
			rhsCount[d.RowKey(r, f.RHS)]++
		}
		max := 0
		for _, c := range rhsCount {
			if c > max {
				max = c
			}
		}
		remove += len(rows) - max
	}
	return float64(remove) / float64(n), nil
}

// ToDSC translates the FD into the dependence SC of Proposition 2:
// X ⊥̸ Y of maximal mutual-information strength. The paper uses this
// translation to run SCODED drill-down on an approximate FD.
func (f FD) ToDSC() sc.SC {
	return sc.Dependence(f.LHS, f.RHS, nil)
}

// EMVD is an embedded multi-valued dependency X ↠ Y | Z (Definition 3).
type EMVD struct {
	X, Y, Z []string
}

// String renders "X ->> Y | Z".
func (e EMVD) String() string {
	return strings.Join(e.X, ",") + " ->> " + strings.Join(e.Y, ",") + " | " + strings.Join(e.Z, ",")
}

// Validate checks that the three sets are non-empty and disjoint.
func (e EMVD) Validate() error {
	if len(e.X) == 0 || len(e.Y) == 0 || len(e.Z) == 0 {
		return fmt.Errorf("ic: EMVD needs non-empty X, Y, Z: %s", e)
	}
	seen := make(map[string]bool)
	for _, c := range append(append(append([]string(nil), e.X...), e.Y...), e.Z...) {
		if seen[c] {
			return fmt.Errorf("ic: EMVD sets must be disjoint, %q repeats in %s", c, e)
		}
		seen[c] = true
	}
	return nil
}

// Holds checks the EMVD by Definition 3: Π_XYZ(D) = Π_XY(D) ⋈ Π_XZ(D).
func (e EMVD) Holds(d *relation.Relation) (bool, error) {
	if err := e.Validate(); err != nil {
		return false, err
	}
	all := append(append(append([]string(nil), e.X...), e.Y...), e.Z...)
	for _, c := range all {
		if !d.HasColumn(c) {
			return false, fmt.Errorf("ic: relation lacks column %q for EMVD %s", c, e)
		}
	}
	xyz, err := d.Project(all...)
	if err != nil {
		return false, err
	}
	xy, err := d.Project(append(append([]string(nil), e.X...), e.Y...)...)
	if err != nil {
		return false, err
	}
	xz, err := d.Project(append(append([]string(nil), e.X...), e.Z...)...)
	if err != nil {
		return false, err
	}
	j, err := relation.NaturalJoin(xy, xz)
	if err != nil {
		return false, err
	}
	return relation.EqualAsSets(j, xyz), nil
}

// MVD is a multi-valued dependency X ↠ Y: the saturated special case of an
// EMVD whose Z is the complement of X ∪ Y in the relation schema.
type MVD struct {
	X, Y []string
}

// String renders "X ->> Y".
func (m MVD) String() string {
	return strings.Join(m.X, ",") + " ->> " + strings.Join(m.Y, ",")
}

// Holds checks the MVD against the relation by expanding it to the
// saturated EMVD over the relation's schema. If the complement is empty, the
// MVD holds trivially.
func (m MVD) Holds(d *relation.Relation) (bool, error) {
	if len(m.X) == 0 || len(m.Y) == 0 {
		return false, fmt.Errorf("ic: MVD needs non-empty X and Y: %s", m)
	}
	z := complementOf(d, append(append([]string(nil), m.X...), m.Y...))
	if len(z) == 0 {
		return true, nil
	}
	return EMVD{X: m.X, Y: m.Y, Z: z}.Holds(d)
}

// ToSaturatedISC translates the MVD X ↠ Y into the equivalent saturated ISC
// Y ⊥ (X∪Y)^C | X over the given relation schema (Table 1, row 2).
func (m MVD) ToSaturatedISC(d *relation.Relation) (sc.SC, error) {
	z := complementOf(d, append(append([]string(nil), m.X...), m.Y...))
	if len(z) == 0 {
		return sc.SC{}, fmt.Errorf("ic: MVD %s is trivial on this schema (empty complement)", m)
	}
	return sc.Independence(m.Y, z, m.X), nil
}

// ISCToEMVD translates an independence SC Y ⊥ Z | X into the EMVD
// X ↠ Y | Z it entails (Proposition 1). The ISC must be conditional.
func ISCToEMVD(c sc.SC) (EMVD, error) {
	if c.Dependence {
		return EMVD{}, fmt.Errorf("ic: only an ISC entails an EMVD, got %s", c)
	}
	if len(c.Z) == 0 {
		return EMVD{}, fmt.Errorf("ic: ISC %s is marginal; Proposition 1 needs a conditioning set", c)
	}
	return EMVD{X: c.Z, Y: c.X, Z: c.Y}, nil
}

// SatisfiesISCExactly reports whether the empirical distribution of the
// relation satisfies the ISC exactly: P(X,Y|Z) = P(X|Z)·P(Y|Z) for every
// assignment (within tol for floating-point tolerance).
func SatisfiesISCExactly(d *relation.Relation, c sc.SC, tol float64) (bool, error) {
	if c.Dependence {
		return false, fmt.Errorf("ic: exact check applies to ISCs, got %s", c)
	}
	if err := c.Validate(); err != nil {
		return false, err
	}
	groups := groupsOrWhole(d, c.Z)
	for _, rows := range groups {
		sub := d.Subset(rows)
		joint := sub.Empirical(append(append([]string(nil), c.X...), c.Y...)...)
		px := sub.Empirical(c.X...)
		py := sub.Empirical(c.Y...)
		for key, p := range joint.Probs {
			xs, ys := splitKey(key, len(c.X))
			if diff := p - px.Probs[xs]*py.Probs[ys]; diff > tol || diff < -tol {
				return false, nil
			}
		}
		// Also check zero-probability combinations of observed marginals.
		for xk, pxv := range px.Probs {
			for yk, pyv := range py.Probs {
				joined := xk + "\x1f" + yk
				if _, ok := joint.Probs[joined]; !ok {
					if pxv*pyv > tol {
						return false, nil
					}
				}
			}
		}
	}
	return true, nil
}

func groupsOrWhole(d *relation.Relation, z []string) [][]int {
	if len(z) == 0 {
		rows := make([]int, d.NumRows())
		for i := range rows {
			rows[i] = i
		}
		return [][]int{rows}
	}
	groups := d.GroupBy(z)
	keys := relation.SortedGroupKeys(groups)
	out := make([][]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, groups[k])
	}
	return out
}

// splitKey splits a RowKey over nx+ny columns into the X part and Y part.
func splitKey(key string, nx int) (string, string) {
	parts := strings.Split(key, "\x1f")
	return strings.Join(parts[:nx], "\x1f"), strings.Join(parts[nx:], "\x1f")
}

func complementOf(d *relation.Relation, used []string) []string {
	u := make(map[string]bool, len(used))
	for _, c := range used {
		u[c] = true
	}
	var out []string
	for _, c := range d.Columns() {
		if !u[c] {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}
