package ic

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"scoded/internal/relation"
)

func randomNumericRelation(rng *rand.Rand, n int) *relation.Relation {
	a := make([]float64, n)
	b := make([]float64, n)
	g := make([]string, n)
	for i := range a {
		// Coarse values force ties, the tricky case for strict vs
		// non-strict boundaries.
		a[i] = float64(rng.Intn(6))
		b[i] = float64(rng.Intn(6))
		g[i] = strconv.Itoa(rng.Intn(3))
	}
	return relation.MustNew(
		relation.NewNumericColumn("A", a),
		relation.NewNumericColumn("B", b),
		relation.NewCategoricalColumn("G", g),
	)
}

// Every fast-eligible constraint shape must agree exactly with the naive
// O(n²) count, including heavy ties and both strict/non-strict operators.
func TestFastViolationsMatchNaive(t *testing.T) {
	shapes := []DC{
		MonotoneDC("A", "B"),
		CrossMonotoneDC("A", "B"),
		ConditionalMonotoneDC("G", "A", "B"),
		{Preds: []Pred{{Left: "A", Op: Lt, Right: "B"}}},
		{Preds: []Pred{{Left: "A", Op: Ge, Right: "A"}, {Left: "B", Op: Lt, Right: "B"}}},
		{Preds: []Pred{{Left: "B", Op: Le, Right: "A"}, {Left: "A", Op: Gt, Right: "B"}}},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomNumericRelation(rng, rng.Intn(60)+2)
		for _, dc := range shapes {
			if !dc.fastEligible() {
				return false
			}
			fast, err := dc.violationsFast(d)
			if err != nil {
				return false
			}
			naive, err := dc.violationsNaive(d)
			if err != nil {
				return false
			}
			for i := range fast {
				if fast[i] != naive[i] {
					t.Logf("mismatch on %s row %d: fast=%d naive=%d", dc, i, fast[i], naive[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFastEligibility(t *testing.T) {
	eligible := []DC{
		MonotoneDC("A", "B"),
		ConditionalMonotoneDC("G", "A", "B"),
		{Preds: []Pred{{Left: "A", Op: Lt, Right: "B"}}},
	}
	for _, dc := range eligible {
		if !dc.fastEligible() {
			t.Errorf("%s should be fast-eligible", dc)
		}
	}
	ineligible := []DC{
		// Neq predicates fall back.
		{Preds: []Pred{{Left: "A", Op: Eq, Right: "A"}, {Left: "B", Op: Neq, Right: "B"}}},
		// Cross-column equality falls back.
		{Preds: []Pred{{Left: "A", Op: Eq, Right: "B"}, {Left: "A", Op: Gt, Right: "A"}}},
		// Three ordered predicates fall back.
		{Preds: []Pred{
			{Left: "A", Op: Gt, Right: "A"},
			{Left: "B", Op: Gt, Right: "B"},
			{Left: "A", Op: Lt, Right: "B"},
		}},
		// Pure-equality constraints fall back (no ordered dimension).
		{Preds: []Pred{{Left: "G", Op: Eq, Right: "G"}}},
	}
	for _, dc := range ineligible {
		if dc.fastEligible() {
			t.Errorf("%s should NOT be fast-eligible", dc)
		}
	}
}

func TestFallbackPathStillWorks(t *testing.T) {
	// The FD-style DC (Eq + Neq) must keep working through the naive path.
	d := relation.MustNew(
		relation.NewCategoricalColumn("Zip", []string{"1", "1", "2"}),
		relation.NewCategoricalColumn("City", []string{"A", "B", "C"}),
	)
	dc, err := FDToDC(FD{LHS: []string{"Zip"}, RHS: []string{"City"}})
	if err != nil {
		t.Fatal(err)
	}
	counts, err := dc.Violations(d)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] == 0 || counts[1] == 0 || counts[2] != 0 {
		t.Errorf("counts = %v", counts)
	}
}

func TestFastViolationsLargeAgreesOnSample(t *testing.T) {
	// One big instance beyond what the quick test exercises.
	rng := rand.New(rand.NewSource(7))
	n := 1200
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = a[i] + 0.5*rng.NormFloat64()
	}
	d := relation.MustNew(
		relation.NewNumericColumn("A", a),
		relation.NewNumericColumn("B", b),
	)
	dc := CrossMonotoneDC("A", "B")
	fast, err := dc.violationsFast(d)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := dc.violationsNaive(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fast {
		if fast[i] != naive[i] {
			t.Fatalf("row %d: fast=%d naive=%d", i, fast[i], naive[i])
		}
	}
}
