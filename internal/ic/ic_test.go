package ic

import (
	"math"
	"math/rand"
	"testing"

	"scoded/internal/relation"
	"scoded/internal/sc"
	"scoded/internal/stats"
)

// table2 is the paper's Table 2: satisfies the EMVD Z ->> X | Y but
// violates the ISC X ⊥ Y | Z — the counterexample to the converse of
// Proposition 1.
func table2() *relation.Relation {
	return relation.MustNew(
		relation.NewCategoricalColumn("Z", []string{"z1", "z1", "z1", "z1", "z1", "z1"}),
		relation.NewCategoricalColumn("X", []string{"x1", "x2", "x1", "x1", "x1", "x2"}),
		relation.NewCategoricalColumn("Y", []string{"y1", "y2", "y2", "y2", "y2", "y1"}),
		relation.NewCategoricalColumn("M", []string{"m1", "m1", "m1", "m2", "m3", "m1"}),
	)
}

func TestFDHolds(t *testing.T) {
	d := relation.MustNew(
		relation.NewCategoricalColumn("Zip", []string{"97201", "97201", "97202"}),
		relation.NewCategoricalColumn("City", []string{"Portland", "Portland", "Salem"}),
	)
	ok, err := FD{LHS: []string{"Zip"}, RHS: []string{"City"}}.Holds(d)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("FD should hold")
	}
	d.MustColumn("City").SetString(1, "Eugene")
	ok, err = FD{LHS: []string{"Zip"}, RHS: []string{"City"}}.Holds(d)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("FD should be violated after the typo")
	}
}

func TestFDErrors(t *testing.T) {
	d := table2()
	if _, err := (FD{}).Holds(d); err == nil {
		t.Error("want error for empty FD")
	}
	if _, err := (FD{LHS: []string{"Nope"}, RHS: []string{"X"}}).Holds(d); err == nil {
		t.Error("want error for missing column")
	}
}

func TestFDViolationCounts(t *testing.T) {
	d := relation.MustNew(
		relation.NewCategoricalColumn("Zip", []string{"1", "1", "1", "2"}),
		relation.NewCategoricalColumn("City", []string{"A", "A", "B", "C"}),
	)
	counts, err := FD{LHS: []string{"Zip"}, RHS: []string{"City"}}.ViolationCounts(d)
	if err != nil {
		t.Fatal(err)
	}
	// Rows 0,1 (A) each conflict with row 2 (B); row 2 conflicts with both;
	// row 3 is alone.
	want := []int{1, 1, 2, 0}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("counts[%d] = %d, want %d", i, counts[i], want[i])
		}
	}
}

func TestFDApproximationRatio(t *testing.T) {
	d := relation.MustNew(
		relation.NewCategoricalColumn("Zip", []string{"1", "1", "1", "1", "2", "2"}),
		relation.NewCategoricalColumn("City", []string{"A", "A", "A", "B", "C", "C"}),
	)
	r, err := FD{LHS: []string{"Zip"}, RHS: []string{"City"}}.ApproximationRatio(d)
	if err != nil {
		t.Fatal(err)
	}
	// Must remove 1 record (the B) out of 6.
	if r != 1.0/6.0 {
		t.Errorf("ratio = %v, want 1/6", r)
	}
	exact := relation.MustNew(
		relation.NewCategoricalColumn("Zip", []string{"1", "2"}),
		relation.NewCategoricalColumn("City", []string{"A", "B"}),
	)
	r, _ = FD{LHS: []string{"Zip"}, RHS: []string{"City"}}.ApproximationRatio(exact)
	if r != 0 {
		t.Errorf("exact FD ratio = %v", r)
	}
}

func TestFDToDSC(t *testing.T) {
	dsc := FD{LHS: []string{"Zip"}, RHS: []string{"City"}}.ToDSC()
	if !dsc.Dependence {
		t.Error("FD translation must be a DSC")
	}
	want := sc.MustParse("Zip ~||~ City")
	if !dsc.Equivalent(want) {
		t.Errorf("ToDSC = %v, want %v", dsc, want)
	}
}

func TestTable2EMVDHoldsButISCFails(t *testing.T) {
	d := table2()
	// The paper: Table 2 satisfies Z ->> X | Y.
	ok, err := EMVD{X: []string{"Z"}, Y: []string{"X"}, Z: []string{"Y"}}.Holds(d)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("Table 2 should satisfy EMVD Z ->> X | Y")
	}
	// ...but violates X ⊥ Y | Z: P(x1|z1)=2/3, P(y1|z1)=1/3, joint 1/6 ≠ 2/9.
	sat, err := SatisfiesISCExactly(d, sc.MustParse("X _||_ Y | Z"), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if sat {
		t.Error("Table 2 should violate X ⊥ Y | Z")
	}
}

func TestProposition1ISCEntailsEMVD(t *testing.T) {
	// Generate random relations; whenever Y ⊥ Z | X holds exactly, the
	// EMVD X ->> Y | Z must hold. Build relations where the ISC holds by
	// construction: P(Y,Z|X) = P(Y|X)P(Z|X) via a product design.
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		var xs, ys, zs []string
		for _, x := range []string{"x0", "x1"} {
			// Within each X group, take the full product of Y and Z values
			// with multiplicities my[i]*mz[j] — an exactly independent
			// conditional distribution.
			my := []int{rng.Intn(2) + 1, rng.Intn(2) + 1}
			mz := []int{rng.Intn(2) + 1, rng.Intn(2) + 1}
			for yi, myi := range my {
				for zi, mzi := range mz {
					for c := 0; c < myi*mzi; c++ {
						xs = append(xs, x)
						ys = append(ys, []string{"y0", "y1"}[yi])
						zs = append(zs, []string{"z0", "z1"}[zi])
					}
				}
			}
		}
		d := relation.MustNew(
			relation.NewCategoricalColumn("X", xs),
			relation.NewCategoricalColumn("Y", ys),
			relation.NewCategoricalColumn("Z", zs),
		)
		isc := sc.MustParse("Y _||_ Z | X")
		sat, err := SatisfiesISCExactly(d, isc, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		if !sat {
			t.Fatalf("trial %d: construction should satisfy the ISC", trial)
		}
		emvd, err := ISCToEMVD(isc)
		if err != nil {
			t.Fatal(err)
		}
		holds, err := emvd.Holds(d)
		if err != nil {
			t.Fatal(err)
		}
		if !holds {
			t.Errorf("trial %d: Proposition 1 violated — ISC holds but EMVD %s fails", trial, emvd)
		}
	}
}

func TestISCToEMVDErrors(t *testing.T) {
	if _, err := ISCToEMVD(sc.MustParse("A ~||~ B | C")); err == nil {
		t.Error("want error for DSC input")
	}
	if _, err := ISCToEMVD(sc.MustParse("A _||_ B")); err == nil {
		t.Error("want error for marginal ISC")
	}
	e, err := ISCToEMVD(sc.MustParse("Y _||_ Z | X"))
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "X ->> Y | Z" {
		t.Errorf("EMVD = %s", e)
	}
}

func TestEMVDValidation(t *testing.T) {
	d := table2()
	if _, err := (EMVD{X: []string{"Z"}, Y: []string{"X"}, Z: []string{"X"}}).Holds(d); err == nil {
		t.Error("want error for overlapping sets")
	}
	if _, err := (EMVD{X: []string{"Z"}, Y: []string{"X"}}).Holds(d); err == nil {
		t.Error("want error for empty Z")
	}
	if _, err := (EMVD{X: []string{"Q"}, Y: []string{"X"}, Z: []string{"Y"}}).Holds(d); err == nil {
		t.Error("want error for missing column")
	}
}

func TestMVDEquivalenceWithSaturatedISC(t *testing.T) {
	// FD Z -> X entails MVD Z ->> X, which is equivalent to the saturated
	// ISC X ⊥ (Z∪X)^C | Z. Build a 3-column relation where the FD holds.
	d := relation.MustNew(
		relation.NewCategoricalColumn("Z", []string{"a", "a", "b", "b"}),
		relation.NewCategoricalColumn("X", []string{"p", "p", "q", "q"}),
		relation.NewCategoricalColumn("W", []string{"1", "2", "1", "2"}),
	)
	fdHolds, err := FD{LHS: []string{"Z"}, RHS: []string{"X"}}.Holds(d)
	if err != nil {
		t.Fatal(err)
	}
	if !fdHolds {
		t.Fatal("FD should hold by construction")
	}
	mvd := MVD{X: []string{"Z"}, Y: []string{"X"}}
	mvdHolds, err := mvd.Holds(d)
	if err != nil {
		t.Fatal(err)
	}
	if !mvdHolds {
		t.Error("FD ⇒ MVD violated")
	}
	isc, err := mvd.ToSaturatedISC(d)
	if err != nil {
		t.Fatal(err)
	}
	sat, err := SatisfiesISCExactly(d, isc, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !sat {
		t.Errorf("MVD ⇔ saturated ISC violated: %s should hold", isc)
	}
}

func TestMVDTrivialOnFullSchema(t *testing.T) {
	d := relation.MustNew(
		relation.NewCategoricalColumn("A", []string{"1", "2"}),
		relation.NewCategoricalColumn("B", []string{"x", "y"}),
	)
	ok, err := MVD{X: []string{"A"}, Y: []string{"B"}}.Holds(d)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("saturated MVD with empty complement holds trivially")
	}
	if _, err := (MVD{X: []string{"A"}, Y: []string{"B"}}).ToSaturatedISC(d); err == nil {
		t.Error("want error translating a trivial MVD")
	}
}

func TestProposition2FDEntailsMIMaximalDSC(t *testing.T) {
	// When the FD X -> Y holds, I(X;Y) must be >= I(X';Y) for any other
	// column set X'. Check single-column competitors on a relation where
	// the FD holds.
	d := relation.MustNew(
		relation.NewCategoricalColumn("X", []string{"a", "a", "b", "b", "c", "c"}),
		relation.NewCategoricalColumn("Y", []string{"p", "p", "q", "q", "p", "p"}),
		relation.NewCategoricalColumn("W", []string{"1", "2", "1", "2", "2", "1"}),
	)
	fdHolds, err := FD{LHS: []string{"X"}, RHS: []string{"Y"}}.Holds(d)
	if err != nil {
		t.Fatal(err)
	}
	if !fdHolds {
		t.Fatal("FD should hold by construction")
	}
	mi := func(a, b string) float64 {
		ct, err := d.Contingency(a, b)
		if err != nil {
			t.Fatal(err)
		}
		return stats.MutualInformation(stats.Table(ct.Counts))
	}
	ixy := mi("X", "Y")
	iwy := mi("W", "Y")
	if ixy < iwy-1e-12 {
		t.Errorf("Proposition 2 violated: I(X;Y)=%v < I(W;Y)=%v", ixy, iwy)
	}
	// I(X;Y) must equal H(Y) when the FD holds (Y is a function of X).
	hy := entropyOf(d, "Y")
	if math.Abs(ixy-hy) > 1e-12 {
		t.Errorf("I(X;Y)=%v should equal H(Y)=%v under the FD", ixy, hy)
	}
}

func entropyOf(d *relation.Relation, col string) float64 {
	dist := d.Empirical(col)
	h := 0.0
	for _, p := range dist.Probs {
		if p > 0 {
			h -= p * math.Log2(p)
		}
	}
	return h
}

func TestSatisfiesISCExactlyProductTable(t *testing.T) {
	// A perfectly factorized joint: counts = outer product.
	var xs, ys []string
	for _, x := range []string{"a", "a", "b"} { // P(a)=2/3
		for _, y := range []string{"p", "q"} { // P(p)=1/2
			xs = append(xs, x)
			ys = append(ys, y)
		}
	}
	d := relation.MustNew(
		relation.NewCategoricalColumn("X", xs),
		relation.NewCategoricalColumn("Y", ys),
	)
	sat, err := SatisfiesISCExactly(d, sc.MustParse("X _||_ Y"), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !sat {
		t.Error("product table should satisfy X ⊥ Y exactly")
	}
	if _, err := SatisfiesISCExactly(d, sc.MustParse("X ~||~ Y"), 1e-9); err == nil {
		t.Error("want error for DSC input")
	}
}
