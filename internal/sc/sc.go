// Package sc defines statistical constraints (SCs) — the paper's Section 2
// formalism. An independence SC (ISC) X ⊥ Y | Z asserts that the column sets
// X and Y are conditionally independent given Z in the empirical
// distribution; a dependence SC (DSC) X ⊥̸ Y | Z is its negation. An
// approximate SC pairs a constraint with a false dependence rate α
// (Definition 4), turning it into a hypothesis test.
package sc

import (
	"fmt"
	"sort"
	"strings"
)

// SC is a statistical constraint over disjoint column sets X, Y and a
// (possibly empty) conditioning set Z.
type SC struct {
	// X and Y are the two column sets whose (in)dependence is asserted.
	X, Y []string
	// Z is the conditioning set; empty for marginal constraints.
	Z []string
	// Dependence is false for an independence SC (X ⊥ Y | Z) and true for a
	// dependence SC (X ⊥̸ Y | Z).
	Dependence bool
}

// Independence constructs an ISC X ⊥ Y | Z.
func Independence(x, y, z []string) SC {
	return SC{X: cloneSorted(x), Y: cloneSorted(y), Z: cloneSorted(z)}
}

// Dependence constructs a DSC X ⊥̸ Y | Z.
func Dependence(x, y, z []string) SC {
	return SC{X: cloneSorted(x), Y: cloneSorted(y), Z: cloneSorted(z), Dependence: true}
}

func cloneSorted(v []string) []string {
	out := append([]string(nil), v...)
	sort.Strings(out)
	return out
}

// Validate checks that X and Y are non-empty and that X, Y, Z are pairwise
// disjoint with no duplicate columns.
func (c SC) Validate() error {
	if len(c.X) == 0 || len(c.Y) == 0 {
		return fmt.Errorf("sc: X and Y must be non-empty in %s", c)
	}
	seen := make(map[string]string)
	for _, set := range []struct {
		name string
		cols []string
	}{{"X", c.X}, {"Y", c.Y}, {"Z", c.Z}} {
		for _, col := range set.cols {
			if col == "" {
				return fmt.Errorf("sc: empty column name in %s of %s", set.name, c)
			}
			if prev, dup := seen[col]; dup {
				if prev == set.name {
					return fmt.Errorf("sc: duplicate column %q in %s of %s", col, set.name, c)
				}
				return fmt.Errorf("sc: column %q appears in both %s and %s of %s", col, prev, set.name, c)
			}
			seen[col] = set.name
		}
	}
	return nil
}

// Negate returns the SC with the dependence flag flipped: the negation of an
// ISC is the corresponding DSC and vice versa.
func (c SC) Negate() SC {
	c2 := c.clone()
	c2.Dependence = !c.Dependence
	return c2
}

func (c SC) clone() SC {
	return SC{
		X:          append([]string(nil), c.X...),
		Y:          append([]string(nil), c.Y...),
		Z:          append([]string(nil), c.Z...),
		Dependence: c.Dependence,
	}
}

// Columns returns all columns mentioned by the constraint, X then Y then Z.
func (c SC) Columns() []string {
	out := make([]string, 0, len(c.X)+len(c.Y)+len(c.Z))
	out = append(out, c.X...)
	out = append(out, c.Y...)
	out = append(out, c.Z...)
	return out
}

// IsSingle reports whether both X and Y are single variables, the base case
// of the violation-detection algorithm.
func (c SC) IsSingle() bool { return len(c.X) == 1 && len(c.Y) == 1 }

// IsMarginal reports whether the conditioning set is empty.
func (c SC) IsMarginal() bool { return len(c.Z) == 0 }

// String renders the constraint in the paper's notation using ASCII
// operators: "A _||_ B | C" for independence and "A ~||~ B | C" for
// dependence.
func (c SC) String() string {
	op := " _||_ "
	if c.Dependence {
		op = " ~||~ "
	}
	s := strings.Join(c.X, ",") + op + strings.Join(c.Y, ",")
	if len(c.Z) > 0 {
		s += " | " + strings.Join(c.Z, ",")
	}
	return s
}

// Key returns a canonical identity string: symmetric in X and Y, insensitive
// to column order within each set. Two SCs with equal Keys assert the same
// (in)dependence statement.
func (c SC) Key() string {
	x := strings.Join(cloneSorted(c.X), ",")
	y := strings.Join(cloneSorted(c.Y), ",")
	if x > y {
		x, y = y, x
	}
	z := strings.Join(cloneSorted(c.Z), ",")
	dep := "I"
	if c.Dependence {
		dep = "D"
	}
	return dep + ";" + x + ";" + y + ";" + z
}

// Equivalent reports whether two SCs assert the same statement (up to the
// symmetry X ⊥ Y ≡ Y ⊥ X and column ordering).
func (c SC) Equivalent(o SC) bool { return c.Key() == o.Key() }

// Approximate is the paper's Definition 4: an SC plus a false dependence
// rate α ∈ [0, 1] controlling the approximation level. For an ISC, higher α
// requires stronger observed independence; the data violates ⟨φ, α⟩ when the
// test p-value falls below α. For a DSC the rule inverts: the data violates
// the constraint when the p-value is at least α (the observed dependence is
// too weak), as in the paper's Nebraska case study.
type Approximate struct {
	SC    SC
	Alpha float64
}

// Validate checks the constraint and the range of Alpha.
func (a Approximate) Validate() error {
	if err := a.SC.Validate(); err != nil {
		return err
	}
	// The negated form keeps NaN out: both "NaN < 0" and "NaN > 1" are
	// false, so the naive pair of comparisons would accept it.
	if !(a.Alpha >= 0 && a.Alpha <= 1) {
		return fmt.Errorf("sc: alpha %v out of [0,1]", a.Alpha)
	}
	return nil
}

// String renders the approximate SC as "<phi, alpha>".
func (a Approximate) String() string {
	return fmt.Sprintf("<%s, %g>", a.SC, a.Alpha)
}

// Decompose applies the decomposition principle (Section 4.2) recursively
// until every resulting constraint has single-variable X and Y:
//
//	X ⊥ Y1 Y2 | Z  ⇔  (X ⊥ Y1 | Z Y2) ∧ (X ⊥ Y2 | Z Y1)
//
// and symmetrically for X. For an ISC the original constraint is satisfied
// iff ALL leaves are satisfied; for a DSC (the negation) it is satisfied iff
// ANY leaf is satisfied. Callers use Dependence on the returned leaves to
// pick the right combination rule.
func (c SC) Decompose() []SC {
	var out []SC
	var rec func(SC)
	rec = func(s SC) {
		switch {
		case len(s.Y) > 1:
			for i := range s.Y {
				y := s.Y[i]
				rest := append(append([]string(nil), s.Y[:i]...), s.Y[i+1:]...)
				rec(SC{
					X:          s.X,
					Y:          []string{y},
					Z:          append(append([]string(nil), s.Z...), rest...),
					Dependence: s.Dependence,
				})
			}
		case len(s.X) > 1:
			for i := range s.X {
				x := s.X[i]
				rest := append(append([]string(nil), s.X[:i]...), s.X[i+1:]...)
				rec(SC{
					X:          []string{x},
					Y:          s.Y,
					Z:          append(append([]string(nil), s.Z...), rest...),
					Dependence: s.Dependence,
				})
			}
		default:
			out = append(out, s.clone())
		}
	}
	rec(c)
	// Deduplicate identical leaves (possible when X and Y share structure).
	seen := make(map[string]bool)
	uniq := out[:0]
	for _, s := range out {
		k := s.Key()
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, s)
		}
	}
	return uniq
}
