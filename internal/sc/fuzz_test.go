package sc

import (
	"math"
	"testing"
)

// FuzzParse asserts the no-panic contract of the two public parsing entry
// points on arbitrary input, and that accepted constraints are valid and
// round-trip through String.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"Model _||_ Color",
		"Color _||_ Price | Model",
		"Wind ~||~ Weather | Year",
		"T8 !_||_ T9",
		"A ⊥ B",
		"A ⊥̸ B | C,D",
		"A dep B @ 0.3",
		"A _||_ B @ 1e-3",
		"A _||_ B @ NaN",
		"_||_",
		"@",
		"|,|,|",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if c, err := Parse(s); err == nil {
			if verr := c.Validate(); verr != nil {
				t.Errorf("Parse(%q) accepted invalid SC %v: %v", s, c, verr)
			}
			back, rerr := Parse(c.String())
			if rerr != nil || !back.Equivalent(c) {
				t.Errorf("Parse(%q) does not round-trip: %v -> %v (%v)", s, c, back, rerr)
			}
		}
		if a, err := ParseApproximate(s); err == nil {
			if verr := a.Validate(); verr != nil {
				t.Errorf("ParseApproximate(%q) accepted invalid constraint: %v", s, verr)
			}
			if math.IsNaN(a.Alpha) || math.IsInf(a.Alpha, 0) {
				t.Errorf("ParseApproximate(%q) accepted non-finite alpha %v", s, a.Alpha)
			}
		}
	})
}
