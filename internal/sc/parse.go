package sc

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Parse reads an SC from its textual form. Grammar:
//
//	sc     := set op set [ "|" set ]
//	op     := "_||_" | "⊥" | "indep"          (independence)
//	        | "~||~" | "!_||_" | "⊥̸" | "dep"  (dependence)
//	set    := name { "," name }
//
// Column names are trimmed of surrounding whitespace; they may contain
// spaces but not commas or pipes. Examples:
//
//	"Model _||_ Color"
//	"Color _||_ Price | Model"
//	"Wind ~||~ Weather | Year"
//	"T8 !_||_ T9"
func Parse(s string) (SC, error) {
	ops := []struct {
		tok string
		dep bool
	}{
		// Longer / more specific tokens first so "!_||_" wins over "_||_".
		{"!_||_", true},
		{"~||~", true},
		{"⊥̸", true},
		{" dep ", true},
		{"_||_", false},
		{"⊥", false},
		{" indep ", false},
	}
	var lhs, rhs string
	var dep bool
	found := false
	for _, op := range ops {
		if i := strings.Index(s, op.tok); i >= 0 {
			lhs, rhs = s[:i], s[i+len(op.tok):]
			dep = op.dep
			found = true
			break
		}
	}
	if !found {
		return SC{}, fmt.Errorf("sc: no (in)dependence operator in %q (use _||_ or ~||~)", s)
	}
	var cond string
	if i := strings.Index(rhs, "|"); i >= 0 {
		cond = rhs[i+1:]
		rhs = rhs[:i]
	}
	c := SC{
		X:          splitSet(lhs),
		Y:          splitSet(rhs),
		Z:          splitSet(cond),
		Dependence: dep,
	}
	if err := c.Validate(); err != nil {
		return SC{}, err
	}
	return c, nil
}

// MustParse is Parse but panics on error; for tests and static constraint
// tables. It is the only panicking entry point of this package: Parse and
// ParseApproximate return errors for every malformed input, so user-supplied
// constraint strings are safe to feed to them directly.
func MustParse(s string) SC {
	c, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return c
}

// ParseApproximate reads an approximate SC "<constraint> @ <alpha>", e.g.
// "Model _||_ Color @ 0.05". A missing "@ alpha" suffix defaults to the
// conventional significance level 0.05.
func ParseApproximate(s string) (Approximate, error) {
	alpha := 0.05
	if i := strings.LastIndex(s, "@"); i >= 0 {
		var err error
		alpha, err = parseFloat(strings.TrimSpace(s[i+1:]))
		if err != nil {
			return Approximate{}, fmt.Errorf("sc: bad alpha in %q: %w", s, err)
		}
		s = s[:i]
	}
	c, err := Parse(s)
	if err != nil {
		return Approximate{}, err
	}
	a := Approximate{SC: c, Alpha: alpha}
	if err := a.Validate(); err != nil {
		return Approximate{}, err
	}
	return a, nil
}

// parseFloat parses a finite float, rejecting trailing garbage ("0.05x"),
// NaN, and infinities — none of which are meaningful significance levels.
func parseFloat(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite value %q", s)
	}
	return v, nil
}

func splitSet(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		p := strings.TrimSpace(part)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}
