package sc

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestConstructorsSortColumns(t *testing.T) {
	c := Independence([]string{"B", "A"}, []string{"D", "C"}, []string{"F", "E"})
	if c.X[0] != "A" || c.Y[0] != "C" || c.Z[0] != "E" {
		t.Errorf("constructors should sort: %+v", c)
	}
	if c.Dependence {
		t.Error("Independence should build an ISC")
	}
	d := Dependence([]string{"A"}, []string{"B"}, nil)
	if !d.Dependence {
		t.Error("Dependence should build a DSC")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		c    SC
		ok   bool
		name string
	}{
		{Independence([]string{"A"}, []string{"B"}, nil), true, "simple"},
		{Independence([]string{"A"}, []string{"B"}, []string{"C"}), true, "conditional"},
		{SC{X: nil, Y: []string{"B"}}, false, "empty X"},
		{SC{X: []string{"A"}, Y: nil}, false, "empty Y"},
		{SC{X: []string{"A"}, Y: []string{"A"}}, false, "X∩Y"},
		{SC{X: []string{"A"}, Y: []string{"B"}, Z: []string{"A"}}, false, "X∩Z"},
		{SC{X: []string{"A", "A"}, Y: []string{"B"}}, false, "dup in X"},
		{SC{X: []string{""}, Y: []string{"B"}}, false, "empty name"},
	}
	for _, c := range cases {
		if err := c.c.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestNegate(t *testing.T) {
	c := Independence([]string{"A"}, []string{"B"}, nil)
	n := c.Negate()
	if !n.Dependence {
		t.Error("negation of ISC should be DSC")
	}
	if n.Negate().Dependence {
		t.Error("double negation should restore ISC")
	}
	// Negate must not alias the original's slices.
	n.X[0] = "Q"
	if c.X[0] != "A" {
		t.Error("Negate must deep-copy")
	}
}

func TestStringForms(t *testing.T) {
	c := Independence([]string{"Color"}, []string{"Price"}, []string{"Model"})
	if got := c.String(); got != "Color _||_ Price | Model" {
		t.Errorf("String = %q", got)
	}
	d := Dependence([]string{"Model"}, []string{"Price"}, nil)
	if got := d.String(); got != "Model ~||~ Price" {
		t.Errorf("String = %q", got)
	}
	a := Approximate{SC: d, Alpha: 0.05}
	if got := a.String(); got != "<Model ~||~ Price, 0.05>" {
		t.Errorf("Approximate.String = %q", got)
	}
}

func TestKeySymmetry(t *testing.T) {
	a := MustParse("A _||_ B | C")
	b := MustParse("B _||_ A | C")
	if !a.Equivalent(b) {
		t.Error("X⊥Y and Y⊥X should be equivalent")
	}
	c := MustParse("A ~||~ B | C")
	if a.Equivalent(c) {
		t.Error("ISC and DSC must differ")
	}
	d := MustParse("A _||_ B")
	if a.Equivalent(d) {
		t.Error("different conditioning sets must differ")
	}
}

func TestColumnsAndPredicates(t *testing.T) {
	c := MustParse("A,B _||_ C | D")
	cols := c.Columns()
	if strings.Join(cols, ",") != "A,B,C,D" {
		t.Errorf("Columns = %v", cols)
	}
	if c.IsSingle() {
		t.Error("set-valued X should not be single")
	}
	if c.IsMarginal() {
		t.Error("conditional SC should not be marginal")
	}
	s := MustParse("A _||_ B")
	if !s.IsSingle() || !s.IsMarginal() {
		t.Error("A _||_ B should be single and marginal")
	}
}

func TestParseBasics(t *testing.T) {
	cases := []struct {
		in   string
		want string
		dep  bool
	}{
		{"Model _||_ Color", "Model _||_ Color", false},
		{"Color _||_ Price | Model", "Color _||_ Price | Model", false},
		{"T8 ~||~ T9", "T8 ~||~ T9", true},
		{"T8 !_||_ T9", "T8 ~||~ T9", true},
		{"Wind ~||~ Weather | Year", "Wind ~||~ Weather | Year", true},
		{"A,B _||_ C,D | E,F", "A,B _||_ C,D | E,F", false},
		{"A ⊥ B", "A _||_ B", false},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got.String() != c.want || got.Dependence != c.dep {
			t.Errorf("Parse(%q) = %q dep=%v, want %q dep=%v", c.in, got.String(), got.Dependence, c.want, c.dep)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"Model Color",  // no operator
		"_||_ Color",   // empty X
		"Model _||_",   // empty Y
		"A _||_ A",     // overlap
		"A _||_ B | A", // overlap with Z
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("garbage")
}

func TestParseApproximate(t *testing.T) {
	a, err := ParseApproximate("Model _||_ Color @ 0.1")
	if err != nil {
		t.Fatal(err)
	}
	if a.Alpha != 0.1 {
		t.Errorf("alpha = %v", a.Alpha)
	}
	a, err = ParseApproximate("Model _||_ Color")
	if err != nil {
		t.Fatal(err)
	}
	if a.Alpha != 0.05 {
		t.Errorf("default alpha = %v", a.Alpha)
	}
	if _, err := ParseApproximate("Model _||_ Color @ banana"); err == nil {
		t.Error("want error for non-numeric alpha")
	}
	if _, err := ParseApproximate("Model _||_ Color @ 1.5"); err == nil {
		t.Error("want error for alpha out of range")
	}
	if _, err := ParseApproximate("nonsense @ 0.05"); err == nil {
		t.Error("want error for bad constraint")
	}
}

// TestParseAlphaStrict: the alpha suffix must be a finite float with no
// trailing garbage — Sscanf-style prefix parsing silently accepted "0.05x".
func TestParseAlphaStrict(t *testing.T) {
	for _, in := range []string{
		"A _||_ B @ 0.05x",
		"A _||_ B @ 0.0 5",
		"A _||_ B @ NaN",
		"A _||_ B @ nan",
		"A _||_ B @ Inf",
		"A _||_ B @ +Inf",
		"A _||_ B @ -Inf",
		"A _||_ B @",
	} {
		if _, err := ParseApproximate(in); err == nil {
			t.Errorf("ParseApproximate(%q) should fail", in)
		}
	}
	a, err := ParseApproximate("A _||_ B @ 1e-3")
	if err != nil {
		t.Fatal(err)
	}
	if a.Alpha != 1e-3 {
		t.Errorf("alpha = %v, want 1e-3", a.Alpha)
	}
}

func TestApproximateValidate(t *testing.T) {
	for _, alpha := range []float64{-0.1, 1.1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		bad := Approximate{SC: MustParse("A _||_ B"), Alpha: alpha}
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate should reject alpha %v", alpha)
		}
	}
	for _, alpha := range []float64{0, 0.05, 1} {
		good := Approximate{SC: MustParse("A _||_ B"), Alpha: alpha}
		if err := good.Validate(); err != nil {
			t.Errorf("Validate(alpha=%v) = %v", alpha, err)
		}
	}
}

func TestDecomposeSingleIsIdentity(t *testing.T) {
	c := MustParse("A _||_ B | C")
	leaves := c.Decompose()
	if len(leaves) != 1 || !leaves[0].Equivalent(c) {
		t.Errorf("decompose(single) = %v", leaves)
	}
}

func TestDecomposeSetY(t *testing.T) {
	// X ⊥ Y1Y2 | Z ⇔ (X ⊥ Y1 | Z,Y2) ∧ (X ⊥ Y2 | Z,Y1)
	c := MustParse("X _||_ Y1,Y2 | Z")
	leaves := c.Decompose()
	if len(leaves) != 2 {
		t.Fatalf("leaves = %v", leaves)
	}
	want1 := MustParse("X _||_ Y1 | Z,Y2")
	want2 := MustParse("X _||_ Y2 | Z,Y1")
	found1, found2 := false, false
	for _, l := range leaves {
		if l.Equivalent(want1) {
			found1 = true
		}
		if l.Equivalent(want2) {
			found2 = true
		}
		if !l.IsSingle() {
			t.Errorf("leaf %v is not single-variable", l)
		}
	}
	if !found1 || !found2 {
		t.Errorf("missing expected leaves in %v", leaves)
	}
}

func TestDecomposeBothSets(t *testing.T) {
	c := MustParse("X1,X2 _||_ Y1,Y2")
	leaves := c.Decompose()
	// Each leaf must be single-variable and mention all four columns.
	if len(leaves) != 4 {
		t.Fatalf("got %d leaves: %v", len(leaves), leaves)
	}
	for _, l := range leaves {
		if !l.IsSingle() {
			t.Errorf("leaf %v not single", l)
		}
		if len(l.Columns()) != 4 {
			t.Errorf("leaf %v should mention 4 columns", l)
		}
		if l.Dependence {
			t.Errorf("ISC decomposition must stay ISC: %v", l)
		}
	}
}

// TestParseNeverPanics feeds the parser random byte soup and structured
// near-misses: it must return errors, never panic.
func TestParseNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	alphabet := []rune("AB _|~!⊥,|@. ")
	for i := 0; i < 2000; i++ {
		n := rng.Intn(30)
		s := make([]rune, n)
		for j := range s {
			s[j] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse(%q) panicked: %v", string(s), r)
				}
			}()
			Parse(string(s))
			ParseApproximate(string(s))
		}()
	}
}

// TestParseRoundTrip: every SC the constructors can build must survive
// String() -> Parse() unchanged.
func TestParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		names := []string{"A", "B", "C", "D", "E", "F"}
		rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
		nx := rng.Intn(2) + 1
		ny := rng.Intn(2) + 1
		nz := rng.Intn(3)
		if nx+ny+nz > len(names) {
			return true
		}
		x := names[:nx]
		y := names[nx : nx+ny]
		z := names[nx+ny : nx+ny+nz]
		var c SC
		if rng.Intn(2) == 0 {
			c = Independence(x, y, z)
		} else {
			c = Dependence(x, y, z)
		}
		back, err := Parse(c.String())
		if err != nil {
			return false
		}
		return back.Equivalent(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecomposePreservesDependenceFlag(t *testing.T) {
	c := MustParse("X ~||~ Y1,Y2")
	for _, l := range c.Decompose() {
		if !l.Dependence {
			t.Errorf("DSC decomposition leaf lost flag: %v", l)
		}
	}
}
