// Package engine is the unified execution core behind every concurrent
// path in the module (DESIGN.md §11). The detection batch (detect.CheckAll),
// the drill-down fan-out (drilldown.MultiTopK) and the HTTP request paths
// all used to hand-roll their own worker pools; this package owns the one
// implementation and adds the production disciplines the ROADMAP's serving
// goal demands:
//
//   - bounded worker pools with context cancellation: the first ctx.Err()
//     drains the queue, and every item that never ran is reported with a
//     per-item error wrapping both ErrCancelled and the context's error, so
//     callers return partial results instead of blocking;
//   - panic isolation: a panic in one item's worker becomes that item's
//     *PanicError instead of crashing the process, and sibling items
//     complete normally;
//   - instrumentation hooks: per-item on-start / on-done callbacks that the
//     server wires into /metrics as in-flight gauges and per-stage latency
//     counters.
//
// Determinism contract: with an uncancelled context the per-item results
// are bit-identical to a sequential loop — items are independent, each
// writes only its own slot, and the pool never reorders outputs. The
// identity tests in detect and drilldown pin this against the seed
// behavior.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// ErrCancelled marks a work item that never ran because the run's context
// ended first. Item errors produced for drained queue entries wrap both
// ErrCancelled and the context's error, so errors.Is works against either
// (and against context.Canceled / context.DeadlineExceeded specifically).
var ErrCancelled = errors.New("engine: cancelled before start")

// PanicError is the per-item error recorded when an item's function
// panicked. The worker recovers, sibling items keep running, and the
// panicking item reports this error instead of taking the process down.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

// Error renders the panic value; the stack is kept for logs and debugging.
func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: worker panicked: %v", e.Value)
}

// Hooks observes item execution. Both callbacks are optional and must be
// safe for concurrent use: the pool invokes them from every worker.
// Cancelled-before-start items are not observed — the hooks count work that
// actually executed, which is what an in-flight gauge must reflect.
type Hooks struct {
	// OnStart fires as an item begins executing.
	OnStart func()
	// OnDone fires when an item finishes, with its wall-clock duration and
	// outcome (nil, the item's own error, or a *PanicError).
	OnDone func(d time.Duration, err error)
}

// Options configures one Run.
type Options struct {
	// Workers bounds the pool; zero or negative means runtime.GOMAXPROCS(0).
	// The pool never exceeds the item count.
	Workers int
	// Hooks instruments item execution.
	Hooks Hooks
}

// Run executes fn(ctx, i) for every i in [0, n) over a bounded worker pool
// and returns the per-item errors (nil entries for successes), always of
// length n. Items run independently and may finish in any order; each
// writes only its own error slot, so callers can keep per-item result
// slices race-free the same way.
//
// Cancellation: when ctx ends, items that have not started are drained and
// report a wrapped ErrCancelled; items already running finish normally
// (fn observes ctx itself for mid-item interruption). Run returns only
// after every started item has finished, so no worker goroutine outlives
// the call.
//
// A nil ctx is treated as context.Background().
func Run(ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) error) []error {
	if ctx == nil {
		ctx = context.Background()
	}
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				errs[i] = cancelErr(err)
				continue
			}
			errs[i] = runItem(ctx, i, opts.Hooks, fn)
		}
		return errs
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				// An item handed out just before cancellation still drains.
				if err := ctx.Err(); err != nil {
					errs[i] = cancelErr(err)
					continue
				}
				errs[i] = runItem(ctx, i, opts.Hooks, fn)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Drain: everything not yet handed to a worker is cancelled.
			for j := i; j < n; j++ {
				errs[j] = cancelErr(ctx.Err())
			}
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return errs
}

// runItem executes one item with panic recovery and hook instrumentation.
func runItem(ctx context.Context, i int, hooks Hooks, fn func(ctx context.Context, i int) error) (err error) {
	if hooks.OnStart != nil {
		hooks.OnStart()
	}
	begin := time.Now()
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
		if hooks.OnDone != nil {
			hooks.OnDone(time.Since(begin), err)
		}
	}()
	return fn(ctx, i)
}

// cancelErr builds the per-item error for a drained queue entry.
func cancelErr(ctxErr error) error {
	return fmt.Errorf("%w: %w", ErrCancelled, ctxErr)
}

// WithTimeout bounds ctx by d when d is positive; d <= 0 returns ctx
// unchanged with a no-op cancel, so callers can thread an optional
// per-call deadline (a server request timeout, a CLI -timeout flag)
// without branching.
func WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}
