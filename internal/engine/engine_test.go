package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunSequentialIdentity: the pooled run produces the same per-item
// errors as a sequential loop, at every worker count.
func TestRunSequentialIdentity(t *testing.T) {
	n := 50
	want := make([]error, n)
	fn := func(ctx context.Context, i int) error {
		if i%7 == 3 {
			return fmt.Errorf("item %d failed", i)
		}
		return nil
	}
	for i := 0; i < n; i++ {
		want[i] = fn(context.Background(), i)
	}
	for _, workers := range []int{0, 1, 2, 8} {
		got := Run(context.Background(), n, Options{Workers: workers}, fn)
		if len(got) != n {
			t.Fatalf("workers=%d: got %d errors, want %d", workers, len(got), n)
		}
		for i := range got {
			switch {
			case (got[i] == nil) != (want[i] == nil):
				t.Errorf("workers=%d item %d: err %v, want %v", workers, i, got[i], want[i])
			case got[i] != nil && got[i].Error() != want[i].Error():
				t.Errorf("workers=%d item %d: err %q, want %q", workers, i, got[i], want[i])
			}
		}
	}
}

// TestRunCancellationDrainsQueue: once the context is cancelled, unstarted
// items report a wrapped ErrCancelled and Run returns promptly with the
// started items' real results intact.
func TestRunCancellationDrainsQueue(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	n := 32
	var ran [32]atomic.Bool
	done := make(chan []error, 1)
	go func() {
		done <- Run(ctx, n, Options{Workers: 2}, func(ctx context.Context, i int) error {
			started.Add(1)
			ran[i].Store(true)
			<-release
			return nil
		})
	}()
	// Wait for both workers to pick up an item, then cancel and unblock.
	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)
	var errs []error
	select {
	case errs = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	cancelled := 0
	for i, err := range errs {
		if ran[i].Load() {
			if err != nil {
				t.Errorf("started item %d should have finished cleanly, got %v", i, err)
			}
			continue
		}
		cancelled++
		if !errors.Is(err, ErrCancelled) {
			t.Errorf("unstarted item %d: err %v, want ErrCancelled", i, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("unstarted item %d: err %v should wrap context.Canceled", i, err)
		}
	}
	if cancelled == 0 {
		t.Error("expected at least one drained item")
	}
}

// TestRunDeadline: an expired deadline drains items with an error wrapping
// context.DeadlineExceeded.
func TestRunDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for _, workers := range []int{1, 4} {
		errs := Run(ctx, 5, Options{Workers: workers}, func(ctx context.Context, i int) error {
			t.Errorf("workers=%d: item %d ran despite expired deadline", workers, i)
			return nil
		})
		for i, err := range errs {
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("workers=%d item %d: err %v should wrap DeadlineExceeded", workers, i, err)
			}
			if !errors.Is(err, ErrCancelled) {
				t.Errorf("workers=%d item %d: err %v should wrap ErrCancelled", workers, i, err)
			}
		}
	}
}

// TestRunPanicIsolation: a panic in one item becomes that item's
// *PanicError; siblings complete and the process survives.
func TestRunPanicIsolation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		errs := Run(context.Background(), 9, Options{Workers: workers}, func(ctx context.Context, i int) error {
			if i == 4 {
				panic("boom on item 4")
			}
			return nil
		})
		for i, err := range errs {
			if i == 4 {
				var pe *PanicError
				if !errors.As(err, &pe) {
					t.Fatalf("workers=%d: item 4 err %v, want *PanicError", workers, err)
				}
				if pe.Value != "boom on item 4" {
					t.Errorf("workers=%d: panic value %v", workers, pe.Value)
				}
				if len(pe.Stack) == 0 {
					t.Errorf("workers=%d: panic error lost the stack", workers)
				}
				continue
			}
			if err != nil {
				t.Errorf("workers=%d: sibling item %d poisoned by the panic: %v", workers, i, err)
			}
		}
	}
}

// TestRunPanicDuringCancellation: a worker panics at the same moment the
// run's context fires. The panic must still surface as that item's
// *PanicError, in-flight siblings must finish normally, never-started items
// must drain with a wrapped ErrCancelled, and the pool must not leak a
// goroutine. The choreography is deterministic: the first `workers` items
// occupy every worker and block until the context is cancelled, so the feed
// is parked on the index channel when cancellation drains the rest.
func TestRunPanicDuringCancellation(t *testing.T) {
	const (
		workers = 4
		n       = 64
	)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var occupied sync.WaitGroup
	occupied.Add(workers)
	release := make(chan struct{})
	go func() {
		occupied.Wait() // every worker is mid-item; the feed is parked
		cancel()        // drain items [workers, n)
		close(release)  // now let the held items finish — item 0 by panicking
	}()

	errs := Run(ctx, n, Options{Workers: workers}, func(ctx context.Context, i int) error {
		if i < workers {
			occupied.Done()
			<-release
			if i == 0 {
				panic("panic during cancellation")
			}
		}
		return nil
	})

	var pe *PanicError
	if !errors.As(errs[0], &pe) {
		t.Fatalf("item 0 err %v, want *PanicError", errs[0])
	}
	if pe.Value != "panic during cancellation" {
		t.Errorf("panic value %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic error lost the stack")
	}
	for i := 1; i < workers; i++ {
		if errs[i] != nil {
			t.Errorf("in-flight item %d poisoned by panic or cancellation: %v", i, errs[i])
		}
	}
	for i := workers; i < n; i++ {
		if !errors.Is(errs[i], ErrCancelled) || !errors.Is(errs[i], context.Canceled) {
			t.Errorf("drained item %d: err %v should wrap ErrCancelled and context.Canceled", i, errs[i])
		}
	}

	// Every worker (and the cancel choreographer) must be gone: a panic mid-
	// drain must not strand the feed or a sibling on the index channel.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after", before, runtime.NumGoroutine())
}

// TestRunHooks: OnStart and OnDone fire once per executed item, with the
// item's outcome, and never for drained (cancelled-before-start) items.
func TestRunHooks(t *testing.T) {
	var mu sync.Mutex
	starts, dones, errDones := 0, 0, 0
	hooks := Hooks{
		OnStart: func() { mu.Lock(); starts++; mu.Unlock() },
		OnDone: func(d time.Duration, err error) {
			mu.Lock()
			dones++
			if err != nil {
				errDones++
			}
			if d < 0 {
				t.Errorf("negative duration %v", d)
			}
			mu.Unlock()
		},
	}
	n := 20
	Run(context.Background(), n, Options{Workers: 4, Hooks: hooks}, func(ctx context.Context, i int) error {
		if i%5 == 0 {
			return errors.New("nope")
		}
		if i == 7 {
			panic("hook panic")
		}
		return nil
	})
	if starts != n || dones != n {
		t.Errorf("hooks fired %d starts / %d dones, want %d each", starts, dones, n)
	}
	if errDones != 5 { // 4 error items (0,5,10,15) + 1 panic
		t.Errorf("OnDone saw %d errors, want 5", errDones)
	}

	// Pre-cancelled run: nothing executes, so the hooks stay silent.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mu.Lock()
	starts, dones = 0, 0
	mu.Unlock()
	Run(ctx, n, Options{Workers: 4, Hooks: hooks}, func(ctx context.Context, i int) error { return nil })
	if starts != 0 || dones != 0 {
		t.Errorf("hooks fired %d starts / %d dones on a pre-cancelled run, want 0", starts, dones)
	}
}

// TestRunNoGoroutineLeak: every worker goroutine exits before Run returns,
// cancelled or not.
func TestRunNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	Run(ctx, 100, Options{Workers: 8}, func(ctx context.Context, i int) error {
		if i == 10 {
			cancel()
		}
		return nil
	})
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after", before, runtime.NumGoroutine())
}

// TestRunZeroItems: a zero-length run returns an empty slice and touches
// nothing.
func TestRunZeroItems(t *testing.T) {
	errs := Run(context.Background(), 0, Options{}, func(ctx context.Context, i int) error {
		t.Error("item ran")
		return nil
	})
	if len(errs) != 0 {
		t.Fatalf("got %d errors for 0 items", len(errs))
	}
}

// TestRunNilContext: a nil ctx behaves as context.Background().
func TestRunNilContext(t *testing.T) {
	var ran atomic.Int64
	//nolint:staticcheck // nil ctx is the documented lenient path
	errs := Run(nil, 3, Options{Workers: 2}, func(ctx context.Context, i int) error {
		ran.Add(1)
		return nil
	})
	if ran.Load() != 3 {
		t.Fatalf("ran %d items, want 3", ran.Load())
	}
	for i, err := range errs {
		if err != nil {
			t.Errorf("item %d: %v", i, err)
		}
	}
}

// TestWithTimeout: a non-positive duration is a no-op passthrough; a
// positive one installs a real deadline.
func TestWithTimeout(t *testing.T) {
	base := context.Background()
	ctx, cancel := WithTimeout(base, 0)
	if ctx != base {
		t.Error("zero timeout should return the context unchanged")
	}
	cancel() // no-op must be callable

	ctx, cancel = WithTimeout(base, time.Hour)
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Error("positive timeout should install a deadline")
	}
}
