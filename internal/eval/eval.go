// Package eval implements the paper's quality measurement (Section 6.1):
// Precision@K, Recall@K and F-score@K over ranked error detections, plus
// curve sweeps over K for the figure harness.
package eval

import (
	"fmt"
)

// Metrics is one (precision, recall, F) triple at a fixed K.
type Metrics struct {
	K         int
	Precision float64
	Recall    float64
	F         float64
}

// At computes the metrics of a flagged record set against ground truth.
// truth[i] marks record i as genuinely erroneous.
func At(flagged []int, truth []bool) (Metrics, error) {
	total := 0
	for _, t := range truth {
		if t {
			total++
		}
	}
	hits := 0
	seen := make(map[int]bool, len(flagged))
	for _, r := range flagged {
		if r < 0 || r >= len(truth) {
			return Metrics{}, fmt.Errorf("eval: flagged row %d out of range (n=%d)", r, len(truth))
		}
		if seen[r] {
			return Metrics{}, fmt.Errorf("eval: row %d flagged twice", r)
		}
		seen[r] = true
		if truth[r] {
			hits++
		}
	}
	m := Metrics{K: len(flagged)}
	if len(flagged) > 0 {
		m.Precision = float64(hits) / float64(len(flagged))
	}
	if total > 0 {
		m.Recall = float64(hits) / float64(total)
	}
	if m.Precision+m.Recall > 0 {
		m.F = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m, nil
}

// Ranker produces the top-k flagged records of a detector for a given k.
// Detectors whose top-k is not a ranking prefix (e.g. the K^c drill-down
// strategy) recompute per k.
type Ranker func(k int) ([]int, error)

// PrefixRanker adapts a fixed full ranking to a Ranker.
func PrefixRanker(ranking []int) Ranker {
	return func(k int) ([]int, error) {
		if k < 0 || k > len(ranking) {
			return nil, fmt.Errorf("eval: k=%d out of range (0..%d)", k, len(ranking))
		}
		return ranking[:k], nil
	}
}

// Curve sweeps a Ranker over the given K values.
func Curve(r Ranker, truth []bool, ks []int) ([]Metrics, error) {
	out := make([]Metrics, 0, len(ks))
	for _, k := range ks {
		flagged, err := r(k)
		if err != nil {
			return nil, fmt.Errorf("eval: ranking at k=%d: %w", k, err)
		}
		m, err := At(flagged, truth)
		if err != nil {
			return nil, err
		}
		m.K = k
		out = append(out, m)
	}
	return out, nil
}

// MaxF returns the highest F-score on a curve.
func MaxF(curve []Metrics) float64 {
	best := 0.0
	for _, m := range curve {
		if m.F > best {
			best = m.F
		}
	}
	return best
}

// MeanF returns the average F-score over a curve.
func MeanF(curve []Metrics) float64 {
	if len(curve) == 0 {
		return 0
	}
	var s float64
	for _, m := range curve {
		s += m.F
	}
	return s / float64(len(curve))
}

// TruthCount returns the number of true errors.
func TruthCount(truth []bool) int {
	n := 0
	for _, t := range truth {
		if t {
			n++
		}
	}
	return n
}

// Ks builds a K sweep: from lo to hi in steps, always including hi.
func Ks(lo, hi, step int) []int {
	var out []int
	for k := lo; k < hi; k += step {
		out = append(out, k)
	}
	return append(out, hi)
}
