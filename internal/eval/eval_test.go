package eval

import (
	"math"
	"testing"
)

func TestAtBasics(t *testing.T) {
	truth := []bool{true, false, true, false, true} // 3 errors
	m, err := At([]int{0, 1}, truth)
	if err != nil {
		t.Fatal(err)
	}
	if m.Precision != 0.5 {
		t.Errorf("precision = %v", m.Precision)
	}
	if math.Abs(m.Recall-1.0/3.0) > 1e-12 {
		t.Errorf("recall = %v", m.Recall)
	}
	wantF := 2 * 0.5 * (1.0 / 3.0) / (0.5 + 1.0/3.0)
	if math.Abs(m.F-wantF) > 1e-12 {
		t.Errorf("F = %v, want %v", m.F, wantF)
	}
	if m.K != 2 {
		t.Errorf("K = %d", m.K)
	}
}

func TestAtPerfectAndZero(t *testing.T) {
	truth := []bool{true, true, false}
	m, _ := At([]int{0, 1}, truth)
	if m.Precision != 1 || m.Recall != 1 || m.F != 1 {
		t.Errorf("perfect detection: %+v", m)
	}
	m, _ = At([]int{2}, truth)
	if m.Precision != 0 || m.Recall != 0 || m.F != 0 {
		t.Errorf("zero detection: %+v", m)
	}
	m, _ = At(nil, truth)
	if m.Precision != 0 || m.F != 0 {
		t.Errorf("empty flags: %+v", m)
	}
}

func TestAtNoErrorsInTruth(t *testing.T) {
	m, err := At([]int{0}, []bool{false, false})
	if err != nil {
		t.Fatal(err)
	}
	if m.Recall != 0 {
		t.Errorf("recall with empty truth = %v", m.Recall)
	}
}

func TestAtValidation(t *testing.T) {
	truth := []bool{true, false}
	if _, err := At([]int{5}, truth); err == nil {
		t.Error("want error for out-of-range row")
	}
	if _, err := At([]int{-1}, truth); err == nil {
		t.Error("want error for negative row")
	}
	if _, err := At([]int{0, 0}, truth); err == nil {
		t.Error("want error for duplicate flag")
	}
}

func TestPrefixRankerAndCurve(t *testing.T) {
	truth := []bool{true, true, false, false, true}
	ranking := []int{0, 1, 4, 2, 3} // perfect ranking
	curve, err := Curve(PrefixRanker(ranking), truth, []int{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 3 {
		t.Fatalf("curve length %d", len(curve))
	}
	if curve[0].Precision != 1 || curve[1].Precision != 1 {
		t.Errorf("prefix precisions: %+v", curve)
	}
	if curve[1].Recall != 1 {
		t.Errorf("recall@3 = %v, want 1", curve[1].Recall)
	}
	if curve[2].Precision != 3.0/5.0 {
		t.Errorf("precision@5 = %v", curve[2].Precision)
	}
	if _, err := Curve(PrefixRanker(ranking), truth, []int{10}); err == nil {
		t.Error("want error for k beyond ranking")
	}
}

func TestMaxAndMeanF(t *testing.T) {
	curve := []Metrics{{F: 0.2}, {F: 0.8}, {F: 0.5}}
	if MaxF(curve) != 0.8 {
		t.Errorf("MaxF = %v", MaxF(curve))
	}
	if MeanF(curve) != 0.5 {
		t.Errorf("MeanF = %v", MeanF(curve))
	}
	if MaxF(nil) != 0 || MeanF(nil) != 0 {
		t.Error("empty curves should return 0")
	}
}

func TestTruthCount(t *testing.T) {
	if TruthCount([]bool{true, false, true}) != 2 {
		t.Error("TruthCount wrong")
	}
}

func TestKs(t *testing.T) {
	got := Ks(10, 50, 20)
	want := []int{10, 30, 50}
	if len(got) != len(want) {
		t.Fatalf("Ks = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Ks = %v, want %v", got, want)
			break
		}
	}
	// hi always included even when aligned.
	got = Ks(10, 30, 10)
	if got[len(got)-1] != 30 {
		t.Errorf("Ks = %v", got)
	}
}
