package detect

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"scoded/internal/engine"
	"scoded/internal/relation"
	"scoded/internal/sc"
)

func batchFamily(n int) []sc.Approximate {
	var as []sc.Approximate
	for i := 1; i <= 3 && len(as) < n; i++ {
		as = append(as, sc.Approximate{SC: sc.MustParse("X _||_ " + nameD(i)), Alpha: 0.05})
	}
	for i := 1; i <= 8 && len(as) < n; i++ {
		as = append(as, sc.Approximate{SC: sc.MustParse("X _||_ " + nameI(i)), Alpha: 0.05})
	}
	return as
}

// TestCheckAllContextIdentity pins the engine refactor against the seed
// behavior: an uncancelled CheckAllContext is bit-identical to a
// sequential loop of Check over the same family.
func TestCheckAllContextIdentity(t *testing.T) {
	d := batchRelation(7)
	as := batchFamily(11)
	got, err := CheckAllContext(context.Background(), d, as, BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Result, len(as))
	for i, a := range as {
		want[i], err = Check(d, a, Options{})
		if err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CheckAllContext differs from a sequential Check loop:\n got %+v\nwant %+v", got, want)
	}
}

// TestCheckAllContextCancelMidBatch cancels after the first constraint
// completes (workers=1 makes the order deterministic): the finished
// constraint keeps its real result, every later one records an error
// wrapping both engine.ErrCancelled and context.Canceled.
func TestCheckAllContextCancelMidBatch(t *testing.T) {
	orig := checkForBatch
	defer func() { checkForBatch = orig }()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	checkForBatch = func(ctx context.Context, d *relation.Relation, a sc.Approximate, opts Options) (Result, error) {
		r, err := CheckContext(ctx, d, a, opts)
		cancel()
		return r, err
	}

	d := batchRelation(3)
	as := batchFamily(5)
	results, err := CheckAllContext(ctx, d, as, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatalf("finished constraint lost its result: %v", results[0].Err)
	}
	if results[0].Test.N == 0 {
		t.Fatal("finished constraint has a zero test")
	}
	for i := 1; i < len(results); i++ {
		err := results[i].Err
		if err == nil {
			t.Fatalf("constraint %d has no error after mid-batch cancel", i)
		}
		if !errors.Is(err, engine.ErrCancelled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("constraint %d error %v does not wrap ErrCancelled and context.Canceled", i, err)
		}
		if !strings.Contains(err.Error(), "constraint") {
			t.Fatalf("constraint %d error %q lost the batch prefix", i, err)
		}
	}
}

// TestCheckAllContextPreCancelled: a context that is already dead checks
// nothing — every constraint drains with a wrapped cancellation error.
func TestCheckAllContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := batchRelation(5)
	as := batchFamily(4)
	results, err := CheckAllContext(ctx, d, as, BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err == nil || !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("constraint %d: got %v, want wrapped context.Canceled", i, r.Err)
		}
	}
}

// TestCheckAllContextPanicIsolation injects a panic into one constraint's
// worker: that constraint alone reports a *engine.PanicError while its
// siblings complete with real results.
func TestCheckAllContextPanicIsolation(t *testing.T) {
	orig := checkForBatch
	defer func() { checkForBatch = orig }()
	d := batchRelation(5)
	as := batchFamily(6)
	victim := as[2].SC.String()
	checkForBatch = func(ctx context.Context, d *relation.Relation, a sc.Approximate, opts Options) (Result, error) {
		if a.SC.String() == victim {
			panic("injected failure")
		}
		return CheckContext(ctx, d, a, opts)
	}

	results, err := CheckAllContext(context.Background(), d, as, BatchOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if i == 2 {
			var pe *engine.PanicError
			if r.Err == nil || !errors.As(r.Err, &pe) {
				t.Fatalf("panicking constraint: got %v, want wrapped *engine.PanicError", r.Err)
			}
			if !strings.Contains(r.Err.Error(), "injected failure") {
				t.Fatalf("panic value lost: %v", r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("sibling %d infected by the panic: %v", i, r.Err)
		}
		if r.Test.N == 0 {
			t.Fatalf("sibling %d has a zero test", i)
		}
	}
}

// TestCheckContextDeadline: an expired deadline interrupts a single check
// with an error wrapping context.DeadlineExceeded.
func TestCheckContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	d := batchRelation(9)
	a := sc.Approximate{SC: sc.MustParse("X _||_ D1"), Alpha: 0.05}
	if _, err := CheckContext(ctx, d, a, Options{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want wrapped context.DeadlineExceeded", err)
	}
}
