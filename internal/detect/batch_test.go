package detect

import (
	"math/rand"
	"reflect"
	"testing"

	"scoded/internal/relation"
	"scoded/internal/sc"
)

// batchRelation builds 12 numeric columns: X correlates with D1..D3; the
// I1..I8 columns are independent noise.
func batchRelation(seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	n := 400
	cols := []*relation.Column{}
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	cols = append(cols, relation.NewNumericColumn("X", x))
	for d := 1; d <= 3; d++ {
		v := make([]float64, n)
		for i := range v {
			v[i] = x[i] + 0.5*rng.NormFloat64()
		}
		cols = append(cols, relation.NewNumericColumn(nameD(d), v))
	}
	for d := 1; d <= 8; d++ {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		cols = append(cols, relation.NewNumericColumn(nameI(d), v))
	}
	return relation.MustNew(cols...)
}

func nameD(i int) string { return "D" + string(rune('0'+i)) }
func nameI(i int) string { return "I" + string(rune('0'+i)) }

func TestCheckAllPerConstraintRule(t *testing.T) {
	d := batchRelation(1)
	var as []sc.Approximate
	for i := 1; i <= 3; i++ {
		as = append(as, sc.Approximate{SC: sc.MustParse("X _||_ " + nameD(i)), Alpha: 0.05})
	}
	for i := 1; i <= 8; i++ {
		as = append(as, sc.Approximate{SC: sc.MustParse("X _||_ " + nameI(i)), Alpha: 0.05})
	}
	res, err := CheckAll(d, as, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !res[i].Violated {
			t.Errorf("dependent pair %d not flagged (p=%v)", i, res[i].Test.P)
		}
	}
}

func TestCheckAllFDRControl(t *testing.T) {
	d := batchRelation(2)
	var as []sc.Approximate
	for i := 1; i <= 3; i++ {
		as = append(as, sc.Approximate{SC: sc.MustParse("X _||_ " + nameD(i)), Alpha: 0.05})
	}
	for i := 1; i <= 8; i++ {
		as = append(as, sc.Approximate{SC: sc.MustParse("X _||_ " + nameI(i)), Alpha: 0.05})
	}
	res, err := CheckAll(d, as, BatchOptions{FDR: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !res[i].Violated {
			t.Errorf("strong dependence %d should survive BH (p=%v)", i, res[i].Test.P)
		}
	}
	falsePositives := 0
	for i := 3; i < len(res); i++ {
		if res[i].Violated {
			falsePositives++
		}
	}
	if falsePositives > 1 {
		t.Errorf("BH at q=0.05 flagged %d/8 independent pairs", falsePositives)
	}
}

func TestCheckAllDSCDirectionInverts(t *testing.T) {
	d := batchRelation(3)
	as := []sc.Approximate{
		{SC: sc.MustParse("X ~||~ D1"), Alpha: 0.3}, // dependence present: satisfied
		{SC: sc.MustParse("X ~||~ I1"), Alpha: 0.3}, // dependence absent: violated
	}
	res, err := CheckAll(d, as, BatchOptions{FDR: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Violated {
		t.Errorf("X ~||~ D1 should be satisfied (p=%v)", res[0].Test.P)
	}
	if !res[1].Violated {
		t.Errorf("X ~||~ I1 should be violated (p=%v)", res[1].Test.P)
	}
}

func TestCheckAllErrors(t *testing.T) {
	d := batchRelation(4)
	// A bad constraint fails alone: the rest of the family is still checked.
	res, err := CheckAll(d, []sc.Approximate{
		{SC: sc.MustParse("X _||_ Missing"), Alpha: 0.05},
		{SC: sc.MustParse("X _||_ D1"), Alpha: 0.05},
	}, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err == nil || res[0].Violated {
		t.Errorf("missing column should yield a per-constraint Err, got %+v", res[0])
	}
	if res[1].Err != nil || !res[1].Violated {
		t.Errorf("healthy constraint poisoned by its neighbor: %+v", res[1])
	}
	if _, err := CheckAll(d, []sc.Approximate{{SC: sc.MustParse("X _||_ D1"), Alpha: 0.05}},
		BatchOptions{FDR: 7}); err == nil {
		t.Error("want error for FDR out of range")
	}
	res, err = CheckAll(d, nil, BatchOptions{FDR: 0.05})
	if err != nil || len(res) != 0 {
		t.Errorf("empty family should be fine: %v, %v", res, err)
	}
}

func TestCheckAllErroredExcludedFromFDR(t *testing.T) {
	d := batchRelation(5)
	// The errored result has a zero-value Test.P; were it fed to BH it would
	// count as a p=0 discovery and skew every other decision.
	withErr, err := CheckAll(d, []sc.Approximate{
		{SC: sc.MustParse("Nope _||_ Missing"), Alpha: 0.05},
		{SC: sc.MustParse("X _||_ I1"), Alpha: 0.05},
		{SC: sc.MustParse("X _||_ I2"), Alpha: 0.05},
	}, BatchOptions{FDR: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := CheckAll(d, []sc.Approximate{
		{SC: sc.MustParse("X _||_ I1"), Alpha: 0.05},
		{SC: sc.MustParse("X _||_ I2"), Alpha: 0.05},
	}, BatchOptions{FDR: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if withErr[i+1].Violated != clean[i].Violated {
			t.Errorf("constraint %d: errored neighbor changed the BH decision (%v vs %v)",
				i, withErr[i+1].Violated, clean[i].Violated)
		}
	}
}

func TestCheckAllBHTiedPValues(t *testing.T) {
	d := batchRelation(6)
	// The same constraint twice produces exactly tied p-values; BH must
	// treat the tie consistently (both rejected or neither).
	res, err := CheckAll(d, []sc.Approximate{
		{SC: sc.MustParse("X _||_ D1"), Alpha: 0.05},
		{SC: sc.MustParse("X _||_ D1"), Alpha: 0.05},
		{SC: sc.MustParse("X _||_ I1"), Alpha: 0.05},
		{SC: sc.MustParse("X _||_ I1"), Alpha: 0.05},
	}, BatchOptions{FDR: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Test.P != res[1].Test.P || res[2].Test.P != res[3].Test.P {
		t.Fatalf("duplicate constraints should tie exactly: %v %v / %v %v",
			res[0].Test.P, res[1].Test.P, res[2].Test.P, res[3].Test.P)
	}
	if res[0].Violated != res[1].Violated {
		t.Errorf("tied p-values decided differently: %v vs %v", res[0].Violated, res[1].Violated)
	}
	if res[2].Violated != res[3].Violated {
		t.Errorf("tied p-values decided differently: %v vs %v", res[2].Violated, res[3].Violated)
	}
	if !res[0].Violated {
		t.Errorf("strong dependence should survive BH (p=%v)", res[0].Test.P)
	}
}

func TestCheckAllBHAllRejected(t *testing.T) {
	d := batchRelation(7)
	var as []sc.Approximate
	for i := 1; i <= 3; i++ {
		as = append(as, sc.Approximate{SC: sc.MustParse("X _||_ " + nameD(i)), Alpha: 0.05})
	}
	res, err := CheckAll(d, as, BatchOptions{FDR: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !r.Violated {
			t.Errorf("all-dependent family: constraint %d not rejected (p=%v)", i, r.Test.P)
		}
	}
}

func TestCheckAllBHNoneRejected(t *testing.T) {
	d := batchRelation(8)
	var as []sc.Approximate
	for i := 1; i <= 8; i++ {
		as = append(as, sc.Approximate{SC: sc.MustParse("X _||_ " + nameI(i)), Alpha: 0.05})
	}
	res, err := CheckAll(d, as, BatchOptions{FDR: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Violated {
			t.Errorf("all-independent family: constraint %d rejected (p=%v)", i, r.Test.P)
		}
	}
}

func TestCheckAllBHMixedDirections(t *testing.T) {
	d := batchRelation(9)
	// Interleave ISCs and DSCs on dependent and independent pairs: the
	// per-direction BH partitions must map decisions back to the right
	// input slots, and the DSC direction must invert.
	as := []sc.Approximate{
		{SC: sc.MustParse("X ~||~ D1"), Alpha: 0.3},  // DSC, dependence present: ok
		{SC: sc.MustParse("X _||_ D2"), Alpha: 0.05}, // ISC, dependence present: violated
		{SC: sc.MustParse("X ~||~ I1"), Alpha: 0.3},  // DSC, dependence absent: violated
		{SC: sc.MustParse("X _||_ I2"), Alpha: 0.05}, // ISC, dependence absent: ok
	}
	res, err := CheckAll(d, as, BatchOptions{FDR: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, true, false}
	for i, w := range want {
		if res[i].Violated != w {
			t.Errorf("constraint %d (%s): violated=%v, want %v (p=%v)",
				i, res[i].Constraint.SC, res[i].Violated, w, res[i].Test.P)
		}
	}
}

// familyOf30 builds the acceptance-criteria family: thirty constraints
// mixing directions, conditioning, and one deliberately broken member.
func familyOf30(broken bool) []sc.Approximate {
	var as []sc.Approximate
	for i := 1; i <= 3; i++ {
		as = append(as, sc.Approximate{SC: sc.MustParse("X _||_ " + nameD(i)), Alpha: 0.05})
		as = append(as, sc.Approximate{SC: sc.MustParse("X ~||~ " + nameD(i)), Alpha: 0.3})
	}
	for i := 1; i <= 8; i++ {
		as = append(as, sc.Approximate{SC: sc.MustParse("X _||_ " + nameI(i)), Alpha: 0.05})
		as = append(as, sc.Approximate{SC: sc.MustParse("X ~||~ " + nameI(i)), Alpha: 0.3})
	}
	for i := 1; i <= 7; i++ {
		as = append(as, sc.Approximate{
			SC: sc.MustParse(nameI(i) + " _||_ " + nameI(i+1)), Alpha: 0.05})
	}
	as = append(as, sc.Approximate{SC: sc.MustParse("D1 _||_ D2"), Alpha: 0.05})
	if broken {
		as[13] = sc.Approximate{SC: sc.MustParse("X _||_ Missing"), Alpha: 0.05}
	}
	return as
}

func TestCheckAllParallelMatchesSequential(t *testing.T) {
	d := batchRelation(10)
	as := familyOf30(false)
	if len(as) != 30 {
		t.Fatalf("family size %d, want 30", len(as))
	}
	seq, err := CheckAll(d, as, BatchOptions{FDR: 0.05, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8, 64} {
		par, err := CheckAll(d, as, BatchOptions{FDR: 0.05, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: parallel results differ from sequential", workers)
		}
	}
}

func TestCheckAllParallelErrOrdering(t *testing.T) {
	d := batchRelation(11)
	as := familyOf30(true)
	seq, err := CheckAll(d, as, BatchOptions{FDR: 0.05, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := CheckAll(d, as, BatchOptions{FDR: 0.05, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		se, pe := "", ""
		if seq[i].Err != nil {
			se = seq[i].Err.Error()
		}
		if par[i].Err != nil {
			pe = par[i].Err.Error()
		}
		if se != pe {
			t.Errorf("constraint %d: Err %q (seq) vs %q (par)", i, se, pe)
		}
		if seq[i].Violated != par[i].Violated || seq[i].Test.P != par[i].Test.P {
			t.Errorf("constraint %d: decision drifted under parallelism", i)
		}
	}
	if seq[13].Err == nil {
		t.Error("broken constraint should carry Err")
	}
}

func TestCheckAllSharedRngForcesSequential(t *testing.T) {
	d := batchRelation(12)
	as := []sc.Approximate{
		{SC: sc.MustParse("X _||_ D1"), Alpha: 0.05},
		{SC: sc.MustParse("X _||_ I1"), Alpha: 0.05},
	}
	opts := BatchOptions{Workers: 8}
	opts.Rng = rand.New(rand.NewSource(7))
	opts.Method = ExactKendall
	opts.PermIters = 59
	// The assertion is simply that this is race-free (go test -race) and
	// deterministic across runs.
	a, err := CheckAll(d, as, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Rng = rand.New(rand.NewSource(7))
	b, err := CheckAll(d, as, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("shared-Rng runs should be deterministic")
	}
}
