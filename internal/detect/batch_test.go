package detect

import (
	"math/rand"
	"testing"

	"scoded/internal/relation"
	"scoded/internal/sc"
)

// batchRelation builds 12 numeric columns: X correlates with D1..D3; the
// I1..I8 columns are independent noise.
func batchRelation(seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	n := 400
	cols := []*relation.Column{}
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	cols = append(cols, relation.NewNumericColumn("X", x))
	for d := 1; d <= 3; d++ {
		v := make([]float64, n)
		for i := range v {
			v[i] = x[i] + 0.5*rng.NormFloat64()
		}
		cols = append(cols, relation.NewNumericColumn(nameD(d), v))
	}
	for d := 1; d <= 8; d++ {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		cols = append(cols, relation.NewNumericColumn(nameI(d), v))
	}
	return relation.MustNew(cols...)
}

func nameD(i int) string { return "D" + string(rune('0'+i)) }
func nameI(i int) string { return "I" + string(rune('0'+i)) }

func TestCheckAllPerConstraintRule(t *testing.T) {
	d := batchRelation(1)
	var as []sc.Approximate
	for i := 1; i <= 3; i++ {
		as = append(as, sc.Approximate{SC: sc.MustParse("X _||_ " + nameD(i)), Alpha: 0.05})
	}
	for i := 1; i <= 8; i++ {
		as = append(as, sc.Approximate{SC: sc.MustParse("X _||_ " + nameI(i)), Alpha: 0.05})
	}
	res, err := CheckAll(d, as, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !res[i].Violated {
			t.Errorf("dependent pair %d not flagged (p=%v)", i, res[i].Test.P)
		}
	}
}

func TestCheckAllFDRControl(t *testing.T) {
	d := batchRelation(2)
	var as []sc.Approximate
	for i := 1; i <= 3; i++ {
		as = append(as, sc.Approximate{SC: sc.MustParse("X _||_ " + nameD(i)), Alpha: 0.05})
	}
	for i := 1; i <= 8; i++ {
		as = append(as, sc.Approximate{SC: sc.MustParse("X _||_ " + nameI(i)), Alpha: 0.05})
	}
	res, err := CheckAll(d, as, BatchOptions{FDR: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !res[i].Violated {
			t.Errorf("strong dependence %d should survive BH (p=%v)", i, res[i].Test.P)
		}
	}
	falsePositives := 0
	for i := 3; i < len(res); i++ {
		if res[i].Violated {
			falsePositives++
		}
	}
	if falsePositives > 1 {
		t.Errorf("BH at q=0.05 flagged %d/8 independent pairs", falsePositives)
	}
}

func TestCheckAllDSCDirectionInverts(t *testing.T) {
	d := batchRelation(3)
	as := []sc.Approximate{
		{SC: sc.MustParse("X ~||~ D1"), Alpha: 0.3}, // dependence present: satisfied
		{SC: sc.MustParse("X ~||~ I1"), Alpha: 0.3}, // dependence absent: violated
	}
	res, err := CheckAll(d, as, BatchOptions{FDR: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Violated {
		t.Errorf("X ~||~ D1 should be satisfied (p=%v)", res[0].Test.P)
	}
	if !res[1].Violated {
		t.Errorf("X ~||~ I1 should be violated (p=%v)", res[1].Test.P)
	}
}

func TestCheckAllErrors(t *testing.T) {
	d := batchRelation(4)
	if _, err := CheckAll(d, []sc.Approximate{{SC: sc.MustParse("X _||_ Missing"), Alpha: 0.05}},
		BatchOptions{}); err == nil {
		t.Error("want error for missing column")
	}
	if _, err := CheckAll(d, []sc.Approximate{{SC: sc.MustParse("X _||_ D1"), Alpha: 0.05}},
		BatchOptions{FDR: 7}); err == nil {
		t.Error("want error for FDR out of range")
	}
	res, err := CheckAll(d, nil, BatchOptions{FDR: 0.05})
	if err != nil || len(res) != 0 {
		t.Errorf("empty family should be fine: %v, %v", res, err)
	}
}
