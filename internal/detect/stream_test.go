package detect

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"scoded/internal/kernel"
	"scoded/internal/relation"
	"scoded/internal/sc"
	"scoded/internal/stats"
	"scoded/internal/store"
)

// streamWorkload builds a mixed-kind relation with enough structure to
// exercise every streaming code path: dependent categorical pairs,
// correlated numeric pairs, a rare stratum below MinStratumSize, and a
// NaN-poisoned numeric column.
func streamWorkload(t *testing.T) *relation.Relation {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	const n = 400
	region := make([]string, n)
	c0 := make([]string, n)
	c1 := make([]string, n)
	n0 := make([]float64, n)
	n1 := make([]float64, n)
	n2 := make([]float64, n)
	for i := 0; i < n; i++ {
		region[i] = fmt.Sprintf("r%d", rng.Intn(8))
		if i < 3 {
			region[i] = "rare" // a stratum below the default MinStratumSize
		}
		c0[i] = fmt.Sprintf("v%d", rng.Intn(5))
		if rng.Float64() < 0.4 {
			c1[i] = c0[i] // induce dependence
		} else {
			c1[i] = fmt.Sprintf("v%d", rng.Intn(5))
		}
		n0[i] = rng.NormFloat64() * 10
		n1[i] = n0[i]*0.3 + rng.NormFloat64()
		n2[i] = rng.NormFloat64()
	}
	n2[137] = math.NaN() // poisons any Kendall over N2
	return relation.MustNew(
		relation.NewCategoricalColumn("Region", region),
		relation.NewCategoricalColumn("C0", c0),
		relation.NewCategoricalColumn("C1", c1),
		relation.NewNumericColumn("N0", n0),
		relation.NewNumericColumn("N1", n1),
		relation.NewNumericColumn("N2", n2),
	)
}

// storeStreamer persists rel into a fresh store as three segments and
// returns a Streamer reading it back in windows of windowRows.
func storeStreamer(t *testing.T, rel *relation.Relation, windowRows int) (*kernel.Streamer, *relation.Relation) {
	t.Helper()
	st := openTestStore(t)
	n := rel.NumRows()
	cut1, cut2 := n/3, 2*n/3
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	if _, err := st.Replace("w", rel.Subset(rows[:cut1])); err != nil {
		t.Fatalf("Replace: %v", err)
	}
	for _, part := range [][]int{rows[cut1:cut2], rows[cut2:]} {
		if _, err := st.Append("w", rel.Subset(part)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	m, err := st.Manifest("w")
	if err != nil {
		t.Fatalf("Manifest: %v", err)
	}
	cols := make([]kernel.StreamColumn, len(m.Schema))
	for i, sc := range m.Schema {
		k := relation.Numeric
		if sc.Kind == store.ColKindCategorical {
			k = relation.Categorical
		}
		cols[i] = kernel.StreamColumn{Name: sc.Name, Kind: k}
	}
	streamer, err := kernel.NewStreamer(kernel.StreamSource{
		Columns: cols,
		Rows:    m.Rows,
		Scan: func(ctx context.Context, fn func(*store.Segment) error) error {
			return st.ScanChunks(ctx, "w", windowRows, fn)
		},
	})
	if err != nil {
		t.Fatalf("NewStreamer: %v", err)
	}
	loaded, _, err := st.Load("w")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return streamer, loaded
}

func openTestStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return s
}

func requireSameTest(t *testing.T, label string, got, want Result) {
	t.Helper()
	if (got.Err == nil) != (want.Err == nil) {
		t.Fatalf("%s: Err %v, want %v", label, got.Err, want.Err)
	}
	if got.Err != nil {
		if got.Err.Error() != want.Err.Error() {
			t.Fatalf("%s: Err %q, want %q", label, got.Err, want.Err)
		}
		return
	}
	if got.Method != want.Method || got.Violated != want.Violated {
		t.Fatalf("%s: method/violated = %v/%v, want %v/%v", label, got.Method, got.Violated, want.Method, want.Violated)
	}
	requireSameStats(t, label, got.Test, want.Test)
	if len(got.Strata) != len(want.Strata) {
		t.Fatalf("%s: %d strata, want %d", label, len(got.Strata), len(want.Strata))
	}
	for i := range want.Strata {
		g, w := got.Strata[i], want.Strata[i]
		if g.Key != w.Key || g.Size != w.Size || g.Skipped != w.Skipped {
			t.Fatalf("%s stratum %d: %+v, want %+v", label, i, g, w)
		}
		requireSameStats(t, fmt.Sprintf("%s stratum %s", label, g.Key), g.Test, w.Test)
	}
	if len(got.Leaves) != len(want.Leaves) {
		t.Fatalf("%s: %d leaves, want %d", label, len(got.Leaves), len(want.Leaves))
	}
	for i := range want.Leaves {
		requireSameTest(t, fmt.Sprintf("%s leaf %d", label, i), got.Leaves[i], want.Leaves[i])
	}
}

// requireSameStats demands bit-level equality of every TestResult field:
// the streaming path's contract is exact float reproduction, not
// tolerance-level agreement.
func requireSameStats(t *testing.T, label string, got, want stats.TestResult) {
	t.Helper()
	if math.Float64bits(got.Statistic) != math.Float64bits(want.Statistic) ||
		math.Float64bits(got.P) != math.Float64bits(want.P) ||
		got.DF != want.DF || got.N != want.N || got.Approximate != want.Approximate {
		t.Fatalf("%s: test %+v, want %+v", label, got, want)
	}
}

func streamFamily() []sc.Approximate {
	parse := func(s string) sc.Approximate {
		a, err := sc.ParseApproximate(s)
		if err != nil {
			panic(err)
		}
		return a
	}
	return []sc.Approximate{
		parse("C0 _||_ C1 | Region @ 0.05"), // conditional G, cat x cat
		parse("N0 _||_ N1 | Region @ 0.05"), // conditional Kendall
		parse("C0 _||_ N0 | Region @ 0.05"), // conditional G, mixed kinds
		parse("C0 _||_ C1 @ 0.05"),          // marginal G
		parse("N0 _||_ N1 @ 0.05"),          // marginal Kendall
		{SC: sc.Independence([]string{"C0", "C1"}, []string{"N0"}, []string{"Region"}), Alpha: 0.05}, // set constraint, decomposed
		{SC: sc.Dependence([]string{"N0"}, []string{"N1"}, nil), Alpha: 0.05},                        // DSC direction
		parse("N0 _||_ N2 | Region @ 0.05"),                                                          // NaN-poisoned Kendall: errors
		parse("C0 _||_ Nope @ 0.05"),                                                                 // missing column: errors
	}
}

// TestCheckAllStreamIdentity pins the acceptance criterion: the streamed
// family run is element-for-element bit-identical to the resident run,
// across chunk sizes that split strata mid-segment.
func TestCheckAllStreamIdentity(t *testing.T) {
	rel := streamWorkload(t)
	family := streamFamily()
	for _, windowRows := range []int{0, 1, 7, 1000} {
		streamer, loaded := storeStreamer(t, rel, windowRows)
		opts := BatchOptions{Options: Options{Cache: kernel.New(loaded)}}
		want, err := CheckAllContext(context.Background(), loaded, family, opts)
		if err != nil {
			t.Fatalf("CheckAllContext: %v", err)
		}
		got, err := CheckAllStream(context.Background(), streamer, family, BatchOptions{})
		if err != nil {
			t.Fatalf("CheckAllStream: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("window %d: %d results, want %d", windowRows, len(got), len(want))
		}
		for i := range want {
			requireSameTest(t, fmt.Sprintf("window %d constraint %d (%s)", windowRows, i, family[i].SC), got[i], want[i])
		}
	}
}

// TestCheckAllStreamFDRIdentity pins the BH post-pass on the streamed path.
func TestCheckAllStreamFDRIdentity(t *testing.T) {
	rel := streamWorkload(t)
	family := streamFamily()[:7] // drop the two error cases to keep both families populated
	streamer, loaded := storeStreamer(t, rel, 13)
	want, err := CheckAllContext(context.Background(), loaded, family,
		BatchOptions{Options: Options{Cache: kernel.New(loaded)}, FDR: 0.1})
	if err != nil {
		t.Fatalf("CheckAllContext: %v", err)
	}
	got, err := CheckAllStream(context.Background(), streamer, family, BatchOptions{FDR: 0.1})
	if err != nil {
		t.Fatalf("CheckAllStream: %v", err)
	}
	for i := range want {
		requireSameTest(t, fmt.Sprintf("constraint %d", i), got[i], want[i])
	}
}

func TestStreamEligible(t *testing.T) {
	for _, tc := range []struct {
		opts Options
		want bool
	}{
		{Options{}, true},
		{Options{Method: G}, true},
		{Options{Method: Kendall}, true},
		{Options{Method: Pearson}, false},
		{Options{Method: Spearman}, false},
		{Options{Method: ExactG}, false},
		{Options{Method: ExactKendall}, false},
		{Options{AutoExact: true}, false},
	} {
		if got := StreamEligible(tc.opts); got != tc.want {
			t.Errorf("StreamEligible(%+v) = %v, want %v", tc.opts, got, tc.want)
		}
	}
}

// TestCheckAllStreamCancellation: a cancelled context yields per-constraint
// errors wrapping the context error, like the pool path's drain behavior.
func TestCheckAllStreamCancellation(t *testing.T) {
	rel := streamWorkload(t)
	streamer, _ := storeStreamer(t, rel, 11)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := CheckAllStream(ctx, streamer, streamFamily()[:2], BatchOptions{})
	if err != nil {
		t.Fatalf("CheckAllStream: %v", err)
	}
	for i, r := range got {
		if r.Err == nil || !strings.Contains(r.Err.Error(), context.Canceled.Error()) {
			t.Fatalf("result %d: Err %v, want context cancellation", i, r.Err)
		}
	}
}
