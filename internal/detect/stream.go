package detect

import (
	"context"
	"fmt"

	"scoded/internal/kernel"
	"scoded/internal/sc"
	"scoded/internal/stats"
)

// The streaming detection path (DESIGN.md section 16): CheckAllStream runs
// the same Algorithm 1 decisions as CheckAllContext, but sources its
// statistics from a kernel.Streamer — per-segment sufficient statistics
// merged across store chunks — instead of a materialized relation. Results
// are bit-identical to the in-memory path for every supported method: the
// partials reproduce the exact integers, coding order, and float
// arithmetic of the resident kernels (pinned by TestCheckAllStreamIdentity
// and the stats partial property tests).
//
// The streaming path is deliberately narrower than the resident one. The
// permutation tests (ExactG, ExactKendall, and the AutoExact fallback)
// need full per-stratum row vectors and a shared deterministic Rng, and
// Pearson/Spearman need whole-column float vectors in row order; those
// stay resident-only. StreamEligible gates the choice so callers fall
// back to materialization rather than silently changing statistics.

// StreamEligible reports whether a family run with opts can take the
// streaming path: closed-form G and Kendall (or Auto, which resolves to
// one of them) without the AutoExact permutation fallback.
func StreamEligible(opts Options) bool {
	if opts.AutoExact {
		return false
	}
	switch opts.Method {
	case Auto, G, Kendall:
		return true
	default:
		return false
	}
}

// CheckAllStream checks a family of approximate SCs against a streamed
// dataset. The result slice is element-for-element identical (same
// ordering, same Err wrapping, same FDR post-pass) to CheckAllContext on
// the materialized relation. Constraints run sequentially — each one is a
// full scan pass over the store, so the working set stays bounded by one
// tested column pair instead of the whole dataset; the trade is I/O for
// memory. When ctx ends mid-family, finished constraints keep their
// results and the rest report the context error, mirroring the pool path.
func CheckAllStream(ctx context.Context, st *kernel.Streamer, as []sc.Approximate, opts BatchOptions) ([]Result, error) {
	if opts.FDR < 0 || opts.FDR > 1 {
		return nil, fmt.Errorf("detect: FDR level %v out of [0,1]", opts.FDR)
	}
	o := opts.Options
	results := make([]Result, len(as))
	for i, a := range as {
		var r Result
		err := ctx.Err()
		if err == nil {
			r, err = checkStream(ctx, st, a, o)
		}
		if err != nil {
			r = Result{Constraint: as[i], Err: fmt.Errorf("constraint %d (%s): %w", i, as[i].SC, err)}
		}
		results[i] = r
	}
	if opts.FDR <= 0 {
		return results, nil
	}
	if err := applyFDR(results, opts.FDR); err != nil {
		return nil, err
	}
	return results, nil
}

// checkStream mirrors CheckContext over a streamed source.
func checkStream(ctx context.Context, st *kernel.Streamer, a sc.Approximate, opts Options) (Result, error) {
	if err := a.Validate(); err != nil {
		return Result{}, err
	}
	for _, col := range a.SC.Columns() {
		if _, ok := st.ColumnKind(col); !ok {
			return Result{}, fmt.Errorf("detect: dataset lacks column %q required by %s", col, a.SC)
		}
	}
	if !StreamEligible(opts) {
		return Result{}, fmt.Errorf("detect: method %s is not stream-eligible", opts.Method)
	}
	opts = opts.withDefaults()

	leaves := a.SC.Decompose()
	if len(leaves) == 1 {
		return checkSingleStream(ctx, st, sc.Approximate{SC: leaves[0], Alpha: a.Alpha}, opts)
	}
	leafResults := make([]Result, 0, len(leaves))
	for _, leaf := range leaves {
		if err := ctx.Err(); err != nil {
			return Result{}, fmt.Errorf("detect: %w", err)
		}
		lr, err := checkSingleStream(ctx, st, sc.Approximate{SC: leaf, Alpha: a.Alpha}, opts)
		if err != nil {
			return Result{}, fmt.Errorf("detect: leaf %s: %w", leaf, err)
		}
		leafResults = append(leafResults, lr)
	}
	return combineLeaves(a, leafResults, st.Rows())
}

// checkSingleStream mirrors checkSingle: one streaming pass accumulates
// every stratum's sufficient statistic, then the shared stratumCombiner
// fuses them exactly as the resident conditional path does.
func checkSingleStream(ctx context.Context, st *kernel.Streamer, a sc.Approximate, opts Options) (Result, error) {
	x, y := a.SC.X[0], a.SC.Y[0]
	kx, _ := st.ColumnKind(x)
	ky, _ := st.ColumnKind(y)
	method, err := resolveMethodKinds(x, y, kx, ky, opts.Method)
	if err != nil {
		return Result{}, err
	}
	res := Result{Constraint: a, Method: method}

	var sres *kernel.StreamResult
	if method == Kendall {
		sres, err = st.RunKendall(ctx, a.SC.Z, x, y)
	} else {
		sres, err = st.RunTable(ctx, a.SC.Z, x, y, opts.Bins)
	}
	if err != nil {
		return Result{}, fmt.Errorf("detect: %w", err)
	}

	if a.SC.IsMarginal() {
		stratum := sres.Strata[""]
		if stratum == nil {
			// Zero-row dataset: synthesize the empty stratum so the test
			// errors exactly like the resident path's empty-input errors.
			stratum = &kernel.StreamStratum{Kendall: stats.NewKendallPartial()}
			if method != Kendall {
				stratum.Table = stats.Table{}
			}
		}
		tr, err := streamStratumTest(stratum, method)
		if err != nil {
			return Result{}, err
		}
		res.Test = tr
	} else {
		var strata []StratumResult
		comb := stratumCombiner{method: method}
		for _, k := range sres.Keys {
			if err := ctx.Err(); err != nil {
				return Result{}, fmt.Errorf("detect: %w", err)
			}
			stratum := sres.Strata[k]
			sr := StratumResult{Key: displayKey(k), Size: stratum.Size}
			if stratum.Size < opts.MinStratumSize {
				sr.Skipped = true
				strata = append(strata, sr)
				continue
			}
			tr, err := streamStratumTest(stratum, method)
			if err != nil {
				return Result{}, fmt.Errorf("detect: stratum %s: %w", sr.Key, err)
			}
			sr.Test = tr
			strata = append(strata, sr)
			comb.add(tr, stratum.Size)
		}
		tr, err := comb.combine(st.Rows())
		if err != nil {
			return Result{}, err
		}
		res.Test = tr
		res.Strata = strata
	}

	if a.SC.Dependence {
		res.Violated = res.Test.P >= a.Alpha
	} else {
		res.Violated = res.Test.P < a.Alpha
	}
	return res, nil
}

// streamStratumTest evaluates one stratum's accumulated statistic.
func streamStratumTest(stratum *kernel.StreamStratum, method Method) (stats.TestResult, error) {
	if method == Kendall {
		return stratum.Kendall.Test()
	}
	return stats.GTest(stratum.Table)
}
