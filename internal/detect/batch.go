package detect

import (
	"fmt"

	"scoded/internal/relation"
	"scoded/internal/sc"
	"scoded/internal/stats"
)

// BatchOptions configures CheckAll.
type BatchOptions struct {
	// Options apply to every individual check.
	Options
	// FDR, when positive, replaces the per-constraint alpha decisions with
	// family-wise Benjamini-Hochberg control at that false discovery
	// rate: independence SCs are flagged violated when their p-value is
	// BH-rejected within the ISC family; dependence SCs when their
	// p-value is NOT rejected within the DSC family (their violation
	// direction inverts, so the DSC family is tested on the dependence
	// evidence). Zero keeps Algorithm 1's per-constraint rule.
	FDR float64
}

// CheckAll checks a family of approximate SCs against one dataset. With
// FDR control enabled the multiple-testing problem of enforcing many
// constraints at once (the paper's Nebraska setting runs thirty per-year
// tests) is handled by Benjamini-Hochberg within each constraint
// direction.
func CheckAll(d *relation.Relation, as []sc.Approximate, opts BatchOptions) ([]Result, error) {
	results := make([]Result, len(as))
	for i, a := range as {
		r, err := Check(d, a, opts.Options)
		if err != nil {
			return nil, fmt.Errorf("detect: constraint %d (%s): %w", i, a.SC, err)
		}
		results[i] = r
	}
	if opts.FDR <= 0 {
		return results, nil
	}

	// Partition by direction: ISC violations are small-p discoveries;
	// DSC violations are failures to discover dependence.
	var iscIdx, dscIdx []int
	var iscPs, dscPs []float64
	for i, r := range results {
		if r.Constraint.SC.Dependence {
			dscIdx = append(dscIdx, i)
			dscPs = append(dscPs, r.Test.P)
		} else {
			iscIdx = append(iscIdx, i)
			iscPs = append(iscPs, r.Test.P)
		}
	}
	if len(iscIdx) > 0 {
		rej, err := stats.BenjaminiHochberg(iscPs, opts.FDR)
		if err != nil {
			return nil, err
		}
		for j, i := range iscIdx {
			results[i].Violated = rej[j]
		}
	}
	if len(dscIdx) > 0 {
		rej, err := stats.BenjaminiHochberg(dscPs, opts.FDR)
		if err != nil {
			return nil, err
		}
		for j, i := range dscIdx {
			// A DSC is satisfied when its dependence is discovered.
			results[i].Violated = !rej[j]
		}
	}
	return results, nil
}
