package detect

import (
	"fmt"
	"runtime"
	"sync"

	"scoded/internal/relation"
	"scoded/internal/sc"
	"scoded/internal/stats"
)

// BatchOptions configures CheckAll.
type BatchOptions struct {
	// Options apply to every individual check.
	Options
	// FDR, when positive, replaces the per-constraint alpha decisions with
	// family-wise Benjamini-Hochberg control at that false discovery
	// rate: independence SCs are flagged violated when their p-value is
	// BH-rejected within the ISC family; dependence SCs when their
	// p-value is NOT rejected within the DSC family (their violation
	// direction inverts, so the DSC family is tested on the dependence
	// evidence). Zero keeps Algorithm 1's per-constraint rule.
	FDR float64
	// Workers bounds the worker pool checking constraints concurrently.
	// Zero or negative means runtime.GOMAXPROCS(0). A caller-supplied
	// Options.Rng forces sequential execution (Workers=1), because a
	// shared *rand.Rand is not safe for concurrent use; leave Rng nil to
	// let every worker seed its own deterministic default.
	Workers int
}

// CheckAll checks a family of approximate SCs against one dataset, fanning
// the per-constraint checks out over a bounded worker pool. Results are
// returned in input order and are identical to a sequential run.
//
// A constraint that cannot be checked (malformed, missing column, wrong
// method for its column kinds) no longer aborts the family: its Result
// carries the failure in Err, its Test is the zero value, and the
// remaining constraints are still checked. Errored constraints are
// excluded from FDR control. CheckAll itself only returns a non-nil error
// for family-level problems (an FDR level out of range).
//
// With FDR control enabled the multiple-testing problem of enforcing many
// constraints at once (the paper's Nebraska setting runs thirty per-year
// tests) is handled by Benjamini-Hochberg within each constraint
// direction.
func CheckAll(d *relation.Relation, as []sc.Approximate, opts BatchOptions) ([]Result, error) {
	if opts.FDR < 0 || opts.FDR > 1 {
		return nil, fmt.Errorf("detect: FDR level %v out of [0,1]", opts.FDR)
	}
	results := make([]Result, len(as))
	checkOne := func(i int) {
		r, err := Check(d, as[i], opts.Options)
		if err != nil {
			r = Result{Constraint: as[i], Err: fmt.Errorf("constraint %d (%s): %w", i, as[i].SC, err)}
		}
		results[i] = r
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(as) {
		workers = len(as)
	}
	if opts.Rng != nil {
		// A shared Rng cannot be used from several goroutines.
		workers = 1
	}
	if workers <= 1 {
		for i := range as {
			checkOne(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					checkOne(i)
				}
			}()
		}
		for i := range as {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	if opts.FDR <= 0 {
		return results, nil
	}

	// Partition by direction: ISC violations are small-p discoveries;
	// DSC violations are failures to discover dependence. Errored
	// constraints carry no p-value and stay out of both families.
	var iscIdx, dscIdx []int
	var iscPs, dscPs []float64
	for i, r := range results {
		if r.Err != nil {
			continue
		}
		if r.Constraint.SC.Dependence {
			dscIdx = append(dscIdx, i)
			dscPs = append(dscPs, r.Test.P)
		} else {
			iscIdx = append(iscIdx, i)
			iscPs = append(iscPs, r.Test.P)
		}
	}
	if len(iscIdx) > 0 {
		rej, err := stats.BenjaminiHochberg(iscPs, opts.FDR)
		if err != nil {
			return nil, err
		}
		for j, i := range iscIdx {
			results[i].Violated = rej[j]
		}
	}
	if len(dscIdx) > 0 {
		rej, err := stats.BenjaminiHochberg(dscPs, opts.FDR)
		if err != nil {
			return nil, err
		}
		for j, i := range dscIdx {
			// A DSC is satisfied when its dependence is discovered.
			results[i].Violated = !rej[j]
		}
	}
	return results, nil
}
