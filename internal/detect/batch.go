package detect

import (
	"context"
	"fmt"

	"scoded/internal/engine"
	"scoded/internal/relation"
	"scoded/internal/sc"
	"scoded/internal/stats"
)

// BatchOptions configures CheckAll.
type BatchOptions struct {
	// Options apply to every individual check.
	Options
	// FDR, when positive, replaces the per-constraint alpha decisions with
	// family-wise Benjamini-Hochberg control at that false discovery
	// rate: independence SCs are flagged violated when their p-value is
	// BH-rejected within the ISC family; dependence SCs when their
	// p-value is NOT rejected within the DSC family (their violation
	// direction inverts, so the DSC family is tested on the dependence
	// evidence). Zero keeps Algorithm 1's per-constraint rule.
	FDR float64
	// Workers bounds the worker pool checking constraints concurrently.
	// Zero or negative means runtime.GOMAXPROCS(0). A caller-supplied
	// Options.Rng forces sequential execution (Workers=1), because a
	// shared *rand.Rand is not safe for concurrent use; leave Rng nil to
	// let every worker seed its own deterministic default.
	Workers int
	// Hooks observes per-constraint execution (the server wires these into
	// /metrics as an in-flight gauge and latency counters). Optional.
	Hooks engine.Hooks
}

// checkForBatch is the per-constraint check the batch runs; a variable so
// the panic-isolation test can inject a panicking constraint without
// corrupting real datasets.
var checkForBatch = CheckContext

// CheckAll checks a family with no deadline; see CheckAllContext.
func CheckAll(d *relation.Relation, as []sc.Approximate, opts BatchOptions) ([]Result, error) {
	return CheckAllContext(context.Background(), d, as, opts)
}

// CheckAllContext checks a family of approximate SCs against one dataset,
// fanning the per-constraint checks out over the engine's bounded worker
// pool. Results are returned in input order and are identical to a
// sequential run.
//
// A constraint that cannot be checked (malformed, missing column, wrong
// method for its column kinds) no longer aborts the family: its Result
// carries the failure in Err, its Test is the zero value, and the
// remaining constraints are still checked. A panic inside one constraint's
// worker surfaces the same way, as that constraint's Err wrapping
// *engine.PanicError. When ctx ends mid-batch the completed constraints
// keep their real results and every unfinished one reports an Err wrapping
// the context's error — partial results, never a hung pool. Errored
// constraints are excluded from FDR control. CheckAllContext itself only
// returns a non-nil error for family-level problems (an FDR level out of
// range).
//
// With FDR control enabled the multiple-testing problem of enforcing many
// constraints at once (the paper's Nebraska setting runs thirty per-year
// tests) is handled by Benjamini-Hochberg within each constraint
// direction.
func CheckAllContext(ctx context.Context, d *relation.Relation, as []sc.Approximate, opts BatchOptions) ([]Result, error) {
	if opts.FDR < 0 || opts.FDR > 1 {
		return nil, fmt.Errorf("detect: FDR level %v out of [0,1]", opts.FDR)
	}
	workers := opts.Workers
	if opts.Rng != nil {
		// A shared Rng cannot be used from several goroutines.
		workers = 1
	}
	results := make([]Result, len(as))
	errs := engine.Run(ctx, len(as), engine.Options{Workers: workers, Hooks: opts.Hooks},
		func(ctx context.Context, i int) error {
			r, err := checkForBatch(ctx, d, as[i], opts.Options)
			if err != nil {
				r = Result{Constraint: as[i], Err: fmt.Errorf("constraint %d (%s): %w", i, as[i].SC, err)}
			}
			results[i] = r
			return r.Err
		})
	// Items the function never finished — a recovered panic, or a queue
	// entry drained by cancellation — wrote no Result; record the engine's
	// per-item error the same way a check failure is recorded.
	for i, err := range errs {
		if err != nil && results[i].Err == nil {
			results[i] = Result{Constraint: as[i], Err: fmt.Errorf("constraint %d (%s): %w", i, as[i].SC, err)}
		}
	}
	if opts.FDR <= 0 {
		return results, nil
	}
	if err := applyFDR(results, opts.FDR); err != nil {
		return nil, err
	}
	return results, nil
}

// applyFDR replaces the per-constraint alpha decisions in results with
// family-wise Benjamini-Hochberg control. Shared by the resident and
// streaming batch paths.
//
// Partition by direction: ISC violations are small-p discoveries;
// DSC violations are failures to discover dependence. Errored
// constraints carry no p-value and stay out of both families.
func applyFDR(results []Result, fdr float64) error {
	var iscIdx, dscIdx []int
	var iscPs, dscPs []float64
	for i, r := range results {
		if r.Err != nil {
			continue
		}
		if r.Constraint.SC.Dependence {
			dscIdx = append(dscIdx, i)
			dscPs = append(dscPs, r.Test.P)
		} else {
			iscIdx = append(iscIdx, i)
			iscPs = append(iscPs, r.Test.P)
		}
	}
	if len(iscIdx) > 0 {
		rej, err := stats.BenjaminiHochberg(iscPs, fdr)
		if err != nil {
			return err
		}
		for j, i := range iscIdx {
			results[i].Violated = rej[j]
		}
	}
	if len(dscIdx) > 0 {
		rej, err := stats.BenjaminiHochberg(dscPs, fdr)
		if err != nil {
			return err
		}
		for j, i := range dscIdx {
			// A DSC is satisfied when its dependence is discovered.
			results[i].Violated = !rej[j]
		}
	}
	return nil
}
