package detect

import (
	"math/rand"
	"testing"

	"scoded/internal/relation"
	"scoded/internal/sc"
)

// figure2Relation is the updated car database of Figure 2: the original 8
// records plus the inserted r9-r16, after which Model and Color are
// correlated.
func figure2Relation() *relation.Relation {
	models := []string{
		"BMW X1", "BMW X1", "BMW X1", "BMW X1",
		"Toyota Prius", "Toyota Prius", "Toyota Prius", "Toyota Prius",
		"BMW X1", "BMW X1", "BMW X1", "BMW X1",
		"Toyota Prius", "Toyota Prius", "Toyota Prius", "Toyota Prius",
	}
	colors := []string{
		"White", "Black", "White", "Black",
		"White", "White", "White", "Black",
		"White", "White", "White", "Black",
		"Black", "Black", "Black", "Black",
	}
	return relation.MustNew(
		relation.NewCategoricalColumn("Model", models),
		relation.NewCategoricalColumn("Color", colors),
	)
}

// independentCategorical builds a large sample from an exactly independent
// joint.
func independentCategorical(n int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	a := make([]string, n)
	b := make([]string, n)
	la := []string{"a1", "a2", "a3"}
	lb := []string{"b1", "b2"}
	for i := 0; i < n; i++ {
		a[i] = la[rng.Intn(3)]
		b[i] = lb[rng.Intn(2)]
	}
	return relation.MustNew(
		relation.NewCategoricalColumn("A", a),
		relation.NewCategoricalColumn("B", b),
	)
}

func TestCheckISCOnIndependentData(t *testing.T) {
	d := independentCategorical(2000, 5)
	res, err := Check(d, sc.Approximate{SC: sc.MustParse("A _||_ B"), Alpha: 0.05}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violated {
		t.Errorf("independent data flagged as violating ISC (p=%v)", res.Test.P)
	}
	if res.Method != G {
		t.Errorf("method = %v, want G", res.Method)
	}
}

func TestCheckISCDetectsInjectedDependence(t *testing.T) {
	// The Figure 2 scenario: after inserting r9-r16, Model and Color skew
	// towards (BMW, White) and (Prius, Black). With only 16 rows the skew
	// is illustrative, not significant; the test statistic must still move
	// in the right direction, and the violation becomes significant once
	// the same insertion pattern accumulates (replicated x8 here).
	d := figure2Relation()
	res, err := Check(d, sc.Approximate{SC: sc.MustParse("Model _||_ Color"), Alpha: 0.05}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Test.Statistic <= 0 {
		t.Errorf("G = %v, want positive", res.Test.Statistic)
	}
	if !res.Test.Approximate {
		t.Error("n=16 with small expected counts should be flagged approximate")
	}

	// Replicate the pattern: 8 copies of the same 16 rows.
	var rows []int
	for rep := 0; rep < 8; rep++ {
		for i := 0; i < d.NumRows(); i++ {
			rows = append(rows, i)
		}
	}
	big := d.Subset(rows)
	res, err = Check(big, sc.Approximate{SC: sc.MustParse("Model _||_ Color"), Alpha: 0.05}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated {
		t.Errorf("replicated Figure 2 violation not detected (p=%v)", res.Test.P)
	}
}

func TestCheckDSCOnDependentData(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 500
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = x[i] + 0.3*rng.NormFloat64()
	}
	d := relation.MustNew(
		relation.NewNumericColumn("X", x),
		relation.NewNumericColumn("Y", y),
	)
	res, err := Check(d, sc.Approximate{SC: sc.MustParse("X ~||~ Y"), Alpha: 0.05}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violated {
		t.Errorf("strong dependence should satisfy the DSC (p=%v)", res.Test.P)
	}
	if res.Method != Kendall {
		t.Errorf("method = %v, want Kendall", res.Method)
	}
}

func TestCheckDSCViolatedByIndependentData(t *testing.T) {
	// Under true independence the p-value is uniform, so a DSC with
	// alpha=0.3 is violated (p >= 0.3) on ~70% of samples. Check the rate
	// over many independent draws rather than one flaky draw.
	rng := rand.New(rand.NewSource(7))
	trials, violated := 60, 0
	for trial := 0; trial < trials; trial++ {
		n := 300
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		d := relation.MustNew(
			relation.NewNumericColumn("X", x),
			relation.NewNumericColumn("Y", y),
		)
		res, err := Check(d, sc.Approximate{SC: sc.MustParse("X ~||~ Y"), Alpha: 0.3}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violated {
			violated++
		}
	}
	rate := float64(violated) / float64(trials)
	if rate < 0.5 || rate > 0.9 {
		t.Errorf("DSC violation rate under independence = %v, want ~0.7", rate)
	}
}

func TestCheckConditionalISC(t *testing.T) {
	// Y depends on X only through Z: X ⊥ Y | Z holds, X ⊥ Y does not.
	rng := rand.New(rand.NewSource(8))
	n := 3000
	zs := make([]string, n)
	xs := make([]string, n)
	ys := make([]string, n)
	for i := 0; i < n; i++ {
		z := rng.Intn(2)
		zs[i] = []string{"z0", "z1"}[z]
		// X and Y each follow Z with probability 0.85, independently.
		flip := func() string {
			v := z
			if rng.Float64() > 0.85 {
				v = 1 - z
			}
			return []string{"v0", "v1"}[v]
		}
		xs[i] = flip()
		ys[i] = flip()
	}
	d := relation.MustNew(
		relation.NewCategoricalColumn("Z", zs),
		relation.NewCategoricalColumn("X", xs),
		relation.NewCategoricalColumn("Y", ys),
	)
	marg, err := Check(d, sc.Approximate{SC: sc.MustParse("X _||_ Y"), Alpha: 0.05}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !marg.Violated {
		t.Errorf("marginal X ⊥ Y should be violated (p=%v)", marg.Test.P)
	}
	cond, err := Check(d, sc.Approximate{SC: sc.MustParse("X _||_ Y | Z"), Alpha: 0.05}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cond.Violated {
		t.Errorf("conditional X ⊥ Y | Z should hold (p=%v)", cond.Test.P)
	}
	if len(cond.Strata) != 2 {
		t.Errorf("strata = %d, want 2", len(cond.Strata))
	}
	for _, s := range cond.Strata {
		if s.Skipped {
			t.Errorf("stratum %s skipped unexpectedly", s.Key)
		}
	}
}

func TestCheckConditionalNumericStouffer(t *testing.T) {
	// Within each stratum X and Y are dependent; the combined conditional
	// DSC should be satisfied.
	rng := rand.New(rand.NewSource(9))
	n := 600
	zs := make([]string, n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		zs[i] = []string{"g0", "g1", "g2"}[rng.Intn(3)]
		xs[i] = rng.NormFloat64()
		ys[i] = xs[i] + rng.NormFloat64()
	}
	d := relation.MustNew(
		relation.NewCategoricalColumn("Year", zs),
		relation.NewNumericColumn("Wind", xs),
		relation.NewNumericColumn("Weather", ys),
	)
	res, err := Check(d, sc.Approximate{SC: sc.MustParse("Wind ~||~ Weather | Year"), Alpha: 0.3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violated {
		t.Errorf("dependence present in every stratum; DSC should hold (p=%v)", res.Test.P)
	}
	if res.Method != Kendall {
		t.Errorf("method = %v", res.Method)
	}
}

func TestCheckSmallStrataSkipped(t *testing.T) {
	d := relation.MustNew(
		relation.NewCategoricalColumn("Z", []string{"a", "a", "a", "a", "a", "a", "b"}),
		relation.NewCategoricalColumn("X", []string{"0", "1", "0", "1", "0", "1", "0"}),
		relation.NewCategoricalColumn("Y", []string{"0", "1", "0", "1", "0", "1", "0"}),
	)
	res, err := Check(d, sc.Approximate{SC: sc.MustParse("X _||_ Y | Z"), Alpha: 0.05},
		Options{MinStratumSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	skipped := 0
	for _, s := range res.Strata {
		if s.Skipped {
			skipped++
		}
	}
	if skipped != 1 {
		t.Errorf("skipped strata = %d, want 1 (the singleton b)", skipped)
	}
}

func TestCheckAllStrataTooSmall(t *testing.T) {
	d := relation.MustNew(
		relation.NewCategoricalColumn("Z", []string{"a", "b", "c"}),
		relation.NewCategoricalColumn("X", []string{"0", "1", "0"}),
		relation.NewCategoricalColumn("Y", []string{"0", "1", "0"}),
	)
	res, err := Check(d, sc.Approximate{SC: sc.MustParse("X _||_ Y | Z"), Alpha: 0.05}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violated || res.Test.P != 1 {
		t.Errorf("no testable stratum: violated=%v p=%v", res.Violated, res.Test.P)
	}
}

func TestCheckDecomposedSetISC(t *testing.T) {
	// X ⊥ {Y1, Y2}: plant a dependence between X and Y2 only.
	rng := rand.New(rand.NewSource(10))
	n := 1500
	xs := make([]string, n)
	y1 := make([]string, n)
	y2 := make([]string, n)
	for i := 0; i < n; i++ {
		x := rng.Intn(2)
		xs[i] = []string{"x0", "x1"}[x]
		y1[i] = []string{"a", "b"}[rng.Intn(2)]
		v := x
		if rng.Float64() > 0.8 {
			v = 1 - x
		}
		y2[i] = []string{"a", "b"}[v]
	}
	d := relation.MustNew(
		relation.NewCategoricalColumn("X", xs),
		relation.NewCategoricalColumn("Y1", y1),
		relation.NewCategoricalColumn("Y2", y2),
	)
	res, err := Check(d, sc.Approximate{SC: sc.MustParse("X _||_ Y1,Y2"), Alpha: 0.01}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated {
		t.Errorf("set ISC should be violated via the Y2 leaf (p=%v)", res.Test.P)
	}
	if len(res.Leaves) != 2 {
		t.Fatalf("leaves = %d", len(res.Leaves))
	}
}

func TestCheckMixedPairDiscretizes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 1000
	num := make([]float64, n)
	cat := make([]string, n)
	for i := 0; i < n; i++ {
		num[i] = rng.NormFloat64()
		if num[i] > 0 {
			cat[i] = "pos"
		} else {
			cat[i] = "neg"
		}
		if rng.Float64() < 0.1 { // noise
			cat[i] = []string{"pos", "neg"}[rng.Intn(2)]
		}
	}
	d := relation.MustNew(
		relation.NewNumericColumn("V", num),
		relation.NewCategoricalColumn("L", cat),
	)
	res, err := Check(d, sc.Approximate{SC: sc.MustParse("V _||_ L"), Alpha: 0.05}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != G {
		t.Errorf("mixed pair should auto-select G, got %v", res.Method)
	}
	if !res.Violated {
		t.Errorf("mixed dependence missed (p=%v)", res.Test.P)
	}
}

func TestCheckExactMethods(t *testing.T) {
	d := figure2Relation()
	res, err := Check(d, sc.Approximate{SC: sc.MustParse("Model _||_ Color"), Alpha: 0.10},
		Options{Method: ExactG, PermIters: 499, Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Test.P <= 0 || res.Test.P > 1 {
		t.Errorf("exact p = %v", res.Test.P)
	}

	x := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	y := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	dn := relation.MustNew(
		relation.NewNumericColumn("X", x),
		relation.NewNumericColumn("Y", y),
	)
	res, err = Check(dn, sc.Approximate{SC: sc.MustParse("X _||_ Y"), Alpha: 0.05},
		Options{Method: ExactKendall, PermIters: 499, Rng: rand.New(rand.NewSource(4))})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated {
		t.Errorf("perfect dependence should violate the ISC under the exact test (p=%v)", res.Test.P)
	}
}

func TestCheckAutoExactFallback(t *testing.T) {
	// A small sample flagged Approximate by the closed-form G-test should
	// be recomputed by the permutation test when AutoExact is set: the
	// Monte-Carlo p is granular (multiples of 1/(iters+1)) and bounded
	// below by 1/(iters+1).
	d := figure2Relation()
	a := sc.Approximate{SC: sc.MustParse("Model _||_ Color"), Alpha: 0.05}
	plain, err := Check(d, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Test.Approximate {
		t.Fatal("n=16 should be flagged approximate")
	}
	exact, err := Check(d, a, Options{AutoExact: true, PermIters: 199, Rng: rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	// The exact p is a multiple of 1/200.
	scaled := exact.Test.P * 200
	if diff := scaled - float64(int(scaled+0.5)); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("exact p=%v is not on the Monte-Carlo grid", exact.Test.P)
	}
	// A large sample is not in the fallback regime, so AutoExact is a
	// no-op there.
	big := independentCategorical(2000, 6)
	ref, err := Check(big, sc.Approximate{SC: sc.MustParse("A _||_ B"), Alpha: 0.05}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	auto, err := Check(big, sc.Approximate{SC: sc.MustParse("A _||_ B"), Alpha: 0.05}, Options{AutoExact: true})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Test.P != auto.Test.P {
		t.Errorf("AutoExact changed a non-approximate result: %v vs %v", ref.Test.P, auto.Test.P)
	}
}

func TestCheckErrors(t *testing.T) {
	d := figure2Relation()
	if _, err := Check(d, sc.Approximate{SC: sc.MustParse("Model _||_ Missing"), Alpha: 0.05}, Options{}); err == nil {
		t.Error("want error for missing column")
	}
	if _, err := Check(d, sc.Approximate{SC: sc.MustParse("Model _||_ Color"), Alpha: 2}, Options{}); err == nil {
		t.Error("want error for bad alpha")
	}
	// Kendall on categorical columns must be rejected.
	if _, err := Check(d, sc.Approximate{SC: sc.MustParse("Model _||_ Color"), Alpha: 0.05},
		Options{Method: Kendall}); err == nil {
		t.Error("want error for Kendall on categorical data")
	}
}

func TestMethodString(t *testing.T) {
	names := map[Method]string{
		Auto: "auto", G: "g-test", Kendall: "kendall", Pearson: "pearson",
		Spearman: "spearman", ExactG: "exact-g", ExactKendall: "exact-kendall",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
	if Method(99).String() == "" {
		t.Error("unknown method should still render")
	}
}

func TestDiscretizeQuantile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	codes, k := DiscretizeQuantile(vals, 4)
	if k != 4 {
		t.Fatalf("bins = %d, want 4", k)
	}
	// Equal values must share a bin.
	tied := []float64{1, 1, 1, 1, 1, 2}
	codes, k = DiscretizeQuantile(tied, 4)
	first := codes[0]
	for i := 1; i < 5; i++ {
		if codes[i] != first {
			t.Errorf("equal values split across bins: %v", codes)
		}
	}
	if k < 1 || k > 4 {
		t.Errorf("k = %d", k)
	}
	if c, k := DiscretizeQuantile(nil, 4); c != nil || k != 0 {
		t.Error("empty input should return empty")
	}
	// Constant column collapses to one bin.
	_, k = DiscretizeQuantile([]float64{5, 5, 5, 5}, 3)
	if k != 1 {
		t.Errorf("constant column bins = %d, want 1", k)
	}
}

func TestDiscretizeQuantileBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	codes, k := DiscretizeQuantile(vals, 4)
	if k != 4 {
		t.Fatalf("bins = %d", k)
	}
	counts := make([]int, k)
	for _, c := range codes {
		counts[c]++
	}
	for b, n := range counts {
		if n < 200 || n > 300 {
			t.Errorf("bin %d count = %d, want ~250", b, n)
		}
	}
}
