// Package detect implements SCODED's violation-detection component
// (Algorithm 1 of the paper): given a dataset and an approximate SC
// ⟨φ, α⟩, compute the test statistic, its p-value under the null of
// independence, and decide whether the constraint is violated.
//
// Independence SCs are violated when p < α (the data shows significant
// dependence where independence was asserted). Dependence SCs invert the
// rule: they are violated when p >= α (the asserted dependence is absent),
// matching the paper's Nebraska case study where "p > 0.3 violates the
// dependence constraint".
//
// Conditional constraints X ⊥ Y | Z are tested by stratifying on the value
// of Z: per-stratum G statistics are summed (with their degrees of freedom),
// and per-stratum Kendall z-scores are combined by the weighted Stouffer
// rule. Set-valued X or Y are handled by the decomposition principle.
package detect

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"scoded/internal/kernel"
	"scoded/internal/relation"
	"scoded/internal/sc"
	"scoded/internal/stats"
)

// Method selects the hypothesis-test statistic.
type Method int

const (
	// Auto picks G for categorical pairs, Kendall for numeric pairs, and
	// G-after-discretization for mixed pairs.
	Auto Method = iota
	// G uses the G-test (categorical; numeric columns are discretized).
	G
	// Kendall uses Kendall's tau-b with the Gaussian approximation
	// (numeric; categorical columns are rejected).
	Kendall
	// Pearson uses Pearson's r with the t reference distribution.
	Pearson
	// Spearman uses Spearman's rho with the t reference distribution.
	Spearman
	// ExactG uses a Monte-Carlo permutation G-test (for small samples).
	ExactG
	// ExactKendall uses a Monte-Carlo permutation tau test.
	ExactKendall
)

// String names the method.
func (m Method) String() string {
	switch m {
	case Auto:
		return "auto"
	case G:
		return "g-test"
	case Kendall:
		return "kendall"
	case Pearson:
		return "pearson"
	case Spearman:
		return "spearman"
	case ExactG:
		return "exact-g"
	case ExactKendall:
		return "exact-kendall"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options configures violation detection.
type Options struct {
	// Method selects the test statistic; Auto by default.
	Method Method
	// Bins is the number of quantile bins used to discretize numeric
	// columns for the G-test; defaults to 4.
	Bins int
	// MinStratumSize drops conditioning strata smaller than this from the
	// combined conditional test (the paper requires N_D(Z=z) to be
	// sufficiently large). Defaults to 5.
	MinStratumSize int
	// PermIters is the Monte-Carlo iteration count for exact tests;
	// defaults to 999.
	PermIters int
	// AutoExact re-runs a test with its Monte-Carlo exact variant whenever
	// the closed-form approximation is outside its validity regime
	// (expected counts below 5 for the G-test, n <= 60 for tau) — the
	// Section 4.3 fallback rule.
	AutoExact bool
	// Rng seeds the exact tests; defaults to a fixed seed for
	// reproducibility.
	Rng *rand.Rand
	// Cache, when non-nil, is a kernel.Cache bound to the dataset being
	// checked: column codings, conditioning partitions, contingency tables
	// and Kendall precomputations are read through (and memoized in) it, so
	// constraints sharing attributes or conditioning sets share one
	// computation. Results are bit-identical with or without a cache. The
	// cache must have been created on the same relation; Check rejects a
	// mismatched binding.
	Cache *kernel.Cache
}

func (o Options) withDefaults() Options {
	if o.Bins <= 1 {
		o.Bins = 4
	}
	if o.MinStratumSize <= 0 {
		o.MinStratumSize = 5
	}
	if o.PermIters <= 0 {
		o.PermIters = 999
	}
	// The default Rng is created only when a permutation test can actually
	// consume it: seeding a rand.Source costs ~5KB and a full seed pass, and
	// the closed-form methods never draw from it. The gate is exact — testPair
	// reads Rng only on the ExactG / ExactKendall methods and the AutoExact
	// re-run — and when the Rng is created it is the same source, seeded
	// identically and shared across all strata of the check, so exact-test
	// results are unchanged.
	if o.Rng == nil && (o.AutoExact || o.Method == ExactG || o.Method == ExactKendall) {
		o.Rng = rand.New(rand.NewSource(1))
	}
	return o
}

// StratumResult is the test outcome within one conditioning stratum Z = z.
type StratumResult struct {
	// Key identifies the stratum's Z assignment (display form).
	Key string
	// Size is the stratum's record count.
	Size int
	// Test is the within-stratum test result.
	Test stats.TestResult
	// Skipped is true when the stratum was too small to test.
	Skipped bool
}

// Result reports the outcome of checking one approximate SC.
type Result struct {
	// Constraint is the checked approximate SC.
	Constraint sc.Approximate
	// Method is the statistic actually used (after Auto resolution).
	Method Method
	// Test is the overall test result: for conditional constraints, the
	// combined over-strata result; for decomposed set constraints, the
	// Fisher combination over leaves.
	Test stats.TestResult
	// Violated is the Algorithm 1 decision.
	Violated bool
	// Strata holds per-stratum results for conditional constraints.
	Strata []StratumResult
	// Leaves holds per-leaf results when the constraint was decomposed.
	Leaves []Result
	// Err records why this constraint could not be checked when it is part
	// of a CheckAll family: a malformed constraint or one referencing a
	// missing column fails alone instead of aborting the whole batch. The
	// other Result fields are zero when Err is non-nil. Check itself still
	// reports failures through its error return.
	Err error
}

// Check runs Algorithm 1 with no deadline; see CheckContext.
func Check(d *relation.Relation, a sc.Approximate, opts Options) (Result, error) {
	return CheckContext(context.Background(), d, a, opts)
}

// CheckContext runs Algorithm 1: it computes the test statistic and p-value
// of the constraint on the dataset and reports whether the constraint is
// violated at the constraint's α. When ctx ends mid-check the error wraps
// the context's error (cancellation is observed between strata and leaves
// and inside the kernel cache, so a deadline interrupts a long conditional
// test without waiting for every stratum).
func CheckContext(ctx context.Context, d *relation.Relation, a sc.Approximate, opts Options) (Result, error) {
	if err := a.Validate(); err != nil {
		return Result{}, err
	}
	for _, col := range a.SC.Columns() {
		if !d.HasColumn(col) {
			return Result{}, fmt.Errorf("detect: dataset lacks column %q required by %s", col, a.SC)
		}
	}
	if opts.Cache != nil && opts.Cache.Relation() != d {
		return Result{}, fmt.Errorf("detect: kernel cache is bound to a different relation")
	}
	opts = opts.withDefaults()

	leaves := a.SC.Decompose()
	if len(leaves) == 1 {
		return checkSingle(ctx, d, sc.Approximate{SC: leaves[0], Alpha: a.Alpha}, opts)
	}

	// Set-valued constraint: test every leaf, then combine.
	leafResults := make([]Result, 0, len(leaves))
	for _, leaf := range leaves {
		if err := ctx.Err(); err != nil {
			return Result{}, fmt.Errorf("detect: %w", err)
		}
		lr, err := checkSingle(ctx, d, sc.Approximate{SC: leaf, Alpha: a.Alpha}, opts)
		if err != nil {
			return Result{}, fmt.Errorf("detect: leaf %s: %w", leaf, err)
		}
		leafResults = append(leafResults, lr)
	}
	return combineLeaves(a, leafResults, d.NumRows())
}

// combineLeaves fuses the per-leaf results of a decomposed set constraint
// with Fisher's method and applies the set-level violation rule. Shared by
// the resident and streaming paths.
func combineLeaves(a sc.Approximate, leafResults []Result, rows int) (Result, error) {
	res := Result{Constraint: a, Leaves: leafResults}
	ps := make([]float64, 0, len(leafResults))
	allViolated, anyViolated := true, false
	for _, lr := range leafResults {
		res.Method = lr.Method
		ps = append(ps, lr.Test.P)
		if lr.Violated {
			anyViolated = true
		} else {
			allViolated = false
		}
	}
	stat, p, err := stats.FisherCombine(ps)
	if err != nil {
		return Result{}, err
	}
	res.Test = stats.TestResult{Statistic: stat, DF: 2 * len(ps), P: p, N: rows}
	if a.SC.Dependence {
		// A set DSC decomposes to a disjunction of leaf DSCs: it is violated
		// only when every leaf's asserted dependence is absent.
		res.Violated = allViolated
	} else {
		// A set ISC decomposes to a conjunction of leaf ISCs: violating any
		// leaf violates the constraint.
		res.Violated = anyViolated
	}
	return res, nil
}

// checkSingle handles a constraint with single-variable X and Y, possibly
// conditional.
func checkSingle(ctx context.Context, d *relation.Relation, a sc.Approximate, opts Options) (Result, error) {
	x, y := a.SC.X[0], a.SC.Y[0]
	method, err := resolveMethod(d, x, y, opts.Method)
	if err != nil {
		return Result{}, err
	}
	res := Result{Constraint: a, Method: method}

	if a.SC.IsMarginal() {
		tr, err := testPair(ctx, d, x, y, method, opts, nil, opts.Cache.AllRowsKey())
		if err != nil {
			return Result{}, err
		}
		res.Test = tr
	} else {
		tr, strata, err := testConditional(ctx, d, a.SC, method, opts)
		if err != nil {
			return Result{}, err
		}
		res.Test = tr
		res.Strata = strata
	}

	if a.SC.Dependence {
		res.Violated = res.Test.P >= a.Alpha
	} else {
		res.Violated = res.Test.P < a.Alpha
	}
	return res, nil
}

// resolveMethod turns Auto into a concrete method and validates that the
// requested method can handle the column kinds.
func resolveMethod(d *relation.Relation, x, y string, m Method) (Method, error) {
	return resolveMethodKinds(x, y, d.MustColumn(x).Kind, d.MustColumn(y).Kind, m)
}

// resolveMethodKinds is the kind-based core of resolveMethod, shared with
// the streaming path (which has no materialized relation, only the schema)
// so both paths resolve Auto — and reject kind mismatches — identically.
func resolveMethodKinds(x, y string, kx, ky relation.Kind, m Method) (Method, error) {
	bothNum := kx == relation.Numeric && ky == relation.Numeric
	switch m {
	case Auto:
		if bothNum {
			return Kendall, nil
		}
		// Categorical or mixed pairs go through the G-test (numeric columns
		// are quantile-discretized).
		return G, nil
	case Kendall, Pearson, Spearman, ExactKendall:
		if !bothNum {
			return 0, fmt.Errorf("detect: %s requires numeric columns, but %s is %s and %s is %s",
				m, x, kx, y, ky)
		}
		return m, nil
	case G, ExactG:
		// Any kinds allowed: numeric columns are discretized.
		return m, nil
	default:
		return 0, fmt.Errorf("detect: unknown method %d", int(m))
	}
}

// testConditional stratifies on Z and combines the per-stratum evidence.
// The partition — and, through the per-stratum rows keys, every stratum's
// codings and tables — is shared across constraints via the kernel cache.
func testConditional(ctx context.Context, d *relation.Relation, c sc.SC, method Method, opts Options) (stats.TestResult, []StratumResult, error) {
	part, err := opts.Cache.PartitionContext(ctx, d, c.Z)
	if err != nil {
		return stats.TestResult{}, nil, fmt.Errorf("detect: %w", err)
	}
	var strata []StratumResult
	comb := stratumCombiner{method: method}
	for _, k := range part.Keys {
		if err := ctx.Err(); err != nil {
			return stats.TestResult{}, nil, fmt.Errorf("detect: %w", err)
		}
		rows := part.Groups[k]
		sr := StratumResult{Key: displayKey(k), Size: len(rows)}
		if len(rows) < opts.MinStratumSize {
			sr.Skipped = true
			strata = append(strata, sr)
			continue
		}
		tr, err := testPair(ctx, d, c.X[0], c.Y[0], method, opts, rows, part.StratumRowsKey(k))
		if err != nil {
			return stats.TestResult{}, nil, fmt.Errorf("detect: stratum %s: %w", sr.Key, err)
		}
		sr.Test = tr
		strata = append(strata, sr)
		comb.add(tr, len(rows))
	}
	tr, err := comb.combine(d.NumRows())
	if err != nil {
		return stats.TestResult{}, nil, err
	}
	return tr, strata, nil
}

// stratumCombiner accumulates per-stratum test results and combines them
// into the conditional test: summed G evidence for the G family, weighted
// Stouffer z for the rank methods. The resident and streaming conditional
// paths share this one implementation so their combination arithmetic —
// including the z clamp and the all-strata-skipped fallback — cannot
// diverge.
type stratumCombiner struct {
	method Method
	gParts []stats.TestResult
	zs     []float64
	ns     []int
	total  int
}

// add records one tested (non-skipped) stratum of the given size.
func (c *stratumCombiner) add(tr stats.TestResult, size int) {
	c.total += size
	switch c.method {
	case G, ExactG:
		c.gParts = append(c.gParts, tr)
	default:
		// Recover a signed z-score from the two-sided p (sign does not
		// matter for Stouffer when strata independently show
		// dependence; we use |z| with sign from tau handled inside
		// testPair via the Statistic field carrying |tau|).
		z := stats.StdNormal.Quantile(1 - tr.P/2)
		// Quantile(1) is +Inf when a stratum's p underflows below
		// ~2.2e-16 (1 - p/2 rounds to exactly 1). Clamp to z = 40,
		// beyond the z of the smallest positive double (~38.6), so
		// StoufferZ — which rejects non-finite scores — still combines
		// the overwhelming evidence.
		if math.IsInf(z, 1) || z > 40 {
			z = 40
		}
		c.zs = append(c.zs, z)
		c.ns = append(c.ns, tr.N)
	}
}

// combine produces the over-strata test result; allRows is the dataset's
// total row count, reported as N when every stratum was skipped.
func (c *stratumCombiner) combine(allRows int) (stats.TestResult, error) {
	if c.total == 0 {
		// No stratum was large enough: no evidence of dependence.
		return stats.TestResult{P: 1, N: allRows}, nil
	}
	switch c.method {
	case G, ExactG:
		return stats.CombineG(c.gParts), nil
	default:
		z, p, err := stats.StoufferZ(c.zs, c.ns)
		if err != nil {
			return stats.TestResult{}, err
		}
		return stats.TestResult{Statistic: z, P: p, N: c.total}, nil
	}
}

func displayKey(k string) string {
	out := []rune(k)
	for i, r := range out {
		if r == '\x1f' {
			out[i] = ','
		}
	}
	return string(out)
}

// testPair runs the chosen statistic on one X/Y pair over the given rows
// (nil rows with rowsKey "" means the whole relation; stratum row sets carry
// their partition-derived rowsKey). All data preparation — codings, tables,
// float extraction, Kendall prep — goes through opts.Cache, which computes
// directly when nil. With AutoExact set, a result flagged Approximate is
// recomputed by the matching permutation test.
func testPair(ctx context.Context, d *relation.Relation, x, y string, method Method, opts Options, rows []int, rowsKey string) (stats.TestResult, error) {
	cache := opts.Cache
	switch method {
	case G, ExactG:
		if method == ExactG {
			xc, kx, err := cache.CodesContext(ctx, d, x, opts.Bins, rowsKey, rows)
			if err != nil {
				return stats.TestResult{}, err
			}
			yc, ky, err := cache.CodesContext(ctx, d, y, opts.Bins, rowsKey, rows)
			if err != nil {
				return stats.TestResult{}, err
			}
			return stats.PermutationGTest(xc, yc, kx, ky, opts.PermIters, opts.Rng)
		}
		t, _, _, err := cache.TableContext(ctx, d, x, y, opts.Bins, rowsKey, rows)
		if err != nil {
			return stats.TestResult{}, err
		}
		res, err := stats.GTest(t)
		if err == nil && opts.AutoExact && res.Approximate {
			xc, kx, cerr := cache.CodesContext(ctx, d, x, opts.Bins, rowsKey, rows)
			if cerr != nil {
				return stats.TestResult{}, cerr
			}
			yc, ky, cerr := cache.CodesContext(ctx, d, y, opts.Bins, rowsKey, rows)
			if cerr != nil {
				return stats.TestResult{}, cerr
			}
			return stats.PermutationGTest(xc, yc, kx, ky, opts.PermIters, opts.Rng)
		}
		return res, err
	case Kendall, ExactKendall, Pearson, Spearman:
		xv, err := cache.FloatsContext(ctx, d, x, rowsKey, rows)
		if err != nil {
			return stats.TestResult{}, err
		}
		yv, err := cache.FloatsContext(ctx, d, y, rowsKey, rows)
		if err != nil {
			return stats.TestResult{}, err
		}
		switch method {
		case Kendall:
			prep, err := cache.KendallPrepContext(ctx, d, x, y, rowsKey, rows)
			if err != nil {
				return stats.TestResult{}, err
			}
			res, err := stats.KendallTestPrepped(xv, yv, prep)
			if err == nil && opts.AutoExact && res.Approximate {
				return stats.PermutationKendallTest(xv, yv, opts.PermIters, opts.Rng)
			}
			return res, err
		case ExactKendall:
			return stats.PermutationKendallTest(xv, yv, opts.PermIters, opts.Rng)
		case Pearson:
			return stats.PearsonTest(xv, yv)
		default:
			return stats.SpearmanTest(xv, yv)
		}
	default:
		return stats.TestResult{}, fmt.Errorf("detect: unsupported method %s", method)
	}
}

// DiscretizeQuantile bins values into at most `bins` quantile bins, returning
// dense bin codes and the number of bins actually used. Ties at bin
// boundaries collapse bins rather than splitting equal values. The
// implementation lives in the kernel package so the cached and uncached
// detection paths share one coding function; this forwarder keeps the
// historical API for the discovery, repair and experiment code.
func DiscretizeQuantile(vals []float64, bins int) ([]int, int) {
	return kernel.DiscretizeQuantile(vals, bins)
}
