// Benchmarks for the kernel-cache hot path. They run the same workload as
// `scoded-bench -json` (see internal/detectbench), so BENCH_detect.json and
// `go test -bench CheckAll ./internal/detect` measure the same thing. The
// smoke test executes every variant once under plain `go test ./...`, so CI
// catches compile or logic rot on the benchmark path without timing
// flakiness.
//
// This file is in the external test package because detectbench imports
// detect; an in-package test would be an import cycle.
package detect_test

import (
	"reflect"
	"testing"

	"scoded/internal/detect"
	"scoded/internal/detectbench"
	"scoded/internal/kernel"
)

const benchSeed = 1

func benchRun(tb testing.TB, w *detectbench.Workload, cache *kernel.Cache) []detect.Result {
	tb.Helper()
	results, err := w.Run(cache, 0)
	if err != nil {
		tb.Fatalf("CheckAll: %v", err)
	}
	for _, r := range results {
		if r.Err != nil {
			tb.Fatalf("constraint %s: %v", r.Constraint.SC, r.Err)
		}
	}
	return results
}

// BenchmarkCheckAllCold measures the uncached path: every constraint
// re-derives its partitions, codings and tables.
func BenchmarkCheckAllCold(b *testing.B) {
	w := detectbench.NewWorkload(benchSeed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRun(b, w, nil)
	}
}

// BenchmarkCheckAllShared measures the steady-state cached path: a
// pre-populated kernel cache shared across runs, as scoded-serve holds one
// per registered dataset.
func BenchmarkCheckAllShared(b *testing.B) {
	w := detectbench.NewWorkload(benchSeed)
	cache := kernel.New(w.Rel)
	benchRun(b, w, cache)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRun(b, w, cache)
	}
}

// TestBenchWorkloadSmoke runs each benchmark variant once and asserts the
// cached runs reproduce the uncached results exactly on the full-size
// benchmark workload.
func TestBenchWorkloadSmoke(t *testing.T) {
	w := detectbench.NewWorkload(benchSeed)
	cold := benchRun(t, w, nil)
	cache := kernel.New(w.Rel)
	fresh := benchRun(t, w, cache)
	warm := benchRun(t, w, cache)
	if !reflect.DeepEqual(cold, fresh) {
		t.Errorf("fresh-cache results differ from uncached")
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("warm-cache results differ from uncached")
	}
	if s := cache.Stats(); s.Hits == 0 || s.Misses == 0 || s.Entries == 0 {
		t.Errorf("cache was not exercised: %+v", s)
	}
}
