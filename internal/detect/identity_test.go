package detect

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"scoded/internal/kernel"
	"scoded/internal/relation"
	"scoded/internal/sc"
	"scoded/internal/stats"
)

// These property tests pin the kernel cache's core contract: CheckAll with
// a shared cache returns results bit-identical to the uncached path, for
// randomized relations and constraint families, with parallel workers, and
// on a warm cache. Run them under -race to also exercise the single-flight
// concurrency (make race / scripts/ci.sh do).

// identityRelation builds a randomized relation with three categorical and
// three numeric columns. The numeric columns deliberately contain ties and
// mild correlation so discretization, tau tie-handling, and stratification
// all do real work.
func identityRelation(rng *rand.Rand, n int) *relation.Relation {
	av := make([]string, n)
	bv := make([]string, n)
	cv := make([]string, n)
	uv := make([]float64, n)
	vv := make([]float64, n)
	wv := make([]float64, n)
	for i := 0; i < n; i++ {
		a := rng.Intn(3)
		av[i] = fmt.Sprintf("a%d", a)
		b := rng.Intn(4)
		if rng.Float64() < 0.4 {
			b = a // A→B dependence
		}
		bv[i] = fmt.Sprintf("b%d", b)
		cv[i] = fmt.Sprintf("c%d", rng.Intn(2))
		uv[i] = math.Floor(rng.Float64()*10) / 2 // heavy ties
		vv[i] = uv[i]*float64(rng.Intn(3)) + rng.NormFloat64()
		wv[i] = rng.NormFloat64()
	}
	d, err := relation.New(
		relation.NewCategoricalColumn("A", av),
		relation.NewCategoricalColumn("B", bv),
		relation.NewCategoricalColumn("C", cv),
		relation.NewNumericColumn("U", uv),
		relation.NewNumericColumn("V", vv),
		relation.NewNumericColumn("W", wv),
	)
	if err != nil {
		panic(err)
	}
	return d
}

// identityFamily assembles ~25 constraints spanning the checkable space:
// marginal and conditional, independence and dependence, categorical,
// numeric and mixed pairs, set-valued constraints (decomposed into leaves),
// and constraints that must fail with a per-constraint error.
func identityFamily(rng *rand.Rand) []sc.Approximate {
	texts := []string{
		"A _||_ B",
		"A ~||~ B",
		"A _||_ C",
		"B _||_ C | A",
		"A _||_ B | C",
		"A ~||~ B | C",
		"U _||_ V",
		"U ~||~ V",
		"U _||_ W",
		"U _||_ V | A",
		"V ~||~ W | C",
		"U _||_ W | A",
		"A _||_ U",
		"A _||_ V | C",
		"B ~||~ U",
		"A,B _||_ C", // set-valued X: decomposes into leaves
		"U _||_ V,W", // set-valued Y
		"A,B ~||~ U | C",
		"A _||_ B | C,A", // Z overlapping X errors per-constraint
		"Nope _||_ B",    // missing column errors per-constraint
		"A _||_ Nope | C",
	}
	alphas := []float64{0.01, 0.05, 0.1}
	var family []sc.Approximate
	for _, text := range texts {
		family = append(family, sc.Approximate{
			SC:    mustParseLoose(text),
			Alpha: alphas[rng.Intn(len(alphas))],
		})
	}
	// A few random extra pairs for variety across trials.
	cols := []string{"A", "B", "C", "U", "V", "W"}
	for len(family) < 25 {
		x, y := cols[rng.Intn(len(cols))], cols[rng.Intn(len(cols))]
		if x == y {
			continue
		}
		op := "_||_"
		if rng.Intn(2) == 1 {
			op = "~||~"
		}
		family = append(family, sc.Approximate{
			SC:    mustParseLoose(x + " " + op + " " + y),
			Alpha: 0.05,
		})
	}
	return family
}

// mustParseLoose parses the text form but, unlike sc.MustParse, keeps
// invalid constraints (overlapping sets) as raw SC values so CheckAll's
// per-constraint error path is exercised too.
func mustParseLoose(text string) sc.SC {
	c, err := sc.Parse(text)
	if err == nil {
		return c
	}
	// Rebuild without validation; Parse's splitting rules are simple enough
	// to inline for the error-case constraints above.
	switch text {
	case "A _||_ B | C,A":
		return sc.SC{X: []string{"A"}, Y: []string{"B"}, Z: []string{"C", "A"}}
	default:
		panic(fmt.Sprintf("unexpected parse failure for %q: %v", text, err))
	}
}

func errText(e error) string {
	if e == nil {
		return ""
	}
	return e.Error()
}

// sameTest compares two test results bit-for-bit (NaN-safe: identical bit
// patterns compare equal, which float == would not give us).
func sameTest(a, b stats.TestResult) bool {
	return math.Float64bits(a.Statistic) == math.Float64bits(b.Statistic) &&
		a.DF == b.DF &&
		math.Float64bits(a.P) == math.Float64bits(b.P) &&
		a.N == b.N &&
		a.Approximate == b.Approximate
}

func assertSameResult(t *testing.T, label string, want, got Result) {
	t.Helper()
	if errText(want.Err) != errText(got.Err) {
		t.Errorf("%s: err %q vs %q", label, errText(want.Err), errText(got.Err))
		return
	}
	if want.Constraint.SC.String() != got.Constraint.SC.String() ||
		math.Float64bits(want.Constraint.Alpha) != math.Float64bits(got.Constraint.Alpha) {
		t.Errorf("%s: constraint %v@%v vs %v@%v", label,
			want.Constraint.SC, want.Constraint.Alpha, got.Constraint.SC, got.Constraint.Alpha)
	}
	if want.Method != got.Method || want.Violated != got.Violated {
		t.Errorf("%s: method/violated %v/%v vs %v/%v", label,
			want.Method, want.Violated, got.Method, got.Violated)
	}
	if !sameTest(want.Test, got.Test) {
		t.Errorf("%s: test %+v vs %+v", label, want.Test, got.Test)
	}
	if len(want.Strata) != len(got.Strata) {
		t.Errorf("%s: %d strata vs %d", label, len(want.Strata), len(got.Strata))
	} else {
		for i := range want.Strata {
			ws, gs := want.Strata[i], got.Strata[i]
			if ws.Key != gs.Key || ws.Size != gs.Size || ws.Skipped != gs.Skipped || !sameTest(ws.Test, gs.Test) {
				t.Errorf("%s stratum %d: %+v vs %+v", label, i, ws, gs)
			}
		}
	}
	if len(want.Leaves) != len(got.Leaves) {
		t.Errorf("%s: %d leaves vs %d", label, len(want.Leaves), len(got.Leaves))
	} else {
		for i := range want.Leaves {
			assertSameResult(t, fmt.Sprintf("%s leaf %d", label, i), want.Leaves[i], got.Leaves[i])
		}
	}
}

func assertSameResults(t *testing.T, label string, want, got []Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results vs %d", label, len(want), len(got))
	}
	for i := range want {
		assertSameResult(t, fmt.Sprintf("%s[%d] %s", label, i, want[i].Constraint.SC), want[i], got[i])
	}
}

// TestCheckAllCacheIdentity is the core cache-identity property test:
// sequential-uncached vs parallel-cached vs parallel-warm-cached runs of
// randomized families over randomized relations must agree exactly.
func TestCheckAllCacheIdentity(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(100 + trial)))
			d := identityRelation(rng, 300+rng.Intn(200))
			family := identityFamily(rng)
			opts := Options{Bins: 3, MinStratumSize: 4}
			fdr := 0.0
			if trial%2 == 1 {
				fdr = 0.1
			}

			base, err := CheckAll(d, family, BatchOptions{Options: opts, FDR: fdr, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}

			cache := kernel.New(d)
			cachedOpts := opts
			cachedOpts.Cache = cache
			cold, err := CheckAll(d, family, BatchOptions{Options: cachedOpts, FDR: fdr, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, "cached", base, cold)

			warm, err := CheckAll(d, family, BatchOptions{Options: cachedOpts, FDR: fdr, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, "warm", base, warm)

			if s := cache.Stats(); s.Misses == 0 || s.Hits == 0 {
				t.Errorf("cache unused: %+v", s)
			}
		})
	}
}

// TestCheckAllCacheIdentityAutoExact covers the Monte-Carlo escalation
// path: AutoExact re-runs approximate results through permutation tests,
// which draw from deterministic per-call RNGs that the cache must not
// perturb.
func TestCheckAllCacheIdentityAutoExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d := identityRelation(rng, 80) // small: tau results are flagged Approximate
	family := identityFamily(rng)
	opts := Options{Bins: 3, MinStratumSize: 4, AutoExact: true, PermIters: 200}

	base, err := CheckAll(d, family, BatchOptions{Options: opts, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	opts.Cache = kernel.New(d)
	cached, err := CheckAll(d, family, BatchOptions{Options: opts, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "auto-exact", base, cached)
}

// TestCheckCacheWrongRelation pins the binding check: a cache bound to a
// different relation must be rejected, not silently mix datasets.
func TestCheckCacheWrongRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d1 := identityRelation(rng, 50)
	d2 := identityRelation(rng, 50)
	a := sc.Approximate{SC: sc.MustParse("A _||_ B"), Alpha: 0.05}
	if _, err := Check(d1, a, Options{Cache: kernel.New(d2)}); err == nil {
		t.Fatal("expected an error for a cache bound to another relation")
	}
}
