package server

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"scoded/internal/engine"
)

// latencyBuckets are the histogram upper bounds in seconds, rendered
// cumulatively (Prometheus-style) by /metrics.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// metrics is the stdlib-only observability collector: per-route request
// counters by status code and per-route latency histograms, exposed as
// plain text on /metrics.
type metrics struct {
	start time.Time

	// extra, when set, appends additional metric families to the /metrics
	// response. It is assigned once at construction (before any request)
	// and called outside mu, so it may take other locks freely.
	extra func(w io.Writer)

	mu     sync.Mutex
	routes map[string]*routeMetrics
	stages map[string]*stageMetrics
}

// stageMetrics aggregates the engine's per-item hooks for one execution
// stage ("checkall", "drilldown"): a live in-flight gauge plus item,
// error and latency counters. Hooks fire from every pool worker, so the
// counters sit behind their own mutex rather than the route map's.
type stageMetrics struct {
	mu         sync.Mutex
	inFlight   int64
	items      int64
	errs       int64
	sumSeconds float64
}

type routeMetrics struct {
	byCode     map[int]int64
	buckets    []int64 // one count per latencyBuckets entry, non-cumulative
	overflow   int64   // observations above the last bucket
	sumSeconds float64
	count      int64
}

func newMetrics(start time.Time) *metrics {
	return &metrics{
		start:  start,
		routes: make(map[string]*routeMetrics),
		stages: make(map[string]*stageMetrics),
	}
}

// stage returns (creating on first use) the named stage's collector.
func (m *metrics) stage(name string) *stageMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.stages[name]
	if !ok {
		st = &stageMetrics{}
		m.stages[name] = st
	}
	return st
}

// engineHooks builds the engine instrumentation for one stage: OnStart
// raises the in-flight gauge, OnDone lowers it and accumulates the item's
// outcome and latency.
func (m *metrics) engineHooks(stage string) engine.Hooks {
	st := m.stage(stage)
	return engine.Hooks{
		OnStart: func() {
			st.mu.Lock()
			st.inFlight++
			st.mu.Unlock()
		},
		OnDone: func(d time.Duration, err error) {
			st.mu.Lock()
			st.inFlight--
			st.items++
			if err != nil {
				st.errs++
			}
			st.sumSeconds += d.Seconds()
			st.mu.Unlock()
		},
	}
}

// statusRecorder captures the status code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// wrap instruments a handler under the given route label (the mux
// pattern), counting the request and observing its latency.
func (m *metrics) wrap(route string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		begin := time.Now()
		h.ServeHTTP(rec, r)
		m.observe(route, rec.status, time.Since(begin).Seconds())
	})
}

func (m *metrics) observe(route string, status int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rm, ok := m.routes[route]
	if !ok {
		rm = &routeMetrics{
			byCode:  make(map[int]int64),
			buckets: make([]int64, len(latencyBuckets)),
		}
		m.routes[route] = rm
	}
	rm.byCode[status]++
	rm.count++
	rm.sumSeconds += seconds
	placed := false
	for i, le := range latencyBuckets {
		if seconds <= le {
			rm.buckets[i]++
			placed = true
			break
		}
	}
	if !placed {
		rm.overflow++
	}
}

// serveHTTP renders the counters in the Prometheus text exposition format
// (counters and cumulative histograms), without any client library.
func (m *metrics) serveHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m.writeRouteMetrics(w)
	m.writeStageMetrics(w)
	if m.extra != nil {
		m.extra(w)
	}
}

// writeStageMetrics renders the engine-stage gauges and counters fed by
// engineHooks.
func (m *metrics) writeStageMetrics(w io.Writer) {
	m.mu.Lock()
	names := make([]string, 0, len(m.stages))
	for name := range m.stages {
		names = append(names, name)
	}
	m.mu.Unlock()
	sort.Strings(names)

	type snapshot struct {
		name                  string
		inFlight, items, errs int64
		sumSeconds            float64
	}
	snaps := make([]snapshot, 0, len(names))
	for _, name := range names {
		st := m.stage(name)
		st.mu.Lock()
		snaps = append(snaps, snapshot{
			name: name, inFlight: st.inFlight, items: st.items,
			errs: st.errs, sumSeconds: st.sumSeconds,
		})
		st.mu.Unlock()
	}

	fmt.Fprintf(w, "# HELP scoded_engine_in_flight Work items currently executing, by engine stage.\n")
	fmt.Fprintf(w, "# TYPE scoded_engine_in_flight gauge\n")
	for _, s := range snaps {
		fmt.Fprintf(w, "scoded_engine_in_flight{stage=%q} %d\n", s.name, s.inFlight)
	}
	fmt.Fprintf(w, "# HELP scoded_engine_items_total Work items executed, by engine stage.\n")
	fmt.Fprintf(w, "# TYPE scoded_engine_items_total counter\n")
	for _, s := range snaps {
		fmt.Fprintf(w, "scoded_engine_items_total{stage=%q} %d\n", s.name, s.items)
	}
	fmt.Fprintf(w, "# HELP scoded_engine_item_errors_total Work items that finished with an error, by engine stage.\n")
	fmt.Fprintf(w, "# TYPE scoded_engine_item_errors_total counter\n")
	for _, s := range snaps {
		fmt.Fprintf(w, "scoded_engine_item_errors_total{stage=%q} %d\n", s.name, s.errs)
	}
	fmt.Fprintf(w, "# HELP scoded_engine_item_seconds_sum Total item execution time, by engine stage.\n")
	fmt.Fprintf(w, "# TYPE scoded_engine_item_seconds_sum counter\n")
	for _, s := range snaps {
		fmt.Fprintf(w, "scoded_engine_item_seconds_sum{stage=%q} %g\n", s.name, s.sumSeconds)
	}
}

func (m *metrics) writeRouteMetrics(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP scoded_uptime_seconds Time since the server started.\n")
	fmt.Fprintf(w, "# TYPE scoded_uptime_seconds gauge\n")
	fmt.Fprintf(w, "scoded_uptime_seconds %g\n", time.Since(m.start).Seconds())

	routes := make([]string, 0, len(m.routes))
	for route := range m.routes {
		routes = append(routes, route)
	}
	sort.Strings(routes)

	fmt.Fprintf(w, "# HELP scoded_requests_total Requests served, by route and status code.\n")
	fmt.Fprintf(w, "# TYPE scoded_requests_total counter\n")
	for _, route := range routes {
		rm := m.routes[route]
		codes := make([]int, 0, len(rm.byCode))
		for code := range rm.byCode {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			fmt.Fprintf(w, "scoded_requests_total{route=%q,code=\"%d\"} %d\n", route, code, rm.byCode[code])
		}
	}

	fmt.Fprintf(w, "# HELP scoded_request_duration_seconds Request latency, by route.\n")
	fmt.Fprintf(w, "# TYPE scoded_request_duration_seconds histogram\n")
	for _, route := range routes {
		rm := m.routes[route]
		cum := int64(0)
		for i, le := range latencyBuckets {
			cum += rm.buckets[i]
			fmt.Fprintf(w, "scoded_request_duration_seconds_bucket{route=%q,le=%q} %d\n",
				route, formatLe(le), cum)
		}
		fmt.Fprintf(w, "scoded_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", route, rm.count)
		fmt.Fprintf(w, "scoded_request_duration_seconds_sum{route=%q} %g\n", route, rm.sumSeconds)
		fmt.Fprintf(w, "scoded_request_duration_seconds_count{route=%q} %d\n", route, rm.count)
	}
}

func formatLe(le float64) string {
	return strconv.FormatFloat(le, 'g', -1, 64)
}

// snapshotCount returns the total request count for a route (testing aid).
func (m *metrics) snapshotCount(route string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	rm, ok := m.routes[route]
	if !ok {
		return 0
	}
	return rm.count
}
