package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"scoded/internal/engine"
)

// This file is the high-throughput streaming ingest layer:
// POST /v1/monitors/{id}/records with explicit backpressure, per-monitor
// streaming gauges on /metrics, and a webhook alert sink fired when a
// monitor's verdict flips to violated.
//
// Backpressure is admission control, not an async queue: each monitor owns
// a bounded slot channel (Options.IngestQueue). A records request acquires
// a slot without blocking — a full channel answers 429 with Retry-After so
// producers shed load at the edge — and admitted batches then serialize on
// the monitor mutex, insert, and persist before the ack. That keeps the
// durable-log append strictly before the acknowledgement (a restart can
// never lose an acked record) and keeps per-monitor arrival order exactly
// the order verdicts see.

// defaultIngestQueue is the per-monitor admitted-batch bound when
// Options.IngestQueue is zero.
const defaultIngestQueue = 16

// defaultAlertRetries and defaultAlertBackoff shape webhook delivery when
// the Options fields are zero.
const defaultAlertRetries = 3
const defaultAlertBackoff = 100 * time.Millisecond

// alertSemSize bounds concurrently in-flight alert deliveries; beyond it
// alerts are counted as dropped rather than queued without bound.
const alertSemSize = 8

// streamStats is one monitor's ingest telemetry, updated on every applied
// batch and rendered by writeStreamMetrics. It has its own mutex so the
// /metrics scrape never contends with an insert holding the monitor mutex.
type streamStats struct {
	mu          sync.Mutex
	watermark   int64     // records applied over the monitor's lifetime
	lastApplied time.Time // wall time of the most recent applied batch
	rate        ewma      // smoothed records/sec
	rejected    int64     // batches refused with 429

	alertsFired   int64
	alertsDropped int64
	alertFailures int64
}

// ewma smooths an event rate with an exponential window: each observation
// of n records after a gap dt folds the instantaneous rate n/dt in with
// weight 1 − exp(−dt/τ). τ of ~10s tracks sustained throughput while
// absorbing batch-boundary jitter.
type ewma struct {
	value   float64
	pending float64
	last    time.Time
}

const ewmaTau = 10.0 // seconds

func (e *ewma) observe(n float64, now time.Time) {
	if e.last.IsZero() {
		e.last = now
		e.pending = n
		return
	}
	dt := now.Sub(e.last).Seconds()
	if dt <= 0 {
		// Same-instant batches fold into the next interval.
		e.pending += n
		return
	}
	inst := (n + e.pending) / dt
	alpha := 1 - math.Exp(-dt/ewmaTau)
	e.value += alpha * (inst - e.value)
	e.pending = 0
	e.last = now
}

// initIngest arms the entry's ingest state: the admission slots and the
// verdict baseline for flip detection. Called at create and re-arm time
// (after any log replay), so a monitor restored mid-violation does not
// re-alert on its first quiet batch.
func (m *monitorEntry) initIngest(queue int) {
	if queue <= 0 {
		queue = defaultIngestQueue
	}
	m.slots = make(chan struct{}, queue)
	m.mu.Lock()
	if m.cat != nil {
		m.lastViolated = m.cat.Verdict().Violated
	} else {
		m.lastViolated = m.num.Verdict().Violated
	}
	m.mu.Unlock()
}

// handleMonitorRecords is the streaming twin of handleMonitorObserve:
// same {"x": [...], "y": [...]} body, but admission-controlled. A full
// queue answers 429 Too Many Requests with Retry-After; an admitted batch
// is inserted, durably logged, then acknowledged with the inserted count.
// A client disconnect mid-batch keeps the inserted prefix (and its log
// entry) and reports how far it got.
func (s *Server) handleMonitorRecords(w http.ResponseWriter, r *http.Request) {
	m, ok := s.monitorByID(w, r)
	if !ok {
		return
	}
	var req struct {
		X []any `json:"x"`
		Y []any `json:"y"`
	}
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.X) != len(req.Y) {
		writeError(w, http.StatusBadRequest, "x has %d values, y has %d", len(req.X), len(req.Y))
		return
	}
	select {
	case m.slots <- struct{}{}:
		defer func() { <-m.slots }()
	default:
		m.stats.mu.Lock()
		m.stats.rejected++
		m.stats.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"monitor %d ingest queue full (%d in flight); retry later", m.id, cap(m.slots))
		return
	}

	var batchErr error
	var n int
	var xs, ys []string
	var xf, yf []float64
	var flipped bool
	if m.kind == "categorical" {
		var err error
		if xs, err = asStrings(req.X, "x"); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if ys, err = asStrings(req.Y, "y"); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		m.mu.Lock()
		n, batchErr = m.cat.InsertBatch(r.Context(), xs, ys)
		m.observed += int64(n)
		flipped = m.noteVerdictLocked()
		m.mu.Unlock()
		xs, ys = xs[:n], ys[:n]
	} else {
		var err error
		if xf, err = asFloats(req.X, "x"); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if yf, err = asFloats(req.Y, "y"); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		m.mu.Lock()
		n, batchErr = m.num.InsertBatch(r.Context(), xf, yf)
		m.observed += int64(n)
		flipped = m.noteVerdictLocked()
		m.mu.Unlock()
		xf, yf = xf[:n], yf[:n]
	}
	if n > 0 {
		m.stats.mu.Lock()
		m.stats.watermark += int64(n)
		now := time.Now()
		m.stats.lastApplied = now
		m.stats.rate.observe(float64(n), now)
		m.stats.mu.Unlock()
		// Append-before-ack: the durable log write precedes the response.
		if perr := s.persistObservations(m, xs, ys, xf, yf); perr != nil {
			writeError(w, http.StatusInternalServerError, "persisting observations: %v", perr)
			return
		}
	}
	if flipped {
		s.fireAlert(m)
	}
	if batchErr != nil {
		writeError(w, errStatus(batchErr), "inserted %d of %d records: %v", n, len(req.X), batchErr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"inserted": n,
		"monitor":  m.info(),
	})
}

// noteVerdictLocked re-evaluates the monitor's verdict and reports whether
// it just flipped from holding to violated — the alert edge. Callers hold
// m.mu.
func (m *monitorEntry) noteVerdictLocked() bool {
	var violated bool
	if m.cat != nil {
		violated = m.cat.Verdict().Violated
	} else {
		violated = m.num.Verdict().Violated
	}
	flipped := violated && !m.lastViolated
	m.lastViolated = violated
	return flipped
}

// alertPayload is the webhook body; its field set and order are frozen by
// the alert golden test.
type alertPayload struct {
	Monitor    int     `json:"monitor"`
	Kind       string  `json:"kind"`
	Dataset    string  `json:"dataset,omitempty"`
	Alpha      float64 `json:"alpha"`
	Dependence bool    `json:"dependence"`
	Statistic  float64 `json:"statistic"`
	P          float64 `json:"p"`
	DF         int     `json:"df"`
	N          int     `json:"n"`
	Observed   int64   `json:"observed"`
	Violated   bool    `json:"violated"`
}

// buildAlert snapshots the monitor state into the webhook payload.
func (m *monitorEntry) buildAlert() alertPayload {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := alertPayload{
		Monitor: m.id, Kind: m.kind, Dataset: m.dataset,
		Alpha: m.alpha, Dependence: m.dependence, Observed: m.observed,
	}
	var v = m.verdictLocked()
	p.Statistic, p.P, p.DF, p.N, p.Violated = v.Statistic, v.P, v.DF, v.N, v.Violated
	return p
}

// fireAlert delivers the monitor's current state to its webhook (or the
// server-wide fallback) asynchronously. Delivery runs through the
// cancellable engine under the "alert" metrics stage with bounded retries
// and backoff; when the in-flight bound is hit the alert is dropped and
// counted, never queued without bound.
func (s *Server) fireAlert(m *monitorEntry) {
	url := m.webhook
	if url == "" {
		url = s.opts.AlertWebhook
	}
	if url == "" {
		return
	}
	select {
	case s.alertSem <- struct{}{}:
	default:
		m.stats.mu.Lock()
		m.stats.alertsDropped++
		m.stats.mu.Unlock()
		return
	}
	payload := m.buildAlert()
	s.alertWG.Add(1)
	go func() {
		defer s.alertWG.Done()
		defer func() { <-s.alertSem }()
		errs := engine.Run(s.alertCtx, 1, engine.Options{
			Workers: 1,
			Hooks:   s.metrics.engineHooks("alert"),
		}, func(ctx context.Context, _ int) error {
			return s.deliverAlert(ctx, url, payload)
		})
		m.stats.mu.Lock()
		if len(errs) > 0 && errs[0] != nil {
			m.stats.alertFailures++
		} else {
			m.stats.alertsFired++
		}
		m.stats.mu.Unlock()
	}()
}

// deliverAlert POSTs the payload, retrying transient failures with
// exponential backoff. A 2xx response is success; anything else after the
// final attempt is a delivery failure.
func (s *Server) deliverAlert(ctx context.Context, url string, payload alertPayload) error {
	body, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	retries := s.opts.AlertRetries
	if retries <= 0 {
		retries = defaultAlertRetries
	}
	backoff := s.opts.AlertBackoff
	if backoff <= 0 {
		backoff = defaultAlertBackoff
	}
	var lastErr error
	for attempt := 0; attempt < retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := s.alertClient.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			return nil
		}
		lastErr = fmt.Errorf("webhook %s answered %d", url, resp.StatusCode)
	}
	return fmt.Errorf("alert delivery failed after %d attempts: %w", retries, lastErr)
}

// Close stops the alert sink: pending deliveries are cancelled through the
// engine and awaited. The HTTP routes stay functional (alerts fired after
// Close are cancelled immediately), so Close ordering relative to server
// shutdown is not delicate.
func (s *Server) Close() {
	s.alertCancel()
	s.alertWG.Wait()
}

// writeStreamMetrics renders the per-monitor streaming gauges. now is a
// parameter so the golden test can render deterministically.
func (s *Server) writeStreamMetrics(w io.Writer, now time.Time) {
	type row struct {
		id                       int
		watermark                int64
		lag                      float64
		depth                    int
		rate                     float64
		rejected                 int64
		fired, dropped, failures int64
	}
	s.mu.RLock()
	rows := make([]row, 0, len(s.monitors))
	for _, m := range s.monitors {
		m.stats.mu.Lock()
		r := row{
			id: m.id, watermark: m.stats.watermark, rejected: m.stats.rejected,
			rate: m.stats.rate.value, fired: m.stats.alertsFired,
			dropped: m.stats.alertsDropped, failures: m.stats.alertFailures,
		}
		if !m.stats.lastApplied.IsZero() {
			r.lag = now.Sub(m.stats.lastApplied).Seconds()
		}
		m.stats.mu.Unlock()
		if m.slots != nil {
			r.depth = len(m.slots)
		}
		rows = append(rows, r)
	}
	s.mu.RUnlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })

	fmt.Fprintf(w, "# HELP scoded_stream_watermark Records applied to the monitor over its lifetime.\n")
	fmt.Fprintf(w, "# TYPE scoded_stream_watermark gauge\n")
	for _, r := range rows {
		fmt.Fprintf(w, "scoded_stream_watermark{monitor=\"%d\"} %d\n", r.id, r.watermark)
	}
	fmt.Fprintf(w, "# HELP scoded_stream_lag_seconds Time since the monitor last applied a batch.\n")
	fmt.Fprintf(w, "# TYPE scoded_stream_lag_seconds gauge\n")
	for _, r := range rows {
		fmt.Fprintf(w, "scoded_stream_lag_seconds{monitor=\"%d\"} %g\n", r.id, r.lag)
	}
	fmt.Fprintf(w, "# HELP scoded_stream_queue_depth Ingest batches currently admitted (in flight).\n")
	fmt.Fprintf(w, "# TYPE scoded_stream_queue_depth gauge\n")
	for _, r := range rows {
		fmt.Fprintf(w, "scoded_stream_queue_depth{monitor=\"%d\"} %d\n", r.id, r.depth)
	}
	fmt.Fprintf(w, "# HELP scoded_stream_records_per_second Smoothed ingest rate.\n")
	fmt.Fprintf(w, "# TYPE scoded_stream_records_per_second gauge\n")
	for _, r := range rows {
		fmt.Fprintf(w, "scoded_stream_records_per_second{monitor=\"%d\"} %g\n", r.id, r.rate)
	}
	fmt.Fprintf(w, "# HELP scoded_stream_ingest_rejected_total Record batches refused with 429 backpressure.\n")
	fmt.Fprintf(w, "# TYPE scoded_stream_ingest_rejected_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "scoded_stream_ingest_rejected_total{monitor=\"%d\"} %d\n", r.id, r.rejected)
	}
	fmt.Fprintf(w, "# HELP scoded_stream_alerts_fired_total Webhook alerts delivered.\n")
	fmt.Fprintf(w, "# TYPE scoded_stream_alerts_fired_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "scoded_stream_alerts_fired_total{monitor=\"%d\"} %d\n", r.id, r.fired)
	}
	fmt.Fprintf(w, "# HELP scoded_stream_alerts_dropped_total Alerts dropped at the in-flight bound.\n")
	fmt.Fprintf(w, "# TYPE scoded_stream_alerts_dropped_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "scoded_stream_alerts_dropped_total{monitor=\"%d\"} %d\n", r.id, r.dropped)
	}
	fmt.Fprintf(w, "# HELP scoded_stream_alert_failures_total Alert deliveries that exhausted retries.\n")
	fmt.Fprintf(w, "# TYPE scoded_stream_alert_failures_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "scoded_stream_alert_failures_total{monitor=\"%d\"} %d\n", r.id, r.failures)
	}
}
