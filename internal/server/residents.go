package server

import (
	"context"
	"fmt"
	"io"
	"sync"

	"scoded/internal/kernel"
	"scoded/internal/relation"
)

// Resident-relation LRU (DESIGN.md section 16). With a store configured,
// the server no longer keeps every dataset's rows in memory: LoadStore
// registers metadata-only entries straight from manifests, and the first
// request that needs the rows materializes them through acquireDataset.
// Materialized ("resident") relations are tracked here by estimated byte
// weight; when Options.ResidentBytes is set and the total exceeds it, the
// least-recently-used unreferenced relation is evicted back to its cold,
// metadata-only form. In-flight checks are safe across eviction for two
// reasons: relations are immutable (a holder's pointer stays valid), and
// an entry with a positive refcount is never chosen as a victim, so the
// budget reflects memory that can actually be reclaimed.
//
// Ownership rules:
//
//   - A residentEntry is created when a relation becomes resident (upload,
//     append, or materialization) and retired when the dataset entry
//     holding that relation leaves the registry (eviction, replacement,
//     deletion). entries holds only live records; a retired record keeps
//     draining releases harmlessly.
//   - refs counts in-flight acquisitions. acquireDataset's release closure
//     captures the *residentEntry, not the name, so a release racing a
//     replacement decrements the retired record instead of the successor's.
//   - Datasets not backed by the store are pinned: without segments to
//     reload from, eviction would lose data, so they stay resident for the
//     registry entry's lifetime and only count against the gauge.
//
// Lock ordering: s.mu before res.mu, always. Store I/O (Load) happens
// under neither; a per-dataset loading channel single-flights concurrent
// cold misses.

// residentEntry is the residency accounting record for one materialized
// relation.
type residentEntry struct {
	name   string
	bytes  int64
	refs   int
	tick   uint64 // logical LRU clock at last use
	pinned bool   // not store-backed: never evicted
	live   bool   // still the registry's accounting record
}

// residents tracks every resident relation's weight against the budget.
type residents struct {
	mu      sync.Mutex
	budget  int64 // bytes; <=0 means unbounded
	clock   uint64
	bytes   int64 // total weight of live entries
	entries map[string]*residentEntry

	hits      uint64 // acquisitions served by an already-resident relation
	misses    uint64 // acquisitions that materialized from the store
	evictions uint64

	loading map[string]chan struct{}
}

func newResidents(budget int64) *residents {
	return &residents{
		budget:  budget,
		entries: make(map[string]*residentEntry),
		loading: make(map[string]chan struct{}),
	}
}

// note installs a fresh accounting record for name, retiring any
// predecessor. refs seeds the refcount (1 when the caller holds the
// relation, 0 for registration-time residents with no in-flight user).
func (r *residents) note(name string, bytes int64, pinned bool, refs int) *residentEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.retireLocked(name)
	r.clock++
	e := &residentEntry{name: name, bytes: bytes, refs: refs, tick: r.clock, pinned: pinned, live: true}
	r.entries[name] = e
	r.bytes += bytes
	return e
}

// retire drops name's accounting record, if any.
func (r *residents) retire(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.retireLocked(name)
}

func (r *residents) retireLocked(name string) {
	e, ok := r.entries[name]
	if !ok {
		return
	}
	e.live = false
	r.bytes -= e.bytes
	delete(r.entries, name)
}

// touch records a use of an already-resident relation and takes a
// reference on it.
func (r *residents) touch(e *residentEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clock++
	e.tick = r.clock
	e.refs++
	r.hits++
}

// release drops one reference. Safe on retired entries.
func (r *residents) release(e *residentEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e.refs--
}

func (r *residents) noteMiss() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.misses++
}

// overBudget reports whether live residents exceed the byte budget.
func (r *residents) overBudget() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.budget > 0 && r.bytes > r.budget
}

// beginLoad single-flights a cold materialization: the first caller for a
// name becomes the leader (true) and must call endLoad when done; others
// get the leader's completion channel.
func (r *residents) beginLoad(name string) (chan struct{}, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ch, ok := r.loading[name]; ok {
		return ch, false
	}
	ch := make(chan struct{})
	r.loading[name] = ch
	return ch, true
}

func (r *residents) endLoad(name string) {
	r.mu.Lock()
	ch := r.loading[name]
	delete(r.loading, name)
	r.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

const errNoDataset = namedError("no such dataset")

// acquireDataset resolves a dataset by name, materializing it from the
// store on a cold miss, and returns the relation with its kernel cache and
// a release closure the caller must invoke once done (it drops the
// residency reference and applies the eviction budget). The pair stays
// consistent even if the dataset is concurrently replaced: replacement
// swaps the whole registry entry, never mutates one. A missing dataset
// returns errNoDataset.
func (s *Server) acquireDataset(ctx context.Context, name string) (*relation.Relation, *kernel.Cache, func(), error) {
	for {
		s.mu.RLock()
		d, ok := s.datasets[name]
		if !ok {
			s.mu.RUnlock()
			return nil, nil, nil, errNoDataset
		}
		if d.rel != nil {
			rel, cache, re := d.rel, d.cache, d.res
			s.res.touch(re)
			s.mu.RUnlock()
			release := func() {
				s.res.release(re)
				s.evictOverBudget()
			}
			return rel, cache, release, nil
		}
		s.mu.RUnlock()

		ch, leader := s.res.beginLoad(name)
		if !leader {
			select {
			case <-ch:
			case <-ctx.Done():
				return nil, nil, nil, ctx.Err()
			}
			continue // the leader installed (or failed); re-resolve
		}
		rel, cache, release, retry, err := s.materialize(name)
		s.res.endLoad(name)
		if err != nil {
			return nil, nil, nil, err
		}
		if retry {
			continue
		}
		return rel, cache, release, nil
	}
}

// materialize loads a cold dataset's rows from the store and installs the
// resident entry. retry is true when the registry moved underneath the
// load (replacement, deletion, concurrent append) and the caller should
// re-resolve.
func (s *Server) materialize(name string) (rel *relation.Relation, cache *kernel.Cache, release func(), retry bool, err error) {
	// The load — segment reads and decode, the slow part — runs outside
	// every lock.
	loaded, m, err := s.store.Load(name)
	if err != nil {
		return nil, nil, nil, false, fmt.Errorf("materializing dataset %q: %w", name, err)
	}
	s.res.noteMiss()
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.datasets[name]
	if !ok {
		return nil, nil, nil, false, errNoDataset
	}
	if d.rel != nil || d.version != m.Version {
		// Replaced, re-materialized, or appended while we were loading:
		// what we decoded no longer matches the registry. Retry against
		// the current entry.
		return nil, nil, nil, true, nil
	}
	entry := &dataset{
		name: name, rel: loaded, cache: kernel.NewAt(loaded, m.Version),
		version: m.Version, created: d.created,
		rows: m.Rows, schema: d.schema, stored: true, diskBytes: d.diskBytes,
	}
	entry.res = s.res.note(name, entry.diskBytes, false, 1)
	s.datasets[name] = entry
	s.evictOverBudgetLocked()
	re := entry.res
	return loaded, entry.cache, func() {
		s.res.release(re)
		s.evictOverBudget()
	}, false, nil
}

// noteResidentLocked registers d's relation with the residency tracker.
// Store-backed datasets weigh their on-disk size (the columnar format is
// close to the decoded footprint); others are pinned and weigh an in-memory
// estimate. Callers hold s.mu and guarantee d.rel != nil.
func (s *Server) noteResidentLocked(d *dataset) {
	weight := d.diskBytes
	pinned := !d.stored
	if pinned {
		weight = d.rel.ApproxBytes()
	}
	d.res = s.res.note(d.name, weight, pinned, 0)
}

// evictOverBudget applies the byte budget from an unlocked context (the
// release path).
func (s *Server) evictOverBudget() {
	if !s.res.overBudget() {
		return
	}
	s.mu.Lock()
	s.evictOverBudgetLocked()
	s.mu.Unlock()
}

// evictOverBudgetLocked evicts least-recently-used, unreferenced,
// unpinned residents until the budget holds or no victim remains. Callers
// hold s.mu; eviction swaps the hot registry entry for a cold metadata-only
// one, so the next touch materializes again.
func (s *Server) evictOverBudgetLocked() {
	s.res.mu.Lock()
	defer s.res.mu.Unlock()
	if s.res.budget <= 0 {
		return
	}
	for s.res.bytes > s.res.budget {
		var victim *residentEntry
		for _, e := range s.res.entries {
			if e.refs > 0 || e.pinned {
				continue
			}
			if victim == nil || e.tick < victim.tick {
				victim = e
			}
		}
		if victim == nil {
			return // everything left is referenced or pinned
		}
		d := s.datasets[victim.name]
		if d == nil || d.res != victim {
			// Stale accounting (registry moved on); drop the record.
			s.res.retireLocked(victim.name)
			continue
		}
		s.datasets[victim.name] = &dataset{
			name: d.name, version: d.version, created: d.created,
			rows: d.rows, schema: d.schema, stored: true, diskBytes: d.diskBytes,
		}
		s.res.retireLocked(victim.name)
		s.res.evictions++
	}
}

// writeResidentMetrics renders the residency gauges for /metrics.
func (s *Server) writeResidentMetrics(w io.Writer) {
	s.res.mu.Lock()
	bytes, budget, count := s.res.bytes, s.res.budget, len(s.res.entries)
	hits, misses, evictions := s.res.hits, s.res.misses, s.res.evictions
	s.res.mu.Unlock()
	fmt.Fprintf(w, "# HELP scoded_resident_bytes Estimated bytes of materialized relations held in memory.\n")
	fmt.Fprintf(w, "# TYPE scoded_resident_bytes gauge\n")
	fmt.Fprintf(w, "scoded_resident_bytes %d\n", bytes)
	fmt.Fprintf(w, "# HELP scoded_resident_budget_bytes Configured resident byte budget; 0 means unbounded.\n")
	fmt.Fprintf(w, "# TYPE scoded_resident_budget_bytes gauge\n")
	fmt.Fprintf(w, "scoded_resident_budget_bytes %d\n", max64(budget, 0))
	fmt.Fprintf(w, "# HELP scoded_resident_relations Materialized relations currently held in memory.\n")
	fmt.Fprintf(w, "# TYPE scoded_resident_relations gauge\n")
	fmt.Fprintf(w, "scoded_resident_relations %d\n", count)
	fmt.Fprintf(w, "# HELP scoded_resident_hits_total Dataset acquisitions served by an already-resident relation.\n")
	fmt.Fprintf(w, "# TYPE scoded_resident_hits_total counter\n")
	fmt.Fprintf(w, "scoded_resident_hits_total %d\n", hits)
	fmt.Fprintf(w, "# HELP scoded_resident_misses_total Dataset acquisitions that materialized rows from the store.\n")
	fmt.Fprintf(w, "# TYPE scoded_resident_misses_total counter\n")
	fmt.Fprintf(w, "scoded_resident_misses_total %d\n", misses)
	fmt.Fprintf(w, "# HELP scoded_resident_evictions_total Resident relations evicted back to cold, metadata-only form.\n")
	fmt.Fprintf(w, "# TYPE scoded_resident_evictions_total counter\n")
	fmt.Fprintf(w, "scoded_resident_evictions_total %d\n", evictions)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
