package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"scoded/internal/relation"
	"scoded/internal/store"
)

// newDurableServer opens (or reopens) a store on dir and boots a server
// from it, the way scoded-serve -data-dir does.
func newDurableServer(t *testing.T, dir string) *Server {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	s := New(Options{Store: st, Workers: 2, MaxUploadBytes: 32 << 20})
	if err := s.LoadStore(); err != nil {
		t.Fatalf("LoadStore: %v", err)
	}
	return s
}

// doRaw runs one request and returns the status plus the exact response
// bytes, for byte-identity assertions across restarts.
func doRaw(t *testing.T, h http.Handler, method, path, contentType string, body []byte) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

// TestRestartDurability is the acceptance test for the storage layer: a
// server booted from the same data directory must be indistinguishable —
// byte-identical /v1/checkall, re-armed monitors — from the process that
// wrote it.
func TestRestartDurability(t *testing.T) {
	dir := t.TempDir()
	s1 := newDurableServer(t, dir)
	h1 := s1.Handler()

	if code := do(t, h1, "POST", "/v1/datasets?name=cars", "text/csv", []byte(testCSV(3, 300)), nil); code != http.StatusCreated {
		t.Fatalf("upload status %d", code)
	}
	if code := do(t, h1, "POST", "/v1/datasets/cars/rows", "text/csv", []byte(testCSV(9, 40)), nil); code != http.StatusOK {
		t.Fatalf("append status %d", code)
	}
	for _, c := range []string{
		"Model _||_ Color @ 0.05",
		"Price _||_ Mileage | Model @ 0.05",
	} {
		if code := doJSON(t, h1, "POST", "/v1/constraints", map[string]string{"constraint": c}, nil); code != http.StatusCreated {
			t.Fatalf("constraint %q status %d", c, code)
		}
	}
	if code := doJSON(t, h1, "POST", "/v1/monitors",
		map[string]any{"kind": "categorical", "alpha": 0.05, "window": 100, "dataset": "cars"}, nil); code != http.StatusCreated {
		t.Fatalf("monitor create failed")
	}
	xs := make([]string, 30)
	ys := make([]string, 30)
	for i := range xs {
		xs[i] = []string{"a", "b", "c"}[i%3]
		ys[i] = []string{"u", "v"}[i%2]
	}
	if code := doJSON(t, h1, "POST", "/v1/monitors/1/observe", map[string]any{"x": xs, "y": ys}, nil); code != http.StatusOK {
		t.Fatalf("observe failed")
	}

	checkReq := []byte(`{"dataset":"cars","workers":1}`)
	code, before := doRaw(t, h1, "POST", "/v1/checkall", "application/json", checkReq)
	if code != http.StatusOK {
		t.Fatalf("checkall status %d: %s", code, before)
	}
	_, monBefore := doRaw(t, h1, "GET", "/v1/monitors", "", nil)

	// A brand-new server on the same directory — the "restarted process".
	s2 := newDurableServer(t, dir)
	h2 := s2.Handler()

	code, after := doRaw(t, h2, "POST", "/v1/checkall", "application/json", checkReq)
	if code != http.StatusOK {
		t.Fatalf("checkall after restart: status %d: %s", code, after)
	}
	if !bytes.Equal(before, after) {
		t.Errorf("checkall diverged across restart:\nbefore: %s\nafter:  %s", before, after)
	}
	_, monAfter := doRaw(t, h2, "GET", "/v1/monitors", "", nil)
	if !bytes.Equal(monBefore, monAfter) {
		t.Errorf("monitors diverged across restart:\nbefore: %s\nafter:  %s", monBefore, monAfter)
	}
	if !bytes.Contains(monAfter, []byte(`"observed":30`)) {
		t.Errorf("monitor lost its observation count: %s", monAfter)
	}

	var info struct {
		Rows    int    `json:"rows"`
		Version uint64 `json:"version"`
	}
	if code := do(t, h2, "GET", "/v1/datasets/cars", "", nil, &info); code != http.StatusOK {
		t.Fatalf("dataset get after restart: %d", code)
	}
	if info.Rows != 340 || info.Version != 2 {
		t.Errorf("restored dataset = %d rows at version %d, want 340 at 2", info.Rows, info.Version)
	}
}

// TestDeleteIsDurable pins the other direction: deletions survive a
// restart too.
func TestDeleteIsDurable(t *testing.T) {
	dir := t.TempDir()
	s1 := newDurableServer(t, dir)
	h1 := s1.Handler()
	if code := do(t, h1, "POST", "/v1/datasets?name=cars", "text/csv", []byte(testCSV(1, 60)), nil); code != http.StatusCreated {
		t.Fatalf("upload status %d", code)
	}
	if code := doJSON(t, h1, "POST", "/v1/constraints", map[string]string{"constraint": "Model _||_ Color @ 0.05"}, nil); code != http.StatusCreated {
		t.Fatal("constraint add failed")
	}
	if code := do(t, h1, "DELETE", "/v1/datasets/cars", "", nil, nil); code != http.StatusOK {
		t.Fatal("dataset delete failed")
	}
	if code := do(t, h1, "DELETE", "/v1/constraints/1", "", nil, nil); code != http.StatusOK {
		t.Fatal("constraint delete failed")
	}

	s2 := newDurableServer(t, dir)
	h2 := s2.Handler()
	if code := do(t, h2, "GET", "/v1/datasets/cars", "", nil, nil); code != http.StatusNotFound {
		t.Errorf("deleted dataset resurrected: status %d", code)
	}
	var cl struct {
		Constraints []constraintInfo `json:"constraints"`
	}
	do(t, h2, "GET", "/v1/constraints", "", nil, &cl)
	if len(cl.Constraints) != 0 {
		t.Errorf("deleted constraint resurrected: %+v", cl.Constraints)
	}
	// The freed id is not reused: the counter itself is durable.
	if code := doJSON(t, h2, "POST", "/v1/constraints", map[string]string{"constraint": "A _||_ B @ 0.05"}, nil); code != http.StatusCreated {
		t.Fatal("constraint add after restart failed")
	}
	do(t, h2, "GET", "/v1/constraints", "", nil, &cl)
	if len(cl.Constraints) != 1 || cl.Constraints[0].ID != 2 {
		t.Errorf("constraint id after restart = %+v, want id 2", cl.Constraints)
	}
}

// TestStoreMaterializedMatchesCSV is the bit-identity property the
// restart test builds on: a relation pushed through the columnar store
// comes back Equal to the CSV-parsed original, dictionaries included.
func TestStoreMaterializedMatchesCSV(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want, err := relation.ReadCSV(strings.NewReader(testCSV(11, 500)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Replace("cars", want); err != nil {
		t.Fatal(err)
	}
	got, _, err := st.Load("cars")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("store-materialized relation differs from the CSV-loaded one")
	}
}

// TestAppendKeepsUntouchedStrataWarm asserts the incremental-invalidation
// acceptance criterion through the public surface: after an append that
// only grows one stratum, re-running a conditional checkall serves the
// untouched strata from cache, observable as /metrics hit counters.
func TestAppendKeepsUntouchedStrataWarm(t *testing.T) {
	s := New(Options{Workers: 1, MaxUploadBytes: 32 << 20})
	h := s.Handler()
	if code := do(t, h, "POST", "/v1/datasets?name=cars", "text/csv", []byte(testCSV(5, 400)), nil); code != http.StatusCreated {
		t.Fatal("upload failed")
	}
	checkReq := map[string]any{
		"dataset":     "cars",
		"constraints": []string{"Price _||_ Mileage | Model @ 0.05"},
		"workers":     1,
	}
	if code := doJSON(t, h, "POST", "/v1/checkall", checkReq, nil); code != http.StatusOK {
		t.Fatal("first checkall failed")
	}
	hits1, misses1 := kernelCounters(t, h, "cars")

	// The append touches only the prius stratum; civic/model3/leaf keep
	// their row sets, hence their versioned cache keys.
	var b strings.Builder
	b.WriteString("Model,Color,Mileage,Price\n")
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&b, "prius,red,%d,%d\n", 20000+i*100, 30000-i*50)
	}
	if code := do(t, h, "POST", "/v1/datasets/cars/rows", "text/csv", []byte(b.String()), nil); code != http.StatusOK {
		t.Fatal("append failed")
	}
	if code := doJSON(t, h, "POST", "/v1/checkall", checkReq, nil); code != http.StatusOK {
		t.Fatal("second checkall failed")
	}
	hits2, misses2 := kernelCounters(t, h, "cars")
	if warm := hits2 - hits1; warm < 3 {
		t.Errorf("untouched strata recomputed after append: only %d cache hits (misses %d -> %d)", warm, misses1, misses2)
	}
	// The grown stratum and the all-rows pass must recompute: misses move
	// too, or the test would pass with a cache that never invalidates.
	if misses2 <= misses1 {
		t.Errorf("no recomputation after append: misses stayed at %d", misses2)
	}
}

// kernelCounters scrapes the per-dataset kernel cache counters from
// /metrics.
func kernelCounters(t *testing.T, h http.Handler, dataset string) (hits, misses int64) {
	t.Helper()
	_, body := doRaw(t, h, "GET", "/metrics", "", nil)
	text := string(body)
	if _, err := fmt.Sscanf(afterPrefix(t, text, fmt.Sprintf(`scoded_kernel_cache_hits_total{dataset=%q} `, dataset)), "%d", &hits); err != nil {
		t.Fatalf("parsing hits: %v", err)
	}
	if _, err := fmt.Sscanf(afterPrefix(t, text, fmt.Sprintf(`scoded_kernel_cache_misses_total{dataset=%q} `, dataset)), "%d", &misses); err != nil {
		t.Fatalf("parsing misses: %v", err)
	}
	return hits, misses
}

// TestStoreMetricsExposed pins the store gauge names.
func TestStoreMetricsExposed(t *testing.T) {
	s := newDurableServer(t, t.TempDir())
	h := s.Handler()
	if code := do(t, h, "POST", "/v1/datasets?name=cars", "text/csv", []byte(testCSV(2, 50)), nil); code != http.StatusCreated {
		t.Fatal("upload failed")
	}
	_, body := doRaw(t, h, "GET", "/metrics", "", nil)
	text := string(body)
	for _, want := range []string{
		"scoded_store_datasets 1",
		"scoded_store_segments 1",
		"scoded_store_bytes ",
		"scoded_store_last_flush_seconds ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}
