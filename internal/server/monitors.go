package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"scoded/internal/stream"
)

// monitorEntry is one registered streaming monitor. Observe batches mutate
// the underlying monitor, so each entry carries its own mutex: two clients
// feeding the same monitor serialize on it, while different monitors
// proceed in parallel.
type monitorEntry struct {
	id         int
	kind       string // "categorical" or "numeric"
	alpha      float64
	dependence bool
	window     int
	dataset    string // optional dataset binding; "" means unbound
	webhook    string // optional per-monitor alert sink URL

	mu           sync.Mutex
	cat          *stream.CategoricalMonitor
	num          *stream.NumericMonitor
	observed     int64 // total records ever observed
	lastViolated bool  // verdict baseline for alert flip detection

	// slots is the ingest admission channel (see ingest.go); stats the
	// streaming telemetry. Both are armed by initIngest.
	slots chan struct{}
	stats streamStats
}

// verdictLocked evaluates whichever monitor the entry wraps. Callers hold
// m.mu.
func (m *monitorEntry) verdictLocked() stream.Verdict {
	if m.cat != nil {
		return m.cat.Verdict()
	}
	return m.num.Verdict()
}

type monitorInfo struct {
	ID         int     `json:"id"`
	Kind       string  `json:"kind"`
	Alpha      float64 `json:"alpha"`
	Dependence bool    `json:"dependence"`
	Window     int     `json:"window,omitempty"`
	Dataset    string  `json:"dataset,omitempty"`
	Observed   int64   `json:"observed"`
	N          int     `json:"n"`
}

func (m *monitorEntry) info() monitorInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	if m.cat != nil {
		n = m.cat.N()
	} else {
		n = m.num.N()
	}
	return monitorInfo{
		ID: m.id, Kind: m.kind, Alpha: m.alpha, Dependence: m.dependence,
		Window: m.window, Dataset: m.dataset, Observed: m.observed, N: n,
	}
}

// dropBoundMonitorsLocked deletes every monitor bound to the named dataset,
// along with its durable observation log. Called when the dataset is
// replaced or deleted, so a monitor's verdict can never mix observations
// derived from different versions of the data; the manifest's monitor list
// needs no separate cleanup because both callers rewrite or remove the
// manifest itself. Callers hold s.mu.
func (s *Server) dropBoundMonitorsLocked(name string) {
	for id, m := range s.monitors {
		if m.dataset == name {
			delete(s.monitors, id)
			if s.store != nil {
				// Best-effort: a leftover log is unreachable (no definition
				// references it) and harmless.
				_ = s.store.DropLog(id)
			}
		}
	}
}

// handleMonitorCreate registers a streaming monitor:
// {"kind": "categorical"|"numeric", "alpha": 0.05, "dependence": true,
// "window": 1000, "dataset": "name"}. A zero window means unbounded. The
// optional dataset field binds the monitor to a registered dataset:
// replacing or deleting that dataset deletes the monitor.
func (s *Server) handleMonitorCreate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Kind       string  `json:"kind"`
		Alpha      float64 `json:"alpha"`
		Dependence bool    `json:"dependence,omitempty"`
		Window     int     `json:"window,omitempty"`
		Dataset    string  `json:"dataset,omitempty"`
		Webhook    string  `json:"webhook,omitempty"`
	}
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	//scoded:lint-ignore floatcmp exact zero is the JSON zero value meaning the field was absent
	if req.Alpha == 0 {
		req.Alpha = 0.05
	}
	entry := &monitorEntry{
		kind: req.Kind, alpha: req.Alpha, dependence: req.Dependence,
		window: req.Window, dataset: req.Dataset, webhook: req.Webhook,
	}
	var err error
	switch req.Kind {
	case "categorical":
		entry.cat, err = stream.NewCategoricalMonitor(req.Alpha, req.Dependence, req.Window)
	case "numeric":
		entry.num, err = stream.NewNumericMonitor(req.Alpha, req.Dependence, req.Window)
	default:
		err = fmt.Errorf("unknown monitor kind %q (want categorical or numeric)", req.Kind)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	entry.initIngest(s.opts.IngestQueue)
	s.mu.Lock()
	// Validate the binding under the same lock that registers the monitor,
	// so a concurrent dataset replacement cannot slip between check and add.
	if req.Dataset != "" {
		if _, ok := s.datasets[req.Dataset]; !ok {
			s.mu.Unlock()
			writeError(w, http.StatusNotFound, "no dataset %q", req.Dataset)
			return
		}
	}
	s.nextMonitor++
	entry.id = s.nextMonitor
	s.monitors[entry.id] = entry
	// Persist the definition before acknowledging: the id counter lives in
	// the registry, a bound definition in its dataset's manifest.
	err = s.persistRegistryLocked()
	if err == nil && entry.dataset != "" {
		err = s.persistBoundMonitorsLocked(entry.dataset)
	}
	if err != nil {
		delete(s.monitors, entry.id)
		s.mu.Unlock()
		writeError(w, http.StatusInternalServerError, "persisting monitor: %v", err)
		return
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, entry.info())
}

// handleMonitorList lists monitors sorted by id.
func (s *Server) handleMonitorList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	entries := make([]*monitorEntry, 0, len(s.monitors))
	for _, m := range s.monitors {
		entries = append(entries, m)
	}
	s.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	infos := make([]monitorInfo, len(entries))
	for i, m := range entries {
		infos[i] = m.info()
	}
	writeJSON(w, http.StatusOK, map[string]any{"monitors": infos})
}

func (s *Server) monitorByID(w http.ResponseWriter, r *http.Request) (*monitorEntry, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid monitor id %q", r.PathValue("id"))
		return nil, false
	}
	s.mu.RLock()
	m, ok := s.monitors[id]
	s.mu.RUnlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no monitor %d", id)
		return nil, false
	}
	return m, true
}

// handleMonitorObserve records a batch of (x, y) observations:
// {"x": [...], "y": [...]} — strings for a categorical monitor, numbers
// for a numeric one. The two arrays must have equal length.
func (s *Server) handleMonitorObserve(w http.ResponseWriter, r *http.Request) {
	m, ok := s.monitorByID(w, r)
	if !ok {
		return
	}
	var req struct {
		X []any `json:"x"`
		Y []any `json:"y"`
	}
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.X) != len(req.Y) {
		writeError(w, http.StatusBadRequest, "x has %d values, y has %d", len(req.X), len(req.Y))
		return
	}
	// Batches stream through InsertBatch so a disconnected client or an
	// expired server deadline stops a large observation batch mid-way; the
	// already-inserted prefix still counts as observed (and is what gets
	// persisted to the monitor's durable log).
	var batchErr error
	var n int
	var xs, ys []string
	var xf, yf []float64
	if m.kind == "categorical" {
		var err error
		xs, err = asStrings(req.X, "x")
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		ys, err = asStrings(req.Y, "y")
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		m.mu.Lock()
		n, batchErr = m.cat.InsertBatch(r.Context(), xs, ys)
		m.observed += int64(n)
		m.mu.Unlock()
		xs, ys = xs[:n], ys[:n]
	} else {
		var err error
		xf, err = asFloats(req.X, "x")
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		yf, err = asFloats(req.Y, "y")
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		m.mu.Lock()
		n, batchErr = m.num.InsertBatch(r.Context(), xf, yf)
		m.observed += int64(n)
		m.mu.Unlock()
		xf, yf = xf[:n], yf[:n]
	}
	if n > 0 {
		if perr := s.persistObservations(m, xs, ys, xf, yf); perr != nil {
			writeError(w, http.StatusInternalServerError, "persisting observations: %v", perr)
			return
		}
	}
	if batchErr != nil {
		writeError(w, errStatus(batchErr), "%v", batchErr)
		return
	}
	writeJSON(w, http.StatusOK, m.info())
}

func asStrings(vals []any, field string) ([]string, error) {
	out := make([]string, len(vals))
	for i, v := range vals {
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("%s[%d]: want string for a categorical monitor, got %T", field, i, v)
		}
		out[i] = s
	}
	return out, nil
}

func asFloats(vals []any, field string) ([]float64, error) {
	out := make([]float64, len(vals))
	for i, v := range vals {
		f, ok := v.(float64)
		if !ok {
			return nil, fmt.Errorf("%s[%d]: want number for a numeric monitor, got %T", field, i, v)
		}
		out[i] = f
	}
	return out, nil
}

// handleMonitorVerdict evaluates the monitor's constraint on its current
// window.
func (s *Server) handleMonitorVerdict(w http.ResponseWriter, r *http.Request) {
	m, ok := s.monitorByID(w, r)
	if !ok {
		return
	}
	m.mu.Lock()
	v := m.verdictLocked()
	observed := m.observed
	m.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"id":        m.id,
		"statistic": v.Statistic,
		"p":         v.P,
		"df":        v.DF,
		"n":         v.N,
		"observed":  observed,
		"violated":  v.Violated,
	})
}

// handleMonitorDelete removes a monitor.
func (s *Server) handleMonitorDelete(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid monitor id %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	m, ok := s.monitors[id]
	delete(s.monitors, id)
	if ok && s.store != nil {
		var perr error
		if m.dataset != "" {
			perr = s.persistBoundMonitorsLocked(m.dataset)
		} else {
			perr = s.persistRegistryLocked()
		}
		if perr == nil {
			perr = s.store.DropLog(id)
		}
		if perr != nil {
			s.mu.Unlock()
			writeError(w, http.StatusInternalServerError, "persisting monitor delete: %v", perr)
			return
		}
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no monitor %d", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"deleted": id})
}
