package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"scoded/internal/relation"
)

// heavyCheckAllBody builds a /v1/checkall request whose family takes many
// seconds to run sequentially: repeated exact-kendall constraints, each a
// 999-iteration Monte-Carlo permutation test.
func heavyCheckAllBody(t *testing.T, n int) []byte {
	t.Helper()
	constraints := make([]string, n)
	for i := range constraints {
		constraints[i] = "Mileage _||_ Price @ 0.05"
	}
	body, err := json.Marshal(map[string]any{
		"dataset":     "cars",
		"constraints": constraints,
		"method":      "exact-kendall",
		"workers":     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func carsServer(t *testing.T, opts Options) *Server {
	t.Helper()
	rel, err := relation.ReadCSV(strings.NewReader(testCSV(3, 600)))
	if err != nil {
		t.Fatal(err)
	}
	s := New(opts)
	if err := s.AddDataset("cars", rel); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCheckAllClientDisconnect: a client that goes away mid-checkall
// cancels the request context; the engine drains its queue, the handler
// returns long before the family would have finished, and no worker
// goroutine survives the request.
func TestCheckAllClientDisconnect(t *testing.T) {
	before := runtime.NumGoroutine()
	s := carsServer(t, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/checkall",
		bytes.NewReader(heavyCheckAllBody(t, 60)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")

	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	// Let the family get going, then vanish.
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("disconnected request still got a full response")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("disconnected checkall did not return; the pool is not draining")
	}

	// Close waits for outstanding handlers, then every pool goroutine must
	// be gone. The count is polled because handler teardown is asynchronous
	// with the client's error return.
	ts.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after drain", before, runtime.NumGoroutine())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestCheckAllRequestTimeout504: a server-side RequestTimeout cancels a
// long checkall and maps the partial batch to 504 Gateway Timeout.
func TestCheckAllRequestTimeout504(t *testing.T) {
	s := carsServer(t, Options{Workers: 1, RequestTimeout: 50 * time.Millisecond})
	req := httptest.NewRequest("POST", "/v1/checkall", bytes.NewReader(heavyCheckAllBody(t, 60)))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want %d (body %s)", rec.Code, http.StatusGatewayTimeout, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "checkall aborted") {
		t.Fatalf("body %q does not report the aborted batch", rec.Body.String())
	}
}

// TestDrilldownRequestTimeout504: the same deadline interrupts a greedy
// drill-down between rounds.
func TestDrilldownRequestTimeout504(t *testing.T) {
	s := carsServer(t, Options{RequestTimeout: time.Nanosecond})
	body, err := json.Marshal(map[string]any{
		"dataset": "cars", "constraint": "Mileage _||_ Price", "k": 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/drilldown", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want %d (body %s)", rec.Code, http.StatusGatewayTimeout, rec.Body.String())
	}
}
