package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"scoded/internal/detect"
	"scoded/internal/drilldown"
	"scoded/internal/relation"
	"scoded/internal/sc"
	"scoded/internal/stream"
)

// testCSV builds a small car-style dataset with a real Model→Price
// dependence, an independent Noise column, and numeric mileage/price
// columns.
func testCSV(seed int64, n int) string {
	rng := rand.New(rand.NewSource(seed))
	models := []string{"prius", "civic", "model3", "leaf"}
	var b strings.Builder
	b.WriteString("Model,Color,Mileage,Price\n")
	for i := 0; i < n; i++ {
		m := rng.Intn(len(models))
		color := []string{"red", "blue", "black"}[rng.Intn(3)]
		mileage := 10000 + rng.Float64()*90000
		price := 35000 - 5000*float64(m) - 0.1*mileage + rng.NormFloat64()*1000
		fmt.Fprintf(&b, "%s,%s,%.2f,%.2f\n", models[m], color, mileage, price)
	}
	return b.String()
}

// do runs one request through the handler and decodes a JSON response.
func do(t *testing.T, h http.Handler, method, path, contentType string, body []byte, out any) int {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding response %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec.Code
}

func doJSON(t *testing.T, h http.Handler, method, path string, reqBody, out any) int {
	t.Helper()
	b, err := json.Marshal(reqBody)
	if err != nil {
		t.Fatal(err)
	}
	return do(t, h, method, path, "application/json", b, out)
}

func TestEndToEndFlow(t *testing.T) {
	s := New(Options{})
	h := s.Handler()
	csv := testCSV(1, 400)

	// Upload a dataset.
	var dsInfo datasetInfo
	if code := do(t, h, "POST", "/v1/datasets?name=cars", "text/csv", []byte(csv), &dsInfo); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	if dsInfo.Rows != 400 || len(dsInfo.Columns) != 4 {
		t.Fatalf("upload info: %+v", dsInfo)
	}

	// Register a constraint.
	var scInfo constraintInfo
	code := doJSON(t, h, "POST", "/v1/constraints",
		map[string]string{"constraint": "Model _||_ Price @ 0.05"}, &scInfo)
	if code != http.StatusCreated || scInfo.ID == 0 {
		t.Fatalf("constraint add: status %d, %+v", code, scInfo)
	}

	// Check via the service.
	var res checkResultJSON
	code = doJSON(t, h, "POST", "/v1/check",
		map[string]any{"dataset": "cars", "constraint_id": scInfo.ID}, &res)
	if code != http.StatusOK {
		t.Fatalf("check: status %d (%+v)", code, res)
	}

	// The service must agree exactly with the library.
	rel, err := relation.ReadCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	a := sc.Approximate{SC: sc.MustParse("Model _||_ Price"), Alpha: 0.05}
	want, err := detect.Check(rel, a, detect.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violated != want.Violated || res.Test.P != want.Test.P {
		t.Errorf("service check (violated=%v p=%v) != library (violated=%v p=%v)",
			res.Violated, res.Test.P, want.Violated, want.Test.P)
	}
	if !res.Violated {
		t.Error("Model _||_ Price should be violated on correlated data")
	}

	// Drill down to the top-k contributing rows.
	var drill struct {
		Rows        []int      `json:"rows"`
		Records     [][]string `json:"records"`
		InitialStat float64    `json:"initial_stat"`
	}
	code = doJSON(t, h, "POST", "/v1/drilldown",
		map[string]any{"dataset": "cars", "constraint_id": scInfo.ID, "k": 5}, &drill)
	if code != http.StatusOK {
		t.Fatalf("drilldown: status %d", code)
	}
	if len(drill.Rows) != 5 || len(drill.Records) != 5 {
		t.Fatalf("drilldown rows: %+v", drill.Rows)
	}
	wantDrill, err := drilldown.TopK(rel, a.SC, 5, drilldown.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range wantDrill.Rows {
		if drill.Rows[i] != r {
			t.Errorf("drilldown row %d: got %d, want %d", i, drill.Rows[i], r)
		}
	}

	// Metrics show the traffic.
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", rec.Code)
	}
	metricsText := rec.Body.String()
	for _, want := range []string{
		`scoded_requests_total{route="POST /v1/datasets",code="201"} 1`,
		`scoded_requests_total{route="POST /v1/check",code="200"} 1`,
		`scoded_request_duration_seconds_count{route="POST /v1/drilldown"} 1`,
		"scoded_uptime_seconds",
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("metrics missing %q in:\n%s", want, metricsText)
		}
	}

	// Health reflects the registries.
	var health struct {
		Status      string `json:"status"`
		Datasets    int    `json:"datasets"`
		Constraints int    `json:"constraints"`
	}
	if code := do(t, h, "GET", "/healthz", "", nil, &health); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if health.Status != "ok" || health.Datasets != 1 || health.Constraints != 1 {
		t.Errorf("healthz: %+v", health)
	}
}

func TestDatasetRegistry(t *testing.T) {
	s := New(Options{})
	h := s.Handler()
	csv := testCSV(2, 50)

	if code := do(t, h, "POST", "/v1/datasets", "text/csv", []byte(csv), nil); code != http.StatusBadRequest {
		t.Errorf("missing name: status %d", code)
	}
	if code := do(t, h, "POST", "/v1/datasets?name=d1", "text/csv", []byte(csv), nil); code != http.StatusCreated {
		t.Errorf("upload: status %d", code)
	}
	if code := do(t, h, "POST", "/v1/datasets?name=d1", "text/csv", []byte(csv), nil); code != http.StatusOK {
		t.Errorf("re-upload under an existing name should replace (200): status %d", code)
	}
	if code := do(t, h, "POST", "/v1/datasets?name=bad", "text/csv", []byte("a,b\n1\n"), nil); code != http.StatusBadRequest {
		t.Errorf("ragged CSV: status %d", code)
	}

	var list struct {
		Datasets []datasetInfo `json:"datasets"`
	}
	if code := do(t, h, "GET", "/v1/datasets", "", nil, &list); code != http.StatusOK || len(list.Datasets) != 1 {
		t.Errorf("list: status %d, %+v", code, list)
	}
	if code := do(t, h, "GET", "/v1/datasets/d1", "", nil, nil); code != http.StatusOK {
		t.Errorf("get: status %d", code)
	}
	if code := do(t, h, "GET", "/v1/datasets/nope", "", nil, nil); code != http.StatusNotFound {
		t.Errorf("get missing: status %d", code)
	}
	if code := do(t, h, "DELETE", "/v1/datasets/d1", "", nil, nil); code != http.StatusOK {
		t.Errorf("delete: status %d", code)
	}
	if code := do(t, h, "DELETE", "/v1/datasets/d1", "", nil, nil); code != http.StatusNotFound {
		t.Errorf("delete twice: status %d", code)
	}
}

func TestUploadSizeLimit(t *testing.T) {
	s := New(Options{MaxUploadBytes: 64})
	h := s.Handler()
	csv := testCSV(3, 100)
	if code := do(t, h, "POST", "/v1/datasets?name=big", "text/csv", []byte(csv), nil); code != http.StatusBadRequest {
		t.Errorf("oversized upload: status %d, want 400", code)
	}
}

func TestConstraintRegistry(t *testing.T) {
	s := New(Options{})
	h := s.Handler()

	if code := doJSON(t, h, "POST", "/v1/constraints", map[string]string{"constraint": "garbage"}, nil); code != http.StatusBadRequest {
		t.Errorf("bad constraint: status %d", code)
	}
	var info constraintInfo
	if code := doJSON(t, h, "POST", "/v1/constraints",
		map[string]string{"constraint": "A ~||~ B | C @ 0.3"}, &info); code != http.StatusCreated {
		t.Fatalf("add: status %d", code)
	}
	if info.Constraint != "A ~||~ B | C" || info.Alpha != 0.3 || !info.Dependence {
		t.Errorf("constraint info: %+v", info)
	}
	var list struct {
		Constraints []constraintInfo `json:"constraints"`
	}
	if code := do(t, h, "GET", "/v1/constraints", "", nil, &list); code != http.StatusOK || len(list.Constraints) != 1 {
		t.Errorf("list: %d, %+v", code, list)
	}
	if code := do(t, h, "GET", fmt.Sprintf("/v1/constraints/%d", info.ID), "", nil, nil); code != http.StatusOK {
		t.Errorf("get: status %d", code)
	}
	if code := do(t, h, "GET", "/v1/constraints/999", "", nil, nil); code != http.StatusNotFound {
		t.Errorf("get missing: status %d", code)
	}
	if code := do(t, h, "GET", "/v1/constraints/xyz", "", nil, nil); code != http.StatusBadRequest {
		t.Errorf("get bad id: status %d", code)
	}
	if code := do(t, h, "DELETE", fmt.Sprintf("/v1/constraints/%d", info.ID), "", nil, nil); code != http.StatusOK {
		t.Errorf("delete: status %d", code)
	}
	if code := do(t, h, "DELETE", fmt.Sprintf("/v1/constraints/%d", info.ID), "", nil, nil); code != http.StatusNotFound {
		t.Errorf("delete twice: status %d", code)
	}
}

func TestCheckAllEndpoint(t *testing.T) {
	s := New(Options{})
	h := s.Handler()
	do(t, h, "POST", "/v1/datasets?name=cars", "text/csv", []byte(testCSV(4, 400)), nil)

	// Register a family: one real dependence, one noise pair, one broken.
	for _, text := range []string{
		"Model _||_ Price @ 0.05",
		"Color _||_ Mileage @ 0.05",
		"Model _||_ DoesNotExist @ 0.05",
	} {
		if code := doJSON(t, h, "POST", "/v1/constraints", map[string]string{"constraint": text}, nil); code != http.StatusCreated {
			t.Fatalf("registering %q: status %d", text, code)
		}
	}

	var resp struct {
		Results  []checkResultJSON `json:"results"`
		Checked  int               `json:"checked"`
		Violated int               `json:"violated"`
		Errored  int               `json:"errored"`
	}
	code := doJSON(t, h, "POST", "/v1/checkall",
		map[string]any{"dataset": "cars", "fdr": 0.05}, &resp)
	if code != http.StatusOK {
		t.Fatalf("checkall: status %d", code)
	}
	if len(resp.Results) != 3 || resp.Checked != 2 || resp.Errored != 1 {
		t.Fatalf("checkall summary: %+v", resp)
	}
	if !resp.Results[0].Violated {
		t.Errorf("Model _||_ Price should be violated: %+v", resp.Results[0])
	}
	if resp.Results[2].Error == "" {
		t.Errorf("broken constraint should report its error: %+v", resp.Results[2])
	}

	// Inline constraint texts work too.
	code = doJSON(t, h, "POST", "/v1/checkall", map[string]any{
		"dataset":     "cars",
		"constraints": []string{"Model _||_ Price @ 0.05", "Color _||_ Mileage @ 0.05"},
		"workers":     4,
	}, &resp)
	if code != http.StatusOK || len(resp.Results) != 2 {
		t.Fatalf("inline checkall: status %d, %+v", code, resp)
	}

	// Unknown dataset 404s; bad FDR 400s.
	if code := doJSON(t, h, "POST", "/v1/checkall", map[string]any{"dataset": "nope"}, nil); code != http.StatusNotFound {
		t.Errorf("unknown dataset: status %d", code)
	}
	if code := doJSON(t, h, "POST", "/v1/checkall", map[string]any{"dataset": "cars", "fdr": 7.0}, nil); code != http.StatusBadRequest {
		t.Errorf("bad FDR: status %d", code)
	}
}

func TestCheckEndpointErrors(t *testing.T) {
	s := New(Options{})
	h := s.Handler()
	do(t, h, "POST", "/v1/datasets?name=cars", "text/csv", []byte(testCSV(5, 60)), nil)

	cases := []struct {
		name string
		body map[string]any
		want int
	}{
		{"missing dataset", map[string]any{"constraint": "Model _||_ Price"}, http.StatusNotFound},
		{"missing constraint", map[string]any{"dataset": "cars"}, http.StatusBadRequest},
		{"both constraint forms", map[string]any{"dataset": "cars", "constraint": "A _||_ B", "constraint_id": 1}, http.StatusBadRequest},
		{"unknown method", map[string]any{"dataset": "cars", "constraint": "Model _||_ Price", "method": "anova"}, http.StatusBadRequest},
		{"missing column", map[string]any{"dataset": "cars", "constraint": "Model _||_ Nope"}, http.StatusUnprocessableEntity},
		{"kendall on categorical", map[string]any{"dataset": "cars", "constraint": "Model _||_ Price", "method": "kendall"}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		if code := doJSON(t, h, "POST", "/v1/check", tc.body, nil); code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.want)
		}
	}
	// Unknown JSON fields are rejected.
	if code := doJSON(t, h, "POST", "/v1/check", map[string]any{"dataset": "cars", "wat": 1}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown field: status %d", code)
	}
}

func TestMonitorFlow(t *testing.T) {
	s := New(Options{})
	h := s.Handler()

	// Categorical monitor, windowed.
	var mon monitorInfo
	code := doJSON(t, h, "POST", "/v1/monitors",
		map[string]any{"kind": "categorical", "alpha": 0.05, "window": 64}, &mon)
	if code != http.StatusCreated || mon.ID == 0 {
		t.Fatalf("create: status %d, %+v", code, mon)
	}

	// Feed correlated pairs; mirror them into a library monitor.
	ref, _ := stream.NewCategoricalMonitor(0.05, false, 64)
	rng := rand.New(rand.NewSource(6))
	var xs, ys []string
	for i := 0; i < 100; i++ {
		x := fmt.Sprintf("x%d", rng.Intn(3))
		y := x // perfectly dependent
		if rng.Intn(10) == 0 {
			y = fmt.Sprintf("x%d", rng.Intn(3))
		}
		xs = append(xs, x)
		ys = append(ys, y)
		ref.Insert(x, y)
	}
	code = doJSON(t, h, "POST", fmt.Sprintf("/v1/monitors/%d/observe", mon.ID),
		map[string]any{"x": xs, "y": ys}, &mon)
	if code != http.StatusOK {
		t.Fatalf("observe: status %d", code)
	}
	if mon.N != 64 || mon.Observed != 100 {
		t.Errorf("after observe: %+v", mon)
	}

	var verdict struct {
		Statistic float64 `json:"statistic"`
		P         float64 `json:"p"`
		N         int     `json:"n"`
		Violated  bool    `json:"violated"`
	}
	code = do(t, h, "GET", fmt.Sprintf("/v1/monitors/%d/verdict", mon.ID), "", nil, &verdict)
	if code != http.StatusOK {
		t.Fatalf("verdict: status %d", code)
	}
	want := ref.Verdict()
	if verdict.Statistic != want.Statistic || verdict.P != want.P || verdict.Violated != want.Violated {
		t.Errorf("service verdict %+v != library %+v", verdict, want)
	}
	if !verdict.Violated {
		t.Error("dependent stream should violate the ISC")
	}

	// Type mismatch is rejected.
	if code := doJSON(t, h, "POST", fmt.Sprintf("/v1/monitors/%d/observe", mon.ID),
		map[string]any{"x": []float64{1}, "y": []float64{2}}, nil); code != http.StatusBadRequest {
		t.Errorf("numeric batch into categorical monitor: status %d", code)
	}
	if code := doJSON(t, h, "POST", fmt.Sprintf("/v1/monitors/%d/observe", mon.ID),
		map[string]any{"x": []string{"a", "b"}, "y": []string{"c"}}, nil); code != http.StatusBadRequest {
		t.Errorf("length mismatch: status %d", code)
	}

	// Numeric monitor round trip.
	var nmon monitorInfo
	doJSON(t, h, "POST", "/v1/monitors", map[string]any{"kind": "numeric"}, &nmon)
	nums := make([]float64, 80)
	nums2 := make([]float64, 80)
	for i := range nums {
		nums[i] = float64(i)
		nums2[i] = float64(i) + rng.NormFloat64()
	}
	if code := doJSON(t, h, "POST", fmt.Sprintf("/v1/monitors/%d/observe", nmon.ID),
		map[string]any{"x": nums, "y": nums2}, nil); code != http.StatusOK {
		t.Fatalf("numeric observe: status %d", code)
	}
	code = do(t, h, "GET", fmt.Sprintf("/v1/monitors/%d/verdict", nmon.ID), "", nil, &verdict)
	if code != http.StatusOK || !verdict.Violated {
		t.Errorf("monotone numeric stream should violate: status %d, %+v", code, verdict)
	}

	// List and delete.
	var list struct {
		Monitors []monitorInfo `json:"monitors"`
	}
	if code := do(t, h, "GET", "/v1/monitors", "", nil, &list); code != http.StatusOK || len(list.Monitors) != 2 {
		t.Errorf("list: %d, %+v", code, list)
	}
	if code := do(t, h, "DELETE", fmt.Sprintf("/v1/monitors/%d", mon.ID), "", nil, nil); code != http.StatusOK {
		t.Errorf("delete: status %d", code)
	}
	if code := do(t, h, "GET", fmt.Sprintf("/v1/monitors/%d/verdict", mon.ID), "", nil, nil); code != http.StatusNotFound {
		t.Errorf("verdict after delete: status %d", code)
	}
	if code := doJSON(t, h, "POST", "/v1/monitors", map[string]any{"kind": "fourier"}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown kind: status %d", code)
	}
}

// TestConcurrentTraffic hammers the service from many goroutines; run
// under -race it proves the registry and metrics locking.
func TestConcurrentTraffic(t *testing.T) {
	s := New(Options{})
	h := s.Handler()
	do(t, h, "POST", "/v1/datasets?name=cars", "text/csv", []byte(testCSV(7, 200)), nil)
	var mon monitorInfo
	doJSON(t, h, "POST", "/v1/monitors", map[string]any{"kind": "numeric", "window": 50}, &mon)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				req := httptest.NewRequest("POST", "/v1/check",
					strings.NewReader(`{"dataset":"cars","constraint":"Model _||_ Price @ 0.05"}`))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("check: status %d", rec.Code)
					return
				}
				body := fmt.Sprintf(`{"x":[%d.5],"y":[%d.25]}`, i, (i*7+g)%13)
				req = httptest.NewRequest("POST", fmt.Sprintf("/v1/monitors/%d/observe", mon.ID),
					strings.NewReader(body))
				rec = httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("observe: status %d", rec.Code)
					return
				}
				req = httptest.NewRequest("GET", "/metrics", nil)
				h.ServeHTTP(httptest.NewRecorder(), req)
			}
		}(g)
	}
	wg.Wait()
	if got := s.metrics.snapshotCount("POST /v1/check"); got != 80 {
		t.Errorf("check request count: %d, want 80", got)
	}
}

// TestDrilldownMultiConstraint exercises the family form of /v1/drilldown:
// the pooled ranking must match the library's MultiTopK exactly, be
// independent of the worker count, and reject ambiguous request bodies.
func TestDrilldownMultiConstraint(t *testing.T) {
	s := New(Options{})
	h := s.Handler()
	csv := testCSV(5, 300)
	if code := do(t, h, "POST", "/v1/datasets?name=cars", "text/csv", []byte(csv), nil); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	texts := []string{"Model _||_ Price", "Mileage ~||~ Price"}

	rel, err := relation.ReadCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	family := []sc.SC{sc.MustParse(texts[0]), sc.MustParse(texts[1])}
	want, err := drilldown.MultiTopK(rel, family, 12, drilldown.Options{})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{0, 1, 4} {
		var got struct {
			Constraints []string   `json:"constraints"`
			Rows        []int      `json:"rows"`
			Records     [][]string `json:"records"`
		}
		code := doJSON(t, h, "POST", "/v1/drilldown",
			map[string]any{"dataset": "cars", "constraints": texts, "k": 12, "workers": workers}, &got)
		if code != http.StatusOK {
			t.Fatalf("workers=%d: status %d", workers, code)
		}
		if len(got.Constraints) != 2 || got.Constraints[0] != texts[0] {
			t.Errorf("workers=%d: constraints %v", workers, got.Constraints)
		}
		if len(got.Rows) != 12 || len(got.Records) != 12 {
			t.Fatalf("workers=%d: pooled %d rows, %d records", workers, len(got.Rows), len(got.Records))
		}
		for i, r := range want {
			if got.Rows[i] != r {
				t.Errorf("workers=%d: pooled row %d: got %d, want %d", workers, i, got.Rows[i], r)
			}
		}
	}

	// Registered ids drill the same family.
	var ids []int
	for _, text := range texts {
		var info constraintInfo
		if code := doJSON(t, h, "POST", "/v1/constraints",
			map[string]string{"constraint": text}, &info); code != http.StatusCreated {
			t.Fatalf("constraint add: status %d", code)
		}
		ids = append(ids, info.ID)
	}
	var byID struct {
		Rows []int `json:"rows"`
	}
	code := doJSON(t, h, "POST", "/v1/drilldown",
		map[string]any{"dataset": "cars", "constraint_ids": ids, "k": 12}, &byID)
	if code != http.StatusOK {
		t.Fatalf("by id: status %d", code)
	}
	for i, r := range want {
		if byID.Rows[i] != r {
			t.Errorf("by id: pooled row %d: got %d, want %d", i, byID.Rows[i], r)
		}
	}

	// Ambiguous and invalid bodies are client errors.
	for name, body := range map[string]map[string]any{
		"single+family": {"dataset": "cars", "constraint": texts[0], "constraints": texts, "k": 5},
		"texts+ids":     {"dataset": "cars", "constraints": texts, "constraint_ids": ids, "k": 5},
	} {
		if code := doJSON(t, h, "POST", "/v1/drilldown", body, &struct{}{}); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}

	// A failing family member surfaces its wrapped, attributed error.
	var apiErr struct {
		Error string `json:"error"`
	}
	code = doJSON(t, h, "POST", "/v1/drilldown",
		map[string]any{"dataset": "cars", "constraints": []string{texts[0], "Model _||_ Bogus"}, "k": 5}, &apiErr)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("bad family member: status %d", code)
	}
	if !strings.Contains(apiErr.Error, "Model _||_ Bogus") || !strings.Contains(apiErr.Error, "Bogus") {
		t.Errorf("error %q should name the failing constraint", apiErr.Error)
	}
}
