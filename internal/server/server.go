// Package server implements scoded-serve: a long-running HTTP service that
// exposes SCODED's detection workflows over registered datasets and
// constraints. It is the deployment shape the paper's lineage assumes — a
// resident engine (compare HoloClean-style violation-detection services)
// rather than one-shot batch scripts.
//
// The service holds three registries behind read-write locks:
//
//   - datasets: immutable relations uploaded as CSV, keyed by name;
//   - constraints: approximate SCs parsed from the "A _||_ B | C @ alpha"
//     text form, keyed by numeric id;
//   - monitors: stateful streaming monitors (categorical or numeric,
//     optionally windowed) fed by observe batches.
//
// Detection endpoints run the library's Check / CheckAll / TopK on a
// dataset-constraint pair; /v1/checkall fans the family out over the
// bounded worker pool inside detect.CheckAll. Every route is wrapped in a
// metrics middleware feeding the plain-text /metrics endpoint; /healthz
// reports liveness and registry sizes. Everything is stdlib-only.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"scoded/internal/engine"
	"scoded/internal/kernel"
	"scoded/internal/sc"
	"scoded/internal/store"
)

// Options configures a Server.
type Options struct {
	// MaxUploadBytes caps the size of a CSV dataset upload; defaults to
	// 32 MiB.
	MaxUploadBytes int64
	// Workers bounds the checkall worker pool; 0 means GOMAXPROCS.
	Workers int
	// RequestTimeout bounds every request's context server-side: a check,
	// drill-down or observe batch that outlives it is cancelled through the
	// engine and answered with 504 Gateway Timeout. Zero means no
	// server-side deadline (client disconnection still cancels).
	RequestTimeout time.Duration
	// Store, when non-nil, makes every registry mutation durable: dataset
	// uploads, appends, constraints and monitors are written through to it,
	// and LoadStore restores them on boot. Nil keeps the historical
	// in-memory-only behavior.
	Store *store.Store
	// IngestQueue bounds the record batches admitted per monitor on the
	// streaming ingest endpoint; a full queue answers 429 with Retry-After.
	// Zero means 16.
	IngestQueue int
	// AlertWebhook is the server-wide fallback alert sink URL, used by
	// monitors created without their own webhook. Empty disables alerting
	// for those monitors.
	AlertWebhook string
	// AlertRetries bounds webhook delivery attempts per alert (default 3);
	// AlertBackoff is the initial retry delay, doubled per attempt
	// (default 100ms).
	AlertRetries int
	AlertBackoff time.Duration
	// ResidentBytes caps the total estimated bytes of materialized
	// relations held in memory. Store-backed datasets above the budget are
	// lazily materialized on first touch and evicted least-recently-used
	// once unreferenced; a /v1/checkall against a dataset larger than the
	// whole budget streams segment-at-a-time instead of materializing
	// (when its method is stream-eligible). Zero means unbounded — every
	// dataset stays resident once touched.
	ResidentBytes int64
	// ScanWindowRows bounds the rows decoded per chunk on the streaming
	// detection path, splitting oversized segments into windows. Zero
	// streams whole segments.
	ScanWindowRows int
}

func (o Options) withDefaults() Options {
	if o.MaxUploadBytes <= 0 {
		o.MaxUploadBytes = 32 << 20
	}
	return o
}

// Server is the scoded-serve application state: the three registries, the
// metrics collector, and the route table. Create one with New and mount
// Handler on an http.Server.
type Server struct {
	opts  Options
	store *store.Store

	res *residents

	mu          sync.RWMutex
	datasets    map[string]*dataset
	constraints map[int]sc.Approximate
	nextSC      int
	monitors    map[int]*monitorEntry
	nextMonitor int

	metrics *metrics
	handler http.Handler

	// Alert sink lifecycle (see ingest.go): deliveries run under alertCtx,
	// bounded by alertSem, awaited by Close through alertWG.
	//scoded:lint-ignore ctxfirst alert deliveries outlive the triggering request; this context is the sink's lifetime, cancelled by Close
	alertCtx    context.Context
	alertCancel context.CancelFunc
	alertWG     sync.WaitGroup
	alertSem    chan struct{}
	alertClient *http.Client
}

// New creates a Server with empty registries. When opts.Store is set, call
// LoadStore before serving to restore durable state.
func New(opts Options) *Server {
	s := &Server{
		opts:        opts.withDefaults(),
		store:       opts.Store,
		res:         newResidents(opts.ResidentBytes),
		datasets:    make(map[string]*dataset),
		constraints: make(map[int]sc.Approximate),
		monitors:    make(map[int]*monitorEntry),
		metrics:     newMetrics(time.Now()),
		alertSem:    make(chan struct{}, alertSemSize),
		alertClient: &http.Client{Timeout: 10 * time.Second},
	}
	s.alertCtx, s.alertCancel = context.WithCancel(context.Background())
	s.metrics.extra = func(w io.Writer) {
		s.writeKernelMetrics(w)
		s.writeResidentMetrics(w)
		s.writeStoreMetrics(w)
		s.writeStreamMetrics(w, time.Now())
	}
	s.handler = s.buildRoutes()
	return s
}

// Handler returns the service's root handler, with every route wrapped in
// the metrics middleware.
func (s *Server) Handler() http.Handler { return s.handler }

func (s *Server) buildRoutes() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.metrics.wrap(pattern, s.withTimeout(h)))
	}
	route("POST /v1/datasets", s.handleDatasetUpload)
	route("GET /v1/datasets", s.handleDatasetList)
	route("GET /v1/datasets/{name}", s.handleDatasetGet)
	route("POST /v1/datasets/{name}/rows", s.handleDatasetAppend)
	route("DELETE /v1/datasets/{name}", s.handleDatasetDelete)

	route("POST /v1/constraints", s.handleConstraintAdd)
	route("GET /v1/constraints", s.handleConstraintList)
	route("GET /v1/constraints/{id}", s.handleConstraintGet)
	route("DELETE /v1/constraints/{id}", s.handleConstraintDelete)

	route("POST /v1/check", s.handleCheck)
	route("POST /v1/checkall", s.handleCheckAll)
	route("POST /v1/drilldown", s.handleDrilldown)

	route("POST /v1/monitors", s.handleMonitorCreate)
	route("GET /v1/monitors", s.handleMonitorList)
	route("POST /v1/monitors/{id}/observe", s.handleMonitorObserve)
	route("POST /v1/monitors/{id}/records", s.handleMonitorRecords)
	route("GET /v1/monitors/{id}/verdict", s.handleMonitorVerdict)
	route("DELETE /v1/monitors/{id}", s.handleMonitorDelete)

	route("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", http.HandlerFunc(s.metrics.serveHTTP))
	return mux
}

// withTimeout bounds the request context by Options.RequestTimeout. The
// handlers thread r.Context() into every computation, so both the server
// deadline and a client disconnect cancel through the same path.
func (s *Server) withTimeout(h http.Handler) http.Handler {
	if s.opts.RequestTimeout <= 0 {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := s.requestContext(r)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

// requestContext derives the context.Context one request computes under:
// r.Context() — cancelled when the client disconnects — bounded by the
// server-side Options.RequestTimeout.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	return engine.WithTimeout(r.Context(), s.opts.RequestTimeout)
}

// errStatus maps a computation error to an HTTP status: a server-side
// deadline is a gateway timeout, a client cancellation is answered 503
// (the client is usually gone, but middleware still records the code), and
// anything else is the request's fault.
func errStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusUnprocessableEntity
	}
}

// handleHealthz reports liveness, uptime, and registry sizes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	nd, nc, nm := len(s.datasets), len(s.constraints), len(s.monitors)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.metrics.start).Seconds(),
		"datasets":       nd,
		"constraints":    nc,
		"monitors":       nm,
	})
}

// writeJSON writes v as a JSON response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError writes a JSON error envelope {"error": msg}.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// decodeJSON strictly decodes the request body into v.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON body: %v", err)
	}
	return nil
}

// writeKernelMetrics renders the per-dataset kernel cache counters for the
// /metrics endpoint. Cold datasets have no cache and are skipped.
func (s *Server) writeKernelMetrics(w io.Writer) {
	type entry struct {
		name  string
		stats kernel.Stats
	}
	s.mu.RLock()
	entries := make([]entry, 0, len(s.datasets))
	for name, d := range s.datasets {
		if d.cache == nil {
			continue
		}
		entries = append(entries, entry{name: name, stats: d.cache.Stats()})
	}
	s.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	fmt.Fprintf(w, "# HELP scoded_kernel_cache_hits_total Kernel cache lookups served from a memoized entry, by dataset.\n")
	fmt.Fprintf(w, "# TYPE scoded_kernel_cache_hits_total counter\n")
	for _, e := range entries {
		fmt.Fprintf(w, "scoded_kernel_cache_hits_total{dataset=%q} %d\n", e.name, e.stats.Hits)
	}
	fmt.Fprintf(w, "# HELP scoded_kernel_cache_misses_total Kernel cache lookups that computed a new entry, by dataset.\n")
	fmt.Fprintf(w, "# TYPE scoded_kernel_cache_misses_total counter\n")
	for _, e := range entries {
		fmt.Fprintf(w, "scoded_kernel_cache_misses_total{dataset=%q} %d\n", e.name, e.stats.Misses)
	}
	fmt.Fprintf(w, "# HELP scoded_kernel_cache_entries Memoized kernel artifacts held, by dataset.\n")
	fmt.Fprintf(w, "# TYPE scoded_kernel_cache_entries gauge\n")
	for _, e := range entries {
		fmt.Fprintf(w, "scoded_kernel_cache_entries{dataset=%q} %d\n", e.name, e.stats.Entries)
	}
}
