package server

import (
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// independentCSV builds a dataset with the same schema as testCSV but with
// Price drawn independently of every other column.
func independentCSV(seed int64, n int) string {
	rng := rand.New(rand.NewSource(seed))
	models := []string{"prius", "civic", "model3", "leaf"}
	var b strings.Builder
	b.WriteString("Model,Color,Mileage,Price\n")
	for i := 0; i < n; i++ {
		m := models[rng.Intn(len(models))]
		color := []string{"red", "blue", "black"}[rng.Intn(3)]
		mileage := 10000 + rng.Float64()*90000
		price := 20000 + rng.NormFloat64()*3000
		fmt.Fprintf(&b, "%s,%s,%.2f,%.2f\n", m, color, mileage, price)
	}
	return b.String()
}

// TestReuploadInvalidatesCache uploads a dataset, checks a constraint
// (warming the kernel cache), re-uploads modified rows under the same name,
// and asserts the next check reflects the new data rather than any cached
// statistic from the old relation.
func TestReuploadInvalidatesCache(t *testing.T) {
	s := New(Options{})
	h := s.Handler()

	if code := do(t, h, "POST", "/v1/datasets?name=cars", "text/csv", []byte(testCSV(11, 400)), nil); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}

	check := func() checkResultJSON {
		t.Helper()
		var res checkResultJSON
		code := doJSON(t, h, "POST", "/v1/check",
			map[string]any{"dataset": "cars", "constraint": "Model _||_ Price @ 0.05"}, &res)
		if code != http.StatusOK {
			t.Fatalf("check: status %d", code)
		}
		if res.Error != "" {
			t.Fatalf("check error: %s", res.Error)
		}
		return res
	}

	before := check()
	if !before.Violated {
		t.Fatalf("dependent data should violate Model _||_ Price: %+v", before)
	}
	// A second check on the same data must hit the cache and agree exactly.
	again := check()
	if again.Test != before.Test || again.Violated != before.Violated {
		t.Fatalf("repeat check diverged: %+v vs %+v", again, before)
	}

	if code := do(t, h, "POST", "/v1/datasets?name=cars", "text/csv", []byte(independentCSV(12, 400)), nil); code != http.StatusOK {
		t.Fatalf("re-upload: status %d", code)
	}

	after := check()
	if after.Violated {
		t.Fatalf("independent data should not violate Model _||_ Price: %+v", after)
	}
	//scoded:lint-ignore floatcmp identical statistics would prove the stale cache answered
	if after.Test.Statistic == before.Test.Statistic {
		t.Fatalf("statistic unchanged after re-upload: stale cached result %v", before.Test.Statistic)
	}
	if math.IsNaN(after.Test.Statistic) {
		t.Fatalf("fresh check produced NaN statistic")
	}
}

// TestReuploadDropsBoundMonitors binds a monitor to a dataset and asserts
// that replacing (or deleting) the dataset deletes the monitor, while
// unbound monitors survive.
func TestReuploadDropsBoundMonitors(t *testing.T) {
	s := New(Options{})
	h := s.Handler()

	if code := do(t, h, "POST", "/v1/datasets?name=cars", "text/csv", []byte(testCSV(13, 50)), nil); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}

	// Binding to an unknown dataset is rejected.
	if code := doJSON(t, h, "POST", "/v1/monitors",
		map[string]any{"kind": "categorical", "dataset": "nope"}, nil); code != http.StatusNotFound {
		t.Fatalf("monitor bound to unknown dataset: status %d", code)
	}

	var bound, free monitorInfo
	if code := doJSON(t, h, "POST", "/v1/monitors",
		map[string]any{"kind": "categorical", "dataset": "cars"}, &bound); code != http.StatusCreated {
		t.Fatalf("bound monitor create: status %d", code)
	}
	if bound.Dataset != "cars" {
		t.Fatalf("bound monitor info: %+v", bound)
	}
	if code := doJSON(t, h, "POST", "/v1/monitors",
		map[string]any{"kind": "numeric"}, &free); code != http.StatusCreated {
		t.Fatalf("unbound monitor create: status %d", code)
	}

	if code := do(t, h, "POST", "/v1/datasets?name=cars", "text/csv", []byte(independentCSV(14, 50)), nil); code != http.StatusOK {
		t.Fatalf("re-upload: status %d", code)
	}

	var list struct {
		Monitors []monitorInfo `json:"monitors"`
	}
	if code := do(t, h, "GET", "/v1/monitors", "", nil, &list); code != http.StatusOK {
		t.Fatalf("monitor list: status %d", code)
	}
	if len(list.Monitors) != 1 || list.Monitors[0].ID != free.ID {
		t.Fatalf("re-upload should drop only the bound monitor, got %+v", list.Monitors)
	}
	if code := do(t, h, "GET", fmt.Sprintf("/v1/monitors/%d/verdict", bound.ID), "", nil, nil); code != http.StatusNotFound {
		t.Fatalf("dropped monitor verdict: status %d", code)
	}

	// Dataset deletion drops bound monitors the same way.
	var rebound monitorInfo
	if code := doJSON(t, h, "POST", "/v1/monitors",
		map[string]any{"kind": "categorical", "dataset": "cars"}, &rebound); code != http.StatusCreated {
		t.Fatalf("rebound monitor create: status %d", code)
	}
	if code := do(t, h, "DELETE", "/v1/datasets/cars", "", nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	if code := do(t, h, "GET", "/v1/monitors", "", nil, &list); code != http.StatusOK || len(list.Monitors) != 1 {
		t.Fatalf("delete should drop the bound monitor, got %+v", list.Monitors)
	}
}

// TestKernelCacheMetrics asserts /metrics exposes per-dataset kernel cache
// counters and that a repeated checkall turns lookups into hits.
func TestKernelCacheMetrics(t *testing.T) {
	s := New(Options{})
	h := s.Handler()

	if code := do(t, h, "POST", "/v1/datasets?name=cars", "text/csv", []byte(testCSV(15, 200)), nil); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	body := map[string]any{
		"dataset": "cars",
		"constraints": []string{
			"Model _||_ Price @ 0.05",
			"Model _||_ Price | Color @ 0.05",
			"Color _||_ Price | Model @ 0.05",
		},
	}
	for i := 0; i < 2; i++ {
		if code := doJSON(t, h, "POST", "/v1/checkall", body, nil); code != http.StatusOK {
			t.Fatalf("checkall: status %d", code)
		}
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	text := rec.Body.String()
	for _, want := range []string{
		`scoded_kernel_cache_hits_total{dataset="cars"}`,
		`scoded_kernel_cache_misses_total{dataset="cars"}`,
		`scoded_kernel_cache_entries{dataset="cars"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
	// The second checkall repeats every lookup of the first, so hits must be
	// strictly positive (at minimum, the whole warm pass hits).
	var hits int64
	if _, err := fmt.Sscanf(afterPrefix(t, text, `scoded_kernel_cache_hits_total{dataset="cars"} `), "%d", &hits); err != nil {
		t.Fatalf("parsing hits: %v", err)
	}
	if hits <= 0 {
		t.Errorf("expected cache hits after a repeated checkall, got %d", hits)
	}
}

// afterPrefix returns the remainder of the line starting with prefix.
func afterPrefix(t *testing.T, text, prefix string) string {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, prefix) {
			return strings.TrimPrefix(line, prefix)
		}
	}
	t.Fatalf("no line with prefix %q in:\n%s", prefix, text)
	return ""
}
