package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestMetricsHistogramRendering(t *testing.T) {
	m := newMetrics(time.Now())
	m.observe("POST /v1/check", 200, 0.0004) // first bucket
	m.observe("POST /v1/check", 200, 0.003)  // second bucket
	m.observe("POST /v1/check", 500, 0.05)   // fourth bucket (le=0.1)
	m.observe("POST /v1/check", 200, 99)     // overflow

	rec := httptest.NewRecorder()
	m.serveHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`scoded_requests_total{route="POST /v1/check",code="200"} 3`,
		`scoded_requests_total{route="POST /v1/check",code="500"} 1`,
		`scoded_request_duration_seconds_bucket{route="POST /v1/check",le="0.001"} 1`,
		`scoded_request_duration_seconds_bucket{route="POST /v1/check",le="0.005"} 2`,
		`scoded_request_duration_seconds_bucket{route="POST /v1/check",le="0.1"} 3`,
		`scoded_request_duration_seconds_bucket{route="POST /v1/check",le="10"} 3`,
		`scoded_request_duration_seconds_bucket{route="POST /v1/check",le="+Inf"} 4`,
		`scoded_request_duration_seconds_count{route="POST /v1/check"} 4`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestMetricsStatusRecorderDefaults(t *testing.T) {
	m := newMetrics(time.Now())
	// A handler that never calls WriteHeader counts as 200.
	h := m.wrap("GET /implicit", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/implicit", nil))

	out := httptest.NewRecorder()
	m.serveHTTP(out, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(out.Body.String(), `scoded_requests_total{route="GET /implicit",code="200"} 1`) {
		t.Errorf("implicit 200 not counted:\n%s", out.Body.String())
	}
}
